// Crash-injection sweep over the persistent store's WAL.
//
// A `FaultyFile` captures a healthy WAL and then reproduces crash
// artifacts from it: truncation at byte K (crash mid-append) and
// single-bit flips (silent corruption). The sweep covers *every* byte
// offset of a small log and asserts the recovery invariant: `Open`
// either replays a clean prefix of the original records or repairs the
// torn tail down to the last whole record — it never crashes and never
// resurrects a record that was not fully, correctly written.
//
// The WAL header frame is written atomically (temp file + rename), so a
// real crash cannot tear it; cuts and flips inside the header model
// media corruption instead, where the contract weakens to "fail with a
// Status, never crash, never fabricate state".

#include "src/common/fault_injection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/common/file_io.h"
#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/store/persistent_repository.h"
#include "src/store/record.h"
#include "src/workflow/builder.h"
#include "src/workflow/serialize.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_crash_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A deliberately tiny spec so the per-byte sweep over its WAL stays
/// fast (the whole log is ~1 KB).
Specification TinySpec() {
  SpecBuilder b("tiny");
  WorkflowId w = b.AddWorkflow("W1", "top", 0);
  EXPECT_TRUE(b.SetRoot(w).ok());
  ModuleId in = b.AddInput(w);
  ModuleId m = b.AddModule(w, "M1", "Work");
  ModuleId out = b.AddOutput(w);
  EXPECT_TRUE(b.Connect(in, m, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m, out, {"y"}).ok());
  auto spec = std::move(b).Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

/// The store under test plus everything the sweep needs to check
/// recovered state against the original.
struct SweptStore {
  std::string dir;
  /// Optional only because `FaultyFile` is built after the store
  /// (capture requires the finished WAL); always engaged once returned.
  std::optional<FaultyFile> wal;
  /// Serialized entries in append (LSN) order: [spec, exec1, exec2, ...].
  std::vector<std::string> originals;
  /// Byte offset of each record boundary in the WAL: boundaries[0] is
  /// the end of the header frame, boundaries[i] the end of record i.
  std::vector<size_t> boundaries;
};

SweptStore BuildSweptStore(const std::string& name, int executions,
                           PayloadCodec codec = PayloadCodec::kBinary) {
  SweptStore out;
  out.dir = TestDir(name);
  {
    StoreOptions options;
    options.codec = codec;
    auto store = PersistentRepository::Init(out.dir, options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    auto sid = store.value().AddSpecification(TinySpec());
    EXPECT_TRUE(sid.ok()) << sid.status().ToString();
    const Specification& spec = store.value().repo().entry(0).spec;
    out.originals.push_back(Serialize(spec));
    FunctionRegistry fns;
    for (int i = 0; i < executions; ++i) {
      auto exec =
          Execute(spec, fns, {{"x", "value" + std::to_string(i)}});
      EXPECT_TRUE(exec.ok()) << exec.status().ToString();
      out.originals.push_back(SerializeExecution(exec.value()));
      EXPECT_TRUE(
          store.value().AddExecution(0, std::move(exec).value()).ok());
    }
    EXPECT_TRUE(store.value().Sync().ok());
  }
  auto wal = FaultyFile::Capture(out.dir + "/wal.log");
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  out.wal.emplace(std::move(wal).value());

  RecordReader reader(out.wal->pristine());
  Record record;
  while (reader.Next(&record) == ReadOutcome::kRecord) {
    out.boundaries.push_back(reader.valid_bytes());
  }
  EXPECT_EQ(reader.dropped_bytes(), 0u);
  EXPECT_EQ(out.boundaries.size(), out.originals.size() + 1);  // + header
  return out;
}

/// Serialized entries of a recovered store in LSN order.
std::vector<std::string> Recovered(const PersistentRepository& store) {
  std::vector<std::string> out;
  for (int id = 0; id < store.repo().num_specs(); ++id) {
    out.push_back(Serialize(store.repo().entry(id).spec));
  }
  for (int id = 0; id < store.repo().num_executions(); ++id) {
    out.push_back(
        SerializeExecution(store.repo().execution(ExecutionId(id)).exec));
  }
  return out;
}

/// Asserts `got` is exactly the first `got.size()` originals.
void ExpectPrefixOfOriginals(const std::vector<std::string>& got,
                             const std::vector<std::string>& originals,
                             const std::string& context) {
  ASSERT_LE(got.size(), originals.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], originals[i]) << context << " entry " << i;
  }
}

/// Number of whole records (header excluded) within the first `cut`
/// bytes, and whether `cut` sits exactly on a boundary.
void ClassifyCut(const std::vector<size_t>& boundaries, size_t cut,
                 size_t* whole_records, bool* on_boundary) {
  *whole_records = 0;
  *on_boundary = false;
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (boundaries[i] <= cut) *whole_records = i;  // i records past header
    if (boundaries[i] == cut) *on_boundary = true;
  }
}

TEST(FaultyFileTest, RestoreTruncateFlipRoundTrip) {
  const std::string dir = TestDir("faulty_file");
  const std::string path = dir + "/f";
  ASSERT_TRUE(AtomicWriteFile(path, "abcdef").ok());
  auto f = FaultyFile::Capture(path);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().size(), 6);

  ASSERT_TRUE(f.value().TruncateAt(2).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "ab");
  EXPECT_TRUE(f.value().TruncateAt(7).IsInvalidArgument());

  ASSERT_TRUE(f.value().FlipBit(0, 0).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "`bcdef");  // 'a' ^ 1
  EXPECT_TRUE(f.value().FlipBit(6, 0).IsInvalidArgument());
  EXPECT_TRUE(f.value().FlipBit(0, 8).IsInvalidArgument());

  ASSERT_TRUE(f.value().Restore().ok());
  EXPECT_EQ(ReadFileToString(path).value(), "abcdef");
}

// The tentpole sweep: truncate the WAL at every byte offset, including
// every record boundary, and recover. Runs against both payload
// codecs — the torn-tail contract is codec-independent.
void RunTruncationSweep(PayloadCodec codec, const std::string& name) {
  SweptStore swept = BuildSweptStore(name, 3, codec);
  const size_t header_end = swept.boundaries[0];
  const size_t size = static_cast<size_t>(swept.wal->size());

  for (size_t cut = 0; cut <= size; ++cut) {
    ASSERT_TRUE(swept.wal->TruncateAt(cut).ok());
    auto store = PersistentRepository::Open(swept.dir);
    const std::string context = "cut=" + std::to_string(cut);
    if (cut < header_end) {
      // Inside the atomically written header: corruption, not a crash
      // artifact. Must fail with a Status, not crash.
      EXPECT_FALSE(store.ok()) << context;
      continue;
    }
    ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
    size_t whole = 0;
    bool on_boundary = false;
    ClassifyCut(swept.boundaries, cut, &whole, &on_boundary);
    EXPECT_EQ(store.value().recovery().torn_tail, !on_boundary) << context;
    EXPECT_EQ(store.value().lsn(), whole) << context;
    std::vector<std::string> got = Recovered(store.value());
    ExpectPrefixOfOriginals(got, swept.originals, context);
    EXPECT_EQ(got.size(), whole) << context;
    if (!on_boundary) {
      // Repair truncated the torn tail back to the last whole record.
      EXPECT_EQ(static_cast<size_t>(fs::file_size(swept.dir + "/wal.log")),
                swept.boundaries[whole])
          << context;
    }
  }
}

TEST(CrashInjectionTest, TruncationSweepRecoversCleanPrefixBinaryCodec) {
  RunTruncationSweep(PayloadCodec::kBinary, "trunc_sweep_bin");
}

TEST(CrashInjectionTest, TruncationSweepRecoversCleanPrefixTextCodec) {
  RunTruncationSweep(PayloadCodec::kText, "trunc_sweep_text");
}

// A torn store must not only recover — it must keep working. Spot-check
// a few interior cuts end to end: recover, append, recover again.
TEST(CrashInjectionTest, TornStoreAcceptsAppendsAfterRepair) {
  SweptStore swept = BuildSweptStore("trunc_append", 2);
  const size_t header_end = swept.boundaries[0];
  const size_t size = static_cast<size_t>(swept.wal->size());
  for (size_t cut : {header_end + 1, (header_end + size) / 2, size - 1}) {
    ASSERT_TRUE(swept.wal->TruncateAt(cut).ok());
    size_t whole = 0;
    bool on_boundary = false;
    ClassifyCut(swept.boundaries, cut, &whole, &on_boundary);
    {
      auto store = PersistentRepository::Open(swept.dir);
      ASSERT_TRUE(store.ok()) << cut;
      if (whole == 0) {
        auto sid = store.value().AddSpecification(TinySpec());
        ASSERT_TRUE(sid.ok()) << sid.status().ToString();
      } else {
        FunctionRegistry fns;
        auto exec = Execute(store.value().repo().entry(0).spec, fns,
                            {{"x", "post-crash"}});
        ASSERT_TRUE(exec.ok());
        ASSERT_TRUE(
            store.value().AddExecution(0, std::move(exec).value()).ok());
      }
      ASSERT_TRUE(store.value().Sync().ok());
    }
    auto reopened = PersistentRepository::Open(swept.dir);
    ASSERT_TRUE(reopened.ok()) << cut;
    EXPECT_FALSE(reopened.value().recovery().torn_tail) << cut;
    EXPECT_EQ(reopened.value().lsn(), whole + 1) << cut;
  }
}

// Flip one bit at every byte offset (cycling through bit positions so
// all eight are exercised): recovery must never crash and must never
// deliver a record that differs from what was written. Codec-
// independent like the truncation sweep.
void RunBitFlipSweep(PayloadCodec codec, const std::string& name) {
  SweptStore swept = BuildSweptStore(name, 3, codec);
  const size_t header_end = swept.boundaries[0];
  const size_t size = static_cast<size_t>(swept.wal->size());

  for (size_t offset = 0; offset < size; ++offset) {
    const int bit = static_cast<int>(offset % 8);
    ASSERT_TRUE(swept.wal->FlipBit(offset, bit).ok());
    auto store = PersistentRepository::Open(swept.dir);
    const std::string context =
        "offset=" + std::to_string(offset) + " bit=" + std::to_string(bit);
    if (offset < header_end) {
      EXPECT_FALSE(store.ok()) << context;
      continue;
    }
    // CRC32 detects every single-bit error, so the flipped record and
    // everything after it is classified as a torn tail; the clean
    // prefix before it survives byte-for-byte.
    ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
    EXPECT_TRUE(store.value().recovery().torn_tail) << context;
    std::vector<std::string> got = Recovered(store.value());
    ExpectPrefixOfOriginals(got, swept.originals, context);
    EXPECT_LT(got.size(), swept.originals.size()) << context;
  }
}

TEST(CrashInjectionTest, BitFlipSweepNeverResurrectsBinaryRecords) {
  RunBitFlipSweep(PayloadCodec::kBinary, "flip_sweep_bin");
}

TEST(CrashInjectionTest, BitFlipSweepNeverResurrectsTextRecords) {
  RunBitFlipSweep(PayloadCodec::kText, "flip_sweep_text");
}

// The harness composes with snapshots: corrupt WAL bytes behind a
// snapshot's coverage are harmless because recovery replays only the
// suffix past the snapshot LSN.
TEST(CrashInjectionTest, SnapshotShieldsRecoveryFromStaleWalDamage) {
  const std::string dir = TestDir("snap_shield");
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().AddSpecification(TinySpec()).ok());
    // Snapshot covers the spec; the WAL is truncated to empty.
    ASSERT_TRUE(store.value().Compact().ok());
  }
  auto wal = FaultyFile::Capture(dir + "/wal.log");
  ASSERT_TRUE(wal.ok());
  // Cut into the (fresh) header: the WAL is unreadable, so Open fails —
  // but it must fail with a Status even though a snapshot exists.
  ASSERT_TRUE(wal.value().TruncateAt(static_cast<uint64_t>(
                  wal.value().size() - 1)).ok());
  EXPECT_FALSE(PersistentRepository::Open(dir).ok());
  // Restored, everything is back.
  ASSERT_TRUE(wal.value().Restore().ok());
  auto store = PersistentRepository::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value().repo().num_specs(), 1);
}

}  // namespace
}  // namespace paw

// Crash-injection sweeps over the persistent store's WAL.
//
// Byte-level sweeps: a `FaultyFile` captures a healthy WAL segment and
// reproduces crash artifacts from it — truncation at byte K (crash
// mid-append) and single-bit flips (silent corruption) — at *every*
// byte offset, asserting the recovery invariant: `Open` either replays
// a clean prefix of the original records or repairs the torn tail down
// to the last whole record; it never crashes and never resurrects a
// record that was not fully, correctly written. The sweeps also run
// against multi-segment logs, where damage in a *sealed* segment must
// drop everything past it (clean prefix) rather than splice later
// segments over the hole.
//
// Kill-point sweeps: background compaction runs the crash-ordered
// sequence rotate → snapshot → manifest-bump → segment-delete. The
// `StoreOptions::compaction_hook` pauses the snapshot worker at each
// phase boundary while the harness copies the whole store directory —
// a faithful crash image of that kill point — and every image must
// recover *all* records that were durable when the compaction started
// (no committed LSN is ever lost), for both codecs and both layouts.
//
// The WAL header frame is written atomically (temp file + rename), so a
// real crash cannot tear it; cuts and flips inside the header model
// media corruption instead, where the contract weakens to "fail with a
// Status, never crash, never fabricate state".

#include "src/common/fault_injection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/file_io.h"
#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/store/persistent_repository.h"
#include "src/store/record.h"
#include "src/store/sharded_repository.h"
#include "src/workflow/builder.h"
#include "src/workflow/serialize.h"
#include "tests/store_test_util.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_crash_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Path of the store's active (highest-seq) WAL segment.
std::string ActiveWal(const std::string& dir) {
  auto segments = ListWalSegments(dir);
  EXPECT_TRUE(segments.ok() && !segments.value().empty())
      << "no WAL segments under " << dir;
  return segments.value().back().path;
}

/// A deliberately tiny spec so the per-byte sweep over its WAL stays
/// fast (the whole log is ~1 KB).
Specification NamedSpec(const std::string& name) {
  SpecBuilder b(name);
  WorkflowId w = b.AddWorkflow("W1", "top", 0);
  EXPECT_TRUE(b.SetRoot(w).ok());
  ModuleId in = b.AddInput(w);
  ModuleId m = b.AddModule(w, "M1", "Work");
  ModuleId out = b.AddOutput(w);
  EXPECT_TRUE(b.Connect(in, m, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m, out, {"y"}).ok());
  auto spec = std::move(b).Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

Specification TinySpec() { return NamedSpec("tiny"); }

/// The store under test plus everything the sweep needs to check
/// recovered state against the original.
struct SweptStore {
  std::string dir;
  /// Optional only because `FaultyFile` is built after the store
  /// (capture requires the finished WAL); always engaged once returned.
  std::optional<FaultyFile> wal;
  /// Serialized entries in append (LSN) order: [spec, exec1, exec2, ...].
  std::vector<std::string> originals;
  /// Byte offset of each record boundary in the WAL: boundaries[0] is
  /// the end of the header frame, boundaries[i] the end of record i.
  std::vector<size_t> boundaries;
};

SweptStore BuildSweptStore(const std::string& name, int executions,
                           PayloadCodec codec = PayloadCodec::kBinary) {
  SweptStore out;
  out.dir = TestDir(name);
  {
    StoreOptions options;
    options.codec = codec;
    auto store = PersistentRepository::Init(out.dir, options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    auto sid = store.value().AddSpecification(TinySpec());
    EXPECT_TRUE(sid.ok()) << sid.status().ToString();
    const Specification& spec = store.value().repo().entry(0).spec;
    out.originals.push_back(Serialize(spec));
    FunctionRegistry fns;
    for (int i = 0; i < executions; ++i) {
      auto exec =
          Execute(spec, fns, {{"x", "value" + std::to_string(i)}});
      EXPECT_TRUE(exec.ok()) << exec.status().ToString();
      out.originals.push_back(SerializeExecution(exec.value()));
      EXPECT_TRUE(
          store.value().AddExecution(0, std::move(exec).value()).ok());
    }
    EXPECT_TRUE(store.value().Sync().ok());
  }
  auto wal = FaultyFile::Capture(ActiveWal(out.dir));
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  out.wal.emplace(std::move(wal).value());

  RecordReader reader(out.wal->pristine());
  Record record;
  while (reader.Next(&record) == ReadOutcome::kRecord) {
    out.boundaries.push_back(reader.valid_bytes());
  }
  EXPECT_EQ(reader.dropped_bytes(), 0u);
  EXPECT_EQ(out.boundaries.size(), out.originals.size() + 1);  // + header
  return out;
}

/// Serialized entries of a recovered store in LSN order.
std::vector<std::string> Recovered(const PersistentRepository& store) {
  std::vector<std::string> out;
  for (int id = 0; id < store.repo().num_specs(); ++id) {
    out.push_back(Serialize(store.repo().entry(id).spec));
  }
  for (int id = 0; id < store.repo().num_executions(); ++id) {
    out.push_back(
        SerializeExecution(store.repo().execution(ExecutionId(id)).exec));
  }
  return out;
}

/// Asserts `got` is exactly the first `got.size()` originals.
void ExpectPrefixOfOriginals(const std::vector<std::string>& got,
                             const std::vector<std::string>& originals,
                             const std::string& context) {
  ASSERT_LE(got.size(), originals.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], originals[i]) << context << " entry " << i;
  }
}

/// Number of whole records (header excluded) within the first `cut`
/// bytes, and whether `cut` sits exactly on a boundary.
void ClassifyCut(const std::vector<size_t>& boundaries, size_t cut,
                 size_t* whole_records, bool* on_boundary) {
  *whole_records = 0;
  *on_boundary = false;
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (boundaries[i] <= cut) *whole_records = i;  // i records past header
    if (boundaries[i] == cut) *on_boundary = true;
  }
}

TEST(FaultyFileTest, RestoreTruncateFlipRoundTrip) {
  const std::string dir = TestDir("faulty_file");
  const std::string path = dir + "/f";
  ASSERT_TRUE(AtomicWriteFile(path, "abcdef").ok());
  auto f = FaultyFile::Capture(path);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().size(), 6);

  ASSERT_TRUE(f.value().TruncateAt(2).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "ab");
  EXPECT_TRUE(f.value().TruncateAt(7).IsInvalidArgument());

  ASSERT_TRUE(f.value().FlipBit(0, 0).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "`bcdef");  // 'a' ^ 1
  EXPECT_TRUE(f.value().FlipBit(6, 0).IsInvalidArgument());
  EXPECT_TRUE(f.value().FlipBit(0, 8).IsInvalidArgument());

  ASSERT_TRUE(f.value().Restore().ok());
  EXPECT_EQ(ReadFileToString(path).value(), "abcdef");
}

// The tentpole sweep: truncate the WAL at every byte offset, including
// every record boundary, and recover. Runs against both payload
// codecs — the torn-tail contract is codec-independent.
void RunTruncationSweep(PayloadCodec codec, const std::string& name) {
  SweptStore swept = BuildSweptStore(name, 3, codec);
  const size_t header_end = swept.boundaries[0];
  const size_t size = static_cast<size_t>(swept.wal->size());

  for (size_t cut = 0; cut <= size; ++cut) {
    ASSERT_TRUE(swept.wal->TruncateAt(cut).ok());
    auto store = PersistentRepository::Open(swept.dir);
    const std::string context = "cut=" + std::to_string(cut);
    if (cut < header_end) {
      // Inside the atomically written header: corruption, not a crash
      // artifact. Must fail with a Status, not crash.
      EXPECT_FALSE(store.ok()) << context;
      continue;
    }
    ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
    size_t whole = 0;
    bool on_boundary = false;
    ClassifyCut(swept.boundaries, cut, &whole, &on_boundary);
    EXPECT_EQ(store.value().recovery().torn_tail, !on_boundary) << context;
    EXPECT_EQ(store.value().lsn(), whole) << context;
    std::vector<std::string> got = Recovered(store.value());
    ExpectPrefixOfOriginals(got, swept.originals, context);
    EXPECT_EQ(got.size(), whole) << context;
    if (!on_boundary) {
      // Repair truncated the torn tail back to the last whole record.
      EXPECT_EQ(static_cast<size_t>(fs::file_size(swept.wal->path())),
                swept.boundaries[whole])
          << context;
    }
  }
}

TEST(CrashInjectionTest, TruncationSweepRecoversCleanPrefixBinaryCodec) {
  RunTruncationSweep(PayloadCodec::kBinary, "trunc_sweep_bin");
}

TEST(CrashInjectionTest, TruncationSweepRecoversCleanPrefixTextCodec) {
  RunTruncationSweep(PayloadCodec::kText, "trunc_sweep_text");
}

// A torn store must not only recover — it must keep working. Spot-check
// a few interior cuts end to end: recover, append, recover again.
TEST(CrashInjectionTest, TornStoreAcceptsAppendsAfterRepair) {
  SweptStore swept = BuildSweptStore("trunc_append", 2);
  const size_t header_end = swept.boundaries[0];
  const size_t size = static_cast<size_t>(swept.wal->size());
  for (size_t cut : {header_end + 1, (header_end + size) / 2, size - 1}) {
    ASSERT_TRUE(swept.wal->TruncateAt(cut).ok());
    size_t whole = 0;
    bool on_boundary = false;
    ClassifyCut(swept.boundaries, cut, &whole, &on_boundary);
    {
      auto store = PersistentRepository::Open(swept.dir);
      ASSERT_TRUE(store.ok()) << cut;
      if (whole == 0) {
        auto sid = store.value().AddSpecification(TinySpec());
        ASSERT_TRUE(sid.ok()) << sid.status().ToString();
      } else {
        FunctionRegistry fns;
        auto exec = Execute(store.value().repo().entry(0).spec, fns,
                            {{"x", "post-crash"}});
        ASSERT_TRUE(exec.ok());
        ASSERT_TRUE(
            store.value().AddExecution(0, std::move(exec).value()).ok());
      }
      ASSERT_TRUE(store.value().Sync().ok());
    }
    auto reopened = PersistentRepository::Open(swept.dir);
    ASSERT_TRUE(reopened.ok()) << cut;
    EXPECT_FALSE(reopened.value().recovery().torn_tail) << cut;
    EXPECT_EQ(reopened.value().lsn(), whole + 1) << cut;
  }
}

// Flip one bit at every byte offset (cycling through bit positions so
// all eight are exercised): recovery must never crash and must never
// deliver a record that differs from what was written. Codec-
// independent like the truncation sweep.
void RunBitFlipSweep(PayloadCodec codec, const std::string& name) {
  SweptStore swept = BuildSweptStore(name, 3, codec);
  const size_t header_end = swept.boundaries[0];
  const size_t size = static_cast<size_t>(swept.wal->size());

  for (size_t offset = 0; offset < size; ++offset) {
    const int bit = static_cast<int>(offset % 8);
    ASSERT_TRUE(swept.wal->FlipBit(offset, bit).ok());
    auto store = PersistentRepository::Open(swept.dir);
    const std::string context =
        "offset=" + std::to_string(offset) + " bit=" + std::to_string(bit);
    if (offset < header_end) {
      EXPECT_FALSE(store.ok()) << context;
      continue;
    }
    // CRC32 detects every single-bit error, so the flipped record and
    // everything after it is classified as a torn tail; the clean
    // prefix before it survives byte-for-byte.
    ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
    EXPECT_TRUE(store.value().recovery().torn_tail) << context;
    std::vector<std::string> got = Recovered(store.value());
    ExpectPrefixOfOriginals(got, swept.originals, context);
    EXPECT_LT(got.size(), swept.originals.size()) << context;
  }
}

TEST(CrashInjectionTest, BitFlipSweepNeverResurrectsBinaryRecords) {
  RunBitFlipSweep(PayloadCodec::kBinary, "flip_sweep_bin");
}

TEST(CrashInjectionTest, BitFlipSweepNeverResurrectsTextRecords) {
  RunBitFlipSweep(PayloadCodec::kText, "flip_sweep_text");
}

// The harness composes with snapshots: corrupt WAL bytes behind a
// snapshot's coverage are harmless because recovery replays only the
// suffix past the snapshot LSN.
TEST(CrashInjectionTest, SnapshotShieldsRecoveryFromStaleWalDamage) {
  const std::string dir = TestDir("snap_shield");
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().AddSpecification(TinySpec()).ok());
    // Snapshot covers the spec; the WAL is truncated to empty.
    ASSERT_TRUE(store.value().Compact().ok());
  }
  auto wal = FaultyFile::Capture(ActiveWal(dir));
  ASSERT_TRUE(wal.ok());
  // Cut into the (fresh) header: the WAL is unreadable, so Open fails —
  // but it must fail with a Status even though a snapshot exists.
  ASSERT_TRUE(wal.value().TruncateAt(static_cast<uint64_t>(
                  wal.value().size() - 1)).ok());
  EXPECT_FALSE(PersistentRepository::Open(dir).ok());
  // Restored, everything is back.
  ASSERT_TRUE(wal.value().Restore().ok());
  auto store = PersistentRepository::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value().repo().num_specs(), 1);
}

// ---------------------------------------------------------------------------
// Compaction kill-point sweeps: crash images of every phase boundary in
// the rotate → snapshot → manifest-bump → segment-delete sequence.
// ---------------------------------------------------------------------------

std::string PhaseName(CompactionPhase phase) {
  switch (phase) {
    case CompactionPhase::kSnapshot: return "snapshot";
    case CompactionPhase::kInstall: return "install";
    case CompactionPhase::kCleanup: return "cleanup";
    case CompactionPhase::kDone: return "done";
  }
  return "unknown";
}

/// Copies a whole store directory (a crash image: at a phase boundary
/// the worker is paused inside the hook, so nothing mutates the source
/// while we copy).
void CopyDir(const std::string& src, const std::string& dst) {
  std::error_code ec;
  fs::create_directories(dst, ec);
  ASSERT_FALSE(ec) << dst << ": " << ec.message();
  fs::copy(src, dst,
           fs::copy_options::recursive | fs::copy_options::overwrite_existing,
           ec);
  ASSERT_FALSE(ec) << src << " -> " << dst << ": " << ec.message();
}

/// A hook that snapshots the store directory at each phase boundary.
struct PhaseImageCapture {
  std::string store_dir;
  std::string image_root;
  std::string tag;  // distinguishes successive compactions
  std::vector<std::pair<std::string, std::string>> images;  // phase, path

  std::function<void(CompactionPhase)> Hook() {
    return [this](CompactionPhase phase) {
      const std::string label = tag + PhaseName(phase);
      const std::string dst = image_root + "/" + label;
      CopyDir(store_dir, dst);
      images.emplace_back(PhaseName(phase), dst);
    };
  }
};

void RunCompactionKillPointSweep(PayloadCodec codec,
                                 const std::string& name) {
  const std::string dir = TestDir(name);
  const std::string image_root = TestDir(name + "_images");
  PhaseImageCapture capture;
  capture.store_dir = dir;
  capture.image_root = image_root;

  StoreOptions options;
  options.codec = codec;
  options.compaction_hook = capture.Hook();

  std::vector<std::string> originals;
  {
    auto store = PersistentRepository::Init(dir, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto sid = store.value().AddSpecification(TinySpec());
    ASSERT_TRUE(sid.ok()) << sid.status().ToString();
    const Specification& spec = store.value().repo().entry(0).spec;
    originals.push_back(Serialize(spec));
    FunctionRegistry fns;
    for (int i = 0; i < 3; ++i) {
      auto exec = Execute(spec, fns, {{"x", "kp" + std::to_string(i)}});
      ASSERT_TRUE(exec.ok());
      originals.push_back(SerializeExecution(exec.value()));
      ASSERT_TRUE(
          store.value().AddExecution(0, std::move(exec).value()).ok());
    }
    // Everything below is durable before the compaction starts: the
    // invariant under test is that no kill point loses any of it.
    ASSERT_TRUE(store.value().Sync().ok());
    ASSERT_TRUE(store.value().CompactAsync().ok());
    ASSERT_TRUE(store.value().WaitForCompaction().ok());
    EXPECT_EQ(store.value().snapshot_lsn(), originals.size());
  }
  ASSERT_EQ(capture.images.size(), 4u);

  for (const auto& [phase, image] : capture.images) {
    const std::string context = "kill point: " + phase;
    auto store = PersistentRepository::Open(image, options);
    ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
    // No committed LSN is ever lost: every record durable at the cut
    // recovers, with its LSN intact, at every kill point.
    std::vector<std::string> got = Recovered(store.value());
    ASSERT_EQ(got.size(), originals.size()) << context;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], originals[i]) << context << " entry " << i;
    }
    EXPECT_EQ(store.value().lsn(), originals.size()) << context;
    EXPECT_FALSE(store.value().recovery().torn_tail) << context;
    if (phase == "snapshot") {
      // Rotation happened but no snapshot exists yet: pure replay.
      EXPECT_EQ(store.value().recovery().records_replayed,
                originals.size())
          << context;
    } else {
      // Snapshot installed; segment records it covers are skipped.
      EXPECT_EQ(store.value().recovery().snapshot_lsn, originals.size())
          << context;
    }
    if (phase == "cleanup") {
      // Manifest bumped, unlinks not yet run: the stale segment must
      // be reclaimed on open.
      EXPECT_GE(store.value().recovery().stale_segments_removed, 1)
          << context;
    }
    // The image is not just readable — it is a working store.
    FunctionRegistry fns;
    auto exec = Execute(store.value().repo().entry(0).spec, fns,
                        {{"x", "post-crash"}});
    ASSERT_TRUE(exec.ok()) << context;
    ASSERT_TRUE(
        store.value().AddExecution(0, std::move(exec).value()).ok())
        << context;
    ASSERT_TRUE(store.value().Sync().ok()) << context;
    CloseStore(&store);
    auto reopened = PersistentRepository::Open(image, options);
    ASSERT_TRUE(reopened.ok()) << context;
    EXPECT_EQ(reopened.value().lsn(), originals.size() + 1) << context;
  }
}

TEST(CompactionKillPointTest, SweepRecoversAllRecordsBinaryCodec) {
  RunCompactionKillPointSweep(PayloadCodec::kBinary, "kp_bin");
}

TEST(CompactionKillPointTest, SweepRecoversAllRecordsTextCodec) {
  RunCompactionKillPointSweep(PayloadCodec::kText, "kp_text");
}

/// Serialized per-shard entries of a sharded store, in shard order.
std::vector<std::vector<std::string>> RecoveredSharded(
    const ShardedRepository& store) {
  std::vector<std::vector<std::string>> out;
  for (int i = 0; i < store.num_shards(); ++i) {
    out.push_back(Recovered(store.shard(i)));
  }
  return out;
}

void RunShardedKillPointSweep(PayloadCodec codec, const std::string& name) {
  constexpr int kShards = 2;
  const std::string dir = TestDir(name);
  const std::string image_root = TestDir(name + "_images");
  PhaseImageCapture capture;
  capture.store_dir = dir;
  capture.image_root = image_root;

  StoreOptions options;
  options.codec = codec;
  options.compaction_hook = capture.Hook();

  std::vector<std::vector<std::string>> originals;
  {
    auto store = ShardedRepository::Init(dir, kShards, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    FunctionRegistry fns;
    // Enough specs that (with crc routing) both shards hold data.
    for (int i = 0; i < 6; ++i) {
      auto ref = store.value().AddSpecification(
          NamedSpec("kp_spec_" + std::to_string(i)));
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      const Specification& spec = store.value()
                                      .shard(ref.value().shard)
                                      .repo()
                                      .entry(ref.value().id)
                                      .spec;
      auto exec = Execute(spec, fns, {{"x", "v" + std::to_string(i)}});
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(store.value()
                      .AddExecution(ref.value(), std::move(exec).value())
                      .ok());
    }
    for (int i = 0; i < kShards; ++i) {
      ASSERT_GT(store.value().shard(i).repo().num_specs(), 0)
          << "routing left shard " << i << " empty";
    }
    ASSERT_TRUE(store.value().Sync().ok());
    originals = RecoveredSharded(store.value());

    // Drive one shard's compaction at a time so each captured image is
    // deterministic (only the paused worker could be mutating files).
    for (int i = 0; i < kShards; ++i) {
      capture.tag = "shard" + std::to_string(i) + "_";
      ASSERT_TRUE(store.value().shard(i).CompactAsync().ok());
      ASSERT_TRUE(store.value().shard(i).WaitForCompaction().ok());
    }
  }
  ASSERT_EQ(capture.images.size(), 4u * kShards);

  for (const auto& [phase, image] : capture.images) {
    const std::string context = "kill point: " + image;
    auto store = ShardedRepository::Open(image, options, kShards);
    ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
    EXPECT_EQ(RecoveredSharded(store.value()), originals) << context;
    // The image is not just readable — it keeps accepting writes.
    FunctionRegistry fns;
    auto ref = store.value().FindSpec("kp_spec_0");
    ASSERT_TRUE(ref.ok()) << context;
    const Specification& spec = store.value()
                                    .shard(ref.value().shard)
                                    .repo()
                                    .entry(ref.value().id)
                                    .spec;
    auto exec = Execute(spec, fns, {{"x", "post-crash"}});
    ASSERT_TRUE(exec.ok()) << context;
    ASSERT_TRUE(store.value()
                    .AddExecution(ref.value(), std::move(exec).value())
                    .ok())
        << context;
    ASSERT_TRUE(store.value().Sync().ok()) << context;
  }
}

TEST(CompactionKillPointTest, ShardedSweepRecoversAllRecordsBinaryCodec) {
  RunShardedKillPointSweep(PayloadCodec::kBinary, "kp_sharded_bin");
}

TEST(CompactionKillPointTest, ShardedSweepRecoversAllRecordsTextCodec) {
  RunShardedKillPointSweep(PayloadCodec::kText, "kp_sharded_text");
}

// ---------------------------------------------------------------------------
// Multi-segment byte sweeps: damage inside sealed segments.
// ---------------------------------------------------------------------------

/// Builds a store whose WAL spans several segments (tiny rotation
/// threshold), all records synced.
struct SegmentedStore {
  std::string dir;
  StoreOptions options;
  std::vector<std::string> originals;  // LSN order
  std::vector<WalSegmentFile> segments;
};

SegmentedStore BuildSegmentedStore(const std::string& name,
                                   PayloadCodec codec) {
  SegmentedStore out;
  out.dir = TestDir(name);
  out.options.codec = codec;
  out.options.segment_bytes = 150;  // a couple of records per segment
  {
    auto store = PersistentRepository::Init(out.dir, out.options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    auto sid = store.value().AddSpecification(TinySpec());
    EXPECT_TRUE(sid.ok()) << sid.status().ToString();
    const Specification& spec = store.value().repo().entry(0).spec;
    out.originals.push_back(Serialize(spec));
    FunctionRegistry fns;
    for (int i = 0; i < 8; ++i) {
      auto exec =
          Execute(spec, fns, {{"x", "seg" + std::to_string(i)}});
      EXPECT_TRUE(exec.ok());
      out.originals.push_back(SerializeExecution(exec.value()));
      EXPECT_TRUE(
          store.value().AddExecution(0, std::move(exec).value()).ok());
    }
    EXPECT_TRUE(store.value().Sync().ok());
  }
  auto segments = ListWalSegments(out.dir);
  EXPECT_TRUE(segments.ok());
  out.segments = segments.value();
  EXPECT_GE(out.segments.size(), 3u) << "threshold produced too few segments";
  return out;
}

/// Records (LSNs, header excluded) wholly contained in the first
/// `segment_index` + the first `cut` bytes of segment `segment_index`,
/// plus whether the cut lands on a record boundary of that segment.
void ClassifySegmentCut(const std::vector<std::string>& pristine,
                        size_t segment_index, size_t cut,
                        size_t* whole_records, bool* on_boundary,
                        size_t* header_end) {
  *whole_records = 0;
  for (size_t s = 0; s < segment_index; ++s) {
    RecordReader reader(pristine[s]);
    Record record;
    bool header = true;
    while (reader.Next(&record) == ReadOutcome::kRecord) {
      if (!header) ++*whole_records;
      header = false;
    }
  }
  RecordReader reader(pristine[segment_index]);
  Record record;
  *on_boundary = false;
  *header_end = 0;
  bool header = true;
  std::vector<size_t> boundaries;
  while (reader.Next(&record) == ReadOutcome::kRecord) {
    if (header) {
      *header_end = reader.valid_bytes();
      header = false;
    } else {
      boundaries.push_back(reader.valid_bytes());
    }
  }
  size_t in_segment = 0;
  if (cut >= *header_end) *on_boundary = cut == *header_end;
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (boundaries[i] <= cut) in_segment = i + 1;
    if (boundaries[i] == cut) *on_boundary = true;
  }
  *whole_records += in_segment;
}

// Truncate a *sealed* (non-final) segment at every byte offset: the
// clean-prefix contract — recover exactly the records before the
// damage, drop every later segment, never resurrect, keep working.
void RunSealedSegmentTruncationSweep(PayloadCodec codec,
                                     const std::string& name) {
  SegmentedStore swept = BuildSegmentedStore(name, codec);
  // Damage the middle sealed segment.
  const size_t target = swept.segments.size() / 2;
  ASSERT_GT(target, 0u);
  ASSERT_LT(target, swept.segments.size() - 1);

  // Pristine bytes of every segment, for restore + classification.
  std::vector<std::string> pristine;
  std::vector<FaultyFile> files;
  for (const WalSegmentFile& seg : swept.segments) {
    auto f = FaultyFile::Capture(seg.path);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    pristine.push_back(f.value().pristine());
    files.push_back(std::move(f).value());
  }

  const size_t size = pristine[target].size();
  for (size_t cut = 0; cut < size; cut += 7) {  // stride: keep it fast
    // Recovery may truncate the target and delete later segments;
    // restore the full chain (and manifest semantics are untouched —
    // the manifest only names `first`).
    for (FaultyFile& f : files) ASSERT_TRUE(f.Restore().ok());
    ASSERT_TRUE(files[target].TruncateAt(cut).ok());

    auto store = PersistentRepository::Open(swept.dir, swept.options);
    const std::string context = "sealed cut=" + std::to_string(cut);
    size_t whole = 0, header_end = 0;
    bool on_boundary = false;
    ClassifySegmentCut(pristine, target, cut, &whole, &on_boundary,
                       &header_end);
    if (cut < header_end) {
      // Damaged segment header: corruption, fail with a Status.
      EXPECT_FALSE(store.ok()) << context;
      continue;
    }
    ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
    // A cut strictly inside a sealed segment always tears (even on a
    // record boundary, the chain to the next segment breaks — records
    // after the cut are gone, so the next segment's base mismatches...
    // unless recovery drops later segments, which is exactly what it
    // must do).
    std::vector<std::string> got = Recovered(store.value());
    ExpectPrefixOfOriginals(got, swept.originals, context);
    EXPECT_EQ(got.size(), whole) << context;
    EXPECT_EQ(store.value().lsn(), whole) << context;
    EXPECT_TRUE(store.value().recovery().torn_tail) << context;
    // Later segments were dropped, not spliced over the hole.
    EXPECT_GT(store.value().recovery().dropped_bytes, 0u) << context;
    // The repaired store accepts appends.
    if (store.value().repo().num_specs() > 0) {
      FunctionRegistry fns;
      auto exec = Execute(store.value().repo().entry(0).spec, fns,
                          {{"x", "post-crash"}});
      ASSERT_TRUE(exec.ok()) << context;
      ASSERT_TRUE(
          store.value().AddExecution(0, std::move(exec).value()).ok())
          << context;
      ASSERT_TRUE(store.value().Sync().ok()) << context;
      CloseStore(&store);
      auto reopened = PersistentRepository::Open(swept.dir, swept.options);
      ASSERT_TRUE(reopened.ok()) << context;
      EXPECT_EQ(reopened.value().lsn(), whole + 1) << context;
    }
  }
}

TEST(CrashInjectionTest, SealedSegmentTruncationSweepBinaryCodec) {
  RunSealedSegmentTruncationSweep(PayloadCodec::kBinary, "sealed_bin");
}

TEST(CrashInjectionTest, SealedSegmentTruncationSweepTextCodec) {
  RunSealedSegmentTruncationSweep(PayloadCodec::kText, "sealed_text");
}

// Bit flips inside a sealed segment: CRC catches them; everything from
// the flipped record on (including later segments) is dropped.
TEST(CrashInjectionTest, SealedSegmentBitFlipKeepsCleanPrefix) {
  SegmentedStore swept = BuildSegmentedStore("sealed_flip",
                                             PayloadCodec::kBinary);
  const size_t target = swept.segments.size() / 2;
  std::vector<FaultyFile> files;
  std::vector<std::string> pristine;
  for (const WalSegmentFile& seg : swept.segments) {
    auto f = FaultyFile::Capture(seg.path);
    ASSERT_TRUE(f.ok());
    pristine.push_back(f.value().pristine());
    files.push_back(std::move(f).value());
  }
  const size_t size = pristine[target].size();
  for (size_t offset = 0; offset < size; offset += 11) {
    const int bit = static_cast<int>(offset % 8);
    for (FaultyFile& f : files) ASSERT_TRUE(f.Restore().ok());
    ASSERT_TRUE(files[target].FlipBit(offset, bit).ok());
    auto store = PersistentRepository::Open(swept.dir, swept.options);
    const std::string context = "flip offset=" + std::to_string(offset);
    size_t whole = 0, header_end = 0;
    bool on_boundary = false;
    ClassifySegmentCut(pristine, target, offset, &whole, &on_boundary,
                       &header_end);
    if (offset < header_end) {
      EXPECT_FALSE(store.ok()) << context;
      continue;
    }
    ASSERT_TRUE(store.ok()) << context << ": " << store.status().ToString();
    EXPECT_TRUE(store.value().recovery().torn_tail) << context;
    std::vector<std::string> got = Recovered(store.value());
    ExpectPrefixOfOriginals(got, swept.originals, context);
    EXPECT_LT(got.size(), swept.originals.size()) << context;
  }
}

}  // namespace
}  // namespace paw

// Tests for data-privacy masking.

#include "src/privacy/data_privacy.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/repo/disease.h"

namespace paw {
namespace {

class DataPrivacyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<Specification>(std::move(spec).value());
    auto exec = RunDiseaseExecution(*spec_);
    ASSERT_TRUE(exec.ok());
    exec_ = std::make_unique<Execution>(std::move(exec).value());
    policy_ = DiseasePolicy();
  }

  std::unique_ptr<Specification> spec_;
  std::unique_ptr<Execution> exec_;
  PolicySet policy_;
};

TEST_F(DataPrivacyTest, Level0SeesOnlyPublicLabels) {
  MaskingReport r = ComputeMasking(*exec_, policy_.data, 0);
  // Public labels: query (x3 items: d6,d7,d13), result (d14,d15),
  // summary (d16) = 6 visible items.
  EXPECT_EQ(r.num_visible, 6);
  EXPECT_EQ(r.num_masked, 14);
  EXPECT_TRUE(r.visible[6]);    // d6 query
  EXPECT_TRUE(r.visible[16]);   // d16 summary
  EXPECT_FALSE(r.visible[0]);   // d0 SNPs
  EXPECT_FALSE(r.visible[19]);  // d19 prognosis
}

TEST_F(DataPrivacyTest, Level2SeesEverything) {
  MaskingReport r = ComputeMasking(*exec_, policy_.data, 2);
  EXPECT_EQ(r.num_masked, 0);
  EXPECT_EQ(r.num_visible, exec_->num_items());
}

TEST_F(DataPrivacyTest, MaskingIsMonotoneInLevel) {
  MaskingReport r0 = ComputeMasking(*exec_, policy_.data, 0);
  MaskingReport r1 = ComputeMasking(*exec_, policy_.data, 1);
  MaskingReport r2 = ComputeMasking(*exec_, policy_.data, 2);
  EXPECT_LE(r0.num_visible, r1.num_visible);
  EXPECT_LE(r1.num_visible, r2.num_visible);
  for (int i = 0; i < exec_->num_items(); ++i) {
    if (r0.visible[static_cast<size_t>(i)]) {
      EXPECT_TRUE(r1.visible[static_cast<size_t>(i)]);
    }
    if (r1.visible[static_cast<size_t>(i)]) {
      EXPECT_TRUE(r2.visible[static_cast<size_t>(i)]);
    }
  }
}

TEST_F(DataPrivacyTest, RenderValueMasksByLevel) {
  // d0 = SNPs requires level 2.
  EXPECT_EQ(RenderValue(*exec_, DataItemId(0), policy_.data, 0),
            kMaskedValue);
  EXPECT_EQ(RenderValue(*exec_, DataItemId(0), policy_.data, 2),
            "rs429358,rs7412");
  // d16 = summary is public.
  EXPECT_NE(RenderValue(*exec_, DataItemId(16), policy_.data, 0),
            kMaskedValue);
}

TEST_F(DataPrivacyTest, HidingCost) {
  std::map<std::string, double> weights{{"a", 2.0}, {"b", 0.5}};
  EXPECT_DOUBLE_EQ(HidingCost({"a", "b"}, weights), 2.5);
  EXPECT_DOUBLE_EQ(HidingCost({"a", "zzz"}, weights), 3.0);  // default 1
  EXPECT_DOUBLE_EQ(HidingCost({}, weights), 0.0);
  EXPECT_DOUBLE_EQ(HidingCost({"x"}, weights, 0.25), 0.25);
}

TEST_F(DataPrivacyTest, DefaultLevelApplies) {
  DataPolicy open;
  open.default_level = 0;
  MaskingReport r = ComputeMasking(*exec_, open, 0);
  EXPECT_EQ(r.num_masked, 0);

  DataPolicy strict;
  strict.default_level = 5;
  MaskingReport r2 = ComputeMasking(*exec_, strict, 4);
  EXPECT_EQ(r2.num_visible, 0);
}

}  // namespace
}  // namespace paw

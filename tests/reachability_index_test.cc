// Tests for the materialized reachability index.

#include "src/index/reachability_index.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/graph/algorithms.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

TEST(ReachabilityIndexTest, AgreesWithBfs) {
  Rng rng(17);
  Digraph g = RandomDag(&rng, 40, 0.1);
  ReachabilityIndex index(g);
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    for (NodeIndex v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      EXPECT_EQ(index.Reaches(u, v), PathExists(g, u, v));
    }
  }
}

TEST(ReachabilityIndexTest, RebuildTracksMutation) {
  Digraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ReachabilityIndex index(g);
  EXPECT_TRUE(index.Reaches(0, 1));
  EXPECT_FALSE(index.Reaches(1, 2));
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_FALSE(index.Reaches(0, 2));  // stale until rebuild
  index.Rebuild();
  EXPECT_TRUE(index.Reaches(0, 2));
}

TEST(ReachabilityIndexTest, CountPairsAndBytes) {
  Digraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ReachabilityIndex index(g);
  EXPECT_EQ(index.CountPairs(), 6);
  EXPECT_GT(index.ApproxBytes(), 0);
}

}  // namespace
}  // namespace paw

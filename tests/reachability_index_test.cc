// Tests for the materialized reachability index.

#include "src/index/reachability_index.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/graph/algorithms.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

TEST(ReachabilityIndexTest, AgreesWithBfs) {
  Rng rng(17);
  Digraph g = RandomDag(&rng, 40, 0.1);
  ReachabilityIndex index(g);
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    for (NodeIndex v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      EXPECT_EQ(index.Reaches(u, v), PathExists(g, u, v));
    }
  }
}

TEST(ReachabilityIndexTest, RebuildTracksMutation) {
  Digraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ReachabilityIndex index(g);
  EXPECT_TRUE(index.Reaches(0, 1));
  EXPECT_FALSE(index.Reaches(1, 2));
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_FALSE(index.Reaches(0, 2));  // stale until rebuild
  index.Rebuild();
  EXPECT_TRUE(index.Reaches(0, 2));
}

TEST(ReachabilityIndexTest, CountPairsAndBytes) {
  Digraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ReachabilityIndex index(g);
  EXPECT_EQ(index.CountPairs(), 6);
  EXPECT_GT(index.ApproxBytes(), 0);
}

TEST(ReachabilityIndexTest, ApplyEdgeDeltaTracksMutation) {
  Digraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ReachabilityIndex index(g);
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  index.ApplyEdgeDelta(1, 2);
  EXPECT_TRUE(index.Reaches(0, 2));  // transitively through the new edge
  EXPECT_TRUE(index.Reaches(1, 2));
  EXPECT_FALSE(index.Reaches(2, 0));
}

TEST(ReachabilityIndexTest, ApplyEdgeDeltaHandlesNewNodes) {
  Digraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ReachabilityIndex index(g);
  const NodeIndex n = g.AddNode();
  ASSERT_TRUE(g.AddEdge(1, n).ok());
  index.ApplyEdgeDelta(1, n);
  EXPECT_TRUE(index.Reaches(0, n));
  EXPECT_TRUE(index.Reaches(1, n));
  EXPECT_FALSE(index.Reaches(n, 0));
  EXPECT_EQ(index.CountPairs(), 3);
}

// Incremental maintenance fuzz: grow a random graph edge by edge
// (occasionally adding nodes) and check the delta-maintained closure
// equals a from-scratch Rebuild — and BFS ground truth — after every
// step. Uses general digraphs, not DAGs: the delta update must stay
// exact in the presence of cycles.
TEST(ReachabilityIndexTest, ApplyEdgeDeltaMatchesRebuildFuzz) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 97);
    Digraph g(3);
    ReachabilityIndex incremental(g);
    for (int step = 0; step < 60; ++step) {
      if (rng.Bernoulli(0.15)) {
        (void)g.AddNode();
      }
      const NodeIndex u =
          static_cast<NodeIndex>(rng.Uniform(
              static_cast<uint64_t>(g.num_nodes())));
      const NodeIndex v =
          static_cast<NodeIndex>(rng.Uniform(
              static_cast<uint64_t>(g.num_nodes())));
      if (u == v || !g.AddEdge(u, v).ok()) continue;  // parallel edge
      incremental.ApplyEdgeDelta(u, v);

      ReachabilityIndex fresh(g);
      ASSERT_EQ(incremental.CountPairs(), fresh.CountPairs())
          << "seed " << seed << " step " << step;
      for (NodeIndex a = 0; a < g.num_nodes(); ++a) {
        for (NodeIndex b = 0; b < g.num_nodes(); ++b) {
          if (a == b) continue;
          ASSERT_EQ(incremental.Reaches(a, b), fresh.Reaches(a, b))
              << "seed " << seed << " step " << step << " pair " << a
              << "->" << b;
          ASSERT_EQ(incremental.Reaches(a, b), PathExists(g, a, b));
        }
      }
    }
  }
}

}  // namespace
}  // namespace paw

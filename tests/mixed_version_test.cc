// Mixed-version store tests: a v1 (text-payload) store created by the
// text codec must open, accept binary appends, and compact under the
// default (binary) build; the marker negotiation rules must hold; and
// recovered state must be byte-identical across the version boundary.
// This is the compatibility contract for stores created by earlier
// releases ("a v1-format store still opens and round-trips").

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/common/file_io.h"
#include "src/common/random.h"
#include "src/privacy/policy_text.h"
#include "src/provenance/serialize.h"
#include "src/repo/disease.h"
#include "src/repo/workload.h"
#include "src/store/persistent_repository.h"
#include "src/store/record.h"
#include "src/store/sharded_repository.h"
#include "src/store/snapshot.h"
#include "src/store/wal.h"
#include "src/workflow/serialize.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_mixed_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string Marker(const std::string& dir) {
  return ReadFileToString(dir + "/PAWSTORE").value_or("<missing>");
}

/// Path of the store's active (highest-seq) WAL segment.
std::string WalFile(const std::string& dir) {
  auto segments = ListWalSegments(dir);
  EXPECT_TRUE(segments.ok() && !segments.value().empty())
      << "no WAL segments under " << dir;
  return segments.value().back().path;
}

StoreOptions TextOptions() {
  StoreOptions options;
  options.codec = PayloadCodec::kText;
  return options;
}

/// Serialized entries in LSN order for byte-for-byte comparison.
std::vector<std::string> Dump(const Repository& repo) {
  std::vector<std::string> out;
  for (int id = 0; id < repo.num_specs(); ++id) {
    out.push_back(Serialize(repo.entry(id).spec) +
                  SerializePolicy(repo.entry(id).policy));
  }
  for (int id = 0; id < repo.num_executions(); ++id) {
    out.push_back(
        SerializeExecution(repo.execution(ExecutionId(id)).exec));
  }
  return out;
}

/// Builds a v1 store: text codec, marker "pawstore 1".
std::vector<std::string> BuildV1Store(const std::string& dir,
                                      int executions) {
  auto store = PersistentRepository::Init(dir, TextOptions());
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  auto spec = BuildDiseaseSpec();
  EXPECT_TRUE(store.value()
                  .AddSpecification(std::move(spec).value(),
                                    DiseasePolicy())
                  .ok());
  for (int i = 0; i < executions; ++i) {
    auto exec = RunDiseaseExecution(store.value().repo().entry(0).spec);
    EXPECT_TRUE(
        store.value().AddExecution(0, std::move(exec).value()).ok());
  }
  EXPECT_TRUE(store.value().Sync().ok());
  return Dump(store.value().repo());
}

TEST(MixedVersionTest, TextCodecInitWritesV1Marker) {
  const std::string dir = TestDir("v1_marker");
  BuildV1Store(dir, 1);
  EXPECT_EQ(Marker(dir), "pawstore 1\n");
  // A text-codec reopen leaves the marker alone.
  auto reopened = PersistentRepository::Open(dir, TextOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().format_version(), 1);
  EXPECT_EQ(Marker(dir), "pawstore 1\n");
}

TEST(MixedVersionTest, V1StoreOpensUnderBinaryBuildAndUpgradesMarker) {
  const std::string dir = TestDir("v1_open");
  const std::vector<std::string> before = BuildV1Store(dir, 3);

  // Default (binary-codec) open: state recovered byte-for-byte, marker
  // bumped to v2 before any append could write a binary record.
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().format_version(), 2);
  EXPECT_EQ(Marker(dir), "pawstore 2\n");
  EXPECT_EQ(Dump(reopened.value().repo()), before);
}

TEST(MixedVersionTest, FailedOpenDoesNotUpgradeMarker) {
  // A diagnostic open of a broken v1 store must not mutate it: the
  // marker bump commits only after recovery succeeds.
  const std::string dir = TestDir("failed_open");
  BuildV1Store(dir, 1);
  // Corrupt the WAL header (atomically written, so this models media
  // damage); recovery must fail with a Status.
  const std::string wal_path = WalFile(dir);
  auto contents = ReadFileToString(wal_path);
  ASSERT_TRUE(contents.ok());
  std::string damaged = contents.value();
  damaged[4] = static_cast<char>(damaged[4] ^ 0xFF);  // header CRC byte
  ASSERT_TRUE(AtomicWriteFile(wal_path, damaged).ok());
  EXPECT_FALSE(PersistentRepository::Open(dir).ok());
  EXPECT_EQ(Marker(dir), "pawstore 1\n");
  // Restore the WAL: the store opens and only now upgrades.
  ASSERT_TRUE(AtomicWriteFile(wal_path, contents.value()).ok());
  ASSERT_TRUE(PersistentRepository::Open(dir).ok());
  EXPECT_EQ(Marker(dir), "pawstore 2\n");
}

TEST(MixedVersionTest, MixedWalReplaysTextThenBinaryRecords) {
  const std::string dir = TestDir("mixed_wal");
  std::vector<std::string> before = BuildV1Store(dir, 2);
  {
    // Ingest under the binary codec: the WAL now holds text records
    // followed by binary records.
    auto store = PersistentRepository::Open(dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 2; ++i) {
      auto exec = RunDiseaseExecution(store.value().repo().entry(0).spec);
      ASSERT_TRUE(
          store.value().AddExecution(0, std::move(exec).value()).ok());
    }
    ASSERT_TRUE(store.value().Sync().ok());
    before = Dump(store.value().repo());
  }
  // Prove the WAL is genuinely mixed-version.
  {
    WalReplay replay;
    auto wal = WriteAheadLog::Open(dir, &replay);
    ASSERT_TRUE(wal.ok());
    int text_records = 0, binary_records = 0;
    for (const Record& r : replay.records) {
      if (r.type == RecordType::kSpec || r.type == RecordType::kExecution) {
        ++text_records;
      }
      if (r.type == RecordType::kSpecV2 ||
          r.type == RecordType::kExecutionV2) {
        ++binary_records;
      }
    }
    EXPECT_EQ(text_records, 3);   // spec + 2 executions from the v1 run
    EXPECT_EQ(binary_records, 2); // the binary-codec ingest
  }
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().repo().num_executions(), 4);
  EXPECT_EQ(Dump(reopened.value().repo()), before);
}

TEST(MixedVersionTest, CompactionUpgradesRecordsToBinary) {
  const std::string dir = TestDir("compact_upgrade");
  std::vector<std::string> before = BuildV1Store(dir, 3);
  {
    auto store = PersistentRepository::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Compact().ok());
  }
  // The snapshot now holds only binary records.
  auto snapshot = FindLatestSnapshot(dir);
  ASSERT_TRUE(snapshot.ok());
  auto contents = ReadFileToString(snapshot.value().path);
  ASSERT_TRUE(contents.ok());
  RecordReader reader(contents.value());
  Record record;
  ASSERT_EQ(reader.Next(&record), ReadOutcome::kRecord);
  EXPECT_EQ(record.type, RecordType::kSnapshotHeader);
  int binary_records = 0, text_records = 0;
  while (reader.Next(&record) == ReadOutcome::kRecord) {
    if (record.type == RecordType::kSpecV2 ||
        record.type == RecordType::kExecutionV2) {
      ++binary_records;
    } else {
      ++text_records;
    }
  }
  EXPECT_EQ(text_records, 0);
  EXPECT_EQ(binary_records, 4);  // spec + 3 executions, all re-encoded

  // And the upgraded store still recovers the identical state.
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Dump(reopened.value().repo()), before);
  EXPECT_EQ(reopened.value().recovery().records_replayed, 0u);
}

TEST(MixedVersionTest, TextCodecKeepsWritingIntoV2Store) {
  // Writing text records into a v2 store is legal (v2 readers accept
  // both); the marker must not be downgraded.
  const std::string dir = TestDir("text_into_v2");
  {
    auto store = PersistentRepository::Init(dir);  // v2 marker
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(
        store.value().AddSpecification(std::move(spec).value()).ok());
  }
  {
    auto store = PersistentRepository::Open(dir, TextOptions());
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.value().format_version(), 2);
    auto exec = RunDiseaseExecution(store.value().repo().entry(0).spec);
    ASSERT_TRUE(
        store.value().AddExecution(0, std::move(exec).value()).ok());
    ASSERT_TRUE(store.value().Sync().ok());
  }
  EXPECT_EQ(Marker(dir), "pawstore 2\n");
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().repo().num_executions(), 1);
}

TEST(MixedVersionTest, ShardedV1StoreUpgradesShardByShard) {
  const std::string dir = TestDir("sharded_v1");
  std::vector<std::string> before;
  {
    auto store = ShardedRepository::Init(dir, 3, TextOptions());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    Rng rng(21);
    for (int i = 0; i < 4; ++i) {
      auto spec = GenerateSpec(WorkloadParams{}, &rng,
                               "mixed" + std::to_string(i));
      ASSERT_TRUE(spec.ok());
      auto ref = store.value().AddSpecification(std::move(spec).value());
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      const Specification& stored =
          store.value().shard(ref.value().shard).repo().entry(
              ref.value().id).spec;
      auto exec = GenerateExecution(stored, &rng);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(store.value()
                      .AddExecution(ref.value(), std::move(exec).value())
                      .ok());
    }
    ASSERT_TRUE(store.value().Sync().ok());
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(store.value().shard(s).format_version(), 1);
      before.push_back(
          ReadFileToString(store.value().shard(s).dir() + "/PAWSTORE")
              .value_or(""));
    }
  }
  // Reopen under the binary default: every shard upgrades.
  auto reopened = ShardedRepository::Open(dir, {}, /*threads=*/3);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(reopened.value().shard(s).format_version(), 2);
  }
  EXPECT_EQ(reopened.value().num_specs(), 4);
  EXPECT_EQ(reopened.value().num_executions(), 4);
}

}  // namespace
}  // namespace paw

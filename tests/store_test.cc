// Tests for the persistent provenance store: WAL append + replay,
// snapshot + compaction, torn-tail crash recovery, and byte-for-byte
// round trips across process-restart boundaries (simulated by closing
// and reopening the store object).

#include "src/store/persistent_repository.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/file_io.h"
#include "src/common/random.h"
#include "src/privacy/policy_text.h"
#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/repo/disease.h"
#include "src/repo/workload.h"
#include "src/store/codec.h"
#include "src/store/snapshot.h"
#include "src/store/wal.h"
#include "src/workflow/builder.h"
#include "src/workflow/serialize.h"
#include "tests/store_test_util.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

/// Fresh, empty store directory per test.
std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_store_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Path of the store's *active* WAL segment (the highest seq). With
/// default options a store has exactly one live segment between
/// compactions, so this is "the log" most assertions mean.
std::string WalFile(const std::string& dir) {
  auto segments = ListWalSegments(dir);
  EXPECT_TRUE(segments.ok() && !segments.value().empty())
      << "no WAL segments under " << dir;
  return segments.value().back().path;
}

int64_t FileSize(const std::string& path) {
  return static_cast<int64_t>(fs::file_size(path));
}

/// Cuts the file at `path` down to `size` bytes (simulated crash).
void CutFile(const std::string& path, int64_t size) {
  ASSERT_TRUE(TruncateFile(path, size).ok());
}

/// Serialized view of every entry, for byte-for-byte comparisons.
struct Snapshotted {
  std::vector<std::string> specs;
  std::vector<std::string> policies;
  std::vector<std::string> execs;
};

Snapshotted Dump(const Repository& repo) {
  Snapshotted out;
  for (int id = 0; id < repo.num_specs(); ++id) {
    out.specs.push_back(Serialize(repo.entry(id).spec));
    out.policies.push_back(SerializePolicy(repo.entry(id).policy));
  }
  for (int id = 0; id < repo.num_executions(); ++id) {
    out.execs.push_back(
        SerializeExecution(repo.execution(ExecutionId(id)).exec));
  }
  return out;
}

void ExpectSameBytes(const Snapshotted& a, const Snapshotted& b) {
  EXPECT_EQ(a.specs, b.specs);
  EXPECT_EQ(a.policies, b.policies);
  EXPECT_EQ(a.execs, b.execs);
}

TEST(StoreTest, InitCreatesEmptyStore) {
  const std::string dir = TestDir("init");
  auto store = PersistentRepository::Init(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(PathExists(dir + "/PAWSTORE"));
  EXPECT_TRUE(PathExists(WalFile(dir)));
  EXPECT_EQ(store.value().lsn(), 0u);
  EXPECT_EQ(store.value().repo().num_specs(), 0);

  CloseStore(&store);
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().repo().num_specs(), 0);
  EXPECT_FALSE(reopened.value().recovery().torn_tail);
}

TEST(StoreTest, InitTwiceFails) {
  const std::string dir = TestDir("init_twice");
  ASSERT_TRUE(PersistentRepository::Init(dir).ok());
  EXPECT_TRUE(
      PersistentRepository::Init(dir).status().IsAlreadyExists());
}

TEST(StoreTest, OpenRejectsNonStore) {
  const std::string dir = TestDir("non_store");
  EXPECT_FALSE(PersistentRepository::Open(dir).ok());
}

TEST(StoreTest, SpecAndExecutionsSurviveReopen) {
  const std::string dir = TestDir("reopen");
  Snapshotted before;
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    auto sid = store.value().AddSpecification(std::move(spec).value(),
                                              DiseasePolicy());
    ASSERT_TRUE(sid.ok()) << sid.status().ToString();
    EXPECT_EQ(sid.value(), 0);
    for (int i = 0; i < 3; ++i) {
      auto exec =
          RunDiseaseExecution(store.value().repo().entry(0).spec);
      ASSERT_TRUE(exec.ok());
      auto eid = store.value().AddExecution(0, std::move(exec).value());
      ASSERT_TRUE(eid.ok()) << eid.status().ToString();
    }
    EXPECT_EQ(store.value().lsn(), 4u);
    before = Dump(store.value().repo());
  }  // store closed; only the files remain

  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const PersistentRepository& store = reopened.value();
  EXPECT_EQ(store.repo().num_specs(), 1);
  EXPECT_EQ(store.repo().num_executions(), 3);
  EXPECT_EQ(store.lsn(), 4u);
  EXPECT_EQ(store.recovery().records_replayed, 4u);
  EXPECT_FALSE(store.recovery().torn_tail);
  ExpectSameBytes(Dump(store.repo()), before);
  // Recovered entries carry persistence metadata.
  EXPECT_EQ(store.repo().entry(0).persist.lsn, 1u);
  EXPECT_EQ(store.repo().entry(0).persist.locator, "wal:1");
  EXPECT_EQ(store.repo().execution(ExecutionId(2)).persist.lsn, 4u);
}

// Acceptance: a spec plus >= 100 executions survive restart
// byte-for-byte.
TEST(StoreTest, HundredExecutionsSurviveRestartByteForByte) {
  const std::string dir = TestDir("hundred");
  constexpr int kExecutions = 100;
  Snapshotted before;
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    Rng rng(42);
    auto spec = GenerateSpec(WorkloadParams{}, &rng, "persisted");
    ASSERT_TRUE(spec.ok());
    auto sid = store.value().AddSpecification(std::move(spec).value());
    ASSERT_TRUE(sid.ok());
    for (int i = 0; i < kExecutions; ++i) {
      auto exec = GenerateExecution(
          store.value().repo().entry(sid.value()).spec, &rng);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      ASSERT_TRUE(
          store.value()
              .AddExecution(sid.value(), std::move(exec).value())
              .ok());
    }
    ASSERT_TRUE(store.value().Sync().ok());
    before = Dump(store.value().repo());
  }
  ASSERT_EQ(before.execs.size(), static_cast<size_t>(kExecutions));

  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().repo().num_executions(), kExecutions);
  EXPECT_EQ(reopened.value().lsn(),
            static_cast<uint64_t>(kExecutions) + 1);
  ExpectSameBytes(Dump(reopened.value().repo()), before);
}

TEST(StoreTest, TornTailMidRecordRecoversValidPrefix) {
  const std::string dir = TestDir("torn_mid");
  int64_t boundary_before_last = 0;
  Snapshotted before_last;
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(store.value()
                    .AddSpecification(std::move(spec).value())
                    .ok());
    auto e1 = RunDiseaseExecution(store.value().repo().entry(0).spec);
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(store.value().AddExecution(0, std::move(e1).value()).ok());
    before_last = Dump(store.value().repo());
    boundary_before_last = FileSize(WalFile(dir));
    auto e2 = RunDiseaseExecution(store.value().repo().entry(0).spec);
    ASSERT_TRUE(e2.ok());
    ASSERT_TRUE(store.value().AddExecution(0, std::move(e2).value()).ok());
  }
  const int64_t full = FileSize(WalFile(dir));
  ASSERT_GT(full, boundary_before_last);

  // Crash mid-append: cut into the middle of the last record.
  const int64_t cut = boundary_before_last + (full - boundary_before_last) / 2;
  CutFile(WalFile(dir), cut);

  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const PersistentRepository& store = reopened.value();
  EXPECT_TRUE(store.recovery().torn_tail);
  EXPECT_EQ(store.recovery().dropped_bytes,
            static_cast<uint64_t>(cut - boundary_before_last));
  EXPECT_FALSE(store.recovery().tail_error.empty());
  EXPECT_EQ(store.repo().num_specs(), 1);
  EXPECT_EQ(store.repo().num_executions(), 1);
  EXPECT_EQ(store.lsn(), 2u);
  ExpectSameBytes(Dump(store.repo()), before_last);
  // Repair truncated the file back to the record boundary.
  EXPECT_EQ(FileSize(WalFile(dir)), boundary_before_last);
}

TEST(StoreTest, TornTailRepairAllowsFurtherAppends) {
  const std::string dir = TestDir("torn_append");
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(store.value()
                    .AddSpecification(std::move(spec).value())
                    .ok());
  }
  // Tear the spec record's tail off.
  CutFile(WalFile(dir), FileSize(WalFile(dir)) - 3);
  {
    auto reopened = PersistentRepository::Open(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_TRUE(reopened.value().recovery().torn_tail);
    EXPECT_EQ(reopened.value().repo().num_specs(), 0);
    EXPECT_EQ(reopened.value().lsn(), 0u);
    // The store is usable again: re-add after the repair.
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(reopened.value()
                    .AddSpecification(std::move(spec).value())
                    .ok());
  }
  auto again = PersistentRepository::Open(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().recovery().torn_tail);
  EXPECT_EQ(again.value().repo().num_specs(), 1);
}

TEST(StoreTest, CutAtRecordBoundaryIsCleanRecovery) {
  const std::string dir = TestDir("boundary");
  int64_t boundary = 0;
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(store.value()
                    .AddSpecification(std::move(spec).value())
                    .ok());
    boundary = FileSize(WalFile(dir));
    auto exec = RunDiseaseExecution(store.value().repo().entry(0).spec);
    ASSERT_TRUE(exec.ok());
    ASSERT_TRUE(
        store.value().AddExecution(0, std::move(exec).value()).ok());
  }
  // Crash exactly between two appends: the file ends on a boundary.
  CutFile(WalFile(dir), boundary);

  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok());
  // No torn tail: the shorter log is simply a valid, older state.
  EXPECT_FALSE(reopened.value().recovery().torn_tail);
  EXPECT_EQ(reopened.value().recovery().dropped_bytes, 0u);
  EXPECT_EQ(reopened.value().repo().num_specs(), 1);
  EXPECT_EQ(reopened.value().repo().num_executions(), 0);
  EXPECT_EQ(reopened.value().lsn(), 1u);
}

// Acceptance: recovery after snapshot + compaction replays only the
// log suffix.
TEST(StoreTest, CompactionReplaysOnlySuffix) {
  const std::string dir = TestDir("compact");
  Snapshotted before;
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(store.value()
                    .AddSpecification(std::move(spec).value(),
                                      DiseasePolicy())
                    .ok());
    for (int i = 0; i < 10; ++i) {
      auto exec = RunDiseaseExecution(store.value().repo().entry(0).spec);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(
          store.value().AddExecution(0, std::move(exec).value()).ok());
    }
    ASSERT_TRUE(store.value().Compact().ok());
    EXPECT_EQ(store.value().records_since_snapshot(), 0u);
    // Five more executions land in the fresh log only.
    for (int i = 0; i < 5; ++i) {
      auto exec = RunDiseaseExecution(store.value().repo().entry(0).spec);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(
          store.value().AddExecution(0, std::move(exec).value()).ok());
    }
    before = Dump(store.value().repo());
  }

  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const PersistentRepository& store = reopened.value();
  EXPECT_EQ(store.recovery().snapshot_lsn, 11u);
  EXPECT_EQ(store.recovery().records_replayed, 5u);
  EXPECT_EQ(store.recovery().records_skipped, 0u);
  EXPECT_EQ(store.repo().num_executions(), 15);
  EXPECT_EQ(store.lsn(), 16u);
  ExpectSameBytes(Dump(store.repo()), before);
  // Snapshot-recovered entries carry full metadata: the covering
  // snapshot's LSN, a payload checksum, and a snapshot locator.
  EXPECT_EQ(store.repo().entry(0).persist.locator, "snapshot:11");
  EXPECT_EQ(store.repo().entry(0).persist.lsn, 11u);
  EXPECT_NE(store.repo().entry(0).persist.payload_crc, 0u);
  EXPECT_GT(store.repo().entry(0).persist.payload_bytes, 0u);
  EXPECT_EQ(store.repo().execution(ExecutionId(14)).persist.locator,
            "wal:16");
  EXPECT_EQ(store.repo().execution(ExecutionId(14)).persist.lsn, 16u);
}

TEST(StoreTest, QuoteEdgedValuesSurviveRestart) {
  // Data values that begin and end with a double quote stress the
  // text-payload framing (regression: a spurious unquoting pass used
  // to strip them during replay).
  const std::string dir = TestDir("quote_edged");
  std::string stored_value;
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(store.value()
                    .AddSpecification(std::move(spec).value())
                    .ok());
    ValueMap inputs;
    for (const auto& [label, value] : DiseaseInputs()) {
      inputs[label] = "\"" + value + "\"";
    }
    FunctionRegistry fns = BuildDiseaseFunctions();
    auto exec =
        Execute(store.value().repo().entry(0).spec, fns, inputs);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    auto item = exec.value().FindItemByLabel("SNPs");
    ASSERT_TRUE(item.ok());
    stored_value = exec.value().item(item.value()).value;
    ASSERT_EQ(stored_value.front(), '"');
    ASSERT_EQ(stored_value.back(), '"');
    ASSERT_TRUE(
        store.value().AddExecution(0, std::move(exec).value()).ok());
  }
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Execution& exec =
      reopened.value().repo().execution(ExecutionId(0)).exec;
  auto item = exec.FindItemByLabel("SNPs");
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(exec.item(item.value()).value, stored_value);
}

TEST(StoreTest, EmptyInputValuesSurviveRestart) {
  // An empty item value serializes as `value=""` — it must replay
  // (regression: the field parser used to reject empty values, which
  // would have made the store unopenable after an acked append).
  const std::string dir = TestDir("empty_values");
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(store.value()
                    .AddSpecification(std::move(spec).value())
                    .ok());
    ValueMap inputs = DiseaseInputs();
    inputs["SNPs"] = "";
    FunctionRegistry fns = BuildDiseaseFunctions();
    auto exec =
        Execute(store.value().repo().entry(0).spec, fns, inputs);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    auto eid = store.value().AddExecution(0, std::move(exec).value());
    ASSERT_TRUE(eid.ok()) << eid.status().ToString();
  }
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Execution& exec =
      reopened.value().repo().execution(ExecutionId(0)).exec;
  auto item = exec.FindItemByLabel("SNPs");
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(exec.item(item.value()).value, "");
}

/// A one-workflow spec whose edge label embeds ';' (the text format's
/// list separator).
Result<Specification> SemicolonSpec() {
  SpecBuilder builder("semi");
  WorkflowId w = builder.AddWorkflow("W1", "top", 0);
  EXPECT_TRUE(builder.SetRoot(w).ok());
  ModuleId in = builder.AddInput(w, "I");
  ModuleId m1 = builder.AddModule(w, "M1", "Work", {});
  ModuleId out = builder.AddOutput(w, "O");
  EXPECT_TRUE(builder.Connect(in, m1, {"age;zip"}).ok());
  EXPECT_TRUE(builder.Connect(m1, out, {"result"}).ok());
  return std::move(builder).Build();
}

TEST(StoreTest, SemicolonLabelRejectedByTextCodecWithoutLogging) {
  // ';' is the list separator inside the text format's labels= and
  // keywords= fields, so a label containing it would *parse* after
  // replay — but as two labels. The round-trip verify gate must reject
  // it up front when the store writes text payloads.
  auto spec = SemicolonSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  const std::string dir = TestDir("semicolon");
  StoreOptions options;
  options.codec = PayloadCodec::kText;
  auto store = PersistentRepository::Init(dir, options);
  ASSERT_TRUE(store.ok());
  const uint64_t lsn_before = store.value().lsn();
  auto added = store.value().AddSpecification(std::move(spec).value());
  EXPECT_FALSE(added.ok());
  EXPECT_TRUE(added.status().IsInvalidArgument());
  EXPECT_EQ(store.value().lsn(), lsn_before);
  // The store stays healthy.
  CloseStore(&store);
  auto reopened = PersistentRepository::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().repo().num_specs(), 0);
}

TEST(StoreTest, SemicolonLabelSurvivesRestartUnderBinaryCodec) {
  // The binary codec carries raw string bytes, so the same label the
  // text codec must refuse round-trips verbatim.
  auto spec = SemicolonSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  const std::string dir = TestDir("semicolon_binary");
  auto store = PersistentRepository::Init(dir);  // binary by default
  ASSERT_TRUE(store.ok());
  auto added = store.value().AddSpecification(std::move(spec).value());
  ASSERT_TRUE(added.ok()) << added.status().ToString();

  CloseStore(&store);
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Specification& recovered = reopened.value().repo().entry(0).spec;
  auto m1 = recovered.FindModule("M1");
  ASSERT_TRUE(m1.ok());
  auto in_edges = recovered.InEdges(m1.value());
  ASSERT_EQ(in_edges.size(), 1u);
  EXPECT_EQ(in_edges[0]->labels,
            std::vector<std::string>{"age;zip"});
}

TEST(StoreTest, UnreplayableExecutionRejectedByTextCodecWithoutLogging) {
  // A raw newline inside an item value breaks the line-oriented text
  // payload; the decode-verify gate must reject it *before* it
  // reaches the WAL, leaving the store healthy.
  const std::string dir = TestDir("unreplayable");
  StoreOptions options;
  options.codec = PayloadCodec::kText;
  auto store = PersistentRepository::Init(dir, options);
  ASSERT_TRUE(store.ok());
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(
      store.value().AddSpecification(std::move(spec).value()).ok());
  ValueMap inputs = DiseaseInputs();
  inputs["SNPs"] = "line1\nline2";
  FunctionRegistry fns = BuildDiseaseFunctions();
  auto exec = Execute(store.value().repo().entry(0).spec, fns, inputs);
  ASSERT_TRUE(exec.ok());
  const uint64_t lsn_before = store.value().lsn();
  EXPECT_FALSE(
      store.value().AddExecution(0, std::move(exec).value()).ok());
  EXPECT_EQ(store.value().lsn(), lsn_before);
  // The store remains fully usable and reopenable.
  auto good = RunDiseaseExecution(store.value().repo().entry(0).spec);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(
      store.value().AddExecution(0, std::move(good).value()).ok());
  CloseStore(&store);
  auto reopened = PersistentRepository::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().repo().num_executions(), 1);
}

TEST(StoreTest, NewlineValueSurvivesRestartUnderBinaryCodec) {
  // The same raw-newline value the text codec must refuse is a plain
  // byte to the binary codec.
  const std::string dir = TestDir("newline_binary");
  auto store = PersistentRepository::Init(dir);  // binary by default
  ASSERT_TRUE(store.ok());
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(
      store.value().AddSpecification(std::move(spec).value()).ok());
  ValueMap inputs = DiseaseInputs();
  inputs["SNPs"] = "line1\nline2";
  FunctionRegistry fns = BuildDiseaseFunctions();
  auto exec = Execute(store.value().repo().entry(0).spec, fns, inputs);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(
      store.value().AddExecution(0, std::move(exec).value()).ok());

  CloseStore(&store);
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Execution& recovered =
      reopened.value().repo().execution(ExecutionId(0)).exec;
  auto item = recovered.FindItemByLabel("SNPs");
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(recovered.item(item.value()).value, "line1\nline2");
}

TEST(StoreTest, CrashBetweenSnapshotAndLogSwapSkipsCoveredRecords) {
  const std::string dir = TestDir("snap_crash");
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(store.value()
                    .AddSpecification(std::move(spec).value())
                    .ok());
    for (int i = 0; i < 4; ++i) {
      auto exec = RunDiseaseExecution(store.value().repo().entry(0).spec);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(
          store.value().AddExecution(0, std::move(exec).value()).ok());
    }
    // Simulate the crash window: the snapshot lands on disk but the
    // old log is never swapped out.
    auto written =
        WriteSnapshot(dir, store.value().repo(), store.value().lsn());
    ASSERT_TRUE(written.ok()) << written.status().ToString();
  }

  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const PersistentRepository& store = reopened.value();
  EXPECT_EQ(store.recovery().snapshot_lsn, 5u);
  EXPECT_EQ(store.recovery().records_skipped, 5u);
  EXPECT_EQ(store.recovery().records_replayed, 0u);
  EXPECT_EQ(store.repo().num_specs(), 1);
  EXPECT_EQ(store.repo().num_executions(), 4);
  EXPECT_EQ(store.lsn(), 5u);
}

TEST(StoreTest, AutoCompactionTriggersAndKeepsOnlyNewestSnapshot) {
  const std::string dir = TestDir("auto_compact");
  StoreOptions options;
  options.snapshot_every = 4;
  auto store = PersistentRepository::Init(dir, options);
  ASSERT_TRUE(store.ok());
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(
      store.value().AddSpecification(std::move(spec).value()).ok());
  for (int i = 0; i < 9; ++i) {
    auto exec = RunDiseaseExecution(store.value().repo().entry(0).spec);
    ASSERT_TRUE(exec.ok());
    ASSERT_TRUE(
        store.value().AddExecution(0, std::move(exec).value()).ok());
  }
  // 10 records with a threshold of 4: compactions fired and at most
  // one snapshot file remains.
  auto latest = FindLatestSnapshot(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_GE(latest.value().lsn, 4u);
  int snapshot_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("snapshot-", 0) == 0) {
      ++snapshot_files;
    }
  }
  EXPECT_EQ(snapshot_files, 1);
  EXPECT_LT(store.value().records_since_snapshot(),
            options.snapshot_every);
}

TEST(StoreTest, RejectsForeignExecutionWithoutLogging) {
  const std::string dir = TestDir("foreign");
  auto store = PersistentRepository::Init(dir);
  ASSERT_TRUE(store.ok());
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(
      store.value().AddSpecification(std::move(spec).value()).ok());
  // An execution built against a *different* Specification object.
  auto other = BuildDiseaseSpec();
  ASSERT_TRUE(other.ok());
  auto exec = RunDiseaseExecution(other.value());
  ASSERT_TRUE(exec.ok());
  const uint64_t lsn_before = store.value().lsn();
  EXPECT_FALSE(
      store.value().AddExecution(0, std::move(exec).value()).ok());
  EXPECT_FALSE(store.value().AddExecution(7, Execution(other.value())).ok());
  // Rejected operations must not grow the log.
  EXPECT_EQ(store.value().lsn(), lsn_before);
}

// Satellite edge case: compacting a store that has never seen a write
// must leave it reopenable (snapshot at LSN 0, empty log).
TEST(StoreTest, CompactOnEmptyStoreIsReopenable) {
  const std::string dir = TestDir("compact_empty");
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Compact().ok());
    ASSERT_TRUE(store.value().Compact().ok());  // idempotent
    EXPECT_EQ(store.value().records_since_snapshot(), 0u);
  }
  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().repo().num_specs(), 0);
  EXPECT_EQ(reopened.value().lsn(), 0u);
  // Still writable afterwards.
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(
      reopened.value().AddSpecification(std::move(spec).value()).ok());
}

// Satellite edge case: a crash between a snapshot's temp write and its
// rename leaves `snapshot-<lsn>.paws.tmp` behind. It must never be
// picked up as a snapshot, and Open reclaims it.
TEST(StoreTest, StaleSnapshotTempFileIsIgnoredAndReclaimed) {
  const std::string dir = TestDir("stale_tmp");
  {
    auto store = PersistentRepository::Init(dir);
    ASSERT_TRUE(store.ok());
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(
        store.value().AddSpecification(std::move(spec).value()).ok());
    ASSERT_TRUE(store.value().Sync().ok());
  }
  // Simulate the crash artifact: a half-written snapshot at a *higher*
  // LSN than anything durable, plus junk bytes inside.
  const std::string tmp =
      dir + "/" + SnapshotFileName(999) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    out << "half-written snapshot bytes";
  }
  ASSERT_TRUE(PathExists(tmp));

  auto reopened = PersistentRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // The store recovered from the WAL, not the junk.
  EXPECT_EQ(reopened.value().repo().num_specs(), 1);
  EXPECT_EQ(reopened.value().recovery().snapshot_lsn, 0u);
  EXPECT_EQ(reopened.value().recovery().records_replayed, 1u);
  // And the leftover was reclaimed.
  EXPECT_FALSE(PathExists(tmp));
  // Compaction still lands on the correct LSN afterwards.
  ASSERT_TRUE(reopened.value().Compact().ok());
  auto latest = FindLatestSnapshot(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().lsn, 1u);
}

// Property: seeded-random specs and policies round-trip through the
// kSpec payload codec byte-for-byte.
TEST(StoreFuzzTest, SpecPayloadsRoundTripExactly) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed);
    auto spec = GenerateSpec(WorkloadParams{}, &rng,
                             "fuzz" + std::to_string(seed));
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    // A policy referencing real modules, with a hostile label thrown in.
    PolicySet policy;
    policy.data.default_level = static_cast<int>(rng.Uniform(3));
    policy.data.label_level["nasty \"=\\ label"] =
        static_cast<int>(rng.Uniform(4));
    for (const Module& m : spec.value().modules()) {
      if (m.kind != ModuleKind::kAtomic) continue;
      if (!rng.Bernoulli(0.2)) continue;
      policy.module_reqs.push_back(
          {m.code, static_cast<int64_t>(rng.UniformInt(2, 8)),
           static_cast<int>(rng.Uniform(3))});
    }
    const std::string payload = EncodeSpecPayload(spec.value(), policy);
    auto decoded = DecodeSpecPayload(payload);
    ASSERT_TRUE(decoded.ok())
        << "seed=" << seed << ": " << decoded.status().ToString();
    EXPECT_EQ(EncodeSpecPayload(decoded.value().spec,
                                decoded.value().policy),
              payload)
        << "seed=" << seed;
    EXPECT_EQ(Serialize(decoded.value().spec), Serialize(spec.value()));
  }
}

// Property: seeded-random executions round-trip through the kExecution
// payload codec byte-for-byte, including quote-edged and empty values.
TEST(StoreFuzzTest, ExecutionPayloadsRoundTripExactly) {
  Rng rng(4242);
  auto spec = GenerateSpec(WorkloadParams{}, &rng, "fuzz-exec");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  for (int trial = 0; trial < 20; ++trial) {
    auto exec = GenerateExecution(spec.value(), &rng);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    const int spec_id = static_cast<int>(rng.Uniform(1000));
    const std::string payload =
        EncodeExecutionPayload(spec_id, exec.value());
    auto decoded = DecodeExecutionPayload(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().spec_id, spec_id);
    auto replayed = ParseExecution(decoded.value().exec_text, spec.value());
    ASSERT_TRUE(replayed.ok())
        << "trial=" << trial << ": " << replayed.status().ToString();
    EXPECT_EQ(EncodeExecutionPayload(spec_id, replayed.value()), payload)
        << "trial=" << trial;
  }
}

// Satellite: the v1 decoder rejects spec ids that overflow int32 (they
// could only appear via corruption that slipped past the CRC, or a
// buggy writer).
TEST(StoreFuzzTest, ExecutionPayloadSpecIdOverflowRejected) {
  std::string payload;
  PutFixed32(&payload, 0x80000000u);  // > INT32_MAX
  payload += "execution spec=\"x\"\n";
  EXPECT_TRUE(DecodeExecutionPayload(payload).status().IsInvalidArgument());
  EXPECT_TRUE(DecodeExecutionSpecId(RecordType::kExecution, payload)
                  .status()
                  .IsInvalidArgument());

  std::string binary;
  PutVarint32(&binary, 0xFFFFFFFFu);  // > INT32_MAX
  EXPECT_TRUE(DecodeExecutionSpecId(RecordType::kExecutionV2, binary)
                  .status()
                  .IsInvalidArgument());
}

TEST(StoreTest, WalRecordsCarryMonotonicLsns) {
  const std::string dir = TestDir("wal_lsn");
  auto store = PersistentRepository::Init(dir);
  ASSERT_TRUE(store.ok());
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(
      store.value().AddSpecification(std::move(spec).value()).ok());
  ASSERT_TRUE(store.value().Compact().ok());
  auto exec = RunDiseaseExecution(store.value().repo().entry(0).spec);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(
      store.value().AddExecution(0, std::move(exec).value()).ok());
  // After compaction at LSN 1, the next record is LSN 2 in a log whose
  // base is 1.
  WalReplay replay;
  auto wal = WriteAheadLog::Open(dir, &replay);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(replay.base_lsn, 1u);
  EXPECT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(wal.value().last_lsn(), 2u);
}

}  // namespace
}  // namespace paw

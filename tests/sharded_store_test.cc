// Tests for the sharded persistent store: manifest + epoch handling,
// deterministic routing, restart round trips, parallel-vs-serial
// recovery equivalence, parallel compaction, and per-shard crash
// isolation.

#include "src/store/sharded_repository.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/common/file_io.h"
#include "src/privacy/policy_text.h"
#include "src/provenance/serialize.h"
#include "src/repo/disease.h"
#include "src/repo/workload.h"
#include "src/workflow/serialize.h"
#include "tests/store_test_util.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_sharded_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Serialized view of every entry across all shards, shard-major, for
/// byte-for-byte comparisons.
struct Snapshotted {
  std::vector<std::string> specs;
  std::vector<std::string> policies;
  std::vector<std::string> execs;
};

Snapshotted Dump(const ShardedRepository& store) {
  Snapshotted out;
  for (int s = 0; s < store.num_shards(); ++s) {
    const Repository& repo = store.shard(s).repo();
    for (int id = 0; id < repo.num_specs(); ++id) {
      out.specs.push_back(Serialize(repo.entry(id).spec));
      out.policies.push_back(SerializePolicy(repo.entry(id).policy));
    }
    for (int id = 0; id < repo.num_executions(); ++id) {
      out.execs.push_back(
          SerializeExecution(repo.execution(ExecutionId(id)).exec));
    }
  }
  return out;
}

void ExpectSameBytes(const Snapshotted& a, const Snapshotted& b) {
  EXPECT_EQ(a.specs, b.specs);
  EXPECT_EQ(a.policies, b.policies);
  EXPECT_EQ(a.execs, b.execs);
}

/// Seeds `store` with `num_specs` generated specs and `execs_per_spec`
/// executions each; returns the refs.
std::vector<ShardedRepository::SpecRef> Seed(ShardedRepository* store,
                                             int num_specs,
                                             int execs_per_spec,
                                             uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<ShardedRepository::SpecRef> refs;
  for (int i = 0; i < num_specs; ++i) {
    auto spec =
        GenerateSpec(WorkloadParams{}, &rng, "spec" + std::to_string(i));
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto ref = store->AddSpecification(std::move(spec).value());
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    refs.push_back(ref.value());
  }
  for (const auto& ref : refs) {
    const Specification& spec =
        store->shard(ref.shard).repo().entry(ref.id).spec;
    for (int i = 0; i < execs_per_spec; ++i) {
      auto exec = GenerateExecution(spec, &rng);
      EXPECT_TRUE(exec.ok()) << exec.status().ToString();
      EXPECT_TRUE(store->AddExecution(ref, std::move(exec).value()).ok());
    }
  }
  EXPECT_TRUE(store->Sync().ok());
  return refs;
}

TEST(ShardedStoreTest, InitCreatesManifestAndShards) {
  const std::string dir = TestDir("init");
  auto store = ShardedRepository::Init(dir, 4);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(ShardedRepository::IsShardedStore(dir));
  EXPECT_EQ(store.value().num_shards(), 4);
  EXPECT_EQ(store.value().epoch(), 1u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(PathExists(dir + "/" + ShardedRepository::ShardDirName(i) +
                           "/PAWSTORE"));
  }
  auto manifest = ReadShardManifest(dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().shards, 4);
  EXPECT_EQ(manifest.value().epoch, 1u);
}

TEST(ShardedStoreTest, DoubleInitFails) {
  const std::string dir = TestDir("double_init");
  ASSERT_TRUE(ShardedRepository::Init(dir, 2).ok());
  EXPECT_TRUE(ShardedRepository::Init(dir, 2).status().IsAlreadyExists());
  // A different shard count does not sneak past the guard either.
  EXPECT_TRUE(ShardedRepository::Init(dir, 8).status().IsAlreadyExists());
}

TEST(ShardedStoreTest, InitRefusesSingleStoreDirAndViceVersa) {
  const std::string single = TestDir("kind_single");
  ASSERT_TRUE(PersistentRepository::Init(single).ok());
  EXPECT_TRUE(
      ShardedRepository::Init(single, 4).status().IsAlreadyExists());

  const std::string sharded = TestDir("kind_sharded");
  ASSERT_TRUE(ShardedRepository::Init(sharded, 4).ok());
  EXPECT_TRUE(
      PersistentRepository::Init(sharded).status().IsAlreadyExists());
}

TEST(ShardedStoreTest, RejectsBadShardCounts) {
  EXPECT_TRUE(ShardedRepository::Init(TestDir("zero"), 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ShardedRepository::Init(TestDir("neg"), -3)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ShardedRepository::Init(TestDir("huge"), 100000)
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardedStoreTest, RoutingIsDeterministicAndInRange) {
  for (int shards : {1, 2, 4, 16}) {
    for (const char* name : {"alpha", "beta", "", "disease susceptibility"}) {
      const int s = ShardedRepository::ShardOf(name, shards);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardedRepository::ShardOf(name, shards));
    }
  }
}

TEST(ShardedStoreTest, SpecsLandOnTheirRoutedShardAndAreFound) {
  const std::string dir = TestDir("routing");
  auto store = ShardedRepository::Init(dir, 4);
  ASSERT_TRUE(store.ok());
  auto refs = Seed(&store.value(), 8, 1);
  ASSERT_EQ(refs.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const std::string name = "spec" + std::to_string(i);
    EXPECT_EQ(refs[static_cast<size_t>(i)].shard,
              ShardedRepository::ShardOf(name, 4));
    auto found = store.value().FindSpec(name);
    ASSERT_TRUE(found.ok()) << name;
    EXPECT_EQ(found.value(), refs[static_cast<size_t>(i)]);
  }
  EXPECT_FALSE(store.value().FindSpec("nonexistent").ok());
  EXPECT_EQ(store.value().num_specs(), 8);
  EXPECT_EQ(store.value().num_executions(), 8);
}

TEST(ShardedStoreTest, ContentsSurviveReopenByteForByte) {
  const std::string dir = TestDir("reopen");
  Snapshotted before;
  {
    auto store = ShardedRepository::Init(dir, 4);
    ASSERT_TRUE(store.ok());
    Seed(&store.value(), 6, 3);
    before = Dump(store.value());
  }
  auto reopened = ShardedRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().num_specs(), 6);
  EXPECT_EQ(reopened.value().num_executions(), 18);
  EXPECT_EQ(reopened.value().recovery().records_replayed, 24u);
  EXPECT_EQ(reopened.value().recovery().torn_shards, 0);
  ExpectSameBytes(Dump(reopened.value()), before);
}

// Satellite: recovery with 1 thread and N threads must produce
// identical repository contents.
TEST(ShardedStoreTest, ParallelRecoveryMatchesSerialRecovery) {
  const std::string dir = TestDir("parallel_recovery");
  {
    auto store = ShardedRepository::Init(dir, 4);
    ASSERT_TRUE(store.ok());
    Seed(&store.value(), 8, 4);
  }
  Snapshotted serial_dump;
  std::vector<uint64_t> serial_lsns;
  {
    auto serial = ShardedRepository::Open(dir, {}, /*threads=*/1);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_EQ(serial.value().recovery().threads, 1);
    serial_dump = Dump(serial.value());
    for (int i = 0; i < 4; ++i) {
      serial_lsns.push_back(serial.value().shard(i).lsn());
    }
  }
  auto parallel = ShardedRepository::Open(dir, {}, /*threads=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  // Open clamps the recovery fan-out to the host's core count (a
  // 1-core CI box would only pay oversubscription for 4 threads).
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  EXPECT_EQ(parallel.value().recovery().threads,
            std::min(4, std::max(1, hw)));
  ExpectSameBytes(Dump(parallel.value()), serial_dump);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(parallel.value().shard(i).lsn(),
              serial_lsns[static_cast<size_t>(i)])
        << "shard " << i;
    // Per-shard ids are dense and shard-local, so they are identical
    // too (Dump compares them implicitly via order).
  }
  EXPECT_EQ(parallel.value().num_specs(), 8);
  EXPECT_EQ(parallel.value().num_executions(), 32);
}

TEST(ShardedStoreTest, EpochBumpsOnEveryOpen) {
  const std::string dir = TestDir("epoch");
  {
    auto store = ShardedRepository::Init(dir, 2);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.value().epoch(), 1u);
  }
  for (uint64_t expected = 2; expected <= 4; ++expected) {
    auto store = ShardedRepository::Open(dir);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.value().epoch(), expected);
    auto manifest = ReadShardManifest(dir);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest.value().epoch, expected);
  }
}

TEST(ShardedStoreTest, EpochLsnIsMonotonicAcrossGenerations) {
  // Even if torn-tail repair rolls a shard's physical LSN back, the
  // bumped epoch keeps the composite id strictly growing.
  EXPECT_GT(ShardedRepository::EpochLsn(2, 1),
            ShardedRepository::EpochLsn(1, 1000000));
  EXPECT_GT(ShardedRepository::EpochLsn(3, 5),
            ShardedRepository::EpochLsn(3, 4));
  EXPECT_EQ(ShardedRepository::EpochLsn(1, 0), uint64_t{1} << 40);
}

TEST(ShardedStoreTest, ParallelCompactionCoversEveryShard) {
  const std::string dir = TestDir("compact");
  Snapshotted before;
  {
    auto store = ShardedRepository::Init(dir, 4);
    ASSERT_TRUE(store.ok());
    Seed(&store.value(), 8, 2);
    before = Dump(store.value());
    ASSERT_TRUE(store.value().Compact(/*threads=*/4).ok());
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(store.value().shard(i).records_since_snapshot(), 0u)
          << "shard " << i;
    }
  }
  auto reopened = ShardedRepository::Open(dir, {}, 4);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Everything comes back from snapshots; no WAL replay needed.
  EXPECT_EQ(reopened.value().recovery().records_replayed, 0u);
  ExpectSameBytes(Dump(reopened.value()), before);
}

// Satellite edge case: compacting a store that has never seen a write.
TEST(ShardedStoreTest, CompactOnEmptyStoreIsHarmless) {
  const std::string dir = TestDir("compact_empty");
  {
    auto store = ShardedRepository::Init(dir, 3);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Compact(/*threads=*/3).ok());
    ASSERT_TRUE(store.value().Compact().ok());  // idempotent
  }
  auto reopened = ShardedRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().num_specs(), 0);
  EXPECT_EQ(reopened.value().num_executions(), 0);
  // And the store still accepts writes afterwards.
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(reopened.value()
                  .AddSpecification(std::move(spec).value(), DiseasePolicy())
                  .ok());
}

TEST(ShardedStoreTest, TornShardIsRepairedWithoutDisturbingOthers) {
  const std::string dir = TestDir("torn_shard");
  std::vector<int> counts_before;
  int torn_shard = -1;
  {
    auto store = ShardedRepository::Init(dir, 4);
    ASSERT_TRUE(store.ok());
    auto refs = Seed(&store.value(), 8, 2);
    torn_shard = refs[0].shard;
    for (int i = 0; i < 4; ++i) {
      counts_before.push_back(store.value().shard(i).repo().num_executions());
    }
  }
  // Crash: tear a few bytes off one shard's WAL tail.
  const std::string wal =
      ListWalSegments(dir + "/" +
                      ShardedRepository::ShardDirName(torn_shard))
          .value()
          .back()
          .path;
  {
    std::error_code ec;
    const auto size = fs::file_size(wal, ec);
    ASSERT_FALSE(ec);
    ASSERT_TRUE(TruncateFile(wal, static_cast<int64_t>(size) - 3).ok());
  }
  auto reopened = ShardedRepository::Open(dir, {}, 4);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().recovery().torn_shards, 1);
  EXPECT_TRUE(reopened.value().shard(torn_shard).recovery().torn_tail);
  for (int i = 0; i < 4; ++i) {
    const int expected = counts_before[static_cast<size_t>(i)] -
                         (i == torn_shard ? 1 : 0);
    EXPECT_EQ(reopened.value().shard(i).repo().num_executions(), expected)
        << "shard " << i;
    if (i != torn_shard) {
      EXPECT_FALSE(reopened.value().shard(i).recovery().torn_tail);
    }
  }
}

TEST(ShardedStoreTest, AddExecutionValidatesShardRef) {
  const std::string dir = TestDir("bad_ref");
  auto store = ShardedRepository::Init(dir, 2);
  ASSERT_TRUE(store.ok());
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto exec = RunDiseaseExecution(spec.value());
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(store.value()
                  .AddExecution({-1, 0}, Execution(spec.value()))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(store.value()
                  .AddExecution({5, 0}, Execution(spec.value()))
                  .status()
                  .IsNotFound());
  // Valid shard, unknown local id.
  EXPECT_FALSE(store.value().AddExecution({0, 3}, std::move(exec).value()).ok());
}

TEST(ShardedStoreTest, OpenFailsCleanlyOnMissingShard) {
  const std::string dir = TestDir("missing_shard");
  ASSERT_TRUE(ShardedRepository::Init(dir, 3).ok());
  fs::remove_all(dir + "/" + ShardedRepository::ShardDirName(1));
  auto reopened = ShardedRepository::Open(dir);
  EXPECT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("shard-0001"),
            std::string::npos);
}

TEST(ShardedStoreTest, OpenRefusesToBumpPastEpochCap) {
  // At the epoch cap, Open must fail cleanly *without* writing a
  // manifest the reader would reject — the store data stays intact.
  const std::string dir = TestDir("epoch_cap");
  ASSERT_TRUE(ShardedRepository::Init(dir, 2).ok());
  const uint64_t cap = (uint64_t{1} << 23) - 1;
  ASSERT_TRUE(WriteShardManifest(dir, {2, cap}).ok());
  auto opened = ShardedRepository::Open(dir);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsFailedPrecondition());
  EXPECT_NE(opened.status().message().find("epoch space"),
            std::string::npos);
  // The manifest was not touched and still parses.
  auto manifest = ReadShardManifest(dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().epoch, cap);
  // One step below the cap, Open still works and lands exactly on it.
  ASSERT_TRUE(WriteShardManifest(dir, {2, cap - 1}).ok());
  auto reopened = ShardedRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().epoch(), cap);
}

TEST(ShardedStoreTest, OpenRejectsCorruptManifest) {
  const std::string dir = TestDir("bad_manifest");
  ASSERT_TRUE(ShardedRepository::Init(dir, 2).ok());
  ASSERT_TRUE(AtomicWriteFile(dir + "/PAWSHARDS", "pawshards 1\nshards=0\n")
                  .ok());
  EXPECT_FALSE(ShardedRepository::Open(dir).ok());
  ASSERT_TRUE(AtomicWriteFile(dir + "/PAWSHARDS", "not a manifest\n").ok());
  EXPECT_FALSE(ShardedRepository::Open(dir).ok());
  // Trailing junk and overflowing values are corruption, not numbers.
  for (const char* body :
       {"shards=2garbage\nepoch=1\n", "shards=2\nepoch=1xyz\n",
        "shards=99999999999\nepoch=1\n", "shards=2\nepoch=\n",
        "shards=2\nepoch=99999999999999999999999\n"}) {
    ASSERT_TRUE(
        AtomicWriteFile(dir + "/PAWSHARDS",
                        std::string("pawshards 1\n") + body).ok());
    auto opened = ShardedRepository::Open(dir);
    EXPECT_FALSE(opened.ok()) << body;
    EXPECT_TRUE(opened.status().IsFailedPrecondition()) << body;
  }
}

// ---- Per-shard writer queues ------------------------------------------------

StoreOptions QueueOptions(int writer_threads, bool sync_each = false) {
  StoreOptions options;
  options.writer_threads = writer_threads;
  options.sync_each_append = sync_each;
  return options;
}

/// Stores `num_specs` specs, then enqueues `execs_per_spec` executions
/// per spec through the async API; returns the refs.
std::vector<ShardedRepository::SpecRef> SeedAsync(
    ShardedRepository* store, int num_specs, int execs_per_spec,
    uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<ShardedRepository::SpecRef> refs;
  for (int i = 0; i < num_specs; ++i) {
    auto spec =
        GenerateSpec(WorkloadParams{}, &rng, "spec" + std::to_string(i));
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto ref =
        store->AddSpecificationAsync(std::move(spec).value()).get();
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    refs.push_back(ref.value());
  }
  std::vector<StoreFuture<ExecutionId>> futures;
  for (const auto& ref : refs) {
    const Specification& spec =
        store->shard(ref.shard).repo().entry(ref.id).spec;
    for (int i = 0; i < execs_per_spec; ++i) {
      auto exec = GenerateExecution(spec, &rng);
      EXPECT_TRUE(exec.ok()) << exec.status().ToString();
      futures.push_back(
          store->AddExecutionAsync(ref, std::move(exec).value()));
    }
  }
  store->Drain();
  for (auto& f : futures) {
    auto result = f.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_TRUE(store->Sync().ok());
  return refs;
}

TEST(ShardedWriterQueueTest, AsyncIngestMatchesSynchronousIngest) {
  // The same seeded workload through the sync path (no pool) and the
  // async per-shard queues must produce byte-identical stores: within
  // a shard, queue order == enqueue order == the sync path's append
  // order.
  const std::string sync_dir = TestDir("queue_sync");
  const std::string async_dir = TestDir("queue_async");
  Snapshotted sync_dump, async_dump;
  {
    auto store = ShardedRepository::Init(sync_dir, 4);
    ASSERT_TRUE(store.ok());
    Seed(&store.value(), 6, 3);
    sync_dump = Dump(store.value());
  }
  {
    auto store = ShardedRepository::Init(async_dir, 4, QueueOptions(4));
    ASSERT_TRUE(store.ok());
    SeedAsync(&store.value(), 6, 3);
    async_dump = Dump(store.value());
  }
  ExpectSameBytes(async_dump, sync_dump);

  // And the async store survives reopen byte-for-byte.
  auto reopened = ShardedRepository::Open(async_dir, QueueOptions(4), 4);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectSameBytes(Dump(reopened.value()), async_dump);
}

TEST(ShardedWriterQueueTest, ManyCallerThreadsFanOutSafely) {
  // Multiple caller threads enqueue concurrently; every future must
  // resolve OK and every record must survive reopen. (Per-shard
  // ordering across callers is unspecified; counts and durability are
  // not.)
  constexpr int kCallers = 4;
  constexpr int kPerCaller = 25;
  const std::string dir = TestDir("queue_callers");
  auto store = ShardedRepository::Init(dir, 4, QueueOptions(4));
  ASSERT_TRUE(store.ok());
  Rng rng(3);
  std::vector<ShardedRepository::SpecRef> refs;
  for (int i = 0; i < 4; ++i) {
    auto spec =
        GenerateSpec(WorkloadParams{}, &rng, "multi" + std::to_string(i));
    ASSERT_TRUE(spec.ok());
    auto ref = store.value().AddSpecification(std::move(spec).value());
    ASSERT_TRUE(ref.ok());
    refs.push_back(ref.value());
  }
  // Pre-generate executions (Execution generation is not thread-safe
  // to interleave with rng use across threads).
  std::vector<std::vector<Execution>> per_caller(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    for (int i = 0; i < kPerCaller; ++i) {
      const auto& ref = refs[static_cast<size_t>((c + i) % refs.size())];
      const Specification& spec =
          store.value().shard(ref.shard).repo().entry(ref.id).spec;
      auto exec = GenerateExecution(spec, &rng);
      ASSERT_TRUE(exec.ok());
      per_caller[static_cast<size_t>(c)].push_back(
          std::move(exec).value());
    }
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::vector<StoreFuture<ExecutionId>> futures;
      for (int i = 0; i < kPerCaller; ++i) {
        const auto& ref =
            refs[static_cast<size_t>((c + i) % refs.size())];
        futures.push_back(store.value().AddExecutionAsync(
            ref,
            std::move(per_caller[static_cast<size_t>(c)]
                                [static_cast<size_t>(i)])));
      }
      for (auto& f : futures) {
        if (!f.get().ok()) ++failures;
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(store.value().Sync().ok());
  EXPECT_EQ(store.value().num_executions(), kCallers * kPerCaller);

  CloseStore(&store);
  auto reopened = ShardedRepository::Open(dir, {}, 4);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().num_executions(), kCallers * kPerCaller);
}

TEST(ShardedWriterQueueTest, GroupSyncAcksAreDurable) {
  // sync_each_append + writer queues: futures must not complete before
  // the batch fsync, so everything acked is on disk when Drain
  // returns — reopen must recover every record without relying on a
  // trailing Sync.
  const std::string dir = TestDir("queue_durable");
  {
    auto store = ShardedRepository::Init(
        dir, 3, QueueOptions(3, /*sync_each=*/true));
    ASSERT_TRUE(store.ok());
    Rng rng(9);
    auto spec = GenerateSpec(WorkloadParams{}, &rng, "durable");
    ASSERT_TRUE(spec.ok());
    auto ref = store.value().AddSpecification(std::move(spec).value());
    ASSERT_TRUE(ref.ok());
    const Specification& stored =
        store.value().shard(ref.value().shard).repo().entry(
            ref.value().id).spec;
    std::vector<StoreFuture<ExecutionId>> futures;
    for (int i = 0; i < 20; ++i) {
      auto exec = GenerateExecution(stored, &rng);
      ASSERT_TRUE(exec.ok());
      futures.push_back(store.value().AddExecutionAsync(
          ref.value(), std::move(exec).value()));
    }
    for (auto& f : futures) {
      auto result = f.get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
    // No Drain(), no Sync(): every acked future already implies
    // durability under sync_each_append.
  }
  auto reopened = ShardedRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().num_specs(), 1);
  EXPECT_EQ(reopened.value().num_executions(), 20);
  EXPECT_EQ(reopened.value().recovery().torn_shards, 0);
}

TEST(ShardedWriterQueueTest, CompactDrainsQueuedAppendsFirst) {
  const std::string dir = TestDir("queue_compact");
  auto store = ShardedRepository::Init(dir, 2, QueueOptions(2));
  ASSERT_TRUE(store.ok());
  Rng rng(13);
  auto spec = GenerateSpec(WorkloadParams{}, &rng, "compactq");
  ASSERT_TRUE(spec.ok());
  auto ref = store.value().AddSpecification(std::move(spec).value());
  ASSERT_TRUE(ref.ok());
  const Specification& stored =
      store.value().shard(ref.value().shard).repo().entry(
          ref.value().id).spec;
  std::vector<StoreFuture<ExecutionId>> futures;
  for (int i = 0; i < 10; ++i) {
    auto exec = GenerateExecution(stored, &rng);
    ASSERT_TRUE(exec.ok());
    futures.push_back(store.value().AddExecutionAsync(
        ref.value(), std::move(exec).value()));
  }
  // Compact without an explicit Drain: it must fold every queued
  // append into the snapshot.
  ASSERT_TRUE(store.value().Compact(2).ok());
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().ok());
  }
  EXPECT_EQ(
      store.value().shard(ref.value().shard).records_since_snapshot(),
      0u);
  CloseStore(&store);
  auto reopened = ShardedRepository::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().num_executions(), 10);
  // Everything came back from the snapshot, not the log.
  EXPECT_EQ(reopened.value().recovery().records_replayed, 0u);
}

}  // namespace
}  // namespace paw

// Tests for the deterministic RNG used by all workloads.

#include "src/common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace paw {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformHitsAllResidues) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(6);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewPrefersLowRanks) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(8);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(RngTest, ZipfSingletonAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Zipf(1, 2.0), 0u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, IdentifierShapeAndDeterminism) {
  Rng a(11), b(11);
  std::string ida = a.Identifier(12);
  EXPECT_EQ(ida.size(), 12u);
  for (char c : ida) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  EXPECT_EQ(ida, b.Identifier(12));
}

}  // namespace
}  // namespace paw

#ifndef PAW_TESTS_STORE_TEST_UTIL_H_
#define PAW_TESTS_STORE_TEST_UTIL_H_

/// \file store_test_util.h
/// \brief Helpers shared by the persistent-store test suites.

#include <utility>

#include "src/common/status.h"

namespace paw {

/// \brief Destroys a live store handle in place — releasing its WAL fd
/// and the exclusive directory lock — so a test may legitimately
/// reopen the directory while the `Result` wrapper stays in scope.
/// (Two live read-write handles to one store directory are an error,
/// enforced by `StoreDirLock`.)
template <typename T>
void CloseStore(Result<T>* store) {
  T closed = std::move(*store).value();
  (void)closed;
}

}  // namespace paw

#endif  // PAW_TESTS_STORE_TEST_UTIL_H_

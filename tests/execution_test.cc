// Tests for the Execution container itself.

#include "src/provenance/execution.h"

#include <gtest/gtest.h>

#include "src/workflow/builder.h"

namespace paw {
namespace {

class ExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpecBuilder b("exec-spec");
    WorkflowId w = b.AddWorkflow("W1", "top");
    ModuleId i = b.AddInput(w);
    ModuleId m = b.AddModule(w, "M1", "step");
    ModuleId o = b.AddOutput(w);
    ASSERT_TRUE(b.Connect(i, m, {"x"}).ok());
    ASSERT_TRUE(b.Connect(m, o, {"y"}).ok());
    auto spec = std::move(b).Build();
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<Specification>(std::move(spec).value());
  }

  std::unique_ptr<Specification> spec_;
};

TEST_F(ExecutionTest, NodesItemsFlows) {
  Execution e(*spec_);
  ModuleId i = spec_->FindModule("I").value();
  ModuleId m = spec_->FindModule("M1").value();
  ExecNodeId ni = e.AddNode(ExecNodeKind::kInput, i, -1,
                            ExecNodeId::Invalid());
  ExecNodeId nm = e.AddNode(ExecNodeKind::kAtomic, m, 1,
                            ExecNodeId::Invalid());
  DataItemId d = e.AddItem("x", ni, "val");
  ASSERT_TRUE(e.AddFlow(ni, nm, {d}).ok());
  EXPECT_EQ(e.num_nodes(), 2);
  EXPECT_EQ(e.num_items(), 1);
  EXPECT_EQ(e.ItemsOn(ni, nm), (std::vector<DataItemId>{d}));
  EXPECT_TRUE(e.ItemsOn(nm, ni).empty());
  EXPECT_EQ(e.item(d).label, "x");
  EXPECT_EQ(e.item(d).producer, ni);
}

TEST_F(ExecutionTest, AddFlowMergesItems) {
  Execution e(*spec_);
  ModuleId i = spec_->FindModule("I").value();
  ModuleId m = spec_->FindModule("M1").value();
  ExecNodeId a = e.AddNode(ExecNodeKind::kInput, i, -1,
                           ExecNodeId::Invalid());
  ExecNodeId b = e.AddNode(ExecNodeKind::kAtomic, m, 1,
                           ExecNodeId::Invalid());
  DataItemId d0 = e.AddItem("x", a, "v0");
  DataItemId d1 = e.AddItem("x", a, "v1");
  ASSERT_TRUE(e.AddFlow(a, b, {d0}).ok());
  ASSERT_TRUE(e.AddFlow(a, b, {d1, d0}).ok());  // d0 deduplicated
  EXPECT_EQ(e.ItemsOn(a, b), (std::vector<DataItemId>{d0, d1}));
  EXPECT_EQ(e.graph().num_edges(), 1);
}

TEST_F(ExecutionTest, AddFlowRejectsBadEndpoints) {
  Execution e(*spec_);
  EXPECT_TRUE(e.AddFlow(ExecNodeId(0), ExecNodeId(1), {})
                  .IsInvalidArgument());
}

TEST_F(ExecutionTest, NodeLabels) {
  Execution e(*spec_);
  ModuleId i = spec_->FindModule("I").value();
  ModuleId m = spec_->FindModule("M1").value();
  ExecNodeId ni = e.AddNode(ExecNodeKind::kInput, i, -1,
                            ExecNodeId::Invalid());
  ExecNodeId nb = e.AddNode(ExecNodeKind::kBegin, m, 2,
                            ExecNodeId::Invalid());
  ExecNodeId ne = e.AddNode(ExecNodeKind::kEnd, m, 2, ExecNodeId::Invalid());
  ExecNodeId na = e.AddNode(ExecNodeKind::kAtomic, m, 3,
                            ExecNodeId::Invalid());
  EXPECT_EQ(e.NodeLabel(ni), "I");
  EXPECT_EQ(e.NodeLabel(nb), "S2:M1 begin");
  EXPECT_EQ(e.NodeLabel(ne), "S2:M1 end");
  EXPECT_EQ(e.NodeLabel(na), "S3:M1");
  EXPECT_EQ(Execution::ItemName(DataItemId(7)), "d7");
}

TEST_F(ExecutionTest, FindHelpers) {
  Execution e(*spec_);
  ModuleId m = spec_->FindModule("M1").value();
  ExecNodeId n = e.AddNode(ExecNodeKind::kAtomic, m, 5,
                           ExecNodeId::Invalid());
  DataItemId d = e.AddItem("y", n, "v");
  EXPECT_EQ(e.FindByProcess(5).value(), n);
  EXPECT_FALSE(e.FindByProcess(6).ok());
  EXPECT_EQ(e.FindItemByLabel("y").value(), d);
  EXPECT_FALSE(e.FindItemByLabel("zzz").ok());
  EXPECT_EQ(e.ItemsProducedBy(n), (std::vector<DataItemId>{d}));
}

TEST_F(ExecutionTest, ExecNodeKindNames) {
  EXPECT_EQ(ExecNodeKindName(ExecNodeKind::kInput), "input");
  EXPECT_EQ(ExecNodeKindName(ExecNodeKind::kBegin), "begin");
  EXPECT_EQ(ExecNodeKindName(ExecNodeKind::kEnd), "end");
}

TEST_F(ExecutionTest, DotContainsItems) {
  Execution e(*spec_);
  ModuleId i = spec_->FindModule("I").value();
  ModuleId m = spec_->FindModule("M1").value();
  ExecNodeId a = e.AddNode(ExecNodeKind::kInput, i, -1,
                           ExecNodeId::Invalid());
  ExecNodeId b = e.AddNode(ExecNodeKind::kAtomic, m, 1,
                           ExecNodeId::Invalid());
  DataItemId d = e.AddItem("x", a, "v");
  ASSERT_TRUE(e.AddFlow(a, b, {d}).ok());
  std::string dot = e.ToDot();
  EXPECT_NE(dot.find("d0"), std::string::npos);
  EXPECT_NE(dot.find("S1:M1"), std::string::npos);
}

}  // namespace
}  // namespace paw

// Tests for the expansion hierarchy (paper Fig. 3) and its prefixes.

#include "src/workflow/hierarchy.h"

#include <gtest/gtest.h>

#include "src/repo/disease.h"
#include "src/workflow/builder.h"

namespace paw {
namespace {

class HierarchyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    spec_ = std::move(spec).value();
    h_ = ExpansionHierarchy::Build(spec_);
  }

  WorkflowId W(const std::string& code) {
    return spec_.FindWorkflow(code).value();
  }

  Specification spec_;
  ExpansionHierarchy h_;
};

TEST_F(HierarchyTest, Figure3Shape) {
  // W1 -> {W2, W3}, W2 -> {W4}: the consistent reconstruction of Fig. 3.
  EXPECT_EQ(h_.root(), W("W1"));
  EXPECT_EQ(h_.Children(W("W1")),
            (std::vector<WorkflowId>{W("W2"), W("W3")}));
  EXPECT_EQ(h_.Children(W("W2")), (std::vector<WorkflowId>{W("W4")}));
  EXPECT_TRUE(h_.Children(W("W3")).empty());
  EXPECT_TRUE(h_.Children(W("W4")).empty());
  EXPECT_EQ(h_.Parent(W("W4")), W("W2"));
  EXPECT_EQ(h_.Parent(W("W2")), W("W1"));
  EXPECT_FALSE(h_.Parent(W("W1")).valid());
}

TEST_F(HierarchyTest, Depths) {
  EXPECT_EQ(h_.Depth(W("W1")), 0);
  EXPECT_EQ(h_.Depth(W("W2")), 1);
  EXPECT_EQ(h_.Depth(W("W3")), 1);
  EXPECT_EQ(h_.Depth(W("W4")), 2);
  EXPECT_EQ(h_.Height(), 2);
}

TEST_F(HierarchyTest, PrefixValidity) {
  EXPECT_TRUE(h_.IsValidPrefix({W("W1")}));
  EXPECT_TRUE(h_.IsValidPrefix({W("W1"), W("W2")}));
  EXPECT_TRUE(h_.IsValidPrefix({W("W1"), W("W2"), W("W4")}));
  // Missing the root.
  EXPECT_FALSE(h_.IsValidPrefix({W("W2")}));
  // W4 without its parent W2.
  EXPECT_FALSE(h_.IsValidPrefix({W("W1"), W("W4")}));
  EXPECT_FALSE(h_.IsValidPrefix({}));
}

TEST_F(HierarchyTest, CloseAddsAncestors) {
  Prefix closed = h_.Close({W("W4")});
  EXPECT_EQ(closed, (Prefix{W("W1"), W("W2"), W("W4")}));
  EXPECT_TRUE(h_.IsValidPrefix(closed));
  EXPECT_EQ(h_.Close({}), h_.RootPrefix());
}

TEST_F(HierarchyTest, EnumeratePrefixesOfPaperExample) {
  auto prefixes = h_.EnumeratePrefixes();
  ASSERT_TRUE(prefixes.ok());
  // Prefixes of Fig. 3: {W1}, {W1,W2}, {W1,W3}, {W1,W2,W3}, {W1,W2,W4},
  // {W1,W2,W3,W4} -- six in total.
  EXPECT_EQ(prefixes.value().size(), 6u);
  for (const Prefix& p : prefixes.value()) {
    EXPECT_TRUE(h_.IsValidPrefix(p));
  }
  // Smallest first.
  EXPECT_EQ(prefixes.value().front(), h_.RootPrefix());
  EXPECT_EQ(prefixes.value().back(), h_.FullPrefix());
}

TEST_F(HierarchyTest, AccessPrefixRespectsLevels) {
  // Disease spec levels: W1=0, W2=1, W3=1, W4=2.
  EXPECT_EQ(h_.AccessPrefix(spec_, 0), (Prefix{W("W1")}));
  EXPECT_EQ(h_.AccessPrefix(spec_, 1),
            (Prefix{W("W1"), W("W2"), W("W3")}));
  EXPECT_EQ(h_.AccessPrefix(spec_, 2), h_.FullPrefix());
  EXPECT_EQ(h_.AccessPrefix(spec_, 99), h_.FullPrefix());
}

TEST(HierarchySingleTest, SingleWorkflow) {
  SpecBuilder b("single");
  WorkflowId w = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w);
  ModuleId o = b.AddOutput(w);
  ASSERT_TRUE(b.Connect(i, o, {"x"}).ok());
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  EXPECT_EQ(h.Height(), 0);
  EXPECT_EQ(h.size(), 1);
  auto prefixes = h.EnumeratePrefixes();
  ASSERT_TRUE(prefixes.ok());
  EXPECT_EQ(prefixes.value().size(), 1u);
}

}  // namespace
}  // namespace paw

// Tests for the memoized privacy-view cache and its sharded-LRU base:
// epoch-floor semantics, exact spec invalidation, namespace isolation,
// byte-budget eviction, and concurrent access (runs under ASan/TSan).

#include "src/privacy/view_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/index/sharded_lru.h"
#include "src/privacy/data_privacy.h"
#include "src/repo/disease.h"
#include "src/repo/repository.h"
#include "src/workflow/view.h"

namespace paw {
namespace {

// ---- ShardedLruCache ------------------------------------------------

TEST(ShardedLruTest, PutGetAndReplace) {
  ShardedLruCache<int> cache(/*byte_budget=*/1 << 20, /*num_shards=*/4);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", 1, 100);
  cache.Put("b", 2, 100);
  ASSERT_TRUE(cache.Get("a").has_value());
  EXPECT_EQ(*cache.Get("a"), 1);
  cache.Put("a", 3, 100);  // replace
  EXPECT_EQ(*cache.Get("a"), 3);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().bytes, 200u);
}

TEST(ShardedLruTest, ByteBudgetEvictsColdEntries) {
  // One shard so the LRU order is deterministic across keys.
  ShardedLruCache<int> cache(/*byte_budget=*/350, /*num_shards=*/1);
  cache.Put("a", 1, 100);
  cache.Put("b", 2, 100);
  cache.Put("c", 3, 100);
  ASSERT_TRUE(cache.Get("a").has_value());  // promote "a"
  cache.Put("d", 4, 100);                   // over budget: evicts "b"
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_TRUE(cache.Get("d").has_value());
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 350u);
}

TEST(ShardedLruTest, OversizedEntryAdmittedAlone) {
  ShardedLruCache<int> cache(/*byte_budget=*/100, /*num_shards=*/1);
  cache.Put("big", 1, 10000);
  // An entry larger than the whole budget still serves (it just lives
  // alone); the next insert evicts it.
  EXPECT_TRUE(cache.Get("big").has_value());
  cache.Put("next", 2, 50);
  EXPECT_FALSE(cache.Get("big").has_value());
  EXPECT_TRUE(cache.Get("next").has_value());
}

TEST(ShardedLruTest, EraseAndEraseIf) {
  ShardedLruCache<int> cache(1 << 20, 4);
  cache.Put("x:1", 1, 10);
  cache.Put("x:2", 2, 10);
  cache.Put("y:1", 3, 10);
  EXPECT_TRUE(cache.Erase("x:1"));
  EXPECT_FALSE(cache.Erase("x:1"));
  const size_t dropped = cache.EraseIf(
      [](const std::string& key, const int&) { return key[0] == 'x'; });
  EXPECT_EQ(dropped, 1u);
  EXPECT_FALSE(cache.Get("x:2").has_value());
  EXPECT_TRUE(cache.Get("y:1").has_value());
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// ---- PrivacyViewCache -----------------------------------------------

std::shared_ptr<const MaskingReport> MakeMask(int visible) {
  auto mask = std::make_shared<MaskingReport>();
  mask->visible.assign(static_cast<size_t>(visible), true);
  mask->num_visible = visible;
  return mask;
}

TEST(PrivacyViewCacheTest, MaskingRoundTrip) {
  PrivacyViewCache cache;
  const uint64_t ns = PrivacyViewCache::NewNamespace();
  EXPECT_EQ(cache.GetMasking(ns, ExecutionId(0), "g@1", 5), nullptr);
  cache.PutMasking(ns, ExecutionId(0), /*spec_id=*/0, "g@1",
                   /*cut_epoch=*/5, MakeMask(3));
  auto hit = cache.GetMasking(ns, ExecutionId(0), "g@1", 5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->num_visible, 3);
  // Same execution, different cache group: distinct entry.
  EXPECT_EQ(cache.GetMasking(ns, ExecutionId(0), "g@2", 5), nullptr);
  const PrivacyViewCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(PrivacyViewCacheTest, EpochFloorRejectsEntriesAboveTheCut) {
  PrivacyViewCache cache;
  const uint64_t ns = PrivacyViewCache::NewNamespace();
  cache.PutMasking(ns, ExecutionId(7), 0, "g@1", /*cut_epoch=*/10,
                   MakeMask(1));
  // A reader whose cut is older than the entry must not see it (the
  // entry is from that reader's "future"); the stale entry is dropped.
  EXPECT_EQ(cache.GetMasking(ns, ExecutionId(7), "g@1", 9), nullptr);
  EXPECT_EQ(cache.GetMasking(ns, ExecutionId(7), "g@1", 10), nullptr);
  // Readers at or past the entry's epoch hit.
  cache.PutMasking(ns, ExecutionId(7), 0, "g@1", 10, MakeMask(1));
  EXPECT_NE(cache.GetMasking(ns, ExecutionId(7), "g@1", 10), nullptr);
  EXPECT_NE(cache.GetMasking(ns, ExecutionId(7), "g@1", 11), nullptr);
}

TEST(PrivacyViewCacheTest, InvalidateSpecDropsExactlyThatSpec) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  const int sid =
      repo.AddSpecification(std::move(spec).value(), DiseasePolicy())
          .value();
  const SpecEntry& entry = repo.entry(sid);
  Prefix access = entry.hierarchy.AccessPrefix(entry.spec, 2);
  auto view = ExpandPrefix(entry.spec, entry.hierarchy, access);
  ASSERT_TRUE(view.ok());
  auto shared_view =
      std::make_shared<const SpecView>(std::move(view).value());

  PrivacyViewCache cache;
  const uint64_t ns = PrivacyViewCache::NewNamespace();
  // Spec 1: one spec-keyed view and one exec-keyed mask. Spec 2: one
  // exec-keyed mask for a different execution.
  cache.PutSpecView(ns, /*spec_id=*/1, "g@2", 3, shared_view);
  cache.PutMasking(ns, ExecutionId(0), /*spec_id=*/1, "g@2", 3,
                   MakeMask(2));
  cache.PutMasking(ns, ExecutionId(1), /*spec_id=*/2, "g@2", 3,
                   MakeMask(4));

  EXPECT_EQ(cache.InvalidateSpec(ns, 1), 2u);
  EXPECT_EQ(cache.GetSpecView(ns, 1, "g@2", 3), nullptr);
  EXPECT_EQ(cache.GetMasking(ns, ExecutionId(0), "g@2", 3), nullptr);
  // The other spec's entries survive.
  EXPECT_NE(cache.GetMasking(ns, ExecutionId(1), "g@2", 3), nullptr);
  EXPECT_GT(ApproxViewBytes(*shared_view), 0u);
}

TEST(PrivacyViewCacheTest, NamespacesIsolateEngines) {
  PrivacyViewCache cache;
  const uint64_t ns1 = PrivacyViewCache::NewNamespace();
  const uint64_t ns2 = PrivacyViewCache::NewNamespace();
  EXPECT_NE(ns1, ns2);
  cache.PutMasking(ns1, ExecutionId(0), 0, "g@1", 1, MakeMask(1));
  cache.PutMasking(ns2, ExecutionId(0), 0, "g@1", 1, MakeMask(9));
  // Same (exec, group, epoch), different namespace: no aliasing.
  EXPECT_EQ(cache.GetMasking(ns1, ExecutionId(0), "g@1", 1)->num_visible,
            1);
  EXPECT_EQ(cache.GetMasking(ns2, ExecutionId(0), "g@1", 1)->num_visible,
            9);
  EXPECT_EQ(cache.InvalidateNamespace(ns1), 1u);
  EXPECT_EQ(cache.GetMasking(ns1, ExecutionId(0), "g@1", 1), nullptr);
  EXPECT_NE(cache.GetMasking(ns2, ExecutionId(0), "g@1", 1), nullptr);
}

TEST(PrivacyViewCacheTest, ByteBudgetBoundsResidentBytes) {
  PrivacyViewCache cache(/*byte_budget=*/16 * 1024);
  const uint64_t ns = PrivacyViewCache::NewNamespace();
  for (int i = 0; i < 200; ++i) {
    cache.PutMasking(ns, ExecutionId(i), 0, "g@1", 1, MakeMask(64));
  }
  const PrivacyViewCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, 16u * 1024u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 200u);
}

TEST(PrivacyViewCacheTest, ConcurrentMixedUseIsSafe) {
  PrivacyViewCache cache(/*byte_budget=*/32 * 1024);
  const uint64_t ns = PrivacyViewCache::NewNamespace();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, ns, t] {
      for (int i = 0; i < 500; ++i) {
        const ExecutionId exec(i % 37);
        const std::string group = "g" + std::to_string(t % 2) + "@1";
        if (i % 7 == 0) {
          cache.PutMasking(ns, exec, i % 5, group, 1, MakeMask(i % 16));
        } else if (i % 31 == 0) {
          cache.InvalidateSpec(ns, i % 5);
        } else {
          auto hit = cache.GetMasking(ns, exec, group, 1);
          if (hit != nullptr) {
            // Values stay internally consistent under concurrency.
            EXPECT_EQ(hit->num_visible,
                      static_cast<int>(hit->visible.size()));
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const PrivacyViewCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace paw

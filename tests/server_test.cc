// End-to-end pawd server tests: in-process server + PawClient over
// real sockets. Covers session gating (HELLO/AUTH ordering, version
// negotiation), per-principal privacy filtering of search / lineage /
// get-spec / get-execution, concurrent pipelined ingest from several
// clients, durability of acked writes across a server restart, the
// poll(2) backend, idle timeouts, admin-gated compaction, and the
// store-dir lock honored while a server runs.

#include "src/server/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/client/paw_client.h"
#include "src/common/file_io.h"
#include "src/common/metrics.h"
#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/privacy/policy_text.h"
#include "src/repo/disease.h"
#include "src/server/wire.h"
#include "src/store/sharded_repository.h"
#include "src/workflow/serialize.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_server_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// alice sees level 0, bob level 2 (the disease spec's deepest level),
/// root level 100 (admin).
ServerOptions TestOptions() {
  ServerOptions options;
  options.store.sync_each_append = true;
  options.store.writer_threads = 2;
  options.worker_threads = 4;
  options.principals = {
      {"alice", 0, "lab-a"}, {"bob", 2, "lab-b"}, {"root", 100, ""}};
  return options;
}

std::string DiseaseSpecText() {
  auto spec = BuildDiseaseSpec();
  EXPECT_TRUE(spec.ok());
  return Serialize(spec.value());
}

std::string DiseasePolicyText() {
  auto spec = BuildDiseaseSpec();
  EXPECT_TRUE(spec.ok());
  return SerializePolicy(DiseasePolicy());
}

/// One serialized execution of the disease spec with per-run inputs.
std::string DiseaseExecText(const Specification& spec, int run) {
  FunctionRegistry fns = BuildDiseaseFunctions();
  ValueMap inputs = DiseaseInputs();
  inputs["SNPs"] = "rs" + std::to_string(run);
  auto exec = Execute(spec, fns, inputs);
  EXPECT_TRUE(exec.ok());
  return SerializeExecution(exec.value());
}

/// Starts a server over a fresh 4-shard store and uploads the disease
/// spec + policy as root.
struct Fixture {
  std::string dir;
  std::unique_ptr<PawServer> server;
  Specification spec;

  static Fixture Create(const std::string& name, ServerOptions options,
                        int shards = 4) {
    Fixture f;
    f.dir = TestDir(name);
    {
      auto init = ShardedRepository::Init(f.dir, shards);
      EXPECT_TRUE(init.ok()) << init.status().ToString();
    }
    auto server = PawServer::Start(f.dir, std::move(options));
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    f.server = std::move(server).value();
    auto spec = BuildDiseaseSpec();
    EXPECT_TRUE(spec.ok());
    f.spec = std::move(spec).value();
    return f;
  }

  Result<PawClient> Client(const std::string& user) {
    auto client = PawClient::Connect("127.0.0.1", server->port());
    if (!client.ok()) return client.status();
    PAW_RETURN_NOT_OK(client.value().Auth(user));
    return client;
  }

  void UploadSpec() {
    auto client = Client("root");
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto added =
        client.value().AddSpec(DiseaseSpecText(), DiseasePolicyText());
    ASSERT_TRUE(added.ok()) << added.status().ToString();
  }
};

TEST(ServerTest, StartsOnEphemeralPortAndStops) {
  Fixture f = Fixture::Create("start_stop", TestOptions());
  EXPECT_GT(f.server->port(), 0);
  f.server->Stop();
  f.server->Stop();  // idempotent
}

TEST(ServerTest, HelloNegotiatesVersionAndAuthGatesEverything) {
  Fixture f = Fixture::Create("handshake", TestOptions());
  // Connect performs HELLO; server echoes its name + version.
  auto client = PawClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client.value().version(), wire::kProtocolVersion);
  EXPECT_EQ(client.value().server_name(), "pawd");

  // Any op before AUTH is denied.
  auto status = client.value().GetStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.status().IsPermissionDenied());

  // Unknown principal is denied; a real one binds.
  EXPECT_TRUE(client.value().Auth("mallory").IsPermissionDenied());
  EXPECT_TRUE(client.value().Auth("alice").ok());
  EXPECT_TRUE(client.value().GetStatus().ok());
}

TEST(ServerTest, DisjointVersionRangeIsRejected) {
  Fixture f = Fixture::Create("version", TestOptions());
  PawClientOptions options;
  options.min_version = 200;
  options.max_version = 201;
  auto client =
      PawClient::Connect("127.0.0.1", f.server->port(), options);
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsFailedPrecondition())
      << client.status().ToString();
}

TEST(ServerTest, AddSpecOnceThenDuplicateRejected) {
  Fixture f = Fixture::Create("add_spec", TestOptions());
  auto client = f.Client("root");
  ASSERT_TRUE(client.ok());
  auto added =
      client.value().AddSpec(DiseaseSpecText(), DiseasePolicyText());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_GE(added.value().spec_id, 0);
  auto duplicate = client.value().AddSpec(DiseaseSpecText(), "");
  ASSERT_FALSE(duplicate.ok());
  EXPECT_TRUE(duplicate.status().IsAlreadyExists());
}

TEST(ServerTest, PrivacyFilteringDiffersPerPrincipal) {
  Fixture f = Fixture::Create("privacy", TestOptions());
  f.UploadSpec();
  auto root = f.Client("root");
  ASSERT_TRUE(root.ok());
  auto ack = root.value().AddExecution(f.spec.name(),
                                       DiseaseExecText(f.spec, 0));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();

  auto alice = f.Client("alice");
  auto bob = f.Client("bob");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  // Keyword search: "omim" lives below level-0 visibility, so alice
  // gets nothing while bob gets a view.
  auto alice_hits = alice.value().Search({"omim"});
  auto bob_hits = bob.value().Search({"omim"});
  ASSERT_TRUE(alice_hits.ok());
  ASSERT_TRUE(bob_hits.ok());
  EXPECT_TRUE(alice_hits.value().hits.empty());
  ASSERT_FALSE(bob_hits.value().hits.empty());
  EXPECT_EQ(bob_hits.value().hits[0].spec_name, f.spec.name());

  // GetSpec: full text requires the access view to cover everything.
  auto alice_spec = alice.value().GetSpec(f.spec.name());
  ASSERT_FALSE(alice_spec.ok());
  EXPECT_TRUE(alice_spec.status().IsPermissionDenied());
  auto bob_spec = bob.value().GetSpec(f.spec.name());
  ASSERT_TRUE(bob_spec.ok()) << bob_spec.status().ToString();
  EXPECT_NE(bob_spec.value().spec_text.find("disease susceptibility"),
            std::string::npos);
  EXPECT_FALSE(bob_spec.value().policy_text.empty());

  // GetExecution: SNPs requires level 2 — masked for alice, plain for
  // bob.
  auto alice_exec = alice.value().GetExecution(f.spec.name(), 0);
  ASSERT_TRUE(alice_exec.ok()) << alice_exec.status().ToString();
  EXPECT_GT(alice_exec.value().num_masked, 0);
  // The SNPs item itself must carry the mask for alice (derived
  // lower-level items may legitimately embed input text — masking is
  // per item label, exactly the paper's data-privacy model).
  const auto snps_value = [](const std::string& text) -> std::string {
    const size_t label = text.find("label=\"SNPs\"");
    if (label == std::string::npos) return "<no SNPs item>";
    const size_t value = text.find("value=\"", label);
    if (value == std::string::npos) return "<no value field>";
    const size_t start = value + 7;
    const size_t end = text.find('"', start);
    return text.substr(start, end - start);
  };
  EXPECT_EQ(snps_value(alice_exec.value().exec_text), "<masked>");
  auto bob_exec = bob.value().GetExecution(f.spec.name(), 0);
  ASSERT_TRUE(bob_exec.ok());
  EXPECT_EQ(bob_exec.value().num_masked, 0);
  EXPECT_EQ(snps_value(bob_exec.value().exec_text), "rs0");

  // Lineage of the final result: alice's rows mask the sensitive
  // values bob can read.
  auto item = [&](PawClient& c) {
    // The disease pipeline's final item is the last one; lineage of
    // item 0 (the SNPs input) keeps the test independent of pipeline
    // length.
    return c.Lineage(f.spec.name(), 0, 0);
  };
  auto alice_lineage = item(alice.value());
  auto bob_lineage = item(bob.value());
  ASSERT_TRUE(alice_lineage.ok()) << alice_lineage.status().ToString();
  ASSERT_TRUE(bob_lineage.ok()) << bob_lineage.status().ToString();
  const auto joined = [](const wire::LineageResponse& r) {
    std::string all;
    for (const std::string& row : r.rows) all += row + "\n";
    return all;
  };
  EXPECT_NE(joined(alice_lineage.value()).find("<masked>"),
            std::string::npos);
  EXPECT_EQ(joined(bob_lineage.value()).find("<masked>"),
            std::string::npos)
      << joined(bob_lineage.value());
}

TEST(ServerTest, StructuralQueryConfinedToPrincipalView) {
  Fixture f = Fixture::Create("structural", TestOptions());
  f.UploadSpec();

  wire::StructuralRequest request;
  request.spec_name = BuildDiseaseSpec().value().name();
  request.var_terms = {"expand", "omim"};
  request.edges = {{0, 1, true}};

  auto bob = f.Client("bob");
  ASSERT_TRUE(bob.ok());
  auto bob_matches = bob.value().Structural(request);
  ASSERT_TRUE(bob_matches.ok()) << bob_matches.status().ToString();
  EXPECT_FALSE(bob_matches.value().matches.empty());

  auto alice = f.Client("alice");
  ASSERT_TRUE(alice.ok());
  auto alice_matches = alice.value().Structural(request);
  // Level 0 cannot see the modules the pattern names: either no match
  // or an explicit error, never bob's bindings.
  if (alice_matches.ok()) {
    EXPECT_TRUE(alice_matches.value().matches.empty());
  }
}

TEST(ServerTest, ConcurrentPipelinedClientsIngestEverything) {
  Fixture f = Fixture::Create("concurrent", TestOptions());
  f.UploadSpec();
  constexpr int kClients = 4;
  constexpr int kPerClient = 20;

  // Pre-serialize executions outside the timed/threaded section.
  std::vector<std::vector<std::string>> texts(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      texts[c].push_back(DiseaseExecText(f.spec, c * kPerClient + i));
    }
  }
  const std::string name = f.spec.name();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = f.Client(c % 2 == 0 ? "root" : "bob");
      if (!client.ok()) {
        ++failures;
        return;
      }
      std::vector<PawTicket> tickets;
      for (const std::string& text : texts[c]) {
        auto ticket = client.value().SendAddExecution(name, text);
        if (!ticket.ok()) {
          ++failures;
          return;
        }
        tickets.push_back(ticket.value());
      }
      for (PawTicket ticket : tickets) {
        auto ack = client.value().AwaitAddExecution(ticket);
        if (!ack.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto root = f.Client("root");
  ASSERT_TRUE(root.ok());
  auto status = root.value().GetStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().executions, kClients * kPerClient);

  // Acked writes survive a clean server shutdown and reopen.
  f.server->Stop();
  f.server.reset();
  auto reopened = ShardedRepository::Open(f.dir, {}, 4);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().num_executions(), kClients * kPerClient);
}

// The MVCC read-path acceptance test: queries run *while* pipelined
// ingest is in flight, every query succeeds, and the exclusive store
// lease is never taken during the mixed phase (only ADD_SPEC and
// COMPACT take it; both happen before the brackets). Run under TSan by
// tools/check.sh, this is also the data-race check for concurrent
// engine catch-up against repository appends.
TEST(ServerTest, QueriesRunConcurrentlyWithIngestOnSharedLease) {
  Fixture f = Fixture::Create("mvcc_mixed", TestOptions());
  f.UploadSpec();
  const std::string name = f.spec.name();

  // Seed one acked execution so ordinal 0 and its lineage exist for
  // every query issued below, whatever the interleaving.
  {
    auto seed = f.Client("root");
    ASSERT_TRUE(seed.ok());
    auto ack = seed.value().AddExecution(name, DiseaseExecText(f.spec, 0));
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  }

  constexpr int kWriters = 2;
  constexpr int kPerWriter = 40;
  constexpr int kQueryThreads = 2;
  constexpr int kQueriesPerThread = 45;
  constexpr int kWindow = 16;

  std::vector<std::vector<std::string>> texts(kWriters);
  for (int c = 0; c < kWriters; ++c) {
    for (int i = 0; i < kPerWriter; ++i) {
      texts[c].push_back(DiseaseExecText(f.spec, 1 + c * kPerWriter + i));
    }
  }

  MetricsSnapshot pre;
  {
    auto client = f.Client("root");
    ASSERT_TRUE(client.ok());
    auto resp = client.value().Metrics();
    ASSERT_TRUE(resp.ok());
    pre = std::move(resp.value().snapshot);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kWriters; ++c) {
    threads.emplace_back([&, c] {
      auto client = f.Client("root");
      if (!client.ok()) {
        ++failures;
        return;
      }
      std::vector<PawTicket> in_flight;
      for (const std::string& text : texts[c]) {
        auto ticket = client.value().SendAddExecution(name, text);
        if (!ticket.ok()) {
          ++failures;
          return;
        }
        in_flight.push_back(ticket.value());
        if (in_flight.size() >= kWindow) {
          if (!client.value().AwaitAddExecution(in_flight.front()).ok()) {
            ++failures;
            return;
          }
          in_flight.erase(in_flight.begin());
        }
      }
      for (PawTicket ticket : in_flight) {
        if (!client.value().AwaitAddExecution(ticket).ok()) ++failures;
      }
    });
  }
  for (int q = 0; q < kQueryThreads; ++q) {
    threads.emplace_back([&, q] {
      auto client = f.Client(q % 2 == 0 ? "root" : "bob");
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kQueriesPerThread; ++i) {
        bool ok = false;
        switch (i % 3) {
          case 0:
            ok = client.value().Search({"disorder"}).ok();
            break;
          case 1:
            ok = client.value().GetExecution(name, 0).ok();
            break;
          default:
            ok = client.value().Lineage(name, 0, 19).ok();
            break;
        }
        if (!ok) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto post_client = f.Client("root");
  ASSERT_TRUE(post_client.ok());
  auto post_resp = post_client.value().Metrics();
  ASSERT_TRUE(post_resp.ok());
  const MetricsSnapshot& post = post_resp.value().snapshot;

  // Queries and appends both ride the shared lease; nothing in the
  // mixed phase may have taken the exclusive (writer) lease.
  EXPECT_EQ(post.SumCounters("paw_server_lease_exclusive_total"),
            pre.SumCounters("paw_server_lease_exclusive_total"));
  EXPECT_GT(post.SumCounters("paw_server_lease_shared_total"),
            pre.SumCounters("paw_server_lease_shared_total"));
  // The repeated keyword search stays cached across execution ingest.
  EXPECT_GT(post.SumCounters("paw_query_cache_hits_total"),
            pre.SumCounters("paw_query_cache_hits_total"));

  // Everything acked landed.
  auto status = post_client.value().GetStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().executions, 1 + kWriters * kPerWriter);
}

TEST(ServerTest, CompactRequiresAdminLevel) {
  Fixture f = Fixture::Create("compact", TestOptions());
  f.UploadSpec();
  auto bob = f.Client("bob");
  ASSERT_TRUE(bob.ok());
  EXPECT_TRUE(bob.value().Compact().IsPermissionDenied());
  auto root = f.Client("root");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root.value().Compact().ok());
}

TEST(ServerTest, PollBackendServesRequests) {
  ServerOptions options = TestOptions();
  options.use_poll = true;
  Fixture f = Fixture::Create("poll_backend", std::move(options));
  f.UploadSpec();
  auto client = f.Client("root");
  ASSERT_TRUE(client.ok());
  auto ack = client.value().AddExecution(f.spec.name(),
                                         DiseaseExecText(f.spec, 1));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  auto status = client.value().GetStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().executions, 1);
}

TEST(ServerTest, SingleDirectoryStoreIsServable) {
  const std::string dir = TestDir("single_dir");
  {
    auto init = PersistentRepository::Init(dir);
    ASSERT_TRUE(init.ok());
  }
  auto server = PawServer::Start(dir, TestOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = PawClient::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().Auth("root").ok());
  auto added = client.value().AddSpec(DiseaseSpecText(), "");
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value().shard, 0);
  auto spec = BuildDiseaseSpec();
  auto ack = client.value().AddExecution(
      spec.value().name(), DiseaseExecText(spec.value(), 5));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
}

TEST(ServerTest, IdleConnectionsAreClosed) {
  ServerOptions options = TestOptions();
  options.idle_timeout_ms = 100;
  Fixture f = Fixture::Create("idle", std::move(options));
  auto client = f.Client("root");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().GetStatus().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  // The server dropped us; the next call fails on transport.
  auto status = client.value().GetStatus();
  EXPECT_FALSE(status.ok());
  EXPECT_GE(f.server->stats().idle_closed.load(), 1u);
}

TEST(ServerTest, IdleTimeoutSparesAPartiallyReceivedFrame) {
  // Regression: a client mid-upload (half a frame's bytes on the
  // socket, e.g. a pipelined append trickling in) is NOT idle. The
  // old busy check only looked at parsed frames and queued output, so
  // the idle sweep could close the connection and drop the write.
  ServerOptions options = TestOptions();
  options.idle_timeout_ms = 100;
  Fixture f = Fixture::Create("idle_partial", std::move(options));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(f.server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  const auto send_all = [&](std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                               0);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  };
  const auto read_response = [&]() -> wire::Frame {
    std::string in;
    char buf[4096];
    for (;;) {
      wire::Frame frame;
      size_t consumed = 0;
      std::string error;
      const wire::ParseResult r =
          wire::ParseFrame(in, &frame, &consumed, &error);
      if (r == wire::ParseResult::kFrame) return frame;
      EXPECT_EQ(r, wire::ParseResult::kNeedMore) << error;
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        ADD_FAILURE() << "server closed the connection";
        return frame;
      }
      in.append(buf, static_cast<size_t>(n));
    }
  };

  // Handshake: HELLO, then AUTH as root.
  wire::Frame hello;
  hello.opcode = wire::Opcode::kHello;
  hello.request_id = 1;
  hello.payload = wire::EncodeHelloRequest(
      {wire::kMinProtocolVersion, wire::kProtocolVersion, "slow-client"});
  std::string bytes;
  wire::AppendFrame(hello, &bytes);
  send_all(bytes);
  read_response();
  wire::Frame auth;
  auth.opcode = wire::Opcode::kAuth;
  auth.request_id = 2;
  auth.payload = wire::EncodeAuthRequest({"root"});
  bytes.clear();
  wire::AppendFrame(auth, &bytes);
  send_all(bytes);
  read_response();

  // Send HALF of a STATUS frame, then go quiet for several timeout
  // periods. The half frame sits in the server's input buffer; the
  // idle sweep must not reap the connection under it.
  wire::Frame status;
  status.opcode = wire::Opcode::kStatus;
  status.request_id = 3;
  bytes.clear();
  wire::AppendFrame(status, &bytes);
  send_all(std::string_view(bytes).substr(0, bytes.size() / 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  // Completing the frame must still yield the response.
  send_all(std::string_view(bytes).substr(bytes.size() / 2));
  const wire::Frame resp = read_response();
  EXPECT_EQ(resp.opcode, wire::Opcode::kStatus);
  EXPECT_EQ(resp.request_id, 3u);
  ::close(fd);
}

TEST(ServerTest, PipelinedStashIsBoundedAndPoisonsOnOverflow) {
  // Satellite of the replication PR: the client's out-of-order
  // response stash is bounded. Awaiting only the LAST of many
  // outstanding tickets forces every earlier response into the stash;
  // crossing the bound poisons the connection with a sticky error and
  // every later call fails fast instead of hanging or growing memory.
  Fixture f = Fixture::Create("stash", TestOptions());
  f.UploadSpec();

  PawClientOptions options;
  options.max_stashed_responses = 2;
  auto client =
      PawClient::Connect("127.0.0.1", f.server->port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value().Auth("root").ok());

  constexpr int kSends = 6;
  std::vector<PawTicket> tickets;
  for (int i = 0; i < kSends; ++i) {
    auto ticket = client.value().SendAddExecution(
        f.spec.name(), DiseaseExecText(f.spec, 200 + i));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(ticket.value());
  }
  EXPECT_EQ(client.value().pending(), static_cast<size_t>(kSends));

  // Awaiting the last ticket stashes responses 1..5 on the way — the
  // third stashed response crosses max_stashed_responses=2.
  auto last = client.value().AwaitAddExecution(tickets.back());
  ASSERT_FALSE(last.ok());
  EXPECT_TRUE(last.status().IsFailedPrecondition())
      << last.status().ToString();
  EXPECT_NE(last.status().message().find("stash"), std::string::npos);

  // Sticky: earlier tickets fail fast with the same error, without
  // touching the socket, and the stash was discarded.
  EXPECT_EQ(client.value().stashed(), 0u);
  auto earlier = client.value().AwaitAddExecution(tickets.front());
  ASSERT_FALSE(earlier.ok());
  EXPECT_TRUE(earlier.status().IsFailedPrecondition());

  // The server still applies every sent append (the overflow is a
  // client-side protection, not a lost write). The sends may still be
  // draining through the writer queues, so poll.
  auto check = f.Client("root");
  ASSERT_TRUE(check.ok());
  int applied = 0;
  for (int i = 0; i < 500; ++i) {
    auto status = check.value().GetStatus();
    ASSERT_TRUE(status.ok());
    applied = status.value().executions;
    if (applied >= kSends) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(applied, kSends);
}

TEST(ServerTest, PipelinedOutOfOrderAwaitWorksWithinTheBound) {
  // Out-of-order redemption inside the bound is the supported fast
  // path: await the last ticket first (stashing the others), then
  // drain the stash in any order. Unknown or already-redeemed tickets
  // fail fast instead of blocking on the socket forever.
  Fixture f = Fixture::Create("stash_ok", TestOptions());
  f.UploadSpec();
  auto client = f.Client("root");
  ASSERT_TRUE(client.ok());

  constexpr int kSends = 4;
  std::vector<PawTicket> tickets;
  for (int i = 0; i < kSends; ++i) {
    auto ticket = client.value().SendAddExecution(
        f.spec.name(), DiseaseExecText(f.spec, 300 + i));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  auto last = client.value().AwaitAddExecution(tickets.back());
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  EXPECT_EQ(client.value().stashed(), static_cast<size_t>(kSends - 1));
  for (int i = kSends - 2; i >= 0; --i) {
    auto ack = client.value().AwaitAddExecution(tickets[i]);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  }
  EXPECT_EQ(client.value().stashed(), 0u);
  EXPECT_EQ(client.value().pending(), 0u);

  // Double-redeem and never-issued tickets are client-side errors.
  EXPECT_TRUE(client.value()
                  .AwaitAddExecution(tickets.front())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(client.value()
                  .AwaitAddExecution(PawTicket{999999})
                  .status()
                  .IsInvalidArgument());
  // The connection itself is still healthy.
  EXPECT_TRUE(client.value().GetStatus().ok());
}

TEST(ServerTest, StoreDirLockHeldWhileServing) {
  Fixture f = Fixture::Create("lock", TestOptions());
  // The server holds the store-dir lock: a second read-write open
  // must fail while it runs, and succeed after it stops.
  auto second = ShardedRepository::Open(f.dir);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsFailedPrecondition());
  f.server->Stop();
  f.server.reset();
  EXPECT_TRUE(ShardedRepository::Open(f.dir).ok());
}

TEST(ServerTest, MetricsOpcodeCountsAdvance) {
  Fixture f = Fixture::Create("metrics", TestOptions());
  f.UploadSpec();
  auto root = f.Client("root");
  ASSERT_TRUE(root.ok());

  // Metrics (like everything else) requires AUTH.
  auto bare = PawClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare.value().Metrics().status().IsPermissionDenied());

  auto before = root.value().Metrics();
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  const MetricsSnapshot& pre = before.value().snapshot;

  // Pipelined adds plus queries, then a second snapshot: the deltas
  // must reflect exactly what this test sent (metrics are process-
  // global, so assert on deltas, never absolutes).
  constexpr int kAdds = 5;
  std::vector<PawTicket> tickets;
  for (int i = 0; i < kAdds; ++i) {
    auto ticket = root.value().SendAddExecution(
        f.spec.name(), DiseaseExecText(f.spec, 100 + i));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(ticket.value());
  }
  for (PawTicket ticket : tickets) {
    ASSERT_TRUE(root.value().AwaitAddExecution(ticket).ok());
  }
  ASSERT_TRUE(root.value().Search({"omim"}).ok());
  ASSERT_TRUE(root.value().GetStatus().ok());

  auto after = root.value().Metrics();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  const MetricsSnapshot& post = after.value().snapshot;

  const auto delta = [&](const std::string& name) -> uint64_t {
    const MetricSample* b = pre.Find(name);
    const MetricSample* a = post.Find(name);
    EXPECT_NE(a, nullptr) << name;
    if (a == nullptr) return 0;
    return a->counter - (b != nullptr ? b->counter : 0);
  };
  EXPECT_EQ(delta("paw_server_requests_total{opcode=\"add_execution\"}"),
            static_cast<uint64_t>(kAdds));
  EXPECT_EQ(delta("paw_server_requests_total{opcode=\"keyword_search\"}"),
            1u);
  EXPECT_EQ(delta("paw_server_requests_total{opcode=\"status\"}"), 1u);
  // The METRICS request itself is counted (the first snapshot call).
  EXPECT_GE(delta("paw_server_requests_total{opcode=\"metrics\"}"), 1u);
  // Store-layer instrumentation advanced under the adds.
  EXPECT_GE(delta("paw_wal_appends_total"), static_cast<uint64_t>(kAdds));
  const MetricSample* fsync_pre = pre.Find("paw_wal_fsync_seconds");
  const MetricSample* fsync_post = post.Find("paw_wal_fsync_seconds");
  ASSERT_NE(fsync_post, nullptr);
  EXPECT_GT(fsync_post->histogram.count,
            fsync_pre != nullptr ? fsync_pre->histogram.count : 0);

  // Per-opcode latency histograms recorded each request and expose a
  // sane percentile spread.
  const MetricSample* latency =
      post.Find("paw_server_request_seconds{opcode=\"add_execution\"}");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->histogram.count, static_cast<uint64_t>(kAdds));
  EXPECT_GT(latency->histogram.Quantile(0.99), 0.0);
  EXPECT_LE(latency->histogram.Quantile(0.5),
            latency->histogram.Quantile(0.99));

  // Bytes flowed both ways; the connection gauge sees live sessions.
  const MetricSample* bytes_in = post.Find("paw_server_bytes_in_total");
  const MetricSample* bytes_out = post.Find("paw_server_bytes_out_total");
  ASSERT_NE(bytes_in, nullptr);
  ASSERT_NE(bytes_out, nullptr);
  EXPECT_GT(bytes_in->counter, 0u);
  EXPECT_GT(bytes_out->counter, 0u);
  const MetricSample* conns = post.Find("paw_server_connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_GE(conns->gauge, 1);
}

TEST(ServerTest, SlowQueryLogFiresAtZeroThreshold) {
  ServerOptions options = TestOptions();
  options.slow_query_ms = 0;  // every request with a nonzero span logs
  Fixture f = Fixture::Create("slow_query", std::move(options));
  f.UploadSpec();
  auto root = f.Client("root");
  ASSERT_TRUE(root.ok());

  Counter& slow =
      MetricsRegistry::Global().GetCounter("paw_server_slow_queries_total");
  const uint64_t slow_before = slow.value();

  ::testing::internal::CaptureStderr();
  // A synced append takes at least one fsync — comfortably over 0 ms.
  auto ack = root.value().AddExecution(f.spec.name(),
                                       DiseaseExecText(f.spec, 500));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  // Give the worker a beat to flush the warning line.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::string log = ::testing::internal::GetCapturedStderr();

  EXPECT_NE(log.find("slow request"), std::string::npos) << log;
  EXPECT_NE(log.find("opcode=add_execution"), std::string::npos) << log;
  EXPECT_NE(log.find("principal=root"), std::string::npos) << log;
  EXPECT_NE(log.find("duration_ms="), std::string::npos) << log;
  EXPECT_GT(slow.value(), slow_before);
}

TEST(ServerTest, TraceDumpReturnsRequestSpanTreeAndIsAdminGated) {
  ServerOptions options = TestOptions();
  options.trace_sample_n = 1;  // record every trace
  Fixture f = Fixture::Create("trace_dump", std::move(options));
  f.UploadSpec();
  auto root = f.Client("root");
  ASSERT_TRUE(root.ok());

  auto ack = root.value().AddExecution(f.spec.name(),
                                       DiseaseExecText(f.spec, 900));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  // The client stamped its own trace id into the v2 frame trailer;
  // the server's whole span family must land under that id.
  const uint64_t trace_id = root.value().last_trace_id();
  ASSERT_NE(trace_id, 0u);

  // TRACE_DUMP exposes every principal's activity: admin only.
  auto alice = f.Client("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_TRUE(alice.value()
                  .TraceDump(wire::TraceDumpRequest{})
                  .status()
                  .IsPermissionDenied());

  wire::TraceDumpRequest by_id;
  by_id.mode = wire::TraceDumpMode::kById;
  by_id.trace_id = trace_id;
  auto dump = root.value().TraceDump(by_id);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
#if !defined(PAW_NO_TRACE)
  const Span* req_span = nullptr;
  for (const Span& s : dump.value().spans) {
    EXPECT_EQ(s.trace_id, trace_id);
    if (s.name_view() == "req.add_execution") req_span = &s;
  }
  ASSERT_NE(req_span, nullptr);
  EXPECT_EQ(req_span->principal_view(), "root");
  EXPECT_GE(req_span->end_us, req_span->start_us);
  // Milestone children (lease.wait / reply) hang under the root span.
  bool child_found = false;
  for (const Span& s : dump.value().spans) {
    if (s.parent_span_id == req_span->span_id) child_found = true;
  }
  EXPECT_TRUE(child_found);
#endif
}

TEST(ServerTest, AuditChannelRecordsDeniedAndMaskedAccess) {
  Fixture f = Fixture::Create("audit", TestOptions());
  f.UploadSpec();
  auto root = f.Client("root");
  ASSERT_TRUE(root.ok());
  auto ack = root.value().AddExecution(f.spec.name(),
                                       DiseaseExecText(f.spec, 901));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();

#if !defined(PAW_NO_METRICS)
  Counter& denied_total = MetricsRegistry::Global().GetCounter(
      "paw_audit_events_total{verdict=\"denied\"}");
  Counter& masked_total = MetricsRegistry::Global().GetCounter(
      "paw_audit_events_total{verdict=\"masked\"}");
  const uint64_t denied_before = denied_total.value();
  const uint64_t masked_before = masked_total.value();
#endif

  auto alice = f.Client("alice");
  ASSERT_TRUE(alice.ok());
  // A refused GET_SPEC is a denied event; a masked GET_EXECUTION is a
  // masked event (SNPs requires level 2, alice has 0).
  EXPECT_TRUE(alice.value()
                  .GetSpec(f.spec.name())
                  .status()
                  .IsPermissionDenied());
  auto exec = alice.value().GetExecution(f.spec.name(), 0);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_GT(exec.value().num_masked, 0);

#if !defined(PAW_NO_METRICS)
  EXPECT_EQ(denied_total.value(), denied_before + 1);
  EXPECT_EQ(masked_total.value(), masked_before + 1);
#endif

#if !defined(PAW_NO_TRACE)
  wire::TraceDumpRequest req;
  req.mode = wire::TraceDumpMode::kAudit;
  auto dump = root.value().TraceDump(req);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  bool denied_found = false;
  bool masked_found = false;
  for (const Span& s : dump.value().spans) {
    EXPECT_EQ(s.kind, SpanKind::kAudit);
    if (s.principal_view() != "alice") continue;
    if (s.name_view() == "denied") denied_found = true;
    if (s.name_view() == "masked") {
      masked_found = true;
      EXPECT_NE(s.detail_view().find("masked="), std::string_view::npos);
      EXPECT_NE(s.detail_view().find("g=lab-a@0"), std::string_view::npos);
    }
  }
  EXPECT_TRUE(denied_found);
  EXPECT_TRUE(masked_found);
#endif
}

TEST(ServerTest, SlowQueryRateLimitIsPerPrincipal) {
  ServerOptions options = TestOptions();
  options.slow_query_ms = 0;  // every request with a nonzero span logs
  Fixture f = Fixture::Create("slow_per_principal", std::move(options));
  f.UploadSpec();
  auto alice = f.Client("alice");
  auto bob = f.Client("bob");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  ::testing::internal::CaptureStderr();
  // Same opcode back-to-back from two principals: with the old
  // per-opcode limiter the second line would be suppressed; keyed on
  // (opcode, principal) both emit.
  ASSERT_TRUE(alice.value().Search({"omim"}).ok());
  ASSERT_TRUE(bob.value().Search({"omim"}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::string log = ::testing::internal::GetCapturedStderr();

  EXPECT_NE(log.find("principal=alice"), std::string::npos) << log;
  EXPECT_NE(log.find("principal=bob"), std::string::npos) << log;
  // Slow lines carry the trace id for TRACE_DUMP correlation.
  EXPECT_NE(log.find(" trace="), std::string::npos) << log;
}

TEST(ServerTest, ErrorsForUnknownSpecAndOrdinals) {
  Fixture f = Fixture::Create("errors", TestOptions());
  f.UploadSpec();
  auto root = f.Client("root");
  ASSERT_TRUE(root.ok());
  auto missing = root.value().AddExecution("no such spec", "x");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
  auto exec = root.value().GetExecution(f.spec.name(), 7);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsNotFound());
  auto malformed =
      root.value().AddExecution(f.spec.name(), "not an execution");
  EXPECT_FALSE(malformed.ok());
}

}  // namespace
}  // namespace paw

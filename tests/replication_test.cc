// End-to-end WAL-shipping replication tests: a leader pawd and a
// follower pawd over real sockets. Covers disk catch-up (the follower
// attaches after ingest), live streaming (group-commit batches forked
// to the subscriber), privacy-enforced reads on the follower, the
// read-only write rejection, quorum acks, follower queries running
// concurrently with leader ingest (the TSan target), and promotion:
// restarting the follower's store directory as a new leader.

#include "src/server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/client/paw_client.h"
#include "src/common/trace.h"
#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/privacy/policy_text.h"
#include "src/repo/disease.h"
#include "src/server/wire.h"
#include "src/store/sharded_repository.h"
#include "src/workflow/serialize.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_repl_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

constexpr int kShards = 2;

ServerOptions LeaderOptions() {
  ServerOptions options;
  options.store.sync_each_append = true;
  options.store.writer_threads = 2;
  options.worker_threads = 4;
  options.principals = {
      {"alice", 0, "lab-a"}, {"bob", 2, "lab-b"}, {"root", 100, ""}};
  return options;
}

ServerOptions FollowerOptions(int leader_port) {
  ServerOptions options = LeaderOptions();
  options.follow_host = "127.0.0.1";
  options.follow_port = leader_port;
  options.follow_principal = "root";
  return options;
}

std::string DiseaseSpecText() {
  auto spec = BuildDiseaseSpec();
  EXPECT_TRUE(spec.ok());
  return Serialize(spec.value());
}

std::string DiseasePolicyText() {
  auto spec = BuildDiseaseSpec();
  EXPECT_TRUE(spec.ok());
  return SerializePolicy(DiseasePolicy());
}

std::string DiseaseExecText(const Specification& spec, int run) {
  FunctionRegistry fns = BuildDiseaseFunctions();
  ValueMap inputs = DiseaseInputs();
  inputs["SNPs"] = "rs" + std::to_string(run);
  auto exec = Execute(spec, fns, inputs);
  EXPECT_TRUE(exec.ok());
  return SerializeExecution(exec.value());
}

/// Polls `pred` until it returns true or ~20 s elapse (replication is
/// asynchronous; CI machines are slow).
bool WaitFor(const std::function<bool()>& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

/// A leader over a fresh sharded store plus helpers to attach
/// followers and clients.
struct ReplFixture {
  std::string leader_dir;
  std::string follower_dir;
  std::unique_ptr<PawServer> leader;
  std::unique_ptr<PawServer> follower;
  Specification spec;

  static ReplFixture Create(const std::string& name,
                            ServerOptions leader_options) {
    ReplFixture f;
    f.leader_dir = TestDir(name + "_leader");
    f.follower_dir = TestDir(name + "_follower");
    EXPECT_TRUE(ShardedRepository::Init(f.leader_dir, kShards).ok());
    EXPECT_TRUE(ShardedRepository::Init(f.follower_dir, kShards).ok());
    auto leader = PawServer::Start(f.leader_dir, std::move(leader_options));
    EXPECT_TRUE(leader.ok()) << leader.status().ToString();
    f.leader = std::move(leader).value();
    auto spec = BuildDiseaseSpec();
    EXPECT_TRUE(spec.ok());
    f.spec = std::move(spec).value();
    return f;
  }

  void StartFollower() {
    auto started = PawServer::Start(follower_dir,
                                    FollowerOptions(leader->port()));
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    follower = std::move(started).value();
  }

  Result<PawClient> Client(PawServer& server, const std::string& user) {
    auto client = PawClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) return client.status();
    PAW_RETURN_NOT_OK(client.value().Auth(user));
    return client;
  }

  void UploadSpec() {
    auto client = Client(*leader, "root");
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto added =
        client.value().AddSpec(DiseaseSpecText(), DiseasePolicyText());
    ASSERT_TRUE(added.ok()) << added.status().ToString();
  }

  void IngestExecutions(int first_run, int count) {
    auto client = Client(*leader, "root");
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    std::vector<PawTicket> tickets;
    for (int i = 0; i < count; ++i) {
      auto ticket = client.value().SendAddExecution(
          spec.name(), DiseaseExecText(spec, first_run + i));
      ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
      tickets.push_back(ticket.value());
    }
    for (PawTicket ticket : tickets) {
      ASSERT_TRUE(client.value().AwaitAddExecution(ticket).ok());
    }
  }

  /// Executions currently visible on `server` (-1 on error).
  int CountExecutions(PawServer& server, const std::string& user = "root") {
    auto client = Client(server, user);
    if (!client.ok()) return -1;
    auto status = client.value().GetStatus();
    if (!status.ok()) return -1;
    return status.value().executions;
  }
};

TEST(ReplicationTest, FollowerCatchesUpStreamsLiveAndServesReads) {
  ReplFixture f = ReplFixture::Create("basic", LeaderOptions());
  f.UploadSpec();
  f.IngestExecutions(0, 10);

  // The follower attaches *after* ingest: everything above arrives via
  // the disk catch-up path (sealed + active segment files).
  f.StartFollower();
  ASSERT_TRUE(WaitFor([&] {
    return f.CountExecutions(*f.follower) == 10;
  })) << "follower saw " << f.CountExecutions(*f.follower)
      << " executions";

  // Reads on the follower run through the same privacy engine: bob
  // (level 2) finds the spec and reads plain values, alice (level 0)
  // gets masked items.
  auto bob = f.Client(*f.follower, "bob");
  ASSERT_TRUE(bob.ok()) << bob.status().ToString();
  auto hits = bob.value().Search({"omim"});
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits.value().hits.empty());
  EXPECT_EQ(hits.value().hits[0].spec_name, f.spec.name());
  auto bob_exec = bob.value().GetExecution(f.spec.name(), 0);
  ASSERT_TRUE(bob_exec.ok()) << bob_exec.status().ToString();
  EXPECT_EQ(bob_exec.value().num_masked, 0);
  auto alice = f.Client(*f.follower, "alice");
  ASSERT_TRUE(alice.ok());
  auto alice_exec = alice.value().GetExecution(f.spec.name(), 0);
  ASSERT_TRUE(alice_exec.ok()) << alice_exec.status().ToString();
  EXPECT_GT(alice_exec.value().num_masked, 0);

  // The follower is read capacity only: every write opcode is rejected
  // with a redirect-style error naming the leader.
  auto root = f.Client(*f.follower, "root");
  ASSERT_TRUE(root.ok());
  auto write = root.value().AddExecution(f.spec.name(),
                                         DiseaseExecText(f.spec, 99));
  ASSERT_FALSE(write.ok());
  EXPECT_TRUE(write.status().IsFailedPrecondition())
      << write.status().ToString();
  EXPECT_NE(write.status().message().find(
                std::to_string(f.leader->port())),
            std::string::npos)
      << write.status().ToString();
  EXPECT_TRUE(root.value()
                  .AddSpec("spec \"x\"", "")
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(root.value().Compact().IsFailedPrecondition());

  // Live streaming: new leader commits flow through the in-memory ring.
  f.IngestExecutions(10, 5);
  EXPECT_TRUE(WaitFor([&] {
    return f.CountExecutions(*f.follower) == 15;
  })) << "follower saw " << f.CountExecutions(*f.follower);

  // Both sides report their role in STATUS.
  {
    auto leader_client = f.Client(*f.leader, "root");
    ASSERT_TRUE(leader_client.ok());
    auto status = leader_client.value().GetStatus();
    ASSERT_TRUE(status.ok());
    EXPECT_NE(status.value().text.find("1 subscriber(s)"),
              std::string::npos)
        << status.value().text;
  }
  auto follower_status = root.value().GetStatus();
  ASSERT_TRUE(follower_status.ok());
  EXPECT_NE(follower_status.value().text.find("follower of"),
            std::string::npos)
      << follower_status.value().text;
}

TEST(ReplicationTest, QuorumAcksGateOnAFollowerConfirming) {
  ServerOptions options = LeaderOptions();
  options.quorum_acks = true;
  options.quorum_timeout_ms = 300;
  ReplFixture f = ReplFixture::Create("quorum", std::move(options));
  f.UploadSpec();

  // With zero subscribers a quorum ack cannot happen: the ADD fails
  // back to the client — but the write is still durable locally
  // (documented semantics), so the leader's count advances.
  auto root = f.Client(*f.leader, "root");
  ASSERT_TRUE(root.ok());
  auto unacked = root.value().AddExecution(f.spec.name(),
                                           DiseaseExecText(f.spec, 0));
  ASSERT_FALSE(unacked.ok());
  EXPECT_TRUE(unacked.status().IsFailedPrecondition())
      << unacked.status().ToString();
  EXPECT_NE(unacked.status().message().find("quorum"), std::string::npos);
  EXPECT_EQ(f.CountExecutions(*f.leader), 1);

  // Once a follower subscribes and acks, quorum writes succeed.
  f.StartFollower();
  ASSERT_TRUE(WaitFor([&] {
    return f.CountExecutions(*f.follower) == 1;
  }));
  auto acked = root.value().AddExecution(f.spec.name(),
                                         DiseaseExecText(f.spec, 1));
  ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  EXPECT_TRUE(WaitFor([&] {
    return f.CountExecutions(*f.follower) == 2;
  }));
}

// The TSan target: follower queries run while the leader streams live
// group-commit batches into the follower's store. Exercises the apply
// path (lease + ApplyReplicated + engine catch-up) against concurrent
// privacy-enforced reads on the same shards.
TEST(ReplicationTest, FollowerServesQueriesDuringLiveIngest) {
  ReplFixture f = ReplFixture::Create("mixed", LeaderOptions());
  f.UploadSpec();
  f.IngestExecutions(0, 1);  // ordinal 0 exists for every query below
  f.StartFollower();
  ASSERT_TRUE(WaitFor([&] {
    return f.CountExecutions(*f.follower) == 1;
  }));

  constexpr int kWrites = 30;
  constexpr int kQueryThreads = 2;
  std::vector<std::string> texts;
  for (int i = 0; i < kWrites; ++i) {
    texts.push_back(DiseaseExecText(f.spec, 1 + i));
  }

  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    auto client = f.Client(*f.leader, "root");
    if (!client.ok()) {
      ++failures;
      writer_done = true;
      return;
    }
    std::vector<PawTicket> tickets;
    for (const std::string& text : texts) {
      auto ticket = client.value().SendAddExecution(f.spec.name(), text);
      if (!ticket.ok()) {
        ++failures;
        break;
      }
      tickets.push_back(ticket.value());
    }
    for (PawTicket ticket : tickets) {
      if (!client.value().AwaitAddExecution(ticket).ok()) ++failures;
    }
    writer_done = true;
  });
  for (int q = 0; q < kQueryThreads; ++q) {
    threads.emplace_back([&, q] {
      auto client = f.Client(*f.follower, q % 2 == 0 ? "root" : "bob");
      if (!client.ok()) {
        ++failures;
        return;
      }
      int i = 0;
      while (!writer_done.load() || i < 10) {
        bool ok = false;
        switch (i++ % 4) {
          case 0:
            ok = client.value().Search({"disorder"}).ok();
            break;
          case 1:
            ok = client.value().GetExecution(f.spec.name(), 0).ok();
            break;
          case 2:
            ok = client.value().Lineage(f.spec.name(), 0, 0).ok();
            break;
          default:
            ok = client.value().GetStatus().ok();
            break;
        }
        if (!ok) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(WaitFor([&] {
    return f.CountExecutions(*f.follower) == 1 + kWrites;
  })) << "follower saw " << f.CountExecutions(*f.follower);
}

// The tracing acceptance drill: a quorum-acked write's trace id —
// stamped by the *client* into the v2 frame trailer — must show up on
// the leader's span tree AND on the follower's apply path. Leader and
// follower run in one process here, so both record into the shared
// flight recorder; span principals/names tell the two sides apart.
TEST(ReplicationTest, QuorumAckedWriteTraceSpansFollowerApply) {
  ServerOptions options = LeaderOptions();
  options.quorum_acks = true;
  options.quorum_timeout_ms = 500;
  options.trace_sample_n = 1;  // record every trace
  ReplFixture f = ReplFixture::Create("trace", std::move(options));
  f.UploadSpec();
  f.StartFollower();

  auto root = f.Client(*f.leader, "root");
  ASSERT_TRUE(root.ok());
  // Nothing to catch up on yet, so probe for the subscription with a
  // write: a quorum ack can only succeed once the follower is attached
  // and confirming (failed probes stay durable locally, which is fine
  // — each uses a distinct run number). The probe's own trace id is no
  // good for the assertion below: it may share a push batch with the
  // catch-up records, and a batch rides the FIRST traced record's
  // context.
  int run = 7;
  ASSERT_TRUE(WaitFor([&] {
    return root.value()
        .AddExecution(f.spec.name(), DiseaseExecText(f.spec, run++))
        .ok();
  }));
  // Everything so far is acked, so this write opens a fresh batch and
  // its context rides the push. The ack implies the leader recorded
  // its spans and the follower confirmed durability — the apply and
  // ack-recv spans are recorded before the ack reaches the client.
  auto acked = root.value().AddExecution(f.spec.name(),
                                         DiseaseExecText(f.spec, run));
  ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  const uint64_t trace_id = root.value().last_trace_id();
  ASSERT_NE(trace_id, 0u);

#if !defined(PAW_NO_TRACE)
  bool req_found = false;
  bool push_found = false;
  bool apply_found = false;
  bool ack_found = false;
  std::string all;
  for (const Span& s : TraceRecorder::Global().Collect()) {
    all += TraceIdHex(s.trace_id) + " " + std::string(s.name_view()) +
           " " + std::string(s.detail_view()) + "\n";
    if (s.trace_id != trace_id) continue;
    if (s.name_view() == "req.add_execution") req_found = true;
    if (s.name_view() == "repl.push") push_found = true;
    if (s.name_view() == "repl.apply") apply_found = true;
    if (s.name_view() == "repl.ack_recv") ack_found = true;
  }
  EXPECT_TRUE(req_found) << "leader request span missing";
  EXPECT_TRUE(push_found) << "leader push span missing";
  EXPECT_TRUE(apply_found) << "follower apply span missing; trace "
                           << TraceIdHex(trace_id) << "; all spans:\n"
                           << all;
  EXPECT_TRUE(ack_found) << "leader ack-recv span missing";
#endif
  TraceRecorder::Global().set_sample_n(64);  // restore the default
}

TEST(ReplicationTest, PromotedFollowerServesWrites) {
  ReplFixture f = ReplFixture::Create("promote", LeaderOptions());
  f.UploadSpec();
  f.IngestExecutions(0, 5);
  f.StartFollower();
  ASSERT_TRUE(WaitFor([&] {
    return f.CountExecutions(*f.follower) == 5;
  }));

  // Promotion is just a restart: the follower's WAL chain is
  // byte-identical (deterministic framing), so pointing a leader
  // process at its store directory continues the same log.
  f.follower->Stop();
  f.follower.reset();
  f.leader->Stop();
  f.leader.reset();

  auto promoted = PawServer::Start(f.follower_dir, LeaderOptions());
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  auto client = f.Client(*promoted.value(), "root");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto status = client.value().GetStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().executions, 5);
  // The promoted node takes writes (it is a leader now).
  auto ack = client.value().AddExecution(f.spec.name(),
                                         DiseaseExecText(f.spec, 100));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(f.CountExecutions(*promoted.value()), 6);
  // And its replication manager accepts subscribers of its own: the
  // old leader's store could re-attach as a follower here (drilled
  // end-to-end by tools/check.sh).
}

}  // namespace
}  // namespace paw

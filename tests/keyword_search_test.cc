// Tests for keyword search with minimal views — including the exact
// Fig. 5 reproduction.

#include "src/query/keyword_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/repo/disease.h"

namespace paw {
namespace {

class KeywordSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(
        repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
            .ok());
    index_.Build(repo_);
    scorer_.Build(index_);
  }

  const Specification& spec() { return repo_.entry(0).spec; }
  const ExpansionHierarchy& hierarchy() {
    return repo_.entry(0).hierarchy;
  }
  WorkflowId W(const std::string& code) {
    return spec().FindWorkflow(code).value();
  }

  Repository repo_;
  InvertedIndex index_;
  TfIdfScorer scorer_;
};

TEST_F(KeywordSearchTest, Fig5MinimalViewForDatabaseQueriesDisorderRisk) {
  // The Fig. 5 query: the terms force expansion down to W4 (which holds
  // "Generate Database Queries") while M2 covers "disorder risk" as a
  // collapsed placeholder -> minimal view {W1, W2, W4}.
  auto minimal = MinimalCoveringPrefixes(
      spec(), hierarchy(), {"database queries", "disorder risk"},
      /*level=*/2);
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  ASSERT_EQ(minimal.value().size(), 1u);
  EXPECT_EQ(minimal.value()[0], (Prefix{W("W1"), W("W2"), W("W4")}));
}

TEST_F(KeywordSearchTest, PlaceholderCoverageKeepsViewsSmall) {
  // "databases" matches the *composite* M4 placeholder already at
  // {W1, W2}: minimal view stops there.
  auto minimal = MinimalCoveringPrefixes(
      spec(), hierarchy(), {"external databases"}, /*level=*/2);
  ASSERT_TRUE(minimal.ok());
  ASSERT_EQ(minimal.value().size(), 1u);
  EXPECT_EQ(minimal.value()[0], (Prefix{W("W1"), W("W2")}));
}

TEST_F(KeywordSearchTest, RootTermNeedsNoExpansion) {
  auto minimal = MinimalCoveringPrefixes(
      spec(), hierarchy(), {"genetic susceptibility"}, /*level=*/2);
  ASSERT_TRUE(minimal.ok());
  ASSERT_EQ(minimal.value().size(), 1u);
  EXPECT_EQ(minimal.value()[0], (Prefix{W("W1")}));
}

TEST_F(KeywordSearchTest, AccessLevelPrunesAnswers) {
  // "omim" lives in W4 (level 2); a level-0 observer gets nothing.
  auto minimal =
      MinimalCoveringPrefixes(spec(), hierarchy(), {"omim"}, /*level=*/0);
  ASSERT_TRUE(minimal.ok());
  EXPECT_TRUE(minimal.value().empty());
  auto minimal2 =
      MinimalCoveringPrefixes(spec(), hierarchy(), {"omim"}, /*level=*/2);
  ASSERT_TRUE(minimal2.ok());
  EXPECT_EQ(minimal2.value().size(), 1u);
}

TEST_F(KeywordSearchTest, MultipleIncomparableMinimalViews) {
  // "reformat" is in W3; "expand snp" in W2: one minimal view needs both.
  auto minimal = MinimalCoveringPrefixes(
      spec(), hierarchy(), {"reformat", "expand snp"}, /*level=*/2);
  ASSERT_TRUE(minimal.ok());
  ASSERT_EQ(minimal.value().size(), 1u);
  EXPECT_EQ(minimal.value()[0], (Prefix{W("W1"), W("W2"), W("W3")}));
}

TEST_F(KeywordSearchTest, UncoverableTermYieldsNoViews) {
  auto minimal = MinimalCoveringPrefixes(
      spec(), hierarchy(), {"quantum chromodynamics"}, /*level=*/2);
  ASSERT_TRUE(minimal.ok());
  EXPECT_TRUE(minimal.value().empty());
}

TEST_F(KeywordSearchTest, GreedyCoverAgreesOnPaperQuery) {
  auto greedy = GreedyCoveringPrefix(
      spec(), hierarchy(), {"database queries", "disorder risk"},
      /*level=*/2);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  EXPECT_EQ(greedy.value(), (Prefix{W("W1"), W("W2"), W("W4")}));
}

TEST_F(KeywordSearchTest, GreedyRejectsUncoverable) {
  auto greedy = GreedyCoveringPrefix(spec(), hierarchy(),
                                     {"no such term"}, /*level=*/2);
  EXPECT_FALSE(greedy.ok());
}

TEST_F(KeywordSearchTest, RepositorySearchRanksAndFilters) {
  auto answers = KeywordSearch(repo_, &index_, &scorer_,
                               {"database queries", "disorder risk"},
                               /*level=*/2);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 1u);
  const KeywordAnswer& a = answers.value()[0];
  EXPECT_EQ(a.spec_id, 0);
  EXPECT_EQ(a.prefix, (Prefix{W("W1"), W("W2"), W("W4")}));
  EXPECT_GT(a.score, 0);
  // Matched modules include M5 and M2.
  std::vector<std::string> codes;
  for (ModuleId m : a.matched) codes.push_back(spec().module(m).code);
  EXPECT_NE(std::find(codes.begin(), codes.end(), "M5"), codes.end());
  EXPECT_NE(std::find(codes.begin(), codes.end(), "M2"), codes.end());
}

TEST_F(KeywordSearchTest, SearchWithoutIndexScansEverything) {
  KeywordSearchOptions options;
  options.use_index = false;
  auto answers = KeywordSearch(repo_, nullptr, &scorer_, {"reformat"},
                               /*level=*/2, options);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value().size(), 1u);
}

TEST_F(KeywordSearchTest, LevelZeroSeesOnlyRootAnswers) {
  auto answers =
      KeywordSearch(repo_, &index_, &scorer_, {"disorder risk"},
                    /*level=*/0);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 1u);
  EXPECT_EQ(answers.value()[0].prefix, (Prefix{W("W1")}));
}

}  // namespace
}  // namespace paw

// Tests for execution diffing (the paper's debugging use case).

#include "src/provenance/diff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/repo/disease.h"

namespace paw {
namespace {

class DiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<Specification>(std::move(spec).value());
    fns_ = BuildDiseaseFunctions();
  }

  Execution Run(ValueMap inputs) {
    auto exec = Execute(*spec_, fns_, inputs);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    return std::move(exec).value();
  }

  std::unique_ptr<Specification> spec_;
  FunctionRegistry fns_;
};

TEST_F(DiffTest, IdenticalRunsDiffEmpty) {
  Execution a = Run(DiseaseInputs());
  Execution b = Run(DiseaseInputs());
  auto diff = DiffExecutions(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.value().identical());
  EXPECT_TRUE(diff.value().divergences.empty());
}

TEST_F(DiffTest, ChangedInputPropagatesThroughGeneticArm) {
  Execution a = Run(DiseaseInputs());
  ValueMap inputs = DiseaseInputs();
  inputs["SNPs"] = "rs0000";
  Execution b = Run(inputs);
  auto diff = DiffExecutions(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff.value().identical());
  // d0 (the SNPs) diverges, and so does everything derived from it;
  // d1..d4 (ethnicity, lifestyle, ...) do not.
  std::vector<int32_t> diverged;
  for (const auto& d : diff.value().divergences) {
    diverged.push_back(d.item.value());
  }
  EXPECT_NE(std::find(diverged.begin(), diverged.end(), 0),
            diverged.end());
  EXPECT_EQ(std::find(diverged.begin(), diverged.end(), 1),
            diverged.end());
  EXPECT_EQ(std::find(diverged.begin(), diverged.end(), 2),
            diverged.end());
  // The prognosis d19 is affected.
  EXPECT_NE(std::find(diverged.begin(), diverged.end(), 19),
            diverged.end());
  // Divergence starts at the inputs, so the first divergent *process*
  // is -1 and the blast radius covers all 15 activations.
  EXPECT_EQ(diff.value().first_divergent_process, -1);
  EXPECT_EQ(diff.value().affected_processes.size(), 15u);
}

TEST_F(DiffTest, ChangedModuleLocalizesFault) {
  // Simulate a buggy new version of M14 (Summarize Articles).
  Execution a = Run(DiseaseInputs());
  FunctionRegistry patched = BuildDiseaseFunctions();
  patched.Register("M14", [](const ValueMap&,
                             const std::vector<std::string>&) {
    return ValueMap{{"summary", "BUGGY"}};
  });
  auto b = Execute(*spec_, patched, DiseaseInputs());
  ASSERT_TRUE(b.ok());
  auto diff = DiffExecutions(a, b.value());
  ASSERT_TRUE(diff.ok());
  // First divergence is exactly M14's activation, S12.
  EXPECT_EQ(diff.value().first_divergent_process, 12);
  // Affected: S12 (M14), S15 (M15), and the enclosing composite S8 (M2)
  // whose end node forwards the corrupted prognosis.
  EXPECT_EQ(diff.value().affected_processes,
            (std::vector<int>{8, 12, 15}));
  // The divergent items are d16 (summary) and d19 (prognosis).
  std::vector<int32_t> diverged;
  for (const auto& d : diff.value().divergences) {
    diverged.push_back(d.item.value());
  }
  EXPECT_EQ(diverged, (std::vector<int32_t>{16, 19}));
}

TEST_F(DiffTest, DivergenceRecordsBothValues) {
  Execution a = Run(DiseaseInputs());
  ValueMap inputs = DiseaseInputs();
  inputs["SNPs"] = "rsX";
  Execution b = Run(inputs);
  auto diff = DiffExecutions(a, b);
  ASSERT_TRUE(diff.ok());
  const ItemDivergence& d0 = diff.value().divergences.front();
  EXPECT_EQ(d0.item.value(), 0);
  EXPECT_EQ(d0.label, "SNPs");
  EXPECT_EQ(d0.value_a, "rs429358,rs7412");
  EXPECT_EQ(d0.value_b, "rsX");
}

TEST_F(DiffTest, RejectsForeignExecutions) {
  Execution a = Run(DiseaseInputs());
  auto other_spec = BuildDiseaseSpec();
  ASSERT_TRUE(other_spec.ok());
  auto b = Execute(other_spec.value(), fns_, DiseaseInputs());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(DiffExecutions(a, b.value()).ok());
}

}  // namespace
}  // namespace paw

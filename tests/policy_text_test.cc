// Tests for the policy text serializer, including seeded-random
// round-trip properties over hostile label strings (quotes,
// backslashes, '=', empty).

#include "src/privacy/policy_text.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/repo/disease.h"
#include "src/workflow/spec.h"

namespace paw {
namespace {

TEST(PolicyTextTest, EmptyPolicySerializesEmpty) {
  EXPECT_EQ(SerializePolicy(PolicySet{}), "");
}

TEST(PolicyTextTest, ParseEmptyYieldsDefaults) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto policy = ParsePolicy("", spec.value());
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value().data.default_level, 0);
  EXPECT_TRUE(policy.value().data.label_level.empty());
  EXPECT_TRUE(policy.value().module_reqs.empty());
  EXPECT_TRUE(policy.value().structural_reqs.empty());
}

TEST(PolicyTextTest, DiseasePolicyRoundTripIsExact) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  PolicySet policy = DiseasePolicy();
  const std::string text = SerializePolicy(policy);
  auto parsed = ParsePolicy(text, spec.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializePolicy(parsed.value()), text);
}

TEST(PolicyTextTest, FullPolicyRoundTrip) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  PolicySet policy;
  policy.data.default_level = 1;
  policy.data.label_level["label with spaces"] = 3;
  policy.data.label_level["SNPs"] = 2;
  policy.module_reqs.push_back({"M1", 4, 2});
  policy.structural_reqs.push_back({"M3", "M5", 1});
  const std::string text = SerializePolicy(policy);
  auto parsed = ParsePolicy(text, spec.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const PolicySet& p = parsed.value();
  EXPECT_EQ(p.data.default_level, 1);
  EXPECT_EQ(p.data.LevelOf("label with spaces"), 3);
  EXPECT_EQ(p.data.LevelOf("SNPs"), 2);
  ASSERT_EQ(p.module_reqs.size(), 1u);
  EXPECT_EQ(p.module_reqs[0].module_code, "M1");
  EXPECT_EQ(p.module_reqs[0].gamma, 4);
  EXPECT_EQ(p.module_reqs[0].required_level, 2);
  ASSERT_EQ(p.structural_reqs.size(), 1u);
  EXPECT_EQ(p.structural_reqs[0].src_code, "M3");
  EXPECT_EQ(p.structural_reqs[0].dst_code, "M5");
  EXPECT_EQ(SerializePolicy(p), text);
}

TEST(PolicyTextTest, RejectsUnknownModule) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto parsed = ParsePolicy("module M404 gamma=2 level=1\n", spec.value());
  EXPECT_FALSE(parsed.ok());
}

TEST(PolicyTextTest, RejectsMalformedLine) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(ParsePolicy("frobnicate all", spec.value()).ok());
  EXPECT_FALSE(ParsePolicy("module M1", spec.value()).ok());
}

TEST(PolicyTextTest, HostileLabelsRoundTrip) {
  // The quoting layer must carry every printable oddity: embedded and
  // edge double quotes, backslashes, '=', '#', and the empty string.
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  PolicySet policy;
  for (const std::string& label :
       {std::string(""), std::string("\"quoted\""), std::string("a=b=c"),
        std::string("back\\slash"), std::string("  padded  "),
        std::string("# not a comment"), std::string("mix \\\" of both")}) {
    policy.data.label_level[label] = 2;
  }
  const std::string text = SerializePolicy(policy);
  auto parsed = ParsePolicy(text, spec.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().data.label_level, policy.data.label_level);
  EXPECT_EQ(SerializePolicy(parsed.value()), text);
}

/// Random label built from an alphabet weighted toward the characters
/// the field syntax treats specially.
std::string RandomLabel(Rng* rng) {
  static constexpr char kAlphabet[] = "ab \"\\=#xyz";
  const size_t len = static_cast<size_t>(rng->Uniform(12));
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

// Property: any policy whose labels are drawn from the hostile
// alphabet and whose module/structural requirements reference real
// modules serializes to text that parses back to the same policy, and
// re-serializes to identical bytes.
TEST(PolicyTextFuzzTest, RandomPoliciesRoundTripExactly) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  // Codes of modules that module-privacy requirements may target
  // (atomic or composite, never I/O).
  std::vector<std::string> codes;
  for (const Module& m : spec.value().modules()) {
    if (m.kind == ModuleKind::kAtomic || m.kind == ModuleKind::kComposite) {
      codes.push_back(m.code);
    }
  }
  ASSERT_GE(codes.size(), 2u);

  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    PolicySet policy;
    policy.data.default_level = static_cast<int>(rng.Uniform(4));
    const int labels = static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < labels; ++i) {
      policy.data.label_level[RandomLabel(&rng)] =
          static_cast<int>(rng.Uniform(5));
    }
    const int mods = static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < mods; ++i) {
      ModulePrivacyRequirement r;
      r.module_code = codes[rng.Uniform(codes.size())];
      r.gamma = static_cast<int64_t>(rng.UniformInt(2, 64));
      r.required_level = static_cast<int>(rng.Uniform(4));
      policy.module_reqs.push_back(std::move(r));
    }
    const int structs = static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < structs; ++i) {
      StructuralPrivacyRequirement r;
      r.src_code = codes[rng.Uniform(codes.size())];
      do {
        r.dst_code = codes[rng.Uniform(codes.size())];
      } while (r.dst_code == r.src_code);
      r.required_level = static_cast<int>(rng.Uniform(4));
      policy.structural_reqs.push_back(std::move(r));
    }

    const std::string text = SerializePolicy(policy);
    auto parsed = ParsePolicy(text, spec.value());
    ASSERT_TRUE(parsed.ok())
        << "seed=" << seed << ": " << parsed.status().ToString()
        << "\ntext:\n" << text;
    EXPECT_EQ(parsed.value().data.default_level, policy.data.default_level)
        << "seed=" << seed;
    EXPECT_EQ(parsed.value().data.label_level, policy.data.label_level)
        << "seed=" << seed;
    EXPECT_EQ(parsed.value().module_reqs.size(), policy.module_reqs.size());
    EXPECT_EQ(SerializePolicy(parsed.value()), text) << "seed=" << seed;
  }
}

TEST(PolicyTextTest, AcceptsCommentsAndBlankLines) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto parsed = ParsePolicy("# a comment\n\nlabel \"x\" level=1\n",
                            spec.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().data.LevelOf("x"), 1);
}

}  // namespace
}  // namespace paw

// Tests for the policy text serializer.

#include "src/privacy/policy_text.h"

#include <gtest/gtest.h>

#include "src/repo/disease.h"

namespace paw {
namespace {

TEST(PolicyTextTest, EmptyPolicySerializesEmpty) {
  EXPECT_EQ(SerializePolicy(PolicySet{}), "");
}

TEST(PolicyTextTest, ParseEmptyYieldsDefaults) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto policy = ParsePolicy("", spec.value());
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value().data.default_level, 0);
  EXPECT_TRUE(policy.value().data.label_level.empty());
  EXPECT_TRUE(policy.value().module_reqs.empty());
  EXPECT_TRUE(policy.value().structural_reqs.empty());
}

TEST(PolicyTextTest, DiseasePolicyRoundTripIsExact) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  PolicySet policy = DiseasePolicy();
  const std::string text = SerializePolicy(policy);
  auto parsed = ParsePolicy(text, spec.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializePolicy(parsed.value()), text);
}

TEST(PolicyTextTest, FullPolicyRoundTrip) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  PolicySet policy;
  policy.data.default_level = 1;
  policy.data.label_level["label with spaces"] = 3;
  policy.data.label_level["SNPs"] = 2;
  policy.module_reqs.push_back({"M1", 4, 2});
  policy.structural_reqs.push_back({"M3", "M5", 1});
  const std::string text = SerializePolicy(policy);
  auto parsed = ParsePolicy(text, spec.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const PolicySet& p = parsed.value();
  EXPECT_EQ(p.data.default_level, 1);
  EXPECT_EQ(p.data.LevelOf("label with spaces"), 3);
  EXPECT_EQ(p.data.LevelOf("SNPs"), 2);
  ASSERT_EQ(p.module_reqs.size(), 1u);
  EXPECT_EQ(p.module_reqs[0].module_code, "M1");
  EXPECT_EQ(p.module_reqs[0].gamma, 4);
  EXPECT_EQ(p.module_reqs[0].required_level, 2);
  ASSERT_EQ(p.structural_reqs.size(), 1u);
  EXPECT_EQ(p.structural_reqs[0].src_code, "M3");
  EXPECT_EQ(p.structural_reqs[0].dst_code, "M5");
  EXPECT_EQ(SerializePolicy(p), text);
}

TEST(PolicyTextTest, RejectsUnknownModule) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto parsed = ParsePolicy("module M404 gamma=2 level=1\n", spec.value());
  EXPECT_FALSE(parsed.ok());
}

TEST(PolicyTextTest, RejectsMalformedLine) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(ParsePolicy("frobnicate all", spec.value()).ok());
  EXPECT_FALSE(ParsePolicy("module M1", spec.value()).ok());
}

TEST(PolicyTextTest, AcceptsCommentsAndBlankLines) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto parsed = ParsePolicy("# a comment\n\nlabel \"x\" level=1\n",
                            spec.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().data.LevelOf("x"), 1);
}

}  // namespace
}  // namespace paw

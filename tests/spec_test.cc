// Tests for specification construction and validation.

#include "src/workflow/spec.h"

#include <gtest/gtest.h>

#include "src/workflow/builder.h"
#include "src/workflow/validate.h"

namespace paw {
namespace {

Result<Specification> TinySpec() {
  SpecBuilder b("tiny");
  WorkflowId w = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w);
  ModuleId m = b.AddModule(w, "M1", "Align Reads");
  ModuleId o = b.AddOutput(w);
  EXPECT_TRUE(b.Connect(i, m, {"reads"}).ok());
  EXPECT_TRUE(b.Connect(m, o, {"alignment"}).ok());
  return std::move(b).Build();
}

TEST(SpecTest, TinySpecBuilds) {
  auto spec = TinySpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().name(), "tiny");
  EXPECT_EQ(spec.value().num_workflows(), 1);
  EXPECT_EQ(spec.value().num_modules(), 3);
}

TEST(SpecTest, FindByCode) {
  auto spec = TinySpec();
  ASSERT_TRUE(spec.ok());
  auto m = spec.value().FindModule("M1");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(spec.value().module(m.value()).name, "Align Reads");
  EXPECT_TRUE(spec.value().FindModule("M99").status().IsNotFound());
  EXPECT_TRUE(spec.value().FindWorkflow("W1").ok());
  EXPECT_TRUE(spec.value().FindWorkflow("W9").status().IsNotFound());
}

TEST(SpecTest, KeywordsDefaultToNameTokens) {
  auto spec = TinySpec();
  ASSERT_TRUE(spec.ok());
  ModuleId m = spec.value().FindModule("M1").value();
  EXPECT_EQ(spec.value().module(m).keywords,
            (std::vector<std::string>{"align", "reads"}));
}

TEST(SpecTest, InOutEdges) {
  auto spec = TinySpec();
  ASSERT_TRUE(spec.ok());
  ModuleId m = spec.value().FindModule("M1").value();
  auto in = spec.value().InEdges(m);
  auto out = spec.value().OutEdges(m);
  ASSERT_EQ(in.size(), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(in[0]->labels, (std::vector<std::string>{"reads"}));
  EXPECT_EQ(out[0]->labels, (std::vector<std::string>{"alignment"}));
}

TEST(SpecTest, EntryExitModules) {
  auto spec = TinySpec();
  ASSERT_TRUE(spec.ok());
  WorkflowId w = spec.value().root();
  auto entries = spec.value().EntryModules(w);
  auto exits = spec.value().ExitModules(w);
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(spec.value().module(entries[0]).kind, ModuleKind::kInput);
  EXPECT_EQ(spec.value().module(exits[0]).kind, ModuleKind::kOutput);
}

TEST(SpecTest, LocalGraphMirrorsEdges) {
  auto spec = TinySpec();
  ASSERT_TRUE(spec.ok());
  auto local = spec.value().BuildLocalGraph(spec.value().root());
  EXPECT_EQ(local.graph.num_nodes(), 3);
  EXPECT_EQ(local.graph.num_edges(), 2);
}

TEST(SpecValidationTest, RejectsCycle) {
  SpecBuilder b("cyclic");
  WorkflowId w = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w);
  ModuleId m1 = b.AddModule(w, "M1", "a");
  ModuleId m2 = b.AddModule(w, "M2", "b");
  ModuleId o = b.AddOutput(w);
  EXPECT_TRUE(b.Connect(i, m1, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m1, m2, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m2, m1, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m2, o, {"x"}).ok());
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
  EXPECT_TRUE(spec.status().IsFailedPrecondition());
}

TEST(SpecValidationTest, RejectsMissingIO) {
  SpecBuilder b("noio");
  WorkflowId w = b.AddWorkflow("W1", "top");
  b.AddModule(w, "M1", "a");
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
}

TEST(SpecValidationTest, RejectsIOInSubworkflow) {
  SpecBuilder b("io-sub");
  WorkflowId w1 = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w1);
  ModuleId m = b.AddModule(w1, "M1", "comp");
  ModuleId o = b.AddOutput(w1);
  EXPECT_TRUE(b.Connect(i, m, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m, o, {"y"}).ok());
  WorkflowId w2 = b.AddWorkflow("W2", "sub");
  EXPECT_TRUE(b.MakeComposite(m, w2).ok());
  b.AddInput(w2, "I2");
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
}

TEST(SpecValidationTest, RejectsDetachedWorkflow) {
  SpecBuilder b("detached");
  WorkflowId w1 = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w1);
  ModuleId m = b.AddModule(w1, "M1", "a");
  ModuleId o = b.AddOutput(w1);
  EXPECT_TRUE(b.Connect(i, m, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m, o, {"y"}).ok());
  WorkflowId w2 = b.AddWorkflow("W2", "orphan");
  b.AddModule(w2, "M2", "b");
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
}

TEST(SpecValidationTest, RejectsSharedExpansion) {
  SpecBuilder b("shared");
  WorkflowId w1 = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w1);
  ModuleId m1 = b.AddModule(w1, "M1", "a");
  ModuleId m2 = b.AddModule(w1, "M2", "b");
  ModuleId o = b.AddOutput(w1);
  EXPECT_TRUE(b.Connect(i, m1, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m1, m2, {"y"}).ok());
  EXPECT_TRUE(b.Connect(m2, o, {"z"}).ok());
  WorkflowId w2 = b.AddWorkflow("W2", "sub");
  b.AddModule(w2, "M3", "c");
  EXPECT_TRUE(b.MakeComposite(m1, w2).ok());
  EXPECT_TRUE(b.MakeComposite(m2, w2).ok());  // same expansion twice
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
}

TEST(SpecValidationTest, RejectsEdgeAcrossWorkflows) {
  SpecBuilder b("cross");
  WorkflowId w1 = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w1);
  ModuleId m1 = b.AddModule(w1, "M1", "a");
  ModuleId o = b.AddOutput(w1);
  EXPECT_TRUE(b.Connect(i, m1, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m1, o, {"y"}).ok());
  WorkflowId w2 = b.AddWorkflow("W2", "sub");
  ModuleId m2 = b.AddModule(w2, "M2", "b");
  EXPECT_TRUE(b.MakeComposite(m1, w2).ok());
  EXPECT_TRUE(b.Connect(m1, m2, {"z"}).IsInvalidArgument());
}

TEST(SpecValidationTest, RejectsUnlabelledEdge) {
  SpecBuilder b("nolabel");
  WorkflowId w = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w);
  ModuleId m = b.AddModule(w, "M1", "a");
  EXPECT_TRUE(b.Connect(i, m, {}).IsInvalidArgument());
}

TEST(SpecValidationTest, RejectsDuplicateCodes) {
  SpecBuilder b("dup");
  WorkflowId w = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w);
  ModuleId m1 = b.AddModule(w, "M1", "a");
  b.AddModule(w, "M1", "b");  // duplicate code
  ModuleId o = b.AddOutput(w);
  EXPECT_TRUE(b.Connect(i, m1, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m1, o, {"y"}).ok());
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
}

TEST(SpecValidationTest, RejectsEdgeIntoInput) {
  SpecBuilder b("into-input");
  WorkflowId w = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w);
  ModuleId m = b.AddModule(w, "M1", "a");
  ModuleId o = b.AddOutput(w);
  EXPECT_TRUE(b.Connect(i, m, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m, o, {"y"}).ok());
  EXPECT_TRUE(b.Connect(m, i, {"z"}).ok());  // builder allows; validate rejects
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
}

TEST(SpecValidationTest, RootLevelMustBeZero) {
  SpecBuilder b("lvl");
  WorkflowId w = b.AddWorkflow("W1", "top", /*required_level=*/2);
  ModuleId i = b.AddInput(w);
  ModuleId o = b.AddOutput(w);
  EXPECT_TRUE(b.Connect(i, o, {"x"}).ok());
  auto spec = std::move(b).Build();
  EXPECT_FALSE(spec.ok());
}

}  // namespace
}  // namespace paw

// Tests for structural pattern matching over views and executions.

#include "src/query/structural_query.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/repo/disease.h"

namespace paw {
namespace {

class StructuralQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<Specification>(std::move(spec).value());
    h_ = ExpansionHierarchy::Build(*spec_);
    auto exec = RunDiseaseExecution(*spec_);
    ASSERT_TRUE(exec.ok());
    exec_ = std::make_unique<Execution>(std::move(exec).value());
  }

  std::unique_ptr<Specification> spec_;
  ExpansionHierarchy h_;
  std::unique_ptr<Execution> exec_;
};

TEST_F(StructuralQueryTest, PaperQueryExpandSnpBeforeQueryOmim) {
  // "find executions where Expand SNP Set was executed before Query OMIM"
  StructuralPattern pattern;
  pattern.vars = {{"expand snp"}, {"query omim"}};
  pattern.edges = {{0, 1, /*transitive=*/true}};
  auto matches = MatchExecution(*exec_, pattern);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches.value().size(), 1u);
  const ExecutionMatch& m = matches.value()[0];
  EXPECT_EQ(exec_->NodeLabel(m.binding[0]), "S2:M3");
  EXPECT_EQ(exec_->NodeLabel(m.binding[1]), "S5:M6");
}

TEST_F(StructuralQueryTest, NoMatchWhenOrderReversed) {
  StructuralPattern pattern;
  pattern.vars = {{"query omim"}, {"expand snp"}};
  pattern.edges = {{0, 1, true}};
  auto matches = MatchExecution(*exec_, pattern);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches.value().empty());
}

TEST_F(StructuralQueryTest, DirectEdgeVsTransitive) {
  auto view = FullExpansion(*spec_, h_);
  ASSERT_TRUE(view.ok());
  // M3 -> M5 is a direct edge in the full expansion.
  StructuralPattern direct;
  direct.vars = {{"expand snp"}, {"generate database queries"}};
  direct.edges = {{0, 1, /*transitive=*/false}};
  auto m1 = MatchPattern(view.value(), direct);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1.value().size(), 1u);
  // M3 -> M8 only transitively.
  StructuralPattern indirect;
  indirect.vars = {{"expand snp"}, {"combine disorder"}};
  indirect.edges = {{0, 1, false}};
  auto m2 = MatchPattern(view.value(), indirect);
  ASSERT_TRUE(m2.ok());
  EXPECT_TRUE(m2.value().empty());
  indirect.edges = {{0, 1, true}};
  auto m3 = MatchPattern(view.value(), indirect);
  ASSERT_TRUE(m3.ok());
  EXPECT_EQ(m3.value().size(), 1u);
}

TEST_F(StructuralQueryTest, EmptyTermMatchesEverything) {
  auto view = ExpandPrefix(*spec_, h_, h_.RootPrefix());
  ASSERT_TRUE(view.ok());
  StructuralPattern pattern;
  pattern.vars = {{""}};
  auto matches = MatchPattern(view.value(), pattern);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().size(), 4u);  // I, M1, M2, O
}

TEST_F(StructuralQueryTest, ThreeVariableChain) {
  auto view = FullExpansion(*spec_, h_);
  ASSERT_TRUE(view.ok());
  // "generate queries" matches both M5 (Generate Database Queries) and
  // M12 (Generate Queries); both reach M13 in the full expansion.
  StructuralPattern pattern;
  pattern.vars = {{"generate queries"}, {"search pubmed central"},
                  {"summarize"}};
  pattern.edges = {{0, 1, true}, {1, 2, true}};
  auto matches = MatchPattern(view.value(), pattern);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches.value().size(), 2u);
  std::vector<std::string> firsts;
  for (const PatternMatch& m : matches.value()) {
    firsts.push_back(spec_->module(m.binding[0]).code);
    EXPECT_EQ(spec_->module(m.binding[1]).code, "M13");
    EXPECT_EQ(spec_->module(m.binding[2]).code, "M14");
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(firsts, (std::vector<std::string>{"M12", "M5"}));
}

TEST_F(StructuralQueryTest, DistinctBindingEnforced) {
  auto view = FullExpansion(*spec_, h_);
  ASSERT_TRUE(view.ok());
  // Both variables match "query pubmed" modules (M7, M13); without an
  // edge constraint we get ordered pairs of *distinct* nodes.
  StructuralPattern pattern;
  pattern.vars = {{"pubmed"}, {"pubmed"}};
  auto matches = MatchPattern(view.value(), pattern);
  ASSERT_TRUE(matches.ok());
  // M7 "Query PubMed" and M13 "Search PubMed Central": 2 ordered pairs.
  EXPECT_EQ(matches.value().size(), 2u);
  for (const PatternMatch& m : matches.value()) {
    EXPECT_NE(m.binding[0], m.binding[1]);
  }
}

TEST_F(StructuralQueryTest, PatternValidation) {
  auto view = FullExpansion(*spec_, h_);
  ASSERT_TRUE(view.ok());
  StructuralPattern empty;
  EXPECT_FALSE(MatchPattern(view.value(), empty).ok());
  StructuralPattern bad_edge;
  bad_edge.vars = {{"a"}};
  bad_edge.edges = {{0, 5, true}};
  EXPECT_FALSE(MatchPattern(view.value(), bad_edge).ok());
  StructuralPattern self_edge;
  self_edge.vars = {{"a"}};
  self_edge.edges = {{0, 0, true}};
  EXPECT_FALSE(MatchPattern(view.value(), self_edge).ok());
}

TEST_F(StructuralQueryTest, ExecutionMatchSeesCompositeActivations) {
  // The composite M1 is an activation (begin node) and can be matched.
  StructuralPattern pattern;
  pattern.vars = {{"determine genetic"}, {"evaluate disorder"}};
  pattern.edges = {{0, 1, true}};
  auto matches = MatchExecution(*exec_, pattern);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches.value().size(), 1u);
  EXPECT_EQ(exec_->NodeLabel(matches.value()[0].binding[0]),
            "S1:M1 begin");
}

}  // namespace
}  // namespace paw

// Tests for policy validation and the access-control registry.

#include "src/privacy/policy.h"

#include <gtest/gtest.h>

#include "src/privacy/access_control.h"
#include "src/repo/disease.h"

namespace paw {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_ = std::move(spec).value();
  }
  Specification spec_;
};

TEST_F(PolicyTest, DiseasePolicyIsValid) {
  EXPECT_TRUE(ValidatePolicy(spec_, DiseasePolicy()).ok());
}

TEST_F(PolicyTest, EmptyPolicyIsValid) {
  EXPECT_TRUE(ValidatePolicy(spec_, PolicySet{}).ok());
}

TEST_F(PolicyTest, RejectsGammaBelowTwo) {
  PolicySet p;
  p.module_reqs.push_back({"M1", /*gamma=*/1, /*required_level=*/1});
  EXPECT_FALSE(ValidatePolicy(spec_, p).ok());
}

TEST_F(PolicyTest, RejectsUnknownModule) {
  PolicySet p;
  p.module_reqs.push_back({"M99", 2, 1});
  EXPECT_TRUE(ValidatePolicy(spec_, p).IsNotFound());
}

TEST_F(PolicyTest, RejectsModulePrivacyOnIO) {
  PolicySet p;
  p.module_reqs.push_back({"I", 2, 1});
  EXPECT_FALSE(ValidatePolicy(spec_, p).ok());
}

TEST_F(PolicyTest, RejectsDegenerateStructuralPair) {
  PolicySet p;
  p.structural_reqs.push_back({"M13", "M13", 1});
  EXPECT_FALSE(ValidatePolicy(spec_, p).ok());
}

TEST_F(PolicyTest, RejectsNegativeLevels) {
  PolicySet p;
  p.data.label_level["x"] = -1;
  EXPECT_FALSE(ValidatePolicy(spec_, p).ok());
  PolicySet q;
  q.data.default_level = -2;
  EXPECT_FALSE(ValidatePolicy(spec_, q).ok());
}

TEST_F(PolicyTest, DataPolicyLevelLookup) {
  DataPolicy d;
  d.label_level["SNPs"] = 2;
  d.default_level = 1;
  EXPECT_EQ(d.LevelOf("SNPs"), 2);
  EXPECT_EQ(d.LevelOf("unlisted"), 1);
}

TEST(AccessControlTest, RegisterAndFind) {
  AccessControl acl;
  auto alice = acl.AddPrincipal("alice", 2, "lab-a");
  ASSERT_TRUE(alice.ok());
  auto bob = acl.AddPrincipal("bob", 0, "public");
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(acl.size(), 2);
  EXPECT_EQ(acl.Get(alice.value()).value().level, 2);
  EXPECT_EQ(acl.Find("bob").value().group, "public");
  EXPECT_TRUE(acl.Find("carol").status().IsNotFound());
  EXPECT_TRUE(acl.Get(PrincipalId(99)).status().IsNotFound());
}

TEST(AccessControlTest, RejectsDuplicatesAndNegativeLevels) {
  AccessControl acl;
  ASSERT_TRUE(acl.AddPrincipal("alice", 1).ok());
  EXPECT_TRUE(acl.AddPrincipal("alice", 2).status().IsAlreadyExists());
  EXPECT_TRUE(acl.AddPrincipal("eve", -1).status().IsInvalidArgument());
}

TEST(AccessControlTest, AccessViewMatchesLevels) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  AccessControl acl;
  PrincipalId pub = acl.AddPrincipal("public-user", 0).value();
  PrincipalId analyst = acl.AddPrincipal("analyst", 1).value();
  PrincipalId owner = acl.AddPrincipal("owner", 2).value();

  auto w = [&](const std::string& code) {
    return spec.value().FindWorkflow(code).value();
  };
  EXPECT_EQ(acl.AccessViewFor(pub, spec.value(), h).value(),
            (Prefix{w("W1")}));
  EXPECT_EQ(acl.AccessViewFor(analyst, spec.value(), h).value(),
            (Prefix{w("W1"), w("W2"), w("W3")}));
  EXPECT_EQ(acl.AccessViewFor(owner, spec.value(), h).value(),
            h.FullPrefix());
}

}  // namespace
}  // namespace paw

// Tests for zoom-out evaluation (level and structural coarsening).

#include "src/query/zoom_out.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/repo/disease.h"

namespace paw {
namespace {

class ZoomOutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<Specification>(std::move(spec).value());
    h_ = ExpansionHierarchy::Build(*spec_);
    auto exec = RunDiseaseExecution(*spec_);
    ASSERT_TRUE(exec.ok());
    exec_ = std::make_unique<Execution>(std::move(exec).value());
    policy_ = DiseasePolicy();
  }

  WorkflowId W(const std::string& code) {
    return spec_->FindWorkflow(code).value();
  }
  ModuleId M(const std::string& code) {
    return spec_->FindModule(code).value();
  }

  std::unique_ptr<Specification> spec_;
  ExpansionHierarchy h_;
  std::unique_ptr<Execution> exec_;
  PolicySet policy_;
};

TEST_F(ZoomOutTest, LevelZoomOutRemovesForbiddenWorkflows) {
  // A full-expansion answer handed to a level-1 observer must zoom out W4.
  auto result = ZoomOutToLevel(*spec_, h_, h_.FullPrefix(), /*level=*/1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().final_prefix,
            (Prefix{W("W1"), W("W2"), W("W3")}));
  EXPECT_EQ(result.value().steps, 1);
  // M4 shows as a collapsed box in the final view.
  EXPECT_TRUE(result.value().view.IndexOf(M("M4")).ok());
  EXPECT_FALSE(result.value().view.IndexOf(M("M5")).ok());
}

TEST_F(ZoomOutTest, LevelZeroCollapsesToRoot) {
  auto result = ZoomOutToLevel(*spec_, h_, h_.FullPrefix(), /*level=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().final_prefix, h_.RootPrefix());
  EXPECT_EQ(result.value().steps, 3);  // W4, then W2, then W3 (or W3 first)
}

TEST_F(ZoomOutTest, CompliantPrefixUntouched) {
  auto result = ZoomOutToLevel(*spec_, h_, {W("W1")}, /*level=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().steps, 0);
  EXPECT_EQ(result.value().final_prefix, h_.RootPrefix());
}

TEST_F(ZoomOutTest, StructuralFactVisibleAtFullView) {
  auto view = CollapseExecution(*exec_, h_, h_.FullPrefix());
  ASSERT_TRUE(view.ok());
  auto visible = StructuralFactVisible(view.value(), M("M13"), M("M11"));
  ASSERT_TRUE(visible.ok());
  EXPECT_TRUE(visible.value());
}

TEST_F(ZoomOutTest, StructuralFactHiddenAtRootView) {
  auto view = CollapseExecution(*exec_, h_, h_.RootPrefix());
  ASSERT_TRUE(view.ok());
  // M13 and M11 both collapse inside S8:M2 -> the fact is invisible.
  auto visible = StructuralFactVisible(view.value(), M("M13"), M("M11"));
  ASSERT_TRUE(visible.ok());
  EXPECT_FALSE(visible.value());
}

TEST_F(ZoomOutTest, ZoomOutExecutionEnforcesPolicyAtLevel1) {
  // Level-1 observers may expand W3, which would reveal M13 ~> M11; the
  // structural requirement (required_level 2) forces a zoom-out of W3.
  auto result = ZoomOutExecution(*exec_, h_, policy_, /*level=*/1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().steps, 0);
  EXPECT_FALSE(result.value().final_prefix.count(W("W3")));
  auto visible =
      StructuralFactVisible(result.value().view, M("M13"), M("M11"));
  ASSERT_TRUE(visible.ok());
  EXPECT_FALSE(visible.value());
}

TEST_F(ZoomOutTest, ClearedObserverSeesEverything) {
  auto result = ZoomOutExecution(*exec_, h_, policy_, /*level=*/2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().steps, 0);
  EXPECT_EQ(result.value().final_prefix, h_.FullPrefix());
}

TEST_F(ZoomOutTest, Level0AlreadyCompliant) {
  auto result = ZoomOutExecution(*exec_, h_, policy_, /*level=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().steps, 0);
  EXPECT_EQ(result.value().final_prefix, h_.RootPrefix());
}

TEST_F(ZoomOutTest, RootLevelStructuralLeakIsDenied) {
  // A sensitive pair at the root level (M1 ~> M2) cannot be hidden by
  // zooming: the engine reports PermissionDenied so callers fall back to
  // edge deletion.
  PolicySet p;
  p.structural_reqs.push_back({"M1", "M2", /*required_level=*/5});
  auto result = ZoomOutExecution(*exec_, h_, p, /*level=*/0);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsPermissionDenied());
}

TEST_F(ZoomOutTest, InvalidPrefixRejected) {
  EXPECT_FALSE(ZoomOutToLevel(*spec_, h_, {W("W2")}, 1).ok());
}

}  // namespace
}  // namespace paw

// Store-directory lock tests: acquisition, conflict, probe, release
// on destruction/move, and the integration with both store layouts
// (a second live read-write open must fail cleanly).

#include "src/store/lock_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>

#include "src/common/file_io.h"
#include "src/store/persistent_repository.h"
#include "src/store/sharded_repository.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_lock_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(StoreLockTest, AcquireCreatesLockFileAndExcludesSecondAcquire) {
  const std::string dir = TestDir("basic");
  auto lock = StoreDirLock::Acquire(dir);
  ASSERT_TRUE(lock.ok()) << lock.status().ToString();
  EXPECT_TRUE(lock.value().held());
  EXPECT_TRUE(PathExists(dir + "/" + kStoreLockFileName));

  // flock conflicts apply per open file description, so even within
  // one process a second Acquire must fail — exactly what a second
  // store handle would do.
  auto second = StoreDirLock::Acquire(dir);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsFailedPrecondition());
  EXPECT_NE(second.status().message().find("pid"), std::string::npos);
}

TEST(StoreLockTest, ReleaseAndDestructionFreeTheLock) {
  const std::string dir = TestDir("release");
  {
    auto lock = StoreDirLock::Acquire(dir);
    ASSERT_TRUE(lock.ok());
  }  // destroyed
  auto again = StoreDirLock::Acquire(dir);
  ASSERT_TRUE(again.ok());
  again.value().Release();
  EXPECT_FALSE(again.value().held());
  auto third = StoreDirLock::Acquire(dir);
  EXPECT_TRUE(third.ok());
}

TEST(StoreLockTest, MoveTransfersOwnership) {
  const std::string dir = TestDir("move");
  auto lock = StoreDirLock::Acquire(dir);
  ASSERT_TRUE(lock.ok());
  StoreDirLock moved = std::move(lock).value();
  EXPECT_TRUE(moved.held());
  EXPECT_FALSE(StoreDirLock::Acquire(dir).ok());
  moved.Release();
  EXPECT_TRUE(StoreDirLock::Acquire(dir).ok());
}

TEST(StoreLockTest, ProbeReportsHolderWithoutTakingTheLock) {
  const std::string dir = TestDir("probe");
  // No lock file yet: not held.
  auto probe = StoreDirLock::Probe(dir);
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe.value().held);

  auto lock = StoreDirLock::Acquire(dir);
  ASSERT_TRUE(lock.ok());
  probe = StoreDirLock::Probe(dir);
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe.value().held);
  EXPECT_GT(probe.value().holder_pid, 0);

  // Probing did not steal or break the lock.
  EXPECT_FALSE(StoreDirLock::Acquire(dir).ok());
  lock.value().Release();
  probe = StoreDirLock::Probe(dir);
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe.value().held);
}

TEST(StoreLockTest, SecondOpenOfSingleStoreFails) {
  const std::string dir = TestDir("single_store");
  auto store = PersistentRepository::Init(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  auto second = PersistentRepository::Open(dir);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsFailedPrecondition());

  // Releasing the first handle frees the directory.
  { PersistentRepository closed = std::move(store).value(); }
  EXPECT_TRUE(PersistentRepository::Open(dir).ok());
}

TEST(StoreLockTest, SecondOpenOfShardedStoreFailsBeforeEpochBump) {
  const std::string dir = TestDir("sharded_store");
  auto store = ShardedRepository::Init(dir, 2);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const uint64_t epoch_before = store.value().epoch();

  auto second = ShardedRepository::Open(dir);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsFailedPrecondition());
  // The refused open must not have burned an epoch (the lock is taken
  // before the manifest bump).
  auto manifest = ReadShardManifest(dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().epoch, epoch_before);

  { ShardedRepository closed = std::move(store).value(); }
  auto reopened = ShardedRepository::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().epoch(), epoch_before + 1);
}

TEST(StoreLockTest, MovedStoreHandleKeepsTheLock) {
  const std::string dir = TestDir("moved_handle");
  auto store = PersistentRepository::Init(dir);
  ASSERT_TRUE(store.ok());
  PersistentRepository moved = std::move(store).value();
  // The moved-to handle still owns the directory.
  EXPECT_FALSE(PersistentRepository::Open(dir).ok());
  ASSERT_TRUE(moved.Sync().ok());
}

TEST(StoreLockTest, CopiedDirectoryIsNotLocked) {
  // Crash-image workflows copy store directories wholesale; a copied
  // LOCK file carries no kernel lock, so the copy opens fine even
  // while the original is held.
  const std::string dir = TestDir("copy_src");
  const std::string copy = TestDir("copy_dst");
  auto store = PersistentRepository::Init(dir);
  ASSERT_TRUE(store.ok());
  fs::remove_all(copy);
  fs::copy(dir, copy, fs::copy_options::recursive);
  auto opened = PersistentRepository::Open(copy);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
}

}  // namespace
}  // namespace paw

// Tests for the deterministic executor on specs other than the paper's
// (the paper example itself is locked by disease_test).

#include "src/provenance/executor.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/workflow/builder.h"

namespace paw {
namespace {

Result<Specification> LinearSpec() {
  SpecBuilder b("linear");
  WorkflowId w = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w);
  ModuleId a = b.AddModule(w, "A", "first");
  ModuleId c = b.AddModule(w, "C", "second");
  ModuleId o = b.AddOutput(w);
  PAW_RETURN_NOT_OK(b.Connect(i, a, {"x"}));
  PAW_RETURN_NOT_OK(b.Connect(a, c, {"y"}));
  PAW_RETURN_NOT_OK(b.Connect(c, o, {"z"}));
  return std::move(b).Build();
}

TEST(ExecutorTest, LinearRun) {
  auto spec = LinearSpec();
  ASSERT_TRUE(spec.ok());
  FunctionRegistry fns;
  auto exec = Execute(spec.value(), fns, {{"x", "input-value"}});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec.value().num_nodes(), 4);  // I, A, C, O
  EXPECT_EQ(exec.value().num_items(), 3);  // x, y, z
  // Process ids 1, 2 on A, C.
  EXPECT_EQ(exec.value().FindByProcess(1).ok(), true);
  EXPECT_EQ(exec.value().FindByProcess(2).ok(), true);
}

TEST(ExecutorTest, MissingInputRejected) {
  auto spec = LinearSpec();
  ASSERT_TRUE(spec.ok());
  FunctionRegistry fns;
  auto exec = Execute(spec.value(), fns, {});
  EXPECT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsInvalidArgument());
}

TEST(ExecutorTest, RegisteredFunctionIsUsed) {
  auto spec = LinearSpec();
  ASSERT_TRUE(spec.ok());
  FunctionRegistry fns;
  fns.Register("A", [](const ValueMap& in,
                       const std::vector<std::string>& outs) {
    ValueMap result;
    for (const auto& label : outs) {
      result[label] = "A(" + in.at("x") + ")";
    }
    return result;
  });
  auto exec = Execute(spec.value(), fns, {{"x", "v"}});
  ASSERT_TRUE(exec.ok());
  auto y = exec.value().FindItemByLabel("y");
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(exec.value().item(y.value()).value, "A(v)");
}

TEST(ExecutorTest, DefaultFunctionIsDeterministic) {
  auto spec = LinearSpec();
  ASSERT_TRUE(spec.ok());
  FunctionRegistry fns;
  auto e1 = Execute(spec.value(), fns, {{"x", "v"}});
  auto e2 = Execute(spec.value(), fns, {{"x", "v"}});
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  for (int i = 0; i < e1.value().num_items(); ++i) {
    EXPECT_EQ(e1.value().item(DataItemId(i)).value,
              e2.value().item(DataItemId(i)).value);
  }
  auto e3 = Execute(spec.value(), fns, {{"x", "different"}});
  ASSERT_TRUE(e3.ok());
  EXPECT_NE(e1.value().item(DataItemId(1)).value,
            e3.value().item(DataItemId(1)).value);
}

TEST(ExecutorTest, DuplicateLabelInputsConcatenate) {
  // Two edges with the same label into one module (M8-style combine).
  SpecBuilder b("merge");
  WorkflowId w = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w);
  ModuleId a = b.AddModule(w, "A", "left");
  ModuleId c = b.AddModule(w, "C", "right");
  ModuleId m = b.AddModule(w, "M", "merge");
  ModuleId o = b.AddOutput(w);
  ASSERT_TRUE(b.Connect(i, a, {"x"}).ok());
  ASSERT_TRUE(b.Connect(i, c, {"w"}).ok());
  ASSERT_TRUE(b.Connect(a, m, {"common"}).ok());
  ASSERT_TRUE(b.Connect(c, m, {"common"}).ok());
  ASSERT_TRUE(b.Connect(m, o, {"out"}).ok());
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok());
  FunctionRegistry fns;
  fns.Register("A", [](const ValueMap&, const std::vector<std::string>&) {
    return ValueMap{{"common", "left"}};
  });
  fns.Register("C", [](const ValueMap&, const std::vector<std::string>&) {
    return ValueMap{{"common", "right"}};
  });
  fns.Register("M", [](const ValueMap& in,
                       const std::vector<std::string>&) {
    return ValueMap{{"out", in.at("common")}};
  });
  auto exec = Execute(spec.value(), fns, {{"x", "1"}, {"w", "2"}});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto out = exec.value().FindItemByLabel("out");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(exec.value().item(out.value()).value, "left|right");
}

TEST(ExecutorTest, NestedCompositeProcessNumbers) {
  // W1: I -> C1 -> O; C1 expands to W2: A -> C2; C2 expands to W3: B.
  SpecBuilder b("nested");
  WorkflowId w1 = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w1);
  ModuleId c1 = b.AddModule(w1, "C1", "outer composite");
  ModuleId o = b.AddOutput(w1);
  ASSERT_TRUE(b.Connect(i, c1, {"x"}).ok());
  ASSERT_TRUE(b.Connect(c1, o, {"z"}).ok());
  WorkflowId w2 = b.AddWorkflow("W2", "middle");
  ASSERT_TRUE(b.MakeComposite(c1, w2).ok());
  ModuleId a = b.AddModule(w2, "A", "step");
  ModuleId c2 = b.AddModule(w2, "C2", "inner composite");
  ASSERT_TRUE(b.Connect(a, c2, {"y"}).ok());
  WorkflowId w3 = b.AddWorkflow("W3", "inner");
  ASSERT_TRUE(b.MakeComposite(c2, w3).ok());
  b.AddModule(w3, "B", "leaf");
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  FunctionRegistry fns;
  auto exec = Execute(spec.value(), fns, {{"x", "v"}});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  const Execution& e = exec.value();
  // Activation order: C1 (S1), A (S2), C2 (S3), B (S4).
  EXPECT_EQ(e.spec().module(e.node(e.FindByProcess(1).value()).module).code,
            "C1");
  EXPECT_EQ(e.spec().module(e.node(e.FindByProcess(2).value()).module).code,
            "A");
  EXPECT_EQ(e.spec().module(e.node(e.FindByProcess(3).value()).module).code,
            "C2");
  EXPECT_EQ(e.spec().module(e.node(e.FindByProcess(4).value()).module).code,
            "B");
  // Nodes: I, O, A, B atomic + 2 begin/end pairs = 8.
  EXPECT_EQ(e.num_nodes(), 8);
  // Enclosing chain: B's node sits inside C2's activation inside C1's.
  ExecNodeId b_node = e.FindByProcess(4).value();
  ExecNodeId c2_begin = e.FindByProcess(3).value();
  ExecNodeId c1_begin = e.FindByProcess(1).value();
  EXPECT_EQ(e.node(b_node).enclosing, c2_begin);
  EXPECT_EQ(e.node(c2_begin).enclosing, c1_begin);
  EXPECT_FALSE(e.node(c1_begin).enclosing.valid());
}

TEST(ExecutorTest, MultiExitSubworkflowRejectedWhenOutputNeeded) {
  SpecBuilder b("multiexit");
  WorkflowId w1 = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w1);
  ModuleId c = b.AddModule(w1, "C", "composite");
  ModuleId o = b.AddOutput(w1);
  ASSERT_TRUE(b.Connect(i, c, {"x"}).ok());
  ASSERT_TRUE(b.Connect(c, o, {"z"}).ok());
  WorkflowId w2 = b.AddWorkflow("W2", "two exits");
  ASSERT_TRUE(b.MakeComposite(c, w2).ok());
  ModuleId a = b.AddModule(w2, "A", "entry");
  ModuleId e1 = b.AddModule(w2, "E1", "exit one");
  ModuleId e2 = b.AddModule(w2, "E2", "exit two");
  ASSERT_TRUE(b.Connect(a, e1, {"m"}).ok());
  ASSERT_TRUE(b.Connect(a, e2, {"n"}).ok());
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok());
  FunctionRegistry fns;
  auto exec = Execute(spec.value(), fns, {{"x", "v"}});
  EXPECT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsFailedPrecondition());
}

TEST(ExecutorTest, FunctionMissingOutputIsInternalError) {
  auto spec = LinearSpec();
  ASSERT_TRUE(spec.ok());
  FunctionRegistry fns;
  fns.Register("A", [](const ValueMap&, const std::vector<std::string>&) {
    return ValueMap{};  // produces nothing
  });
  auto exec = Execute(spec.value(), fns, {{"x", "v"}});
  EXPECT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsInternal());
}

TEST(ExecutorTest, DefaultFnCoversAllLabels) {
  ValueMap out = FunctionRegistry::DefaultFn("X", {{"a", "1"}},
                                             {"p", "q", "r"});
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out.at("p").size(), 8u);  // short hex digest
}

}  // namespace
}  // namespace paw

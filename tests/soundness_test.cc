// Tests for unsound-view detection and repair (ref [9]).

#include "src/privacy/soundness.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/random.h"
#include "src/privacy/structural_privacy.h"
#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

/// W3 graph + name map (the paper's running example for unsoundness).
struct W3 {
  Digraph graph;
  std::map<std::string, NodeIndex> idx;
  static W3 Build() {
    auto spec = BuildDiseaseSpec();
    EXPECT_TRUE(spec.ok());
    auto local = spec.value().BuildLocalGraph(
        spec.value().FindWorkflow("W3").value());
    W3 f;
    f.graph = local.graph;
    for (const auto& [mid, index] : local.module_to_local) {
      f.idx[spec.value().module(mid).code] = index;
    }
    return f;
  }
};

std::vector<NodeIndex> SingletonGroups(int n) {
  std::vector<NodeIndex> g(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) g[static_cast<size_t>(i)] = i;
  return g;
}

TEST(SoundnessTest, SingletonClusteringIsSound) {
  W3 f = W3::Build();
  auto report = CheckSoundness(f.graph, SingletonGroups(f.graph.num_nodes()),
                               f.graph.num_nodes());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().sound);
  EXPECT_TRUE(report.value().extraneous.empty());
}

TEST(SoundnessTest, PaperClusterM11M13DetectedUnsound) {
  W3 f = W3::Build();
  std::vector<NodeIndex> groups = SingletonGroups(f.graph.num_nodes());
  // Merge M11 and M13 into M11's group; compact group ids.
  groups[size_t(f.idx["M13"])] = groups[size_t(f.idx["M11"])];
  // Renumber to [0, k).
  std::map<NodeIndex, NodeIndex> remap;
  NodeIndex next = 0;
  for (auto& g : groups) {
    auto [it, inserted] = remap.try_emplace(g, next);
    if (inserted) ++next;
    g = it->second;
  }
  auto report = CheckSoundness(f.graph, groups, next);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().sound);
  // The fabricated pair M10 ~> M14 must be among the extraneous ones.
  bool found = false;
  for (const auto& [a, b] : report.value().extraneous) {
    if (a == f.idx["M10"] && b == f.idx["M14"]) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SoundnessTest, RepairRestoresSoundness) {
  W3 f = W3::Build();
  auto clustering =
      HideByClustering(f.graph, {{f.idx["M13"], f.idx["M11"]}});
  ASSERT_TRUE(clustering.ok());
  ASSERT_FALSE(clustering.value().metrics.Sound());
  auto repaired = RepairUnsoundClustering(
      f.graph, clustering.value().group_of, clustering.value().num_groups);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().report.sound);
  EXPECT_GT(repaired.value().splits, 0);
}

TEST(SoundnessTest, RepairOnSoundInputIsNoOp) {
  W3 f = W3::Build();
  auto repaired = RepairUnsoundClustering(
      f.graph, SingletonGroups(f.graph.num_nodes()), f.graph.num_nodes());
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value().splits, 0);
  EXPECT_TRUE(repaired.value().report.sound);
}

TEST(SoundnessTest, ExtraneousPairsMatchEvaluateClustering) {
  W3 f = W3::Build();
  auto clustering =
      HideByClustering(f.graph, {{f.idx["M13"], f.idx["M11"]}});
  ASSERT_TRUE(clustering.ok());
  auto report = CheckSoundness(f.graph, clustering.value().group_of,
                               clustering.value().num_groups);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(static_cast<int64_t>(report.value().extraneous.size()),
            clustering.value().metrics.extraneous_pairs);
}

// Property sweep: repair always terminates sound on random clusterings
// of random DAGs, and never increases extraneous pairs.
class RepairSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairSweep, RepairAlwaysEndsSound) {
  Rng rng(GetParam());
  Digraph g = RandomLayeredDag(&rng, 4, 4, 0.3);
  // Random clustering into ~n/3 groups.
  NodeIndex k = g.num_nodes() / 3 + 1;
  std::vector<NodeIndex> groups(static_cast<size_t>(g.num_nodes()));
  for (auto& grp : groups) grp = static_cast<NodeIndex>(rng.Uniform(k));
  // Make group ids contiguous (some may be unused).
  std::map<NodeIndex, NodeIndex> remap;
  NodeIndex next = 0;
  for (auto& grp : groups) {
    auto [it, inserted] = remap.try_emplace(grp, next);
    if (inserted) ++next;
    grp = it->second;
  }
  auto repaired = RepairUnsoundClustering(g, groups, next);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_TRUE(repaired.value().report.sound);
  // Group count can only grow (splits).
  EXPECT_GE(repaired.value().num_groups, next);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace paw

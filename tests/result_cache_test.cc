// Tests for the group-partitioned LRU result cache.

#include "src/index/result_cache.h"

#include <gtest/gtest.h>

namespace paw {
namespace {

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.Get("g1", "q1").has_value());
  cache.Put("g1", "q1", "answer");
  auto hit = cache.Get("g1", "q1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "answer");
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(ResultCacheTest, GroupsAreIsolated) {
  ResultCache cache(4);
  cache.Put("level0", "q", "public answer");
  cache.Put("level2", "q", "privileged answer");
  EXPECT_EQ(*cache.Get("level0", "q"), "public answer");
  EXPECT_EQ(*cache.Get("level2", "q"), "privileged answer");
  EXPECT_FALSE(cache.Get("level1", "q").has_value());
}

TEST(ResultCacheTest, LruEviction) {
  ResultCache cache(2);
  cache.Put("g", "a", "1");
  cache.Put("g", "b", "2");
  ASSERT_TRUE(cache.Get("g", "a").has_value());  // refresh a
  cache.Put("g", "c", "3");                      // evicts b
  EXPECT_TRUE(cache.Get("g", "a").has_value());
  EXPECT_FALSE(cache.Get("g", "b").has_value());
  EXPECT_TRUE(cache.Get("g", "c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ResultCacheTest, OverwriteRefreshes) {
  ResultCache cache(2);
  cache.Put("g", "a", "old");
  cache.Put("g", "a", "new");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get("g", "a"), "new");
}

TEST(ResultCacheTest, InvalidateGroup) {
  ResultCache cache(8);
  cache.Put("g1", "a", "1");
  cache.Put("g1", "b", "2");
  cache.Put("g2", "a", "3");
  cache.InvalidateGroup("g1");
  EXPECT_FALSE(cache.Get("g1", "a").has_value());
  EXPECT_FALSE(cache.Get("g1", "b").has_value());
  EXPECT_TRUE(cache.Get("g2", "a").has_value());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, CapacityOneStillWorks) {
  ResultCache cache(1);
  cache.Put("g", "a", "1");
  cache.Put("g", "b", "2");
  EXPECT_FALSE(cache.Get("g", "a").has_value());
  EXPECT_TRUE(cache.Get("g", "b").has_value());
}

TEST(ResultCacheTest, EpochMatchServesHit) {
  ResultCache cache(4);
  cache.Put("g", "q", "answer", /*epoch=*/7);
  auto hit = cache.Get("g", "q", /*epoch=*/7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "answer");
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ResultCacheTest, EpochMismatchIsAMissAndEvicts) {
  ResultCache cache(4);
  cache.Put("g", "q", "stale", /*epoch=*/7);
  EXPECT_FALSE(cache.Get("g", "q", /*epoch=*/8).has_value());
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 1);
  // The stale entry is gone, not just skipped: a later lookup at the
  // original epoch misses too.
  EXPECT_FALSE(cache.Get("g", "q", /*epoch=*/7).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, OverwriteRestampsEpoch) {
  ResultCache cache(4);
  cache.Put("g", "q", "old", /*epoch=*/1);
  cache.Put("g", "q", "new", /*epoch=*/2);
  EXPECT_FALSE(cache.Get("g", "q", /*epoch=*/1).has_value());
  cache.Put("g", "q", "new", /*epoch=*/2);
  auto hit = cache.Get("g", "q", /*epoch=*/2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "new");
}

TEST(ResultCacheTest, DefaultEpochZeroKeepsLegacyBehavior) {
  ResultCache cache(4);
  cache.Put("g", "q", "answer");
  EXPECT_TRUE(cache.Get("g", "q").has_value());
}

TEST(ResultCacheTest, HitRate) {
  ResultCache cache(4);
  cache.Put("g", "a", "1");
  (void)cache.Get("g", "a");
  (void)cache.Get("g", "a");
  (void)cache.Get("g", "miss");
  EXPECT_NEAR(cache.stats().HitRate(), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace paw

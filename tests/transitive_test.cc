// Tests for transitive closure/reduction — the engine behind structural
// privacy metrics.

#include "src/graph/transitive.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/graph/algorithms.h"

namespace paw {
namespace {

Digraph Chain(int n) {
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) EXPECT_TRUE(g.AddEdge(i, i + 1).ok());
  return g;
}

TEST(TransitiveTest, ChainClosure) {
  Digraph g = Chain(5);
  TransitiveClosure tc = TransitiveClosure::Compute(g);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(tc.Reaches(i, j), i < j) << i << "->" << j;
    }
  }
  EXPECT_EQ(tc.CountPairs(), 10);  // C(5,2)
}

TEST(TransitiveTest, RowOf) {
  Digraph g = Chain(4);
  TransitiveClosure tc = TransitiveClosure::Compute(g);
  EXPECT_EQ(tc.RowOf(1), (std::vector<NodeIndex>{2, 3}));
  EXPECT_TRUE(tc.RowOf(3).empty());
}

TEST(TransitiveTest, CyclicGraphSelfReach) {
  Digraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  TransitiveClosure tc = TransitiveClosure::Compute(g);
  EXPECT_TRUE(tc.Reaches(0, 0));
  EXPECT_TRUE(tc.Reaches(1, 0));
  EXPECT_TRUE(tc.Reaches(2, 1));
}

TEST(TransitiveTest, PairsMinus) {
  Digraph g = Chain(4);
  Digraph h = Chain(4);
  ASSERT_TRUE(h.RemoveEdge(1, 2).ok());
  TransitiveClosure tg = TransitiveClosure::Compute(g);
  TransitiveClosure th = TransitiveClosure::Compute(h);
  auto lost = tg.PairsMinus(th);
  ASSERT_TRUE(lost.ok());
  // 0->2, 0->3, 1->2, 1->3 lost.
  EXPECT_EQ(lost.value().size(), 4u);
  auto gained = th.PairsMinus(tg);
  ASSERT_TRUE(gained.ok());
  EXPECT_TRUE(gained.value().empty());
}

TEST(TransitiveTest, PairsMinusSizeMismatch) {
  TransitiveClosure a = TransitiveClosure::Compute(Chain(3));
  TransitiveClosure b = TransitiveClosure::Compute(Chain(4));
  EXPECT_FALSE(a.PairsMinus(b).ok());
}

TEST(TransitiveTest, ClosureMatchesBfsOnRandomDags) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 20;
    Digraph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.15)) ASSERT_TRUE(g.AddEdge(i, j).ok());
      }
    }
    TransitiveClosure tc = TransitiveClosure::Compute(g);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        EXPECT_EQ(tc.Reaches(i, j), PathExists(g, i, j))
            << "trial " << trial << ": " << i << "->" << j;
      }
    }
  }
}

TEST(TransitiveTest, ReductionRemovesShortcut) {
  Digraph g = Chain(3);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());  // redundant shortcut
  auto red = TransitiveReduction(g);
  ASSERT_TRUE(red.ok());
  EXPECT_EQ(red.value().num_edges(), 2);
  EXPECT_FALSE(red.value().HasEdge(0, 2));
}

TEST(TransitiveTest, ReductionPreservesClosure) {
  Rng rng(5);
  Digraph g(15);
  for (int i = 0; i < 15; ++i) {
    for (int j = i + 1; j < 15; ++j) {
      if (rng.Bernoulli(0.3)) ASSERT_TRUE(g.AddEdge(i, j).ok());
    }
  }
  auto red = TransitiveReduction(g);
  ASSERT_TRUE(red.ok());
  TransitiveClosure a = TransitiveClosure::Compute(g);
  TransitiveClosure b = TransitiveClosure::Compute(red.value());
  EXPECT_TRUE(a.PairsMinus(b).value().empty());
  EXPECT_TRUE(b.PairsMinus(a).value().empty());
  EXPECT_LE(red.value().num_edges(), g.num_edges());
}

TEST(TransitiveTest, ReductionRejectsCycles) {
  Digraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 0).ok());
  EXPECT_FALSE(TransitiveReduction(g).ok());
}

TEST(TransitiveTest, LargeGraphBitsetBoundary) {
  // Exercise the >64-node word boundary.
  Digraph g = Chain(130);
  TransitiveClosure tc = TransitiveClosure::Compute(g);
  EXPECT_TRUE(tc.Reaches(0, 129));
  EXPECT_TRUE(tc.Reaches(63, 64));
  EXPECT_TRUE(tc.Reaches(64, 128));
  EXPECT_FALSE(tc.Reaches(129, 0));
  EXPECT_EQ(tc.CountPairs(), 130 * 129 / 2);
}

}  // namespace
}  // namespace paw

// Tests for differentially private provenance counters (paper Sec. 5).

#include "src/privacy/dp_counters.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

class DpCountersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Ten executions of the disease workflow with varying inputs.
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_id_ = repo_.AddSpecification(std::move(spec).value()).value();
    FunctionRegistry fns = BuildDiseaseFunctions();
    for (int i = 0; i < 10; ++i) {
      ValueMap inputs = DiseaseInputs();
      inputs["SNPs"] = "rs" + std::to_string(i);
      auto exec = Execute(repo_.entry(spec_id_).spec, fns, inputs);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(repo_.AddExecution(spec_id_, std::move(exec).value())
                      .ok());
    }
  }

  Repository repo_;
  int spec_id_ = -1;
};

TEST_F(DpCountersTest, ExactCounts) {
  ProvenanceCounter counter(repo_, 1);
  EXPECT_EQ(counter.CountModuleActivations("M6").value(), 10);
  EXPECT_EQ(counter.CountModuleActivations("M404").value(), 0);
  EXPECT_EQ(counter.CountLabelProductions("prognosis").value(), 10);
  EXPECT_EQ(counter.CountLabelProductions("unicorn").value(), 0);
  // M13 contributes to M11 in every run; the converse never holds.
  EXPECT_EQ(counter.CountContributions("M13", "M11").value(), 10);
  EXPECT_EQ(counter.CountContributions("M11", "M13").value(), 0);
}

TEST_F(DpCountersTest, NoisyCountRejectsBadEpsilon) {
  ProvenanceCounter counter(repo_, 1);
  EXPECT_FALSE(counter.Noisy(10, 0, 1).ok());
  EXPECT_FALSE(counter.Noisy(10, -1, 1).ok());
}

TEST_F(DpCountersTest, NoiseShrinksWithEpsilon) {
  ProvenanceCounter counter(repo_, 7);
  // Mean absolute error over many queries at two budgets.
  auto mae = [&](double epsilon) {
    double total = 0;
    constexpr int kQueries = 500;
    for (uint64_t q = 0; q < kQueries; ++q) {
      double noisy = counter.Noisy(10, epsilon, q).value();
      total += std::abs(noisy - 10.0);
    }
    return total / kQueries;
  };
  double loose = mae(0.1);   // expected MAE = 1/eps = 10
  double tight = mae(10.0);  // expected MAE = 0.1
  EXPECT_GT(loose, tight * 5);
  EXPECT_NEAR(tight, 0.1, 0.1);
  EXPECT_NEAR(loose, 10.0, 5.0);
}

TEST_F(DpCountersTest, NoiseIsSeedDeterministic) {
  ProvenanceCounter a(repo_, 42);
  ProvenanceCounter b(repo_, 42);
  ProvenanceCounter c(repo_, 43);
  EXPECT_EQ(a.Noisy(5, 1.0, 9).value(), b.Noisy(5, 1.0, 9).value());
  EXPECT_NE(a.Noisy(5, 1.0, 9).value(), c.Noisy(5, 1.0, 9).value());
}

TEST_F(DpCountersTest, QueryIdIsStablePerPrincipalCounterPair) {
  const uint64_t id =
      ProvenanceCounter::QueryId("alice", "activations:M6");
  EXPECT_EQ(id, ProvenanceCounter::QueryId("alice", "activations:M6"));
  EXPECT_NE(id, ProvenanceCounter::QueryId("bob", "activations:M6"));
  EXPECT_NE(id, ProvenanceCounter::QueryId("alice", "activations:M7"));
  // The separator is part of the hash: splitting the pair differently
  // must not collide.
  EXPECT_NE(ProvenanceCounter::QueryId("a", "bc"),
            ProvenanceCounter::QueryId("ab", "c"));

  // Re-asking through the stable id returns the identical draw — no
  // privacy-budget leak through repeated sampling.
  ProvenanceCounter counter(repo_, 42);
  EXPECT_EQ(counter.Noisy(10, 1.0, id).value(),
            counter.Noisy(10, 1.0, id).value());
}

TEST_F(DpCountersTest, ConcurrentNoisyCountsDuringIngest) {
  // N reader threads draw noisy counts while a writer appends
  // executions — the MVCC discipline (each count pins its own view)
  // must keep every observed count consistent with *some* cut, and
  // re-asks through stable query ids deterministic. Runs under TSan.
  constexpr int kReaders = 4;
  constexpr int kAppends = 20;
  constexpr int kAsksPerReader = 60;
  std::atomic<bool> done{false};
  ProvenanceCounter counter(repo_, 42);

  std::thread writer([&] {
    FunctionRegistry fns = BuildDiseaseFunctions();
    for (int i = 0; i < kAppends; ++i) {
      ValueMap inputs = DiseaseInputs();
      inputs["SNPs"] = "rs-live-" + std::to_string(i);
      auto exec = Execute(repo_.entry(spec_id_).spec, fns, inputs);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(
          repo_.AddExecution(spec_id_, std::move(exec).value()).ok());
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const std::string principal = "reader" + std::to_string(r);
      const uint64_t query_id =
          ProvenanceCounter::QueryId(principal, "activations:M6");
      int64_t last = 0;
      for (int i = 0; i < kAsksPerReader; ++i) {
        auto exact = counter.CountModuleActivations("M6");
        ASSERT_TRUE(exact.ok());
        // Counts are monotone across cuts (append-only store) and
        // bounded by the final total.
        EXPECT_GE(exact.value(), last);
        EXPECT_GE(exact.value(), 10);
        EXPECT_LE(exact.value(), 10 + kAppends);
        last = exact.value();
        // The per-(principal, counter) draw is identical on re-ask
        // even while ingest is running.
        auto noisy1 = counter.Noisy(exact.value(), 1.0, query_id);
        auto noisy2 = counter.Noisy(exact.value(), 1.0, query_id);
        ASSERT_TRUE(noisy1.ok());
        EXPECT_EQ(noisy1.value(), noisy2.value());
      }
    });
  }
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(counter.CountModuleActivations("M6").value(),
            10 + kAppends);
}

TEST(LaplaceNoiseTest, RoughlyCentredAndScaled) {
  LaplaceNoise noise(2.0, 11);
  double sum = 0;
  double abs_sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    double x = noise.Sample();
    sum += x;
    abs_sum += std::abs(x);
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.1);       // mean 0
  EXPECT_NEAR(abs_sum / kSamples, 2.0, 0.15);  // E|X| = b
}

}  // namespace
}  // namespace paw

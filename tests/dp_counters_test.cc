// Tests for differentially private provenance counters (paper Sec. 5).

#include "src/privacy/dp_counters.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

class DpCountersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Ten executions of the disease workflow with varying inputs.
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_id_ = repo_.AddSpecification(std::move(spec).value()).value();
    FunctionRegistry fns = BuildDiseaseFunctions();
    for (int i = 0; i < 10; ++i) {
      ValueMap inputs = DiseaseInputs();
      inputs["SNPs"] = "rs" + std::to_string(i);
      auto exec = Execute(repo_.entry(spec_id_).spec, fns, inputs);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(repo_.AddExecution(spec_id_, std::move(exec).value())
                      .ok());
    }
  }

  Repository repo_;
  int spec_id_ = -1;
};

TEST_F(DpCountersTest, ExactCounts) {
  ProvenanceCounter counter(repo_, 1);
  EXPECT_EQ(counter.CountModuleActivations("M6").value(), 10);
  EXPECT_EQ(counter.CountModuleActivations("M404").value(), 0);
  EXPECT_EQ(counter.CountLabelProductions("prognosis").value(), 10);
  EXPECT_EQ(counter.CountLabelProductions("unicorn").value(), 0);
  // M13 contributes to M11 in every run; the converse never holds.
  EXPECT_EQ(counter.CountContributions("M13", "M11").value(), 10);
  EXPECT_EQ(counter.CountContributions("M11", "M13").value(), 0);
}

TEST_F(DpCountersTest, NoisyCountRejectsBadEpsilon) {
  ProvenanceCounter counter(repo_, 1);
  EXPECT_FALSE(counter.Noisy(10, 0, 1).ok());
  EXPECT_FALSE(counter.Noisy(10, -1, 1).ok());
}

TEST_F(DpCountersTest, NoiseShrinksWithEpsilon) {
  ProvenanceCounter counter(repo_, 7);
  // Mean absolute error over many queries at two budgets.
  auto mae = [&](double epsilon) {
    double total = 0;
    constexpr int kQueries = 500;
    for (uint64_t q = 0; q < kQueries; ++q) {
      double noisy = counter.Noisy(10, epsilon, q).value();
      total += std::abs(noisy - 10.0);
    }
    return total / kQueries;
  };
  double loose = mae(0.1);   // expected MAE = 1/eps = 10
  double tight = mae(10.0);  // expected MAE = 0.1
  EXPECT_GT(loose, tight * 5);
  EXPECT_NEAR(tight, 0.1, 0.1);
  EXPECT_NEAR(loose, 10.0, 5.0);
}

TEST_F(DpCountersTest, NoiseIsSeedDeterministic) {
  ProvenanceCounter a(repo_, 42);
  ProvenanceCounter b(repo_, 42);
  ProvenanceCounter c(repo_, 43);
  EXPECT_EQ(a.Noisy(5, 1.0, 9).value(), b.Noisy(5, 1.0, 9).value());
  EXPECT_NE(a.Noisy(5, 1.0, 9).value(), c.Noisy(5, 1.0, 9).value());
}

TEST(LaplaceNoiseTest, RoughlyCentredAndScaled) {
  LaplaceNoise noise(2.0, 11);
  double sum = 0;
  double abs_sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    double x = noise.Sample();
    sum += x;
    abs_sum += std::abs(x);
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.1);       // mean 0
  EXPECT_NEAR(abs_sum / kSamples, 2.0, 0.15);  // E|X| = b
}

}  // namespace
}  // namespace paw

// Tests for the text serialization format (round-trip and error paths).

#include "src/workflow/serialize.h"

#include <gtest/gtest.h>

#include "src/repo/disease.h"
#include "src/workflow/builder.h"

namespace paw {
namespace {

TEST(SerializeTest, DiseaseSpecRoundTrip) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  std::string text = Serialize(spec.value());
  auto parsed = ParseSpecification(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Round trip is textually stable.
  EXPECT_EQ(Serialize(parsed.value()), text);
  EXPECT_EQ(parsed.value().name(), "disease susceptibility");
  EXPECT_EQ(parsed.value().num_workflows(), 4);
  EXPECT_EQ(parsed.value().num_modules(), 17);
}

TEST(SerializeTest, PreservesStructure) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto parsed = ParseSpecification(Serialize(spec.value()));
  ASSERT_TRUE(parsed.ok());
  const Specification& p = parsed.value();
  ModuleId m1 = p.FindModule("M1").value();
  EXPECT_EQ(p.module(m1).kind, ModuleKind::kComposite);
  EXPECT_EQ(p.workflow(p.module(m1).expansion).code, "W2");
  EXPECT_EQ(p.workflow(p.FindWorkflow("W4").value()).required_level, 2);
  auto out = p.OutEdges(p.FindModule("I").value());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->labels,
            (std::vector<std::string>{"SNPs", "ethnicity"}));
}

TEST(SerializeTest, ParsesCommentsAndBlankLines) {
  std::string text =
      "# a comment\n"
      "spec \"demo\"\n"
      "\n"
      "workflow W1 \"top\" level=0 root\n"
      "module I W1 input \"Input\"\n"
      "module M1 W1 atomic \"Do Work\" keywords=\"alpha;beta\"\n"
      "module O W1 output \"Output\"\n"
      "edge I M1 labels=\"x\"\n"
      "edge M1 O labels=\"y\"\n";
  auto parsed = ParseSpecification(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ModuleId m1 = parsed.value().FindModule("M1").value();
  EXPECT_EQ(parsed.value().module(m1).keywords,
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(SerializeTest, QuotedNamesWithSpaces) {
  std::string text =
      "spec \"with spaces\"\n"
      "workflow W1 \"outer level\" level=0 root\n"
      "module I W1 input \"Input\"\n"
      "module M1 W1 atomic \"Align And Sort Reads\"\n"
      "module O W1 output \"Output\"\n"
      "edge I M1 labels=\"raw reads;sample sheet\"\n"
      "edge M1 O labels=\"result\"\n";
  auto parsed = ParseSpecification(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto out = parsed.value().OutEdges(parsed.value().FindModule("I").value());
  EXPECT_EQ(out[0]->labels,
            (std::vector<std::string>{"raw reads", "sample sheet"}));
}

TEST(SerializeTest, RejectsUnknownDirective) {
  EXPECT_FALSE(ParseSpecification("bogus line here\n").ok());
}

TEST(SerializeTest, RejectsUnknownWorkflowReference) {
  std::string text =
      "spec \"bad\"\n"
      "workflow W1 \"top\" level=0 root\n"
      "module M1 W9 atomic \"orphan\"\n";
  EXPECT_FALSE(ParseSpecification(text).ok());
}

TEST(SerializeTest, RejectsUnknownEdgeEndpoint) {
  std::string text =
      "spec \"bad\"\n"
      "workflow W1 \"top\" level=0 root\n"
      "module I W1 input \"Input\"\n"
      "module O W1 output \"Output\"\n"
      "edge I M9 labels=\"x\"\n";
  EXPECT_FALSE(ParseSpecification(text).ok());
}

TEST(SerializeTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseSpecification("spec \"oops\n").ok());
}

TEST(SerializeTest, RejectsDuplicateModule) {
  std::string text =
      "spec \"bad\"\n"
      "workflow W1 \"top\" level=0 root\n"
      "module I W1 input \"Input\"\n"
      "module I W1 input \"Input\"\n";
  EXPECT_FALSE(ParseSpecification(text).ok());
}

TEST(SerializeTest, ValidationRunsAfterParse) {
  // Parses fine syntactically but has no output node.
  std::string text =
      "spec \"bad\"\n"
      "workflow W1 \"top\" level=0 root\n"
      "module I W1 input \"Input\"\n"
      "module M1 W1 atomic \"step\"\n"
      "edge I M1 labels=\"x\"\n";
  auto parsed = ParseSpecification(text);
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsFailedPrecondition());
}

TEST(SerializeTest, GeneratedSpecRoundTrips) {
  SpecBuilder b("generated");
  WorkflowId w1 = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w1);
  ModuleId m1 = b.AddModule(w1, "M1", "outer");
  ModuleId o = b.AddOutput(w1);
  WorkflowId w2 = b.AddWorkflow("W2", "inner", 1);
  ModuleId m2 = b.AddModule(w2, "M2", "leaf \"quoted\" name");
  (void)m2;
  EXPECT_TRUE(b.MakeComposite(m1, w2).ok());
  EXPECT_TRUE(b.Connect(i, m1, {"in"}).ok());
  EXPECT_TRUE(b.Connect(m1, o, {"out"}).ok());
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::string text = Serialize(spec.value());
  auto parsed = ParseSpecification(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(Serialize(parsed.value()), text);
}

}  // namespace
}  // namespace paw

#include "src/common/trace.h"

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/metrics.h"

namespace paw {
namespace {

Span MakeSpan(uint64_t trace_id, uint64_t span_id, uint64_t parent,
              std::string_view name) {
  Span s;
  s.trace_id = trace_id;
  s.span_id = span_id;
  s.parent_span_id = parent;
  s.start_us = 1000;
  s.end_us = 1500;
  s.set_name(name);
  return s;
}

TEST(TraceContextTest, TrailerRoundTrips) {
  TraceContext ctx;
  ctx.trace_id = 0x0123456789abcdefULL;
  ctx.span_id = 0xfedcba9876543210ULL;
  std::string buf;
  AppendTraceContext(ctx, &buf);
  ASSERT_EQ(buf.size(), kTraceContextBytes);

  TraceContext out;
  ASSERT_TRUE(ParseTraceContext(buf, &out));
  EXPECT_EQ(out, ctx);
}

TEST(TraceContextTest, ParseRejectsShortBuffer) {
  std::string buf(kTraceContextBytes - 1, '\0');
  TraceContext out;
  EXPECT_FALSE(ParseTraceContext(buf, &out));
}

TEST(TraceContextTest, NullContextIsInvalid) {
  TraceContext ctx;
  EXPECT_FALSE(ctx.valid());
  ctx.trace_id = 1;
  EXPECT_TRUE(ctx.valid());
}

TEST(TraceIdHexTest, SixteenLowercaseZeroPaddedDigits) {
  EXPECT_EQ(TraceIdHex(0x1), "0000000000000001");
  EXPECT_EQ(TraceIdHex(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(TraceIdHex(0xFFFFFFFFFFFFFFFFULL), "ffffffffffffffff");
  // pawctl parses the same rendering back with strtoull base 16.
  const uint64_t id = 0x0123456789abcdefULL;
  EXPECT_EQ(std::strtoull(TraceIdHex(id).c_str(), nullptr, 16), id);
}

TEST(TraceRecorderTest, SamplingIsDeterministicInTheId) {
  TraceRecorder recorder(16);
  recorder.set_sample_n(4);
  for (uint64_t id = 1; id < 100; ++id) {
    EXPECT_EQ(recorder.Sampled(id), id % 4 == 0) << id;
  }
  // The null id is never sampled; 0 and 1 both mean "everything".
  EXPECT_FALSE(recorder.Sampled(0));
  recorder.set_sample_n(0);
  EXPECT_TRUE(recorder.Sampled(7));
  EXPECT_FALSE(recorder.Sampled(0));
  recorder.set_sample_n(1);
  EXPECT_TRUE(recorder.Sampled(7));
}

TEST(TraceRecorderTest, FreshIdsAreNonzeroAndDistinct) {
  TraceRecorder recorder(16);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t trace = recorder.NewTraceId();
    const uint64_t span = recorder.NewSpanId();
    EXPECT_NE(trace, 0u);
    EXPECT_NE(span, 0u);
    seen.insert(trace);
    seen.insert(span);
  }
  EXPECT_EQ(seen.size(), 2000u);
}

#if !defined(PAW_NO_TRACE)

TEST(TraceRecorderTest, CollectReturnsRecordedSpansOldestFirst) {
  TraceRecorder recorder(8);
  for (uint64_t i = 1; i <= 3; ++i) {
    recorder.Record(MakeSpan(i, i * 10, 0, "t.span"));
  }
  const std::vector<Span> got = recorder.Collect();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].trace_id, 1u);
  EXPECT_EQ(got[1].trace_id, 2u);
  EXPECT_EQ(got[2].trace_id, 3u);
  EXPECT_EQ(got[0].name_view(), "t.span");
  EXPECT_EQ(recorder.recorded_total(), 3u);
}

TEST(TraceRecorderTest, RingWrapsKeepingTheNewest) {
  TraceRecorder recorder(8);
  ASSERT_EQ(recorder.capacity(), 8u);
  for (uint64_t i = 1; i <= 13; ++i) {
    recorder.Record(MakeSpan(i, i, 0, "t.wrap"));
  }
  const std::vector<Span> got = recorder.Collect();
  ASSERT_EQ(got.size(), 8u);
  // Oldest five were overwritten; the survivors stay in order.
  EXPECT_EQ(got.front().trace_id, 6u);
  EXPECT_EQ(got.back().trace_id, 13u);
  EXPECT_EQ(recorder.recorded_total(), 13u);

  recorder.ResetForTesting();
  EXPECT_TRUE(recorder.Collect().empty());
}

TEST(TraceRecorderTest, TruncatesLongStringsIntoFixedFields) {
  TraceRecorder recorder(4);
  Span span = MakeSpan(1, 2, 0, "");
  const std::string long_name(100, 'n');
  const std::string long_principal(100, 'p');
  const std::string long_detail(100, 'd');
  span.set_name(long_name);
  span.set_principal(long_principal);
  span.set_detail(long_detail);
  recorder.Record(span);
  const std::vector<Span> got = recorder.Collect();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].name_view(), long_name.substr(0, sizeof(Span{}.name)));
  EXPECT_EQ(got[0].principal_view(),
            long_principal.substr(0, sizeof(Span{}.principal)));
  EXPECT_EQ(got[0].detail_view(),
            long_detail.substr(0, sizeof(Span{}.detail)));
}

// Concurrency hammer for the seqlock: racy reads must skip or return
// intact spans, never torn ones. Every written span satisfies
// end_us == start_us + 1 and span_id == trace_id ^ kMark; a torn copy
// breaks one of the invariants.
TEST(TraceRecorderTest, ConcurrentRecordAndCollectNeverTear) {
  constexpr uint64_t kMark = 0x5a5a5a5a5a5a5a5aULL;
  TraceRecorder recorder(64);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Span& s : recorder.Collect()) {
        if (s.end_us != s.start_us + 1 ||
            s.span_id != (s.trace_id ^ kMark)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 1; i <= 20000; ++i) {
        const uint64_t id = (static_cast<uint64_t>(w) << 32) | i;
        Span s;
        s.trace_id = id;
        s.span_id = id ^ kMark;
        s.start_us = static_cast<int64_t>(i);
        s.end_us = static_cast<int64_t>(i) + 1;
        s.set_name("t.hammer");
        recorder.Record(s);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(recorder.recorded_total(), 4u * 20000u);
  EXPECT_EQ(recorder.Collect().size(), 64u);
}

TEST(ScopedSpanTest, RecordsUnderTheCurrentContextWhenSampled) {
  TraceRecorder& global = TraceRecorder::Global();
  const uint32_t old_n = global.sample_n();
  global.ResetForTesting();
  global.set_sample_n(1);

  TraceContext ctx;
  ctx.trace_id = 777;
  ctx.span_id = 42;
  {
    ScopedTraceContext scoped(ctx);
    ScopedSpan span("test.scoped");
    span.set_detail("k=v");
  }
  bool found = false;
  for (const Span& s : global.Collect()) {
    if (s.name_view() == "test.scoped") {
      found = true;
      EXPECT_EQ(s.trace_id, 777u);
      EXPECT_EQ(s.parent_span_id, 42u);
      EXPECT_NE(s.span_id, 0u);
      EXPECT_EQ(s.detail_view(), "k=v");
      EXPECT_GE(s.end_us, s.start_us);
    }
  }
  EXPECT_TRUE(found);
  global.set_sample_n(old_n);
  global.ResetForTesting();
}

TEST(ScopedSpanTest, SkipsUnsampledAndContextlessThreads) {
  TraceRecorder& global = TraceRecorder::Global();
  const uint32_t old_n = global.sample_n();
  global.ResetForTesting();

  // No context installed: nothing recorded.
  const uint64_t before = global.recorded_total();
  { ScopedSpan span("test.nocontext"); }
  EXPECT_EQ(global.recorded_total(), before);

  // Context present but the trace is sampled out.
  global.set_sample_n(1000000000);
  TraceContext ctx;
  ctx.trace_id = 3;  // 3 % 1e9 != 0
  {
    ScopedTraceContext scoped(ctx);
    ScopedSpan span("test.unsampled");
  }
  EXPECT_EQ(global.recorded_total(), before);
  global.set_sample_n(old_n);
  global.ResetForTesting();
}

TEST(AuditTest, EventsRecordRegardlessOfSampling) {
  TraceRecorder& global = TraceRecorder::Global();
  const uint32_t old_n = global.sample_n();
  global.ResetForTesting();
  global.set_sample_n(1000000000);  // samples (almost) nothing

  const uint64_t masked_before =
      MetricsRegistry::Global()
          .GetCounter("paw_audit_events_total{verdict=\"masked\"}")
          .value();
  TraceContext ctx;
  ctx.trace_id = 3;
  ctx.span_id = 9;
  {
    ScopedTraceContext scoped(ctx);
    RecordAuditEvent(AuditVerdict::kMasked, "alice", 7, "masked=2");
  }
  bool found = false;
  for (const Span& s : global.Collect()) {
    if (s.kind != SpanKind::kAudit) continue;
    found = true;
    EXPECT_EQ(s.name_view(), "masked");
    EXPECT_EQ(s.principal_view(), "alice");
    EXPECT_EQ(s.detail_view(), "masked=2");
    EXPECT_EQ(s.opcode, 7u);
    EXPECT_EQ(s.trace_id, 3u);      // joined the surrounding trace
    EXPECT_EQ(s.parent_span_id, 9u);
    EXPECT_EQ(s.start_us, s.end_us);  // point-in-time
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter("paw_audit_events_total{verdict=\"masked\"}")
                .value(),
            masked_before + 1);
  global.set_sample_n(old_n);
  global.ResetForTesting();
}

#endif  // !PAW_NO_TRACE

TEST(SpanCodecTest, RoundTripsSpanList) {
  std::vector<Span> spans;
  Span a = MakeSpan(1, 2, 0, "req.add_execution");
  a.opcode = 5;
  a.status_code = 3;
  a.flags = kSpanFlagSlow | kSpanFlagError;
  a.result_bytes = 4096;
  a.set_principal("alice");
  a.set_detail("shard=1 lsn=9");
  spans.push_back(a);
  Span b = MakeSpan(1, 3, 2, "wal.fsync");
  b.start_us = -5;  // zigzag path: negative monotonic bases survive
  b.end_us = 10;
  spans.push_back(b);
  Span c;
  c.kind = SpanKind::kAudit;
  c.set_name("denied");
  spans.push_back(c);

  const std::string encoded = EncodeSpans(spans);
  size_t offset = 0;
  Result<std::vector<Span>> decoded = DecodeSpans(encoded, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(offset, encoded.size());
  ASSERT_EQ(decoded.value().size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& want = spans[i];
    const Span& got = decoded.value()[i];
    EXPECT_EQ(got.trace_id, want.trace_id);
    EXPECT_EQ(got.span_id, want.span_id);
    EXPECT_EQ(got.parent_span_id, want.parent_span_id);
    EXPECT_EQ(got.start_us, want.start_us);
    EXPECT_EQ(got.end_us, want.end_us);
    EXPECT_EQ(got.result_bytes, want.result_bytes);
    EXPECT_EQ(got.opcode, want.opcode);
    EXPECT_EQ(got.status_code, want.status_code);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.flags, want.flags);
    EXPECT_EQ(got.name_view(), want.name_view());
    EXPECT_EQ(got.principal_view(), want.principal_view());
    EXPECT_EQ(got.detail_view(), want.detail_view());
  }
}

TEST(SpanCodecTest, RejectsEveryTruncation) {
  std::vector<Span> spans;
  spans.push_back(MakeSpan(7, 8, 0, "t.codec"));
  const std::string encoded = EncodeSpans(spans);
  for (size_t len = 0; len < encoded.size(); ++len) {
    size_t offset = 0;
    EXPECT_FALSE(DecodeSpans(encoded.substr(0, len), &offset).ok())
        << "prefix length " << len;
  }
}

}  // namespace
}  // namespace paw

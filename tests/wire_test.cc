// Wire-protocol tests: frame round trips (including incremental,
// byte-at-a-time delivery), truncation and bit-flip sweeps in the
// style of crash_injection_test.cc, oversized/malformed rejection, and
// fuzzed round trips of every message body codec.

#include "src/server/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/random.h"
#include "src/store/record.h"

namespace paw {
namespace wire {
namespace {

Frame MakeFrame(Opcode op, uint64_t id, std::string payload) {
  Frame frame;
  frame.opcode = op;
  frame.request_id = id;
  frame.payload = std::move(payload);
  return frame;
}

std::string Encode(const Frame& frame) {
  std::string out;
  AppendFrame(frame, &out);
  return out;
}

TEST(WireFrameTest, RoundTripsSimpleFrame) {
  const Frame frame =
      MakeFrame(Opcode::kAddExecution, 42, "hello payload");
  const std::string bytes = Encode(frame);
  // Default frames are v2 and carry the 16-byte trace trailer.
  ASSERT_EQ(bytes.size(),
            kFrameHeaderSize + frame.payload.size() + kTraceContextBytes);

  Frame decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
            ParseResult::kFrame)
      << error;
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.opcode, Opcode::kAddExecution);
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.payload, "hello payload");
  EXPECT_EQ(decoded.trace, TraceContext{});
}

TEST(WireFrameTest, TraceTrailerRoundTrips) {
  Frame frame = MakeFrame(Opcode::kLineage, 7, "body bytes");
  frame.trace = TraceContext{0xDEADBEEFCAFEF00Dull, 0x1122334455667788ull};
  const std::string bytes = Encode(frame);
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
            ParseResult::kFrame)
      << error;
  EXPECT_EQ(decoded.payload, "body bytes");
  EXPECT_EQ(decoded.trace.trace_id, frame.trace.trace_id);
  EXPECT_EQ(decoded.trace.span_id, frame.trace.span_id);
}

TEST(WireFrameTest, V1FramesCarryNoTrailer) {
  // A v1 frame (old peer) must be byte-identical to the pre-trailer
  // format and decode with a null context.
  Frame frame = MakeFrame(Opcode::kStatus, 3, "xyz");
  frame.version = 1;
  frame.trace = TraceContext{123, 456};  // must be ignored on v1
  const std::string bytes = Encode(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + frame.payload.size());
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
            ParseResult::kFrame)
      << error;
  EXPECT_EQ(decoded.payload, "xyz");
  EXPECT_EQ(decoded.trace, TraceContext{});
}

TEST(WireFrameTest, HelloFramesCarryNoTrailer) {
  // HELLO travels before the version is agreed, so it is exempt even
  // when stamped v2 — that is what lets negotiation interoperate.
  Frame frame = MakeFrame(Opcode::kHello, 1, "hello body");
  frame.trace = TraceContext{9, 9};
  const std::string bytes = Encode(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + frame.payload.size());
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
            ParseResult::kFrame)
      << error;
  EXPECT_EQ(decoded.payload, "hello body");
  EXPECT_EQ(decoded.trace, TraceContext{});
}

TEST(WireFrameTest, V2FrameTooShortForTrailerIsBad) {
  // Hand-build a v2 non-HELLO frame whose payload is under 16 bytes:
  // framing-valid (CRC passes) but trailer-invalid.
  Frame frame = MakeFrame(Opcode::kStatus, 1, "short");
  frame.version = 1;  // encode without trailer ...
  std::string bytes;
  AppendFrame(frame, &bytes);
  bytes[12] = 2;  // ... then claim v2 (version byte) and re-CRC
  std::string covered = bytes.substr(12);
  std::string crc;
  PutFixed32(&crc, Crc32(covered));
  bytes.replace(8, 4, crc);
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
            ParseResult::kBad);
  EXPECT_NE(error.find("trailer"), std::string::npos);
}

TEST(WireFrameTest, RoundTripsEmptyAndBinaryPayloads) {
  std::string nasty;
  for (int i = 0; i < 256; ++i) nasty.push_back(static_cast<char>(i));
  for (const std::string& payload :
       {std::string(), nasty, std::string("line1\nline2\0tail", 16)}) {
    const Frame frame = MakeFrame(Opcode::kStatus, 7, payload);
    const std::string bytes = Encode(frame);
    Frame decoded;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
              ParseResult::kFrame)
        << error;
    EXPECT_EQ(decoded.payload, payload);
  }
}

TEST(WireFrameTest, FuzzRoundTripRandomFrames) {
  Rng rng(20260729);
  for (int iter = 0; iter < 500; ++iter) {
    Frame frame;
    frame.opcode = static_cast<Opcode>(1 + rng.Uniform(11));
    frame.request_id =
        (static_cast<uint64_t>(rng.Uniform(1 << 30)) << 32) |
        static_cast<uint64_t>(rng.Uniform(1 << 30));
    const int len = rng.Uniform(600);
    std::string payload;
    for (int i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.Uniform(256)));
    }
    frame.payload = payload;

    const std::string bytes = Encode(frame);
    Frame decoded;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
              ParseResult::kFrame)
        << error;
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(decoded.opcode, frame.opcode);
    EXPECT_EQ(decoded.request_id, frame.request_id);
    EXPECT_EQ(decoded.payload, frame.payload);
  }
}

TEST(WireFrameTest, ParsesTwoFramesBackToBack) {
  std::string bytes = Encode(MakeFrame(Opcode::kAuth, 1, "alice"));
  const size_t first_size = bytes.size();
  AppendFrame(MakeFrame(Opcode::kStatus, 2, ""), &bytes);

  Frame decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
            ParseResult::kFrame);
  EXPECT_EQ(consumed, first_size);
  EXPECT_EQ(decoded.opcode, Opcode::kAuth);
  ASSERT_EQ(ParseFrame(std::string_view(bytes).substr(consumed), &decoded,
                       &consumed, &error),
            ParseResult::kFrame);
  EXPECT_EQ(decoded.opcode, Opcode::kStatus);
  EXPECT_EQ(decoded.request_id, 2u);
}

TEST(WireFrameTest, TruncationSweepNeverYieldsAFrame) {
  // Every strict prefix must request more bytes (the stream is merely
  // incomplete, never corrupt) — this is what lets the server read
  // frames that arrive one byte at a time.
  const std::string bytes =
      Encode(MakeFrame(Opcode::kKeywordSearch, 99, "search terms here"));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame decoded;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(ParseFrame(std::string_view(bytes).substr(0, cut), &decoded,
                         &consumed, &error),
              ParseResult::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(WireFrameTest, BitFlipSweepNeverYieldsThisFrame) {
  // A single flipped bit anywhere in the frame must never produce a
  // successfully parsed copy of the frame: the CRC covers
  // version..payload, the magic covers the prefix, and a flip inside
  // the length field either breaks the CRC window or asks for more
  // bytes — it cannot silently deliver altered contents.
  const Frame original =
      MakeFrame(Opcode::kAddSpec, 1234567, "spec text; policy text");
  const std::string bytes = Encode(original);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      Frame decoded;
      size_t consumed = 0;
      std::string error;
      const ParseResult result =
          ParseFrame(flipped, &decoded, &consumed, &error);
      ASSERT_NE(result, ParseResult::kFrame)
          << "flip at byte " << byte << " bit " << bit
          << " parsed as a frame";
    }
  }
}

TEST(WireFrameTest, RejectsOversizedPayloadLengthWithoutAllocating) {
  // Craft a header claiming a payload over the cap; the parser must
  // classify it as corruption immediately instead of waiting for (or
  // allocating) 4 GiB.
  Frame frame = MakeFrame(Opcode::kStatus, 1, "x");
  std::string bytes = Encode(frame);
  // payload_len lives at bytes [4, 8).
  bytes[4] = static_cast<char>(0xFF);
  bytes[5] = static_cast<char>(0xFF);
  bytes[6] = static_cast<char>(0xFF);
  bytes[7] = static_cast<char>(0x7F);
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
            ParseResult::kBad);
  EXPECT_NE(error.find("cap"), std::string::npos);
}

TEST(WireFrameTest, RejectsBadMagicImmediately) {
  std::string bytes = Encode(MakeFrame(Opcode::kStatus, 1, ""));
  bytes[0] = 'X';
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
            ParseResult::kBad);
  // Even a one-byte wrong prefix is rejected without waiting for the
  // full header — garbage streams die fast.
  EXPECT_EQ(ParseFrame(std::string_view(bytes).substr(0, 1), &decoded,
                       &consumed, &error),
            ParseResult::kBad);
}

TEST(WireFrameTest, RejectsUnknownOpcode) {
  Frame frame = MakeFrame(Opcode::kStatus, 5, "payload");
  frame.opcode = static_cast<Opcode>(200);
  const std::string bytes = Encode(frame);
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes, &decoded, &consumed, &error),
            ParseResult::kBad);
  EXPECT_NE(error.find("opcode"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Message body codecs
// ---------------------------------------------------------------------------

TEST(WireBodyTest, ResponseStatusRoundTrips) {
  for (const Status& status :
       {Status::OK(), Status::NotFound("no spec named \"x\""),
        Status::PermissionDenied("level 0 < 2"),
        Status::InvalidArgument(std::string("nul \0 inside", 12))}) {
    std::string payload;
    AppendResponseStatus(status, &payload);
    payload += "body";
    size_t offset = 0;
    Status decoded;
    ASSERT_TRUE(ReadResponseStatus(payload, &offset, &decoded));
    EXPECT_EQ(decoded.code(), status.code());
    EXPECT_EQ(decoded.message(), status.message());
    EXPECT_EQ(payload.substr(offset), "body");
  }
}

TEST(WireBodyTest, ResponseStatusRejectsTruncation) {
  std::string payload;
  AppendResponseStatus(Status::Internal("some failure message"), &payload);
  for (size_t cut = 0; cut + 1 < payload.size(); ++cut) {
    size_t offset = 0;
    Status decoded;
    EXPECT_FALSE(ReadResponseStatus(payload.substr(0, cut), &offset,
                                    &decoded))
        << cut;
  }
}

TEST(WireBodyTest, HelloRoundTrips) {
  HelloRequest req;
  req.min_version = 1;
  req.max_version = 3;
  req.client_name = "bench\nclient";
  auto decoded = DecodeHelloRequest(EncodeHelloRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().min_version, 1);
  EXPECT_EQ(decoded.value().max_version, 3);
  EXPECT_EQ(decoded.value().client_name, "bench\nclient");

  HelloResponse resp;
  resp.version = 2;
  resp.server_name = "pawd";
  auto decoded_resp = DecodeHelloResponse(EncodeHelloResponse(resp), 0);
  ASSERT_TRUE(decoded_resp.ok());
  EXPECT_EQ(decoded_resp.value().version, 2);
  EXPECT_EQ(decoded_resp.value().server_name, "pawd");
}

TEST(WireBodyTest, AddSpecAndExecutionRoundTrip) {
  AddSpecRequest spec_req{"spec \"name\"\nworkflow W1 ...",
                          "policy default_level=1\n"};
  auto spec_decoded = DecodeAddSpecRequest(EncodeAddSpecRequest(spec_req));
  ASSERT_TRUE(spec_decoded.ok());
  EXPECT_EQ(spec_decoded.value().spec_text, spec_req.spec_text);
  EXPECT_EQ(spec_decoded.value().policy_text, spec_req.policy_text);

  AddSpecResponse spec_resp{3, 17, (uint64_t{5} << 40) | 123};
  auto r = DecodeAddSpecResponse(EncodeAddSpecResponse(spec_resp), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().shard, 3);
  EXPECT_EQ(r.value().spec_id, 17);
  EXPECT_EQ(r.value().global_lsn, spec_resp.global_lsn);

  AddExecutionRequest exec_req{"disease susceptibility",
                               "execution spec=\"x\"\nnode 0 ..."};
  auto e = DecodeAddExecutionRequest(EncodeAddExecutionRequest(exec_req));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().spec_name, exec_req.spec_name);
  EXPECT_EQ(e.value().exec_text, exec_req.exec_text);
}

TEST(WireBodyTest, SearchRoundTrips) {
  SearchRequest req{{"genetic", "omim", ""}};
  auto decoded = DecodeSearchRequest(EncodeSearchRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().terms, req.terms);

  SearchResponse resp;
  resp.hits.push_back(SearchHit{"spec a", 0.75, 4, {"M1", "M2"}});
  resp.hits.push_back(SearchHit{"spec b", -1.5, 9, {}});
  auto hits = DecodeSearchResponse(EncodeSearchResponse(resp), 0);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits.value().hits.size(), 2u);
  EXPECT_EQ(hits.value().hits[0].spec_name, "spec a");
  EXPECT_DOUBLE_EQ(hits.value().hits[0].score, 0.75);
  EXPECT_EQ(hits.value().hits[0].view_size, 4);
  EXPECT_EQ(hits.value().hits[0].matched,
            (std::vector<std::string>{"M1", "M2"}));
  EXPECT_DOUBLE_EQ(hits.value().hits[1].score, -1.5);
}

TEST(WireBodyTest, StructuralRoundTrips) {
  StructuralRequest req;
  req.spec_name = "disease susceptibility";
  req.var_terms = {"expand", "omim"};
  req.edges = {{0, 1, true}, {1, 0, false}};
  auto decoded = DecodeStructuralRequest(EncodeStructuralRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().spec_name, req.spec_name);
  EXPECT_EQ(decoded.value().var_terms, req.var_terms);
  ASSERT_EQ(decoded.value().edges.size(), 2u);
  EXPECT_TRUE(decoded.value().edges[0].transitive);
  EXPECT_FALSE(decoded.value().edges[1].transitive);

  StructuralResponse resp;
  resp.matches = {{"M3", "M6"}, {"M3", "M7"}};
  auto matches =
      DecodeStructuralResponse(EncodeStructuralResponse(resp), 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().matches, resp.matches);
}

TEST(WireBodyTest, LineageAndStatusRoundTrip) {
  LineageRequest req{"spec", 3, 12};
  auto decoded = DecodeLineageRequest(EncodeLineageRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().ordinal, 3);
  EXPECT_EQ(decoded.value().item, 12);

  LineageResponse resp;
  resp.zoom_steps = 2;
  resp.prefix_codes = {"W1", "W2"};
  resp.rows = {"I -> M1 [SNPs=<masked>]", "M1 -> O [d=v]"};
  auto lr = DecodeLineageResponse(EncodeLineageResponse(resp), 0);
  ASSERT_TRUE(lr.ok());
  EXPECT_EQ(lr.value().zoom_steps, 2);
  EXPECT_EQ(lr.value().prefix_codes, resp.prefix_codes);
  EXPECT_EQ(lr.value().rows, resp.rows);

  StatusResponse status;
  status.shards = 4;
  status.specs = 2;
  status.executions = 100;
  status.principals = 3;
  status.connections = 8;
  status.text = "pawd: all good";
  auto sr = DecodeStatusResponse(EncodeStatusResponse(status), 0);
  ASSERT_TRUE(sr.ok());
  EXPECT_EQ(sr.value().shards, 4);
  EXPECT_EQ(sr.value().executions, 100);
  EXPECT_EQ(sr.value().text, status.text);
}

TEST(WireBodyTest, BodyDecodersRejectTruncationAndJunk) {
  // Sweep truncations of a representative body of every codec: no
  // prefix may decode successfully (each decoder demands exact
  // consumption), and none may crash.
  const std::string bodies[] = {
      EncodeHelloRequest({1, 1, "client"}),
      EncodeAuthRequest({"alice"}),
      EncodeAddSpecRequest({"spec text", "policy"}),
      EncodeAddExecutionRequest({"spec", "exec"}),
      EncodeGetSpecRequest({"spec"}),
      EncodeGetExecutionRequest({"spec", 3}),
      EncodeSearchRequest({{"a", "b"}}),
      EncodeStructuralRequest(
          {"spec", {"x", "y"}, {{0, 1, true}}}),
      EncodeLineageRequest({"spec", 1, 2}),
  };
  for (const std::string& body : bodies) {
    for (size_t cut = 0; cut < body.size(); ++cut) {
      const std::string prefix = body.substr(0, cut);
      EXPECT_FALSE(DecodeHelloRequest(prefix).ok() &&
                   prefix.size() == body.size());
      (void)DecodeAuthRequest(prefix);
      (void)DecodeAddSpecRequest(prefix);
      (void)DecodeAddExecutionRequest(prefix);
      (void)DecodeGetSpecRequest(prefix);
      (void)DecodeGetExecutionRequest(prefix);
      (void)DecodeSearchRequest(prefix);
      (void)DecodeStructuralRequest(prefix);
      (void)DecodeLineageRequest(prefix);
    }
  }
  // Truncating a specific codec's own body must fail that codec.
  const std::string search = EncodeSearchRequest({{"term1", "term2"}});
  for (size_t cut = 0; cut < search.size(); ++cut) {
    EXPECT_FALSE(DecodeSearchRequest(search.substr(0, cut)).ok()) << cut;
  }
  const std::string structural = EncodeStructuralRequest(
      {"spec", {"x"}, {{0, 0, false}}});
  for (size_t cut = 0; cut < structural.size(); ++cut) {
    EXPECT_FALSE(DecodeStructuralRequest(structural.substr(0, cut)).ok())
        << cut;
  }
}

// ---------------------------------------------------------------------------
// Replication codecs (SUBSCRIBE / REPLICATE)
// ---------------------------------------------------------------------------

TEST(WireReplicationTest, SubscribeRoundTrips) {
  SubscribeRequest req;
  req.last_lsns = {0, 17, uint64_t{1} << 50};
  req.follower_name = "replica\n#2";
  auto decoded = DecodeSubscribeRequest(EncodeSubscribeRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().last_lsns, req.last_lsns);
  EXPECT_EQ(decoded.value().follower_name, req.follower_name);

  SubscribeResponse resp;
  resp.leader_lsns = {123, 0, uint64_t{7} << 33};
  auto r = DecodeSubscribeResponse(EncodeSubscribeResponse(resp), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().leader_lsns, resp.leader_lsns);
}

TEST(WireReplicationTest, ReplicateRoundTrips) {
  ReplicateRequest req;
  req.shard = 3;
  req.base_lsn = (uint64_t{1} << 41) + 5;
  req.records.push_back({2, "spec payload"});
  req.records.push_back({6, std::string("binary \0 exec", 13)});
  req.records.push_back({3, ""});
  auto decoded = DecodeReplicateRequest(EncodeReplicateRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().shard, 3);
  EXPECT_EQ(decoded.value().base_lsn, req.base_lsn);
  ASSERT_EQ(decoded.value().records.size(), 3u);
  EXPECT_EQ(decoded.value().records[0].type, 2);
  EXPECT_EQ(decoded.value().records[0].payload, "spec payload");
  EXPECT_EQ(decoded.value().records[1].payload,
            std::string("binary \0 exec", 13));
  EXPECT_EQ(decoded.value().records[2].payload, "");

  ReplicateResponse resp{5, uint64_t{9} << 30};
  auto ack = DecodeReplicateResponse(EncodeReplicateResponse(resp), 0);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().shard, 5);
  EXPECT_EQ(ack.value().durable_lsn, resp.durable_lsn);
}

TEST(WireReplicationTest, FuzzRoundTripRandomBatches) {
  Rng rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    ReplicateRequest req;
    req.shard = static_cast<int>(rng.Uniform(16));
    req.base_lsn = (static_cast<uint64_t>(rng.Uniform(1 << 20)) << 20) |
                   rng.Uniform(1 << 20);
    const int n = rng.Uniform(8);
    for (int i = 0; i < n; ++i) {
      ReplicateRequest::Rec rec;
      rec.type = static_cast<uint8_t>(rng.Uniform(256));
      const int len = rng.Uniform(200);
      for (int b = 0; b < len; ++b) {
        rec.payload.push_back(static_cast<char>(rng.Uniform(256)));
      }
      req.records.push_back(std::move(rec));
    }
    auto decoded = DecodeReplicateRequest(EncodeReplicateRequest(req));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().shard, req.shard);
    EXPECT_EQ(decoded.value().base_lsn, req.base_lsn);
    ASSERT_EQ(decoded.value().records.size(), req.records.size());
    for (size_t i = 0; i < req.records.size(); ++i) {
      EXPECT_EQ(decoded.value().records[i].type, req.records[i].type);
      EXPECT_EQ(decoded.value().records[i].payload,
                req.records[i].payload);
    }

    SubscribeRequest sub;
    const int shards = rng.Uniform(8);
    for (int s = 0; s < shards; ++s) {
      sub.last_lsns.push_back(rng.Uniform(1 << 30));
    }
    auto sub_decoded = DecodeSubscribeRequest(EncodeSubscribeRequest(sub));
    ASSERT_TRUE(sub_decoded.ok());
    EXPECT_EQ(sub_decoded.value().last_lsns, sub.last_lsns);
  }
}

TEST(WireReplicationTest, TruncationSweepsFailCleanly) {
  ReplicateRequest req;
  req.shard = 1;
  req.base_lsn = 1000;
  req.records.push_back({2, "abc"});
  req.records.push_back({3, "defgh"});
  const std::string body = EncodeReplicateRequest(req);
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(DecodeReplicateRequest(body.substr(0, cut)).ok()) << cut;
  }
  const std::string sub =
      EncodeSubscribeRequest({{1, 2, 3}, "follower"});
  for (size_t cut = 0; cut < sub.size(); ++cut) {
    EXPECT_FALSE(DecodeSubscribeRequest(sub.substr(0, cut)).ok()) << cut;
  }
  const std::string sub_resp = EncodeSubscribeResponse({{9, 8}});
  for (size_t cut = 0; cut < sub_resp.size(); ++cut) {
    EXPECT_FALSE(DecodeSubscribeResponse(sub_resp.substr(0, cut), 0).ok())
        << cut;
  }
  const std::string ack = EncodeReplicateResponse({2, 777});
  for (size_t cut = 0; cut < ack.size(); ++cut) {
    EXPECT_FALSE(DecodeReplicateResponse(ack.substr(0, cut), 0).ok())
        << cut;
  }
}

TEST(WireReplicationTest, ReplicateFrameSurvivesBitFlipSweep) {
  // A replication push travels inside the same CRC'd frame as every
  // other message: any single-bit corruption must fail the frame
  // parse, never deliver an altered batch to the follower's WAL.
  ReplicateRequest req;
  req.shard = 0;
  req.base_lsn = 42;
  req.records.push_back({6, "execution record payload"});
  const Frame frame =
      MakeFrame(Opcode::kReplicate, 9, EncodeReplicateRequest(req));
  const std::string bytes = Encode(frame);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      Frame decoded;
      size_t consumed = 0;
      std::string error;
      ASSERT_NE(ParseFrame(flipped, &decoded, &consumed, &error),
                ParseResult::kFrame)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(WireReplicationTest, FuzzDecodersOnRandomBytes) {
  Rng rng(555777);
  for (int iter = 0; iter < 2000; ++iter) {
    const int len = rng.Uniform(150);
    std::string bytes;
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)DecodeSubscribeRequest(bytes);
    (void)DecodeSubscribeResponse(bytes, 0);
    (void)DecodeReplicateRequest(bytes);
    (void)DecodeReplicateResponse(bytes, 0);
  }
}

// ---------------------------------------------------------------------------
// TraceDump codecs
// ---------------------------------------------------------------------------

TEST(WireTraceTest, TraceDumpRequestRoundTrips) {
  for (const TraceDumpRequest req :
       {TraceDumpRequest{TraceDumpMode::kAll, 0, 0},
        TraceDumpRequest{TraceDumpMode::kSlow, 0, 100},
        TraceDumpRequest{TraceDumpMode::kById, 0xABCDEF0123456789ull, 7},
        TraceDumpRequest{TraceDumpMode::kAudit, 0, 5000}}) {
    auto decoded = DecodeTraceDumpRequest(EncodeTraceDumpRequest(req));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().mode, req.mode);
    EXPECT_EQ(decoded.value().trace_id, req.trace_id);
    EXPECT_EQ(decoded.value().max_spans, req.max_spans);
  }
}

TEST(WireTraceTest, TraceDumpRequestRejectsBadMode) {
  std::string body = EncodeTraceDumpRequest({TraceDumpMode::kAll, 0, 0});
  body[0] = 9;
  EXPECT_FALSE(DecodeTraceDumpRequest(body).ok());
}

TEST(WireTraceTest, TraceDumpResponseRoundTrips) {
  TraceDumpResponse resp;
  resp.dropped = 42;
  Span root;
  root.trace_id = 0x1111;
  root.span_id = 0x2222;
  root.start_us = 1000;
  root.end_us = 6400;
  root.result_bytes = 512;
  root.opcode = 4;
  root.status_code = 0;
  root.flags = kSpanFlagSlow;
  root.set_name("server.add_execution");
  root.set_principal("alice");
  root.set_detail("lease_ms=1.2 engine_ms=3");
  Span audit;
  audit.trace_id = 0x1111;
  audit.span_id = 0x3333;
  audit.parent_span_id = 0x2222;
  audit.start_us = 2000;
  audit.end_us = 2000;
  audit.kind = SpanKind::kAudit;
  audit.status_code = 1;
  audit.set_name("masked");
  audit.set_principal("alice");
  audit.set_detail("spec=dna group=g@2 masked=3");
  resp.spans = {root, audit};
  auto decoded = DecodeTraceDumpResponse(EncodeTraceDumpResponse(resp), 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().dropped, 42u);
  ASSERT_EQ(decoded.value().spans.size(), 2u);
  const Span& r = decoded.value().spans[0];
  EXPECT_EQ(r.trace_id, root.trace_id);
  EXPECT_EQ(r.span_id, root.span_id);
  EXPECT_EQ(r.start_us, root.start_us);
  EXPECT_EQ(r.end_us, root.end_us);
  EXPECT_EQ(r.result_bytes, root.result_bytes);
  EXPECT_EQ(r.flags, kSpanFlagSlow);
  EXPECT_EQ(r.name_view(), "server.add_execution");
  EXPECT_EQ(r.principal_view(), "alice");
  EXPECT_EQ(r.detail_view(), "lease_ms=1.2 engine_ms=3");
  const Span& a = decoded.value().spans[1];
  EXPECT_EQ(a.kind, SpanKind::kAudit);
  EXPECT_EQ(a.parent_span_id, root.span_id);
  EXPECT_EQ(a.detail_view(), "spec=dna group=g@2 masked=3");
}

TEST(WireTraceTest, SpanCodecTruncatesLongStringsToFieldWidth) {
  Span s;
  s.trace_id = 1;
  s.span_id = 2;
  s.set_name(std::string(100, 'n'));
  s.set_principal(std::string(100, 'p'));
  s.set_detail(std::string(100, 'd'));
  EXPECT_EQ(s.name_view().size(), sizeof(s.name));
  EXPECT_EQ(s.principal_view().size(), sizeof(s.principal));
  EXPECT_EQ(s.detail_view().size(), sizeof(s.detail));
  TraceDumpResponse resp;
  resp.spans = {s};
  auto decoded = DecodeTraceDumpResponse(EncodeTraceDumpResponse(resp), 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().spans[0].name_view(), s.name_view());
}

TEST(WireTraceTest, TraceDumpTruncationAndFuzz) {
  TraceDumpResponse resp;
  resp.dropped = 3;
  Span s;
  s.trace_id = 5;
  s.span_id = 6;
  s.set_name("wal.fsync");
  resp.spans = {s, s};
  const std::string body = EncodeTraceDumpResponse(resp);
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(DecodeTraceDumpResponse(body.substr(0, cut), 0).ok())
        << cut;
  }
  const std::string req_body =
      EncodeTraceDumpRequest({TraceDumpMode::kById, 77, 10});
  for (size_t cut = 0; cut < req_body.size(); ++cut) {
    EXPECT_FALSE(DecodeTraceDumpRequest(req_body.substr(0, cut)).ok())
        << cut;
  }
  Rng rng(424242);
  for (int iter = 0; iter < 2000; ++iter) {
    const int len = rng.Uniform(150);
    std::string bytes;
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)DecodeTraceDumpRequest(bytes);
    (void)DecodeTraceDumpResponse(bytes, 0);
  }
}

TEST(WireBodyTest, FuzzBodyDecodersOnRandomBytes) {
  // Random byte soup must never crash a decoder (success is allowed —
  // short random strings can be valid encodings — but is rare).
  Rng rng(987654);
  for (int iter = 0; iter < 2000; ++iter) {
    const int len = rng.Uniform(120);
    std::string bytes;
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)DecodeHelloRequest(bytes);
    (void)DecodeAuthRequest(bytes);
    (void)DecodeAddSpecRequest(bytes);
    (void)DecodeAddExecutionRequest(bytes);
    (void)DecodeSearchRequest(bytes);
    (void)DecodeStructuralRequest(bytes);
    (void)DecodeLineageRequest(bytes);
    (void)DecodeSearchResponse(bytes, 0);
    (void)DecodeStructuralResponse(bytes, 0);
    (void)DecodeLineageResponse(bytes, 0);
    (void)DecodeStatusResponse(bytes, 0);
    size_t offset = 0;
    Status status;
    (void)ReadResponseStatus(bytes, &offset, &status);
  }
}

}  // namespace
}  // namespace wire
}  // namespace paw

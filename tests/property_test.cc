// Cross-layer property tests over many generated worlds: invariants
// that tie the workflow, provenance, privacy and query layers together.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "src/graph/transitive.h"
#include "src/privacy/data_privacy.h"
#include "src/query/keyword_search.h"
#include "src/query/zoom_out.h"
#include "src/repo/workload.h"
#include "src/workflow/serialize.h"
#include "src/workflow/validate.h"
#include "src/workflow/view.h"

namespace paw {
namespace {

WorkloadParams DeepParams() {
  WorkloadParams params;
  params.depth = 3;
  params.modules_per_workflow = 4;
  params.composite_prob = 0.5;
  return params;
}

class WorldProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorldProperty, SerializationRoundTripsGeneratedSpecs) {
  Rng rng(GetParam());
  auto spec = GenerateSpec(DeepParams(), &rng, "roundtrip");
  ASSERT_TRUE(spec.ok());
  std::string text = Serialize(spec.value());
  auto parsed = ParseSpecification(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(Serialize(parsed.value()), text);
  EXPECT_EQ(parsed.value().num_modules(), spec.value().num_modules());
  EXPECT_EQ(parsed.value().num_workflows(),
            spec.value().num_workflows());
  EXPECT_TRUE(ValidateSpecification(parsed.value()).ok());
}

TEST_P(WorldProperty, AccessPrefixesAreMonotoneInLevel) {
  Rng rng(GetParam() + 10);
  auto spec = GenerateSpec(DeepParams(), &rng, "monotone");
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  Prefix prev;
  for (AccessLevel level = 0; level <= 5; ++level) {
    Prefix cur = h.AccessPrefix(spec.value(), level);
    EXPECT_TRUE(h.IsValidPrefix(cur)) << "level " << level;
    if (level > 0) {
      EXPECT_TRUE(std::includes(cur.begin(), cur.end(), prev.begin(),
                                prev.end()))
          << "higher level lost workflows at level " << level;
    }
    prev = cur;
  }
}

TEST_P(WorldProperty, ViewVisibleAtomicsGrowWithPrefix) {
  // Expanding more workflows can only reveal more atomic modules
  // (composites swap for their contents; atomics never disappear).
  Rng rng(GetParam() + 20);
  auto spec = GenerateSpec(DeepParams(), &rng, "growth");
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  auto prefixes = h.EnumeratePrefixes();
  if (!prefixes.ok()) GTEST_SKIP();  // hierarchy too large
  for (const Prefix& p : prefixes.value()) {
    auto view = ExpandPrefix(spec.value(), h, p);
    ASSERT_TRUE(view.ok());
    std::set<int32_t> atomics;
    for (ModuleId m : view.value().visible_modules()) {
      if (spec.value().module(m).kind == ModuleKind::kAtomic) {
        atomics.insert(m.value());
      }
    }
    // Compare against every sub-prefix in the enumeration.
    for (const Prefix& q : prefixes.value()) {
      if (q.size() >= p.size() ||
          !std::includes(p.begin(), p.end(), q.begin(), q.end())) {
        continue;
      }
      auto sub = ExpandPrefix(spec.value(), h, q);
      ASSERT_TRUE(sub.ok());
      for (ModuleId m : sub.value().visible_modules()) {
        if (spec.value().module(m).kind == ModuleKind::kAtomic) {
          EXPECT_TRUE(atomics.count(m.value()))
              << "atomic " << spec.value().module(m).code
              << " vanished under a larger prefix";
        }
      }
    }
  }
}

TEST_P(WorldProperty, ViewReachabilityIsSoundForAtomics) {
  // If two atomic modules are connected in some prefix view, they are
  // connected in the full expansion (prefix views fabricate nothing).
  Rng rng(GetParam() + 30);
  auto spec = GenerateSpec(DeepParams(), &rng, "vsound");
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  auto prefixes = h.EnumeratePrefixes();
  if (!prefixes.ok()) GTEST_SKIP();
  auto full = FullExpansion(spec.value(), h);
  ASSERT_TRUE(full.ok());
  TransitiveClosure full_tc = TransitiveClosure::Compute(
      full.value().graph());
  for (const Prefix& p : prefixes.value()) {
    auto view = ExpandPrefix(spec.value(), h, p);
    ASSERT_TRUE(view.ok());
    TransitiveClosure view_tc =
        TransitiveClosure::Compute(view.value().graph());
    for (NodeIndex a = 0; a < view.value().num_visible(); ++a) {
      for (NodeIndex b = 0; b < view.value().num_visible(); ++b) {
        if (a == b || !view_tc.Reaches(a, b)) continue;
        ModuleId ma = view.value().visible(a);
        ModuleId mb = view.value().visible(b);
        if (spec.value().module(ma).kind != ModuleKind::kAtomic ||
            spec.value().module(mb).kind != ModuleKind::kAtomic) {
          continue;
        }
        auto fa = full.value().IndexOf(ma);
        auto fb = full.value().IndexOf(mb);
        ASSERT_TRUE(fa.ok());
        ASSERT_TRUE(fb.ok());
        EXPECT_TRUE(full_tc.Reaches(fa.value(), fb.value()))
            << spec.value().module(ma).code << " ~> "
            << spec.value().module(mb).code;
      }
    }
  }
}

TEST_P(WorldProperty, KeywordAnswersShrinkWithLowerLevels) {
  // Privacy monotonicity of search: every answer available at level L
  // is coverable at level L+1 too (more privilege never removes
  // answers; it may refine them).
  Rng rng(GetParam() + 40);
  WorkloadParams params = DeepParams();
  auto spec = GenerateSpec(params, &rng, "kwmono");
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  for (int trial = 0; trial < 5; ++trial) {
    auto terms = GenerateQuery(params, &rng, 2);
    bool coverable_low =
        !MinimalCoveringPrefixes(spec.value(), h, terms, 0)
             .value_or(std::vector<Prefix>{})
             .empty();
    bool coverable_high =
        !MinimalCoveringPrefixes(spec.value(), h, terms, 10)
             .value_or(std::vector<Prefix>{})
             .empty();
    if (coverable_low) {
      EXPECT_TRUE(coverable_high)
          << "answer disappeared with more privilege";
    }
  }
}

TEST_P(WorldProperty, ZoomOutNeverExpandsBeyondAccessView) {
  Rng rng(GetParam() + 50);
  WorkloadParams params = DeepParams();
  params.max_level = 3;
  auto spec = GenerateSpec(params, &rng, "zo");
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok());
  PolicySet policy;
  for (AccessLevel level = 0; level <= 3; ++level) {
    auto result = ZoomOutExecution(exec.value(), h, policy, level);
    ASSERT_TRUE(result.ok());
    Prefix access = h.AccessPrefix(spec.value(), level);
    EXPECT_TRUE(std::includes(access.begin(), access.end(),
                              result.value().final_prefix.begin(),
                              result.value().final_prefix.end()))
        << "zoom-out revealed workflows beyond the access view";
  }
}

TEST_P(WorldProperty, MaskingNeverLeaksAboveLevel) {
  Rng rng(GetParam() + 60);
  auto spec = GenerateSpec(DeepParams(), &rng, "mask");
  ASSERT_TRUE(spec.ok());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok());
  // Random policy over the labels that actually occur.
  DataPolicy policy;
  for (const DataItem& d : exec.value().items()) {
    if (rng.Bernoulli(0.5)) {
      policy.label_level[d.label] =
          static_cast<AccessLevel>(rng.Uniform(4));
    }
  }
  for (AccessLevel level = 0; level <= 3; ++level) {
    MaskingReport report = ComputeMasking(exec.value(), policy, level);
    for (const DataItem& d : exec.value().items()) {
      bool visible = report.visible[static_cast<size_t>(d.id.value())];
      EXPECT_EQ(visible, policy.LevelOf(d.label) <= level)
          << "item d" << d.id.value();
      std::string rendered =
          RenderValue(exec.value(), d.id, policy, level);
      if (!visible) {
        EXPECT_EQ(rendered, kMaskedValue);
      } else {
        EXPECT_EQ(rendered, d.value);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace paw

// The figure-reproduction test: asserts every machine-checkable fact the
// paper states about the disease-susceptibility example (Figs. 1-4).

#include "src/repo/disease.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/graph/algorithms.h"
#include "src/provenance/exec_view.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/view.h"

namespace paw {
namespace {

class DiseaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    spec_ = std::move(spec).value();
    h_ = ExpansionHierarchy::Build(spec_);
  }

  WorkflowId W(const std::string& code) {
    return spec_.FindWorkflow(code).value();
  }
  ModuleId M(const std::string& code) {
    return spec_.FindModule(code).value();
  }

  Specification spec_;
  ExpansionHierarchy h_;
};

// ---- Figure 1: the specification ----

TEST_F(DiseaseTest, Fig1ModuleInventory) {
  EXPECT_EQ(spec_.num_workflows(), 4);
  EXPECT_EQ(spec_.num_modules(), 17);  // I, O, M1..M15
  EXPECT_EQ(spec_.module(M("M1")).name, "Determine Genetic Susceptibility");
  EXPECT_EQ(spec_.module(M("M2")).name, "Evaluate Disorder Risk");
  EXPECT_EQ(spec_.module(M("M3")).name, "Expand SNP Set");
  EXPECT_EQ(spec_.module(M("M5")).name, "Generate Database Queries");
  EXPECT_EQ(spec_.module(M("M6")).name, "Query OMIM");
  EXPECT_EQ(spec_.module(M("M7")).name, "Query PubMed");
  EXPECT_EQ(spec_.module(M("M8")).name, "Combine Disorder Sets");
}

TEST_F(DiseaseTest, Fig1TauExpansions) {
  // "M1 is defined by the workflow W2, M2 by the workflow W3, and M4 by
  // the workflow W4."
  EXPECT_EQ(spec_.module(M("M1")).expansion, W("W2"));
  EXPECT_EQ(spec_.module(M("M2")).expansion, W("W3"));
  EXPECT_EQ(spec_.module(M("M4")).expansion, W("W4"));
}

TEST_F(DiseaseTest, Fig1EdgeLabels) {
  auto i_out = spec_.OutEdges(M("I"));
  ASSERT_EQ(i_out.size(), 2u);
  EXPECT_EQ(i_out[0]->labels,
            (std::vector<std::string>{"SNPs", "ethnicity"}));
  EXPECT_EQ(i_out[1]->labels,
            (std::vector<std::string>{"lifestyle", "family history",
                                      "physical symptoms"}));
  auto m2_out = spec_.OutEdges(M("M2"));
  ASSERT_EQ(m2_out.size(), 1u);
  EXPECT_EQ(m2_out[0]->labels, (std::vector<std::string>{"prognosis"}));
}

TEST_F(DiseaseTest, Sec3StructuralFactsOfW3) {
  // The four facts pinning W3's topology (see DESIGN.md):
  Specification::LocalGraph local = spec_.BuildLocalGraph(W("W3"));
  auto idx = [&](const std::string& code) {
    return local.module_to_local.at(M(code));
  };
  // 1. Direct edge M13 -> M11 exists.
  EXPECT_TRUE(local.graph.HasEdge(idx("M13"), idx("M11")));
  // 2. Deleting it removes the only M12 ~> M11 path.
  Digraph pruned = local.graph;
  ASSERT_TRUE(pruned.RemoveEdge(idx("M13"), idx("M11")).ok());
  EXPECT_TRUE(PathExists(local.graph, idx("M12"), idx("M11")));
  EXPECT_FALSE(PathExists(pruned, idx("M12"), idx("M11")));
  // 3/4. No real M10 ~> M14 path, but edges M10 -> M11 and M13 -> M14
  // exist so clustering {M11, M13} would fabricate one.
  EXPECT_FALSE(PathExists(local.graph, idx("M10"), idx("M14")));
  EXPECT_TRUE(local.graph.HasEdge(idx("M10"), idx("M11")));
  EXPECT_TRUE(local.graph.HasEdge(idx("M13"), idx("M14")));
}

// ---- Figure 3: the expansion hierarchy (shape asserted in
// hierarchy_test; here only the root) ----

TEST_F(DiseaseTest, Fig3Root) { EXPECT_EQ(h_.root(), W("W1")); }

// ---- Figure 4: the execution ----

class DiseaseExecutionTest : public DiseaseTest {
 protected:
  void SetUp() override {
    DiseaseTest::SetUp();
    auto exec = RunDiseaseExecution(spec_);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    exec_ = std::make_unique<Execution>(std::move(exec).value());
  }

  /// The activation node with process id s (begin node for composites).
  ExecNodeId S(int s) { return exec_->FindByProcess(s).value(); }

  std::unique_ptr<Execution> exec_;
};

TEST_F(DiseaseExecutionTest, Fig4ProcessIdsExactly) {
  // The paper's process ids: S1=M1, S2=M3, S3=M4, S4=M5, S5=M6, S6=M7,
  // S7=M8, S8=M2, S9=M9, S10=M12, S11=M13, S12=M14, S13=M10, S14=M11,
  // S15=M15.
  const std::vector<std::pair<int, std::string>> expected{
      {1, "M1"},  {2, "M3"},  {3, "M4"},  {4, "M5"},  {5, "M6"},
      {6, "M7"},  {7, "M8"},  {8, "M2"},  {9, "M9"},  {10, "M12"},
      {11, "M13"}, {12, "M14"}, {13, "M10"}, {14, "M11"}, {15, "M15"}};
  for (const auto& [s, code] : expected) {
    ExecNodeId n = S(s);
    EXPECT_EQ(spec_.module(exec_->node(n).module).code, code)
        << "process S" << s;
  }
  // No S16.
  EXPECT_FALSE(exec_->FindByProcess(16).ok());
}

TEST_F(DiseaseExecutionTest, Fig4NodeAndItemCounts) {
  // I, O, 12 atomic activations, 3 composite begin/end pairs = 20 nodes.
  EXPECT_EQ(exec_->num_nodes(), 20);
  // Data items d0..d19.
  EXPECT_EQ(exec_->num_items(), 20);
}

TEST_F(DiseaseExecutionTest, Fig4BeginEndPairsForComposites) {
  int begins = 0;
  int ends = 0;
  for (const ExecNode& n : exec_->nodes()) {
    if (n.kind == ExecNodeKind::kBegin) ++begins;
    if (n.kind == ExecNodeKind::kEnd) ++ends;
  }
  EXPECT_EQ(begins, 3);  // M1, M4, M2
  EXPECT_EQ(ends, 3);
  EXPECT_EQ(exec_->NodeLabel(S(1)), "S1:M1 begin");
  EXPECT_EQ(exec_->NodeLabel(S(4)), "S4:M5");
}

TEST_F(DiseaseExecutionTest, Fig4CanonicalItemIds) {
  // d0,d1 = SNPs, ethnicity produced by I.
  EXPECT_EQ(exec_->item(DataItemId(0)).label, "SNPs");
  EXPECT_EQ(exec_->item(DataItemId(1)).label, "ethnicity");
  // d2,d3,d4 = lifestyle, family history, physical symptoms.
  EXPECT_EQ(exec_->item(DataItemId(2)).label, "lifestyle");
  EXPECT_EQ(exec_->item(DataItemId(3)).label, "family history");
  EXPECT_EQ(exec_->item(DataItemId(4)).label, "physical symptoms");
  // d5 = the expanded SNP set produced by M3 (S2).
  EXPECT_EQ(exec_->item(DataItemId(5)).label, "SNPs");
  EXPECT_EQ(exec_->item(DataItemId(5)).producer, S(2));
  // d10 = combined disorders produced by M8 (S7).
  EXPECT_EQ(exec_->item(DataItemId(10)).label, "disorders");
  EXPECT_EQ(exec_->item(DataItemId(10)).producer, S(7));
  // d19 = the prognosis produced by M15 (S15).
  EXPECT_EQ(exec_->item(DataItemId(19)).label, "prognosis");
  EXPECT_EQ(exec_->item(DataItemId(19)).producer, S(15));
}

TEST_F(DiseaseExecutionTest, Fig4DataForwardingThroughBeginEnd) {
  // d10 flows M8 -> M4.end -> M1.end -> M2.begin (three hops in Fig. 4).
  ExecNodeId m8 = S(7);
  // Locate the end nodes by process id + kind.
  ExecNodeId m4_end, m1_end, m2_begin;
  for (const ExecNode& n : exec_->nodes()) {
    if (n.kind == ExecNodeKind::kEnd && n.process_id == 3) m4_end = n.id;
    if (n.kind == ExecNodeKind::kEnd && n.process_id == 1) m1_end = n.id;
    if (n.kind == ExecNodeKind::kBegin && n.process_id == 8) {
      m2_begin = n.id;
    }
  }
  ASSERT_TRUE(m4_end.valid());
  ASSERT_TRUE(m1_end.valid());
  ASSERT_TRUE(m2_begin.valid());
  DataItemId d10(10);
  auto on = [&](ExecNodeId a, ExecNodeId b) {
    const auto& items = exec_->ItemsOn(a, b);
    return std::find(items.begin(), items.end(), d10) != items.end();
  };
  EXPECT_TRUE(on(m8, m4_end));
  EXPECT_TRUE(on(m4_end, m1_end));
  EXPECT_TRUE(on(m1_end, m2_begin));
}

TEST_F(DiseaseExecutionTest, Fig4InputFeedIntoM9) {
  // Fig. 4 annotates the edge into M9 with {d2, d3, d4, d10}.
  ExecNodeId m9 = S(9);
  ExecNodeId m2_begin;
  for (const ExecNode& n : exec_->nodes()) {
    if (n.kind == ExecNodeKind::kBegin && n.process_id == 8) {
      m2_begin = n.id;
    }
  }
  ASSERT_TRUE(m2_begin.valid());
  const auto& items = exec_->ItemsOn(m2_begin, m9);
  std::vector<int32_t> ids;
  for (DataItemId d : items) ids.push_back(d.value());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int32_t>{2, 3, 4, 10}));
}

TEST_F(DiseaseExecutionTest, Fig4OutputReceivesD19) {
  ExecNodeId out;
  for (const ExecNode& n : exec_->nodes()) {
    if (n.kind == ExecNodeKind::kOutput) out = n.id;
  }
  ASSERT_TRUE(out.valid());
  ASSERT_EQ(exec_->graph().InDegree(out.value()), 1u);
  NodeIndex from = exec_->graph().InNeighbors(out.value())[0];
  const auto& items = exec_->ItemsOn(ExecNodeId(from), out);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value(), 19);
}

TEST_F(DiseaseExecutionTest, SimulatedValuesAreMeaningful) {
  // The toy functions thread values end-to-end: the prognosis mentions
  // both literature summaries and private notes.
  const DataItem& prognosis = exec_->item(DataItemId(19));
  EXPECT_NE(prognosis.value.find("risk{"), std::string::npos);
  EXPECT_NE(prognosis.value.find("summary{"), std::string::npos);
  EXPECT_NE(prognosis.value.find("updated{"), std::string::npos);
  // d5 expands the raw SNPs.
  EXPECT_EQ(exec_->item(DataItemId(5)).value,
            "expanded(rs429358,rs7412)");
}

// ---- Figure 2: the provenance view under prefix {W1} ----

TEST_F(DiseaseExecutionTest, Fig2ViewUnderRootPrefix) {
  auto view = CollapseExecution(*exec_, h_, {W("W1")});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // Fig. 2: I, S1:M1, S8:M2, O.
  ASSERT_EQ(view.value().num_nodes(), 4);
  std::vector<std::string> labels;
  for (NodeIndex i = 0; i < view.value().num_nodes(); ++i) {
    labels.push_back(view.value().NodeLabel(i));
  }
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels,
            (std::vector<std::string>{"I", "O", "S1:M1", "S8:M2"}));
  EXPECT_EQ(view.value().graph().num_edges(), 4);
}

TEST_F(DiseaseExecutionTest, Fig2EdgeItems) {
  auto view = CollapseExecution(*exec_, h_, {W("W1")});
  ASSERT_TRUE(view.ok());
  const ExecView& v = view.value();
  auto find_node = [&](const std::string& label) {
    for (NodeIndex i = 0; i < v.num_nodes(); ++i) {
      if (v.NodeLabel(i) == label) return i;
    }
    return NodeIndex(-1);
  };
  NodeIndex i_node = find_node("I");
  NodeIndex m1 = find_node("S1:M1");
  NodeIndex m2 = find_node("S8:M2");
  NodeIndex o = find_node("O");
  ASSERT_GE(i_node, 0);
  ASSERT_GE(m1, 0);
  ASSERT_GE(m2, 0);
  ASSERT_GE(o, 0);
  auto ids = [&](NodeIndex a, NodeIndex b) {
    std::vector<int32_t> out;
    for (DataItemId d : v.ItemsOn(a, b)) out.push_back(d.value());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(ids(i_node, m1), (std::vector<int32_t>{0, 1}));      // d0,d1
  EXPECT_EQ(ids(i_node, m2), (std::vector<int32_t>{2, 3, 4}));   // d2-d4
  EXPECT_EQ(ids(m1, m2), (std::vector<int32_t>{10}));            // d10
  EXPECT_EQ(ids(m2, o), (std::vector<int32_t>{19}));             // d19
  EXPECT_TRUE(v.node(m1).collapsed);
  EXPECT_FALSE(v.node(i_node).collapsed);
}

TEST_F(DiseaseExecutionTest, PolicyValidates) {
  PolicySet policy = DiseasePolicy();
  EXPECT_TRUE(ValidatePolicy(spec_, policy).ok());
}

}  // namespace
}  // namespace paw

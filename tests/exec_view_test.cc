// Tests for execution views beyond the Fig. 2 case covered in
// disease_test: intermediate prefixes, full prefix, item unions.

#include "src/provenance/exec_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/graph/algorithms.h"
#include "src/repo/disease.h"

namespace paw {
namespace {

class ExecViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<Specification>(std::move(spec).value());
    h_ = ExpansionHierarchy::Build(*spec_);
    auto exec = RunDiseaseExecution(*spec_);
    ASSERT_TRUE(exec.ok());
    exec_ = std::make_unique<Execution>(std::move(exec).value());
  }

  WorkflowId W(const std::string& code) {
    return spec_->FindWorkflow(code).value();
  }

  std::vector<std::string> Labels(const ExecView& v) {
    std::vector<std::string> out;
    for (NodeIndex i = 0; i < v.num_nodes(); ++i) {
      out.push_back(v.NodeLabel(i));
    }
    return out;
  }

  std::unique_ptr<Specification> spec_;
  ExpansionHierarchy h_;
  std::unique_ptr<Execution> exec_;
};

TEST_F(ExecViewTest, FullPrefixShowsEverything) {
  auto view = CollapseExecution(*exec_, h_, h_.FullPrefix());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().num_nodes(), exec_->num_nodes());
  for (NodeIndex i = 0; i < view.value().num_nodes(); ++i) {
    EXPECT_FALSE(view.value().node(i).collapsed);
  }
}

TEST_F(ExecViewTest, PrefixW1W2CollapsesM4AndM2) {
  auto view = CollapseExecution(*exec_, h_, {W("W1"), W("W2")});
  ASSERT_TRUE(view.ok());
  // Visible: I, O, M1 begin/end, S2:M3, S3:M4 (collapsed), S8:M2
  // (collapsed) = 7 nodes.
  EXPECT_EQ(view.value().num_nodes(), 7);
  auto labels = Labels(view.value());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "S3:M4"),
            labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "S8:M2"),
            labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "S1:M1 begin"),
            labels.end());
  // No W4 internals visible.
  EXPECT_EQ(std::find(labels.begin(), labels.end(), "S4:M5"),
            labels.end());
}

TEST_F(ExecViewTest, CollapsedNodeAbsorbsBoundaryItems) {
  auto view = CollapseExecution(*exec_, h_, {W("W1"), W("W2")});
  ASSERT_TRUE(view.ok());
  const ExecView& v = view.value();
  NodeIndex m3 = -1, m4 = -1;
  for (NodeIndex i = 0; i < v.num_nodes(); ++i) {
    if (v.NodeLabel(i) == "S2:M3") m3 = i;
    if (v.NodeLabel(i) == "S3:M4") m4 = i;
  }
  ASSERT_GE(m3, 0);
  ASSERT_GE(m4, 0);
  // d5 flows M3 -> collapsed M4.
  const auto& items = v.ItemsOn(m3, m4);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value(), 5);
  EXPECT_TRUE(v.node(m4).collapsed);
  EXPECT_EQ(v.node(m4).process_id, 3);
}

TEST_F(ExecViewTest, ViewNodeOfMapsInternals) {
  auto view = CollapseExecution(*exec_, h_, {W("W1")});
  ASSERT_TRUE(view.ok());
  // M5's activation (S4) maps into the collapsed M1 supernode (S1).
  ExecNodeId m5 = exec_->FindByProcess(4).value();
  auto vn = view.value().ViewNodeOf(m5);
  ASSERT_TRUE(vn.ok());
  EXPECT_EQ(view.value().NodeLabel(vn.value()), "S1:M1");
  EXPECT_TRUE(view.value().node(vn.value()).collapsed);
}

TEST_F(ExecViewTest, NoSelfEdgesAfterCollapse) {
  auto prefixes = h_.EnumeratePrefixes();
  ASSERT_TRUE(prefixes.ok());
  for (const Prefix& p : prefixes.value()) {
    auto view = CollapseExecution(*exec_, h_, p);
    ASSERT_TRUE(view.ok());
    for (const auto& [u, v] : view.value().graph().Edges()) {
      EXPECT_NE(u, v);
    }
    EXPECT_TRUE(IsAcyclic(view.value().graph()));
  }
}

TEST_F(ExecViewTest, InvalidPrefixRejected) {
  EXPECT_FALSE(CollapseExecution(*exec_, h_, {W("W2")}).ok());
}

TEST_F(ExecViewTest, DotRendering) {
  auto view = CollapseExecution(*exec_, h_, {W("W1")});
  ASSERT_TRUE(view.ok());
  std::string dot = view.value().ToDot("fig2");
  EXPECT_NE(dot.find("digraph fig2"), std::string::npos);
  EXPECT_NE(dot.find("S1:M1"), std::string::npos);
  EXPECT_NE(dot.find("d19"), std::string::npos);
}

}  // namespace
}  // namespace paw

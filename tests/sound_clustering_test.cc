// Tests for sound-by-construction private clustering.

#include "src/privacy/sound_clustering.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/random.h"
#include "src/graph/transitive.h"
#include "src/privacy/soundness.h"
#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

struct W3 {
  Digraph graph;
  std::map<std::string, NodeIndex> idx;
  static W3 Build() {
    auto spec = BuildDiseaseSpec();
    EXPECT_TRUE(spec.ok());
    auto local = spec.value().BuildLocalGraph(
        spec.value().FindWorkflow("W3").value());
    W3 f;
    f.graph = local.graph;
    for (const auto& [mid, index] : local.module_to_local) {
      f.idx[spec.value().module(mid).code] = index;
    }
    return f;
  }
};

TEST(PathIntervalTest, ChainInterval) {
  Digraph g(5);
  for (int i = 0; i + 1 < 5; ++i) ASSERT_TRUE(g.AddEdge(i, i + 1).ok());
  EXPECT_EQ(PathInterval(g, 1, 3), (std::vector<NodeIndex>{1, 2, 3}));
  EXPECT_EQ(PathInterval(g, 0, 4),
            (std::vector<NodeIndex>{0, 1, 2, 3, 4}));
}

TEST(PathIntervalTest, UnreachablePairIsJustEndpoints) {
  Digraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  EXPECT_EQ(PathInterval(g, 1, 2), (std::vector<NodeIndex>{1, 2}));
}

TEST(PathIntervalTest, DiamondIncludesBothBranches) {
  Digraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  EXPECT_EQ(PathInterval(g, 0, 3), (std::vector<NodeIndex>{0, 1, 2, 3}));
}

TEST(SoundClusteringTest, PaperPairYieldsSoundHiding) {
  W3 f = W3::Build();
  auto result =
      HideBySoundClustering(f.graph, {{f.idx["M13"], f.idx["M11"]}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().metrics.Sound());
  EXPECT_EQ(result.value().metrics.hidden_sensitive, 1);
  // The pair sits in one cluster.
  EXPECT_EQ(result.value().group_of[size_t(f.idx["M13"])],
            result.value().group_of[size_t(f.idx["M11"])]);
  // Double-check soundness independently.
  auto report = CheckSoundness(f.graph, result.value().group_of,
                               result.value().num_groups);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().sound);
}

TEST(SoundClusteringTest, RejectsBadPairs) {
  Digraph g(3);
  EXPECT_FALSE(HideBySoundClustering(g, {{0, 0}}).ok());
  EXPECT_FALSE(HideBySoundClustering(g, {{0, 7}}).ok());
}

TEST(SoundClusteringTest, NoPairsIsIdentity) {
  W3 f = W3::Build();
  auto result = HideBySoundClustering(f.graph, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_groups, f.graph.num_nodes());
  EXPECT_TRUE(result.value().metrics.Sound());
  EXPECT_EQ(result.value().metrics.preserved_pairs,
            result.value().metrics.original_pairs);
}

// Property sweep: on random DAGs the mechanism always ends sound and
// always hides every requested pair — the guarantee naive clustering
// lacks.
class SoundClusteringSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundClusteringSweep, AlwaysSoundAlwaysPrivate) {
  Rng rng(GetParam());
  Digraph g = RandomLayeredDag(&rng, 4, 5, 0.35);
  TransitiveClosure tc = TransitiveClosure::Compute(g);
  std::vector<SensitivePair> pairs;
  for (NodeIndex u = 0; u < g.num_nodes() && pairs.size() < 2; ++u) {
    for (NodeIndex v = u + 1; v < g.num_nodes() && pairs.size() < 2; ++v) {
      if (tc.Reaches(u, v)) pairs.push_back({u, v});
    }
  }
  if (pairs.empty()) GTEST_SKIP();
  auto result = HideBySoundClustering(g, pairs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().metrics.Sound());
  EXPECT_EQ(result.value().metrics.hidden_sensitive,
            static_cast<int>(pairs.size()));
  // Strictly better soundness than naive clustering at equal privacy.
  auto naive = HideByClustering(g, pairs);
  ASSERT_TRUE(naive.ok());
  EXPECT_LE(result.value().metrics.extraneous_pairs,
            naive.value().metrics.extraneous_pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundClusteringSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace paw

// Tests for the core digraph container.

#include "src/graph/digraph.h"

#include <gtest/gtest.h>

namespace paw {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_FALSE(g.IsValidNode(0));
}

TEST(DigraphTest, AddNodesAndEdges) {
  Digraph g(3);
  EXPECT_EQ(g.num_nodes(), 3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(2), 1u);
}

TEST(DigraphTest, AddNodeGrows) {
  Digraph g;
  NodeIndex a = g.AddNode();
  NodeIndex b = g.AddNode();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_TRUE(g.AddEdge(a, b).ok());
}

TEST(DigraphTest, RejectsSelfLoop) {
  Digraph g(2);
  EXPECT_TRUE(g.AddEdge(0, 0).IsInvalidArgument());
}

TEST(DigraphTest, RejectsOutOfRange) {
  Digraph g(2);
  EXPECT_TRUE(g.AddEdge(0, 5).IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(-1, 0).IsInvalidArgument());
}

TEST(DigraphTest, RejectsDuplicateEdge) {
  Digraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.AddEdge(0, 1).IsAlreadyExists());
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(DigraphTest, RemoveEdge) {
  Digraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 1).ok());
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.RemoveEdge(0, 1).IsNotFound());
}

TEST(DigraphTest, AdjacencyPreservesInsertionOrder) {
  Digraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_EQ(g.OutNeighbors(0), (std::vector<NodeIndex>{3, 1, 2}));
}

TEST(DigraphTest, EdgesEnumeration) {
  Digraph g(3);
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  // Grouped by source node index.
  EXPECT_EQ(edges[0], std::make_pair(NodeIndex(0), NodeIndex(1)));
  EXPECT_EQ(edges[1], std::make_pair(NodeIndex(2), NodeIndex(0)));
}

TEST(DigraphTest, ResizeNeverShrinks) {
  Digraph g(5);
  g.Resize(3);
  EXPECT_EQ(g.num_nodes(), 5);
  g.Resize(8);
  EXPECT_EQ(g.num_nodes(), 8);
}

}  // namespace
}  // namespace paw

// Tests for the worker pool behind shard-parallel recovery/compaction.

#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace paw {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // no Wait(): shutdown must still run everything
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(97);
    ParallelFor(threads, 97, [&hits](int i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int i = 0; i < 97; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForTest, SerialModeRunsInIndexOrder) {
  std::vector<int> order;
  ParallelFor(1, 10, [&order](int i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ParallelForTest, HandlesZeroAndMoreThreadsThanWork) {
  ParallelFor(4, 0, [](int) { FAIL() << "no work expected"; });
  std::atomic<int> counter{0};
  ParallelFor(16, 2, [&counter](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace paw

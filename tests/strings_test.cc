// Tests for string utilities (tokenization feeds the keyword index).

#include "src/common/strings.h"

#include <gtest/gtest.h>

namespace paw {
namespace {

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Query OMIM"), "query omim");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii("123-ABC"), "123-abc");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a;b;;c", ';'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ';'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ';'), (std::vector<std::string>{"solo"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, TokenizeSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("Determine Genetic Susceptibility"),
            (std::vector<std::string>{"determine", "genetic",
                                      "susceptibility"}));
  EXPECT_EQ(Tokenize("Query-OMIM (v2)"),
            (std::vector<std::string>{"query", "omim", "v2"}));
  EXPECT_TRUE(Tokenize("---").empty());
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("Disorder Risks", "disorder"));
  EXPECT_TRUE(ContainsIgnoreCase("Disorder Risks", "RISK"));
  EXPECT_FALSE(ContainsIgnoreCase("Disorder", "database"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringsTest, TokensContainPhrase) {
  std::vector<std::string> bag = Tokenize("Evaluate Disorder Risk");
  EXPECT_TRUE(TokensContainPhrase(bag, "disorder risk"));
  EXPECT_TRUE(TokensContainPhrase(bag, "RISK disorder"));  // order-free
  EXPECT_TRUE(TokensContainPhrase(bag, "evaluate"));
  EXPECT_FALSE(TokensContainPhrase(bag, "disorder database"));
  EXPECT_TRUE(TokensContainPhrase(bag, ""));  // empty phrase is trivial
}

TEST(FieldsTest, QuoteFieldEscapes) {
  EXPECT_EQ(QuoteField("plain"), "\"plain\"");
  EXPECT_EQ(QuoteField("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(QuoteField("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(QuoteField(""), "\"\"");
}

TEST(FieldsTest, SplitFieldsBasics) {
  auto f = SplitFields("alpha beta\tgamma");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value(),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST(FieldsTest, SplitFieldsQuoted) {
  auto f = SplitFields("module M1 \"a name with spaces\" key=\"v w\"");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value(),
            (std::vector<std::string>{"module", "M1",
                                      "a name with spaces", "key=v w"}));
}

TEST(FieldsTest, SplitFieldsRejectsUnterminatedQuote) {
  EXPECT_FALSE(SplitFields("oops \"no closing").ok());
}

TEST(FieldsTest, KeyValueFieldMatches) {
  std::string v;
  EXPECT_TRUE(KeyValueField("level=3", "level", &v));
  EXPECT_EQ(v, "3");
  EXPECT_FALSE(KeyValueField("level=3", "leve", &v));
  EXPECT_FALSE(KeyValueField("level", "level", &v));
  // `key=` is a present-but-empty value (items can have value "").
  v = "sentinel";
  EXPECT_TRUE(KeyValueField("level=", "level", &v));
  EXPECT_EQ(v, "");
}

TEST(FieldsTest, QuoteEdgedValueRoundTrips) {
  // A *data* value that itself begins and ends with a double quote
  // must survive serialize -> split -> key=value extraction unchanged
  // (regression: an extra unquoting layer used to strip it to `x`).
  const std::string data = "\"x\"";
  const std::string line = "item value=" + QuoteField(data);
  auto f = SplitFields(line);
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f.value().size(), 2u);
  std::string v;
  ASSERT_TRUE(KeyValueField(f.value()[1], "value", &v));
  EXPECT_EQ(v, data);
}

}  // namespace
}  // namespace paw

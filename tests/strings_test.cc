// Tests for string utilities (tokenization feeds the keyword index).

#include "src/common/strings.h"

#include <gtest/gtest.h>

namespace paw {
namespace {

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Query OMIM"), "query omim");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii("123-ABC"), "123-abc");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a;b;;c", ';'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ';'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ';'), (std::vector<std::string>{"solo"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, TokenizeSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("Determine Genetic Susceptibility"),
            (std::vector<std::string>{"determine", "genetic",
                                      "susceptibility"}));
  EXPECT_EQ(Tokenize("Query-OMIM (v2)"),
            (std::vector<std::string>{"query", "omim", "v2"}));
  EXPECT_TRUE(Tokenize("---").empty());
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("Disorder Risks", "disorder"));
  EXPECT_TRUE(ContainsIgnoreCase("Disorder Risks", "RISK"));
  EXPECT_FALSE(ContainsIgnoreCase("Disorder", "database"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringsTest, TokensContainPhrase) {
  std::vector<std::string> bag = Tokenize("Evaluate Disorder Risk");
  EXPECT_TRUE(TokensContainPhrase(bag, "disorder risk"));
  EXPECT_TRUE(TokensContainPhrase(bag, "RISK disorder"));  // order-free
  EXPECT_TRUE(TokensContainPhrase(bag, "evaluate"));
  EXPECT_FALSE(TokensContainPhrase(bag, "disorder database"));
  EXPECT_TRUE(TokensContainPhrase(bag, ""));  // empty phrase is trivial
}

}  // namespace
}  // namespace paw

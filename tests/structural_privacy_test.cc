// Tests for structural privacy: edge deletion vs clustering, on both the
// paper's W3 example and random DAGs.

#include "src/privacy/structural_privacy.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/random.h"
#include "src/graph/transitive.h"
#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

/// W3's local graph with the module->index map, as in Sec. 3.
struct W3Fixture {
  Digraph graph;
  std::map<std::string, NodeIndex> idx;

  static W3Fixture Build() {
    auto spec = BuildDiseaseSpec();
    EXPECT_TRUE(spec.ok());
    WorkflowId w3 = spec.value().FindWorkflow("W3").value();
    auto local = spec.value().BuildLocalGraph(w3);
    W3Fixture f;
    f.graph = local.graph;
    for (const auto& [mid, index] : local.module_to_local) {
      f.idx[spec.value().module(mid).code] = index;
    }
    return f;
  }
};

TEST(EdgeDeletionTest, PaperExampleDeletesM13M11) {
  W3Fixture f = W3Fixture::Build();
  // Hide that M13 contributes to M11 ("delete the edge M13 -> M11").
  auto result = HideByEdgeDeletion(
      f.graph, {{f.idx["M13"], f.idx["M11"]}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().deleted.size(), 1u);
  EXPECT_EQ(result.value().deleted[0],
            std::make_pair(f.idx["M13"], f.idx["M11"]));
  EXPECT_EQ(result.value().metrics.hidden_sensitive, 1);
  EXPECT_TRUE(result.value().metrics.Sound());
  // Collateral damage the paper predicts: the M12 ~> M11 path is gone.
  EXPECT_FALSE(
      PathExists(result.value().published, f.idx["M12"], f.idx["M11"]));
  // preserved < original (information was lost beyond the target pair).
  EXPECT_LT(result.value().metrics.preserved_pairs,
            result.value().metrics.original_pairs);
}

TEST(ClusteringTest, PaperExampleClusterM11M13IsUnsound) {
  W3Fixture f = W3Fixture::Build();
  auto result =
      HideByClustering(f.graph, {{f.idx["M13"], f.idx["M11"]}});
  ASSERT_TRUE(result.ok());
  // The pair is hidden (same cluster) ...
  EXPECT_EQ(result.value().metrics.hidden_sensitive, 1);
  EXPECT_EQ(result.value().group_of[size_t(f.idx["M13"])],
            result.value().group_of[size_t(f.idx["M11"])]);
  // ... but the view fabricates M10 ~> M14 (the paper's example).
  EXPECT_FALSE(result.value().metrics.Sound());
  NodeIndex g10 = result.value().group_of[size_t(f.idx["M10"])];
  NodeIndex g14 = result.value().group_of[size_t(f.idx["M14"])];
  TransitiveClosure quot =
      TransitiveClosure::Compute(result.value().quotient.graph);
  EXPECT_TRUE(quot.Reaches(g10, g14));
  EXPECT_FALSE(PathExists(f.graph, f.idx["M10"], f.idx["M14"]));
}

TEST(ClusteringTest, MechanismTradeOffOnPaperExample) {
  // The fundamental trade-off on the paper's example: deletion stays
  // sound but destroys true reachability; clustering fabricates paths
  // but never destroys a true fact among the nodes that stay visible.
  W3Fixture f = W3Fixture::Build();
  std::vector<SensitivePair> pairs{{f.idx["M13"], f.idx["M11"]}};
  auto del = HideByEdgeDeletion(f.graph, pairs);
  auto clu = HideByClustering(f.graph, pairs);
  ASSERT_TRUE(del.ok());
  ASSERT_TRUE(clu.ok());
  // Deletion: sound, but truth was lost.
  EXPECT_EQ(del.value().metrics.extraneous_pairs, 0);
  EXPECT_LT(del.value().metrics.preserved_pairs,
            del.value().metrics.original_pairs);
  // Clustering: unsound, but every true pair among visible nodes
  // survives. Count those pairs directly.
  EXPECT_GT(clu.value().metrics.extraneous_pairs, 0);
  TransitiveClosure tc = TransitiveClosure::Compute(f.graph);
  std::vector<size_t> cluster_size(
      static_cast<size_t>(clu.value().num_groups), 0);
  for (NodeIndex u = 0; u < f.graph.num_nodes(); ++u) {
    ++cluster_size[static_cast<size_t>(
        clu.value().group_of[static_cast<size_t>(u)])];
  }
  int64_t visible_true_pairs = 0;
  for (NodeIndex a = 0; a < f.graph.num_nodes(); ++a) {
    for (NodeIndex b = 0; b < f.graph.num_nodes(); ++b) {
      if (a == b || !tc.Reaches(a, b)) continue;
      bool va = cluster_size[static_cast<size_t>(
                    clu.value().group_of[static_cast<size_t>(a)])] == 1;
      bool vb = cluster_size[static_cast<size_t>(
                    clu.value().group_of[static_cast<size_t>(b)])] == 1;
      if (va && vb) ++visible_true_pairs;
    }
  }
  EXPECT_EQ(clu.value().metrics.preserved_pairs, visible_true_pairs);
}

TEST(EdgeDeletionTest, AlreadyUnreachablePairCostsNothing) {
  W3Fixture f = W3Fixture::Build();
  auto result = HideByEdgeDeletion(
      f.graph, {{f.idx["M10"], f.idx["M14"]}});  // no such path
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().deleted.empty());
  EXPECT_EQ(result.value().metrics.hidden_sensitive, 1);
  EXPECT_EQ(result.value().metrics.preserved_pairs,
            result.value().metrics.original_pairs);
}

TEST(EdgeDeletionTest, MultiplePairsAllHidden) {
  Rng rng(11);
  Digraph g = RandomLayeredDag(&rng, 5, 4, 0.4);
  std::vector<SensitivePair> pairs{{0, 19}, {1, 18}, {2, 17}};
  auto result = HideByEdgeDeletion(g, pairs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().metrics.hidden_sensitive, 3);
  for (const SensitivePair& p : pairs) {
    EXPECT_FALSE(PathExists(result.value().published, p.src, p.dst));
  }
}

TEST(ClusteringTest, OverlappingPairsMergeTransitively) {
  Digraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  auto result = HideByClustering(g, {{0, 1}, {1, 2}});
  ASSERT_TRUE(result.ok());
  // 0, 1, 2 end up in one cluster.
  EXPECT_EQ(result.value().group_of[0], result.value().group_of[1]);
  EXPECT_EQ(result.value().group_of[1], result.value().group_of[2]);
  EXPECT_EQ(result.value().num_groups, 3);
  EXPECT_EQ(result.value().metrics.mechanism_size, 1);
}

TEST(StructuralPrivacyTest, RejectsBadPairs) {
  Digraph g(3);
  EXPECT_FALSE(HideByEdgeDeletion(g, {{0, 0}}).ok());
  EXPECT_FALSE(HideByEdgeDeletion(g, {{0, 9}}).ok());
  EXPECT_FALSE(HideByClustering(g, {{-1, 1}}).ok());
}

TEST(StructuralPrivacyTest, MetricsUtilityBounds) {
  Rng rng(5);
  Digraph g = RandomDag(&rng, 25, 0.15);
  auto result = HideByEdgeDeletion(g, {{0, 24}});
  ASSERT_TRUE(result.ok());
  double u = result.value().metrics.Utility();
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
}

// Property sweep over random DAGs: both mechanisms always hide every
// requested pair; deletion is always sound; clustering hides by
// construction.
class MechanismSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MechanismSweep, BothMechanismsHideAllPairs) {
  Rng rng(GetParam());
  Digraph g = RandomLayeredDag(&rng, 4, 5, 0.35);
  // Pick reachable pairs to make the task non-trivial.
  TransitiveClosure tc = TransitiveClosure::Compute(g);
  std::vector<SensitivePair> pairs;
  for (NodeIndex u = 0; u < g.num_nodes() && pairs.size() < 3; ++u) {
    for (NodeIndex v = u + 1; v < g.num_nodes() && pairs.size() < 3; ++v) {
      if (tc.Reaches(u, v) && !g.HasEdge(u, v)) pairs.push_back({u, v});
    }
  }
  if (pairs.empty()) GTEST_SKIP();

  auto del = HideByEdgeDeletion(g, pairs);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().metrics.hidden_sensitive,
            static_cast<int>(pairs.size()));
  EXPECT_EQ(del.value().metrics.extraneous_pairs, 0);

  auto clu = HideByClustering(g, pairs);
  ASSERT_TRUE(clu.ok());
  EXPECT_EQ(clu.value().metrics.hidden_sensitive,
            static_cast<int>(pairs.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MechanismSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace paw

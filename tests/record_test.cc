// Tests for the store record format and CRC32, including seeded-random
// round-trip properties over arbitrary binary payloads.

#include "src/store/record.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/random.h"

namespace paw {
namespace {

TEST(Crc32Test, KnownCheckValue) {
  // The standard CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = 0;
  for (char c : data) crc = Crc32Update(crc, &c, 1);
  EXPECT_EQ(crc, Crc32(data));
  // Chunked at an unaligned boundary too.
  uint32_t chunked = Crc32Update(0, data.data(), 7);
  chunked = Crc32Update(chunked, data.data() + 7, data.size() - 7);
  EXPECT_EQ(chunked, Crc32(data));
}

TEST(RecordTest, FixedWidthRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  size_t pos = 0;
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(GetFixed32(buf, &pos, &v32));
  ASSERT_TRUE(GetFixed64(buf, &pos, &v64));
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_EQ(pos, buf.size());
  EXPECT_FALSE(GetFixed32(buf, &pos, &v32));
}

TEST(RecordTest, RoundTripMultipleRecords) {
  std::string buf;
  AppendRecord(RecordType::kSpec, "first payload", &buf);
  AppendRecord(RecordType::kExecution, "", &buf);
  AppendRecord(RecordType::kSpec, std::string(10000, 'x'), &buf);

  RecordReader reader(buf);
  Record r;
  ASSERT_EQ(reader.Next(&r), ReadOutcome::kRecord);
  EXPECT_EQ(r.type, RecordType::kSpec);
  EXPECT_EQ(r.payload, "first payload");
  ASSERT_EQ(reader.Next(&r), ReadOutcome::kRecord);
  EXPECT_EQ(r.type, RecordType::kExecution);
  EXPECT_EQ(r.payload, "");
  ASSERT_EQ(reader.Next(&r), ReadOutcome::kRecord);
  EXPECT_EQ(r.payload.size(), 10000u);
  EXPECT_EQ(reader.Next(&r), ReadOutcome::kEndOfData);
  EXPECT_EQ(reader.valid_bytes(), buf.size());
  EXPECT_EQ(reader.dropped_bytes(), 0u);
  // The outcome is sticky.
  EXPECT_EQ(reader.Next(&r), ReadOutcome::kEndOfData);
}

TEST(RecordTest, TornTailDetectedAtEveryCut) {
  std::string buf;
  AppendRecord(RecordType::kSpec, "intact record", &buf);
  const size_t first = buf.size();
  AppendRecord(RecordType::kExecution, "the record a crash tears", &buf);

  // Any cut strictly inside the second record leaves a torn tail; the
  // valid prefix is exactly the first record.
  for (size_t cut = first + 1; cut < buf.size(); ++cut) {
    RecordReader reader(std::string_view(buf).substr(0, cut));
    Record r;
    ASSERT_EQ(reader.Next(&r), ReadOutcome::kRecord) << "cut=" << cut;
    EXPECT_EQ(reader.Next(&r), ReadOutcome::kTornTail) << "cut=" << cut;
    EXPECT_EQ(reader.valid_bytes(), first) << "cut=" << cut;
    EXPECT_EQ(reader.dropped_bytes(), cut - first) << "cut=" << cut;
    EXPECT_FALSE(reader.tail_error().empty());
  }
}

TEST(RecordTest, BitFlipFailsChecksum) {
  std::string buf;
  AppendRecord(RecordType::kSpec, "payload under test", &buf);
  for (size_t i = 0; i < buf.size(); ++i) {
    std::string damaged = buf;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    RecordReader reader(damaged);
    Record r;
    // A flip anywhere in the frame must not yield a valid record with
    // the wrong bytes; either the checksum or the framing catches it.
    if (reader.Next(&r) == ReadOutcome::kRecord) {
      EXPECT_EQ(r.payload, "payload under test") << "flip at " << i;
      FAIL() << "corrupt frame decoded as valid at byte " << i;
    }
  }
}

TEST(RecordTest, ImplausibleLengthIsTornNotAllocated) {
  std::string buf;
  PutFixed32(&buf, 0xFFFFFFFFu);  // 4 GiB payload claim
  PutFixed32(&buf, 0);
  buf.push_back(static_cast<char>(RecordType::kSpec));
  buf += "tiny";
  RecordReader reader(buf);
  Record r;
  EXPECT_EQ(reader.Next(&r), ReadOutcome::kTornTail);
  EXPECT_NE(reader.tail_error().find("implausible"), std::string::npos);
}

TEST(RecordTest, EmptyBufferIsCleanEnd) {
  RecordReader reader("");
  Record r;
  EXPECT_EQ(reader.Next(&r), ReadOutcome::kEndOfData);
}

/// Random binary payload: every byte value, including '\0', '\n', and
/// the frame-header bytes themselves.
std::string RandomPayload(Rng* rng, size_t max_len) {
  std::string out;
  const size_t len = static_cast<size_t>(rng->Uniform(max_len + 1));
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

// Property: any sequence of arbitrary binary payloads round-trips
// through the frame format byte-for-byte, in order.
TEST(RecordFuzzTest, RandomStreamsRoundTrip) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    std::vector<Record> written;
    std::string buf;
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      Record r;
      r.type = rng.Bernoulli(0.5) ? RecordType::kSpec
                                  : RecordType::kExecution;
      r.payload = RandomPayload(&rng, 2000);
      AppendRecord(r.type, r.payload, &buf);
      written.push_back(std::move(r));
    }
    RecordReader reader(buf);
    Record got;
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(reader.Next(&got), ReadOutcome::kRecord)
          << "seed=" << seed << " i=" << i;
      EXPECT_EQ(got.type, written[static_cast<size_t>(i)].type);
      EXPECT_EQ(got.payload, written[static_cast<size_t>(i)].payload)
          << "seed=" << seed << " i=" << i;
    }
    EXPECT_EQ(reader.Next(&got), ReadOutcome::kEndOfData);
    EXPECT_EQ(reader.valid_bytes(), buf.size());
  }
}

// Property: cutting a random stream at any random offset yields a
// whole-record prefix — the reader never returns a record that crosses
// the cut and always reports a boundary-aligned valid prefix.
TEST(RecordFuzzTest, RandomCutsYieldWholeRecordPrefixes) {
  Rng rng(99);
  std::string buf;
  std::vector<size_t> boundaries;  // end offset of each record
  for (int i = 0; i < 20; ++i) {
    AppendRecord(RecordType::kSpec, RandomPayload(&rng, 300), &buf);
    boundaries.push_back(buf.size());
  }
  for (int trial = 0; trial < 500; ++trial) {
    const size_t cut = static_cast<size_t>(rng.Uniform(buf.size() + 1));
    size_t whole = 0;
    bool on_boundary = cut == 0;
    for (size_t b : boundaries) {
      if (b <= cut) ++whole;
      if (b == cut) on_boundary = true;
    }
    RecordReader reader(std::string_view(buf).substr(0, cut));
    Record r;
    size_t got = 0;
    while (reader.Next(&r) == ReadOutcome::kRecord) ++got;
    EXPECT_EQ(got, whole) << "cut=" << cut;
    EXPECT_EQ(reader.valid_bytes(), whole == 0 ? 0 : boundaries[whole - 1])
        << "cut=" << cut;
    if (on_boundary) {
      EXPECT_EQ(reader.dropped_bytes(), 0u) << "cut=" << cut;
    } else {
      EXPECT_GT(reader.dropped_bytes(), 0u) << "cut=" << cut;
      EXPECT_FALSE(reader.tail_error().empty()) << "cut=" << cut;
    }
  }
}

// Property: fixed-width integers round-trip at arbitrary offsets in
// mixed streams.
TEST(RecordFuzzTest, FixedWidthFuzzRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string buf;
    std::vector<uint32_t> v32;
    std::vector<uint64_t> v64;
    const int n = static_cast<int>(rng.UniformInt(1, 16));
    for (int i = 0; i < n; ++i) {
      v32.push_back(static_cast<uint32_t>(rng.Next()));
      v64.push_back(rng.Next());
      PutFixed32(&buf, v32.back());
      PutFixed64(&buf, v64.back());
    }
    size_t pos = 0;
    for (int i = 0; i < n; ++i) {
      uint32_t a = 0;
      uint64_t b = 0;
      ASSERT_TRUE(GetFixed32(buf, &pos, &a));
      ASSERT_TRUE(GetFixed64(buf, &pos, &b));
      EXPECT_EQ(a, v32[static_cast<size_t>(i)]);
      EXPECT_EQ(b, v64[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(pos, buf.size());
  }
}

}  // namespace
}  // namespace paw

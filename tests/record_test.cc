// Tests for the store record format and CRC32.

#include "src/store/record.h"

#include <gtest/gtest.h>

#include "src/common/crc32.h"

namespace paw {
namespace {

TEST(Crc32Test, KnownCheckValue) {
  // The standard CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = 0;
  for (char c : data) crc = Crc32Update(crc, &c, 1);
  EXPECT_EQ(crc, Crc32(data));
  // Chunked at an unaligned boundary too.
  uint32_t chunked = Crc32Update(0, data.data(), 7);
  chunked = Crc32Update(chunked, data.data() + 7, data.size() - 7);
  EXPECT_EQ(chunked, Crc32(data));
}

TEST(RecordTest, FixedWidthRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  size_t pos = 0;
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(GetFixed32(buf, &pos, &v32));
  ASSERT_TRUE(GetFixed64(buf, &pos, &v64));
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_EQ(pos, buf.size());
  EXPECT_FALSE(GetFixed32(buf, &pos, &v32));
}

TEST(RecordTest, RoundTripMultipleRecords) {
  std::string buf;
  AppendRecord(RecordType::kSpec, "first payload", &buf);
  AppendRecord(RecordType::kExecution, "", &buf);
  AppendRecord(RecordType::kSpec, std::string(10000, 'x'), &buf);

  RecordReader reader(buf);
  Record r;
  ASSERT_EQ(reader.Next(&r), ReadOutcome::kRecord);
  EXPECT_EQ(r.type, RecordType::kSpec);
  EXPECT_EQ(r.payload, "first payload");
  ASSERT_EQ(reader.Next(&r), ReadOutcome::kRecord);
  EXPECT_EQ(r.type, RecordType::kExecution);
  EXPECT_EQ(r.payload, "");
  ASSERT_EQ(reader.Next(&r), ReadOutcome::kRecord);
  EXPECT_EQ(r.payload.size(), 10000u);
  EXPECT_EQ(reader.Next(&r), ReadOutcome::kEndOfData);
  EXPECT_EQ(reader.valid_bytes(), buf.size());
  EXPECT_EQ(reader.dropped_bytes(), 0u);
  // The outcome is sticky.
  EXPECT_EQ(reader.Next(&r), ReadOutcome::kEndOfData);
}

TEST(RecordTest, TornTailDetectedAtEveryCut) {
  std::string buf;
  AppendRecord(RecordType::kSpec, "intact record", &buf);
  const size_t first = buf.size();
  AppendRecord(RecordType::kExecution, "the record a crash tears", &buf);

  // Any cut strictly inside the second record leaves a torn tail; the
  // valid prefix is exactly the first record.
  for (size_t cut = first + 1; cut < buf.size(); ++cut) {
    RecordReader reader(std::string_view(buf).substr(0, cut));
    Record r;
    ASSERT_EQ(reader.Next(&r), ReadOutcome::kRecord) << "cut=" << cut;
    EXPECT_EQ(reader.Next(&r), ReadOutcome::kTornTail) << "cut=" << cut;
    EXPECT_EQ(reader.valid_bytes(), first) << "cut=" << cut;
    EXPECT_EQ(reader.dropped_bytes(), cut - first) << "cut=" << cut;
    EXPECT_FALSE(reader.tail_error().empty());
  }
}

TEST(RecordTest, BitFlipFailsChecksum) {
  std::string buf;
  AppendRecord(RecordType::kSpec, "payload under test", &buf);
  for (size_t i = 0; i < buf.size(); ++i) {
    std::string damaged = buf;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    RecordReader reader(damaged);
    Record r;
    // A flip anywhere in the frame must not yield a valid record with
    // the wrong bytes; either the checksum or the framing catches it.
    if (reader.Next(&r) == ReadOutcome::kRecord) {
      EXPECT_EQ(r.payload, "payload under test") << "flip at " << i;
      FAIL() << "corrupt frame decoded as valid at byte " << i;
    }
  }
}

TEST(RecordTest, ImplausibleLengthIsTornNotAllocated) {
  std::string buf;
  PutFixed32(&buf, 0xFFFFFFFFu);  // 4 GiB payload claim
  PutFixed32(&buf, 0);
  buf.push_back(static_cast<char>(RecordType::kSpec));
  buf += "tiny";
  RecordReader reader(buf);
  Record r;
  EXPECT_EQ(reader.Next(&r), ReadOutcome::kTornTail);
  EXPECT_NE(reader.tail_error().find("implausible"), std::string::npos);
}

TEST(RecordTest, EmptyBufferIsCleanEnd) {
  RecordReader reader("");
  Record r;
  EXPECT_EQ(reader.Next(&r), ReadOutcome::kEndOfData);
}

}  // namespace
}  // namespace paw

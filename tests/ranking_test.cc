// Tests for TF-IDF ranking and the privacy-aware bucketing variant.

#include "src/query/ranking.h"

#include <gtest/gtest.h>

#include "src/repo/disease.h"

namespace paw {
namespace {

class RankingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(repo_.AddSpecification(std::move(spec).value()).ok());
    index_.Build(repo_);
    scorer_.Build(index_);
  }

  Repository repo_;
  InvertedIndex index_;
  TfIdfScorer scorer_;
};

TEST_F(RankingTest, MatchingModuleOutscoresNonMatching) {
  const Specification& spec = repo_.entry(0).spec;
  ModuleId m2 = spec.FindModule("M2").value();   // Evaluate Disorder Risk
  ModuleId m6 = spec.FindModule("M6").value();   // Query OMIM
  EXPECT_GT(scorer_.ScoreModule(spec, m2, "disorder risk"), 0);
  EXPECT_EQ(scorer_.ScoreModule(spec, m6, "disorder risk"), 0);
}

TEST_F(RankingTest, AnswerScoreTakesBestPerTerm) {
  const Specification& spec = repo_.entry(0).spec;
  ModuleId m2 = spec.FindModule("M2").value();
  ModuleId m5 = spec.FindModule("M5").value();
  double both = scorer_.ScoreAnswer(spec, {m2, m5},
                                    {"disorder risk", "database queries"});
  double one = scorer_.ScoreAnswer(spec, {m2},
                                   {"disorder risk", "database queries"});
  EXPECT_GT(both, one);
}

TEST_F(RankingTest, IdfWithoutIndexIsNeutral) {
  TfIdfScorer bare;
  EXPECT_DOUBLE_EQ(bare.Idf("anything"), 1.0);
}

TEST(BucketizeTest, WidthZeroIsIdentity) {
  std::vector<double> scores{1.2, 3.4, 5.6};
  EXPECT_EQ(BucketizeScores(scores, 0), scores);
  EXPECT_EQ(BucketizeScores(scores, -1), scores);
}

TEST(BucketizeTest, QuantizesDownward) {
  std::vector<double> scores{0.4, 1.1, 1.9, 2.0};
  EXPECT_EQ(BucketizeScores(scores, 1.0),
            (std::vector<double>{0, 1, 1, 2}));
}

TEST(BucketizeTest, WiderBucketsFewerClasses) {
  std::vector<double> scores;
  for (int i = 0; i < 100; ++i) scores.push_back(i * 0.37);
  int classes_fine = DistinguishableClasses(BucketizeScores(scores, 0.5));
  int classes_coarse = DistinguishableClasses(BucketizeScores(scores, 8.0));
  EXPECT_GT(classes_fine, classes_coarse);
  EXPECT_EQ(DistinguishableClasses(BucketizeScores(scores, 1e9)), 1);
  EXPECT_EQ(DistinguishableClasses(scores), 100);
}

TEST(KendallTauTest, PerfectAgreement) {
  std::vector<double> a{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(KendallTau(a, a), 1.0);
}

TEST(KendallTauTest, PerfectDisagreement) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), -1.0);
}

TEST(KendallTauTest, TiesReduceCorrelationGracefully) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{1, 1, 2, 2};  // coarsened version of a
  double tau = KendallTau(a, b);
  EXPECT_GT(tau, 0.0);
  EXPECT_LT(tau, 1.0);
}

TEST(KendallTauTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(KendallTau({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1.0}, {2.0}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1, 1, 1}, {2, 2, 2}), 1.0);  // all tied
}

TEST(KendallTauTest, BucketingDegradesTauMonotonically) {
  // Property: coarser buckets cannot *increase* agreement with the true
  // ranking (modulo floating noise), and leakage classes shrink.
  std::vector<double> truth;
  for (int i = 0; i < 60; ++i) {
    truth.push_back(i * 0.731 + (i % 7) * 0.05);
  }
  double prev_tau = 1.0;
  int prev_classes = DistinguishableClasses(truth);
  for (double width : {0.1, 0.5, 2.0, 8.0, 32.0}) {
    std::vector<double> bucketed = BucketizeScores(truth, width);
    double tau = KendallTau(truth, bucketed);
    int classes = DistinguishableClasses(bucketed);
    EXPECT_LE(tau, prev_tau + 1e-9) << "width " << width;
    EXPECT_LE(classes, prev_classes) << "width " << width;
    prev_tau = tau;
    prev_classes = classes;
  }
}

}  // namespace
}  // namespace paw

// Tests for standalone module privacy (Gamma-privacy, ref [4]).

#include "src/privacy/module_privacy.h"

#include <gtest/gtest.h>

namespace paw {
namespace {

/// XOR module: two boolean inputs, one boolean output.
Relation XorRelation() {
  auto rel = Relation::FromFunction(
      {{"a", 2, 1.0}, {"b", 2, 1.0}}, {{"y", 2, 1.0}},
      [](const std::vector<int>& x) {
        return std::vector<int>{x[0] ^ x[1]};
      });
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

/// Identity on one ternary input.
Relation IdentityRelation() {
  auto rel = Relation::FromFunction(
      {{"x", 3, 1.0}}, {{"y", 3, 1.0}},
      [](const std::vector<int>& x) { return std::vector<int>{x[0]}; });
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

/// Constant module: output independent of input.
Relation ConstantRelation() {
  auto rel = Relation::FromFunction(
      {{"x", 2, 1.0}}, {{"y", 2, 1.0}},
      [](const std::vector<int>&) { return std::vector<int>{1}; });
  EXPECT_TRUE(rel.ok());
  return std::move(rel).value();
}

TEST(RelationTest, FromFunctionTabulatesFullDomain) {
  Relation rel = XorRelation();
  EXPECT_EQ(rel.num_rows(), 4);
  EXPECT_EQ(rel.num_inputs(), 2);
  EXPECT_EQ(rel.num_outputs(), 1);
  EXPECT_EQ(rel.num_attributes(), 3);
  EXPECT_EQ(rel.attribute(2).name, "y");
  EXPECT_FALSE(rel.IsInput(2));
  EXPECT_TRUE(rel.IsInput(0));
}

TEST(RelationTest, CreateRejectsBadShapes) {
  EXPECT_FALSE(Relation::Create({{"a", 2, 1.0}}, {}).ok());        // no out
  EXPECT_FALSE(Relation::Create({{"a", 1, 1.0}}, {{"y", 2, 1.0}}).ok());
  EXPECT_FALSE(
      Relation::Create({{"a", 2, 1.0}}, {{"a", 2, 1.0}}).ok());    // dup
}

TEST(RelationTest, AddRowValidation) {
  auto rel = Relation::Create({{"a", 2, 1.0}}, {{"y", 2, 1.0}});
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel.value().AddRow({0}, {1}).ok());
  EXPECT_TRUE(rel.value().AddRow({0}, {0}).IsAlreadyExists());
  EXPECT_TRUE(rel.value().AddRow({5}, {0}).IsOutOfRange());
  EXPECT_TRUE(rel.value().AddRow({1, 1}, {0}).IsInvalidArgument());
}

TEST(RelationTest, NoHidingMeansNoPrivacyForFunctions) {
  Relation rel = XorRelation();
  std::vector<bool> none(3, false);
  auto min_out = rel.MinPossibleOutputs(none);
  ASSERT_TRUE(min_out.ok());
  EXPECT_EQ(min_out.value(), 1);  // fully determined
}

TEST(RelationTest, HidingTheOutputGivesFullAmbiguity) {
  Relation rel = XorRelation();
  std::vector<bool> hide_out{false, false, true};
  EXPECT_EQ(rel.MinPossibleOutputs(hide_out).value(), 2);
  EXPECT_TRUE(rel.IsGammaPrivate(hide_out, 2).value());
}

TEST(RelationTest, XorHidingOneInputSufficesForGamma2) {
  // XOR with one input hidden: each visible input value maps to both
  // output values -> two distinct visible output projections.
  Relation rel = XorRelation();
  std::vector<bool> hide_a{true, false, false};
  EXPECT_EQ(rel.MinPossibleOutputs(hide_a).value(), 2);
}

TEST(RelationTest, IdentityNeedsOutputHiding) {
  // For identity, hiding the input alone gives OUT(x) = all 3 values
  // (3 distinct visible output projections in the single group).
  Relation rel = IdentityRelation();
  EXPECT_EQ(rel.MinPossibleOutputs({true, false}).value(), 3);
  // Hiding the output alone also gives 3 (domain completions).
  EXPECT_EQ(rel.MinPossibleOutputs({false, true}).value(), 3);
  EXPECT_EQ(rel.MaxAchievableGamma(), 3);
}

TEST(RelationTest, ConstantModuleIsNeverInputPrivate) {
  // A constant module reveals its output regardless of input hiding.
  Relation rel = ConstantRelation();
  EXPECT_EQ(rel.MinPossibleOutputs({true, false}).value(), 1);
  // Only output hiding helps.
  EXPECT_EQ(rel.MinPossibleOutputs({false, true}).value(), 2);
}

TEST(RelationTest, CostSumsWeights) {
  auto rel = Relation::Create({{"a", 2, 2.0}, {"b", 2, 3.0}},
                              {{"y", 2, 5.0}});
  ASSERT_TRUE(rel.ok());
  EXPECT_DOUBLE_EQ(rel.value().CostOf({true, false, true}), 7.0);
  EXPECT_DOUBLE_EQ(rel.value().CostOf({false, false, false}), 0.0);
}

TEST(SafeSubsetTest, OptimalPicksCheapestSufficientSet) {
  // XOR with expensive output, cheap inputs: hiding either input gives
  // Gamma 2 at cost 1; hiding the output costs 10.
  auto rel = Relation::FromFunction(
      {{"a", 2, 1.0}, {"b", 2, 1.5}}, {{"y", 2, 10.0}},
      [](const std::vector<int>& x) {
        return std::vector<int>{x[0] ^ x[1]};
      });
  ASSERT_TRUE(rel.ok());
  auto sol = OptimalSafeSubset(rel.value(), 2);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol.value().feasible);
  EXPECT_DOUBLE_EQ(sol.value().cost, 1.0);
  EXPECT_TRUE(sol.value().hidden[0]);   // hide cheap input a
  EXPECT_FALSE(sol.value().hidden[2]);  // keep the output
}

TEST(SafeSubsetTest, GreedyNeverBeatsOptimal) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    Relation rel = Relation::Random(&rng, 3, 2, 2);
    for (int64_t gamma : {2, 4}) {
      auto opt = OptimalSafeSubset(rel, gamma);
      auto greedy = GreedySafeSubset(rel, gamma);
      ASSERT_TRUE(opt.ok());
      ASSERT_TRUE(greedy.ok());
      EXPECT_TRUE(opt.value().feasible);
      EXPECT_TRUE(greedy.value().feasible);
      EXPECT_GE(greedy.value().cost, opt.value().cost - 1e-9)
          << "trial " << trial << " gamma " << gamma;
      EXPECT_GE(greedy.value().achieved_gamma, gamma);
    }
  }
}

TEST(SafeSubsetTest, OutputOnlyIsFeasibleWhenOutputsSuffice) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Relation rel = Relation::Random(&rng, 2, 3, 2);
    auto sol = OutputOnlySafeSubset(rel, 8);  // 2^3 = max
    ASSERT_TRUE(sol.ok());
    EXPECT_TRUE(sol.value().feasible);
    // Only output attributes hidden.
    for (int i = 0; i < rel.num_inputs(); ++i) {
      EXPECT_FALSE(sol.value().hidden[static_cast<size_t>(i)]);
    }
  }
}

TEST(SafeSubsetTest, InfeasibleGammaReported) {
  Relation rel = XorRelation();  // max achievable = 2
  auto sol = OptimalSafeSubset(rel, 4);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol.value().feasible);
  auto greedy = GreedySafeSubset(rel, 4);
  ASSERT_TRUE(greedy.ok());
  EXPECT_FALSE(greedy.value().feasible);
}

TEST(SafeSubsetTest, HidingIsMonotoneInPrivacy) {
  // Property: adding a hidden attribute never decreases min |OUT(x)|.
  Rng rng(99);
  for (int trial = 0; trial < 15; ++trial) {
    Relation rel = Relation::Random(&rng, 3, 2, 2);
    std::vector<bool> hidden(5, false);
    int64_t prev = rel.MinPossibleOutputs(hidden).value();
    for (int i = 0; i < 5; ++i) {
      hidden[static_cast<size_t>(i)] = true;
      int64_t cur = rel.MinPossibleOutputs(hidden).value();
      EXPECT_GE(cur, prev) << "trial " << trial << " attr " << i;
      prev = cur;
    }
    EXPECT_EQ(prev, rel.MaxAchievableGamma());
  }
}

TEST(SafeSubsetTest, BranchAndBoundMatchesExhaustiveOptimum) {
  Rng rng(314);
  for (int trial = 0; trial < 20; ++trial) {
    Relation rel = Relation::Random(&rng, 3, 3, 2);
    for (int64_t gamma : {2, 4, 8}) {
      auto exhaustive = OptimalSafeSubset(rel, gamma);
      auto bnb = BranchAndBoundSafeSubset(rel, gamma);
      ASSERT_TRUE(exhaustive.ok());
      ASSERT_TRUE(bnb.ok());
      EXPECT_EQ(exhaustive.value().feasible, bnb.value().feasible)
          << "trial " << trial << " gamma " << gamma;
      if (exhaustive.value().feasible) {
        EXPECT_NEAR(exhaustive.value().cost, bnb.value().cost, 1e-9)
            << "trial " << trial << " gamma " << gamma;
        EXPECT_GE(bnb.value().achieved_gamma, gamma);
      }
    }
  }
}

TEST(SafeSubsetTest, BranchAndBoundScalesPastEnumerationLimit) {
  Rng rng(99);
  Relation rel = Relation::Random(&rng, 4, 4, 2);
  // Enumeration is told to refuse; branch and bound still solves.
  EXPECT_FALSE(OptimalSafeSubset(rel, 4, /*max_attrs=*/6).ok());
  auto bnb = BranchAndBoundSafeSubset(rel, 4);
  ASSERT_TRUE(bnb.ok());
  EXPECT_TRUE(bnb.value().feasible);
}

TEST(SafeSubsetTest, BranchAndBoundReportsInfeasible) {
  Relation rel = XorRelation();
  auto bnb = BranchAndBoundSafeSubset(rel, 100);
  ASSERT_TRUE(bnb.ok());
  EXPECT_FALSE(bnb.value().feasible);
}

TEST(SafeSubsetTest, RejectsArityMismatch) {
  Relation rel = XorRelation();
  EXPECT_FALSE(rel.MinPossibleOutputs({true}).ok());
}

TEST(SafeSubsetTest, OptimalRefusesHugeSearch) {
  auto rel = Relation::Create(
      {{"a", 2, 1.0}, {"b", 2, 1.0}}, {{"y", 2, 1.0}});
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(rel.value().AddRow({0, 0}, {0}).ok());
  EXPECT_FALSE(OptimalSafeSubset(rel.value(), 2, /*max_attrs=*/2).ok());
}

// Parameterized sweep: on random modules, all three algorithms reach the
// requested Gamma whenever it is achievable.
class SafeSubsetSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int64_t>> {};

TEST_P(SafeSubsetSweep, AllAlgorithmsReachGamma) {
  auto [num_in, num_out, gamma] = GetParam();
  Rng rng(static_cast<uint64_t>(num_in * 100 + num_out * 10 +
                                static_cast<int>(gamma)));
  Relation rel = Relation::Random(&rng, num_in, num_out, 2);
  if (rel.MaxAchievableGamma() < gamma) GTEST_SKIP();
  for (bool use_optimal : {true, false}) {
    auto sol = use_optimal ? OptimalSafeSubset(rel, gamma, 22)
                           : GreedySafeSubset(rel, gamma);
    ASSERT_TRUE(sol.ok());
    EXPECT_TRUE(sol.value().feasible);
    EXPECT_GE(sol.value().achieved_gamma, gamma);
    // Verify the reported gamma against a recomputation.
    EXPECT_EQ(rel.MinPossibleOutputs(sol.value().hidden).value(),
              sol.value().achieved_gamma);
  }
  auto out_only = OutputOnlySafeSubset(rel, gamma);
  ASSERT_TRUE(out_only.ok());
  EXPECT_TRUE(out_only.value().feasible);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SafeSubsetSweep,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(int64_t{2}, int64_t{4})));

}  // namespace
}  // namespace paw

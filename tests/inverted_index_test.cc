// Tests for the privacy-annotated inverted keyword index.

#include "src/index/inverted_index.h"

#include <gtest/gtest.h>

#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(repo_.AddSpecification(std::move(spec).value(),
                                       DiseasePolicy())
                    .ok());
    index_.Build(repo_);
  }

  Repository repo_;
  InvertedIndex index_;
};

TEST_F(InvertedIndexTest, TokensIndexed) {
  EXPECT_GT(index_.num_tokens(), 0);
  EXPECT_GT(index_.num_postings(), 0);
  EXPECT_EQ(index_.num_docs(), 1);
  // "disorder" appears in M2 (Evaluate Disorder Risk) and M8 (Combine
  // Disorder Sets).
  const auto& postings = index_.Lookup("disorder");
  EXPECT_EQ(postings.size(), 2u);
}

TEST_F(InvertedIndexTest, PostingLevelsComeFromWorkflow) {
  const SpecEntry& entry = repo_.entry(0);
  for (const Posting& p : index_.Lookup("omim")) {
    // M6 lives in W4, level 2.
    EXPECT_EQ(p.level, 2);
    EXPECT_EQ(entry.spec.module(p.module).code, "M6");
  }
  for (const Posting& p : index_.Lookup("genetic")) {
    // M1's placeholder lives in W1, level 0.
    EXPECT_EQ(p.level, 0);
  }
}

TEST_F(InvertedIndexTest, CandidateSpecsFilterByLevel) {
  // "omim" only exists at level 2.
  EXPECT_TRUE(index_.CandidateSpecs({"omim"}, 0).empty());
  EXPECT_TRUE(index_.CandidateSpecs({"omim"}, 1).empty());
  EXPECT_EQ(index_.CandidateSpecs({"omim"}, 2),
            (std::vector<int>{0}));
  // "genetic" is public.
  EXPECT_EQ(index_.CandidateSpecs({"genetic"}, 0),
            (std::vector<int>{0}));
}

TEST_F(InvertedIndexTest, CandidateSpecsIntersectTerms) {
  EXPECT_EQ(index_.CandidateSpecs({"genetic", "disorder"}, 0),
            (std::vector<int>{0}));
  EXPECT_TRUE(index_.CandidateSpecs({"genetic", "nonexistent"}, 0).empty());
}

TEST_F(InvertedIndexTest, MultiTokenTermsRequireAllTokens) {
  EXPECT_EQ(index_.CandidateSpecs({"disorder risk"}, 0),
            (std::vector<int>{0}));
  EXPECT_TRUE(index_.CandidateSpecs({"disorder unicorn"}, 0).empty());
}

TEST_F(InvertedIndexTest, UnknownTokenEmpty) {
  EXPECT_TRUE(index_.Lookup("zebra").empty());
  EXPECT_EQ(index_.DocumentFrequency("zebra"), 0);
  EXPECT_EQ(index_.DocumentFrequency("disorder"), 1);
}

TEST_F(InvertedIndexTest, NoTermsMeansAllSpecs) {
  EXPECT_EQ(index_.CandidateSpecs({}, 0), (std::vector<int>{0}));
}

TEST(InvertedIndexMultiSpecTest, DfCountsSpecsNotOccurrences) {
  Repository repo;
  Rng rng(3);
  WorkloadParams params;
  params.vocabulary = 5;  // force keyword collisions across specs
  for (int i = 0; i < 4; ++i) {
    auto spec = GenerateSpec(params, &rng, "spec" + std::to_string(i));
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(repo.AddSpecification(std::move(spec).value()).ok());
  }
  InvertedIndex index;
  index.Build(repo);
  EXPECT_EQ(index.num_docs(), 4);
  // kw0 (the most popular Zipf keyword) should be in most specs.
  EXPECT_GE(index.DocumentFrequency("kw0"), 2);
  EXPECT_LE(index.DocumentFrequency("kw0"), 4);
}

}  // namespace
}  // namespace paw

// Tests for the privacy-annotated inverted keyword index.

#include "src/index/inverted_index.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/strings.h"
#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(repo_.AddSpecification(std::move(spec).value(),
                                       DiseasePolicy())
                    .ok());
    index_.Build(repo_);
  }

  Repository repo_;
  InvertedIndex index_;
};

TEST_F(InvertedIndexTest, TokensIndexed) {
  EXPECT_GT(index_.num_tokens(), 0);
  EXPECT_GT(index_.num_postings(), 0);
  EXPECT_EQ(index_.num_docs(), 1);
  // "disorder" appears in M2 (Evaluate Disorder Risk) and M8 (Combine
  // Disorder Sets).
  const auto& postings = index_.Lookup("disorder");
  EXPECT_EQ(postings.size(), 2u);
}

TEST_F(InvertedIndexTest, PostingLevelsComeFromWorkflow) {
  const SpecEntry& entry = repo_.entry(0);
  for (const Posting& p : index_.Lookup("omim")) {
    // M6 lives in W4, level 2.
    EXPECT_EQ(p.level, 2);
    EXPECT_EQ(entry.spec.module(p.module).code, "M6");
  }
  for (const Posting& p : index_.Lookup("genetic")) {
    // M1's placeholder lives in W1, level 0.
    EXPECT_EQ(p.level, 0);
  }
}

TEST_F(InvertedIndexTest, CandidateSpecsFilterByLevel) {
  // "omim" only exists at level 2.
  EXPECT_TRUE(index_.CandidateSpecs({"omim"}, 0).empty());
  EXPECT_TRUE(index_.CandidateSpecs({"omim"}, 1).empty());
  EXPECT_EQ(index_.CandidateSpecs({"omim"}, 2),
            (std::vector<int>{0}));
  // "genetic" is public.
  EXPECT_EQ(index_.CandidateSpecs({"genetic"}, 0),
            (std::vector<int>{0}));
}

TEST_F(InvertedIndexTest, CandidateSpecsIntersectTerms) {
  EXPECT_EQ(index_.CandidateSpecs({"genetic", "disorder"}, 0),
            (std::vector<int>{0}));
  EXPECT_TRUE(index_.CandidateSpecs({"genetic", "nonexistent"}, 0).empty());
}

TEST_F(InvertedIndexTest, MultiTokenTermsRequireAllTokens) {
  EXPECT_EQ(index_.CandidateSpecs({"disorder risk"}, 0),
            (std::vector<int>{0}));
  EXPECT_TRUE(index_.CandidateSpecs({"disorder unicorn"}, 0).empty());
}

TEST_F(InvertedIndexTest, UnknownTokenEmpty) {
  EXPECT_TRUE(index_.Lookup("zebra").empty());
  EXPECT_EQ(index_.DocumentFrequency("zebra"), 0);
  EXPECT_EQ(index_.DocumentFrequency("disorder"), 1);
}

TEST_F(InvertedIndexTest, NoTermsMeansAllSpecs) {
  EXPECT_EQ(index_.CandidateSpecs({}, 0), (std::vector<int>{0}));
}

TEST(InvertedIndexMultiSpecTest, DfCountsSpecsNotOccurrences) {
  Repository repo;
  Rng rng(3);
  WorkloadParams params;
  params.vocabulary = 5;  // force keyword collisions across specs
  for (int i = 0; i < 4; ++i) {
    auto spec = GenerateSpec(params, &rng, "spec" + std::to_string(i));
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(repo.AddSpecification(std::move(spec).value()).ok());
  }
  InvertedIndex index;
  index.Build(repo);
  EXPECT_EQ(index.num_docs(), 4);
  // kw0 (the most popular Zipf keyword) should be in most specs.
  EXPECT_GE(index.DocumentFrequency("kw0"), 2);
  EXPECT_LE(index.DocumentFrequency("kw0"), 4);
}

// Every token of every module of every spec in the cut — the complete
// vocabulary the index could contain (it indexes module names +
// keywords, both via Tokenize).
std::set<std::string> AllTokens(const RepositoryView& view) {
  std::set<std::string> tokens;
  for (int s = 0; s < view.num_specs(); ++s) {
    for (const Module& m : view.entry(s).spec.modules()) {
      for (const std::string& t : Tokenize(m.name)) tokens.insert(t);
      for (const std::string& k : m.keywords) {
        for (const std::string& t : Tokenize(k)) tokens.insert(t);
      }
    }
  }
  return tokens;
}

void ExpectIndexesEqual(const InvertedIndex& a, const InvertedIndex& b,
                        const RepositoryView& view) {
  EXPECT_EQ(a.num_docs(), b.num_docs());
  EXPECT_EQ(a.num_tokens(), b.num_tokens());
  EXPECT_EQ(a.num_postings(), b.num_postings());
  for (const std::string& token : AllTokens(view)) {
    EXPECT_EQ(a.DocumentFrequency(token), b.DocumentFrequency(token))
        << "df mismatch for token " << token;
    const auto& pa = a.Lookup(token);
    const auto& pb = b.Lookup(token);
    ASSERT_EQ(pa.size(), pb.size()) << "postings mismatch for " << token;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].spec_id, pb[i].spec_id);
      EXPECT_EQ(pa[i].module.value(), pb[i].module.value());
      EXPECT_EQ(pa[i].level, pb[i].level);
      EXPECT_EQ(pa[i].tf, pb[i].tf);
    }
  }
}

// Incremental maintenance fuzz: interleave appends with ExtendTo calls
// at random cut points and check the delta-maintained index is
// identical to a from-scratch build at every step.
TEST(InvertedIndexIncrementalTest, ExtendToMatchesFromScratchBuild) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Repository repo;
    Rng rng(seed);
    WorkloadParams params;
    params.vocabulary = 8;  // force cross-spec token collisions
    InvertedIndex incremental;
    incremental.Build(repo.View());
    int added = 0;
    for (int round = 0; round < 6; ++round) {
      const int batch = static_cast<int>(rng.Uniform(3));  // 0..2 specs
      for (int i = 0; i < batch; ++i) {
        auto spec = GenerateSpec(params, &rng,
                                 "s" + std::to_string(seed) + "_" +
                                     std::to_string(added++));
        ASSERT_TRUE(spec.ok());
        ASSERT_TRUE(repo.AddSpecification(std::move(spec).value()).ok());
      }
      RepositoryView view = repo.View();
      incremental.ExtendTo(view);
      InvertedIndex fresh;
      fresh.Build(view);
      ExpectIndexesEqual(incremental, fresh, view);
    }
    EXPECT_EQ(incremental.num_docs(), repo.num_specs());
  }
}

// ExtendTo to an older cut (index already past it) is a no-op, not a
// partial rewind.
TEST(InvertedIndexIncrementalTest, ExtendToOlderCutIsNoop) {
  Repository repo;
  Rng rng(11);
  auto s0 = GenerateSpec(WorkloadParams{}, &rng, "a");
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(repo.AddSpecification(std::move(s0).value()).ok());
  RepositoryView old_view = repo.View();
  auto s1 = GenerateSpec(WorkloadParams{}, &rng, "b");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(repo.AddSpecification(std::move(s1).value()).ok());

  InvertedIndex index;
  index.Build(repo.View());
  const int64_t postings = index.num_postings();
  index.ExtendTo(old_view);
  EXPECT_EQ(index.num_docs(), 2);
  EXPECT_EQ(index.num_postings(), postings);
}

}  // namespace
}  // namespace paw

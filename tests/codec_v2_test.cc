// Tests for the v2 binary payload codec: varint primitives, exact
// round trips for fuzzed specs / policies / executions, hostile string
// content the text format cannot carry, payload-truncation sweeps
// (every prefix must fail cleanly, never crash or fabricate state),
// and ApplyRecord over v2 records.

#include "src/store/codec.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/privacy/policy_text.h"
#include "src/provenance/serialize.h"
#include "src/repo/workload.h"
#include "src/store/record.h"
#include "src/workflow/builder.h"
#include "src/workflow/serialize.h"

namespace paw {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
        uint64_t{16383}, uint64_t{16384}, uint64_t{0xFFFFFFFFull},
        uint64_t{0x100000000ull},
        std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
  for (uint32_t v : {0u, 127u, 128u, 300u, 0xFFFFFFFFu}) {
    std::string buf;
    PutVarint32(&buf, v);
    size_t pos = 0;
    uint32_t decoded = 0;
    ASSERT_TRUE(GetVarint32(buf, &pos, &decoded)) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, RejectsOverrunAndOverflow) {
  std::string buf;
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  // Every strict prefix of a varint is an overrun.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(
        GetVarint64(std::string_view(buf).substr(0, cut), &pos, &v))
        << cut;
  }
  // A value wider than 32 bits must not decode as a varint32.
  std::string wide;
  PutVarint64(&wide, uint64_t{1} << 32);
  size_t pos = 0;
  uint32_t v32 = 0;
  EXPECT_FALSE(GetVarint32(wide, &pos, &v32));
  // An 11-byte continuation chain overflows varint64.
  std::string runaway(11, static_cast<char>(0x80));
  pos = 0;
  uint64_t v64 = 0;
  EXPECT_FALSE(GetVarint64(runaway, &pos, &v64));
}

TEST(VarintTest, ZigZagRoundTrip) {
  for (int32_t v : {0, -1, 1, -2, 2, 1 << 20, -(1 << 20),
                    std::numeric_limits<int32_t>::min(),
                    std::numeric_limits<int32_t>::max()}) {
    EXPECT_EQ(UnZigZag32(ZigZag32(v)), v) << v;
  }
  EXPECT_EQ(ZigZag32(-1), 1u);
  EXPECT_EQ(ZigZag32(1), 2u);
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(UnZigZag64(ZigZag64(v)), v) << v;
  }
}

/// A policy that exercises every section with hostile strings.
PolicySet HostilePolicy(const Specification& spec) {
  PolicySet policy;
  policy.data.default_level = 1;
  policy.data.label_level["line1\nline2"] = 2;
  policy.data.label_level["semi;colon"] = 3;
  policy.data.label_level[std::string("nul\0byte", 8)] = 1;
  policy.data.label_level["quote\"backslash\\"] = 2;
  for (const Module& m : spec.modules()) {
    if (m.kind == ModuleKind::kAtomic) {
      policy.module_reqs.push_back({m.code, 4, 2});
      break;
    }
  }
  return policy;
}

// Property: seeded-random specs with hostile policies round-trip
// through the v2 codec byte-for-byte, and the decoded spec re-renders
// to identical text.
TEST(CodecV2Test, SpecPayloadsRoundTripExactly) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed);
    auto spec = GenerateSpec(WorkloadParams{}, &rng,
                             "fuzzbin" + std::to_string(seed));
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    const PolicySet policy = HostilePolicy(spec.value());
    const std::string payload = EncodeSpecPayloadV2(spec.value(), policy);
    auto decoded = DecodeSpecPayloadV2(payload);
    ASSERT_TRUE(decoded.ok())
        << "seed=" << seed << ": " << decoded.status().ToString();
    EXPECT_EQ(EncodeSpecPayloadV2(decoded.value().spec,
                                  decoded.value().policy),
              payload)
        << "seed=" << seed;
    EXPECT_EQ(Serialize(decoded.value().spec), Serialize(spec.value()));
    EXPECT_EQ(SerializePolicy(decoded.value().policy),
              SerializePolicy(policy));
  }
}

// Property: seeded-random executions round-trip through the v2 codec
// byte-for-byte.
TEST(CodecV2Test, ExecutionPayloadsRoundTripExactly) {
  Rng rng(4242);
  auto spec = GenerateSpec(WorkloadParams{}, &rng, "fuzzbin-exec");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  for (int trial = 0; trial < 20; ++trial) {
    auto exec = GenerateExecution(spec.value(), &rng);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    const int spec_id = static_cast<int>(rng.Uniform(1000));
    const std::string payload =
        EncodeExecutionPayloadV2(spec_id, exec.value());
    auto spec_id_peek =
        DecodeExecutionSpecId(RecordType::kExecutionV2, payload);
    ASSERT_TRUE(spec_id_peek.ok());
    EXPECT_EQ(spec_id_peek.value(), spec_id);
    auto replayed = DecodeExecutionPayloadV2(payload, spec.value());
    ASSERT_TRUE(replayed.ok())
        << "trial=" << trial << ": " << replayed.status().ToString();
    EXPECT_EQ(EncodeExecutionPayloadV2(spec_id, replayed.value()), payload)
        << "trial=" << trial;
    EXPECT_EQ(SerializeExecution(replayed.value()),
              SerializeExecution(exec.value()))
        << "trial=" << trial;
  }
}

/// Binary payloads should also be *smaller* than their text
/// equivalents — that is half of why replay is faster.
TEST(CodecV2Test, BinaryPayloadsAreSmallerThanText) {
  Rng rng(99);
  auto spec = GenerateSpec(WorkloadParams{}, &rng, "sizecheck");
  ASSERT_TRUE(spec.ok());
  EXPECT_LT(EncodeSpecPayloadV2(spec.value(), {}).size(),
            EncodeSpecPayload(spec.value(), {}).size());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok());
  EXPECT_LT(EncodeExecutionPayloadV2(0, exec.value()).size(),
            EncodeExecutionPayload(0, exec.value()).size());
}

// Robustness: every strict prefix of a valid payload fails with a
// Status — never a crash, never a partially applied result.
TEST(CodecV2Test, TruncatedSpecPayloadsFailCleanly) {
  Rng rng(5);
  auto spec = GenerateSpec(WorkloadParams{}, &rng, "trunc");
  ASSERT_TRUE(spec.ok());
  const std::string payload =
      EncodeSpecPayloadV2(spec.value(), HostilePolicy(spec.value()));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded =
        DecodeSpecPayloadV2(std::string_view(payload).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
  // Trailing junk is rejected too (payloads are exact-length).
  auto decoded = DecodeSpecPayloadV2(payload + "x");
  EXPECT_FALSE(decoded.ok());
}

TEST(CodecV2Test, TruncatedExecutionPayloadsFailCleanly) {
  Rng rng(6);
  auto spec = GenerateSpec(WorkloadParams{}, &rng, "trunc-exec");
  ASSERT_TRUE(spec.ok());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok());
  const std::string payload = EncodeExecutionPayloadV2(3, exec.value());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeExecutionPayloadV2(
        std::string_view(payload).substr(0, cut), spec.value());
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
  auto decoded = DecodeExecutionPayloadV2(payload + "x", spec.value());
  EXPECT_FALSE(decoded.ok());
}

// Single-byte corruptions that survive framing must still never
// produce an out-of-range reference (indices are validated during
// decode). Flip each byte and require either a clean error or a
// decodable execution — never a crash.
TEST(CodecV2Test, ByteFlippedExecutionPayloadsNeverCrash) {
  Rng rng(7);
  auto spec = GenerateSpec(WorkloadParams{}, &rng, "flip-exec");
  ASSERT_TRUE(spec.ok());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok());
  const std::string payload = EncodeExecutionPayloadV2(0, exec.value());
  for (size_t i = 0; i < payload.size(); ++i) {
    std::string corrupt = payload;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    auto decoded = DecodeExecutionPayloadV2(corrupt, spec.value());
    // Either outcome is fine; evaluating it must be safe.
    (void)decoded.ok();
  }
}

TEST(CodecV2Test, ApplyRecordReplaysV2Records) {
  Rng rng(11);
  auto spec = GenerateSpec(WorkloadParams{}, &rng, "apply");
  ASSERT_TRUE(spec.ok());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok());
  const std::string exec_text = SerializeExecution(exec.value());

  Repository repo;
  Record record;
  record.type = RecordType::kSpecV2;
  record.payload = EncodeSpecPayloadV2(spec.value(), {});
  ASSERT_TRUE(ApplyRecord(record, &repo).ok());
  ASSERT_EQ(repo.num_specs(), 1);

  record.type = RecordType::kExecutionV2;
  record.payload = EncodeExecutionPayloadV2(0, exec.value());
  ASSERT_TRUE(ApplyRecord(record, &repo).ok());
  ASSERT_EQ(repo.num_executions(), 1);
  EXPECT_EQ(SerializeExecution(repo.execution(ExecutionId(0)).exec),
            exec_text);

  // An execution referencing a spec the repository does not hold is
  // rejected, as is one referencing an overflowing id.
  record.payload = EncodeExecutionPayloadV2(7, exec.value());
  EXPECT_FALSE(ApplyRecord(record, &repo).ok());
}

}  // namespace
}  // namespace paw

// Metrics registry tests: counter/gauge/histogram semantics, bucket
// boundary placement, percentile extraction, concurrent updates (the
// TSan suite runs this binary), snapshot consistency, the varint
// snapshot codec, and the Prometheus text exposition.
//
// The registry is process-global, so every test uses metric names
// under a test-unique prefix and asserts via Find/SumCounters rather
// than on registry size.

#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace paw {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_counter_basic");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, SameNameReturnsSameObject) {
  Counter& a = MetricsRegistry::Global().GetCounter("test_counter_shared");
  Counter& b = MetricsRegistry::Global().GetCounter("test_counter_shared");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(CounterTest, KindMismatchReturnsDetachedDummy) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_kind_clash");
  c.Add(5);
  // Asking for the same name as a gauge must not alias the counter.
  Gauge& g = MetricsRegistry::Global().GetGauge("test_kind_clash");
  g.Set(-3);
  EXPECT_EQ(c.value(), 5u);
  // The registered entry keeps its original kind.
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const MetricSample* sample = snap.Find("test_kind_clash");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(sample->counter, 5u);
}

TEST(GaugeTest, SetAndAddGoBothWays) {
  Gauge& g = MetricsRegistry::Global().GetGauge("test_gauge_basic");
  g.Set(10);
  g.Add(-4);
  EXPECT_EQ(g.value(), 6);
  g.Add(-10);
  EXPECT_EQ(g.value(), -4);
}

TEST(HistogramTest, BucketBoundaries) {
  // first=1, growth=2, 4 buckets: bounds 1, 2, 4, 8 (+Inf overflow).
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test_hist_bounds", 1, 2, 4);
  ASSERT_EQ(h.num_buckets(), 4);
  EXPECT_DOUBLE_EQ(h.bound(0), 1);
  EXPECT_DOUBLE_EQ(h.bound(1), 2);
  EXPECT_DOUBLE_EQ(h.bound(2), 4);
  EXPECT_DOUBLE_EQ(h.bound(3), 8);

  h.Observe(0.5);  // <= 1        -> bucket 0
  h.Observe(1.0);  // == bound 0  -> bucket 0 (bounds are inclusive)
  h.Observe(1.5);  //             -> bucket 1
  h.Observe(2.0);  // == bound 1  -> bucket 1
  h.Observe(8.0);  // == bound 3  -> bucket 3
  h.Observe(9.0);  // > last      -> overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 8.0 + 9.0, 1e-6);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  HistogramData data;
  data.bounds = {1, 2, 4, 8};
  // 10 observations in (1, 2], 10 in (2, 4].
  data.buckets = {0, 10, 10, 0, 0};
  data.count = 20;
  data.sum = 0;

  // Median: target = 10 lands exactly at the end of bucket 1 -> 2.
  EXPECT_DOUBLE_EQ(data.Quantile(0.5), 2.0);
  // q=0.25 -> target 5, halfway through (1, 2] -> 1.5.
  EXPECT_DOUBLE_EQ(data.Quantile(0.25), 1.5);
  // q=0.75 -> target 15, halfway through (2, 4] -> 3.
  EXPECT_DOUBLE_EQ(data.Quantile(0.75), 3.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(data.Quantile(-1), data.Quantile(0));
  EXPECT_DOUBLE_EQ(data.Quantile(2), data.Quantile(1));
}

TEST(HistogramTest, QuantileOverflowClampsToLastBound) {
  HistogramData data;
  data.bounds = {1, 2};
  data.buckets = {0, 0, 5};  // everything past the last bound
  data.count = 5;
  EXPECT_DOUBLE_EQ(data.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(data.Quantile(0.99), 2.0);
}

TEST(HistogramTest, QuantileEmptyIsZero) {
  HistogramData data;
  EXPECT_DOUBLE_EQ(data.Quantile(0.5), 0.0);
}

TEST(HistogramTest, LatencyLayoutCoversMicrosecondsToMinutes) {
  Histogram& h =
      MetricsRegistry::Global().GetLatencyHistogram("test_hist_latency");
  ASSERT_EQ(h.num_buckets(), Histogram::kLatencyBuckets);
  EXPECT_DOUBLE_EQ(h.bound(0), Histogram::kLatencyFirstBound);
  // Last bound ~ 10us * 2^23 ≈ 84s: minutes-scale tail still lands in
  // a finite bucket.
  EXPECT_GT(h.bound(h.num_buckets() - 1), 60.0);
}

TEST(MetricsConcurrencyTest, ParallelUpdatesLoseNothing) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test_conc_counter");
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test_conc_gauge");
  Histogram& hist =
      MetricsRegistry::Global().GetHistogram("test_conc_hist", 1, 2, 8);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        gauge.Add(t % 2 == 0 ? 1 : -1);
        hist.Observe(static_cast<double>(i % 10));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge.value(), 0);  // equal +1/-1 threads
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (int i = 0; i <= hist.num_buckets(); ++i) {
    bucket_total += hist.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(MetricsConcurrencyTest, SnapshotUnderConcurrentUpdates) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test_conc_snap_counter");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) counter.Add();
  });
  std::thread registrar([&] {
    for (int i = 0; i < 200; ++i) {
      MetricsRegistry::Global().GetCounter("test_conc_snap_extra_" +
                                           std::to_string(i));
    }
  });
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    const MetricSample* sample = snap.Find("test_conc_snap_counter");
    ASSERT_NE(sample, nullptr);
    // Counter is monotonic, so successive snapshots must never go back.
    EXPECT_GE(sample->counter, last);
    last = sample->counter;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  registrar.join();
}

TEST(MetricsSnapshotTest, SortedFindAndPrefixSum) {
  MetricsRegistry::Global()
      .GetCounter("test_snap_family{opcode=\"a\"}")
      .Add(3);
  MetricsRegistry::Global()
      .GetCounter("test_snap_family{opcode=\"b\"}")
      .Add(4);
  MetricsRegistry::Global().GetGauge("test_snap_gauge").Set(-17);

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  // Map-backed registry: snapshot comes out name-sorted.
  for (size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
  EXPECT_EQ(snap.SumCounters("test_snap_family"), 7u);
  const MetricSample* gauge = snap.Find("test_snap_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge, -17);
  EXPECT_EQ(snap.Find("test_snap_missing"), nullptr);
}

MetricsSnapshot MakeMixedSnapshot() {
  MetricsSnapshot snap;
  MetricSample counter;
  counter.kind = MetricSample::Kind::kCounter;
  counter.name = "test_codec_requests_total{opcode=\"add\"}";
  counter.counter = 123456789;
  snap.samples.push_back(counter);

  MetricSample gauge;
  gauge.kind = MetricSample::Kind::kGauge;
  gauge.name = "test_codec_gauge";
  gauge.gauge = -42;
  snap.samples.push_back(gauge);

  MetricSample hist;
  hist.kind = MetricSample::Kind::kHistogram;
  hist.name = "test_codec_seconds";
  hist.histogram.bounds = {0.001, 0.01, 0.1};
  hist.histogram.buckets = {5, 10, 2, 1};
  hist.histogram.count = 18;
  hist.histogram.sum = 0.625;
  snap.samples.push_back(hist);
  return snap;
}

TEST(MetricsCodecTest, RoundTripsMixedSnapshot) {
  const MetricsSnapshot original = MakeMixedSnapshot();
  const std::string encoded = EncodeMetricsSnapshot(original);

  size_t offset = 0;
  Result<MetricsSnapshot> decoded = DecodeMetricsSnapshot(encoded, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(offset, encoded.size());
  ASSERT_EQ(decoded.value().samples.size(), original.samples.size());
  for (size_t i = 0; i < original.samples.size(); ++i) {
    const MetricSample& want = original.samples[i];
    const MetricSample& got = decoded.value().samples[i];
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.counter, want.counter);
    EXPECT_EQ(got.gauge, want.gauge);
    EXPECT_EQ(got.histogram.bounds, want.histogram.bounds);
    EXPECT_EQ(got.histogram.buckets, want.histogram.buckets);
    EXPECT_EQ(got.histogram.count, want.histogram.count);
    EXPECT_DOUBLE_EQ(got.histogram.sum, want.histogram.sum);
  }
}

TEST(MetricsCodecTest, RejectsTruncation) {
  const std::string encoded = EncodeMetricsSnapshot(MakeMixedSnapshot());
  // Every strict prefix must decode to an error, never crash or spin.
  for (size_t len = 0; len < encoded.size(); ++len) {
    size_t offset = 0;
    Result<MetricsSnapshot> decoded =
        DecodeMetricsSnapshot(encoded.substr(0, len), &offset);
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
}

TEST(MetricsCodecTest, RejectsUnknownKind) {
  MetricsSnapshot snap;
  MetricSample sample;
  sample.kind = MetricSample::Kind::kCounter;
  sample.name = "test_codec_kind";
  snap.samples.push_back(sample);
  std::string encoded = EncodeMetricsSnapshot(snap);
  encoded[1] = static_cast<char>(9);  // kind byte follows the count varint
  size_t offset = 0;
  EXPECT_FALSE(DecodeMetricsSnapshot(encoded, &offset).ok());
}

TEST(MetricsExpositionTest, RendersFamiliesBucketsAndLabels) {
  const std::string text = RenderPrometheusText(MakeMixedSnapshot());
  EXPECT_NE(text.find("# TYPE test_codec_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("test_codec_requests_total{opcode=\"add\"} 123456789\n"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE test_codec_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("test_codec_gauge -42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_codec_seconds histogram\n"),
            std::string::npos);
  // Bucket series are cumulative; overflow renders as le="+Inf".
  EXPECT_NE(text.find("test_codec_seconds_bucket{le=\"0.001\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_codec_seconds_bucket{le=\"0.01\"} 15\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_codec_seconds_bucket{le=\"0.1\"} 17\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_codec_seconds_bucket{le=\"+Inf\"} 18\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_codec_seconds_sum 0.625\n"), std::string::npos);
  EXPECT_NE(text.find("test_codec_seconds_count 18\n"), std::string::npos);
}

TEST(MetricsExpositionTest, RendersEmptyHistogramWithoutBuckets) {
  // A histogram cell with no bounds and no buckets (possible in a
  // decoded snapshot) must render parseable _sum/_count series and no
  // bucket lines — not a lone +Inf bucket invented from nothing.
  MetricsSnapshot snap;
  MetricSample hist;
  hist.kind = MetricSample::Kind::kHistogram;
  hist.name = "test_expo_empty_seconds";
  snap.samples.push_back(hist);

  const std::string text = RenderPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE test_expo_empty_seconds histogram\n"),
            std::string::npos);
  EXPECT_EQ(text.find("_bucket"), std::string::npos);
  EXPECT_NE(text.find("test_expo_empty_seconds_sum 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_empty_seconds_count 0\n"),
            std::string::npos);
}

TEST(MetricsExpositionTest, RendersNeverIncrementedCounterAsZero) {
  // Registering a counter and never bumping it still exports the
  // series at 0 — dashboards need the zero, not a missing series.
  MetricsRegistry::Global().GetCounter("test_expo_zero_total");
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const MetricSample* cell = snap.Find("test_expo_zero_total");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->counter, 0u);
  const std::string text = RenderPrometheusText(snap);
  EXPECT_NE(text.find("test_expo_zero_total 0\n"), std::string::npos);
  MetricsRegistry::Global().Remove("test_expo_zero_total");
}

TEST(MetricsExpositionTest, KeepsLabelUnsafeCharsVerbatim) {
  // The registry does not escape label values; the renderer must pass
  // quotes and backslashes through untouched rather than mangle the
  // name trying to be clever.
  MetricsSnapshot snap;
  MetricSample counter;
  counter.kind = MetricSample::Kind::kCounter;
  counter.name = "test_expo_weird_total{follower=\"a\\\"b\\\\c\"}";
  counter.counter = 7;
  snap.samples.push_back(counter);

  const std::string text = RenderPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE test_expo_weird_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("test_expo_weird_total{follower=\"a\\\"b\\\\c\"} 7\n"),
      std::string::npos);
}

TEST(MetricsExpositionTest, TreatsUnterminatedBraceAsUnlabeled) {
  // A '{' with no closing '}' does not split: the whole string is the
  // family, rendered verbatim (garbage in, unmangled garbage out).
  MetricsSnapshot snap;
  MetricSample counter;
  counter.kind = MetricSample::Kind::kCounter;
  counter.name = "test_expo_half{oops";
  counter.counter = 3;
  snap.samples.push_back(counter);

  const std::string text = RenderPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE test_expo_half{oops counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_half{oops 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, RemoveDropsSeriesFromSnapshots) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test_remove_gauge");
  gauge.Set(5);
  EXPECT_NE(MetricsRegistry::Global().Snapshot().Find("test_remove_gauge"),
            nullptr);
  MetricsRegistry::Global().Remove("test_remove_gauge");
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().Find("test_remove_gauge"),
            nullptr);
  // Removing again is a no-op, the old reference stays usable, and
  // re-asking registers a fresh zeroed cell.
  MetricsRegistry::Global().Remove("test_remove_gauge");
  gauge.Set(7);
  Gauge& fresh = MetricsRegistry::Global().GetGauge("test_remove_gauge");
  EXPECT_EQ(fresh.value(), 0);
  EXPECT_NE(&fresh, &gauge);
  MetricsRegistry::Global().Remove("test_remove_gauge");
}

TEST(MetricsExpositionTest, SplicesLeIntoExistingLabels) {
  MetricsSnapshot snap;
  MetricSample hist;
  hist.kind = MetricSample::Kind::kHistogram;
  hist.name = "test_expo_seconds{shard=\"3\"}";
  hist.histogram.bounds = {1};
  hist.histogram.buckets = {2, 0};
  hist.histogram.count = 2;
  hist.histogram.sum = 1.0;
  snap.samples.push_back(hist);

  const std::string text = RenderPrometheusText(snap);
  EXPECT_NE(text.find("test_expo_seconds_bucket{shard=\"3\",le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_seconds_sum{shard=\"3\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_seconds_count{shard=\"3\"} 2\n"),
            std::string::npos);
}

}  // namespace
}  // namespace paw

// Tests for provenance-graph serialization.

#include "src/provenance/serialize.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/repo/disease.h"
#include "src/repo/workload.h"
#include "src/workflow/builder.h"

namespace paw {
namespace {

class ExecSerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<Specification>(std::move(spec).value());
    auto exec = RunDiseaseExecution(*spec_);
    ASSERT_TRUE(exec.ok());
    exec_ = std::make_unique<Execution>(std::move(exec).value());
  }

  std::unique_ptr<Specification> spec_;
  std::unique_ptr<Execution> exec_;
};

TEST_F(ExecSerializeTest, RoundTripIsExact) {
  std::string text = SerializeExecution(*exec_);
  auto parsed = ParseExecution(text, *spec_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeExecution(parsed.value()), text);
  EXPECT_EQ(parsed.value().num_nodes(), exec_->num_nodes());
  EXPECT_EQ(parsed.value().num_items(), exec_->num_items());
  EXPECT_EQ(parsed.value().graph().num_edges(),
            exec_->graph().num_edges());
}

TEST_F(ExecSerializeTest, RoundTripPreservesSemantics) {
  auto parsed = ParseExecution(SerializeExecution(*exec_), *spec_);
  ASSERT_TRUE(parsed.ok());
  const Execution& p = parsed.value();
  // Process ids and labels intact.
  for (int s = 1; s <= 15; ++s) {
    EXPECT_EQ(p.NodeLabel(p.FindByProcess(s).value()),
              exec_->NodeLabel(exec_->FindByProcess(s).value()));
  }
  // Items intact, including values with special characters.
  for (int i = 0; i < p.num_items(); ++i) {
    EXPECT_EQ(p.item(DataItemId(i)).label,
              exec_->item(DataItemId(i)).label);
    EXPECT_EQ(p.item(DataItemId(i)).value,
              exec_->item(DataItemId(i)).value);
  }
  // Enclosing chains intact (needed for exec views).
  for (int i = 0; i < p.num_nodes(); ++i) {
    EXPECT_EQ(p.node(ExecNodeId(i)).enclosing,
              exec_->node(ExecNodeId(i)).enclosing);
  }
}

TEST_F(ExecSerializeTest, RejectsWrongSpec) {
  std::string text = SerializeExecution(*exec_);
  SpecBuilder b("other");
  WorkflowId w = b.AddWorkflow("W1", "top");
  ModuleId i = b.AddInput(w);
  ModuleId o = b.AddOutput(w);
  ASSERT_TRUE(b.Connect(i, o, {"x"}).ok());
  auto other = std::move(b).Build();
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(ParseExecution(text, other.value()).ok());
}

TEST_F(ExecSerializeTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseExecution("gibberish\n", *spec_).ok());
  EXPECT_FALSE(ParseExecution("node 0 atomic M1 process=1 enclosing=-1\n",
                              *spec_)
                   .ok());  // node before header
  std::string bad_module =
      "execution spec=\"disease susceptibility\"\n"
      "node 0 atomic M404 process=1 enclosing=-1\n";
  EXPECT_FALSE(ParseExecution(bad_module, *spec_).ok());
  std::string bad_ids =
      "execution spec=\"disease susceptibility\"\n"
      "node 5 atomic M3 process=1 enclosing=-1\n";
  EXPECT_FALSE(ParseExecution(bad_ids, *spec_).ok());
}

TEST(ExecSerializeGeneratedTest, GeneratedExecutionsRoundTrip) {
  Rng rng(2027);
  WorkloadParams params;
  params.depth = 2;
  for (int trial = 0; trial < 5; ++trial) {
    auto spec = GenerateSpec(params, &rng, "g" + std::to_string(trial));
    ASSERT_TRUE(spec.ok());
    auto exec = GenerateExecution(spec.value(), &rng);
    ASSERT_TRUE(exec.ok());
    std::string text = SerializeExecution(exec.value());
    auto parsed = ParseExecution(text, spec.value());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(SerializeExecution(parsed.value()), text);
  }
}

}  // namespace
}  // namespace paw

// Tests for graph algorithms: traversal, topology, quotients, cuts.

#include "src/graph/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace paw {
namespace {

Digraph Diamond() {
  // 0 -> {1,2} -> 3
  Digraph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_TRUE(g.AddEdge(1, 3).ok());
  EXPECT_TRUE(g.AddEdge(2, 3).ok());
  return g;
}

TEST(AlgorithmsTest, ReachableFromSingle) {
  Digraph g = Diamond();
  auto r = ReachableFrom(g, 0);
  EXPECT_EQ(r.size(), 4u);
  auto r1 = ReachableFrom(g, 1);
  std::sort(r1.begin(), r1.end());
  EXPECT_EQ(r1, (std::vector<NodeIndex>{1, 3}));
}

TEST(AlgorithmsTest, CanReach) {
  Digraph g = Diamond();
  auto r = CanReach(g, 3);
  EXPECT_EQ(r.size(), 4u);
  auto r2 = CanReach(g, 2);
  std::sort(r2.begin(), r2.end());
  EXPECT_EQ(r2, (std::vector<NodeIndex>{0, 2}));
}

TEST(AlgorithmsTest, PathExists) {
  Digraph g = Diamond();
  EXPECT_TRUE(PathExists(g, 0, 3));
  EXPECT_FALSE(PathExists(g, 3, 0));
  EXPECT_FALSE(PathExists(g, 1, 2));
  EXPECT_TRUE(PathExists(g, 2, 2));  // trivial
}

TEST(AlgorithmsTest, TopologicalOrderIsValid) {
  Digraph g = Diamond();
  auto order = TopologicalOrder(g);
  ASSERT_TRUE(order.ok());
  std::vector<int> pos(4);
  for (size_t i = 0; i < order.value().size(); ++i) {
    pos[static_cast<size_t>(order.value()[i])] = static_cast<int>(i);
  }
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_LT(pos[static_cast<size_t>(u)], pos[static_cast<size_t>(v)]);
  }
}

TEST(AlgorithmsTest, TopologicalOrderRejectsCycle) {
  Digraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  EXPECT_FALSE(TopologicalOrder(g).ok());
  EXPECT_FALSE(IsAcyclic(g));
  EXPECT_TRUE(IsAcyclic(Diamond()));
}

TEST(AlgorithmsTest, SourcesAndSinks) {
  Digraph g = Diamond();
  EXPECT_EQ(Sources(g), (std::vector<NodeIndex>{0}));
  EXPECT_EQ(Sinks(g), (std::vector<NodeIndex>{3}));
}

TEST(AlgorithmsTest, CountPathsDiamond) {
  Digraph g = Diamond();
  EXPECT_EQ(CountPaths(g, 0, 3), 2);
  EXPECT_EQ(CountPaths(g, 0, 0), 1);
  EXPECT_EQ(CountPaths(g, 3, 0), 0);
}

TEST(AlgorithmsTest, CountPathsLadderGrowsExponentially) {
  // k stacked diamonds: 2^k paths.
  const int k = 10;
  Digraph g(3 * k + 1);
  for (int i = 0; i < k; ++i) {
    NodeIndex base = 3 * i;
    ASSERT_TRUE(g.AddEdge(base, base + 1).ok());
    ASSERT_TRUE(g.AddEdge(base, base + 2).ok());
    ASSERT_TRUE(g.AddEdge(base + 1, base + 3).ok());
    ASSERT_TRUE(g.AddEdge(base + 2, base + 3).ok());
  }
  EXPECT_EQ(CountPaths(g, 0, 3 * k), 1 << k);
}

TEST(AlgorithmsTest, QuotientDiamond) {
  Digraph g = Diamond();
  // Merge {1,2} into group 1: 0 -> {1,2} -> 3 becomes 0 -> m -> 3.
  std::vector<NodeIndex> groups{0, 1, 1, 2};
  auto q = Quotient(g, groups, 3);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().graph.num_nodes(), 3);
  EXPECT_EQ(q.value().graph.num_edges(), 2);
  EXPECT_TRUE(q.value().graph.HasEdge(0, 1));
  EXPECT_TRUE(q.value().graph.HasEdge(1, 2));
  EXPECT_EQ(q.value().members[1],
            (std::vector<NodeIndex>{1, 2}));
}

TEST(AlgorithmsTest, QuotientRejectsBadInput) {
  Digraph g = Diamond();
  EXPECT_FALSE(Quotient(g, {0, 1}, 2).ok());                // size mismatch
  EXPECT_FALSE(Quotient(g, {0, 1, 5, 2}, 3).ok());          // out of range
}

TEST(AlgorithmsTest, InduceSubgraph) {
  Digraph g = Diamond();
  InducedSubgraph sub = Induce(g, {0, 1, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3);
  EXPECT_EQ(sub.kept, (std::vector<NodeIndex>{0, 1, 3}));
  EXPECT_TRUE(sub.graph.HasEdge(0, 1));   // 0->1
  EXPECT_TRUE(sub.graph.HasEdge(1, 2));   // 1->3
  EXPECT_EQ(sub.graph.num_edges(), 2);    // 0->2,2->3 dropped
}

TEST(AlgorithmsTest, MinEdgeCutDiamondNeedsTwo) {
  Digraph g = Diamond();
  auto cut = MinEdgeCut(g, 0, 3);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut.value().size(), 2u);
  // Removing the cut must disconnect.
  Digraph h = g;
  for (const auto& [u, v] : cut.value()) {
    ASSERT_TRUE(h.RemoveEdge(u, v).ok());
  }
  EXPECT_FALSE(PathExists(h, 0, 3));
}

TEST(AlgorithmsTest, MinEdgeCutChainNeedsOne) {
  Digraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  auto cut = MinEdgeCut(g, 0, 3);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut.value().size(), 1u);
}

TEST(AlgorithmsTest, MinEdgeCutUnreachableIsEmpty) {
  Digraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto cut = MinEdgeCut(g, 2, 0);
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE(cut.value().empty());
}

TEST(AlgorithmsTest, MinEdgeCutRejectsSameEndpoints) {
  Digraph g(2);
  EXPECT_FALSE(MinEdgeCut(g, 1, 1).ok());
}

TEST(AlgorithmsTest, DagLongestPath) {
  Digraph g = Diamond();
  auto d = DagLongestPath(g);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), 2);
}

}  // namespace
}  // namespace paw

// Tests for lineage queries ("what produced d / what did d affect").

#include "src/provenance/lineage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/repo/disease.h"

namespace paw {
namespace {

class LineageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<Specification>(std::move(spec).value());
    auto exec = RunDiseaseExecution(*spec_);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    exec_ = std::make_unique<Execution>(std::move(exec).value());
  }

  bool ConeContainsModule(const LineageResult& r, const std::string& code) {
    for (ExecNodeId n : r.nodes) {
      if (spec_->module(exec_->node(n).module).code == code) return true;
    }
    return false;
  }

  std::unique_ptr<Specification> spec_;
  std::unique_ptr<Execution> exec_;
};

TEST_F(LineageTest, ProvenanceOfPrognosisIsWholeRun) {
  // d19 (prognosis) depends on everything upstream of its producer M15:
  // all 20 nodes minus the downstream M2.end and O.
  auto r = ProvenanceOf(*exec_, DataItemId(19));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().nodes.size(), 18u);
  EXPECT_TRUE(ConeContainsModule(r.value(), "M3"));
  EXPECT_TRUE(ConeContainsModule(r.value(), "M10"));
}

TEST_F(LineageTest, ProvenanceOfDisordersExcludesW3) {
  // d10 (combined disorders from M8) must not include any W3 module.
  auto r = ProvenanceOf(*exec_, DataItemId(10));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ConeContainsModule(r.value(), "M5"));
  EXPECT_TRUE(ConeContainsModule(r.value(), "M6"));
  EXPECT_TRUE(ConeContainsModule(r.value(), "M7"));
  EXPECT_TRUE(ConeContainsModule(r.value(), "M8"));
  EXPECT_FALSE(ConeContainsModule(r.value(), "M9"));
  EXPECT_FALSE(ConeContainsModule(r.value(), "M15"));
  EXPECT_FALSE(ConeContainsModule(r.value(), "O"));
}

TEST_F(LineageTest, ProvenanceItemsAreUpstreamOnly) {
  auto r = ProvenanceOf(*exec_, DataItemId(10));
  ASSERT_TRUE(r.ok());
  // d19 is downstream of d10, so it cannot appear in d10's provenance.
  EXPECT_EQ(std::find(r.value().items.begin(), r.value().items.end(),
                      DataItemId(19)),
            r.value().items.end());
  // d5 (expanded SNPs) is upstream of d10.
  EXPECT_NE(std::find(r.value().items.begin(), r.value().items.end(),
                      DataItemId(5)),
            r.value().items.end());
}

TEST_F(LineageTest, AffectedByInputReachesEverything) {
  // d0 (the SNPs) ultimately affects the prognosis and O.
  auto r = AffectedBy(*exec_, DataItemId(0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ConeContainsModule(r.value(), "M3"));
  EXPECT_TRUE(ConeContainsModule(r.value(), "M15"));
  EXPECT_TRUE(ConeContainsModule(r.value(), "O"));
  // The producer itself (I) is not "affected".
  EXPECT_FALSE(ConeContainsModule(r.value(), "I"));
}

TEST_F(LineageTest, AffectedBySummaryIsNarrow) {
  // d16 (the article summary from M14) only flows into M15 and beyond.
  auto d16 = exec_->item(DataItemId(16));
  ASSERT_EQ(d16.label, "summary");
  auto r = AffectedBy(*exec_, DataItemId(16));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ConeContainsModule(r.value(), "M15"));
  EXPECT_FALSE(ConeContainsModule(r.value(), "M10"));
  EXPECT_FALSE(ConeContainsModule(r.value(), "M13"));
}

TEST_F(LineageTest, SubgraphIsConsistent) {
  auto r = ProvenanceOf(*exec_, DataItemId(10));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<size_t>(r.value().subgraph.num_nodes()),
            r.value().nodes.size());
  // The cone is closed under predecessors: sources of the subgraph are
  // also sources of the execution (only I here).
  EXPECT_TRUE(IsAcyclic(r.value().subgraph));
}

TEST_F(LineageTest, RejectsBadItem) {
  EXPECT_FALSE(ProvenanceOf(*exec_, DataItemId(999)).ok());
  EXPECT_FALSE(AffectedBy(*exec_, DataItemId(-1)).ok());
}

TEST_F(LineageTest, Contributes) {
  ExecNodeId m3 = exec_->FindByProcess(2).value();   // M3
  ExecNodeId m8 = exec_->FindByProcess(7).value();   // M8
  ExecNodeId m10 = exec_->FindByProcess(13).value(); // M10
  EXPECT_TRUE(Contributes(*exec_, m3, m8));
  EXPECT_FALSE(Contributes(*exec_, m8, m3));
  EXPECT_FALSE(Contributes(*exec_, m10, m8));
}

}  // namespace
}  // namespace paw

// Tests for the thread-safe group-commit WAL: concurrent appenders
// get unique, dense LSNs; the file replays every record in LSN order;
// a record's payload matches the LSN its appender was handed; and the
// single-threaded path still behaves exactly as before.

#include "src/store/wal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/store/record.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_wal_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(WalGroupCommitTest, AppendReturnsMonotonicLsnsSingleThread) {
  const std::string path = TestDir("single") + "/wal.log";
  auto wal = WriteAheadLog::Create(path, /*base_lsn=*/5);
  ASSERT_TRUE(wal.ok());
  for (uint64_t i = 1; i <= 10; ++i) {
    auto lsn = wal.value().Append(RecordType::kExecutionV2,
                                  "p" + std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(lsn.value(), 5 + i);
  }
  EXPECT_EQ(wal.value().last_lsn(), 15u);
  ASSERT_TRUE(wal.value().Sync().ok());

  WalReplay replay;
  auto reopened = WriteAheadLog::Open(path, &replay);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(replay.base_lsn, 5u);
  ASSERT_EQ(replay.records.size(), 10u);
  for (size_t i = 0; i < replay.records.size(); ++i) {
    EXPECT_EQ(replay.records[i].payload, "p" + std::to_string(i + 1));
  }
}

TEST(WalGroupCommitTest, ConcurrentAppendersGetUniqueLsnsInFileOrder) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  const std::string path = TestDir("concurrent") + "/wal.log";
  auto wal = WriteAheadLog::Create(path, 0);
  ASSERT_TRUE(wal.ok());

  // Every appender records the LSN it was handed for each payload.
  std::vector<std::map<uint64_t, std::string>> seen(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + ":" + std::to_string(i);
        auto lsn = wal.value().Append(RecordType::kExecutionV2, payload);
        if (!lsn.ok()) {
          ++failures;
          return;
        }
        seen[static_cast<size_t>(t)][lsn.value()] = payload;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(wal.value().Sync().ok());
  EXPECT_EQ(wal.value().last_lsn(),
            static_cast<uint64_t>(kThreads) * kPerThread);

  // Merge the per-thread views; LSNs must be globally unique.
  std::map<uint64_t, std::string> by_lsn;
  for (const auto& m : seen) {
    for (const auto& [lsn, payload] : m) {
      ASSERT_EQ(by_lsn.count(lsn), 0u) << "duplicate LSN " << lsn;
      by_lsn[lsn] = payload;
    }
  }
  ASSERT_EQ(by_lsn.size(), static_cast<size_t>(kThreads) * kPerThread);

  // Replay: record i carries LSN i+1, and its payload must be exactly
  // what the appender holding that LSN wrote.
  WalReplay replay;
  auto reopened = WriteAheadLog::Open(path, &replay);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(replay.records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 0; i < replay.records.size(); ++i) {
    const uint64_t lsn = i + 1;
    ASSERT_TRUE(by_lsn.count(lsn));
    EXPECT_EQ(replay.records[i].payload, by_lsn[lsn]) << "lsn=" << lsn;
  }
}

TEST(WalGroupCommitTest, ConcurrentDurableAppendersSurviveReplay) {
  // sync_each_append with concurrent callers: every acked append must
  // be present after reopen (the group fsync must cover the whole
  // batch before followers return).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  const std::string path = TestDir("durable") + "/wal.log";
  WalOptions options;
  options.sync_each_append = true;
  auto wal = WriteAheadLog::Create(path, 0, options);
  ASSERT_TRUE(wal.ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = wal.value().Append(
            RecordType::kSpecV2,
            "d" + std::to_string(t) + ":" + std::to_string(i));
        if (!lsn.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  WalReplay replay;
  auto reopened = WriteAheadLog::Open(path, &replay);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(replay.records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_FALSE(replay.torn_tail);
}

TEST(WalGroupCommitTest, RepeatedSyncIsIdempotent) {
  const std::string path = TestDir("sync") + "/wal.log";
  auto wal = WriteAheadLog::Create(path, 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "x").ok());
  ASSERT_TRUE(wal.value().Sync().ok());
  // Sync on an already-flushed log is a no-op that succeeds, and
  // appends keep working afterwards.
  ASSERT_TRUE(wal.value().Sync().ok());
  auto lsn = wal.value().Append(RecordType::kSpecV2, "y");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 2u);
}

}  // namespace
}  // namespace paw

// Tests for the thread-safe group-commit WAL: concurrent appenders
// get unique, dense LSNs; the file replays every record in LSN order;
// a record's payload matches the LSN its appender was handed; and the
// single-threaded path still behaves exactly as before.

#include "src/store/wal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/store/record.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_wal_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(WalGroupCommitTest, AppendReturnsMonotonicLsnsSingleThread) {
  const std::string dir = TestDir("single");
  auto wal = WriteAheadLog::Create(dir, /*base_lsn=*/5);
  ASSERT_TRUE(wal.ok());
  for (uint64_t i = 1; i <= 10; ++i) {
    auto lsn = wal.value().Append(RecordType::kExecutionV2,
                                  "p" + std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(lsn.value(), 5 + i);
  }
  EXPECT_EQ(wal.value().last_lsn(), 15u);
  ASSERT_TRUE(wal.value().Sync().ok());

  WalReplay replay;
  auto reopened = WriteAheadLog::Open(dir, &replay);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(replay.base_lsn, 5u);
  ASSERT_EQ(replay.records.size(), 10u);
  for (size_t i = 0; i < replay.records.size(); ++i) {
    EXPECT_EQ(replay.records[i].payload, "p" + std::to_string(i + 1));
  }
}

TEST(WalGroupCommitTest, ConcurrentAppendersGetUniqueLsnsInFileOrder) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  const std::string dir = TestDir("concurrent");
  auto wal = WriteAheadLog::Create(dir, 0);
  ASSERT_TRUE(wal.ok());

  // Every appender records the LSN it was handed for each payload.
  std::vector<std::map<uint64_t, std::string>> seen(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + ":" + std::to_string(i);
        auto lsn = wal.value().Append(RecordType::kExecutionV2, payload);
        if (!lsn.ok()) {
          ++failures;
          return;
        }
        seen[static_cast<size_t>(t)][lsn.value()] = payload;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(wal.value().Sync().ok());
  EXPECT_EQ(wal.value().last_lsn(),
            static_cast<uint64_t>(kThreads) * kPerThread);

  // Merge the per-thread views; LSNs must be globally unique.
  std::map<uint64_t, std::string> by_lsn;
  for (const auto& m : seen) {
    for (const auto& [lsn, payload] : m) {
      ASSERT_EQ(by_lsn.count(lsn), 0u) << "duplicate LSN " << lsn;
      by_lsn[lsn] = payload;
    }
  }
  ASSERT_EQ(by_lsn.size(), static_cast<size_t>(kThreads) * kPerThread);

  // Replay: record i carries LSN i+1, and its payload must be exactly
  // what the appender holding that LSN wrote.
  WalReplay replay;
  auto reopened = WriteAheadLog::Open(dir, &replay);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(replay.records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 0; i < replay.records.size(); ++i) {
    const uint64_t lsn = i + 1;
    ASSERT_TRUE(by_lsn.count(lsn));
    EXPECT_EQ(replay.records[i].payload, by_lsn[lsn]) << "lsn=" << lsn;
  }
}

TEST(WalGroupCommitTest, ConcurrentDurableAppendersSurviveReplay) {
  // sync_each_append with concurrent callers: every acked append must
  // be present after reopen (the group fsync must cover the whole
  // batch before followers return).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  const std::string dir = TestDir("durable");
  WalOptions options;
  options.sync_each_append = true;
  auto wal = WriteAheadLog::Create(dir, 0, options);
  ASSERT_TRUE(wal.ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = wal.value().Append(
            RecordType::kSpecV2,
            "d" + std::to_string(t) + ":" + std::to_string(i));
        if (!lsn.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  WalReplay replay;
  auto reopened = WriteAheadLog::Open(dir, &replay);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(replay.records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_FALSE(replay.torn_tail);
}

TEST(WalGroupCommitTest, RepeatedSyncIsIdempotent) {
  const std::string dir = TestDir("sync");
  auto wal = WriteAheadLog::Create(dir, 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "x").ok());
  ASSERT_TRUE(wal.value().Sync().ok());
  // Sync on an already-flushed log is a no-op that succeeds, and
  // appends keep working afterwards.
  ASSERT_TRUE(wal.value().Sync().ok());
  auto lsn = wal.value().Append(RecordType::kSpecV2, "y");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 2u);
}

TEST(WalSegmentTest, ExplicitRotateChainsSegments) {
  const std::string dir = TestDir("rotate");
  auto wal = WriteAheadLog::Create(dir, /*base_lsn=*/0);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.value().active_seq(), 1u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "a").ok());
  }
  auto rotation = wal.value().Rotate();
  ASSERT_TRUE(rotation.ok()) << rotation.status().ToString();
  EXPECT_EQ(rotation.value().sealed_seq, 1u);
  EXPECT_EQ(rotation.value().active_seq, 2u);
  EXPECT_EQ(rotation.value().end_lsn, 3u);
  EXPECT_EQ(wal.value().active_seq(), 2u);
  EXPECT_EQ(wal.value().base_lsn(), 3u);
  // LSNs keep counting across the rotation.
  auto lsn = wal.value().Append(RecordType::kSpecV2, "b");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 4u);
  ASSERT_TRUE(wal.value().Sync().ok());

  // Both segment files exist; replay walks the chain in order.
  EXPECT_TRUE(fs::exists(dir + "/" + WalSegmentFileName(1)));
  EXPECT_TRUE(fs::exists(dir + "/" + WalSegmentFileName(2)));
  WalReplay replay;
  auto reopened = WriteAheadLog::Open(dir, &replay);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(replay.segments, 2);
  EXPECT_EQ(replay.base_lsn, 0u);
  ASSERT_EQ(replay.records.size(), 4u);
  EXPECT_EQ(replay.records[3].payload, "b");
  EXPECT_EQ(reopened.value().last_lsn(), 4u);
  EXPECT_EQ(reopened.value().active_seq(), 2u);
}

TEST(WalSegmentTest, SizeThresholdRotatesAutomatically) {
  const std::string dir = TestDir("auto_rotate");
  WalOptions options;
  options.segment_bytes = 256;
  auto wal = WriteAheadLog::Create(dir, 0, options);
  ASSERT_TRUE(wal.ok());
  const std::string payload(100, 'p');
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(wal.value().Append(RecordType::kExecutionV2, payload).ok());
  }
  ASSERT_TRUE(wal.value().Sync().ok());
  EXPECT_GT(wal.value().active_seq(), 2u);
  // Every record survives across all segments, in LSN order.
  WalReplay replay;
  auto reopened = WriteAheadLog::Open(dir, &replay, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(replay.records.size(), 12u);
  EXPECT_EQ(replay.segments, static_cast<int>(wal.value().active_seq()));
  EXPECT_EQ(reopened.value().last_lsn(), 12u);
}

TEST(WalSegmentTest, ConcurrentAppendersSurviveRotations) {
  // Appenders race while segments seal under them (tiny threshold plus
  // explicit rotations): every acked LSN must replay with its payload,
  // in order, across the whole chain.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  const std::string dir = TestDir("concurrent_rotate");
  WalOptions options;
  options.segment_bytes = 1024;
  auto wal = WriteAheadLog::Create(dir, 0, options);
  ASSERT_TRUE(wal.ok());
  std::vector<std::map<uint64_t, std::string>> seen(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload =
            "r" + std::to_string(t) + ":" + std::to_string(i) +
            std::string(32, '.');
        auto lsn = wal.value().Append(RecordType::kExecutionV2, payload);
        if (!lsn.ok()) {
          ++failures;
          return;
        }
        seen[static_cast<size_t>(t)][lsn.value()] = payload;
      }
    });
  }
  // An explicit rotation racing the appenders (the background
  // compaction cut) must not lose or reorder anything either.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.value().Rotate().ok());
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(wal.value().Sync().ok());

  std::map<uint64_t, std::string> by_lsn;
  for (const auto& m : seen) {
    for (const auto& [lsn, payload] : m) {
      ASSERT_EQ(by_lsn.count(lsn), 0u) << "duplicate LSN " << lsn;
      by_lsn[lsn] = payload;
    }
  }
  ASSERT_EQ(by_lsn.size(), static_cast<size_t>(kThreads) * kPerThread);

  WalReplay replay;
  auto reopened = WriteAheadLog::Open(dir, &replay, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT(replay.segments, 1);
  ASSERT_EQ(replay.records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 0; i < replay.records.size(); ++i) {
    const uint64_t lsn = i + 1;
    ASSERT_TRUE(by_lsn.count(lsn));
    EXPECT_EQ(replay.records[i].payload, by_lsn[lsn]) << "lsn=" << lsn;
  }
}

TEST(WalSegmentTest, ListingAcceptsSeqsWiderThanThePadding) {
  // Filenames zero-pad to 8 digits but widen past 99,999,999; the
  // parser must not make such segments invisible to recovery.
  const std::string dir = TestDir("wide_seq");
  ASSERT_TRUE(AtomicWriteFile(dir + "/" + WalSegmentFileName(7), "x").ok());
  ASSERT_TRUE(
      AtomicWriteFile(dir + "/" + WalSegmentFileName(100000000), "x").ok());
  EXPECT_EQ(WalSegmentFileName(100000000), "wal-100000000.log");
  ASSERT_TRUE(AtomicWriteFile(dir + "/wal-junk.log", "x").ok());
  ASSERT_TRUE(AtomicWriteFile(dir + "/wal-00000000.log", "x").ok());  // seq 0
  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments.value().size(), 2u);
  EXPECT_EQ(segments.value()[0].seq, 7u);
  EXPECT_EQ(segments.value()[1].seq, 100000000u);
}

TEST(WalSegmentTest, ManifestBumpReclaimsStaleSegments) {
  // Crash window of a compaction: the manifest names a newer first
  // segment but the unlinks never ran. Open must reclaim the stale
  // files and replay only from `first`.
  const std::string dir = TestDir("stale");
  auto wal = WriteAheadLog::Create(dir, 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "old").ok());
  ASSERT_TRUE(wal.value().Rotate().ok());
  ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "new").ok());
  ASSERT_TRUE(wal.value().Sync().ok());
  ASSERT_TRUE(WriteWalManifest(dir, 2).ok());

  WalReplay replay;
  auto reopened = WriteAheadLog::Open(dir, &replay);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(replay.stale_segments_removed, 1);
  EXPECT_EQ(replay.first_seq, 2u);
  // Only the live segment's record replays; its LSN is preserved.
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, "new");
  EXPECT_EQ(replay.base_lsn, 1u);
  EXPECT_FALSE(fs::exists(dir + "/" + WalSegmentFileName(1)));
}

TEST(WalSegmentTest, MissingLiveSegmentIsCorruption) {
  const std::string dir = TestDir("hole");
  auto wal = WriteAheadLog::Create(dir, 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "a").ok());
  ASSERT_TRUE(wal.value().Rotate().ok());
  ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "b").ok());
  ASSERT_TRUE(wal.value().Rotate().ok());
  ASSERT_TRUE(wal.value().Sync().ok());
  // Deleting a *live* middle segment (no manifest bump) is a hole the
  // chain check must refuse — silently skipping it would resurrect
  // later records with wrong LSNs.
  ASSERT_TRUE(RemoveFileIfExists(dir + "/" + WalSegmentFileName(2)).ok());
  WalReplay replay;
  EXPECT_FALSE(WriteAheadLog::Open(dir, &replay).ok());
}

TEST(WalReplicationTest, CommitSinkSeesEveryBatchInLsnOrder) {
  // The commit sink is the leader-side replication tap: concurrent
  // appenders ride shared group commits, and the sink must still see a
  // gapless, ordered LSN stream whose frames re-parse to the payloads
  // the appenders wrote.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  const std::string dir = TestDir("sink");
  auto wal = WriteAheadLog::Create(dir, 0);
  ASSERT_TRUE(wal.ok());

  std::mutex mu;
  uint64_t next_expected = 1;
  std::map<uint64_t, std::string> streamed;
  wal.value().SetCommitSink([&](uint64_t first_lsn, uint64_t num_records,
                                std::string_view frames,
                                const std::vector<TraceContext>& traces) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(first_lsn, next_expected) << "gap in the sink stream";
    // One captured trace context per record, always (null ones for
    // appenders with no current trace, like these).
    EXPECT_EQ(traces.size(), num_records);
    RecordReader reader(frames);
    Record record;
    uint64_t lsn = first_lsn;
    while (reader.Next(&record) == ReadOutcome::kRecord) {
      streamed[lsn++] = std::string(record.payload);
    }
    EXPECT_EQ(lsn, first_lsn + num_records);
    next_expected = lsn;
  });

  std::vector<std::map<uint64_t, std::string>> seen(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload =
            "s" + std::to_string(t) + ":" + std::to_string(i);
        auto lsn = wal.value().Append(RecordType::kExecutionV2, payload);
        if (!lsn.ok()) {
          ++failures;
          return;
        }
        seen[static_cast<size_t>(t)][lsn.value()] = payload;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(wal.value().Sync().ok());
  wal.value().SetCommitSink(nullptr);

  // The sink saw exactly the records the appenders were acked for —
  // same LSNs, same payloads (disk content never lags the sink: the
  // batch is written and flushed before the sink fires).
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(streamed.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (const auto& m : seen) {
    for (const auto& [lsn, payload] : m) {
      ASSERT_TRUE(streamed.count(lsn)) << "lsn " << lsn << " not streamed";
      EXPECT_EQ(streamed[lsn], payload) << "lsn=" << lsn;
    }
  }
}

TEST(WalReplicationTest, RetainFloorBlocksReclaimUntilReleased) {
  // A subscriber checkpoint pins sealed segments: the manifest may
  // move past them, but neither open-time reclaim nor compaction
  // cleanup may unlink a pinned segment — a lagging follower still
  // needs to stream it.
  const std::string dir = TestDir("floor");
  auto wal = WriteAheadLog::Create(dir, 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "old").ok());
  ASSERT_TRUE(wal.value().Rotate().ok());
  ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "new").ok());
  ASSERT_TRUE(wal.value().Sync().ok());
  ASSERT_TRUE(wal.value().SetRetainFloor(1).ok());
  EXPECT_EQ(wal.value().retain_floor(), 1u);
  // The pin is durable on its own (PAWREPL), independent of the log.
  auto floor = ReadWalRetainFloor(dir);
  ASSERT_TRUE(floor.ok());
  EXPECT_EQ(floor.value(), 1u);

  // Compaction commit point: manifest says first=2, but segment 1 is
  // pinned. Open must keep the file, skip its records, and report it.
  ASSERT_TRUE(WriteWalManifest(dir, 2).ok());
  {
    WalReplay replay;
    auto reopened = WriteAheadLog::Open(dir, &replay);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(replay.stale_segments_removed, 0);
    EXPECT_EQ(replay.retained_segments, 1);
    ASSERT_EQ(replay.records.size(), 1u);
    EXPECT_EQ(replay.records[0].payload, "new");
    EXPECT_TRUE(fs::exists(dir + "/" + WalSegmentFileName(1)));
    // The reopened log carries the persisted floor.
    EXPECT_EQ(reopened.value().retain_floor(), 1u);

    // Releasing the pin makes the next open reclaim the segment.
    ASSERT_TRUE(
        reopened.value().SetRetainFloor(WriteAheadLog::kNoRetainFloor)
            .ok());
  }
  WalReplay replay;
  auto reopened = WriteAheadLog::Open(dir, &replay);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(replay.stale_segments_removed, 1);
  EXPECT_EQ(replay.retained_segments, 0);
  EXPECT_FALSE(fs::exists(dir + "/" + WalSegmentFileName(1)));
}

TEST(WalSegmentTest, LegacySingleFileLayoutUpgradesInPlace) {
  const std::string dir = TestDir("legacy");
  // Build a segmented log, then dress it up as the old layout: one
  // `wal.log`, no manifest.
  auto wal = WriteAheadLog::Create(dir, /*base_lsn=*/7);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value().Append(RecordType::kSpecV2, "x").ok());
  ASSERT_TRUE(wal.value().Sync().ok());
  ASSERT_TRUE(RenameFile(dir + "/" + WalSegmentFileName(1),
                         dir + "/wal.log").ok());
  ASSERT_TRUE(RemoveFileIfExists(dir + "/PAWWAL").ok());

  WalReplay replay;
  auto reopened = WriteAheadLog::Open(dir, &replay);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(replay.legacy_upgraded);
  EXPECT_EQ(replay.base_lsn, 7u);
  ASSERT_EQ(replay.records.size(), 1u);
  // The layout is now segmented: manifest + wal-00000001.log.
  EXPECT_TRUE(fs::exists(dir + "/" + WalSegmentFileName(1)));
  EXPECT_FALSE(fs::exists(dir + "/wal.log"));
  ASSERT_TRUE(ReadWalManifest(dir).ok());
  // And it keeps appending where the legacy file left off.
  auto lsn = reopened.value().Append(RecordType::kSpecV2, "y");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 9u);
}

}  // namespace
}  // namespace paw

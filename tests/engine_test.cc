// Tests for the privacy-preserving query engine facade.

#include "src/query/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/random.h"
#include "src/privacy/data_privacy.h"
#include "src/privacy/view_cache.h"
#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_id_ =
        repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
            .value();
    auto exec = RunDiseaseExecution(repo_.entry(spec_id_).spec);
    ASSERT_TRUE(exec.ok());
    exec_id_ = repo_.AddExecution(spec_id_, std::move(exec).value()).value();

    public_user_ = acl_.AddPrincipal("public", 0, "anon").value();
    analyst_ = acl_.AddPrincipal("analyst", 1, "lab").value();
    owner_ = acl_.AddPrincipal("owner", 2, "lab").value();

    engine_ = std::make_unique<QueryEngine>(repo_, acl_);
  }

  Repository repo_;
  AccessControl acl_;
  int spec_id_ = -1;
  ExecutionId exec_id_;
  PrincipalId public_user_, analyst_, owner_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(EngineTest, SearchRespectsLevels) {
  auto for_owner = engine_->Search(owner_, {"database queries"});
  ASSERT_TRUE(for_owner.ok());
  EXPECT_EQ(for_owner.value().size(), 1u);

  auto for_public = engine_->Search(public_user_, {"database queries"});
  ASSERT_TRUE(for_public.ok());
  EXPECT_TRUE(for_public.value().empty());
}

TEST_F(EngineTest, SearchCachePartitionedByGroupAndLevel) {
  ASSERT_TRUE(engine_->Search(owner_, {"reformat"}).ok());
  EXPECT_EQ(engine_->cache_stats().misses, 1);
  ASSERT_TRUE(engine_->Search(owner_, {"reformat"}).ok());
  EXPECT_EQ(engine_->cache_stats().hits, 1);
  // The analyst shares the group but not the level: separate partition.
  ASSERT_TRUE(engine_->Search(analyst_, {"reformat"}).ok());
  EXPECT_EQ(engine_->cache_stats().misses, 2);
}

TEST_F(EngineTest, LineageMasksSensitiveValues) {
  // d19 = prognosis; the analyst (level 1) may see structure but not
  // level-2 values like disorders or prognosis.
  auto answer = engine_->Lineage(analyst_, exec_id_, DataItemId(19));
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  bool saw_masked = false;
  for (const std::string& row : answer.value().rows) {
    if (row.find(kMaskedValue) != std::string::npos) saw_masked = true;
    // Raw genetic values must never appear.
    EXPECT_EQ(row.find("rs429358"), std::string::npos) << row;
  }
  EXPECT_TRUE(saw_masked);
}

TEST_F(EngineTest, LineageForOwnerShowsValues) {
  auto answer = engine_->Lineage(owner_, exec_id_, DataItemId(19));
  ASSERT_TRUE(answer.ok());
  bool saw_value = false;
  for (const std::string& row : answer.value().rows) {
    if (row.find("risk{") != std::string::npos) saw_value = true;
  }
  EXPECT_TRUE(saw_value);
  EXPECT_EQ(answer.value().zoom_steps, 0);
}

TEST_F(EngineTest, LineageZoomsOutForStructuralPolicy) {
  // Analyst at level 1 would see M13 ~> M11 via W3; the engine must zoom
  // the answer out of W3.
  auto answer = engine_->Lineage(analyst_, exec_id_, DataItemId(19));
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer.value().zoom_steps, 0);
  const Specification& spec = repo_.entry(spec_id_).spec;
  WorkflowId w3 = spec.FindWorkflow("W3").value();
  EXPECT_FALSE(answer.value().prefix.count(w3));
  for (const std::string& row : answer.value().rows) {
    EXPECT_EQ(row.find("M13"), std::string::npos) << row;
  }
}

TEST_F(EngineTest, StructuralQueryAtAccessView) {
  StructuralPattern pattern;
  pattern.vars = {{"expand snp"}, {"consult external"}};
  pattern.edges = {{0, 1, true}};
  // The analyst (level 1) sees W2's contents: M3 -> M4.
  auto matches = engine_->Structural(analyst_, spec_id_, pattern);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().size(), 1u);
  // The public user sees only the root view; M3 is invisible.
  auto none = engine_->Structural(public_user_, spec_id_, pattern);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST_F(EngineTest, SearchExecutionsPaperExemplarQuery) {
  // "find executions where Expand SNP Set was executed before Query
  // OMIM and return the provenance information for the latter."
  StructuralPattern pattern;
  pattern.vars = {{"expand snp"}, {"query omim"}};
  pattern.edges = {{0, 1, /*transitive=*/true}};
  auto hits = engine_->SearchExecutions(owner_, pattern,
                                        /*provenance_var=*/1);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_EQ(hits.value().size(), 1u);
  const auto& hit = hits.value()[0];
  EXPECT_EQ(hit.exec_id, exec_id_);
  EXPECT_EQ(hit.num_matches, 1);
  // The provenance of Query OMIM covers the genetic arm but not W3.
  bool mentions_m5 = false;
  for (const std::string& row : hit.provenance.rows) {
    if (row.find("M5") != std::string::npos) mentions_m5 = true;
    EXPECT_EQ(row.find("M9"), std::string::npos) << row;
  }
  EXPECT_TRUE(mentions_m5);
}

TEST_F(EngineTest, SearchExecutionsRespectsAccessViews) {
  StructuralPattern pattern;
  pattern.vars = {{"expand snp"}, {"query omim"}};
  pattern.edges = {{0, 1, true}};
  // M3 and M6 live in W2 (level 1) and W4 (level 2): invisible to the
  // public user and partially invisible to the analyst.
  auto for_public = engine_->SearchExecutions(public_user_, pattern, 1);
  ASSERT_TRUE(for_public.ok());
  EXPECT_TRUE(for_public.value().empty());
  auto for_analyst = engine_->SearchExecutions(analyst_, pattern, 1);
  ASSERT_TRUE(for_analyst.ok());
  EXPECT_TRUE(for_analyst.value().empty());  // Query OMIM needs level 2
  auto for_owner = engine_->SearchExecutions(owner_, pattern, 1);
  ASSERT_TRUE(for_owner.ok());
  EXPECT_EQ(for_owner.value().size(), 1u);
}

TEST_F(EngineTest, SearchExecutionsValidatesVarIndex) {
  StructuralPattern pattern;
  pattern.vars = {{"x"}};
  EXPECT_FALSE(engine_->SearchExecutions(owner_, pattern, 3).ok());
  EXPECT_FALSE(engine_->SearchExecutions(owner_, pattern, -1).ok());
}

TEST_F(EngineTest, ErrorsOnUnknownIds) {
  EXPECT_FALSE(engine_->Search(PrincipalId(42), {"x"}).ok());
  EXPECT_FALSE(
      engine_->Lineage(owner_, ExecutionId(9), DataItemId(0)).ok());
  EXPECT_FALSE(
      engine_->Lineage(owner_, exec_id_, DataItemId(999)).ok());
  StructuralPattern pattern;
  pattern.vars = {{"x"}};
  EXPECT_FALSE(engine_->Structural(owner_, 7, pattern).ok());
}

TEST_F(EngineTest, IndexIsBuilt) {
  EXPECT_GT(engine_->index().num_tokens(), 0);
  EXPECT_EQ(engine_->index().num_docs(), 1);
}

TEST_F(EngineTest, CacheHitServesIdenticalAnswers) {
  auto first = engine_->Search(owner_, {"disorder"});
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().empty());
  EXPECT_EQ(engine_->cache_stats().hits, 0);
  auto second = engine_->Search(owner_, {"disorder"});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine_->cache_stats().hits, 1);
  // The hit is served from the serialized cache entry; it must decode
  // to exactly what the cold query computed.
  ASSERT_EQ(second.value().size(), first.value().size());
  for (size_t i = 0; i < first.value().size(); ++i) {
    const KeywordAnswer& a = first.value()[i];
    const KeywordAnswer& b = second.value()[i];
    EXPECT_EQ(b.spec_id, a.spec_id);
    EXPECT_EQ(b.prefix, a.prefix);
    EXPECT_EQ(b.matched, a.matched);
    EXPECT_EQ(b.view_size, a.view_size);
    EXPECT_DOUBLE_EQ(b.score, a.score);
  }
}

TEST_F(EngineTest, SpecAppendInvalidatesCachedAnswers) {
  ASSERT_TRUE(engine_->Search(owner_, {"disorder"}).ok());
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  // A second copy of the spec (the in-memory repository does not
  // enforce unique names): the same query must now return two answers,
  // so the cached one is unusable.
  ASSERT_TRUE(
      repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
          .ok());
  auto after = engine_->Search(owner_, {"disorder"});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 2u);
  EXPECT_EQ(engine_->cache_stats().hits, 0);
}

TEST_F(EngineTest, ExecutionAppendKeepsKeywordCacheHot) {
  ASSERT_TRUE(engine_->Search(owner_, {"disorder"}).ok());
  // Keyword answers depend only on the spec slice of the cut, so
  // execution ingest must not cost cache hits (E12's workload).
  auto exec = RunDiseaseExecution(repo_.entry(spec_id_).spec);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(repo_.AddExecution(spec_id_, std::move(exec).value()).ok());
  ASSERT_TRUE(engine_->Search(owner_, {"disorder"}).ok());
  EXPECT_EQ(engine_->cache_stats().hits, 1);
}

TEST_F(EngineTest, CatchesUpToAppendsAfterConstruction) {
  // Spec + execution appended after the engine pinned its view: every
  // entry point must observe them (delta catch-up, not a rebuild).
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid =
      repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
          .value();
  auto exec = RunDiseaseExecution(repo_.entry(sid).spec);
  ASSERT_TRUE(exec.ok());
  ExecutionId eid =
      repo_.AddExecution(sid, std::move(exec).value()).value();

  auto found = engine_->ExecutionByOrdinal(sid, 0);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found.value()->id, eid);
  EXPECT_FALSE(engine_->ExecutionByOrdinal(sid, 1).ok());
  ASSERT_NE(engine_->SpecEntryAt(sid), nullptr);
  EXPECT_EQ(engine_->SpecEntryAt(sid)->id, sid);
  EXPECT_EQ(engine_->SpecEntryAt(99), nullptr);
  auto lineage = engine_->Lineage(owner_, eid, DataItemId(19));
  EXPECT_TRUE(lineage.ok()) << lineage.status().ToString();
}

TEST_F(EngineTest, IncrementalAnswersMatchFreshEngine) {
  // Append more entries, query the long-lived engine (delta catch-up),
  // and compare against an engine built from scratch on the final
  // repository state.
  for (int i = 0; i < 3; ++i) {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    int sid =
        repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
            .value();
    auto exec = RunDiseaseExecution(repo_.entry(sid).spec);
    ASSERT_TRUE(exec.ok());
    ASSERT_TRUE(repo_.AddExecution(sid, std::move(exec).value()).ok());
  }
  QueryEngine fresh(repo_, acl_);
  for (const char* term : {"disorder", "database queries", "reformat"}) {
    auto incremental = engine_->Search(owner_, {term});
    auto baseline = fresh.Search(owner_, {term});
    ASSERT_TRUE(incremental.ok());
    ASSERT_TRUE(baseline.ok());
    ASSERT_EQ(incremental.value().size(), baseline.value().size())
        << term;
    for (size_t i = 0; i < baseline.value().size(); ++i) {
      EXPECT_EQ(incremental.value()[i].spec_id,
                baseline.value()[i].spec_id);
      EXPECT_DOUBLE_EQ(incremental.value()[i].score,
                       baseline.value()[i].score);
    }
  }
}

TEST_F(EngineTest, ViewCacheStaysHotAcrossExecutionIngest) {
  // Memoized views depend only on immutable spec/execution entries, so
  // execution ingest (the E13 steady state) must not cost view-cache
  // misses.
  PrivacyViewCache local;
  EngineOptions opts;
  opts.view_cache_instance = &local;
  QueryEngine engine(repo_, acl_, opts);
  StructuralPattern pattern;
  pattern.vars = {{"expand snp"}, {"consult external"}};
  pattern.edges = {{0, 1, true}};
  ASSERT_TRUE(engine.Lineage(analyst_, exec_id_, DataItemId(19)).ok());
  ASSERT_TRUE(engine.Structural(analyst_, spec_id_, pattern).ok());
  const uint64_t cold_misses = local.stats().misses;

  auto exec = RunDiseaseExecution(repo_.entry(spec_id_).spec);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(repo_.AddExecution(spec_id_, std::move(exec).value()).ok());

  ASSERT_TRUE(engine.Lineage(analyst_, exec_id_, DataItemId(19)).ok());
  ASSERT_TRUE(engine.Structural(analyst_, spec_id_, pattern).ok());
  EXPECT_EQ(local.stats().misses, cold_misses);
  EXPECT_GE(local.stats().hits, 2u);
}

TEST_F(EngineTest, InvalidateSpecViewsEvictsOnlyThatSpec) {
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  const int sid2 =
      repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
          .value();
  auto exec = RunDiseaseExecution(repo_.entry(sid2).spec);
  ASSERT_TRUE(exec.ok());
  const ExecutionId eid2 =
      repo_.AddExecution(sid2, std::move(exec).value()).value();

  PrivacyViewCache local;
  EngineOptions opts;
  opts.view_cache_instance = &local;
  QueryEngine engine(repo_, acl_, opts);
  ASSERT_TRUE(engine.Lineage(analyst_, exec_id_, DataItemId(19)).ok());
  ASSERT_TRUE(engine.Lineage(analyst_, eid2, DataItemId(19)).ok());

  engine.InvalidateSpecViews(spec_id_);
  const uint64_t misses = local.stats().misses;
  // The untouched spec's views are still hot...
  ASSERT_TRUE(engine.Lineage(analyst_, eid2, DataItemId(19)).ok());
  EXPECT_EQ(local.stats().misses, misses);
  // ...while the invalidated spec's views recompute exactly once.
  ASSERT_TRUE(engine.Lineage(analyst_, exec_id_, DataItemId(19)).ok());
  EXPECT_EQ(local.stats().misses, misses + 1);
  ASSERT_TRUE(engine.Lineage(analyst_, exec_id_, DataItemId(19)).ok());
  EXPECT_EQ(local.stats().misses, misses + 1);
}

TEST_F(EngineTest, ExecutionMaskIsCachedPerGroup) {
  PrivacyViewCache local;
  EngineOptions opts;
  opts.view_cache_instance = &local;
  QueryEngine engine(repo_, acl_, opts);
  auto first = engine.ExecutionMask(analyst_, exec_id_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = engine.ExecutionMask(analyst_, exec_id_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(local.stats().hits, 1u);
  EXPECT_EQ(second.value()->visible, first.value()->visible);
  // A different level is a different cache group — and a different
  // mask.
  auto for_owner = engine.ExecutionMask(owner_, exec_id_);
  ASSERT_TRUE(for_owner.ok());
  EXPECT_GT(for_owner.value()->num_visible, first.value()->num_visible);
  EXPECT_FALSE(engine.ExecutionMask(analyst_, ExecutionId(99)).ok());
}

// Randomized equivalence: a view-cache-enabled engine and a
// cache-disabled engine must give byte-identical answers across random
// policy / level / principal / query mixes over generated workloads.
TEST(EngineViewCacheFuzzTest, CachedAnswersMatchUncached) {
  Repository repo;
  AccessControl acl;
  Rng rng(20260808);
  WorkloadParams params;
  params.depth = 3;
  params.modules_per_workflow = 5;
  params.composite_prob = 0.5;
  params.vocabulary = 12;
  params.max_level = 3;
  std::vector<int> spec_ids;
  for (int s = 0; s < 3; ++s) {
    auto spec =
        GenerateSpec(params, &rng, "fuzz spec " + std::to_string(s));
    ASSERT_TRUE(spec.ok());
    // Random per-spec policy: data level 1 or 2, plus a structural
    // requirement inside one non-root workflow when available.
    PolicySet policy;
    policy.data.default_level = 1 + s % 2;
    const Module* src = nullptr;
    const Module* dst = nullptr;
    for (const Module& m : spec.value().modules()) {
      if (m.kind == ModuleKind::kAtomic &&
          m.workflow != spec.value().root()) {
        if (src == nullptr || m.workflow != src->workflow) {
          src = &m;
          dst = nullptr;
        } else {
          dst = &m;
        }
      }
    }
    if (src != nullptr && dst != nullptr) {
      policy.structural_reqs.push_back(
          {src->code, dst->code, /*required_level=*/2});
    }
    const int sid =
        repo.AddSpecification(std::move(spec).value(), std::move(policy))
            .value();
    spec_ids.push_back(sid);
    for (int e = 0; e < 2; ++e) {
      auto exec = GenerateExecution(repo.entry(sid).spec, &rng);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(repo.AddExecution(sid, std::move(exec).value()).ok());
    }
  }
  std::vector<PrincipalId> principals;
  for (int level = 0; level <= 3; ++level) {
    for (const char* group : {"ga", "gb"}) {
      principals.push_back(
          acl.AddPrincipal(std::string(group) + std::to_string(level),
                           level, group)
              .value());
    }
  }

  PrivacyViewCache local;
  EngineOptions cached_opts;
  cached_opts.view_cache_instance = &local;
  QueryEngine cached(repo, acl, cached_opts);
  EngineOptions plain_opts;
  plain_opts.view_cache = false;
  QueryEngine plain(repo, acl, plain_opts);

  Rng fuzz(99);
  for (int i = 0; i < 150; ++i) {
    const PrincipalId p =
        principals[fuzz.Uniform(principals.size())];
    switch (fuzz.Uniform(3)) {
      case 0: {
        const int sid =
            spec_ids[fuzz.Uniform(spec_ids.size())];
        StructuralPattern pattern;
        pattern.vars = {{"kw" + std::to_string(fuzz.Uniform(12))},
                        {"kw" + std::to_string(fuzz.Uniform(12))}};
        pattern.edges = {{0, 1, fuzz.Uniform(2) == 0}};
        auto a = cached.Structural(p, sid, pattern);
        auto b = plain.Structural(p, sid, pattern);
        ASSERT_EQ(a.ok(), b.ok());
        if (!a.ok()) break;
        ASSERT_EQ(a.value().size(), b.value().size());
        for (size_t m = 0; m < a.value().size(); ++m) {
          EXPECT_EQ(a.value()[m].binding, b.value()[m].binding);
        }
        break;
      }
      case 1: {
        const ExecutionId e(static_cast<int32_t>(
            fuzz.Uniform(static_cast<uint64_t>(repo.num_executions()))));
        auto a = cached.Lineage(p, e, DataItemId(0));
        auto b = plain.Lineage(p, e, DataItemId(0));
        ASSERT_EQ(a.ok(), b.ok()) << a.status().ToString() << " vs "
                                  << b.status().ToString();
        if (!a.ok()) break;
        EXPECT_EQ(a.value().prefix, b.value().prefix);
        EXPECT_EQ(a.value().zoom_steps, b.value().zoom_steps);
        EXPECT_EQ(a.value().rows, b.value().rows);
        break;
      }
      case 2: {
        const ExecutionId e(static_cast<int32_t>(
            fuzz.Uniform(static_cast<uint64_t>(repo.num_executions()))));
        auto a = cached.ExecutionMask(p, e);
        auto b = plain.ExecutionMask(p, e);
        ASSERT_EQ(a.ok(), b.ok());
        if (!a.ok()) break;
        EXPECT_EQ(a.value()->visible, b.value()->visible);
        EXPECT_EQ(a.value()->num_masked, b.value()->num_masked);
        EXPECT_EQ(a.value()->num_visible, b.value()->num_visible);
        break;
      }
    }
  }
  // The mix repeats (principal-group, entry) pairs, so the cached
  // engine must actually have served from the cache.
  EXPECT_GT(local.stats().hits, 0u);
}

}  // namespace
}  // namespace paw

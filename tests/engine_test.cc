// Tests for the privacy-preserving query engine facade.

#include "src/query/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/privacy/data_privacy.h"
#include "src/repo/disease.h"

namespace paw {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    spec_id_ =
        repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
            .value();
    auto exec = RunDiseaseExecution(repo_.entry(spec_id_).spec);
    ASSERT_TRUE(exec.ok());
    exec_id_ = repo_.AddExecution(spec_id_, std::move(exec).value()).value();

    public_user_ = acl_.AddPrincipal("public", 0, "anon").value();
    analyst_ = acl_.AddPrincipal("analyst", 1, "lab").value();
    owner_ = acl_.AddPrincipal("owner", 2, "lab").value();

    engine_ = std::make_unique<QueryEngine>(repo_, acl_);
  }

  Repository repo_;
  AccessControl acl_;
  int spec_id_ = -1;
  ExecutionId exec_id_;
  PrincipalId public_user_, analyst_, owner_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(EngineTest, SearchRespectsLevels) {
  auto for_owner = engine_->Search(owner_, {"database queries"});
  ASSERT_TRUE(for_owner.ok());
  EXPECT_EQ(for_owner.value().size(), 1u);

  auto for_public = engine_->Search(public_user_, {"database queries"});
  ASSERT_TRUE(for_public.ok());
  EXPECT_TRUE(for_public.value().empty());
}

TEST_F(EngineTest, SearchCachePartitionedByGroupAndLevel) {
  ASSERT_TRUE(engine_->Search(owner_, {"reformat"}).ok());
  EXPECT_EQ(engine_->cache_stats().misses, 1);
  ASSERT_TRUE(engine_->Search(owner_, {"reformat"}).ok());
  EXPECT_EQ(engine_->cache_stats().hits, 1);
  // The analyst shares the group but not the level: separate partition.
  ASSERT_TRUE(engine_->Search(analyst_, {"reformat"}).ok());
  EXPECT_EQ(engine_->cache_stats().misses, 2);
}

TEST_F(EngineTest, LineageMasksSensitiveValues) {
  // d19 = prognosis; the analyst (level 1) may see structure but not
  // level-2 values like disorders or prognosis.
  auto answer = engine_->Lineage(analyst_, exec_id_, DataItemId(19));
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  bool saw_masked = false;
  for (const std::string& row : answer.value().rows) {
    if (row.find(kMaskedValue) != std::string::npos) saw_masked = true;
    // Raw genetic values must never appear.
    EXPECT_EQ(row.find("rs429358"), std::string::npos) << row;
  }
  EXPECT_TRUE(saw_masked);
}

TEST_F(EngineTest, LineageForOwnerShowsValues) {
  auto answer = engine_->Lineage(owner_, exec_id_, DataItemId(19));
  ASSERT_TRUE(answer.ok());
  bool saw_value = false;
  for (const std::string& row : answer.value().rows) {
    if (row.find("risk{") != std::string::npos) saw_value = true;
  }
  EXPECT_TRUE(saw_value);
  EXPECT_EQ(answer.value().zoom_steps, 0);
}

TEST_F(EngineTest, LineageZoomsOutForStructuralPolicy) {
  // Analyst at level 1 would see M13 ~> M11 via W3; the engine must zoom
  // the answer out of W3.
  auto answer = engine_->Lineage(analyst_, exec_id_, DataItemId(19));
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer.value().zoom_steps, 0);
  const Specification& spec = repo_.entry(spec_id_).spec;
  WorkflowId w3 = spec.FindWorkflow("W3").value();
  EXPECT_FALSE(answer.value().prefix.count(w3));
  for (const std::string& row : answer.value().rows) {
    EXPECT_EQ(row.find("M13"), std::string::npos) << row;
  }
}

TEST_F(EngineTest, StructuralQueryAtAccessView) {
  StructuralPattern pattern;
  pattern.vars = {{"expand snp"}, {"consult external"}};
  pattern.edges = {{0, 1, true}};
  // The analyst (level 1) sees W2's contents: M3 -> M4.
  auto matches = engine_->Structural(analyst_, spec_id_, pattern);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().size(), 1u);
  // The public user sees only the root view; M3 is invisible.
  auto none = engine_->Structural(public_user_, spec_id_, pattern);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST_F(EngineTest, SearchExecutionsPaperExemplarQuery) {
  // "find executions where Expand SNP Set was executed before Query
  // OMIM and return the provenance information for the latter."
  StructuralPattern pattern;
  pattern.vars = {{"expand snp"}, {"query omim"}};
  pattern.edges = {{0, 1, /*transitive=*/true}};
  auto hits = engine_->SearchExecutions(owner_, pattern,
                                        /*provenance_var=*/1);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_EQ(hits.value().size(), 1u);
  const auto& hit = hits.value()[0];
  EXPECT_EQ(hit.exec_id, exec_id_);
  EXPECT_EQ(hit.num_matches, 1);
  // The provenance of Query OMIM covers the genetic arm but not W3.
  bool mentions_m5 = false;
  for (const std::string& row : hit.provenance.rows) {
    if (row.find("M5") != std::string::npos) mentions_m5 = true;
    EXPECT_EQ(row.find("M9"), std::string::npos) << row;
  }
  EXPECT_TRUE(mentions_m5);
}

TEST_F(EngineTest, SearchExecutionsRespectsAccessViews) {
  StructuralPattern pattern;
  pattern.vars = {{"expand snp"}, {"query omim"}};
  pattern.edges = {{0, 1, true}};
  // M3 and M6 live in W2 (level 1) and W4 (level 2): invisible to the
  // public user and partially invisible to the analyst.
  auto for_public = engine_->SearchExecutions(public_user_, pattern, 1);
  ASSERT_TRUE(for_public.ok());
  EXPECT_TRUE(for_public.value().empty());
  auto for_analyst = engine_->SearchExecutions(analyst_, pattern, 1);
  ASSERT_TRUE(for_analyst.ok());
  EXPECT_TRUE(for_analyst.value().empty());  // Query OMIM needs level 2
  auto for_owner = engine_->SearchExecutions(owner_, pattern, 1);
  ASSERT_TRUE(for_owner.ok());
  EXPECT_EQ(for_owner.value().size(), 1u);
}

TEST_F(EngineTest, SearchExecutionsValidatesVarIndex) {
  StructuralPattern pattern;
  pattern.vars = {{"x"}};
  EXPECT_FALSE(engine_->SearchExecutions(owner_, pattern, 3).ok());
  EXPECT_FALSE(engine_->SearchExecutions(owner_, pattern, -1).ok());
}

TEST_F(EngineTest, ErrorsOnUnknownIds) {
  EXPECT_FALSE(engine_->Search(PrincipalId(42), {"x"}).ok());
  EXPECT_FALSE(
      engine_->Lineage(owner_, ExecutionId(9), DataItemId(0)).ok());
  EXPECT_FALSE(
      engine_->Lineage(owner_, exec_id_, DataItemId(999)).ok());
  StructuralPattern pattern;
  pattern.vars = {{"x"}};
  EXPECT_FALSE(engine_->Structural(owner_, 7, pattern).ok());
}

TEST_F(EngineTest, IndexIsBuilt) {
  EXPECT_GT(engine_->index().num_tokens(), 0);
  EXPECT_EQ(engine_->index().num_docs(), 1);
}

TEST_F(EngineTest, CacheHitServesIdenticalAnswers) {
  auto first = engine_->Search(owner_, {"disorder"});
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().empty());
  EXPECT_EQ(engine_->cache_stats().hits, 0);
  auto second = engine_->Search(owner_, {"disorder"});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine_->cache_stats().hits, 1);
  // The hit is served from the serialized cache entry; it must decode
  // to exactly what the cold query computed.
  ASSERT_EQ(second.value().size(), first.value().size());
  for (size_t i = 0; i < first.value().size(); ++i) {
    const KeywordAnswer& a = first.value()[i];
    const KeywordAnswer& b = second.value()[i];
    EXPECT_EQ(b.spec_id, a.spec_id);
    EXPECT_EQ(b.prefix, a.prefix);
    EXPECT_EQ(b.matched, a.matched);
    EXPECT_EQ(b.view_size, a.view_size);
    EXPECT_DOUBLE_EQ(b.score, a.score);
  }
}

TEST_F(EngineTest, SpecAppendInvalidatesCachedAnswers) {
  ASSERT_TRUE(engine_->Search(owner_, {"disorder"}).ok());
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  // A second copy of the spec (the in-memory repository does not
  // enforce unique names): the same query must now return two answers,
  // so the cached one is unusable.
  ASSERT_TRUE(
      repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
          .ok());
  auto after = engine_->Search(owner_, {"disorder"});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 2u);
  EXPECT_EQ(engine_->cache_stats().hits, 0);
}

TEST_F(EngineTest, ExecutionAppendKeepsKeywordCacheHot) {
  ASSERT_TRUE(engine_->Search(owner_, {"disorder"}).ok());
  // Keyword answers depend only on the spec slice of the cut, so
  // execution ingest must not cost cache hits (E12's workload).
  auto exec = RunDiseaseExecution(repo_.entry(spec_id_).spec);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(repo_.AddExecution(spec_id_, std::move(exec).value()).ok());
  ASSERT_TRUE(engine_->Search(owner_, {"disorder"}).ok());
  EXPECT_EQ(engine_->cache_stats().hits, 1);
}

TEST_F(EngineTest, CatchesUpToAppendsAfterConstruction) {
  // Spec + execution appended after the engine pinned its view: every
  // entry point must observe them (delta catch-up, not a rebuild).
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid =
      repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
          .value();
  auto exec = RunDiseaseExecution(repo_.entry(sid).spec);
  ASSERT_TRUE(exec.ok());
  ExecutionId eid =
      repo_.AddExecution(sid, std::move(exec).value()).value();

  auto found = engine_->ExecutionByOrdinal(sid, 0);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found.value()->id, eid);
  EXPECT_FALSE(engine_->ExecutionByOrdinal(sid, 1).ok());
  ASSERT_NE(engine_->SpecEntryAt(sid), nullptr);
  EXPECT_EQ(engine_->SpecEntryAt(sid)->id, sid);
  EXPECT_EQ(engine_->SpecEntryAt(99), nullptr);
  auto lineage = engine_->Lineage(owner_, eid, DataItemId(19));
  EXPECT_TRUE(lineage.ok()) << lineage.status().ToString();
}

TEST_F(EngineTest, IncrementalAnswersMatchFreshEngine) {
  // Append more entries, query the long-lived engine (delta catch-up),
  // and compare against an engine built from scratch on the final
  // repository state.
  for (int i = 0; i < 3; ++i) {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok());
    int sid =
        repo_.AddSpecification(std::move(spec).value(), DiseasePolicy())
            .value();
    auto exec = RunDiseaseExecution(repo_.entry(sid).spec);
    ASSERT_TRUE(exec.ok());
    ASSERT_TRUE(repo_.AddExecution(sid, std::move(exec).value()).ok());
  }
  QueryEngine fresh(repo_, acl_);
  for (const char* term : {"disorder", "database queries", "reformat"}) {
    auto incremental = engine_->Search(owner_, {term});
    auto baseline = fresh.Search(owner_, {term});
    ASSERT_TRUE(incremental.ok());
    ASSERT_TRUE(baseline.ok());
    ASSERT_EQ(incremental.value().size(), baseline.value().size())
        << term;
    for (size_t i = 0; i < baseline.value().size(); ++i) {
      EXPECT_EQ(incremental.value()[i].spec_id,
                baseline.value()[i].spec_id);
      EXPECT_DOUBLE_EQ(incremental.value()[i].score,
                       baseline.value()[i].score);
    }
  }
}

}  // namespace
}  // namespace paw

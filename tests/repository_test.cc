// Tests for the repository.

#include "src/repo/repository.h"

#include <gtest/gtest.h>

#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

TEST(RepositoryTest, AddAndRetrieveSpec) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto id = repo.AddSpecification(std::move(spec).value(), DiseasePolicy());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0);
  EXPECT_EQ(repo.num_specs(), 1);
  EXPECT_EQ(repo.entry(0).spec.name(), "disease susceptibility");
  EXPECT_EQ(repo.entry(0).hierarchy.size(), 4);
  EXPECT_EQ(repo.entry(0).policy.module_reqs.size(), 1u);
}

TEST(RepositoryTest, FindSpecByName) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(repo.AddSpecification(std::move(spec).value()).ok());
  EXPECT_EQ(repo.FindSpec("disease susceptibility").value(), 0);
  EXPECT_TRUE(repo.FindSpec("nope").status().IsNotFound());
}

TEST(RepositoryTest, RejectsInvalidPolicy) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  PolicySet bad;
  bad.module_reqs.push_back({"M404", 2, 1});
  EXPECT_FALSE(repo.AddSpecification(std::move(spec).value(), bad).ok());
  EXPECT_EQ(repo.num_specs(), 0);
}

TEST(RepositoryTest, StoresExecutions) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  auto exec = RunDiseaseExecution(repo.entry(sid).spec);
  ASSERT_TRUE(exec.ok());
  auto eid = repo.AddExecution(sid, std::move(exec).value());
  ASSERT_TRUE(eid.ok());
  EXPECT_EQ(repo.num_executions(), 1);
  EXPECT_EQ(repo.execution(eid.value()).spec_id, sid);
  EXPECT_EQ(repo.ExecutionsOf(sid).size(), 1u);
  EXPECT_TRUE(repo.ExecutionsOf(99).empty());
}

TEST(RepositoryTest, RejectsForeignExecution) {
  Repository repo;
  auto spec1 = BuildDiseaseSpec();
  auto spec2 = BuildDiseaseSpec();
  ASSERT_TRUE(spec1.ok());
  ASSERT_TRUE(spec2.ok());
  int s1 = repo.AddSpecification(std::move(spec1).value()).value();
  int s2 = repo.AddSpecification(std::move(spec2).value()).value();
  auto exec = RunDiseaseExecution(repo.entry(s1).spec);
  ASSERT_TRUE(exec.ok());
  // Execution of s1's spec cannot be filed under s2.
  EXPECT_FALSE(repo.AddExecution(s2, std::move(exec).value()).ok());
}

TEST(RepositoryTest, AddressStabilityAcrossInsertions) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  const Specification* before = &repo.entry(sid).spec;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    auto s = GenerateSpec(WorkloadParams{}, &rng, "s" + std::to_string(i));
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(repo.AddSpecification(std::move(s).value()).ok());
  }
  EXPECT_EQ(before, &repo.entry(sid).spec);
}

TEST(RepositoryTest, ApproxBytesGrows) {
  Repository repo;
  int64_t empty = repo.ApproxBytes();
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  int64_t with_spec = repo.ApproxBytes();
  EXPECT_GT(with_spec, empty);
  auto exec = RunDiseaseExecution(repo.entry(sid).spec);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(repo.AddExecution(sid, std::move(exec).value()).ok());
  EXPECT_GT(repo.ApproxBytes(), with_spec);
}

}  // namespace
}  // namespace paw

// Tests for the repository.

#include "src/repo/repository.h"

#include <gtest/gtest.h>

#include "src/repo/disease.h"
#include "src/repo/workload.h"

namespace paw {
namespace {

TEST(RepositoryTest, AddAndRetrieveSpec) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto id = repo.AddSpecification(std::move(spec).value(), DiseasePolicy());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0);
  EXPECT_EQ(repo.num_specs(), 1);
  EXPECT_EQ(repo.entry(0).spec.name(), "disease susceptibility");
  EXPECT_EQ(repo.entry(0).hierarchy.size(), 4);
  EXPECT_EQ(repo.entry(0).policy.module_reqs.size(), 1u);
}

TEST(RepositoryTest, FindSpecByName) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(repo.AddSpecification(std::move(spec).value()).ok());
  EXPECT_EQ(repo.FindSpec("disease susceptibility").value(), 0);
  EXPECT_TRUE(repo.FindSpec("nope").status().IsNotFound());
}

TEST(RepositoryTest, RejectsInvalidPolicy) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  PolicySet bad;
  bad.module_reqs.push_back({"M404", 2, 1});
  EXPECT_FALSE(repo.AddSpecification(std::move(spec).value(), bad).ok());
  EXPECT_EQ(repo.num_specs(), 0);
}

TEST(RepositoryTest, StoresExecutions) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  auto exec = RunDiseaseExecution(repo.entry(sid).spec);
  ASSERT_TRUE(exec.ok());
  auto eid = repo.AddExecution(sid, std::move(exec).value());
  ASSERT_TRUE(eid.ok());
  EXPECT_EQ(repo.num_executions(), 1);
  EXPECT_EQ(repo.execution(eid.value()).spec_id, sid);
  EXPECT_EQ(repo.ExecutionsOf(sid).size(), 1u);
  EXPECT_TRUE(repo.ExecutionsOf(99).empty());
}

TEST(RepositoryTest, RejectsForeignExecution) {
  Repository repo;
  auto spec1 = BuildDiseaseSpec();
  auto spec2 = BuildDiseaseSpec();
  ASSERT_TRUE(spec1.ok());
  ASSERT_TRUE(spec2.ok());
  int s1 = repo.AddSpecification(std::move(spec1).value()).value();
  int s2 = repo.AddSpecification(std::move(spec2).value()).value();
  auto exec = RunDiseaseExecution(repo.entry(s1).spec);
  ASSERT_TRUE(exec.ok());
  // Execution of s1's spec cannot be filed under s2.
  EXPECT_FALSE(repo.AddExecution(s2, std::move(exec).value()).ok());
}

TEST(RepositoryTest, AddressStabilityAcrossInsertions) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  const Specification* before = &repo.entry(sid).spec;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    auto s = GenerateSpec(WorkloadParams{}, &rng, "s" + std::to_string(i));
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(repo.AddSpecification(std::move(s).value()).ok());
  }
  EXPECT_EQ(before, &repo.entry(sid).spec);
}

TEST(RepositoryTest, MutationEpochAdvancesOnEveryAppend) {
  Repository repo;
  EXPECT_EQ(repo.mutation_epoch(), 0u);
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  EXPECT_EQ(repo.mutation_epoch(), 1u);
  auto exec = RunDiseaseExecution(repo.entry(sid).spec);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(repo.AddExecution(sid, std::move(exec).value()).ok());
  EXPECT_EQ(repo.mutation_epoch(), 2u);
  // Rejected appends leave the epoch untouched.
  PolicySet bad;
  bad.module_reqs.push_back({"M404", 2, 1});
  auto spec2 = BuildDiseaseSpec();
  ASSERT_TRUE(spec2.ok());
  ASSERT_FALSE(repo.AddSpecification(std::move(spec2).value(), bad).ok());
  EXPECT_EQ(repo.mutation_epoch(), 2u);
}

TEST(RepositoryTest, ViewIsAStableCut) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  auto exec = RunDiseaseExecution(repo.entry(sid).spec);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(repo.AddExecution(sid, std::move(exec).value()).ok());

  RepositoryView view = repo.View();
  EXPECT_EQ(view.epoch, repo.mutation_epoch());
  EXPECT_EQ(view.num_specs(), 1);
  EXPECT_EQ(view.num_executions(), 1);
  EXPECT_EQ(view.ExecutionsOf(sid).size(), 1u);

  // Later appends do not leak into the pinned cut.
  auto exec2 = RunDiseaseExecution(repo.entry(sid).spec);
  ASSERT_TRUE(exec2.ok());
  ASSERT_TRUE(repo.AddExecution(sid, std::move(exec2).value()).ok());
  EXPECT_EQ(view.num_executions(), 1);
  EXPECT_LT(view.epoch, repo.mutation_epoch());
}

TEST(RepositoryTest, ExtendViewCatchesUpIncrementally) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  RepositoryView view = repo.View();
  const SpecEntry* pinned = view.specs[0];

  Rng rng(3);
  for (int i = 0; i < 4; ++i) {
    auto s = GenerateSpec(WorkloadParams{}, &rng, "s" + std::to_string(i));
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(repo.AddSpecification(std::move(s).value()).ok());
    auto e = RunDiseaseExecution(repo.entry(sid).spec);
    ASSERT_TRUE(e.ok());
    ASSERT_TRUE(repo.AddExecution(sid, std::move(e).value()).ok());
  }
  repo.ExtendView(&view);
  EXPECT_EQ(view.epoch, repo.mutation_epoch());
  EXPECT_EQ(view.num_specs(), repo.num_specs());
  EXPECT_EQ(view.num_executions(), repo.num_executions());
  // Extension appends; already-captured pointers are untouched.
  EXPECT_EQ(view.specs[0], pinned);
  EXPECT_EQ(view.ExecutionsOf(sid).size(), 4u);

  // Extending a current view is a no-op.
  const uint64_t epoch = view.epoch;
  repo.ExtendView(&view);
  EXPECT_EQ(view.epoch, epoch);
}

TEST(RepositoryTest, ApproxBytesGrows) {
  Repository repo;
  int64_t empty = repo.ApproxBytes();
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  int64_t with_spec = repo.ApproxBytes();
  EXPECT_GT(with_spec, empty);
  auto exec = RunDiseaseExecution(repo.entry(sid).spec);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(repo.AddExecution(sid, std::move(exec).value()).ok());
  EXPECT_GT(repo.ApproxBytes(), with_spec);
}

TEST(RepositoryTest, ApproxBytesMonotonicAcrossInsertions) {
  Repository repo;
  Rng rng(7);
  int64_t last = repo.ApproxBytes();
  for (int i = 0; i < 5; ++i) {
    auto spec = GenerateSpec(WorkloadParams{}, &rng, "s" + std::to_string(i));
    ASSERT_TRUE(spec.ok());
    int sid = repo.AddSpecification(std::move(spec).value()).value();
    int64_t after_spec = repo.ApproxBytes();
    EXPECT_GT(after_spec, last) << "spec " << i;
    last = after_spec;
    for (int j = 0; j < 3; ++j) {
      auto exec = GenerateExecution(repo.entry(sid).spec, &rng);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(repo.AddExecution(sid, std::move(exec).value()).ok());
      int64_t after_exec = repo.ApproxBytes();
      EXPECT_GT(after_exec, last) << "spec " << i << " exec " << j;
      last = after_exec;
    }
  }
}

TEST(RepositoryTest, ApproxBytesCountsPolicyHeap) {
  auto spec1 = BuildDiseaseSpec();
  auto spec2 = BuildDiseaseSpec();
  ASSERT_TRUE(spec1.ok());
  ASSERT_TRUE(spec2.ok());
  Repository plain;
  ASSERT_TRUE(plain.AddSpecification(std::move(spec1).value()).ok());
  Repository with_policy;
  ASSERT_TRUE(with_policy
                  .AddSpecification(std::move(spec2).value(),
                                    DiseasePolicy())
                  .ok());
  // The same spec with a non-empty policy accounts strictly larger.
  EXPECT_GT(with_policy.ApproxBytes(), plain.ApproxBytes());
}

TEST(RepositoryTest, ApproxBytesCountsPersistMetadata) {
  Repository repo;
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  int sid = repo.AddSpecification(std::move(spec).value()).value();
  auto exec = RunDiseaseExecution(repo.entry(sid).spec);
  ASSERT_TRUE(exec.ok());
  ExecutionId eid = repo.AddExecution(sid, std::move(exec).value()).value();

  int64_t volatile_bytes = repo.ApproxBytes();
  // Fresh entries are volatile: no locator yet.
  EXPECT_EQ(repo.entry(sid).persist.lsn, 0u);
  EXPECT_TRUE(repo.entry(sid).persist.locator.empty());

  PersistMeta meta;
  meta.lsn = 1;
  meta.payload_crc = 0xABCD1234u;
  meta.payload_bytes = 512;
  meta.locator = "wal:1";
  repo.SetSpecPersist(sid, meta);
  int64_t with_spec_meta = repo.ApproxBytes();
  EXPECT_GT(with_spec_meta, volatile_bytes);

  meta.lsn = 2;
  meta.locator = "wal:2";
  repo.SetExecutionPersist(eid, meta);
  EXPECT_GT(repo.ApproxBytes(), with_spec_meta);
  EXPECT_EQ(repo.execution(eid).persist.locator, "wal:2");
}

}  // namespace
}  // namespace paw

// Tests for the slicing-by-8 CRC-32: known-answer vectors, equivalence
// with the byte-at-a-time reference implementation across sizes and
// alignments, and chunking independence (the property record framing
// relies on: CRC(type byte) extended by CRC(payload) must equal the
// CRC of the concatenation).

#include "src/common/crc32.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace paw {
namespace {

TEST(Crc32Test, KnownAnswerVectors) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
}

std::string PseudoRandomBytes(size_t n, uint64_t seed) {
  std::string out;
  out.reserve(n);
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    out.push_back(static_cast<char>(state >> 33));
  }
  return out;
}

TEST(Crc32Test, SlicedMatchesBytewiseReferenceAcrossSizes) {
  // Cover every small size (exercises the < 8-byte tail logic) plus
  // sizes around the 8-byte stride and some large buffers.
  for (size_t n :
       {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u,
        65u, 1024u, 4096u, 65536u}) {
    const std::string data = PseudoRandomBytes(n, n + 1);
    EXPECT_EQ(Crc32Update(0, data.data(), data.size()),
              Crc32UpdateBytewise(0, data.data(), data.size()))
        << "n=" << n;
  }
}

TEST(Crc32Test, SlicedMatchesBytewiseAtEveryAlignment) {
  const std::string data = PseudoRandomBytes(256, 42);
  for (size_t start = 0; start < 16; ++start) {
    const size_t len = data.size() - start;
    EXPECT_EQ(Crc32Update(0, data.data() + start, len),
              Crc32UpdateBytewise(0, data.data() + start, len))
        << "start=" << start;
  }
}

TEST(Crc32Test, ChunkingIndependence) {
  const std::string data = PseudoRandomBytes(1000, 7);
  const uint32_t whole = Crc32(data);
  for (size_t split : {1u, 5u, 8u, 13u, 500u, 999u}) {
    uint32_t crc = Crc32Update(0, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split=" << split;
    // Mixed engines agree too: extend a bytewise prefix with the
    // sliced implementation and vice versa.
    uint32_t mixed = Crc32UpdateBytewise(0, data.data(), split);
    mixed = Crc32Update(mixed, data.data() + split, data.size() - split);
    EXPECT_EQ(mixed, whole) << "split=" << split;
  }
}

TEST(Crc32Test, SingleBitFlipAlwaysChangesChecksum) {
  const std::string data = PseudoRandomBytes(64, 3);
  const uint32_t clean = Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = data;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_NE(Crc32(corrupt), clean)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

}  // namespace
}  // namespace paw

// End-to-end and property-based integration tests: generated repositories,
// executions, privacy transforms and queries working together.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/graph/transitive.h"
#include "src/privacy/soundness.h"
#include "src/privacy/structural_privacy.h"
#include "src/provenance/exec_view.h"
#include "src/provenance/lineage.h"
#include "src/query/engine.h"
#include "src/repo/disease.h"
#include "src/repo/workload.h"
#include "src/workflow/serialize.h"
#include "src/workflow/view.h"

namespace paw {
namespace {

// ---- Cross-layer invariants on generated workloads ----

class GeneratedWorldTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedWorldTest, ExecutionMirrorsFullExpansion) {
  // Property: for every generated spec, the execution's atomic
  // activations are exactly the atomic modules of the full expansion.
  Rng rng(GetParam());
  WorkloadParams params;
  params.depth = 2;
  params.modules_per_workflow = 4;
  auto spec = GenerateSpec(params, &rng, "world");
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  auto full = FullExpansion(spec.value(), h);
  ASSERT_TRUE(full.ok());
  std::vector<int32_t> expanded_atomics;
  for (ModuleId m : full.value().visible_modules()) {
    if (spec.value().module(m).kind == ModuleKind::kAtomic) {
      expanded_atomics.push_back(m.value());
    }
  }
  std::vector<int32_t> executed;
  for (const ExecNode& n : exec.value().nodes()) {
    if (n.kind == ExecNodeKind::kAtomic) executed.push_back(
        n.module.value());
  }
  std::sort(expanded_atomics.begin(), expanded_atomics.end());
  std::sort(executed.begin(), executed.end());
  EXPECT_EQ(expanded_atomics, executed);
}

TEST_P(GeneratedWorldTest, ProcessIdsAreDense) {
  Rng rng(GetParam() + 100);
  WorkloadParams params;
  params.depth = 2;
  auto spec = GenerateSpec(params, &rng, "dense");
  ASSERT_TRUE(spec.ok());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok());
  // Activations S1..Sk with no gaps.
  int max_process = 0;
  for (const ExecNode& n : exec.value().nodes()) {
    max_process = std::max(max_process, n.process_id);
  }
  for (int s = 1; s <= max_process; ++s) {
    EXPECT_TRUE(exec.value().FindByProcess(s).ok()) << "S" << s;
  }
}

TEST_P(GeneratedWorldTest, EveryItemHasOneProducerAndFlows) {
  Rng rng(GetParam() + 200);
  WorkloadParams params;
  auto spec = GenerateSpec(params, &rng, "items");
  ASSERT_TRUE(spec.ok());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok());
  const Execution& e = exec.value();
  // Each item appears on at least one edge leaving its producer.
  for (const DataItem& d : e.items()) {
    bool found = false;
    for (NodeIndex v : e.graph().OutNeighbors(d.producer.value())) {
      const auto& items = e.ItemsOn(d.producer, ExecNodeId(v));
      if (std::find(items.begin(), items.end(), d.id) != items.end()) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "item d" << d.id.value() << " never flowed";
  }
}

TEST_P(GeneratedWorldTest, CollapseCommutesWithReachabilityHiding) {
  // Property: in a collapsed view, any two visible plain nodes connected
  // in the view are connected in the execution (prefix views of
  // executions are sound).
  Rng rng(GetParam() + 300);
  WorkloadParams params;
  params.depth = 2;
  auto spec = GenerateSpec(params, &rng, "sound");
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  auto exec = GenerateExecution(spec.value(), &rng);
  ASSERT_TRUE(exec.ok());
  auto prefixes = h.EnumeratePrefixes();
  ASSERT_TRUE(prefixes.ok());
  TransitiveClosure real = TransitiveClosure::Compute(exec.value().graph());
  for (const Prefix& p : prefixes.value()) {
    auto view = CollapseExecution(exec.value(), h, p);
    ASSERT_TRUE(view.ok());
    TransitiveClosure vc = TransitiveClosure::Compute(view.value().graph());
    for (NodeIndex a = 0; a < view.value().num_nodes(); ++a) {
      for (NodeIndex b = 0; b < view.value().num_nodes(); ++b) {
        if (a == b) continue;
        if (view.value().node(a).collapsed ||
            view.value().node(b).collapsed) {
          continue;
        }
        if (vc.Reaches(a, b)) {
          EXPECT_TRUE(real.Reaches(view.value().node(a).rep.value(),
                                   view.value().node(b).rep.value()))
              << "prefix view fabricated a path";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedWorldTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Full pipeline on the paper's example ----

TEST(PipelineTest, SerializeStoreQueryEnforce) {
  // Serialize the disease spec, parse it back, store it, run it, and ask
  // privacy-preserving queries -- the full life of a repository entry.
  auto original = BuildDiseaseSpec();
  ASSERT_TRUE(original.ok());
  auto parsed = ParseSpecification(Serialize(original.value()));
  ASSERT_TRUE(parsed.ok());

  Repository repo;
  int sid =
      repo.AddSpecification(std::move(parsed).value(), DiseasePolicy())
          .value();
  FunctionRegistry fns = BuildDiseaseFunctions();
  auto exec = Execute(repo.entry(sid).spec, fns, DiseaseInputs());
  ASSERT_TRUE(exec.ok());
  ExecutionId eid = repo.AddExecution(sid, std::move(exec).value()).value();

  AccessControl acl;
  PrincipalId analyst = acl.AddPrincipal("analyst", 1, "lab").value();
  QueryEngine engine(repo, acl);

  auto answers = engine.Search(analyst, {"reformat"});
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 1u);

  auto lineage = engine.Lineage(analyst, eid, DataItemId(19));
  ASSERT_TRUE(lineage.ok());
  EXPECT_FALSE(lineage.value().rows.empty());
}

TEST(PipelineTest, StructuralPrivacyOnCollapsedLineage) {
  // Run the Sec. 3 pipeline: take the provenance graph, apply both
  // structural mechanisms to the same sensitive pair, verify the
  // mechanisms' contract (deletion sound, clustering complete) and then
  // repair the clustering.
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  auto exec = RunDiseaseExecution(spec.value());
  ASSERT_TRUE(exec.ok());
  const Execution& e = exec.value();
  // The M13 and M11 activation nodes.
  NodeIndex m13 = e.FindByProcess(11).value().value();
  NodeIndex m11 = e.FindByProcess(14).value().value();

  auto del = HideByEdgeDeletion(e.graph(), {{m13, m11}});
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().metrics.hidden_sensitive, 1);
  EXPECT_TRUE(del.value().metrics.Sound());

  auto clu = HideByClustering(e.graph(), {{m13, m11}});
  ASSERT_TRUE(clu.ok());
  EXPECT_EQ(clu.value().metrics.hidden_sensitive, 1);

  auto repaired = RepairUnsoundClustering(e.graph(),
                                          clu.value().group_of,
                                          clu.value().num_groups);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().report.sound);
}

TEST(PipelineTest, RepeatedExecutionsStaySchedulable) {
  // The paper stresses "privacy guarantees must hold over repeated
  // executions with varied inputs": run the workflow many times and
  // check the schedule (process ids) is input-independent.
  auto spec = BuildDiseaseSpec();
  ASSERT_TRUE(spec.ok());
  FunctionRegistry fns = BuildDiseaseFunctions();
  std::vector<std::string> first_labels;
  for (int round = 0; round < 8; ++round) {
    ValueMap inputs = DiseaseInputs();
    inputs["SNPs"] = "rs" + std::to_string(round);
    inputs["lifestyle"] = round % 2 ? "smoker" : "nonsmoker";
    auto exec = Execute(spec.value(), fns, inputs);
    ASSERT_TRUE(exec.ok());
    std::vector<std::string> labels;
    for (int s = 1; s <= 15; ++s) {
      labels.push_back(exec.value().NodeLabel(
          exec.value().FindByProcess(s).value()));
    }
    if (round == 0) {
      first_labels = labels;
    } else {
      EXPECT_EQ(labels, first_labels) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace paw

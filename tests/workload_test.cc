// Tests for the synthetic workload generators.

#include "src/repo/workload.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/validate.h"

namespace paw {
namespace {

TEST(WorkloadTest, GeneratedSpecsValidate) {
  Rng rng(42);
  WorkloadParams params;
  params.depth = 3;
  params.modules_per_workflow = 6;
  for (int i = 0; i < 10; ++i) {
    auto spec = GenerateSpec(params, &rng, "gen" + std::to_string(i));
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    EXPECT_TRUE(ValidateSpecification(spec.value()).ok());
  }
}

TEST(WorkloadTest, GenerationIsSeedDeterministic) {
  WorkloadParams params;
  Rng r1(7), r2(7);
  auto s1 = GenerateSpec(params, &r1, "x");
  auto s2 = GenerateSpec(params, &r2, "x");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1.value().num_modules(), s2.value().num_modules());
  EXPECT_EQ(s1.value().num_workflows(), s2.value().num_workflows());
}

TEST(WorkloadTest, DepthZeroIsFlat) {
  WorkloadParams params;
  params.depth = 0;
  params.composite_prob = 1.0;  // irrelevant at depth 0
  Rng rng(3);
  auto spec = GenerateSpec(params, &rng, "flat");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().num_workflows(), 1);
}

TEST(WorkloadTest, CompositeProbOneMaximizesDepth) {
  WorkloadParams params;
  params.depth = 2;
  params.composite_prob = 1.0;
  params.modules_per_workflow = 2;
  Rng rng(4);
  auto spec = GenerateSpec(params, &rng, "deep");
  ASSERT_TRUE(spec.ok());
  ExpansionHierarchy h = ExpansionHierarchy::Build(spec.value());
  EXPECT_EQ(h.Height(), 2);
}

TEST(WorkloadTest, GeneratedExecutionsRun) {
  WorkloadParams params;
  params.depth = 2;
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    auto spec = GenerateSpec(params, &rng, "run" + std::to_string(i));
    ASSERT_TRUE(spec.ok());
    auto exec = GenerateExecution(spec.value(), &rng);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_GT(exec.value().num_nodes(), 0);
    EXPECT_GT(exec.value().num_items(), 0);
    EXPECT_TRUE(IsAcyclic(exec.value().graph()));
  }
}

TEST(WorkloadTest, QueriesDrawFromVocabulary) {
  WorkloadParams params;
  params.vocabulary = 10;
  Rng rng(5);
  auto terms = GenerateQuery(params, &rng, 3);
  EXPECT_EQ(terms.size(), 3u);
  for (const std::string& t : terms) {
    EXPECT_EQ(t.rfind("kw", 0), 0u);
  }
}

TEST(WorkloadTest, RandomDagIsAcyclic) {
  Rng rng(8);
  for (double p : {0.05, 0.3, 0.8}) {
    Digraph g = RandomDag(&rng, 30, p);
    EXPECT_TRUE(IsAcyclic(g)) << "p=" << p;
  }
}

TEST(WorkloadTest, LayeredDagConnectsAllLayers) {
  Rng rng(9);
  Digraph g = RandomLayeredDag(&rng, 5, 4, 0.2);
  EXPECT_EQ(g.num_nodes(), 20);
  EXPECT_TRUE(IsAcyclic(g));
  // Every node beyond layer 0 has an in-edge.
  for (NodeIndex u = 4; u < 20; ++u) {
    EXPECT_GE(g.InDegree(u), 1u) << "node " << u;
  }
}

}  // namespace
}  // namespace paw

// Tests for prefix-defined views (paper Sec. 2): expansion, rerouting,
// and the exact full-expansion facts the paper states.

#include "src/workflow/view.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/algorithms.h"
#include "src/repo/disease.h"

namespace paw {
namespace {

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = BuildDiseaseSpec();
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    spec_ = std::move(spec).value();
    h_ = ExpansionHierarchy::Build(spec_);
  }

  WorkflowId W(const std::string& code) {
    return spec_.FindWorkflow(code).value();
  }
  ModuleId M(const std::string& code) {
    return spec_.FindModule(code).value();
  }

  std::vector<std::string> VisibleCodes(const SpecView& view) {
    std::vector<std::string> codes;
    for (ModuleId m : view.visible_modules()) {
      codes.push_back(spec_.module(m).code);
    }
    return codes;
  }

  bool HasEdge(const SpecView& view, const std::string& a,
               const std::string& b) {
    auto ia = view.IndexOf(M(a));
    auto ib = view.IndexOf(M(b));
    if (!ia.ok() || !ib.ok()) return false;
    return view.graph().HasEdge(ia.value(), ib.value());
  }

  Specification spec_;
  ExpansionHierarchy h_;
};

TEST_F(ViewTest, RootPrefixShowsTopLevel) {
  auto view = ExpandPrefix(spec_, h_, {W("W1")});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(VisibleCodes(view.value()),
            (std::vector<std::string>{"I", "M1", "M2", "O"}));
  EXPECT_TRUE(HasEdge(view.value(), "I", "M1"));
  EXPECT_TRUE(HasEdge(view.value(), "I", "M2"));
  EXPECT_TRUE(HasEdge(view.value(), "M1", "M2"));
  EXPECT_TRUE(HasEdge(view.value(), "M2", "O"));
  EXPECT_EQ(view.value().graph().num_edges(), 4);
}

TEST_F(ViewTest, PaperExamplePrefixW1W2) {
  // "{W1, W2} ... is the simple workflow obtained from W1 by replacing M1
  // with W2" -- M1 disappears; M3 and M4 appear; M2 stays collapsed.
  auto view = ExpandPrefix(spec_, h_, {W("W1"), W("W2")});
  ASSERT_TRUE(view.ok());
  auto codes = VisibleCodes(view.value());
  EXPECT_EQ(codes,
            (std::vector<std::string>{"I", "M3", "M4", "M2", "O"}));
  EXPECT_TRUE(HasEdge(view.value(), "I", "M3"));
  EXPECT_TRUE(HasEdge(view.value(), "M3", "M4"));
  EXPECT_TRUE(HasEdge(view.value(), "M4", "M2"));  // rerouted M1->M2
  EXPECT_TRUE(HasEdge(view.value(), "M2", "O"));
}

TEST_F(ViewTest, FullExpansionMatchesPaperProse) {
  // "the full expansion ... yields a workflow with module names I, O, M3,
  // and M5-M15 and whose edges include one from M3 to M5 and another from
  // M8 to M9."
  auto view = FullExpansion(spec_, h_);
  ASSERT_TRUE(view.ok());
  auto codes = VisibleCodes(view.value());
  std::sort(codes.begin(), codes.end());
  std::vector<std::string> expected{"I",   "M10", "M11", "M12", "M13",
                                    "M14", "M15", "M3",  "M5",  "M6",
                                    "M7",  "M8",  "M9",  "O"};
  EXPECT_EQ(codes, expected);
  EXPECT_TRUE(HasEdge(view.value(), "M3", "M5"));
  EXPECT_TRUE(HasEdge(view.value(), "M8", "M9"));
  EXPECT_TRUE(HasEdge(view.value(), "I", "M9"));
  EXPECT_TRUE(HasEdge(view.value(), "M15", "O"));
}

TEST_F(ViewTest, Figure5ViewPrefixW1W2W4) {
  // Fig. 5: M1 and M4 expanded, M2 collapsed.
  auto view = ExpandPrefix(spec_, h_, {W("W1"), W("W2"), W("W4")});
  ASSERT_TRUE(view.ok());
  auto codes = VisibleCodes(view.value());
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(codes, (std::vector<std::string>{"I", "M2", "M3", "M5", "M6",
                                             "M7", "M8", "O"}));
  EXPECT_TRUE(HasEdge(view.value(), "I", "M3"));
  EXPECT_TRUE(HasEdge(view.value(), "M3", "M5"));
  EXPECT_TRUE(HasEdge(view.value(), "M5", "M6"));
  EXPECT_TRUE(HasEdge(view.value(), "M5", "M7"));
  EXPECT_TRUE(HasEdge(view.value(), "M6", "M8"));
  EXPECT_TRUE(HasEdge(view.value(), "M7", "M8"));
  EXPECT_TRUE(HasEdge(view.value(), "M8", "M2"));
  EXPECT_TRUE(HasEdge(view.value(), "I", "M2"));
  EXPECT_TRUE(HasEdge(view.value(), "M2", "O"));
}

TEST_F(ViewTest, EdgeLabelsSurviveRerouting) {
  auto view = ExpandPrefix(spec_, h_, {W("W1"), W("W2")});
  ASSERT_TRUE(view.ok());
  NodeIndex m4 = view.value().IndexOf(M("M4")).value();
  NodeIndex m2 = view.value().IndexOf(M("M2")).value();
  EXPECT_EQ(view.value().EdgeLabels(m4, m2),
            (std::vector<std::string>{"disorders"}));
  NodeIndex i = view.value().IndexOf(M("I")).value();
  NodeIndex m3 = view.value().IndexOf(M("M3")).value();
  EXPECT_EQ(view.value().EdgeLabels(i, m3),
            (std::vector<std::string>{"SNPs", "ethnicity"}));
}

TEST_F(ViewTest, CollapsedFlagAndSubsumedAtomics) {
  auto view = ExpandPrefix(spec_, h_, {W("W1"), W("W2")});
  ASSERT_TRUE(view.ok());
  NodeIndex m2 = view.value().IndexOf(M("M2")).value();
  NodeIndex m4 = view.value().IndexOf(M("M4")).value();
  NodeIndex m3 = view.value().IndexOf(M("M3")).value();
  EXPECT_TRUE(view.value().IsCollapsed(m2));
  EXPECT_TRUE(view.value().IsCollapsed(m4));
  EXPECT_FALSE(view.value().IsCollapsed(m3));
  // M2 subsumes the seven W3 atomics.
  EXPECT_EQ(view.value().SubsumedAtomics(m2).size(), 7u);
  // M4 subsumes the four W4 atomics.
  EXPECT_EQ(view.value().SubsumedAtomics(m4).size(), 4u);
  EXPECT_EQ(view.value().SubsumedAtomics(m3),
            (std::vector<ModuleId>{M("M3")}));
}

TEST_F(ViewTest, InvalidPrefixRejected) {
  EXPECT_FALSE(ExpandPrefix(spec_, h_, {W("W2")}).ok());
  EXPECT_FALSE(ExpandPrefix(spec_, h_, {W("W1"), W("W4")}).ok());
}

TEST_F(ViewTest, IndexOfInvisibleModuleFails) {
  auto view = ExpandPrefix(spec_, h_, {W("W1")});
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view.value().IndexOf(M("M5")).status().IsNotFound());
}

TEST_F(ViewTest, ViewGraphIsAcyclicForAllPrefixes) {
  auto prefixes = h_.EnumeratePrefixes();
  ASSERT_TRUE(prefixes.ok());
  for (const Prefix& p : prefixes.value()) {
    auto view = ExpandPrefix(spec_, h_, p);
    ASSERT_TRUE(view.ok());
    // Every view of a DAG hierarchy must stay a DAG (soundness of
    // prefix views, in contrast to ad-hoc clustering).
    EXPECT_TRUE(IsAcyclic(view.value().graph()));
  }
}

TEST_F(ViewTest, DotRenderingMentionsModules) {
  auto view = ExpandPrefix(spec_, h_, {W("W1")});
  ASSERT_TRUE(view.ok());
  std::string dot = view.value().ToDot("w1_view");
  EXPECT_NE(dot.find("digraph w1_view"), std::string::npos);
  EXPECT_NE(dot.find("M1"), std::string::npos);
  EXPECT_NE(dot.find("disorders"), std::string::npos);
}

}  // namespace
}  // namespace paw

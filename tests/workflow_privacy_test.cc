// Tests for workflow-level module privacy (shared-label hiding).

#include "src/privacy/workflow_privacy.h"

#include <gtest/gtest.h>

namespace paw {
namespace {

Relation MakeRelation(std::vector<RelationAttribute> ins,
                      std::vector<RelationAttribute> outs,
                      const std::function<std::vector<int>(
                          const std::vector<int>&)>& fn) {
  auto rel = Relation::FromFunction(std::move(ins), std::move(outs), fn);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  return std::move(rel).value();
}

/// A two-module chain: M_a maps x->m (xor of two inputs), M_b maps m->y
/// (identity). The shared label "m" serves both.
WorkflowPrivacyProblem ChainProblem(int64_t gamma) {
  WorkflowPrivacyProblem problem;
  problem.modules.push_back(PrivateModuleSpec{
      "Ma",
      MakeRelation({{"x0", 2, 1.0}, {"x1", 2, 1.0}}, {{"m", 2, 1.0}},
                   [](const std::vector<int>& x) {
                     return std::vector<int>{x[0] ^ x[1]};
                   }),
      gamma});
  problem.modules.push_back(PrivateModuleSpec{
      "Mb",
      MakeRelation({{"m", 2, 1.0}}, {{"y", 2, 1.0}},
                   [](const std::vector<int>& x) {
                     return std::vector<int>{x[0]};
                   }),
      gamma});
  return problem;
}

TEST(WorkflowPrivacyTest, AllLabelsCollected) {
  WorkflowPrivacyProblem p = ChainProblem(2);
  EXPECT_EQ(p.AllLabels(),
            (std::vector<std::string>{"m", "x0", "x1", "y"}));
}

TEST(WorkflowPrivacyTest, WeightsDefaultToOne) {
  WorkflowPrivacyProblem p = ChainProblem(2);
  p.label_weights["m"] = 3.5;
  EXPECT_DOUBLE_EQ(p.WeightOf("m"), 3.5);
  EXPECT_DOUBLE_EQ(p.WeightOf("x0"), 1.0);
}

TEST(WorkflowPrivacyTest, SharingBeatsPerModuleUnion) {
  // Hiding {m, y} makes both modules 2-private: Ma hides its output m;
  // Mb hides both its attrs. Per-module union must hide >= as much.
  WorkflowPrivacyProblem p = ChainProblem(2);
  auto joint = ExhaustiveWorkflowHiding(p);
  auto naive = PerModuleUnionHiding(p);
  ASSERT_TRUE(joint.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(joint.value().feasible);
  EXPECT_TRUE(naive.value().feasible);
  EXPECT_LE(joint.value().cost, naive.value().cost + 1e-9);
}

TEST(WorkflowPrivacyTest, ExhaustiveIsLowerBoundForGreedy) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    WorkflowPrivacyProblem p;
    // Three random modules over a small shared label pool.
    std::vector<std::string> pool{"a", "b", "c", "d", "e"};
    for (int m = 0; m < 3; ++m) {
      std::vector<RelationAttribute> ins{
          {pool[rng.Uniform(2)], 2, 1.0 + rng.UniformDouble()}};
      std::vector<RelationAttribute> outs{
          {pool[2 + rng.Uniform(3)], 2, 1.0 + rng.UniformDouble()}};
      if (ins[0].name == outs[0].name) outs[0].name = "z" +
                                                      std::to_string(m);
      auto rel = Relation::FromFunction(
          ins, outs, [&rng](const std::vector<int>&) {
            return std::vector<int>{static_cast<int>(rng.Uniform(2))};
          });
      ASSERT_TRUE(rel.ok());
      p.modules.push_back(
          PrivateModuleSpec{"M" + std::to_string(m),
                            std::move(rel).value(), 2});
    }
    auto exact = ExhaustiveWorkflowHiding(p);
    auto greedy = GreedyWorkflowHiding(p);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_TRUE(exact.value().feasible);
    EXPECT_TRUE(greedy.value().feasible);
    EXPECT_GE(greedy.value().cost, exact.value().cost - 1e-9);
    // Both must actually satisfy the constraints.
    EXPECT_TRUE(SatisfiesAll(p, exact.value().hidden_labels).value());
    EXPECT_TRUE(SatisfiesAll(p, greedy.value().hidden_labels).value());
  }
}

TEST(WorkflowPrivacyTest, AchievedVectorMatchesModules) {
  WorkflowPrivacyProblem p = ChainProblem(2);
  auto sol = GreedyWorkflowHiding(p);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol.value().achieved.size(), 2u);
  EXPECT_GE(sol.value().achieved[0], 2);
  EXPECT_GE(sol.value().achieved[1], 2);
}

TEST(WorkflowPrivacyTest, InfeasibleGammaDetected) {
  WorkflowPrivacyProblem p = ChainProblem(1000);  // > 2^1 outputs
  auto sol = ExhaustiveWorkflowHiding(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol.value().feasible);
  auto greedy = GreedyWorkflowHiding(p);
  ASSERT_TRUE(greedy.ok());
  EXPECT_FALSE(greedy.value().feasible);
}

TEST(WorkflowPrivacyTest, ExhaustiveRefusesHugeLabelSets) {
  WorkflowPrivacyProblem p = ChainProblem(2);
  EXPECT_FALSE(ExhaustiveWorkflowHiding(p, /*max_labels=*/2).ok());
}

TEST(WorkflowPrivacyTest, ApplyHidingRaisesLabelLevels) {
  WorkflowPrivacyProblem p = ChainProblem(2);
  auto sol = GreedyWorkflowHiding(p);
  ASSERT_TRUE(sol.ok());
  ASSERT_TRUE(sol.value().feasible);
  DataPolicy base;
  base.label_level["m"] = 1;  // pre-existing lower level
  DataPolicy raised = ApplyHidingToPolicy(base, sol.value(), 3);
  for (const std::string& label : sol.value().hidden_labels) {
    EXPECT_GE(raised.LevelOf(label), 3) << label;
  }
  // Labels not hidden keep their base level.
  for (const std::string& label : p.AllLabels()) {
    if (!sol.value().hidden_labels.count(label)) {
      EXPECT_EQ(raised.LevelOf(label), base.LevelOf(label)) << label;
    }
  }
}

TEST(WorkflowPrivacyTest, ApplyHidingNeverLowersLevels) {
  WorkflowHidingSolution sol;
  sol.hidden_labels = {"x"};
  DataPolicy base;
  base.label_level["x"] = 9;
  DataPolicy raised = ApplyHidingToPolicy(base, sol, 3);
  EXPECT_EQ(raised.LevelOf("x"), 9);
}

TEST(WorkflowPrivacyTest, EmptyProblemTriviallyFeasible) {
  WorkflowPrivacyProblem p;
  auto sol = GreedyWorkflowHiding(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol.value().feasible);
  EXPECT_TRUE(sol.value().hidden_labels.empty());
  EXPECT_DOUBLE_EQ(sol.value().cost, 0.0);
}

}  // namespace
}  // namespace paw

// Tests for the Status/Result error model.

#include "src/common/status.h"

#include <gtest/gtest.h>

namespace paw {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyIsCheapAndEqualValued) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
  EXPECT_EQ(b.message(), "missing");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kPermissionDenied),
            "PermissionDenied");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailingHelper() { return Status::OutOfRange("deep"); }

Status UsesReturnNotOk() {
  PAW_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("should not reach");
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk().IsOutOfRange());
}

Result<int> GiveSeven() { return 7; }

Result<int> UsesAssignOrReturn() {
  PAW_ASSIGN_OR_RETURN(int v, GiveSeven());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  Result<int> r = UsesAssignOrReturn();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 8);
}

Result<int> FailSeven() { return Status::Internal("seven failed"); }

Result<int> UsesAssignOrReturnError() {
  PAW_ASSIGN_OR_RETURN(int v, FailSeven());
  return v;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = UsesAssignOrReturnError();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

}  // namespace
}  // namespace paw

// Background compaction: the snapshot worker must checkpoint a
// consistent cut while appends keep landing, repeated CompactAsync
// under load must converge to exactly the linearized append set, and
// the auto-triggers (records past snapshot, sealed segments) must fold
// the log without ever stalling ingest. Deterministic interleavings
// come from `StoreOptions::compaction_hook`, which pauses the snapshot
// worker between phases.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/file_io.h"
#include "src/provenance/executor.h"
#include "src/provenance/serialize.h"
#include "src/store/persistent_repository.h"
#include "src/store/sharded_repository.h"
#include "src/store/snapshot.h"
#include "src/store/wal.h"
#include "src/workflow/builder.h"
#include "src/workflow/serialize.h"
#include "tests/store_test_util.h"

namespace paw {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("paw_bgc_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

Specification NamedSpec(const std::string& name) {
  SpecBuilder b(name);
  WorkflowId w = b.AddWorkflow("W1", "top", 0);
  EXPECT_TRUE(b.SetRoot(w).ok());
  ModuleId in = b.AddInput(w);
  ModuleId m = b.AddModule(w, "M1", "Work");
  ModuleId out = b.AddOutput(w);
  EXPECT_TRUE(b.Connect(in, m, {"x"}).ok());
  EXPECT_TRUE(b.Connect(m, out, {"y"}).ok());
  auto spec = std::move(b).Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

/// Serialized entries in LSN order (specs then executions).
std::vector<std::string> Dump(const Repository& repo) {
  std::vector<std::string> out;
  for (int id = 0; id < repo.num_specs(); ++id) {
    out.push_back(Serialize(repo.entry(id).spec));
  }
  for (int id = 0; id < repo.num_executions(); ++id) {
    out.push_back(
        SerializeExecution(repo.execution(ExecutionId(id)).exec));
  }
  return out;
}

Execution MakeExec(const Specification& spec, const std::string& value) {
  FunctionRegistry fns;
  auto exec = Execute(spec, fns, {{"x", value}});
  EXPECT_TRUE(exec.ok()) << exec.status().ToString();
  return std::move(exec).value();
}

/// Pauses the snapshot worker at chosen phases until released; counts
/// pauses so tests can wait for N workers (sharded stores share the
/// hook across shards).
struct PhaseGate {
  CompactionPhase pause_at = CompactionPhase::kSnapshot;
  std::mutex mu;
  std::condition_variable cv;
  int paused = 0;
  bool released = false;

  std::function<void(CompactionPhase)> Hook() {
    return [this](CompactionPhase phase) {
      if (phase != pause_at) return;
      std::unique_lock<std::mutex> lock(mu);
      ++paused;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
  }
  void AwaitPaused(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return paused >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

TEST(BackgroundCompactionTest, AppendsContinueWhileSnapshotWorkerRuns) {
  const std::string dir = TestDir("overlap");
  PhaseGate gate;
  StoreOptions options;
  options.compaction_hook = gate.Hook();

  auto store = PersistentRepository::Init(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().AddSpecification(NamedSpec("ov")).ok());
  const Specification& spec = store.value().repo().entry(0).spec;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.value()
                    .AddExecution(0, MakeExec(spec, "pre" + std::to_string(i)))
                    .ok());
  }
  const uint64_t cut_lsn = store.value().lsn();  // 4

  // CompactAsync returns with the worker still before its first phase.
  ASSERT_TRUE(store.value().CompactAsync().ok());
  gate.AwaitPaused(1);
  EXPECT_TRUE(store.value().compaction_running());

  // Ingest is not frozen: appends land while the worker is paused
  // mid-compaction, going to the fresh active segment.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        store.value()
            .AddExecution(0, MakeExec(spec, "during" + std::to_string(i)))
            .ok());
  }
  EXPECT_EQ(store.value().lsn(), cut_lsn + 4);
  EXPECT_EQ(store.value().snapshot_lsn(), 0u);  // not installed yet

  gate.Release();
  ASSERT_TRUE(store.value().WaitForCompaction().ok());
  EXPECT_FALSE(store.value().compaction_running());
  // The snapshot covers exactly the cut, not the concurrent appends.
  EXPECT_EQ(store.value().snapshot_lsn(), cut_lsn);
  EXPECT_EQ(store.value().records_since_snapshot(), 4u);
  ASSERT_TRUE(store.value().Sync().ok());

  const std::vector<std::string> expected = Dump(store.value().repo());
  CloseStore(&store);
  auto reopened = PersistentRepository::Open(dir, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().recovery().snapshot_lsn, cut_lsn);
  EXPECT_EQ(reopened.value().recovery().records_replayed, 4u);
  EXPECT_EQ(Dump(reopened.value().repo()), expected);
  EXPECT_EQ(reopened.value().lsn(), cut_lsn + 4);
}

TEST(BackgroundCompactionTest, PhasesRunInCrashSafeOrder) {
  const std::string dir = TestDir("phases");
  std::mutex mu;
  std::vector<CompactionPhase> seen;
  StoreOptions options;
  options.compaction_hook = [&](CompactionPhase phase) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(phase);
  };
  auto store = PersistentRepository::Init(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().AddSpecification(NamedSpec("ph")).ok());
  ASSERT_TRUE(store.value().CompactAsync().ok());
  ASSERT_TRUE(store.value().WaitForCompaction().ok());
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], CompactionPhase::kSnapshot);
  EXPECT_EQ(seen[1], CompactionPhase::kInstall);
  EXPECT_EQ(seen[2], CompactionPhase::kCleanup);
  EXPECT_EQ(seen[3], CompactionPhase::kDone);

  // Everything below the cut folded: one live, nearly-empty segment.
  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments.value().size(), 1u);
  EXPECT_EQ(store.value().records_since_snapshot(), 0u);
}

TEST(BackgroundCompactionTest, CompactAsyncWhileRunningIsANoOp) {
  const std::string dir = TestDir("reentry");
  PhaseGate gate;
  StoreOptions options;
  options.compaction_hook = gate.Hook();
  auto store = PersistentRepository::Init(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().AddSpecification(NamedSpec("re")).ok());
  ASSERT_TRUE(store.value().CompactAsync().ok());
  gate.AwaitPaused(1);
  const uint64_t seq_before = store.value().wal().active_seq();
  // A second CompactAsync while one runs must not take another cut.
  ASSERT_TRUE(store.value().CompactAsync().ok());
  EXPECT_EQ(store.value().wal().active_seq(), seq_before);
  gate.Release();
  ASSERT_TRUE(store.value().WaitForCompaction().ok());
}

void RunRepeatedCompactAsyncStress(PayloadCodec codec,
                                   const std::string& name) {
  const std::string dir = TestDir(name);
  StoreOptions options;
  options.codec = codec;
  auto store = PersistentRepository::Init(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().AddSpecification(NamedSpec("stress")).ok());
  const Specification& spec = store.value().repo().entry(0).spec;
  constexpr int kRecords = 120;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(store.value()
                    .AddExecution(0, MakeExec(spec, "s" + std::to_string(i)))
                    .ok());
    // Keep cutting mid-stream; most calls overlap a running worker and
    // are no-ops — exactly the production cadence.
    if (i % 13 == 0) ASSERT_TRUE(store.value().CompactAsync().ok());
  }
  ASSERT_TRUE(store.value().WaitForCompaction().ok());
  ASSERT_TRUE(store.value().Compact().ok());  // final fold, everything covered
  EXPECT_EQ(store.value().lsn(), static_cast<uint64_t>(kRecords) + 1);
  EXPECT_EQ(store.value().records_since_snapshot(), 0u);

  // The reopened store equals the linearized append set exactly.
  const std::vector<std::string> expected = Dump(store.value().repo());
  EXPECT_EQ(expected.size(), static_cast<size_t>(kRecords) + 1);
  CloseStore(&store);
  auto reopened = PersistentRepository::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Dump(reopened.value().repo()), expected);
  EXPECT_EQ(reopened.value().lsn(), static_cast<uint64_t>(kRecords) + 1);
  EXPECT_EQ(reopened.value().recovery().records_replayed, 0u);
}

TEST(BackgroundCompactionTest, RepeatedCompactAsyncStressBinaryCodec) {
  RunRepeatedCompactAsyncStress(PayloadCodec::kBinary, "stress_bin");
}

TEST(BackgroundCompactionTest, RepeatedCompactAsyncStressTextCodec) {
  RunRepeatedCompactAsyncStress(PayloadCodec::kText, "stress_text");
}

TEST(BackgroundCompactionTest, SegmentBytesAutoTriggerFoldsInBackground) {
  const std::string dir = TestDir("auto_seg");
  StoreOptions options;
  options.segment_bytes = 512;
  options.background_compaction = true;
  auto store = PersistentRepository::Init(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().AddSpecification(NamedSpec("auto")).ok());
  const Specification& spec = store.value().repo().entry(0).spec;
  constexpr int kRecords = 40;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(store.value()
                    .AddExecution(0, MakeExec(spec, "a" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(store.value().WaitForCompaction().ok());
  // Rotations happened and at least one background fold installed.
  EXPECT_GT(store.value().wal().active_seq(), 1u);
  EXPECT_GT(store.value().snapshot_lsn(), 0u);
  ASSERT_TRUE(store.value().Sync().ok());

  const std::vector<std::string> expected = Dump(store.value().repo());
  CloseStore(&store);
  auto reopened = PersistentRepository::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Dump(reopened.value().repo()), expected);
  EXPECT_EQ(reopened.value().lsn(), static_cast<uint64_t>(kRecords) + 1);
}

TEST(BackgroundCompactionTest, SnapshotEveryAutoTriggerRunsInBackground) {
  const std::string dir = TestDir("auto_every");
  StoreOptions options;
  options.snapshot_every = 10;
  options.background_compaction = true;
  auto store = PersistentRepository::Init(dir, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().AddSpecification(NamedSpec("every")).ok());
  const Specification& spec = store.value().repo().entry(0).spec;
  for (int i = 0; i < 35; ++i) {
    ASSERT_TRUE(store.value()
                    .AddExecution(0, MakeExec(spec, "e" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(store.value().WaitForCompaction().ok());
  EXPECT_GT(store.value().snapshot_lsn(), 0u);
  ASSERT_TRUE(store.value().Sync().ok());
  const std::vector<std::string> expected = Dump(store.value().repo());
  CloseStore(&store);
  auto reopened = PersistentRepository::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Dump(reopened.value().repo()), expected);
}

TEST(BackgroundCompactionTest, LegacySingleFileStoreOpensAndCompacts) {
  // A store laid out the pre-segmentation way (one wal.log, no PAWWAL)
  // must open, report its records, and compact under the new code.
  const std::string dir = TestDir("legacy_store");
  std::vector<std::string> expected;
  {
    auto store = PersistentRepository::Init(dir, {});
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().AddSpecification(NamedSpec("legacy")).ok());
    const Specification& spec = store.value().repo().entry(0).spec;
    ASSERT_TRUE(store.value().AddExecution(0, MakeExec(spec, "v")).ok());
    ASSERT_TRUE(store.value().Sync().ok());
    expected = Dump(store.value().repo());
  }
  ASSERT_TRUE(RenameFile(dir + "/" + WalSegmentFileName(1),
                         dir + "/wal.log").ok());
  ASSERT_TRUE(RemoveFileIfExists(dir + "/PAWWAL").ok());

  auto reopened = PersistentRepository::Open(dir, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Dump(reopened.value().repo()), expected);
  EXPECT_EQ(reopened.value().recovery().wal_segments, 1);
  ASSERT_TRUE(reopened.value().Compact().ok());
  CloseStore(&reopened);
  auto again = PersistentRepository::Open(dir, {});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Dump(again.value().repo()), expected);
}

// ---------------------------------------------------------------------------
// Sharded: concurrent ingest through the writer queues while shards
// compact in the background.
// ---------------------------------------------------------------------------

TEST(ShardedBackgroundCompactionTest, QueuedAppendsFlowWhileWorkersPaused) {
  constexpr int kShards = 2;
  const std::string dir = TestDir("sharded_pause");
  PhaseGate gate;
  StoreOptions options;
  options.writer_threads = kShards;
  options.compaction_hook = gate.Hook();
  auto store = ShardedRepository::Init(dir, kShards, options);
  ASSERT_TRUE(store.ok());

  // One spec per shard, names chosen so crc routing covers them all.
  std::vector<ShardedRepository::SpecRef> refs;
  std::vector<const Specification*> specs;
  for (int shard = 0; shard < kShards; ++shard) {
    int candidate = 0;
    std::string name;
    do {
      name = "pause_spec_" + std::to_string(candidate++);
    } while (ShardedRepository::ShardOf(name, kShards) != shard);
    auto ref = store.value().AddSpecification(NamedSpec(name));
    ASSERT_TRUE(ref.ok());
    ASSERT_EQ(ref.value().shard, shard);
    refs.push_back(ref.value());
    specs.push_back(&store.value()
                         .shard(ref.value().shard)
                         .repo()
                         .entry(ref.value().id)
                         .spec);
  }

  // Cut every shard, pausing all snapshot workers at kSnapshot.
  ASSERT_TRUE(store.value().CompactAsync().ok());
  gate.AwaitPaused(kShards);
  EXPECT_TRUE(store.value().compaction_running());

  // Queued appends still drain to completion while every worker is
  // paused mid-compaction: ingest is not hostage to snapshotting.
  std::vector<StoreFuture<ExecutionId>> futures;
  for (int i = 0; i < 20; ++i) {
    const auto& ref = refs[static_cast<size_t>(i) % refs.size()];
    futures.push_back(store.value().AddExecutionAsync(
        ref, MakeExec(*specs[static_cast<size_t>(i) % specs.size()],
                      "d" + std::to_string(i))));
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  gate.Release();
  ASSERT_TRUE(store.value().WaitForCompaction().ok());
  ASSERT_TRUE(store.value().Sync().ok());
  EXPECT_EQ(store.value().num_executions(), 20);

  CloseStore(&store);
  auto reopened = ShardedRepository::Open(dir, {}, kShards);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().num_specs(), kShards);
  EXPECT_EQ(reopened.value().num_executions(), 20);
}

TEST(ShardedBackgroundCompactionTest, ConcurrentIngestAndCompactStress) {
  constexpr int kShards = 4;
  constexpr int kCallers = 4;
  constexpr int kPerCaller = 60;
  const std::string dir = TestDir("sharded_stress");
  StoreOptions options;
  options.writer_threads = kShards;
  std::vector<std::string> expected_per_shard;
  {
    auto store = ShardedRepository::Init(dir, kShards, options);
    ASSERT_TRUE(store.ok());
    std::vector<ShardedRepository::SpecRef> refs;
    std::vector<const Specification*> specs;
    for (int i = 0; i < 8; ++i) {
      auto ref = store.value().AddSpecification(
          NamedSpec("stress_spec_" + std::to_string(i)));
      ASSERT_TRUE(ref.ok());
      refs.push_back(ref.value());
      specs.push_back(&store.value()
                           .shard(ref.value().shard)
                           .repo()
                           .entry(ref.value().id)
                           .spec);
    }
    store.value().Drain();

    // Callers enqueue concurrently; the main thread keeps cutting
    // background compactions into the stream.
    std::atomic<int> failures{0};
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back([&, t] {
        for (int i = 0; i < kPerCaller; ++i) {
          const size_t pick =
              static_cast<size_t>(t * kPerCaller + i) % refs.size();
          auto future = store.value().AddExecutionAsync(
              refs[pick],
              MakeExec(*specs[pick],
                       "t" + std::to_string(t) + ":" + std::to_string(i)));
          if (!future.get().ok()) ++failures;
        }
      });
    }
    for (int cut = 0; cut < 8; ++cut) {
      ASSERT_TRUE(store.value().CompactAsync().ok());
      std::this_thread::yield();
    }
    for (auto& caller : callers) caller.join();
    ASSERT_EQ(failures.load(), 0);
    ASSERT_TRUE(store.value().WaitForCompaction().ok());
    ASSERT_TRUE(store.value().Sync().ok());
    EXPECT_EQ(store.value().num_executions(), kCallers * kPerCaller);
    for (int i = 0; i < kShards; ++i) {
      expected_per_shard.push_back(
          Serialize(store.value().shard(i).repo().entry(0).spec));
    }
  }

  // The reopened store holds exactly the acknowledged append set.
  auto reopened = ShardedRepository::Open(dir, options, kShards);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().num_specs(), 8);
  EXPECT_EQ(reopened.value().num_executions(), kCallers * kPerCaller);
  // Background compaction left no replay debt beyond the post-cut
  // suffix; every shard recovers whole.
  for (int i = 0; i < kShards; ++i) {
    EXPECT_FALSE(reopened.value().shard(i).recovery().torn_tail);
  }
  reopened.value().Drain();
}

TEST(ShardedBackgroundCompactionTest, DurableIngestWithBackgroundFolds) {
  // sync_each_append + writer queues + auto background compaction:
  // every acked append survives reopen even with folds racing the
  // group-committed batches.
  constexpr int kShards = 2;
  const std::string dir = TestDir("sharded_durable");
  StoreOptions options;
  options.writer_threads = kShards;
  options.sync_each_append = true;
  options.segment_bytes = 2048;
  options.background_compaction = true;
  {
    auto store = ShardedRepository::Init(dir, kShards, options);
    ASSERT_TRUE(store.ok());
    auto ref = store.value().AddSpecification(NamedSpec("durable"));
    ASSERT_TRUE(ref.ok());
    const Specification& spec = store.value()
                                    .shard(ref.value().shard)
                                    .repo()
                                    .entry(ref.value().id)
                                    .spec;
    std::vector<StoreFuture<ExecutionId>> futures;
    for (int i = 0; i < 50; ++i) {
      futures.push_back(store.value().AddExecutionAsync(
          ref.value(), MakeExec(spec, "dur" + std::to_string(i))));
    }
    for (auto& f : futures) {
      auto r = f.get();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    ASSERT_TRUE(store.value().WaitForCompaction().ok());
  }
  auto reopened = ShardedRepository::Open(dir, options, kShards);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().num_executions(), 50);
  reopened.value().Drain();
}

}  // namespace
}  // namespace paw

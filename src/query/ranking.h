#ifndef PAW_QUERY_RANKING_H_
#define PAW_QUERY_RANKING_H_

/// \file ranking.h
/// \brief TF-IDF ranking and its privacy-aware variant (paper Sec. 4,
/// "Impact of Ranking on Privacy Preservation").
///
/// The paper observes that exact TF-IDF scores leak term-frequency
/// information about values a user is not allowed to see, and that random
/// noise would ruin provenance reproducibility. The privacy-aware variant
/// here is *deterministic score bucketing*: scores are quantized so that
/// at most `ceil(range/width)` frequency classes remain distinguishable.
/// Experiment E6 sweeps the bucket width to chart the ranking-quality /
/// leakage trade-off.

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/index/inverted_index.h"
#include "src/repo/repository.h"

namespace paw {

/// \brief TF-IDF scorer over a repository.
class TfIdfScorer {
 public:
  /// \brief Prepares document frequencies from `index`.
  void Build(const InvertedIndex& index) { index_ = &index; }

  /// \brief idf(token) = ln(1 + N / (1 + df)).
  double Idf(const std::string& token) const;

  /// \brief Score of a module for a term: sum over the term's tokens of
  /// tf(token, module) * idf(token).
  double ScoreModule(const Specification& spec, ModuleId m,
                     const std::string& term) const;

  /// \brief Score of an answer showing `visible` modules for `terms`:
  /// for each term, the best visible module's score.
  double ScoreAnswer(const Specification& spec,
                     const std::vector<ModuleId>& visible,
                     const std::vector<std::string>& terms) const;

 private:
  const InvertedIndex* index_ = nullptr;
};

/// \brief Quantizes each score down to a multiple of `width` (width <= 0
/// returns the input unchanged).
std::vector<double> BucketizeScores(const std::vector<double>& scores,
                                    double width);

/// \brief Number of distinct values in `scores` — the count of frequency
/// classes an adversary can distinguish (the leakage proxy of E6).
int DistinguishableClasses(const std::vector<double>& scores);

/// \brief Kendall tau-b correlation between two score vectors' induced
/// rankings, in [-1, 1]; ties handled by tau-b normalization. Returns 1
/// for fewer than two items or all-tied inputs.
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace paw

#endif  // PAW_QUERY_RANKING_H_

#ifndef PAW_QUERY_ZOOM_OUT_H_
#define PAW_QUERY_ZOOM_OUT_H_

/// \file zoom_out.h
/// \brief Zoom-out evaluation: coarsen an answer until it is
/// policy-compliant (paper Sec. 4, "gradually 'zoom-out' the view by
/// hiding details of composite modules and sensitive data, until privacy
/// is achieved").
///
/// Two enforcement passes:
///  1. *Level zoom-out*: remove from the answer prefix every workflow the
///     observer may not expand (deepest first), re-expanding after each
///     step.
///  2. *Structural zoom-out*: while a protected reachability fact is
///     still visible in the collapsed execution view, zoom out the
///     deepest workflow on the witness path's activations.

#include <vector>

#include "src/common/status.h"
#include "src/privacy/policy.h"
#include "src/provenance/exec_view.h"
#include "src/provenance/execution.h"
#include "src/workflow/view.h"

namespace paw {

/// \brief A coarsened specification view plus audit trail.
struct ZoomOutResult {
  Prefix final_prefix;
  int steps = 0;
  SpecView view;
};

/// \brief Coarsens `initial` until every member workflow is within
/// `level`; returns the re-expanded view.
Result<ZoomOutResult> ZoomOutToLevel(const Specification& spec,
                                     const ExpansionHierarchy& hierarchy,
                                     const Prefix& initial,
                                     AccessLevel level);

/// \brief A coarsened execution view plus audit trail.
struct ExecZoomOutResult {
  Prefix final_prefix;
  int steps = 0;
  ExecView view;
};

/// \brief Coarsens an execution view until every structural requirement
/// binding at `level` is hidden: the source and destination activations
/// either share a collapsed node or have no visible path.
///
/// Starts from the access prefix for `level` and zooms out further if
/// needed; gives up (PermissionDenied) only if even the root-level view
/// leaks, which cannot happen for pairs inside one composite but can for
/// root-level pairs — callers then fall back to edge deletion.
Result<ExecZoomOutResult> ZoomOutExecution(
    const Execution& exec, const ExpansionHierarchy& hierarchy,
    const PolicySet& policy, AccessLevel level);

/// \brief True iff the structural requirement `src ~> dst` is inferable
/// from the collapsed view (helper shared with tests/benches).
Result<bool> StructuralFactVisible(const ExecView& view,
                                   ModuleId src, ModuleId dst);

}  // namespace paw

#endif  // PAW_QUERY_ZOOM_OUT_H_

#ifndef PAW_QUERY_KEYWORD_SEARCH_H_
#define PAW_QUERY_KEYWORD_SEARCH_H_

/// \file keyword_search.h
/// \brief Keyword search returning minimal views (paper Sec. 4, Fig. 5,
/// following the semantics of [7]).
///
/// The answer to a keyword query over a hierarchical specification is a
/// *minimal view*: a prefix of the expansion hierarchy whose visible
/// modules cover every query term, such that no smaller prefix does. A
/// term is covered by a visible module when every token of the term
/// appears among the module's name/keyword tokens. Composite placeholders
/// can cover terms too — which is what makes coverage non-monotone in the
/// prefix lattice and the enumeration necessary.
///
/// Privacy integration: only workflows whose `required_level` is within
/// the caller's level may be expanded, so answers never reveal structure
/// beyond the caller's access view.

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/inverted_index.h"
#include "src/query/ranking.h"
#include "src/repo/repository.h"
#include "src/workflow/view.h"

namespace paw {

/// \brief One keyword answer: a ranked minimal view of one spec.
struct KeywordAnswer {
  int spec_id = -1;
  Prefix prefix;
  /// Modules (visible in the view) that matched the terms.
  std::vector<ModuleId> matched;
  /// Number of visible modules in the view (answer size).
  int view_size = 0;
  double score = 0;
};

/// \brief Options for keyword search.
struct KeywordSearchOptions {
  int max_results = 10;
  /// Cap on the prefix-lattice enumeration per spec; specs with larger
  /// lattices fall back to the greedy cover.
  int max_enumerated_prefixes = 4096;
  /// Prune candidate specs through the inverted index first.
  bool use_index = true;
};

/// \brief All minimal covering prefixes of one specification at one
/// access level (exhaustive over the prefix lattice).
Result<std::vector<Prefix>> MinimalCoveringPrefixes(
    const Specification& spec, const ExpansionHierarchy& hierarchy,
    const std::vector<std::string>& terms, AccessLevel level,
    int max_enumerated = 4096);

/// \brief Greedy cover fallback for large hierarchies: expand, for each
/// uncovered term, the shallowest admissible workflow containing a match.
Result<Prefix> GreedyCoveringPrefix(const Specification& spec,
                                    const ExpansionHierarchy& hierarchy,
                                    const std::vector<std::string>& terms,
                                    AccessLevel level);

/// \brief Search over a pinned view: prune specs via `index` (if given),
/// compute minimal views, rank with TF-IDF (ties: smaller views first).
/// The index must cover at least the view's cut; candidates beyond the
/// cut are skipped, so an index slightly ahead of the view is safe.
Result<std::vector<KeywordAnswer>> KeywordSearch(
    const RepositoryView& view, const InvertedIndex* index,
    const TfIdfScorer* scorer, const std::vector<std::string>& terms,
    AccessLevel level, const KeywordSearchOptions& options = {});

/// \brief Repository-wide search over the current contents (captures a
/// view internally; quiescent or single-writer callers only).
Result<std::vector<KeywordAnswer>> KeywordSearch(
    const Repository& repo, const InvertedIndex* index,
    const TfIdfScorer* scorer, const std::vector<std::string>& terms,
    AccessLevel level, const KeywordSearchOptions& options = {});

/// \brief The modules of `view` that cover `term` (helper shared with the
/// engine and tests).
std::vector<ModuleId> MatchingModules(const Specification& spec,
                                      const SpecView& view,
                                      const std::string& term);

}  // namespace paw

#endif  // PAW_QUERY_KEYWORD_SEARCH_H_

#include "src/query/structural_query.h"

#include <algorithm>
#include <functional>

#include "src/common/strings.h"
#include "src/graph/transitive.h"

namespace paw {
namespace {

Status CheckPattern(const StructuralPattern& pattern) {
  if (pattern.vars.empty()) {
    return Status::InvalidArgument("pattern needs >= 1 variable");
  }
  const int n = static_cast<int>(pattern.vars.size());
  for (const PatternEdge& e : pattern.edges) {
    if (e.from_var < 0 || e.from_var >= n || e.to_var < 0 || e.to_var >= n) {
      return Status::InvalidArgument("pattern edge variable out of range");
    }
    if (e.from_var == e.to_var) {
      return Status::InvalidArgument("pattern edge must join distinct vars");
    }
  }
  return Status::OK();
}

bool ModuleMatches(const Module& m, const std::string& term) {
  if (term.empty()) return true;
  std::vector<std::string> bag = Tokenize(m.name);
  for (const std::string& k : m.keywords) {
    for (const std::string& t : Tokenize(k)) bag.push_back(t);
  }
  return TokensContainPhrase(bag, term);
}

/// Generic backtracking matcher over a digraph with per-variable
/// candidate lists and a reachability oracle.
template <typename EmitFn>
void Backtrack(const Digraph& g, const TransitiveClosure& tc,
               const std::vector<std::vector<NodeIndex>>& candidates,
               const std::vector<PatternEdge>& edges, EmitFn emit) {
  const size_t n = candidates.size();
  std::vector<NodeIndex> binding(n, -1);

  std::function<void(size_t)> recurse = [&](size_t var) {
    if (var == n) {
      emit(binding);
      return;
    }
    for (NodeIndex cand : candidates[var]) {
      // Distinctness: a module/activation binds at most one variable.
      bool used = false;
      for (size_t i = 0; i < var; ++i) {
        if (binding[i] == cand) {
          used = true;
          break;
        }
      }
      if (used) continue;
      binding[var] = cand;
      bool ok = true;
      for (const PatternEdge& e : edges) {
        size_t a = static_cast<size_t>(e.from_var);
        size_t b = static_cast<size_t>(e.to_var);
        if (a > var || b > var) continue;  // not yet bound
        if (binding[a] < 0 || binding[b] < 0) continue;
        bool satisfied = e.transitive
                             ? tc.Reaches(binding[a], binding[b])
                             : g.HasEdge(binding[a], binding[b]);
        if (!satisfied) {
          ok = false;
          break;
        }
      }
      if (ok) recurse(var + 1);
      binding[var] = -1;
    }
  };
  recurse(0);
}

}  // namespace

Result<std::vector<PatternMatch>> MatchPattern(
    const SpecView& view, const StructuralPattern& pattern) {
  PAW_RETURN_NOT_OK(CheckPattern(pattern));
  const Specification& spec = view.spec();
  std::vector<std::vector<NodeIndex>> candidates(pattern.vars.size());
  for (size_t v = 0; v < pattern.vars.size(); ++v) {
    for (NodeIndex i = 0; i < view.num_visible(); ++i) {
      if (ModuleMatches(spec.module(view.visible(i)),
                        pattern.vars[v].term)) {
        candidates[v].push_back(i);
      }
    }
  }
  TransitiveClosure tc = TransitiveClosure::Compute(view.graph());
  std::vector<PatternMatch> matches;
  Backtrack(view.graph(), tc, candidates, pattern.edges,
            [&](const std::vector<NodeIndex>& binding) {
              PatternMatch match;
              for (NodeIndex i : binding) {
                match.binding.push_back(view.visible(i));
              }
              matches.push_back(std::move(match));
            });
  return matches;
}

Result<std::vector<ExecutionMatch>> MatchExecution(
    const Execution& exec, const StructuralPattern& pattern,
    const std::function<bool(ModuleId)>& module_visible) {
  PAW_RETURN_NOT_OK(CheckPattern(pattern));
  const Specification& spec = exec.spec();
  std::vector<std::vector<NodeIndex>> candidates(pattern.vars.size());
  for (size_t v = 0; v < pattern.vars.size(); ++v) {
    for (const ExecNode& n : exec.nodes()) {
      // Activations only: atomic nodes and composite begin nodes.
      if (n.kind != ExecNodeKind::kAtomic && n.kind != ExecNodeKind::kBegin) {
        continue;
      }
      if (module_visible && !module_visible(n.module)) continue;
      if (ModuleMatches(spec.module(n.module), pattern.vars[v].term)) {
        candidates[v].push_back(n.id.value());
      }
    }
  }
  TransitiveClosure tc = TransitiveClosure::Compute(exec.graph());
  std::vector<ExecutionMatch> matches;
  Backtrack(exec.graph(), tc, candidates, pattern.edges,
            [&](const std::vector<NodeIndex>& binding) {
              ExecutionMatch match;
              for (NodeIndex i : binding) {
                match.binding.push_back(ExecNodeId(i));
              }
              matches.push_back(std::move(match));
            });
  return matches;
}

}  // namespace paw

#include "src/query/ranking.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"

namespace paw {

double TfIdfScorer::Idf(const std::string& token) const {
  if (index_ == nullptr) return 1.0;
  double n = index_->num_docs();
  double df = index_->DocumentFrequency(token);
  return std::log(1.0 + n / (1.0 + df));
}

double TfIdfScorer::ScoreModule(const Specification& spec, ModuleId m,
                                const std::string& term) const {
  const Module& mod = spec.module(m);
  std::vector<std::string> bag = Tokenize(mod.name);
  for (const std::string& k : mod.keywords) {
    for (const std::string& t : Tokenize(k)) bag.push_back(t);
  }
  double score = 0;
  for (const std::string& token : Tokenize(term)) {
    int tf = static_cast<int>(std::count(bag.begin(), bag.end(), token));
    if (tf > 0) score += (1.0 + std::log(static_cast<double>(tf))) *
                         Idf(token);
  }
  return score;
}

double TfIdfScorer::ScoreAnswer(const Specification& spec,
                                const std::vector<ModuleId>& visible,
                                const std::vector<std::string>& terms) const {
  double total = 0;
  for (const std::string& term : terms) {
    double best = 0;
    for (ModuleId m : visible) {
      best = std::max(best, ScoreModule(spec, m, term));
    }
    total += best;
  }
  return total;
}

std::vector<double> BucketizeScores(const std::vector<double>& scores,
                                    double width) {
  if (width <= 0) return scores;
  std::vector<double> out;
  out.reserve(scores.size());
  for (double s : scores) {
    out.push_back(std::floor(s / width) * width);
  }
  return out;
}

int DistinguishableClasses(const std::vector<double>& scores) {
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return static_cast<int>(sorted.size());
}

double KendallTau(const std::vector<double>& a,
                  const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 1.0;
  int64_t concordant = 0;
  int64_t discordant = 0;
  int64_t ties_a = 0;
  int64_t ties_b = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      if (da == 0 && db == 0) continue;
      if (da == 0) {
        ++ties_a;
      } else if (db == 0) {
        ++ties_b;
      } else if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  double denom = std::sqrt(static_cast<double>(concordant + discordant +
                                               ties_a)) *
                 std::sqrt(static_cast<double>(concordant + discordant +
                                               ties_b));
  if (denom == 0) return 1.0;
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace paw

#ifndef PAW_QUERY_ENGINE_H_
#define PAW_QUERY_ENGINE_H_

/// \file engine.h
/// \brief The privacy-preserving query engine facade (paper Sec. 4).
///
/// Combines the repository, access control, indexes, ranking, masking and
/// zoom-out into the interface a search UI would call. Every entry point
/// takes a principal; answers never reveal anything beyond the
/// principal's access view and the spec's policy. Group-partitioned LRU
/// caching accelerates repeated queries within one privacy context.
///
/// Concurrency (MVCC read path): the engine pins a `RepositoryView` and
/// serves every query from that cut. Before serving it catches up to the
/// repository's current mutation epoch by extending the view and applying
/// index deltas (never a from-scratch rebuild) under a writer lock;
/// serving itself holds only a reader lock, so queries run concurrently
/// with each other and with single-writer repository appends. A query
/// observes a cut at least as fresh as the epoch at its arrival.

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/inverted_index.h"
#include "src/index/result_cache.h"
#include "src/privacy/access_control.h"
#include "src/privacy/data_privacy.h"
#include "src/privacy/view_cache.h"
#include "src/query/keyword_search.h"
#include "src/query/structural_query.h"
#include "src/query/zoom_out.h"
#include "src/repo/repository.h"

namespace paw {

/// \brief Engine construction options.
struct EngineOptions {
  size_t cache_capacity = 256;
  KeywordSearchOptions search;
  /// Memoize computed privacy views (zoom-outs, access views, masks) in
  /// the process-wide `PrivacyViewCache`. Off = recompute per query.
  bool view_cache = true;
  /// Cache instance override (tests); nullptr = the Global() cache.
  PrivacyViewCache* view_cache_instance = nullptr;
};

/// \brief A lineage answer rendered for one principal.
struct LineageAnswer {
  /// The prefix the answer was rendered at (after zoom-out).
  Prefix prefix;
  /// Zoom-out steps taken for structural privacy.
  int zoom_steps = 0;
  /// Rendered provenance rows: "node -> node [item=value,...]" with
  /// masked values for labels above the principal's level.
  std::vector<std::string> rows;
};

/// \brief Privacy-preserving query engine over one repository.
///
/// Thread-safe: query entry points may be called concurrently with each
/// other and with appends to the underlying repository (single-writer).
class QueryEngine {
 public:
  QueryEngine(const Repository& repo, const AccessControl& acl,
              EngineOptions options = {});

  /// Retires this engine's view-cache namespace so stale entries from a
  /// torn-down engine can never be served to a successor.
  ~QueryEngine();

  /// \brief Catches the pinned view and indexes up to the repository's
  /// current mutation epoch by applying deltas. Queries call this
  /// implicitly; it exists for callers that want to pay the catch-up
  /// cost eagerly. Cheap no-op when already current.
  void RefreshIndexes();

  /// \brief Keyword search at the principal's level; cached per
  /// (group, level), invalidated when the cut's spec slice grows.
  Result<std::vector<KeywordAnswer>> Search(
      PrincipalId principal, const std::vector<std::string>& terms);

  /// \brief Upstream provenance of one data item, rendered through the
  /// principal's access view with masking and structural zoom-out.
  Result<LineageAnswer> Lineage(PrincipalId principal, ExecutionId exec_id,
                                DataItemId item);

  /// \brief Structural pattern query against the principal's view of one
  /// specification.
  Result<std::vector<PatternMatch>> Structural(
      PrincipalId principal, int spec_id, const StructuralPattern& pattern);

  /// \brief Pinned-cut lookup of the `ordinal`-th execution of a spec.
  /// The returned entry pointer is immutable and address-stable, so it
  /// stays valid after the call. NotFound when the spec has fewer than
  /// `ordinal + 1` executions at the engine's cut.
  Result<const ExecutionEntry*> ExecutionByOrdinal(int spec_id,
                                                   int ordinal);

  /// \brief Pinned-cut spec entry pointer, or nullptr when `spec_id` is
  /// beyond the engine's current cut. The entry is immutable and
  /// address-stable, so the pointer stays valid after the call.
  const SpecEntry* SpecEntryAt(int spec_id) const;

  /// \brief One hit of an execution search.
  struct ExecutionSearchResult {
    ExecutionId exec_id;
    /// The first match found (bindings per pattern variable).
    ExecutionMatch match;
    int num_matches = 0;
    /// Rendered provenance of the activation bound to `provenance_var`.
    LineageAnswer provenance;
  };

  /// \brief The paper's exemplar query (Sec. 4): find executions where
  /// the pattern holds — e.g. "Expand SNP Set was executed before Query
  /// OMIM" — and return the provenance information for the activation
  /// bound to `provenance_var`. Matching is confined to modules inside
  /// the principal's access view; provenance rows are masked and
  /// zoomed-out like `Lineage` answers.
  Result<std::vector<ExecutionSearchResult>> SearchExecutions(
      PrincipalId principal, const StructuralPattern& pattern,
      int provenance_var);

  /// \brief Per-item visibility mask of one execution for the principal,
  /// served from the privacy-view cache when possible. The mask depends
  /// only on the immutable execution entry and the principal's cache
  /// group, so hits are exact.
  Result<std::shared_ptr<const MaskingReport>> ExecutionMask(
      PrincipalId principal, ExecutionId exec_id);

  /// \brief Evicts every memoized view derived from `spec_id` (its
  /// access/structural views and its executions' zoom-outs/masks). The
  /// ADD_SPEC path calls this when the spec slice grows — the epoch-floor
  /// discipline that keeps views hot across *execution* ingest.
  void InvalidateSpecViews(int spec_id);

  /// \brief Snapshot of the cache counters.
  CacheStats cache_stats() const;

  /// \brief The keyword index. Quiescent-only: do not touch while other
  /// threads may be querying (catch-up mutates the index in place).
  const InvertedIndex& index() const { return index_; }

 private:
  /// Cache partition tag: group + level (two principals share answers
  /// only when both match).
  Result<std::string> CacheGroup(PrincipalId principal) const;

  /// Advances the pinned view/index to cover at least `repo_`'s epoch
  /// as observed on entry. See class comment.
  void CatchUp();

  /// Shared answer rendering: zoom out for structural policy (memoized
  /// per (exec, cache-group) when the view cache is on), restrict to
  /// `cone_nodes`, mask values; `item` (when valid) is appended as an
  /// explicit final row. `cut_epoch` is the serving cut's epoch, the
  /// floor stamped on any cached zoom-out.
  Result<LineageAnswer> RenderCone(const SpecEntry& spec_entry, int spec_id,
                                   ExecutionId exec_id,
                                   const Execution& exec,
                                   const Principal& principal,
                                   const std::vector<ExecNodeId>& cone_nodes,
                                   DataItemId item,
                                   uint64_t cut_epoch) const;

  /// The view cache to consult, or nullptr when memoization is off.
  PrivacyViewCache* view_cache() const;

  const Repository& repo_;
  const AccessControl& acl_;
  EngineOptions options_;

  /// This engine's namespace in the process-wide privacy-view cache.
  const uint64_t view_ns_;

  /// Reader/writer lock over the pinned view and indexes: exclusive for
  /// catch-up (view extension + index deltas), shared for serving.
  mutable std::shared_mutex mu_;
  RepositoryView view_;
  InvertedIndex index_;
  TfIdfScorer scorer_;

  /// The result cache has its own lock so cache bookkeeping never
  /// serializes whole queries.
  mutable std::mutex cache_mu_;
  ResultCache cache_;
};

}  // namespace paw

#endif  // PAW_QUERY_ENGINE_H_

#ifndef PAW_QUERY_ENGINE_H_
#define PAW_QUERY_ENGINE_H_

/// \file engine.h
/// \brief The privacy-preserving query engine facade (paper Sec. 4).
///
/// Combines the repository, access control, indexes, ranking, masking and
/// zoom-out into the interface a search UI would call. Every entry point
/// takes a principal; answers never reveal anything beyond the
/// principal's access view and the spec's policy. Group-partitioned LRU
/// caching accelerates repeated queries within one privacy context.

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/inverted_index.h"
#include "src/index/result_cache.h"
#include "src/privacy/access_control.h"
#include "src/query/keyword_search.h"
#include "src/query/structural_query.h"
#include "src/query/zoom_out.h"
#include "src/repo/repository.h"

namespace paw {

/// \brief Engine construction options.
struct EngineOptions {
  size_t cache_capacity = 256;
  KeywordSearchOptions search;
};

/// \brief A lineage answer rendered for one principal.
struct LineageAnswer {
  /// The prefix the answer was rendered at (after zoom-out).
  Prefix prefix;
  /// Zoom-out steps taken for structural privacy.
  int zoom_steps = 0;
  /// Rendered provenance rows: "node -> node [item=value,...]" with
  /// masked values for labels above the principal's level.
  std::vector<std::string> rows;
};

/// \brief Privacy-preserving query engine over one repository.
class QueryEngine {
 public:
  QueryEngine(const Repository& repo, const AccessControl& acl,
              EngineOptions options = {});

  /// \brief Rebuilds indexes after repository changes.
  void RefreshIndexes();

  /// \brief Keyword search at the principal's level; cached per
  /// (group, level).
  Result<std::vector<KeywordAnswer>> Search(
      PrincipalId principal, const std::vector<std::string>& terms);

  /// \brief Upstream provenance of one data item, rendered through the
  /// principal's access view with masking and structural zoom-out.
  Result<LineageAnswer> Lineage(PrincipalId principal, ExecutionId exec_id,
                                DataItemId item);

  /// \brief Structural pattern query against the principal's view of one
  /// specification.
  Result<std::vector<PatternMatch>> Structural(
      PrincipalId principal, int spec_id, const StructuralPattern& pattern);

  /// \brief One hit of an execution search.
  struct ExecutionSearchResult {
    ExecutionId exec_id;
    /// The first match found (bindings per pattern variable).
    ExecutionMatch match;
    int num_matches = 0;
    /// Rendered provenance of the activation bound to `provenance_var`.
    LineageAnswer provenance;
  };

  /// \brief The paper's exemplar query (Sec. 4): find executions where
  /// the pattern holds — e.g. "Expand SNP Set was executed before Query
  /// OMIM" — and return the provenance information for the activation
  /// bound to `provenance_var`. Matching is confined to modules inside
  /// the principal's access view; provenance rows are masked and
  /// zoomed-out like `Lineage` answers.
  Result<std::vector<ExecutionSearchResult>> SearchExecutions(
      PrincipalId principal, const StructuralPattern& pattern,
      int provenance_var);

  const CacheStats& cache_stats() const { return cache_.stats(); }
  const InvertedIndex& index() const { return index_; }

 private:
  /// Cache partition tag: group + level (two principals share answers
  /// only when both match).
  Result<std::string> CacheGroup(PrincipalId principal) const;

  /// Shared answer rendering: zoom out for structural policy, restrict
  /// to `cone_nodes`, mask values; `item` (when valid) is appended as an
  /// explicit final row.
  Result<LineageAnswer> RenderCone(const SpecEntry& spec_entry,
                                   const Execution& exec,
                                   const Principal& principal,
                                   const std::vector<ExecNodeId>& cone_nodes,
                                   DataItemId item) const;

  const Repository& repo_;
  const AccessControl& acl_;
  EngineOptions options_;
  InvertedIndex index_;
  TfIdfScorer scorer_;
  ResultCache cache_;
};

}  // namespace paw

#endif  // PAW_QUERY_ENGINE_H_

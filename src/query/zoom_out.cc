#include "src/query/zoom_out.h"

#include <algorithm>

#include "src/graph/algorithms.h"

namespace paw {
namespace {

/// Deepest member of `prefix` violating `level`; invalid if none.
WorkflowId DeepestViolation(const Specification& spec,
                            const ExpansionHierarchy& hierarchy,
                            const Prefix& prefix, AccessLevel level) {
  WorkflowId worst;
  int worst_depth = -1;
  for (WorkflowId w : prefix) {
    if (spec.workflow(w).required_level > level &&
        hierarchy.Depth(w) > worst_depth) {
      worst = w;
      worst_depth = hierarchy.Depth(w);
    }
  }
  return worst;
}

/// Removes `w` and its descendants from `prefix`.
void RemoveSubtree(const ExpansionHierarchy& hierarchy, WorkflowId w,
                   Prefix* prefix) {
  prefix->erase(w);
  for (WorkflowId c : hierarchy.Children(w)) {
    if (prefix->count(c)) RemoveSubtree(hierarchy, c, prefix);
  }
}

}  // namespace

Result<ZoomOutResult> ZoomOutToLevel(const Specification& spec,
                                     const ExpansionHierarchy& hierarchy,
                                     const Prefix& initial,
                                     AccessLevel level) {
  if (!hierarchy.IsValidPrefix(initial)) {
    return Status::InvalidArgument("invalid initial prefix");
  }
  Prefix prefix = initial;
  int steps = 0;
  for (;;) {
    WorkflowId violation =
        DeepestViolation(spec, hierarchy, prefix, level);
    if (!violation.valid()) break;
    if (violation == spec.root()) {
      return Status::PermissionDenied("root workflow above observer level");
    }
    RemoveSubtree(hierarchy, violation, &prefix);
    ++steps;
  }
  PAW_ASSIGN_OR_RETURN(SpecView view,
                       ExpandPrefix(spec, hierarchy, prefix));
  return ZoomOutResult{std::move(prefix), steps, std::move(view)};
}

Result<bool> StructuralFactVisible(const ExecView& view, ModuleId src,
                                   ModuleId dst) {
  const Execution& exec = view.execution();
  // Collect visible nodes of each module's activations.
  std::vector<NodeIndex> src_nodes;
  std::vector<NodeIndex> dst_nodes;
  for (const ExecNode& n : exec.nodes()) {
    if (n.kind != ExecNodeKind::kAtomic && n.kind != ExecNodeKind::kBegin &&
        n.kind != ExecNodeKind::kEnd) {
      continue;
    }
    PAW_ASSIGN_OR_RETURN(NodeIndex v, view.ViewNodeOf(n.id));
    // The fact is only visible when the view still *shows* the module:
    // a collapsed supernode standing for an enclosing composite does not
    // reveal this module's identity.
    if (view.node(v).module != n.module) continue;
    if (n.module == src) src_nodes.push_back(v);
    if (n.module == dst) dst_nodes.push_back(v);
  }
  for (NodeIndex s : src_nodes) {
    for (NodeIndex d : dst_nodes) {
      if (s != d && PathExists(view.graph(), s, d)) return true;
    }
  }
  return false;
}

Result<ExecZoomOutResult> ZoomOutExecution(
    const Execution& exec, const ExpansionHierarchy& hierarchy,
    const PolicySet& policy, AccessLevel level) {
  const Specification& spec = exec.spec();
  Prefix prefix = hierarchy.AccessPrefix(spec, level);
  int steps = 0;
  for (;;) {
    PAW_ASSIGN_OR_RETURN(ExecView view,
                         CollapseExecution(exec, hierarchy, prefix));
    // Find a violated structural requirement.
    WorkflowId zoom_target;
    bool violated = false;
    for (const StructuralPrivacyRequirement& req :
         policy.structural_reqs) {
      if (level >= req.required_level) continue;  // observer cleared
      PAW_ASSIGN_OR_RETURN(ModuleId src, spec.FindModule(req.src_code));
      PAW_ASSIGN_OR_RETURN(ModuleId dst, spec.FindModule(req.dst_code));
      PAW_ASSIGN_OR_RETURN(bool visible,
                           StructuralFactVisible(view, src, dst));
      if (!visible) continue;
      violated = true;
      // Zoom out the deepest expanded workflow containing either module.
      WorkflowId ws = spec.module(src).workflow;
      WorkflowId wd = spec.module(dst).workflow;
      for (WorkflowId w : {ws, wd}) {
        if (w != spec.root() && prefix.count(w) &&
            (!zoom_target.valid() ||
             hierarchy.Depth(w) > hierarchy.Depth(zoom_target))) {
          zoom_target = w;
        }
      }
      break;
    }
    if (!violated) {
      return ExecZoomOutResult{std::move(prefix), steps, std::move(view)};
    }
    if (!zoom_target.valid()) {
      return Status::PermissionDenied(
          "structural requirement leaks even at the root view; use edge "
          "deletion instead");
    }
    RemoveSubtree(hierarchy, zoom_target, &prefix);
    ++steps;
  }
}

}  // namespace paw

#include "src/query/engine.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/privacy/data_privacy.h"
#include "src/provenance/lineage.h"

namespace paw {
namespace {

Counter& ViewComputationsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_privacy_view_computations_total");
  return c;
}

Counter& ZoomOutStepsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_privacy_zoom_out_steps_total");
  return c;
}

Counter& LineageConesTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_privacy_lineage_cones_total");
  return c;
}

Counter& CacheHitsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_query_cache_hits_total");
  return c;
}

Counter& CacheMissesTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_query_cache_misses_total");
  return c;
}

Counter& EngineCatchupsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_query_engine_catchups_total");
  return c;
}

/// Serializes keyword answers for the result cache. The encoding is
/// lossless (`DeserializeAnswers` round-trips it) so cache hits return
/// real answers instead of merely skipping the re-insert.
///
/// Per answer: `spec_id|prefix ids|matched ids|view_size|score;` with
/// comma-separated id lists and 17 significant digits for the score.
std::string SerializeAnswers(const std::vector<KeywordAnswer>& answers) {
  std::ostringstream os;
  os.precision(17);
  for (const KeywordAnswer& a : answers) {
    os << a.spec_id << '|';
    bool first = true;
    for (WorkflowId w : a.prefix) {
      if (!first) os << ',';
      first = false;
      os << w.value();
    }
    os << '|';
    first = true;
    for (ModuleId m : a.matched) {
      if (!first) os << ',';
      first = false;
      os << m.value();
    }
    os << '|' << a.view_size << '|' << a.score << ';';
  }
  return os.str();
}

Result<std::vector<int32_t>> ParseIdList(const std::string& field) {
  std::vector<int32_t> out;
  if (field.empty()) return out;
  for (const std::string& part : Split(field, ',')) {
    out.push_back(static_cast<int32_t>(std::atoi(part.c_str())));
  }
  return out;
}

Result<std::vector<KeywordAnswer>> DeserializeAnswers(
    const std::string& blob) {
  std::vector<KeywordAnswer> answers;
  for (const std::string& rec : Split(blob, ';')) {
    if (rec.empty()) continue;
    std::vector<std::string> fields = Split(rec, '|');
    if (fields.size() != 5) {
      return Status::Internal("malformed cached answer record");
    }
    KeywordAnswer a;
    a.spec_id = std::atoi(fields[0].c_str());
    PAW_ASSIGN_OR_RETURN(std::vector<int32_t> prefix_ids,
                         ParseIdList(fields[1]));
    for (int32_t v : prefix_ids) a.prefix.insert(WorkflowId(v));
    PAW_ASSIGN_OR_RETURN(std::vector<int32_t> matched_ids,
                         ParseIdList(fields[2]));
    for (int32_t v : matched_ids) a.matched.push_back(ModuleId(v));
    a.view_size = std::atoi(fields[3].c_str());
    a.score = std::strtod(fields[4].c_str(), nullptr);
    answers.push_back(std::move(a));
  }
  return answers;
}

}  // namespace

QueryEngine::QueryEngine(const Repository& repo, const AccessControl& acl,
                         EngineOptions options)
    : repo_(repo),
      acl_(acl),
      options_(options),
      view_ns_(PrivacyViewCache::NewNamespace()),
      cache_(options.cache_capacity) {
  view_ = repo_.View();
  index_.Build(view_);
  scorer_.Build(index_);
}

QueryEngine::~QueryEngine() {
  if (PrivacyViewCache* vc = view_cache()) {
    vc->InvalidateNamespace(view_ns_);
  }
}

PrivacyViewCache* QueryEngine::view_cache() const {
  if (!options_.view_cache) return nullptr;
  return options_.view_cache_instance != nullptr
             ? options_.view_cache_instance
             : &PrivacyViewCache::Global();
}

void QueryEngine::InvalidateSpecViews(int spec_id) {
  if (PrivacyViewCache* vc = view_cache()) {
    vc->InvalidateSpec(view_ns_, spec_id);
  }
}

void QueryEngine::CatchUp() {
  // Freshness floor: the epoch observed at request entry. The served cut
  // may be newer (another catch-up can slip in), never older.
  const uint64_t target = repo_.mutation_epoch();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (view_.epoch >= target) return;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (view_.epoch >= target) return;
  repo_.ExtendView(&view_);
  index_.ExtendTo(view_);
  EngineCatchupsTotal().Add();
}

void QueryEngine::RefreshIndexes() { CatchUp(); }

CacheStats QueryEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.stats();
}

Result<std::string> QueryEngine::CacheGroup(PrincipalId principal) const {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  return p.group + "@" + std::to_string(p.level);
}

Result<std::vector<KeywordAnswer>> QueryEngine::Search(
    PrincipalId principal, const std::vector<std::string>& terms) {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  PAW_ASSIGN_OR_RETURN(std::string group, CacheGroup(principal));
  std::string key = "kw:" + Join(terms, ",");
  CatchUp();
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Keyword answers depend only on the cut's spec slice, and specs are
  // append-only — so the spec count is the answer-invalidating epoch.
  // Execution ingest leaves cached keyword answers live.
  const uint64_t cache_epoch = static_cast<uint64_t>(view_.num_specs());
  std::optional<std::string> hit;
  {
    std::lock_guard<std::mutex> cl(cache_mu_);
    hit = cache_.Get(group, key, cache_epoch);
  }
  if (hit.has_value()) {
    auto cached = DeserializeAnswers(*hit);
    if (cached.ok()) {
      CacheHitsTotal().Add();
      return cached;
    }
    // Unreadable entry (should not happen): fall through and recompute.
  }
  CacheMissesTotal().Add();
  PAW_ASSIGN_OR_RETURN(
      std::vector<KeywordAnswer> answers,
      KeywordSearch(view_, &index_, &scorer_, terms, p.level,
                    options_.search));
  {
    std::lock_guard<std::mutex> cl(cache_mu_);
    cache_.Put(group, key, SerializeAnswers(answers), cache_epoch);
  }
  return answers;
}

Result<LineageAnswer> QueryEngine::RenderCone(
    const SpecEntry& spec_entry, int spec_id, ExecutionId exec_id,
    const Execution& exec, const Principal& p,
    const std::vector<ExecNodeId>& cone_nodes, DataItemId item,
    uint64_t cut_epoch) const {
  // 1. Structural zoom-out from the principal's access view — memoized
  // per (execution, cache-group): the result depends only on the
  // immutable execution entry, the spec's policy, and the level.
  PrivacyViewCache* vc = view_cache();
  const std::string cache_group = p.group + "@" + std::to_string(p.level);
  std::shared_ptr<const ExecZoomOutResult> zoomed_ptr;
  if (vc != nullptr) {
    zoomed_ptr = vc->GetExecZoom(view_ns_, exec_id, cache_group, cut_epoch);
  }
  if (zoomed_ptr == nullptr) {
    PAW_ASSIGN_OR_RETURN(
        ExecZoomOutResult fresh,
        ZoomOutExecution(exec, spec_entry.hierarchy, spec_entry.policy,
                         p.level));
    ZoomOutStepsTotal().Add(static_cast<uint64_t>(
        fresh.steps > 0 ? fresh.steps : 0));
    zoomed_ptr = std::make_shared<const ExecZoomOutResult>(std::move(fresh));
    if (vc != nullptr) {
      vc->PutExecZoom(view_ns_, exec_id, spec_id, cache_group, cut_epoch,
                      zoomed_ptr);
    }
  }
  const ExecZoomOutResult& zoomed = *zoomed_ptr;
  LineageConesTotal().Add();

  // 2. Restrict to the cone.
  std::vector<bool> in_cone(static_cast<size_t>(exec.num_nodes()), false);
  for (ExecNodeId n : cone_nodes) {
    in_cone[static_cast<size_t>(n.value())] = true;
  }
  std::vector<bool> view_in_cone(
      static_cast<size_t>(zoomed.view.num_nodes()), false);
  for (int32_t i = 0; i < exec.num_nodes(); ++i) {
    if (!in_cone[static_cast<size_t>(i)]) continue;
    PAW_ASSIGN_OR_RETURN(NodeIndex v,
                         zoomed.view.ViewNodeOf(ExecNodeId(i)));
    view_in_cone[static_cast<size_t>(v)] = true;
  }

  // 3. Render with data masking.
  LineageAnswer answer;
  answer.prefix = zoomed.final_prefix;
  answer.zoom_steps = zoomed.steps;
  const DataPolicy& data_policy = spec_entry.policy.data;
  for (const auto& [u, v] : zoomed.view.graph().Edges()) {
    if (!view_in_cone[static_cast<size_t>(u)] ||
        !view_in_cone[static_cast<size_t>(v)]) {
      continue;
    }
    std::ostringstream row;
    row << zoomed.view.NodeLabel(u) << " -> " << zoomed.view.NodeLabel(v)
        << " [";
    bool first = true;
    for (DataItemId d : zoomed.view.ItemsOn(u, v)) {
      if (!first) row << ", ";
      first = false;
      row << Execution::ItemName(d) << "="
          << RenderValue(exec, d, data_policy, p.level);
    }
    row << "]";
    answer.rows.push_back(row.str());
  }
  // The queried item itself (its carrying edge leaves the ancestor cone,
  // so it would otherwise be absent from the rows).
  if (item.valid()) {
    PAW_ASSIGN_OR_RETURN(
        NodeIndex producer_view,
        zoomed.view.ViewNodeOf(exec.item(item).producer));
    answer.rows.push_back(
        Execution::ItemName(item) + " = " +
        RenderValue(exec, item, data_policy, p.level) + " (produced by " +
        zoomed.view.NodeLabel(producer_view) + ")");
  }
  return answer;
}

Result<LineageAnswer> QueryEngine::Lineage(PrincipalId principal,
                                           ExecutionId exec_id,
                                           DataItemId item) {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  CatchUp();
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (exec_id.value() < 0 || exec_id.value() >= view_.num_executions()) {
    return Status::NotFound("unknown execution");
  }
  const ExecutionEntry& entry = view_.execution(exec_id);
  const SpecEntry& spec_entry = view_.entry(entry.spec_id);
  const Execution& exec = entry.exec;
  if (item.value() < 0 || item.value() >= exec.num_items()) {
    return Status::NotFound("unknown data item");
  }
  PAW_ASSIGN_OR_RETURN(LineageResult cone, ProvenanceOf(exec, item));
  return RenderCone(spec_entry, entry.spec_id, exec_id, exec, p, cone.nodes,
                    item, view_.epoch);
}

Result<const ExecutionEntry*> QueryEngine::ExecutionByOrdinal(int spec_id,
                                                              int ordinal) {
  if (ordinal < 0) return Status::InvalidArgument("negative ordinal");
  CatchUp();
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (spec_id < 0 || spec_id >= view_.num_specs()) {
    return Status::NotFound("unknown spec");
  }
  int seen = 0;
  for (const ExecutionEntry* e : view_.execs) {
    if (e->spec_id != spec_id) continue;
    if (seen == ordinal) return e;
    ++seen;
  }
  return Status::NotFound("has " + std::to_string(seen) +
                          " execution(s); no #" + std::to_string(ordinal));
}

const SpecEntry* QueryEngine::SpecEntryAt(int spec_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (spec_id < 0 || spec_id >= view_.num_specs()) return nullptr;
  return view_.specs[static_cast<size_t>(spec_id)];
}

Result<std::vector<QueryEngine::ExecutionSearchResult>>
QueryEngine::SearchExecutions(PrincipalId principal,
                              const StructuralPattern& pattern,
                              int provenance_var) {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  if (provenance_var < 0 ||
      provenance_var >= static_cast<int>(pattern.vars.size())) {
    return Status::InvalidArgument("provenance_var out of range");
  }
  CatchUp();
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ExecutionSearchResult> results;
  for (int e = 0; e < view_.num_executions(); ++e) {
    const ExecutionEntry& entry = view_.execution(ExecutionId(e));
    const SpecEntry& spec_entry = view_.entry(entry.spec_id);
    const Execution& exec = entry.exec;
    // Visibility: only modules inside the principal's access view may
    // participate in a match.
    Prefix access =
        spec_entry.hierarchy.AccessPrefix(spec_entry.spec, p.level);
    auto visible = [&](ModuleId m) {
      return access.count(spec_entry.spec.module(m).workflow) > 0;
    };
    PAW_ASSIGN_OR_RETURN(std::vector<ExecutionMatch> matches,
                         MatchExecution(exec, pattern, visible));
    if (matches.empty()) continue;
    ExecutionSearchResult hit;
    hit.exec_id = ExecutionId(e);
    hit.match = matches.front();
    hit.num_matches = static_cast<int>(matches.size());
    ExecNodeId target =
        hit.match.binding[static_cast<size_t>(provenance_var)];
    PAW_ASSIGN_OR_RETURN(LineageResult cone,
                         ProvenanceOfNode(exec, target));
    PAW_ASSIGN_OR_RETURN(
        hit.provenance,
        RenderCone(spec_entry, entry.spec_id, ExecutionId(e), exec, p,
                   cone.nodes, DataItemId(), view_.epoch));
    results.push_back(std::move(hit));
  }
  return results;
}

Result<std::vector<PatternMatch>> QueryEngine::Structural(
    PrincipalId principal, int spec_id, const StructuralPattern& pattern) {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  CatchUp();
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (spec_id < 0 || spec_id >= view_.num_specs()) {
    return Status::NotFound("unknown spec");
  }
  const SpecEntry& entry = view_.entry(spec_id);
  // The access view depends only on the immutable spec entry and the
  // principal's cache group — memoize it and run the pattern match
  // against the shared copy.
  PrivacyViewCache* vc = view_cache();
  const std::string cache_group = p.group + "@" + std::to_string(p.level);
  std::shared_ptr<const SpecView> view;
  if (vc != nullptr) {
    view = vc->GetSpecView(view_ns_, spec_id, cache_group, view_.epoch);
  }
  if (view == nullptr) {
    Prefix access = entry.hierarchy.AccessPrefix(entry.spec, p.level);
    PAW_ASSIGN_OR_RETURN(
        SpecView fresh, ExpandPrefix(entry.spec, entry.hierarchy, access));
    ViewComputationsTotal().Add();
    view = std::make_shared<const SpecView>(std::move(fresh));
    if (vc != nullptr) {
      vc->PutSpecView(view_ns_, spec_id, cache_group, view_.epoch, view);
    }
  }
  return MatchPattern(*view, pattern);
}

Result<std::shared_ptr<const MaskingReport>> QueryEngine::ExecutionMask(
    PrincipalId principal, ExecutionId exec_id) {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  CatchUp();
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (exec_id.value() < 0 || exec_id.value() >= view_.num_executions()) {
    return Status::NotFound("unknown execution");
  }
  const ExecutionEntry& entry = view_.execution(exec_id);
  const SpecEntry& spec_entry = view_.entry(entry.spec_id);
  PrivacyViewCache* vc = view_cache();
  const std::string cache_group = p.group + "@" + std::to_string(p.level);
  std::shared_ptr<const MaskingReport> mask;
  if (vc != nullptr) {
    mask = vc->GetMasking(view_ns_, exec_id, cache_group, view_.epoch);
  }
  if (mask == nullptr) {
    mask = std::make_shared<const MaskingReport>(
        ComputeMasking(entry.exec, spec_entry.policy.data, p.level));
    if (vc != nullptr) {
      vc->PutMasking(view_ns_, exec_id, entry.spec_id, cache_group,
                     view_.epoch, mask);
    }
  }
  return mask;
}

}  // namespace paw

#include "src/query/engine.h"

#include <algorithm>
#include <sstream>

#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/privacy/data_privacy.h"
#include "src/provenance/lineage.h"

namespace paw {
namespace {

Counter& ViewComputationsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_privacy_view_computations_total");
  return c;
}

Counter& ZoomOutStepsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_privacy_zoom_out_steps_total");
  return c;
}

Counter& LineageConesTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_privacy_lineage_cones_total");
  return c;
}

/// Serializes keyword answers for the result cache.
std::string SerializeAnswers(const Repository& repo,
                             const std::vector<KeywordAnswer>& answers) {
  std::ostringstream os;
  for (const KeywordAnswer& a : answers) {
    os << repo.entry(a.spec_id).spec.name() << "|";
    for (WorkflowId w : a.prefix) {
      os << repo.entry(a.spec_id).spec.workflow(w).code << ",";
    }
    os << "|" << a.score << ";";
  }
  return os.str();
}

}  // namespace

QueryEngine::QueryEngine(const Repository& repo, const AccessControl& acl,
                         EngineOptions options)
    : repo_(repo),
      acl_(acl),
      options_(options),
      cache_(options.cache_capacity) {
  RefreshIndexes();
}

void QueryEngine::RefreshIndexes() {
  index_.Build(repo_);
  scorer_.Build(index_);
}

Result<std::string> QueryEngine::CacheGroup(PrincipalId principal) const {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  return p.group + "@" + std::to_string(p.level);
}

Result<std::vector<KeywordAnswer>> QueryEngine::Search(
    PrincipalId principal, const std::vector<std::string>& terms) {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  PAW_ASSIGN_OR_RETURN(std::string group, CacheGroup(principal));
  std::string key = "kw:" + Join(terms, ",");
  // The cache stores a serialized digest to validate reuse; answers are
  // recomputed only on miss.
  bool cached = cache_.Get(group, key).has_value();
  PAW_ASSIGN_OR_RETURN(
      std::vector<KeywordAnswer> answers,
      KeywordSearch(repo_, &index_, &scorer_, terms, p.level,
                    options_.search));
  if (!cached) {
    cache_.Put(group, key, SerializeAnswers(repo_, answers));
  }
  return answers;
}

Result<LineageAnswer> QueryEngine::RenderCone(
    const SpecEntry& spec_entry, const Execution& exec,
    const Principal& p, const std::vector<ExecNodeId>& cone_nodes,
    DataItemId item) const {
  // 1. Structural zoom-out from the principal's access view.
  PAW_ASSIGN_OR_RETURN(
      ExecZoomOutResult zoomed,
      ZoomOutExecution(exec, spec_entry.hierarchy, spec_entry.policy,
                       p.level));
  LineageConesTotal().Add();
  ZoomOutStepsTotal().Add(static_cast<uint64_t>(
      zoomed.steps > 0 ? zoomed.steps : 0));

  // 2. Restrict to the cone.
  std::vector<bool> in_cone(static_cast<size_t>(exec.num_nodes()), false);
  for (ExecNodeId n : cone_nodes) {
    in_cone[static_cast<size_t>(n.value())] = true;
  }
  std::vector<bool> view_in_cone(
      static_cast<size_t>(zoomed.view.num_nodes()), false);
  for (int32_t i = 0; i < exec.num_nodes(); ++i) {
    if (!in_cone[static_cast<size_t>(i)]) continue;
    PAW_ASSIGN_OR_RETURN(NodeIndex v,
                         zoomed.view.ViewNodeOf(ExecNodeId(i)));
    view_in_cone[static_cast<size_t>(v)] = true;
  }

  // 3. Render with data masking.
  LineageAnswer answer;
  answer.prefix = zoomed.final_prefix;
  answer.zoom_steps = zoomed.steps;
  const DataPolicy& data_policy = spec_entry.policy.data;
  for (const auto& [u, v] : zoomed.view.graph().Edges()) {
    if (!view_in_cone[static_cast<size_t>(u)] ||
        !view_in_cone[static_cast<size_t>(v)]) {
      continue;
    }
    std::ostringstream row;
    row << zoomed.view.NodeLabel(u) << " -> " << zoomed.view.NodeLabel(v)
        << " [";
    bool first = true;
    for (DataItemId d : zoomed.view.ItemsOn(u, v)) {
      if (!first) row << ", ";
      first = false;
      row << Execution::ItemName(d) << "="
          << RenderValue(exec, d, data_policy, p.level);
    }
    row << "]";
    answer.rows.push_back(row.str());
  }
  // The queried item itself (its carrying edge leaves the ancestor cone,
  // so it would otherwise be absent from the rows).
  if (item.valid()) {
    PAW_ASSIGN_OR_RETURN(
        NodeIndex producer_view,
        zoomed.view.ViewNodeOf(exec.item(item).producer));
    answer.rows.push_back(
        Execution::ItemName(item) + " = " +
        RenderValue(exec, item, data_policy, p.level) + " (produced by " +
        zoomed.view.NodeLabel(producer_view) + ")");
  }
  return answer;
}

Result<LineageAnswer> QueryEngine::Lineage(PrincipalId principal,
                                           ExecutionId exec_id,
                                           DataItemId item) {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  if (exec_id.value() < 0 || exec_id.value() >= repo_.num_executions()) {
    return Status::NotFound("unknown execution");
  }
  const ExecutionEntry& entry = repo_.execution(exec_id);
  const SpecEntry& spec_entry = repo_.entry(entry.spec_id);
  const Execution& exec = entry.exec;
  if (item.value() < 0 || item.value() >= exec.num_items()) {
    return Status::NotFound("unknown data item");
  }
  PAW_ASSIGN_OR_RETURN(LineageResult cone, ProvenanceOf(exec, item));
  return RenderCone(spec_entry, exec, p, cone.nodes, item);
}

Result<std::vector<QueryEngine::ExecutionSearchResult>>
QueryEngine::SearchExecutions(PrincipalId principal,
                              const StructuralPattern& pattern,
                              int provenance_var) {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  if (provenance_var < 0 ||
      provenance_var >= static_cast<int>(pattern.vars.size())) {
    return Status::InvalidArgument("provenance_var out of range");
  }
  std::vector<ExecutionSearchResult> results;
  for (int e = 0; e < repo_.num_executions(); ++e) {
    const ExecutionEntry& entry = repo_.execution(ExecutionId(e));
    const SpecEntry& spec_entry = repo_.entry(entry.spec_id);
    const Execution& exec = entry.exec;
    // Visibility: only modules inside the principal's access view may
    // participate in a match.
    Prefix access =
        spec_entry.hierarchy.AccessPrefix(spec_entry.spec, p.level);
    auto visible = [&](ModuleId m) {
      return access.count(spec_entry.spec.module(m).workflow) > 0;
    };
    PAW_ASSIGN_OR_RETURN(std::vector<ExecutionMatch> matches,
                         MatchExecution(exec, pattern, visible));
    if (matches.empty()) continue;
    ExecutionSearchResult hit;
    hit.exec_id = ExecutionId(e);
    hit.match = matches.front();
    hit.num_matches = static_cast<int>(matches.size());
    ExecNodeId target =
        hit.match.binding[static_cast<size_t>(provenance_var)];
    PAW_ASSIGN_OR_RETURN(LineageResult cone,
                         ProvenanceOfNode(exec, target));
    PAW_ASSIGN_OR_RETURN(
        hit.provenance,
        RenderCone(spec_entry, exec, p, cone.nodes, DataItemId()));
    results.push_back(std::move(hit));
  }
  return results;
}

Result<std::vector<PatternMatch>> QueryEngine::Structural(
    PrincipalId principal, int spec_id, const StructuralPattern& pattern) {
  PAW_ASSIGN_OR_RETURN(Principal p, acl_.Get(principal));
  if (spec_id < 0 || spec_id >= repo_.num_specs()) {
    return Status::NotFound("unknown spec");
  }
  const SpecEntry& entry = repo_.entry(spec_id);
  Prefix access = entry.hierarchy.AccessPrefix(entry.spec, p.level);
  PAW_ASSIGN_OR_RETURN(
      SpecView view, ExpandPrefix(entry.spec, entry.hierarchy, access));
  ViewComputationsTotal().Add();
  return MatchPattern(view, pattern);
}

}  // namespace paw

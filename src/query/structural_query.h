#ifndef PAW_QUERY_STRUCTURAL_QUERY_H_
#define PAW_QUERY_STRUCTURAL_QUERY_H_

/// \file structural_query.h
/// \brief Conjunctive structural patterns over views and executions
/// (paper Sec. 4; BP-QL-flavoured, ref [1]).
///
/// A pattern binds variables to modules via keyword predicates and
/// constrains pairs of variables with either a direct dataflow edge or a
/// transitive path ("find executions where Expand SNP Set was executed
/// before Query OMIM"). Evaluation is backtracking search over candidate
/// nodes with reachability probes.

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/provenance/execution.h"
#include "src/workflow/view.h"

namespace paw {

/// \brief One pattern variable: matches modules whose token bag contains
/// every token of `term` (empty term matches anything).
struct NodePredicate {
  std::string term;
};

/// \brief A binary constraint between two pattern variables.
struct PatternEdge {
  int from_var = 0;
  int to_var = 0;
  /// false: direct edge required; true: any non-empty path.
  bool transitive = true;
};

/// \brief A conjunctive structural pattern.
struct StructuralPattern {
  std::vector<NodePredicate> vars;
  std::vector<PatternEdge> edges;
};

/// \brief One match: a module per pattern variable.
struct PatternMatch {
  std::vector<ModuleId> binding;
};

/// \brief Matches `pattern` against the visible graph of a view.
Result<std::vector<PatternMatch>> MatchPattern(
    const SpecView& view, const StructuralPattern& pattern);

/// \brief One match against an execution: an activation per variable.
struct ExecutionMatch {
  std::vector<ExecNodeId> binding;
};

/// \brief Matches `pattern` against the activations of an execution
/// (atomic nodes and composite begin nodes).
///
/// `module_visible`, when set, restricts candidates to modules it
/// accepts — the hook the engine uses to confine matching to a
/// principal's access view.
Result<std::vector<ExecutionMatch>> MatchExecution(
    const Execution& exec, const StructuralPattern& pattern,
    const std::function<bool(ModuleId)>& module_visible = nullptr);

}  // namespace paw

#endif  // PAW_QUERY_STRUCTURAL_QUERY_H_

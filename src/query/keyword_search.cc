#include "src/query/keyword_search.h"

#include <algorithm>

#include "src/common/strings.h"

namespace paw {
namespace {

/// Token bag of a module (name + keywords).
std::vector<std::string> TokenBag(const Module& m) {
  std::vector<std::string> bag = Tokenize(m.name);
  for (const std::string& k : m.keywords) {
    for (const std::string& t : Tokenize(k)) bag.push_back(t);
  }
  return bag;
}

bool ModuleCovers(const Module& m, const std::string& term) {
  return TokensContainPhrase(TokenBag(m), term);
}

/// True iff every term is covered by some visible module of `view`.
bool ViewCovers(const Specification& spec, const SpecView& view,
                const std::vector<std::string>& terms) {
  for (const std::string& term : terms) {
    bool covered = false;
    for (ModuleId mid : view.visible_modules()) {
      if (ModuleCovers(spec.module(mid), term)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

/// Prefixes admissible at `level`: every non-root member within level.
bool PrefixAdmissible(const Specification& spec, const Prefix& prefix,
                      AccessLevel level) {
  for (WorkflowId w : prefix) {
    if (spec.workflow(w).required_level > level) return false;
  }
  return true;
}

}  // namespace

std::vector<ModuleId> MatchingModules(const Specification& spec,
                                      const SpecView& view,
                                      const std::string& term) {
  std::vector<ModuleId> out;
  for (ModuleId mid : view.visible_modules()) {
    if (ModuleCovers(spec.module(mid), term)) out.push_back(mid);
  }
  return out;
}

Result<std::vector<Prefix>> MinimalCoveringPrefixes(
    const Specification& spec, const ExpansionHierarchy& hierarchy,
    const std::vector<std::string>& terms, AccessLevel level,
    int max_enumerated) {
  // Enumerate the lattice smallest-first; a covering prefix is kept only
  // if no kept prefix is a subset of it.
  auto all = hierarchy.EnumeratePrefixes(/*max_workflows=*/20);
  if (!all.ok()) {
    PAW_ASSIGN_OR_RETURN(Prefix greedy,
                         GreedyCoveringPrefix(spec, hierarchy, terms, level));
    return std::vector<Prefix>{greedy};
  }
  if (static_cast<int>(all.value().size()) > max_enumerated) {
    PAW_ASSIGN_OR_RETURN(Prefix greedy,
                         GreedyCoveringPrefix(spec, hierarchy, terms, level));
    return std::vector<Prefix>{greedy};
  }
  std::vector<Prefix> minimal;
  for (const Prefix& p : all.value()) {
    if (!PrefixAdmissible(spec, p, level)) continue;
    bool dominated = false;
    for (const Prefix& kept : minimal) {
      if (std::includes(p.begin(), p.end(), kept.begin(), kept.end())) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    PAW_ASSIGN_OR_RETURN(SpecView view, ExpandPrefix(spec, hierarchy, p));
    if (ViewCovers(spec, view, terms)) minimal.push_back(p);
  }
  return minimal;
}

Result<Prefix> GreedyCoveringPrefix(const Specification& spec,
                                    const ExpansionHierarchy& hierarchy,
                                    const std::vector<std::string>& terms,
                                    AccessLevel level) {
  Prefix prefix = hierarchy.RootPrefix();
  for (int round = 0; round < spec.num_workflows() + 1; ++round) {
    PAW_ASSIGN_OR_RETURN(SpecView view,
                         ExpandPrefix(spec, hierarchy, prefix));
    // Find an uncovered term.
    std::string uncovered;
    for (const std::string& term : terms) {
      if (MatchingModules(spec, view, term).empty()) {
        uncovered = term;
        break;
      }
    }
    if (uncovered.empty()) return prefix;
    // Expand the shallowest admissible workflow containing a module that
    // covers the term.
    WorkflowId best;
    int best_depth = 1 << 30;
    for (const Module& m : spec.modules()) {
      if (!ModuleCovers(m, uncovered)) continue;
      WorkflowId w = m.workflow;
      if (prefix.count(w)) continue;  // already expanded; placeholder issue
      // Admissibility of the whole ancestor chain.
      Prefix closed = hierarchy.Close({w});
      if (!PrefixAdmissible(spec, closed, level)) continue;
      if (hierarchy.Depth(w) < best_depth) {
        best_depth = hierarchy.Depth(w);
        best = w;
      }
    }
    if (!best.valid()) {
      return Status::NotFound("term '" + uncovered +
                              "' cannot be covered at this access level");
    }
    Prefix closed = hierarchy.Close({best});
    prefix.insert(closed.begin(), closed.end());
  }
  return Status::Internal("greedy cover failed to converge");
}

Result<std::vector<KeywordAnswer>> KeywordSearch(
    const Repository& repo, const InvertedIndex* index,
    const TfIdfScorer* scorer, const std::vector<std::string>& terms,
    AccessLevel level, const KeywordSearchOptions& options) {
  return KeywordSearch(repo.View(), index, scorer, terms, level, options);
}

Result<std::vector<KeywordAnswer>> KeywordSearch(
    const RepositoryView& view, const InvertedIndex* index,
    const TfIdfScorer* scorer, const std::vector<std::string>& terms,
    AccessLevel level, const KeywordSearchOptions& options) {
  std::vector<int> candidates;
  if (options.use_index && index != nullptr) {
    candidates = index->CandidateSpecs(terms, level);
  } else {
    for (int s = 0; s < view.num_specs(); ++s) candidates.push_back(s);
  }

  std::vector<KeywordAnswer> answers;
  for (int s : candidates) {
    if (s >= view.num_specs()) continue;  // index ahead of the pinned cut
    const SpecEntry& entry = view.entry(s);
    auto minimal =
        MinimalCoveringPrefixes(entry.spec, entry.hierarchy, terms, level,
                                options.max_enumerated_prefixes);
    if (!minimal.ok()) continue;  // spec not coverable at this level
    for (const Prefix& p : minimal.value()) {
      PAW_ASSIGN_OR_RETURN(SpecView view,
                           ExpandPrefix(entry.spec, entry.hierarchy, p));
      KeywordAnswer answer;
      answer.spec_id = s;
      answer.prefix = p;
      answer.view_size = static_cast<int>(view.num_visible());
      for (const std::string& term : terms) {
        for (ModuleId m : MatchingModules(entry.spec, view, term)) {
          if (std::find(answer.matched.begin(), answer.matched.end(), m) ==
              answer.matched.end()) {
            answer.matched.push_back(m);
          }
        }
      }
      if (answer.matched.empty()) continue;
      answer.score = scorer != nullptr
                         ? scorer->ScoreAnswer(entry.spec, answer.matched,
                                               terms)
                         : static_cast<double>(answer.matched.size());
      answers.push_back(std::move(answer));
    }
  }
  std::sort(answers.begin(), answers.end(),
            [](const KeywordAnswer& a, const KeywordAnswer& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.view_size != b.view_size) {
                return a.view_size < b.view_size;
              }
              return a.spec_id < b.spec_id;
            });
  if (static_cast<int>(answers.size()) > options.max_results) {
    answers.resize(static_cast<size_t>(options.max_results));
  }
  return answers;
}

}  // namespace paw

#ifndef PAW_INDEX_REACHABILITY_INDEX_H_
#define PAW_INDEX_REACHABILITY_INDEX_H_

/// \file reachability_index.h
/// \brief Materialized reachability for provenance queries (paper Sec. 4,
/// "advanced data structures" for efficient search).
///
/// Lineage and structural queries are reachability-bound; the index trades
/// one closure computation for O(1) pair probes. Experiment E8 compares it
/// against per-query BFS.

#include <memory>

#include "src/graph/digraph.h"
#include "src/graph/transitive.h"

namespace paw {

/// \brief A rebuildable transitive-closure index over one digraph.
class ReachabilityIndex {
 public:
  /// \brief Builds the index for `g` (kept by reference; call `Rebuild`
  /// after mutating the graph).
  explicit ReachabilityIndex(const Digraph& g);

  /// \brief Recomputes the closure from scratch after arbitrary graph
  /// changes (edge deletions need this; additions do not).
  void Rebuild();

  /// \brief Incrementally folds one edge `u -> v` that was just added to
  /// the graph (call after `Digraph::AddEdge` succeeded). Grows the
  /// closure first if the graph gained nodes since the last build, so
  /// append-only growth never pays a from-scratch `Rebuild`. Equivalent
  /// to `Rebuild()` for any sequence of node/edge additions
  /// (fuzz-checked in tests/reachability_index_test.cc).
  void ApplyEdgeDelta(NodeIndex u, NodeIndex v);

  /// \brief O(1) reachability probe.
  bool Reaches(NodeIndex u, NodeIndex v) const;

  /// \brief Number of reachable pairs.
  int64_t CountPairs() const { return closure_->CountPairs(); }

  /// \brief Approximate index size in bytes.
  int64_t ApproxBytes() const;

 private:
  const Digraph* graph_;
  std::unique_ptr<TransitiveClosure> closure_;
};

}  // namespace paw

#endif  // PAW_INDEX_REACHABILITY_INDEX_H_

#include "src/index/inverted_index.h"

#include <algorithm>
#include <set>

#include "src/common/strings.h"

namespace paw {

void InvertedIndex::Build(const Repository& repo) { Build(repo.View()); }

void InvertedIndex::Build(const RepositoryView& view) {
  postings_.clear();
  df_.clear();
  num_postings_ = 0;
  num_docs_ = 0;
  ExtendTo(view);
}

void InvertedIndex::ExtendTo(const RepositoryView& view) {
  // Spec ids are dense and increasing, so appending the delta keeps
  // every posting list sorted by spec id.
  for (int s = num_docs_; s < view.num_specs(); ++s) {
    const SpecEntry& entry = view.entry(s);
    std::set<std::string> seen_in_doc;
    for (const Module& m : entry.spec.modules()) {
      AccessLevel level = entry.spec.workflow(m.workflow).required_level;
      // Count token occurrences in name tokens + keywords.
      std::map<std::string, int> counts;
      for (const std::string& t : Tokenize(m.name)) ++counts[t];
      for (const std::string& k : m.keywords) {
        for (const std::string& t : Tokenize(k)) ++counts[t];
      }
      for (const auto& [token, tf] : counts) {
        postings_[token].push_back(Posting{s, m.id, level, tf});
        ++num_postings_;
        seen_in_doc.insert(token);
      }
    }
    for (const std::string& t : seen_in_doc) ++df_[t];
  }
  num_docs_ = std::max(num_docs_, view.num_specs());
}

const std::vector<Posting>& InvertedIndex::Lookup(
    const std::string& token) const {
  static const std::vector<Posting> kEmpty;
  auto it = postings_.find(token);
  return it == postings_.end() ? kEmpty : it->second;
}

std::vector<int> InvertedIndex::CandidateSpecs(
    const std::vector<std::string>& terms, AccessLevel level) const {
  std::vector<int> result;
  bool first = true;
  for (const std::string& term : terms) {
    for (const std::string& token : Tokenize(term)) {
      std::set<int> specs_with_token;
      for (const Posting& p : Lookup(token)) {
        if (p.level <= level) specs_with_token.insert(p.spec_id);
      }
      if (first) {
        result.assign(specs_with_token.begin(), specs_with_token.end());
        first = false;
      } else {
        std::vector<int> merged;
        std::set_intersection(result.begin(), result.end(),
                              specs_with_token.begin(),
                              specs_with_token.end(),
                              std::back_inserter(merged));
        result = std::move(merged);
      }
      if (result.empty()) return result;
    }
  }
  if (first) {
    // No terms: every spec is a candidate.
    for (int s = 0; s < num_docs_; ++s) result.push_back(s);
  }
  return result;
}

int InvertedIndex::DocumentFrequency(const std::string& token) const {
  auto it = df_.find(token);
  return it == df_.end() ? 0 : it->second;
}

}  // namespace paw

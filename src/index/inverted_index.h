#ifndef PAW_INDEX_INVERTED_INDEX_H_
#define PAW_INDEX_INVERTED_INDEX_H_

/// \file inverted_index.h
/// \brief Privacy-annotated keyword index (paper Sec. 4, "we must manage
/// an index with different user views").
///
/// Each posting carries the access level at which its module becomes
/// visible (the required level of the containing workflow), so one shared
/// index serves every privilege class: lookups filter postings by the
/// caller's level instead of maintaining per-level repositories.

#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/repo/repository.h"

namespace paw {

/// \brief One keyword occurrence.
struct Posting {
  int spec_id = -1;
  ModuleId module;
  /// Level required to see this module.
  AccessLevel level = 0;
  /// Occurrences of the token in the module's name + keywords.
  int tf = 0;
};

/// \brief Token -> postings over a whole repository.
///
/// Specs are append-only and densely numbered, so the index maintains
/// itself incrementally: `ExtendTo` indexes only the specs added since
/// the last build, keeping every posting list sorted by spec id without
/// a re-sort. A from-scratch `Build` and a sequence of `ExtendTo` calls
/// over the same specs produce identical indexes (fuzz-checked in
/// tests/inverted_index_test.cc).
class InvertedIndex {
 public:
  /// \brief (Re)builds the index from scratch.
  void Build(const Repository& repo);

  /// \brief (Re)builds the index from scratch over a pinned view.
  void Build(const RepositoryView& view);

  /// \brief Indexes specs `[num_docs(), view.num_specs())` — the delta
  /// appended since the index was last built/extended. No-op when the
  /// index already covers the view's cut.
  void ExtendTo(const RepositoryView& view);

  /// \brief Postings of `token` (already lowercased by tokenization).
  const std::vector<Posting>& Lookup(const std::string& token) const;

  /// \brief Spec ids that contain every token of every term at a level
  /// visible to `level` (candidate pruning for keyword search).
  std::vector<int> CandidateSpecs(const std::vector<std::string>& terms,
                                  AccessLevel level) const;

  /// \brief Number of specs containing `token` at any level (df for IDF).
  int DocumentFrequency(const std::string& token) const;

  /// \brief Number of indexed specs.
  int num_docs() const { return num_docs_; }

  int64_t num_tokens() const {
    return static_cast<int64_t>(postings_.size());
  }
  int64_t num_postings() const { return num_postings_; }

 private:
  std::map<std::string, std::vector<Posting>> postings_;
  std::map<std::string, int> df_;
  int num_docs_ = 0;
  int64_t num_postings_ = 0;
};

}  // namespace paw

#endif  // PAW_INDEX_INVERTED_INDEX_H_

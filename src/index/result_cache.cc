#include "src/index/result_cache.h"

#include <algorithm>

namespace paw {

ResultCache::ResultCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::optional<std::string> ResultCache::Get(const std::string& group,
                                            const std::string& key,
                                            uint64_t epoch) {
  auto it = entries_.find(FullKey(group, key));
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    // Stale cut: the store mutated since this answer was computed.
    lru_.erase(it->second);
    entries_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::Put(const std::string& group, const std::string& key,
                      std::string value, uint64_t epoch) {
  std::string full = FullKey(group, key);
  auto it = entries_.find(full);
  if (it != entries_.end()) {
    it->second->value = std::move(value);
    it->second->epoch = epoch;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    entries_.erase(victim.full_key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{full, std::move(value), epoch});
  entries_[full] = lru_.begin();
}

void ResultCache::InvalidateGroup(const std::string& group) {
  std::string prefix = group + "\x1f";
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->full_key.compare(0, prefix.size(), prefix) == 0) {
      entries_.erase(it->full_key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace paw

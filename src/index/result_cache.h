#ifndef PAW_INDEX_RESULT_CACHE_H_
#define PAW_INDEX_RESULT_CACHE_H_

/// \file result_cache.h
/// \brief Per-user-group LRU answer cache (paper Sec. 4, "consider user
/// groups when utilizing cached information during query processing").
///
/// Two principals may share a cached answer only when they share a privacy
/// context, so the cache key space is partitioned by group tag (which the
/// engine derives from group *and* access level). Experiment E9 measures
/// hit rates under Zipf query mixes.

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

namespace paw {

/// \brief Hit/miss statistics.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;

  double HitRate() const {
    int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// \brief An LRU map from (group, key) to serialized answers.
///
/// Entries are stamped with the repository epoch they were computed at;
/// a `Get` whose `epoch` differs from the stored stamp is a miss and
/// drops the stale entry, so the cache self-invalidates as the store
/// mutates instead of serving answers from a dead cut. Callers that do
/// not version their data may leave the epoch at its default (0 == 0
/// always matches).
class ResultCache {
 public:
  /// Creates a cache holding at most `capacity` entries (>= 1).
  explicit ResultCache(size_t capacity);

  /// \brief Returns the cached answer, refreshing recency; nullopt on
  /// miss. An entry stored at a different epoch is erased and counted
  /// as a miss.
  std::optional<std::string> Get(const std::string& group,
                                 const std::string& key,
                                 uint64_t epoch = 0);

  /// \brief Inserts/overwrites an answer stamped with `epoch`, evicting
  /// the LRU entry if full.
  void Put(const std::string& group, const std::string& key,
           std::string value, uint64_t epoch = 0);

  /// \brief Drops every entry of one group (e.g. after a policy change).
  void InvalidateGroup(const std::string& group);

  size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string full_key;
    std::string value;
    uint64_t epoch = 0;
  };

  static std::string FullKey(const std::string& group,
                             const std::string& key) {
    return group + "\x1f" + key;
  }

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  CacheStats stats_;
};

}  // namespace paw

#endif  // PAW_INDEX_RESULT_CACHE_H_

#include "src/index/reachability_index.h"

namespace paw {

ReachabilityIndex::ReachabilityIndex(const Digraph& g) : graph_(&g) {
  Rebuild();
}

void ReachabilityIndex::Rebuild() {
  closure_ = std::make_unique<TransitiveClosure>(
      TransitiveClosure::Compute(*graph_));
}

void ReachabilityIndex::ApplyEdgeDelta(NodeIndex u, NodeIndex v) {
  closure_->GrowTo(graph_->num_nodes());
  closure_->AddEdgeUpdate(u, v);
}

bool ReachabilityIndex::Reaches(NodeIndex u, NodeIndex v) const {
  return closure_->Reaches(u, v);
}

int64_t ReachabilityIndex::ApproxBytes() const {
  int64_t n = graph_->num_nodes();
  return n * ((n + 63) / 64) * 8;
}

}  // namespace paw

#ifndef PAW_INDEX_SHARDED_LRU_H_
#define PAW_INDEX_SHARDED_LRU_H_

/// \file sharded_lru.h
/// \brief A generic sharded LRU cache with a byte budget.
///
/// The process-wide caches (privacy views, and anything that follows)
/// need a container that many query threads can hit concurrently without
/// serializing on one lock, and that bounds *memory*, not entry count —
/// cached views vary from a few hundred bytes to megabytes. Keys hash to
/// one of `num_shards` independent shards, each a classic
/// list-plus-hash-map LRU guarded by its own mutex; the byte budget is
/// split evenly across shards and enforced by evicting from each shard's
/// cold end on insert.
///
/// Values must be cheap to copy (the intended use stores
/// `std::shared_ptr<const T>`). `Get` returns a copy, so a returned value
/// stays alive even if the entry is evicted a nanosecond later.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace paw {

template <typename Value>
class ShardedLruCache {
 public:
  struct Stats {
    size_t entries = 0;
    size_t bytes = 0;
    uint64_t evictions = 0;
  };

  explicit ShardedLruCache(size_t byte_budget, size_t num_shards = 16)
      : shards_(num_shards == 0 ? 1 : num_shards) {
    set_byte_budget(byte_budget);
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// \brief Looks up `key`, promoting it to most-recently-used.
  std::optional<Value> Get(const std::string& key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->value;
  }

  /// \brief Inserts or replaces `key`; evicts cold entries while the
  /// shard is over its share of the byte budget. An entry larger than a
  /// whole shard budget is still admitted (alone) so oversized views are
  /// cached rather than thrashing on recompute.
  void Put(const std::string& key, Value value, size_t bytes) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.map.erase(it);
    }
    s.lru.push_front(Node{key, std::move(value), bytes});
    s.map[key] = s.lru.begin();
    s.bytes += bytes;
    const size_t budget = per_shard_budget_.load(std::memory_order_relaxed);
    while (s.bytes > budget && s.lru.size() > 1) {
      const Node& cold = s.lru.back();
      s.bytes -= cold.bytes;
      s.map.erase(cold.key);
      s.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// \brief Drops `key` if present.
  bool Erase(const std::string& key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.map.erase(it);
    return true;
  }

  /// \brief Drops every entry for which `pred(key, value)` holds;
  /// returns how many were dropped. O(entries) — meant for rare,
  /// targeted invalidation, not the hot path.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t dropped = 0;
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (auto it = s.lru.begin(); it != s.lru.end();) {
        if (pred(it->key, it->value)) {
          s.bytes -= it->bytes;
          s.map.erase(it->key);
          it = s.lru.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
    return dropped;
  }

  void Clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.lru.clear();
      s.map.clear();
      s.bytes = 0;
    }
  }

  /// \brief Adjusts the byte budget; enforced lazily on the next inserts.
  void set_byte_budget(size_t byte_budget) {
    byte_budget_.store(byte_budget, std::memory_order_relaxed);
    per_shard_budget_.store(
        byte_budget / shards_.size() + (byte_budget % shards_.size() != 0),
        std::memory_order_relaxed);
  }

  size_t byte_budget() const {
    return byte_budget_.load(std::memory_order_relaxed);
  }

  Stats stats() const {
    Stats st;
    st.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      st.entries += s.map.size();
      st.bytes += s.bytes;
    }
    return st;
  }

 private:
  struct Node {
    std::string key;
    Value value;
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Node> lru;  // front = hottest
    std::unordered_map<std::string, typename std::list<Node>::iterator> map;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::atomic<size_t> byte_budget_{0};
  std::atomic<size_t> per_shard_budget_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace paw

#endif  // PAW_INDEX_SHARDED_LRU_H_

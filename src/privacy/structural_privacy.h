#ifndef PAW_PRIVACY_STRUCTURAL_PRIVACY_H_
#define PAW_PRIVACY_STRUCTURAL_PRIVACY_H_

/// \file structural_privacy.h
/// \brief Hiding reachability facts in provenance graphs (paper Sec. 3).
///
/// The goal is to keep private that module M contributes to the output of
/// module M'. The paper contrasts two mechanisms on the W3 example:
///
///  1. *Edge deletion*: remove edges until no path M -> M' remains. Never
///     fabricates provenance but may destroy additional true paths (e.g.
///     deleting M13->M11 also hides M12 ~> M11).
///  2. *Clustering*: merge nodes into composite modules so the pair's
///     reachability becomes invisible. Never destroys truth at the
///     boundary but may fabricate paths (M10 ~> M14 through the
///     {M11, M13} cluster) — an *unsound view* (see soundness.h).
///
/// Both mechanisms report the same metric set so experiment E2 can compare
/// them at equal privacy.

#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/algorithms.h"
#include "src/graph/digraph.h"

namespace paw {

/// \brief An ordered pair whose reachability must be hidden.
struct SensitivePair {
  NodeIndex src;
  NodeIndex dst;
};

/// \brief Quality of a published (privacy-transformed) graph.
struct StructuralPrivacyMetrics {
  /// Reachable (u, v) pairs in the original graph.
  int64_t original_pairs = 0;
  /// True pairs still inferable from the published artifact.
  int64_t preserved_pairs = 0;
  /// False pairs inferable from the published artifact (clustering only;
  /// deletion cannot fabricate).
  int64_t extraneous_pairs = 0;
  /// Sensitive pairs successfully hidden.
  int hidden_sensitive = 0;
  /// Sensitive pairs requested.
  int requested_sensitive = 0;
  /// Mechanism size: edges deleted, or non-singleton clusters formed.
  int mechanism_size = 0;

  /// \brief Fraction of true reachability information preserved.
  double Utility() const {
    return original_pairs == 0
               ? 1.0
               : static_cast<double>(preserved_pairs) /
                     static_cast<double>(original_pairs);
  }
  /// \brief True iff the published artifact fabricates nothing.
  bool Sound() const { return extraneous_pairs == 0; }
};

/// \brief Result of the edge-deletion mechanism.
struct EdgeDeletionResult {
  /// The published graph (same node set, fewer edges).
  Digraph published;
  /// Edges removed, in removal order.
  std::vector<std::pair<NodeIndex, NodeIndex>> deleted;
  StructuralPrivacyMetrics metrics;
};

/// \brief Hides every pair by deleting a minimum edge cut per pair
/// (processed in order, each cut computed on the current graph).
Result<EdgeDeletionResult> HideByEdgeDeletion(
    const Digraph& g, const std::vector<SensitivePair>& pairs);

/// \brief Result of the clustering mechanism.
struct ClusteringResult {
  /// Cluster id per node.
  std::vector<NodeIndex> group_of;
  NodeIndex num_groups = 0;
  /// The published quotient graph.
  QuotientGraph quotient;
  StructuralPrivacyMetrics metrics;
};

/// \brief Hides every pair by placing src and dst in one cluster
/// (overlapping pairs merge transitively, union-find style).
Result<ClusteringResult> HideByClustering(
    const Digraph& g, const std::vector<SensitivePair>& pairs);

/// \brief Metrics for an arbitrary clustering of `g` (exposed for the
/// soundness-repair experiments).
Result<StructuralPrivacyMetrics> EvaluateClustering(
    const Digraph& g, const std::vector<NodeIndex>& group_of,
    NodeIndex num_groups, const std::vector<SensitivePair>& pairs);

}  // namespace paw

#endif  // PAW_PRIVACY_STRUCTURAL_PRIVACY_H_

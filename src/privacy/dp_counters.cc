#include "src/privacy/dp_counters.h"

#include <cmath>

#include "src/common/metrics.h"
#include "src/graph/algorithms.h"

namespace paw {
namespace {

Counter& DpDrawsTotal() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("paw_privacy_dp_draws_total");
  return c;
}

}  // namespace

double LaplaceNoise::Sample() {
  DpDrawsTotal().Add();
  // Inverse CDF: u uniform in (-1/2, 1/2); x = -b * sgn(u) * ln(1-2|u|).
  double u = rng_.UniformDouble() - 0.5;
  double sign = u < 0 ? -1.0 : 1.0;
  double mag = std::min(0.999999999999, 2.0 * std::abs(u));
  return -b_ * sign * std::log1p(-mag);
}

uint64_t ProvenanceCounter::QueryId(const std::string& principal,
                                    const std::string& counter) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(principal);
  h ^= 0;
  h *= 1099511628211ULL;
  mix(counter);
  return h;
}

Result<int64_t> ProvenanceCounter::CountModuleActivations(
    const std::string& code) const {
  // Pin a cut: appends may land concurrently; iterate the pinned slice.
  const RepositoryView view = repo_->View();
  int64_t count = 0;
  for (int e = 0; e < view.num_executions(); ++e) {
    const Execution& exec = view.execution(ExecutionId(e)).exec;
    for (const ExecNode& n : exec.nodes()) {
      if ((n.kind == ExecNodeKind::kAtomic ||
           n.kind == ExecNodeKind::kBegin) &&
          exec.spec().module(n.module).code == code) {
        ++count;
        break;  // per-execution membership, not activation multiplicity
      }
    }
  }
  return count;
}

Result<int64_t> ProvenanceCounter::CountLabelProductions(
    const std::string& label) const {
  const RepositoryView view = repo_->View();
  int64_t count = 0;
  for (int e = 0; e < view.num_executions(); ++e) {
    const Execution& exec = view.execution(ExecutionId(e)).exec;
    for (const DataItem& d : exec.items()) {
      if (d.label == label) {
        ++count;
        break;
      }
    }
  }
  return count;
}

Result<int64_t> ProvenanceCounter::CountContributions(
    const std::string& src_code, const std::string& dst_code) const {
  const RepositoryView view = repo_->View();
  int64_t count = 0;
  for (int e = 0; e < view.num_executions(); ++e) {
    const Execution& exec = view.execution(ExecutionId(e)).exec;
    // Locate activations of each module in this execution.
    ExecNodeId src, dst;
    for (const ExecNode& n : exec.nodes()) {
      if (n.kind != ExecNodeKind::kAtomic &&
          n.kind != ExecNodeKind::kBegin) {
        continue;
      }
      const std::string& code = exec.spec().module(n.module).code;
      if (code == src_code && !src.valid()) src = n.id;
      if (code == dst_code && !dst.valid()) dst = n.id;
    }
    if (src.valid() && dst.valid() &&
        PathExists(exec.graph(), src.value(), dst.value())) {
      ++count;
    }
  }
  return count;
}

Result<double> ProvenanceCounter::Noisy(int64_t exact_count, double epsilon,
                                        uint64_t query_id) const {
  if (epsilon <= 0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  // Counting queries have sensitivity 1 w.r.t. one execution.
  LaplaceNoise noise(1.0 / epsilon, seed_ ^ (query_id * 0x9e3779b9ULL));
  return static_cast<double>(exact_count) + noise.Sample();
}

}  // namespace paw

#ifndef PAW_PRIVACY_VIEW_CACHE_H_
#define PAW_PRIVACY_VIEW_CACHE_H_

/// \file view_cache.h
/// \brief Memoized per-principal privacy views (ROADMAP item 5a).
///
/// The paper's serving model answers every provenance query through the
/// finest view the principal may see — and both view papers (PAPERS.md)
/// stress that the *same* view must be served consistently across
/// repeated executions and many users. That makes the computed views
/// perfect memo material: a zoom-out result, access view, or mask set
/// depends only on (the immutable spec or execution entry, the
/// principal's cache group). This cache stores them process-wide so
/// every engine, worker thread, and connection shares one budgeted pool.
///
/// Key structure — `(kind, namespace, spec-or-exec id, cache-group)`:
///  - *kind*: access/structural `SpecView`, execution `ExecZoomOutResult`,
///    or data-privacy `MaskingReport`.
///  - *namespace*: one per `QueryEngine` instance (never reused), so ids
///    from different shards or engine generations cannot alias.
///  - *cache-group*: `group + "@" + level`, the same partition tag the
///    result cache uses — principals share a view only when both group
///    and level match, mirroring the paper's group-sharing rule.
///
/// Epoch discipline (PR 7's floor rule): every entry is stamped with the
/// engine cut's mutation epoch at computation time, and a lookup passes
/// the reader's current cut epoch. A hit requires
/// `entry.epoch <= cut_epoch`: spec and execution entries are immutable
/// and address-stable once inserted, so anything computed at or below the
/// reader's cut is still exact — which is precisely why *execution*
/// ingest keeps spec-level views hot. A spec-affecting append invalidates
/// through `InvalidateSpec` (wired into the ADD_SPEC handler), and an
/// entry stamped *above* the reader's cut is treated as stale and
/// dropped.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/ids.h"
#include "src/index/sharded_lru.h"
#include "src/privacy/data_privacy.h"
#include "src/query/zoom_out.h"
#include "src/workflow/view.h"

namespace paw {

/// \brief Process-wide, epoch-invalidated cache of computed privacy
/// views. Thread-safe; all methods may be called concurrently.
class PrivacyViewCache {
 public:
  /// Default byte budget (64 MiB) — a few thousand typical views.
  static constexpr size_t kDefaultByteBudget = 64u << 20;

  explicit PrivacyViewCache(size_t byte_budget = kDefaultByteBudget);

  /// \brief The shared process-wide instance served by pawd.
  static PrivacyViewCache& Global();

  /// \brief A fresh namespace id; monotonic, never reused. Each
  /// `QueryEngine` takes one at construction and retires it (via
  /// `InvalidateNamespace`) at destruction.
  static uint64_t NewNamespace();

  // Spec-keyed access/structural views -------------------------------

  std::shared_ptr<const SpecView> GetSpecView(uint64_t ns, int spec_id,
                                              const std::string& cache_group,
                                              uint64_t cut_epoch);
  void PutSpecView(uint64_t ns, int spec_id, const std::string& cache_group,
                   uint64_t cut_epoch, std::shared_ptr<const SpecView> view);

  // Execution-keyed zoom-out results ---------------------------------

  std::shared_ptr<const ExecZoomOutResult> GetExecZoom(
      uint64_t ns, ExecutionId exec_id, const std::string& cache_group,
      uint64_t cut_epoch);
  void PutExecZoom(uint64_t ns, ExecutionId exec_id, int spec_id,
                   const std::string& cache_group, uint64_t cut_epoch,
                   std::shared_ptr<const ExecZoomOutResult> zoom);

  // Execution-keyed data-privacy mask sets ---------------------------

  std::shared_ptr<const MaskingReport> GetMasking(
      uint64_t ns, ExecutionId exec_id, const std::string& cache_group,
      uint64_t cut_epoch);
  void PutMasking(uint64_t ns, ExecutionId exec_id, int spec_id,
                  const std::string& cache_group, uint64_t cut_epoch,
                  std::shared_ptr<const MaskingReport> mask);

  // Invalidation -----------------------------------------------------

  /// \brief Drops every view derived from `spec_id` in namespace `ns`:
  /// its access/structural views and the zoom-outs/masks of its
  /// executions. Views of other specs are untouched. Returns the number
  /// of entries dropped.
  size_t InvalidateSpec(uint64_t ns, int spec_id);

  /// \brief Retires a whole namespace (engine teardown).
  size_t InvalidateNamespace(uint64_t ns);

  /// \brief Drops everything (tests).
  void Clear();

  /// \brief Adjusts the byte budget at runtime.
  void set_byte_budget(size_t byte_budget);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t bytes = 0;
    size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Slot {
    std::shared_ptr<const void> value;
    uint64_t ns = 0;
    int spec_id = -1;
    uint64_t epoch = 0;
  };

  std::shared_ptr<const void> Lookup(const std::string& key,
                                     uint64_t cut_epoch);
  void Insert(const std::string& key, std::shared_ptr<const void> value,
              uint64_t ns, int spec_id, uint64_t epoch, size_t bytes);
  void PublishGaugeAndEvictions();

  ShardedLruCache<Slot> cache_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> published_evictions_{0};
};

/// \brief Approximate heap footprint of cached view kinds, used to charge
/// the byte budget. Estimates, not exact allocator accounting.
size_t ApproxViewBytes(const SpecView& view);
size_t ApproxViewBytes(const ExecZoomOutResult& zoom);
size_t ApproxViewBytes(const MaskingReport& mask);

}  // namespace paw

#endif  // PAW_PRIVACY_VIEW_CACHE_H_

#include "src/privacy/sound_clustering.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>

#include "src/common/logging.h"
#include "src/graph/algorithms.h"
#include "src/privacy/soundness.h"

namespace paw {

std::vector<NodeIndex> PathInterval(const Digraph& g, NodeIndex u,
                                    NodeIndex v) {
  // w lies on a u ~> v path iff u ~> w and w ~> v (including endpoints).
  std::vector<bool> from_u(static_cast<size_t>(g.num_nodes()), false);
  for (NodeIndex w : ReachableFrom(g, u)) from_u[static_cast<size_t>(w)] =
      true;
  std::vector<NodeIndex> interval;
  for (NodeIndex w : CanReach(g, v)) {
    if (from_u[static_cast<size_t>(w)]) interval.push_back(w);
  }
  if (std::find(interval.begin(), interval.end(), u) == interval.end()) {
    interval.push_back(u);
  }
  if (std::find(interval.begin(), interval.end(), v) == interval.end()) {
    interval.push_back(v);
  }
  std::sort(interval.begin(), interval.end());
  return interval;
}

namespace {

/// Compacts group ids to [0, k) and returns k.
NodeIndex Compact(std::vector<NodeIndex>* group_of) {
  std::map<NodeIndex, NodeIndex> remap;
  NodeIndex next = 0;
  for (NodeIndex& g : *group_of) {
    auto [it, inserted] = remap.try_emplace(g, next);
    if (inserted) ++next;
    g = it->second;
  }
  return next;
}

}  // namespace

Result<SoundClusteringResult> HideBySoundClustering(
    const Digraph& g, const std::vector<SensitivePair>& pairs) {
  for (const SensitivePair& p : pairs) {
    if (!g.IsValidNode(p.src) || !g.IsValidNode(p.dst)) {
      return Status::InvalidArgument("sensitive pair out of range");
    }
    if (p.src == p.dst) {
      return Status::InvalidArgument("sensitive pair must be distinct");
    }
  }

  SoundClusteringResult result;
  // Union-find seeded by path intervals.
  std::vector<NodeIndex> parent(static_cast<size_t>(g.num_nodes()));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<NodeIndex(NodeIndex)> find = [&](NodeIndex x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  auto unite = [&](NodeIndex a, NodeIndex b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<size_t>(a)] = b;
  };
  for (const SensitivePair& p : pairs) {
    std::vector<NodeIndex> interval = PathInterval(g, p.src, p.dst);
    for (NodeIndex w : interval) unite(p.src, w);
  }

  auto materialize = [&]() {
    result.group_of.assign(static_cast<size_t>(g.num_nodes()), 0);
    for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
      result.group_of[static_cast<size_t>(u)] = find(u);
    }
    result.num_groups = Compact(&result.group_of);
  };
  materialize();

  // Grow until sound. Each iteration absorbs >= 1 node into a
  // non-singleton cluster, so at most n iterations run.
  for (int guard = 0; guard <= g.num_nodes() + 1; ++guard) {
    PAW_ASSIGN_OR_RETURN(
        SoundnessReport report,
        CheckSoundness(g, result.group_of, result.num_groups));
    if (report.sound) {
      PAW_ASSIGN_OR_RETURN(result.metrics,
                           EvaluateClustering(g, result.group_of,
                                              result.num_groups, pairs));
      return result;
    }
    // Extraneous (x, y): x and y are visible singletons whose witness
    // quotient path must pass through >= 1 multi-member cluster (an
    // all-singleton quotient path would be a real path). Absorbing x
    // into the first such cluster removes x from the visible set, so
    // this witness — and every witness starting at x — disappears.
    auto [x, y] = report.extraneous.front();
    PAW_ASSIGN_OR_RETURN(
        QuotientGraph q,
        Quotient(g, result.group_of, result.num_groups));
    NodeIndex gx = result.group_of[static_cast<size_t>(x)];
    NodeIndex gy = result.group_of[static_cast<size_t>(y)];
    // BFS for the witness path in the quotient.
    std::vector<NodeIndex> parent_of(
        static_cast<size_t>(q.graph.num_nodes()), -1);
    std::vector<NodeIndex> queue{gx};
    parent_of[static_cast<size_t>(gx)] = gx;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (NodeIndex w : q.graph.OutNeighbors(queue[head])) {
        if (parent_of[static_cast<size_t>(w)] < 0) {
          parent_of[static_cast<size_t>(w)] = queue[head];
          queue.push_back(w);
        }
      }
    }
    if (parent_of[static_cast<size_t>(gy)] < 0) {
      return Status::Internal("extraneous pair without quotient path");
    }
    std::vector<NodeIndex> path;
    for (NodeIndex cur = gy; cur != gx;
         cur = parent_of[static_cast<size_t>(cur)]) {
      path.push_back(cur);
    }
    path.push_back(gx);
    std::reverse(path.begin(), path.end());
    NodeIndex target_cluster = -1;
    for (NodeIndex grp : path) {
      if (q.members[static_cast<size_t>(grp)].size() > 1) {
        target_cluster = grp;
        break;
      }
    }
    if (target_cluster < 0) {
      return Status::Internal(
          "unsound witness path is all-singleton (impossible)");
    }
    unite(x, q.members[static_cast<size_t>(target_cluster)].front());
    ++result.growth_steps;
    materialize();
  }
  return Status::Internal("sound clustering failed to converge");
}

}  // namespace paw

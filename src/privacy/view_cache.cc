#include "src/privacy/view_cache.h"

#include <utility>

#include "src/common/metrics.h"

namespace paw {
namespace {

Counter& ViewCacheHitsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_privacy_view_cache_hits_total");
  return c;
}

Counter& ViewCacheMissesTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_privacy_view_cache_misses_total");
  return c;
}

Counter& ViewCacheEvictionsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "paw_privacy_view_cache_evictions_total");
  return c;
}

Gauge& ViewCacheBytes() {
  static Gauge& g =
      MetricsRegistry::Global().GetGauge("paw_privacy_view_cache_bytes");
  return g;
}

/// Key layout: `<kind>:<ns>:<id>:<cache_group>`. The namespace comes
/// before the id so `InvalidateNamespace` could someday prefix-scan;
/// today both invalidations walk entries via the stored Slot fields.
std::string MakeKey(char kind, uint64_t ns, int64_t id,
                    const std::string& cache_group) {
  std::string key;
  key.reserve(cache_group.size() + 24);
  key += kind;
  key += ':';
  key += std::to_string(ns);
  key += ':';
  key += std::to_string(id);
  key += ':';
  key += cache_group;
  return key;
}

size_t StringVecBytes(const std::vector<std::string>& v) {
  size_t b = v.size() * sizeof(std::string);
  for (const std::string& s : v) b += s.capacity();
  return b;
}

}  // namespace

PrivacyViewCache::PrivacyViewCache(size_t byte_budget)
    : cache_(byte_budget) {}

PrivacyViewCache& PrivacyViewCache::Global() {
  static PrivacyViewCache* cache = new PrivacyViewCache();
  return *cache;
}

uint64_t PrivacyViewCache::NewNamespace() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const void> PrivacyViewCache::Lookup(const std::string& key,
                                                     uint64_t cut_epoch) {
  std::optional<Slot> slot = cache_.Get(key);
  // Epoch floor: a hit must have been computed at or below the reader's
  // cut. Entries are derived from immutable, address-stable repository
  // entries, so at-or-below means still exact; above means the key
  // aliases a different generation — drop it.
  if (slot.has_value() && slot->epoch > cut_epoch) {
    cache_.Erase(key);
    slot.reset();
  }
  if (!slot.has_value()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ViewCacheMissesTotal().Add();
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  ViewCacheHitsTotal().Add();
  return slot->value;
}

void PrivacyViewCache::Insert(const std::string& key,
                              std::shared_ptr<const void> value, uint64_t ns,
                              int spec_id, uint64_t epoch, size_t bytes) {
  Slot slot;
  slot.value = std::move(value);
  slot.ns = ns;
  slot.spec_id = spec_id;
  slot.epoch = epoch;
  cache_.Put(key, std::move(slot), bytes);
  PublishGaugeAndEvictions();
}

void PrivacyViewCache::PublishGaugeAndEvictions() {
  const ShardedLruCache<Slot>::Stats st = cache_.stats();
  ViewCacheBytes().Set(static_cast<int64_t>(st.bytes));
  // Counters only go up: publish the delta since the last sync.
  uint64_t prev = published_evictions_.load(std::memory_order_relaxed);
  while (st.evictions > prev) {
    if (published_evictions_.compare_exchange_weak(
            prev, st.evictions, std::memory_order_relaxed)) {
      ViewCacheEvictionsTotal().Add(st.evictions - prev);
      break;
    }
  }
}

std::shared_ptr<const SpecView> PrivacyViewCache::GetSpecView(
    uint64_t ns, int spec_id, const std::string& cache_group,
    uint64_t cut_epoch) {
  return std::static_pointer_cast<const SpecView>(
      Lookup(MakeKey('s', ns, spec_id, cache_group), cut_epoch));
}

void PrivacyViewCache::PutSpecView(uint64_t ns, int spec_id,
                                   const std::string& cache_group,
                                   uint64_t cut_epoch,
                                   std::shared_ptr<const SpecView> view) {
  const size_t bytes = ApproxViewBytes(*view);
  Insert(MakeKey('s', ns, spec_id, cache_group), std::move(view), ns,
         spec_id, cut_epoch, bytes);
}

std::shared_ptr<const ExecZoomOutResult> PrivacyViewCache::GetExecZoom(
    uint64_t ns, ExecutionId exec_id, const std::string& cache_group,
    uint64_t cut_epoch) {
  return std::static_pointer_cast<const ExecZoomOutResult>(
      Lookup(MakeKey('z', ns, exec_id.value(), cache_group), cut_epoch));
}

void PrivacyViewCache::PutExecZoom(
    uint64_t ns, ExecutionId exec_id, int spec_id,
    const std::string& cache_group, uint64_t cut_epoch,
    std::shared_ptr<const ExecZoomOutResult> zoom) {
  const size_t bytes = ApproxViewBytes(*zoom);
  Insert(MakeKey('z', ns, exec_id.value(), cache_group), std::move(zoom),
         ns, spec_id, cut_epoch, bytes);
}

std::shared_ptr<const MaskingReport> PrivacyViewCache::GetMasking(
    uint64_t ns, ExecutionId exec_id, const std::string& cache_group,
    uint64_t cut_epoch) {
  return std::static_pointer_cast<const MaskingReport>(
      Lookup(MakeKey('m', ns, exec_id.value(), cache_group), cut_epoch));
}

void PrivacyViewCache::PutMasking(uint64_t ns, ExecutionId exec_id,
                                  int spec_id,
                                  const std::string& cache_group,
                                  uint64_t cut_epoch,
                                  std::shared_ptr<const MaskingReport> mask) {
  const size_t bytes = ApproxViewBytes(*mask);
  Insert(MakeKey('m', ns, exec_id.value(), cache_group), std::move(mask),
         ns, spec_id, cut_epoch, bytes);
}

size_t PrivacyViewCache::InvalidateSpec(uint64_t ns, int spec_id) {
  const size_t dropped = cache_.EraseIf([&](const std::string&,
                                            const Slot& slot) {
    return slot.ns == ns && slot.spec_id == spec_id;
  });
  PublishGaugeAndEvictions();
  return dropped;
}

size_t PrivacyViewCache::InvalidateNamespace(uint64_t ns) {
  const size_t dropped = cache_.EraseIf(
      [&](const std::string&, const Slot& slot) { return slot.ns == ns; });
  PublishGaugeAndEvictions();
  return dropped;
}

void PrivacyViewCache::Clear() {
  cache_.Clear();
  PublishGaugeAndEvictions();
}

void PrivacyViewCache::set_byte_budget(size_t byte_budget) {
  cache_.set_byte_budget(byte_budget);
}

PrivacyViewCache::Stats PrivacyViewCache::stats() const {
  Stats st;
  const ShardedLruCache<Slot>::Stats inner = cache_.stats();
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = inner.evictions;
  st.bytes = inner.bytes;
  st.entries = inner.entries;
  return st;
}

size_t ApproxViewBytes(const SpecView& view) {
  size_t b = sizeof(SpecView);
  b += view.visible_modules().size() * (sizeof(ModuleId) + 48);
  b += static_cast<size_t>(view.graph().num_nodes()) * 16;
  b += static_cast<size_t>(view.graph().num_edges()) * 64;
  for (const auto& [u, v] : view.graph().Edges()) {
    b += StringVecBytes(view.EdgeLabels(u, v));
  }
  b += view.prefix().size() * 32;
  return b;
}

size_t ApproxViewBytes(const ExecZoomOutResult& zoom) {
  size_t b = sizeof(ExecZoomOutResult);
  const ExecView& view = zoom.view;
  b += static_cast<size_t>(view.num_nodes()) * (sizeof(ExecViewNode) + 16);
  b += static_cast<size_t>(view.graph().num_edges()) * 64;
  for (const auto& [u, v] : view.graph().Edges()) {
    b += view.ItemsOn(u, v).size() * sizeof(DataItemId);
  }
  b += static_cast<size_t>(view.execution().num_nodes()) *
       sizeof(NodeIndex);
  b += zoom.final_prefix.size() * 32;
  return b;
}

size_t ApproxViewBytes(const MaskingReport& mask) {
  return sizeof(MaskingReport) + mask.visible.size() / 8 + 8;
}

}  // namespace paw

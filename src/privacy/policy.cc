#include "src/privacy/policy.h"

namespace paw {

Status ValidatePolicy(const Specification& spec, const PolicySet& policy) {
  if (policy.data.default_level < 0) {
    return Status::InvalidArgument("negative default data level");
  }
  for (const auto& [label, level] : policy.data.label_level) {
    if (level < 0) {
      return Status::InvalidArgument("negative level for label " + label);
    }
  }
  for (const ModulePrivacyRequirement& req : policy.module_reqs) {
    if (req.gamma < 2) {
      return Status::InvalidArgument("module privacy needs gamma >= 2 for " +
                                     req.module_code);
    }
    if (req.required_level < 0) {
      return Status::InvalidArgument("negative level for " + req.module_code);
    }
    PAW_ASSIGN_OR_RETURN(ModuleId m, spec.FindModule(req.module_code));
    if (spec.module(m).kind != ModuleKind::kAtomic &&
        spec.module(m).kind != ModuleKind::kComposite) {
      return Status::InvalidArgument(
          "module privacy applies to atomic/composite modules, not I/O");
    }
  }
  for (const StructuralPrivacyRequirement& req : policy.structural_reqs) {
    PAW_ASSIGN_OR_RETURN(ModuleId s, spec.FindModule(req.src_code));
    PAW_ASSIGN_OR_RETURN(ModuleId d, spec.FindModule(req.dst_code));
    if (s == d) {
      return Status::InvalidArgument("structural pair must be distinct");
    }
    if (req.required_level < 0) {
      return Status::InvalidArgument("negative level for structural pair");
    }
  }
  return Status::OK();
}

}  // namespace paw

#include "src/privacy/soundness.h"

#include <algorithm>
#include <deque>

#include "src/common/logging.h"
#include "src/graph/algorithms.h"
#include "src/graph/transitive.h"

namespace paw {
namespace {

/// Shortest path in `g` from s to t (inclusive); empty if none.
std::vector<NodeIndex> ShortestPath(const Digraph& g, NodeIndex s,
                                    NodeIndex t) {
  std::vector<NodeIndex> parent(static_cast<size_t>(g.num_nodes()), -1);
  std::deque<NodeIndex> queue{s};
  parent[static_cast<size_t>(s)] = s;
  while (!queue.empty()) {
    NodeIndex u = queue.front();
    queue.pop_front();
    if (u == t) break;
    for (NodeIndex v : g.OutNeighbors(u)) {
      if (parent[static_cast<size_t>(v)] < 0) {
        parent[static_cast<size_t>(v)] = u;
        queue.push_back(v);
      }
    }
  }
  if (parent[static_cast<size_t>(t)] < 0) return {};
  std::vector<NodeIndex> path;
  for (NodeIndex v = t; v != s; v = parent[static_cast<size_t>(v)]) {
    path.push_back(v);
  }
  path.push_back(s);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

Result<SoundnessReport> CheckSoundness(
    const Digraph& g, const std::vector<NodeIndex>& group_of,
    NodeIndex num_groups) {
  PAW_ASSIGN_OR_RETURN(QuotientGraph q, Quotient(g, group_of, num_groups));
  TransitiveClosure real = TransitiveClosure::Compute(g);
  TransitiveClosure quot = TransitiveClosure::Compute(q.graph);
  SoundnessReport report;
  // Unsoundness is judged between *visible* nodes: members of singleton
  // clusters. Nodes inside a multi-member cluster are anonymous in the
  // view, so no path can be (mis)attributed to them (ref [9]).
  auto visible = [&](NodeIndex u) {
    return q.members[static_cast<size_t>(
                         group_of[static_cast<size_t>(u)])].size() == 1;
  };
  for (NodeIndex a = 0; a < g.num_nodes(); ++a) {
    if (!visible(a)) continue;
    for (NodeIndex b = 0; b < g.num_nodes(); ++b) {
      if (a == b || !visible(b)) continue;
      NodeIndex ga = group_of[static_cast<size_t>(a)];
      NodeIndex gb = group_of[static_cast<size_t>(b)];
      if (quot.Reaches(ga, gb) && !real.Reaches(a, b)) {
        report.extraneous.emplace_back(a, b);
      }
    }
  }
  report.sound = report.extraneous.empty();
  return report;
}

Result<RepairResult> RepairUnsoundClustering(
    const Digraph& g, const std::vector<NodeIndex>& group_of,
    NodeIndex num_groups) {
  RepairResult result;
  result.group_of = group_of;
  result.num_groups = num_groups;

  PAW_ASSIGN_OR_RETURN(std::vector<NodeIndex> topo, TopologicalOrder(g));
  std::vector<int> rank(static_cast<size_t>(g.num_nodes()));
  for (size_t i = 0; i < topo.size(); ++i) {
    rank[static_cast<size_t>(topo[i])] = static_cast<int>(i);
  }

  for (;;) {
    PAW_ASSIGN_OR_RETURN(
        SoundnessReport report,
        CheckSoundness(g, result.group_of, result.num_groups));
    if (report.sound) {
      result.report = std::move(report);
      return result;
    }
    PAW_ASSIGN_OR_RETURN(
        QuotientGraph q, Quotient(g, result.group_of, result.num_groups));

    // Witness path of the first extraneous pair.
    auto [a, b] = report.extraneous.front();
    NodeIndex ga = result.group_of[static_cast<size_t>(a)];
    NodeIndex gb = result.group_of[static_cast<size_t>(b)];
    std::vector<NodeIndex> path = ShortestPath(q.graph, ga, gb);
    if (path.empty()) {
      return Status::Internal("extraneous pair without quotient path");
    }
    // Largest multi-member cluster on the path. At least one exists:
    // an all-singleton path would be a real path in g.
    NodeIndex victim = -1;
    size_t victim_size = 1;
    for (NodeIndex grp : path) {
      size_t sz = q.members[static_cast<size_t>(grp)].size();
      if (sz > victim_size) {
        victim_size = sz;
        victim = grp;
      }
    }
    if (victim < 0) {
      return Status::Internal(
          "unsound view with all-singleton witness path");
    }
    // Split the victim into two topologically contiguous halves.
    std::vector<NodeIndex> members = q.members[static_cast<size_t>(victim)];
    std::sort(members.begin(), members.end(), [&](NodeIndex x, NodeIndex y) {
      return rank[static_cast<size_t>(x)] < rank[static_cast<size_t>(y)];
    });
    NodeIndex new_group = result.num_groups++;
    for (size_t i = members.size() / 2; i < members.size(); ++i) {
      result.group_of[static_cast<size_t>(members[i])] = new_group;
    }
    ++result.splits;
  }
}

}  // namespace paw

#include "src/privacy/data_privacy.h"

namespace paw {

MaskingReport ComputeMasking(const Execution& exec, const DataPolicy& policy,
                             AccessLevel level) {
  MaskingReport report;
  report.visible.resize(static_cast<size_t>(exec.num_items()));
  for (const DataItem& d : exec.items()) {
    bool ok = policy.LevelOf(d.label) <= level;
    report.visible[static_cast<size_t>(d.id.value())] = ok;
    if (ok) {
      ++report.num_visible;
    } else {
      ++report.num_masked;
    }
  }
  return report;
}

std::string RenderValue(const Execution& exec, DataItemId d,
                        const DataPolicy& policy, AccessLevel level) {
  const DataItem& item = exec.item(d);
  return policy.LevelOf(item.label) <= level ? item.value : kMaskedValue;
}

double HidingCost(const std::vector<std::string>& hidden_labels,
                  const std::map<std::string, double>& label_weights,
                  double default_weight) {
  double cost = 0;
  for (const std::string& label : hidden_labels) {
    auto it = label_weights.find(label);
    cost += it == label_weights.end() ? default_weight : it->second;
  }
  return cost;
}

}  // namespace paw

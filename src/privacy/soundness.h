#ifndef PAW_PRIVACY_SOUNDNESS_H_
#define PAW_PRIVACY_SOUNDNESS_H_

/// \file soundness.h
/// \brief Unsound-view detection and repair (paper Sec. 3/4, ref [9]).
///
/// A clustering-based view is *unsound* when the quotient graph lets an
/// observer infer a path between visible nodes that does not exist in the
/// underlying graph ("we may now infer incorrect provenance information,
/// e.g., that there is a path from M10 to M14"). This module detects the
/// extraneous pairs exactly (closure comparison) and repairs unsound
/// clusterings by greedily splitting offending clusters along the
/// topological order, trading privacy back for correctness.

#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/digraph.h"

namespace paw {

/// \brief Outcome of a soundness check.
struct SoundnessReport {
  bool sound = true;
  /// Extraneous node pairs (a, b): inferable from the view, false in `g`.
  std::vector<std::pair<NodeIndex, NodeIndex>> extraneous;
};

/// \brief Checks whether the clustering `group_of` of `g` is sound.
Result<SoundnessReport> CheckSoundness(const Digraph& g,
                                       const std::vector<NodeIndex>& group_of,
                                       NodeIndex num_groups);

/// \brief Result of repairing an unsound clustering.
struct RepairResult {
  std::vector<NodeIndex> group_of;
  NodeIndex num_groups = 0;
  /// Number of cluster splits performed.
  int splits = 0;
  /// Post-repair report (sound unless the input graph was pathological).
  SoundnessReport report;
};

/// \brief Splits clusters until the view is sound.
///
/// Greedy strategy: while an extraneous pair exists, find a shortest
/// quotient path witnessing it, take the largest multi-member cluster on
/// that path, and split it into two topologically contiguous halves.
/// Terminates because every split increases the cluster count; at the
/// all-singleton clustering the quotient equals `g` and is sound.
Result<RepairResult> RepairUnsoundClustering(
    const Digraph& g, const std::vector<NodeIndex>& group_of,
    NodeIndex num_groups);

}  // namespace paw

#endif  // PAW_PRIVACY_SOUNDNESS_H_

#ifndef PAW_PRIVACY_WORKFLOW_PRIVACY_H_
#define PAW_PRIVACY_WORKFLOW_PRIVACY_H_

/// \file workflow_privacy.h
/// \brief Workflow-level module privacy: hiding shared intermediate data
/// (paper Sec. 3, "the approach that we take in [4] is to hide a carefully
/// chosen subset of intermediate data").
///
/// In a workflow, a data label is simultaneously an output attribute of
/// its producer and an input attribute of its consumers, so hiding it
/// serves several modules at the cost of one. Given per-module relations
/// (attributes named by data labels) and Gamma requirements, the problem
/// is to pick a minimum-weight label set whose hiding makes every private
/// module Gamma-private. We provide greedy, exhaustive, and a
/// solve-each-module-separately baseline that ignores sharing.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/privacy/module_privacy.h"
#include "src/privacy/policy.h"

namespace paw {

/// \brief One private module inside the workflow-level problem.
struct PrivateModuleSpec {
  /// Module code, for reporting.
  std::string code;
  /// The module's relation; attribute *names are data labels*.
  Relation relation;
  /// Required Gamma for this module.
  int64_t gamma = 2;
};

/// \brief The workflow-level hiding problem.
struct WorkflowPrivacyProblem {
  std::vector<PrivateModuleSpec> modules;
  /// Weight (utility cost) of hiding each label; labels absent from the
  /// map weigh 1.
  std::map<std::string, double> label_weights;

  /// \brief All labels mentioned by any module relation, sorted.
  std::vector<std::string> AllLabels() const;

  /// \brief Weight of one label.
  double WeightOf(const std::string& label) const;
};

/// \brief A workflow-level hiding decision.
struct WorkflowHidingSolution {
  std::set<std::string> hidden_labels;
  double cost = 0;
  bool feasible = false;
  /// Achieved Gamma per module, parallel to `problem.modules`.
  std::vector<int64_t> achieved;
};

/// \brief True iff hiding `hidden` satisfies every module's Gamma.
Result<bool> SatisfiesAll(const WorkflowPrivacyProblem& problem,
                          const std::set<std::string>& hidden);

/// \brief Greedy joint optimization: repeatedly hide the label with the
/// best total-privacy-gain / weight ratio.
Result<WorkflowHidingSolution> GreedyWorkflowHiding(
    const WorkflowPrivacyProblem& problem);

/// \brief Exhaustive optimum over label subsets (<= `max_labels` labels).
Result<WorkflowHidingSolution> ExhaustiveWorkflowHiding(
    const WorkflowPrivacyProblem& problem, int max_labels = 20);

/// \brief Baseline ignoring sharing: solve each module with
/// `GreedySafeSubset` in isolation and take the union of hidden labels.
Result<WorkflowHidingSolution> PerModuleUnionHiding(
    const WorkflowPrivacyProblem& problem);

/// \brief Enforcement bridge to the query layer: raises the data-policy
/// level of every hidden label to at least `enforcement_level`, so the
/// engine's masking hides exactly the data the module-privacy optimizer
/// chose (paper Sec. 3: module privacy is *implemented* by hiding
/// intermediate data).
DataPolicy ApplyHidingToPolicy(const DataPolicy& base,
                               const WorkflowHidingSolution& solution,
                               AccessLevel enforcement_level);

}  // namespace paw

#endif  // PAW_PRIVACY_WORKFLOW_PRIVACY_H_

#ifndef PAW_PRIVACY_SOUND_CLUSTERING_H_
#define PAW_PRIVACY_SOUND_CLUSTERING_H_

/// \file sound_clustering.h
/// \brief Sound-by-construction structural privacy (paper Sec. 3's open
/// problem: "guaranteeing an adequate level of privacy while preserving
/// soundness and minimizing unnecessary loss of information").
///
/// Naive clustering ({u, v} merged) hides the pair but fabricates paths
/// (soundness.h detects them); repairing by splitting can un-hide the
/// pair. This module squares the circle from the other side: it *grows*
/// clusters until the view is sound, keeping the sensitive endpoints
/// together throughout:
///
///   1. Seed each pair's cluster with the path interval
///      I(u,v) = {u, v} + every node on a u ~> v path.
///   2. While the clustering is unsound, take an extraneous witness pair
///      (x, y), and absorb x or y (whichever touches an offending
///      cluster) into that cluster.
///   3. Terminate: clusters only grow, and a clustering whose
///      non-singleton clusters have no visible bypass is sound; in the
///      worst case everything collapses into one cluster, which is
///      trivially sound.
///
/// The result is always sound and always hides every requested pair; the
/// price is cluster size (hidden true pairs), which experiment E2b
/// charts against edge deletion and naive clustering.

#include <vector>

#include "src/common/status.h"
#include "src/privacy/structural_privacy.h"

namespace paw {

/// \brief Result of the grow-until-sound mechanism.
struct SoundClusteringResult {
  std::vector<NodeIndex> group_of;
  NodeIndex num_groups = 0;
  /// Nodes absorbed beyond the initial path intervals.
  int growth_steps = 0;
  StructuralPrivacyMetrics metrics;
};

/// \brief Nodes on some u ~> v path, inclusive (the interval I(u, v)).
std::vector<NodeIndex> PathInterval(const Digraph& g, NodeIndex u,
                                    NodeIndex v);

/// \brief Hides every pair behind a sound clustering (see file comment).
Result<SoundClusteringResult> HideBySoundClustering(
    const Digraph& g, const std::vector<SensitivePair>& pairs);

}  // namespace paw

#endif  // PAW_PRIVACY_SOUND_CLUSTERING_H_

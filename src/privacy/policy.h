#ifndef PAW_PRIVACY_POLICY_H_
#define PAW_PRIVACY_POLICY_H_

/// \file policy.h
/// \brief Declarative privacy policies over the three component kinds the
/// paper distinguishes: data, modules, and workflow structure (Sec. 3).
///
/// Policies are attached to a specification in a repository and enforced
/// by the query layer: data items above a principal's level are masked,
/// module-privacy requirements drive intermediate-data hiding, and
/// structural requirements drive edge-deletion / clustering transforms.

#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Data privacy: per-label sensitivity levels.
struct DataPolicy {
  /// Minimum level required to see values with a given label.
  std::map<std::string, AccessLevel> label_level;
  /// Level for labels not listed (0 = public).
  AccessLevel default_level = 0;

  /// \brief Level required for `label`.
  AccessLevel LevelOf(const std::string& label) const {
    auto it = label_level.find(label);
    return it == label_level.end() ? default_level : it->second;
  }
};

/// \brief Module privacy: the module's input-output behaviour must stay
/// Gamma-ambiguous to observers below `required_level` (paper Sec. 3 and
/// ref [4]).
struct ModulePrivacyRequirement {
  /// Code of the private module ("M1").
  std::string module_code;
  /// Minimum number of output candidates every input must retain.
  int64_t gamma = 2;
  /// Observers at or above this level see everything.
  AccessLevel required_level = 1;
};

/// \brief Structural privacy: the fact that `src` contributes to `dst`
/// must not be inferable by observers below `required_level`.
struct StructuralPrivacyRequirement {
  std::string src_code;
  std::string dst_code;
  AccessLevel required_level = 1;
};

/// \brief All privacy requirements attached to one specification.
struct PolicySet {
  DataPolicy data;
  std::vector<ModulePrivacyRequirement> module_reqs;
  std::vector<StructuralPrivacyRequirement> structural_reqs;
};

/// \brief Validates that a policy references only modules that exist and
/// uses sane parameters (gamma >= 2, levels >= 0).
Status ValidatePolicy(const Specification& spec, const PolicySet& policy);

}  // namespace paw

#endif  // PAW_PRIVACY_POLICY_H_

#include "src/privacy/structural_privacy.h"

#include <functional>
#include <numeric>

#include "src/common/logging.h"
#include "src/graph/transitive.h"

namespace paw {
namespace {

Status CheckPairs(const Digraph& g, const std::vector<SensitivePair>& pairs) {
  for (const SensitivePair& p : pairs) {
    if (!g.IsValidNode(p.src) || !g.IsValidNode(p.dst)) {
      return Status::InvalidArgument("sensitive pair out of range");
    }
    if (p.src == p.dst) {
      return Status::InvalidArgument("sensitive pair must be distinct");
    }
  }
  return Status::OK();
}

}  // namespace

Result<EdgeDeletionResult> HideByEdgeDeletion(
    const Digraph& g, const std::vector<SensitivePair>& pairs) {
  PAW_RETURN_NOT_OK(CheckPairs(g, pairs));
  EdgeDeletionResult result;
  result.published = g;
  for (const SensitivePair& p : pairs) {
    if (!PathExists(result.published, p.src, p.dst)) continue;
    PAW_ASSIGN_OR_RETURN(auto cut,
                         MinEdgeCut(result.published, p.src, p.dst));
    for (const auto& [u, v] : cut) {
      PAW_RETURN_NOT_OK(result.published.RemoveEdge(u, v));
      result.deleted.emplace_back(u, v);
    }
  }

  TransitiveClosure before = TransitiveClosure::Compute(g);
  TransitiveClosure after = TransitiveClosure::Compute(result.published);
  result.metrics.original_pairs = before.CountPairs();
  result.metrics.preserved_pairs = after.CountPairs();
  result.metrics.extraneous_pairs = 0;  // deletion cannot fabricate paths
  result.metrics.requested_sensitive = static_cast<int>(pairs.size());
  for (const SensitivePair& p : pairs) {
    if (!after.Reaches(p.src, p.dst)) ++result.metrics.hidden_sensitive;
  }
  result.metrics.mechanism_size = static_cast<int>(result.deleted.size());
  return result;
}

Result<StructuralPrivacyMetrics> EvaluateClustering(
    const Digraph& g, const std::vector<NodeIndex>& group_of,
    NodeIndex num_groups, const std::vector<SensitivePair>& pairs) {
  PAW_RETURN_NOT_OK(CheckPairs(g, pairs));
  PAW_ASSIGN_OR_RETURN(QuotientGraph q, Quotient(g, group_of, num_groups));
  TransitiveClosure real = TransitiveClosure::Compute(g);
  TransitiveClosure quot = TransitiveClosure::Compute(q.graph);

  StructuralPrivacyMetrics metrics;
  metrics.original_pairs = real.CountPairs();
  metrics.requested_sensitive = static_cast<int>(pairs.size());

  // Inferable pairs concern *visible* nodes only: members of singleton
  // clusters. Nodes swallowed by a multi-member cluster are anonymous to
  // the observer (ref [9] defines unsoundness over view nodes), so pairs
  // touching them are neither preserved nor extraneous.
  const NodeIndex n = g.num_nodes();
  std::vector<size_t> cluster_size(static_cast<size_t>(num_groups), 0);
  for (NodeIndex u = 0; u < n; ++u) {
    ++cluster_size[static_cast<size_t>(group_of[static_cast<size_t>(u)])];
  }
  auto visible = [&](NodeIndex u) {
    return cluster_size[static_cast<size_t>(
               group_of[static_cast<size_t>(u)])] == 1;
  };
  for (NodeIndex a = 0; a < n; ++a) {
    if (!visible(a)) continue;
    for (NodeIndex b = 0; b < n; ++b) {
      if (a == b || !visible(b)) continue;
      NodeIndex ga = group_of[static_cast<size_t>(a)];
      NodeIndex gb = group_of[static_cast<size_t>(b)];
      bool truly = real.Reaches(a, b);
      bool inferred = quot.Reaches(ga, gb);
      if (inferred && truly) ++metrics.preserved_pairs;
      if (inferred && !truly) ++metrics.extraneous_pairs;
    }
  }
  for (const SensitivePair& p : pairs) {
    NodeIndex gs = group_of[static_cast<size_t>(p.src)];
    NodeIndex gd = group_of[static_cast<size_t>(p.dst)];
    bool hidden = (gs == gd) || !quot.Reaches(gs, gd);
    if (hidden) ++metrics.hidden_sensitive;
  }
  for (NodeIndex grp = 0; grp < num_groups; ++grp) {
    if (q.members[static_cast<size_t>(grp)].size() > 1) {
      ++metrics.mechanism_size;
    }
  }
  return metrics;
}

Result<ClusteringResult> HideByClustering(
    const Digraph& g, const std::vector<SensitivePair>& pairs) {
  PAW_RETURN_NOT_OK(CheckPairs(g, pairs));
  // Union-find over nodes; each pair merges its endpoints.
  std::vector<NodeIndex> parent(static_cast<size_t>(g.num_nodes()));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<NodeIndex(NodeIndex)> find = [&](NodeIndex x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const SensitivePair& p : pairs) {
    NodeIndex a = find(p.src);
    NodeIndex b = find(p.dst);
    if (a != b) parent[static_cast<size_t>(a)] = b;
  }

  ClusteringResult result;
  result.group_of.assign(static_cast<size_t>(g.num_nodes()), -1);
  NodeIndex next = 0;
  std::vector<NodeIndex> rep_group(static_cast<size_t>(g.num_nodes()), -1);
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    NodeIndex r = find(u);
    if (rep_group[static_cast<size_t>(r)] < 0) {
      rep_group[static_cast<size_t>(r)] = next++;
    }
    result.group_of[static_cast<size_t>(u)] =
        rep_group[static_cast<size_t>(r)];
  }
  result.num_groups = next;
  PAW_ASSIGN_OR_RETURN(result.quotient,
                       Quotient(g, result.group_of, result.num_groups));
  PAW_ASSIGN_OR_RETURN(
      result.metrics,
      EvaluateClustering(g, result.group_of, result.num_groups, pairs));
  return result;
}

}  // namespace paw

#ifndef PAW_PRIVACY_POLICY_TEXT_H_
#define PAW_PRIVACY_POLICY_TEXT_H_

/// \file policy_text.h
/// \brief Text format for privacy policies.
///
/// The persistent store writes a specification's `PolicySet` next to the
/// spec itself, in the same line-oriented field syntax as the other
/// serializers:
///
/// \code
///   policy default_level=0
///   label "intermediate disorders" level=2
///   module M1 gamma=4 level=1
///   structural M3 M5 level=2
/// \endcode
///
/// `SerializePolicy` of an all-default `PolicySet` is the empty string;
/// parsing validates against the owning specification. Round-trip is
/// exact (asserted by tests).

#include <string>

#include "src/common/status.h"
#include "src/privacy/policy.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Renders `policy` in the text format above.
std::string SerializePolicy(const PolicySet& policy);

/// \brief Parses the text format and validates against `spec`.
Result<PolicySet> ParsePolicy(const std::string& text,
                              const Specification& spec);

}  // namespace paw

#endif  // PAW_PRIVACY_POLICY_TEXT_H_

#include "src/privacy/access_control.h"

namespace paw {

Result<PrincipalId> AccessControl::AddPrincipal(std::string name,
                                                AccessLevel level,
                                                std::string group) {
  if (level < 0) return Status::InvalidArgument("negative access level");
  for (const Principal& p : principals_) {
    if (p.name == name) {
      return Status::AlreadyExists("principal '" + name + "' exists");
    }
  }
  PrincipalId id(static_cast<int32_t>(principals_.size()));
  principals_.push_back(
      Principal{id, std::move(name), level, std::move(group)});
  return id;
}

Result<Principal> AccessControl::Get(PrincipalId id) const {
  if (id.value() < 0 || id.value() >= size()) {
    return Status::NotFound("unknown principal");
  }
  return principals_[static_cast<size_t>(id.value())];
}

Result<Principal> AccessControl::Find(std::string_view name) const {
  for (const Principal& p : principals_) {
    if (p.name == name) return p;
  }
  return Status::NotFound("no principal named '" + std::string(name) + "'");
}

Result<Prefix> AccessControl::AccessViewFor(
    PrincipalId id, const Specification& spec,
    const ExpansionHierarchy& hierarchy) const {
  PAW_ASSIGN_OR_RETURN(Principal p, Get(id));
  return hierarchy.AccessPrefix(spec, p.level);
}

}  // namespace paw

#ifndef PAW_PRIVACY_DP_COUNTERS_H_
#define PAW_PRIVACY_DP_COUNTERS_H_

/// \file dp_counters.h
/// \brief Differentially private counting over provenance repositories
/// (paper Sec. 5).
///
/// The paper closes by asking whether differential privacy applies to
/// provenance, and warns: "adding random noise to provenance information
/// may render it useless" — provenance exists to make experiments
/// reproducible. This module makes that tension measurable: it answers
/// aggregate *counting* queries (where DP is meaningful) with the Laplace
/// mechanism, and experiment E10 charts the error/epsilon trade-off
/// against exact counting — quantifying exactly how much reproducibility
/// a DP interface costs at each privacy budget.
///
/// Counting queries supported (sensitivity 1 w.r.t. adding/removing one
/// execution): executions of a module, executions producing a label,
/// executions where module A fed module B.

#include <string>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/repo/repository.h"

namespace paw {

/// \brief A seeded Laplace sampler (inverse-CDF over `Rng`).
class LaplaceNoise {
 public:
  /// Creates a sampler with scale `b` (>0).
  LaplaceNoise(double b, uint64_t seed) : b_(b), rng_(seed) {}

  /// \brief One Laplace(0, b) draw.
  double Sample();

 private:
  double b_;
  Rng rng_;
};

/// \brief Counting queries over a repository's executions, exact or
/// epsilon-DP via the Laplace mechanism.
///
/// Thread-safe against concurrent single-writer appends: every count
/// pins an MVCC `RepositoryView` and iterates that cut, so a counter may
/// run while ingest bumps the mutation epoch (same discipline as the
/// query engine). Two concurrent counts may observe different cuts;
/// each cut is internally consistent.
class ProvenanceCounter {
 public:
  /// Binds to `repo`; `seed` fixes the noise stream for replayability of
  /// the *experiment* (a production deployment would use fresh draws).
  ProvenanceCounter(const Repository& repo, uint64_t seed)
      : repo_(&repo), seed_(seed) {}

  /// \brief Stable query id for a (principal, counter) pair — the same
  /// pair always maps to the same id, so re-asking a noisy count
  /// returns the identical draw (no privacy-budget leak through
  /// repeated sampling). FNV-1a over `principal + '\0' + counter`.
  static uint64_t QueryId(const std::string& principal,
                          const std::string& counter);

  /// \brief Exact number of executions that activated module `code`.
  Result<int64_t> CountModuleActivations(const std::string& code) const;

  /// \brief Exact number of executions producing an item labelled
  /// `label`.
  Result<int64_t> CountLabelProductions(const std::string& label) const;

  /// \brief Exact number of executions where `src_code`'s activation
  /// reaches `dst_code`'s (per-execution structural fact).
  Result<int64_t> CountContributions(const std::string& src_code,
                                     const std::string& dst_code) const;

  /// \brief epsilon-DP version of any exact count (sensitivity 1):
  /// count + Laplace(1/epsilon).
  Result<double> Noisy(int64_t exact_count, double epsilon,
                       uint64_t query_id) const;

 private:
  const Repository* repo_;
  uint64_t seed_;
};

}  // namespace paw

#endif  // PAW_PRIVACY_DP_COUNTERS_H_

#include "src/privacy/policy_text.h"

#include <cstdlib>
#include <sstream>

#include "src/common/strings.h"

namespace paw {

std::string SerializePolicy(const PolicySet& policy) {
  std::ostringstream os;
  if (policy.data.default_level != 0) {
    os << "policy default_level=" << policy.data.default_level << "\n";
  }
  for (const auto& [label, level] : policy.data.label_level) {
    os << "label " << QuoteField(label) << " level=" << level << "\n";
  }
  for (const ModulePrivacyRequirement& r : policy.module_reqs) {
    os << "module " << r.module_code << " gamma=" << r.gamma
       << " level=" << r.required_level << "\n";
  }
  for (const StructuralPrivacyRequirement& r : policy.structural_reqs) {
    os << "structural " << r.src_code << " " << r.dst_code
       << " level=" << r.required_level << "\n";
  }
  return os.str();
}

Result<PolicySet> ParsePolicy(const std::string& text,
                              const Specification& spec) {
  PolicySet policy;
  for (const std::string& raw : Split(text, '\n')) {
    std::string line(Trim(raw));
    if (line.empty() || line[0] == '#') continue;
    PAW_ASSIGN_OR_RETURN(std::vector<std::string> f, SplitFields(line));
    if (f.empty()) continue;
    const std::string& tag = f[0];
    std::string v;
    if (tag == "policy") {
      if (f.size() < 2 || !KeyValueField(f[1], "default_level", &v)) {
        return Status::InvalidArgument("policy: need default_level=");
      }
      policy.data.default_level = std::atoi(v.c_str());
    } else if (tag == "label") {
      if (f.size() < 3 || !KeyValueField(f[2], "level", &v)) {
        return Status::InvalidArgument("label: need name and level=");
      }
      policy.data.label_level[f[1]] = std::atoi(v.c_str());
    } else if (tag == "module") {
      if (f.size() < 4) {
        return Status::InvalidArgument("module: need code, gamma=, level=");
      }
      ModulePrivacyRequirement r;
      r.module_code = f[1];
      if (!KeyValueField(f[2], "gamma", &v)) {
        return Status::InvalidArgument("module: missing gamma=");
      }
      r.gamma = std::atoll(v.c_str());
      if (!KeyValueField(f[3], "level", &v)) {
        return Status::InvalidArgument("module: missing level=");
      }
      r.required_level = std::atoi(v.c_str());
      policy.module_reqs.push_back(std::move(r));
    } else if (tag == "structural") {
      if (f.size() < 4 || !KeyValueField(f[3], "level", &v)) {
        return Status::InvalidArgument(
            "structural: need src, dst, level=");
      }
      StructuralPrivacyRequirement r;
      r.src_code = f[1];
      r.dst_code = f[2];
      r.required_level = std::atoi(v.c_str());
      policy.structural_reqs.push_back(std::move(r));
    } else {
      return Status::InvalidArgument("unknown policy directive: " + tag);
    }
  }
  PAW_RETURN_NOT_OK(ValidatePolicy(spec, policy));
  return policy;
}

}  // namespace paw

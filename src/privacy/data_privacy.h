#ifndef PAW_PRIVACY_DATA_PRIVACY_H_
#define PAW_PRIVACY_DATA_PRIVACY_H_

/// \file data_privacy.h
/// \brief Value masking for sensitive intermediate data (paper Sec. 3,
/// "data privacy" — the "fairly standard requirement").
///
/// Items whose label requires a higher level than the observer's are shown
/// with their identity (d7) but a masked value, so provenance structure
/// stays queryable while contents stay hidden. Weighted variants support
/// the module-privacy optimizer, where hiding different data has different
/// utility cost.

#include <string>
#include <vector>

#include "src/privacy/policy.h"
#include "src/provenance/execution.h"

namespace paw {

/// \brief The placeholder shown instead of hidden values.
inline constexpr const char* kMaskedValue = "<masked>";

/// \brief Per-item visibility of an execution for an observer level.
struct MaskingReport {
  /// visible[i] == true iff item i's value may be shown.
  std::vector<bool> visible;
  int num_masked = 0;
  int num_visible = 0;
};

/// \brief Computes which item values an observer at `level` may see.
MaskingReport ComputeMasking(const Execution& exec, const DataPolicy& policy,
                             AccessLevel level);

/// \brief The value of `d` as rendered for an observer at `level`.
std::string RenderValue(const Execution& exec, DataItemId d,
                        const DataPolicy& policy, AccessLevel level);

/// \brief Utility lost by hiding `hidden_labels` when each label has the
/// given weight (missing labels weigh `default_weight`).
double HidingCost(const std::vector<std::string>& hidden_labels,
                  const std::map<std::string, double>& label_weights,
                  double default_weight = 1.0);

}  // namespace paw

#endif  // PAW_PRIVACY_DATA_PRIVACY_H_

#ifndef PAW_PRIVACY_MODULE_PRIVACY_H_
#define PAW_PRIVACY_MODULE_PRIVACY_H_

/// \file module_privacy.h
/// \brief Standalone module privacy via attribute hiding (paper Sec. 3 and
/// its technical companion, Davidson et al., "Preserving module privacy in
/// workflow provenance", ref [4]).
///
/// A module is modelled as a functional relation over named input/output
/// attributes with finite domains. Publishing provenance for repeated
/// executions reveals the relation restricted to the *visible* attributes;
/// the module is Gamma-private w.r.t. a hidden attribute set H when, for
/// every input x, at least Gamma distinct full output tuples remain
/// consistent with the visible data. Hiding attributes costs utility
/// (attribute weights); finding a minimum-cost safe subset is the
/// optimization problem the paper poses. We provide the exhaustive
/// optimum, a greedy heuristic, and an outputs-first baseline.

#include <functional>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace paw {

/// \brief One attribute of a module relation.
struct RelationAttribute {
  std::string name;
  /// Domain {0, ..., domain-1}; must be >= 2 to carry information.
  int domain = 2;
  /// Utility lost when this attribute is hidden.
  double weight = 1.0;
};

/// \brief A functional input/output relation (one row per input tuple).
class Relation {
 public:
  /// \brief Creates an empty relation with the given attribute lists.
  static Result<Relation> Create(std::vector<RelationAttribute> inputs,
                                 std::vector<RelationAttribute> outputs);

  /// \brief Tabulates `fn` over the full input-domain product.
  ///
  /// `fn` receives one value per input attribute and must return one value
  /// per output attribute, each within its domain. Fails when the input
  /// space exceeds `max_rows`.
  static Result<Relation> FromFunction(
      std::vector<RelationAttribute> inputs,
      std::vector<RelationAttribute> outputs,
      const std::function<std::vector<int>(const std::vector<int>&)>& fn,
      int64_t max_rows = 1 << 20);

  /// \brief A uniformly random total function with the given shape; the
  /// workload used by experiment E1.
  static Relation Random(Rng* rng, int num_inputs, int num_outputs,
                         int domain);

  /// \brief Appends a row; values must be in-domain and the input tuple
  /// must be new (the relation is functional).
  Status AddRow(std::vector<int> input_values,
                std::vector<int> output_values);

  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }
  int num_attributes() const { return num_inputs() + num_outputs(); }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  /// \brief Attribute `i` in [0, num_attributes): inputs then outputs.
  const RelationAttribute& attribute(int i) const;

  /// \brief True iff attribute `i` is an input.
  bool IsInput(int i) const { return i < num_inputs(); }

  /// \brief Row accessor: `num_attributes()` values, inputs then outputs.
  const std::vector<int>& row(int64_t r) const {
    return rows_[static_cast<size_t>(r)];
  }

  /// \brief min over inputs x of |OUT(x)| under hidden attribute set
  /// `hidden` (size num_attributes). This is the Gamma the hiding
  /// achieves. Saturates at kGammaCap.
  Result<int64_t> MinPossibleOutputs(const std::vector<bool>& hidden) const;

  /// \brief True iff hiding `hidden` achieves Gamma-privacy.
  Result<bool> IsGammaPrivate(const std::vector<bool>& hidden,
                              int64_t gamma) const;

  /// \brief Total weight of the hidden attributes.
  double CostOf(const std::vector<bool>& hidden) const;

  /// \brief Largest achievable Gamma (hide everything): the product of
  /// output domains, saturated.
  int64_t MaxAchievableGamma() const;

  static constexpr int64_t kGammaCap = int64_t{1} << 60;

 private:
  std::vector<RelationAttribute> inputs_;
  std::vector<RelationAttribute> outputs_;
  std::vector<std::vector<int>> rows_;
};

/// \brief A hiding decision and its quality.
struct HidingSolution {
  /// Per-attribute hidden flags (inputs then outputs).
  std::vector<bool> hidden;
  /// Total weight of hidden attributes.
  double cost = 0;
  /// The Gamma actually achieved.
  int64_t achieved_gamma = 1;
  /// False when no subset reaches the requested Gamma.
  bool feasible = false;
};

/// \brief Exhaustive minimum-cost safe subset. Exponential in attribute
/// count; fails beyond `max_attrs`.
Result<HidingSolution> OptimalSafeSubset(const Relation& rel, int64_t gamma,
                                         int max_attrs = 22);

/// \brief Greedy heuristic: repeatedly hides the attribute with the best
/// privacy-gain / weight ratio until Gamma-private.
Result<HidingSolution> GreedySafeSubset(const Relation& rel, int64_t gamma);

/// \brief Baseline from [4]'s discussion: hide output attributes only, in
/// increasing weight order.
Result<HidingSolution> OutputOnlySafeSubset(const Relation& rel,
                                            int64_t gamma);

/// \brief Exact branch-and-bound solver: same optimum as
/// `OptimalSafeSubset`, but prunes (a) branches whose cost already
/// exceeds the incumbent (seeded by the greedy solution) and (b)
/// branches that cannot reach Gamma even when hiding every remaining
/// attribute (privacy is monotone in hiding). Scales to larger
/// attribute counts than plain enumeration (ablation in E1b).
Result<HidingSolution> BranchAndBoundSafeSubset(const Relation& rel,
                                                int64_t gamma,
                                                int max_attrs = 30);

}  // namespace paw

#endif  // PAW_PRIVACY_MODULE_PRIVACY_H_

#include "src/privacy/module_privacy.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "src/common/logging.h"

namespace paw {
namespace {

int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > Relation::kGammaCap / b) return Relation::kGammaCap;
  return a * b;
}

}  // namespace

Result<Relation> Relation::Create(std::vector<RelationAttribute> inputs,
                                  std::vector<RelationAttribute> outputs) {
  if (outputs.empty()) {
    return Status::InvalidArgument("relation needs >= 1 output attribute");
  }
  std::set<std::string> names;
  for (const auto& a : inputs) {
    if (a.domain < 2) {
      return Status::InvalidArgument("attribute domain must be >= 2: " +
                                     a.name);
    }
    if (!names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute " + a.name);
    }
  }
  for (const auto& a : outputs) {
    if (a.domain < 2) {
      return Status::InvalidArgument("attribute domain must be >= 2: " +
                                     a.name);
    }
    if (!names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute " + a.name);
    }
  }
  Relation rel;
  rel.inputs_ = std::move(inputs);
  rel.outputs_ = std::move(outputs);
  return rel;
}

Result<Relation> Relation::FromFunction(
    std::vector<RelationAttribute> inputs,
    std::vector<RelationAttribute> outputs,
    const std::function<std::vector<int>(const std::vector<int>&)>& fn,
    int64_t max_rows) {
  PAW_ASSIGN_OR_RETURN(Relation rel, Create(inputs, outputs));
  int64_t combos = 1;
  for (const auto& a : rel.inputs_) {
    combos = SatMul(combos, a.domain);
    if (combos > max_rows) {
      return Status::OutOfRange("input space exceeds max_rows");
    }
  }
  std::vector<int> x(rel.inputs_.size(), 0);
  for (int64_t i = 0; i < combos; ++i) {
    std::vector<int> y = fn(x);
    PAW_RETURN_NOT_OK(rel.AddRow(x, y));
    // Odometer increment.
    for (size_t d = 0; d < x.size(); ++d) {
      if (++x[d] < rel.inputs_[d].domain) break;
      x[d] = 0;
    }
  }
  return rel;
}

Relation Relation::Random(Rng* rng, int num_inputs, int num_outputs,
                          int domain) {
  std::vector<RelationAttribute> ins;
  std::vector<RelationAttribute> outs;
  for (int i = 0; i < num_inputs; ++i) {
    ins.push_back({"i" + std::to_string(i), domain,
                   1.0 + rng->UniformDouble() * 3.0});
  }
  for (int i = 0; i < num_outputs; ++i) {
    outs.push_back({"o" + std::to_string(i), domain,
                    1.0 + rng->UniformDouble() * 3.0});
  }
  auto result = FromFunction(
      ins, outs,
      [&](const std::vector<int>&) {
        std::vector<int> y(static_cast<size_t>(num_outputs));
        for (auto& v : y) v = static_cast<int>(rng->Uniform(domain));
        return y;
      });
  PAW_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Status Relation::AddRow(std::vector<int> input_values,
                        std::vector<int> output_values) {
  if (input_values.size() != inputs_.size() ||
      output_values.size() != outputs_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < input_values.size(); ++i) {
    if (input_values[i] < 0 || input_values[i] >= inputs_[i].domain) {
      return Status::OutOfRange("input value out of domain");
    }
  }
  for (size_t i = 0; i < output_values.size(); ++i) {
    if (output_values[i] < 0 || output_values[i] >= outputs_[i].domain) {
      return Status::OutOfRange("output value out of domain");
    }
  }
  for (const auto& row : rows_) {
    bool same = true;
    for (size_t i = 0; i < input_values.size(); ++i) {
      if (row[i] != input_values[i]) {
        same = false;
        break;
      }
    }
    if (same) return Status::AlreadyExists("duplicate input tuple");
  }
  std::vector<int> row = std::move(input_values);
  row.insert(row.end(), output_values.begin(), output_values.end());
  rows_.push_back(std::move(row));
  return Status::OK();
}

const RelationAttribute& Relation::attribute(int i) const {
  if (i < num_inputs()) return inputs_[static_cast<size_t>(i)];
  return outputs_[static_cast<size_t>(i - num_inputs())];
}

Result<int64_t> Relation::MinPossibleOutputs(
    const std::vector<bool>& hidden) const {
  if (hidden.size() != static_cast<size_t>(num_attributes())) {
    return Status::InvalidArgument("hidden flag arity mismatch");
  }
  if (rows_.empty()) {
    return Status::FailedPrecondition("relation has no rows");
  }
  // Multiplier from hidden output columns: each contributes its full
  // domain of completions.
  int64_t hidden_out_product = 1;
  for (int i = num_inputs(); i < num_attributes(); ++i) {
    if (hidden[static_cast<size_t>(i)]) {
      hidden_out_product = SatMul(hidden_out_product, attribute(i).domain);
    }
  }
  // Group rows by visible input projection; count distinct visible output
  // projections per group.
  std::map<std::vector<int>, std::set<std::vector<int>>> groups;
  for (const auto& row : rows_) {
    std::vector<int> vin;
    std::vector<int> vout;
    for (int i = 0; i < num_inputs(); ++i) {
      if (!hidden[static_cast<size_t>(i)]) {
        vin.push_back(row[static_cast<size_t>(i)]);
      }
    }
    for (int i = num_inputs(); i < num_attributes(); ++i) {
      if (!hidden[static_cast<size_t>(i)]) {
        vout.push_back(row[static_cast<size_t>(i)]);
      }
    }
    groups[std::move(vin)].insert(std::move(vout));
  }
  int64_t min_out = kGammaCap;
  for (const auto& [vin, vouts] : groups) {
    int64_t candidates =
        SatMul(static_cast<int64_t>(vouts.size()), hidden_out_product);
    min_out = std::min(min_out, candidates);
  }
  return min_out;
}

Result<bool> Relation::IsGammaPrivate(const std::vector<bool>& hidden,
                                      int64_t gamma) const {
  PAW_ASSIGN_OR_RETURN(int64_t min_out, MinPossibleOutputs(hidden));
  return min_out >= gamma;
}

double Relation::CostOf(const std::vector<bool>& hidden) const {
  double cost = 0;
  for (int i = 0; i < num_attributes(); ++i) {
    if (hidden[static_cast<size_t>(i)]) cost += attribute(i).weight;
  }
  return cost;
}

int64_t Relation::MaxAchievableGamma() const {
  int64_t p = 1;
  for (const auto& a : outputs_) p = SatMul(p, a.domain);
  return p;
}

Result<HidingSolution> OptimalSafeSubset(const Relation& rel, int64_t gamma,
                                         int max_attrs) {
  const int n = rel.num_attributes();
  if (n > max_attrs) {
    return Status::FailedPrecondition(
        "too many attributes for exhaustive search");
  }
  HidingSolution best;
  best.feasible = false;
  for (uint32_t mask = 0; mask < (uint32_t{1} << n); ++mask) {
    std::vector<bool> hidden(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) hidden[size_t(i)] = (mask >> i) & 1;
    double cost = rel.CostOf(hidden);
    if (best.feasible && cost >= best.cost) continue;
    PAW_ASSIGN_OR_RETURN(int64_t got, rel.MinPossibleOutputs(hidden));
    if (got >= gamma) {
      best.hidden = hidden;
      best.cost = cost;
      best.achieved_gamma = got;
      best.feasible = true;
    }
  }
  if (!best.feasible) {
    best.hidden.assign(static_cast<size_t>(n), true);
    best.cost = rel.CostOf(best.hidden);
    PAW_ASSIGN_OR_RETURN(best.achieved_gamma,
                         rel.MinPossibleOutputs(best.hidden));
  }
  return best;
}

Result<HidingSolution> GreedySafeSubset(const Relation& rel, int64_t gamma) {
  const int n = rel.num_attributes();
  HidingSolution sol;
  sol.hidden.assign(static_cast<size_t>(n), false);
  PAW_ASSIGN_OR_RETURN(int64_t current, rel.MinPossibleOutputs(sol.hidden));
  while (current < gamma) {
    int best_attr = -1;
    double best_ratio = -1;
    int64_t best_gain_gamma = current;
    for (int i = 0; i < n; ++i) {
      if (sol.hidden[size_t(i)]) continue;
      sol.hidden[size_t(i)] = true;
      PAW_ASSIGN_OR_RETURN(int64_t got, rel.MinPossibleOutputs(sol.hidden));
      sol.hidden[size_t(i)] = false;
      double gain = std::log2(static_cast<double>(got)) -
                    std::log2(static_cast<double>(current));
      double ratio = gain / rel.attribute(i).weight;
      if (got > current &&
          (ratio > best_ratio ||
           (ratio == best_ratio && best_attr >= 0 &&
            rel.attribute(i).weight < rel.attribute(best_attr).weight))) {
        best_ratio = ratio;
        best_attr = i;
        best_gain_gamma = got;
      }
    }
    if (best_attr < 0) {
      // No single attribute improves the minimum; hide the cheapest
      // remaining output (never decreases privacy, guarantees progress
      // towards the hide-everything bound).
      double cheapest = -1;
      for (int i = rel.num_inputs(); i < n; ++i) {
        if (!sol.hidden[size_t(i)] &&
            (best_attr < 0 || rel.attribute(i).weight < cheapest)) {
          best_attr = i;
          cheapest = rel.attribute(i).weight;
        }
      }
      if (best_attr < 0) break;  // everything hidden; infeasible
      sol.hidden[size_t(best_attr)] = true;
      PAW_ASSIGN_OR_RETURN(current, rel.MinPossibleOutputs(sol.hidden));
      continue;
    }
    sol.hidden[size_t(best_attr)] = true;
    current = best_gain_gamma;
  }
  sol.achieved_gamma = current;
  sol.feasible = current >= gamma;
  sol.cost = rel.CostOf(sol.hidden);
  return sol;
}

namespace {

/// Depth-first branch and bound over attribute indices.
class BnbSolver {
 public:
  BnbSolver(const Relation& rel, int64_t gamma) : rel_(rel), gamma_(gamma) {
    const int n = rel.num_attributes();
    hidden_.assign(static_cast<size_t>(n), false);
    // Branch on expensive attributes first: excluding them early keeps
    // subtree costs low and tightens the cost bound sooner.
    order_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) order_[static_cast<size_t>(i)] = i;
    std::sort(order_.begin(), order_.end(), [&](int x, int y) {
      return rel.attribute(x).weight > rel.attribute(y).weight;
    });
  }

  Result<HidingSolution> Solve() {
    // Incumbent: greedy (always feasible when the problem is).
    PAW_ASSIGN_OR_RETURN(HidingSolution greedy,
                         GreedySafeSubset(rel_, gamma_));
    best_ = greedy;
    if (!greedy.feasible) return greedy;  // infeasible problem
    PAW_RETURN_NOT_OK(Recurse(0, 0.0));
    return best_;
  }

 private:
  Status Recurse(size_t depth, double cost) {
    if (cost >= best_.cost) return Status::OK();  // cost bound
    // Privacy bound: can the remaining attributes still reach Gamma?
    std::vector<bool> optimistic = hidden_;
    for (size_t d = depth; d < order_.size(); ++d) {
      optimistic[static_cast<size_t>(order_[d])] = true;
    }
    PAW_ASSIGN_OR_RETURN(int64_t ceiling,
                         rel_.MinPossibleOutputs(optimistic));
    if (ceiling < gamma_) return Status::OK();  // dead branch

    PAW_ASSIGN_OR_RETURN(int64_t achieved,
                         rel_.MinPossibleOutputs(hidden_));
    if (achieved >= gamma_) {
      best_.hidden = hidden_;
      best_.cost = cost;
      best_.achieved_gamma = achieved;
      best_.feasible = true;
      return Status::OK();  // any superset only costs more
    }
    if (depth == order_.size()) return Status::OK();

    int attr = order_[depth];
    // Branch 1: hide attr.
    hidden_[static_cast<size_t>(attr)] = true;
    PAW_RETURN_NOT_OK(
        Recurse(depth + 1, cost + rel_.attribute(attr).weight));
    // Branch 2: keep attr visible.
    hidden_[static_cast<size_t>(attr)] = false;
    return Recurse(depth + 1, cost);
  }

  const Relation& rel_;
  int64_t gamma_;
  std::vector<int> order_;
  std::vector<bool> hidden_;
  HidingSolution best_;
};

}  // namespace

Result<HidingSolution> BranchAndBoundSafeSubset(const Relation& rel,
                                                int64_t gamma,
                                                int max_attrs) {
  if (rel.num_attributes() > max_attrs) {
    return Status::FailedPrecondition(
        "too many attributes for branch and bound");
  }
  BnbSolver solver(rel, gamma);
  return solver.Solve();
}

Result<HidingSolution> OutputOnlySafeSubset(const Relation& rel,
                                            int64_t gamma) {
  const int n = rel.num_attributes();
  HidingSolution sol;
  sol.hidden.assign(static_cast<size_t>(n), false);
  // Output attribute indices by increasing weight.
  std::vector<int> outs;
  for (int i = rel.num_inputs(); i < n; ++i) outs.push_back(i);
  std::sort(outs.begin(), outs.end(), [&](int a, int b) {
    return rel.attribute(a).weight < rel.attribute(b).weight;
  });
  PAW_ASSIGN_OR_RETURN(int64_t current, rel.MinPossibleOutputs(sol.hidden));
  for (int i : outs) {
    if (current >= gamma) break;
    sol.hidden[size_t(i)] = true;
    PAW_ASSIGN_OR_RETURN(current, rel.MinPossibleOutputs(sol.hidden));
  }
  sol.achieved_gamma = current;
  sol.feasible = current >= gamma;
  sol.cost = rel.CostOf(sol.hidden);
  return sol;
}

}  // namespace paw

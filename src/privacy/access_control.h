#ifndef PAW_PRIVACY_ACCESS_CONTROL_H_
#define PAW_PRIVACY_ACCESS_CONTROL_H_

/// \file access_control.h
/// \brief Principals and access views (paper Sec. 2).
///
/// "We can define a user's access privilege as the finest grained view
/// that s/he can access, called an access view." Levels are ordered; a
/// principal at level L may expand exactly the workflows whose
/// `required_level <= L`, which yields a unique maximal prefix — the
/// principal's access view.

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief A registered user of the repository.
struct Principal {
  PrincipalId id;
  std::string name;
  AccessLevel level = 0;
  /// Cache/sharing group (e.g. "oncology-lab"); empty = no group.
  std::string group;
};

/// \brief In-memory principal registry.
class AccessControl {
 public:
  /// \brief Registers a principal; names must be unique.
  Result<PrincipalId> AddPrincipal(std::string name, AccessLevel level,
                                   std::string group = "");

  /// \brief Principal accessor.
  Result<Principal> Get(PrincipalId id) const;

  /// \brief Lookup by name.
  Result<Principal> Find(std::string_view name) const;

  /// \brief Number of registered principals.
  int size() const { return static_cast<int>(principals_.size()); }

  /// \brief The access view (maximal level-compatible prefix) of a
  /// principal for a given specification.
  Result<Prefix> AccessViewFor(PrincipalId id, const Specification& spec,
                               const ExpansionHierarchy& hierarchy) const;

 private:
  std::vector<Principal> principals_;
};

}  // namespace paw

#endif  // PAW_PRIVACY_ACCESS_CONTROL_H_

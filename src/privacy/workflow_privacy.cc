#include "src/privacy/workflow_privacy.h"

#include <algorithm>
#include <cmath>

namespace paw {
namespace {

/// Hidden flags for one module's relation under a hidden label set.
std::vector<bool> FlagsFor(const Relation& rel,
                           const std::set<std::string>& hidden) {
  std::vector<bool> flags(static_cast<size_t>(rel.num_attributes()));
  for (int i = 0; i < rel.num_attributes(); ++i) {
    flags[static_cast<size_t>(i)] = hidden.count(rel.attribute(i).name) > 0;
  }
  return flags;
}

Result<std::vector<int64_t>> AchievedPerModule(
    const WorkflowPrivacyProblem& problem,
    const std::set<std::string>& hidden) {
  std::vector<int64_t> achieved;
  achieved.reserve(problem.modules.size());
  for (const PrivateModuleSpec& m : problem.modules) {
    PAW_ASSIGN_OR_RETURN(
        int64_t got, m.relation.MinPossibleOutputs(FlagsFor(m.relation,
                                                            hidden)));
    achieved.push_back(got);
  }
  return achieved;
}

double TotalShortfall(const WorkflowPrivacyProblem& problem,
                      const std::vector<int64_t>& achieved) {
  // Sum over modules of the remaining log2 gap to Gamma; 0 means solved.
  double total = 0;
  for (size_t i = 0; i < problem.modules.size(); ++i) {
    double need = std::log2(static_cast<double>(problem.modules[i].gamma));
    double got = std::log2(static_cast<double>(achieved[i]));
    total += std::max(0.0, need - got);
  }
  return total;
}

WorkflowHidingSolution Finish(const WorkflowPrivacyProblem& problem,
                              std::set<std::string> hidden,
                              std::vector<int64_t> achieved) {
  WorkflowHidingSolution sol;
  sol.hidden_labels = std::move(hidden);
  sol.achieved = std::move(achieved);
  sol.feasible = true;
  for (size_t i = 0; i < problem.modules.size(); ++i) {
    if (sol.achieved[i] < problem.modules[i].gamma) sol.feasible = false;
  }
  sol.cost = 0;
  for (const std::string& l : sol.hidden_labels) {
    sol.cost += problem.WeightOf(l);
  }
  return sol;
}

}  // namespace

std::vector<std::string> WorkflowPrivacyProblem::AllLabels() const {
  std::set<std::string> labels;
  for (const PrivateModuleSpec& m : modules) {
    for (int i = 0; i < m.relation.num_attributes(); ++i) {
      labels.insert(m.relation.attribute(i).name);
    }
  }
  return {labels.begin(), labels.end()};
}

double WorkflowPrivacyProblem::WeightOf(const std::string& label) const {
  auto it = label_weights.find(label);
  return it == label_weights.end() ? 1.0 : it->second;
}

Result<bool> SatisfiesAll(const WorkflowPrivacyProblem& problem,
                          const std::set<std::string>& hidden) {
  PAW_ASSIGN_OR_RETURN(std::vector<int64_t> achieved,
                       AchievedPerModule(problem, hidden));
  for (size_t i = 0; i < problem.modules.size(); ++i) {
    if (achieved[i] < problem.modules[i].gamma) return false;
  }
  return true;
}

Result<WorkflowHidingSolution> GreedyWorkflowHiding(
    const WorkflowPrivacyProblem& problem) {
  std::vector<std::string> labels = problem.AllLabels();
  std::set<std::string> hidden;
  PAW_ASSIGN_OR_RETURN(std::vector<int64_t> achieved,
                       AchievedPerModule(problem, hidden));
  double shortfall = TotalShortfall(problem, achieved);
  while (shortfall > 0) {
    std::string best_label;
    double best_ratio = -1;
    std::vector<int64_t> best_achieved;
    for (const std::string& l : labels) {
      if (hidden.count(l)) continue;
      hidden.insert(l);
      auto got = AchievedPerModule(problem, hidden);
      hidden.erase(l);
      PAW_RETURN_NOT_OK(got.status());
      double gain = shortfall - TotalShortfall(problem, got.value());
      double ratio = gain / problem.WeightOf(l);
      if (gain > 0 && ratio > best_ratio) {
        best_ratio = ratio;
        best_label = l;
        best_achieved = std::move(got).value();
      }
    }
    if (best_label.empty()) {
      // No single label helps: hide the cheapest remaining one (output
      // hiding is monotone, so this cannot hurt; if nothing remains the
      // problem is infeasible).
      for (const std::string& l : labels) {
        if (!hidden.count(l) &&
            (best_label.empty() ||
             problem.WeightOf(l) < problem.WeightOf(best_label))) {
          best_label = l;
        }
      }
      if (best_label.empty()) break;
      hidden.insert(best_label);
      PAW_ASSIGN_OR_RETURN(achieved, AchievedPerModule(problem, hidden));
      shortfall = TotalShortfall(problem, achieved);
      continue;
    }
    hidden.insert(best_label);
    achieved = std::move(best_achieved);
    shortfall = TotalShortfall(problem, achieved);
  }
  return Finish(problem, std::move(hidden), std::move(achieved));
}

Result<WorkflowHidingSolution> ExhaustiveWorkflowHiding(
    const WorkflowPrivacyProblem& problem, int max_labels) {
  std::vector<std::string> labels = problem.AllLabels();
  const int n = static_cast<int>(labels.size());
  if (n > max_labels) {
    return Status::FailedPrecondition(
        "too many labels for exhaustive search");
  }
  bool found = false;
  double best_cost = 0;
  std::set<std::string> best_hidden;
  std::vector<int64_t> best_achieved;
  for (uint32_t mask = 0; mask < (uint32_t{1} << n); ++mask) {
    std::set<std::string> hidden;
    double cost = 0;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        hidden.insert(labels[static_cast<size_t>(i)]);
        cost += problem.WeightOf(labels[static_cast<size_t>(i)]);
      }
    }
    if (found && cost >= best_cost) continue;
    PAW_ASSIGN_OR_RETURN(std::vector<int64_t> achieved,
                         AchievedPerModule(problem, hidden));
    bool ok = true;
    for (size_t i = 0; i < problem.modules.size(); ++i) {
      if (achieved[i] < problem.modules[i].gamma) {
        ok = false;
        break;
      }
    }
    if (ok) {
      found = true;
      best_cost = cost;
      best_hidden = std::move(hidden);
      best_achieved = std::move(achieved);
    }
  }
  if (!found) {
    // Report the hide-everything outcome as the (infeasible) answer.
    std::set<std::string> all(labels.begin(), labels.end());
    PAW_ASSIGN_OR_RETURN(std::vector<int64_t> achieved,
                         AchievedPerModule(problem, all));
    return Finish(problem, std::move(all), std::move(achieved));
  }
  return Finish(problem, std::move(best_hidden), std::move(best_achieved));
}

DataPolicy ApplyHidingToPolicy(const DataPolicy& base,
                               const WorkflowHidingSolution& solution,
                               AccessLevel enforcement_level) {
  DataPolicy out = base;
  for (const std::string& label : solution.hidden_labels) {
    AccessLevel current = out.LevelOf(label);
    if (current < enforcement_level) {
      out.label_level[label] = enforcement_level;
    }
  }
  return out;
}

Result<WorkflowHidingSolution> PerModuleUnionHiding(
    const WorkflowPrivacyProblem& problem) {
  std::set<std::string> hidden;
  for (const PrivateModuleSpec& m : problem.modules) {
    PAW_ASSIGN_OR_RETURN(HidingSolution sol,
                         GreedySafeSubset(m.relation, m.gamma));
    for (int i = 0; i < m.relation.num_attributes(); ++i) {
      if (sol.hidden[static_cast<size_t>(i)]) {
        hidden.insert(m.relation.attribute(i).name);
      }
    }
  }
  PAW_ASSIGN_OR_RETURN(std::vector<int64_t> achieved,
                       AchievedPerModule(problem, hidden));
  return Finish(problem, std::move(hidden), std::move(achieved));
}

}  // namespace paw

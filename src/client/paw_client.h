#ifndef PAW_CLIENT_PAW_CLIENT_H_
#define PAW_CLIENT_PAW_CLIENT_H_

/// \file paw_client.h
/// \brief `PawClient` — the C++ client for the pawd wire protocol.
///
/// A thin, blocking TCP client speaking `src/server/wire.h`.
/// `Connect` performs version negotiation (HELLO); `Auth` binds the
/// connection to a principal, after which every call runs under that
/// principal's privacy view on the server.
///
/// Two calling styles:
///
///  - **Sync**: `AddExecution`, `Search`, ... send one request and
///    block for its response — one round trip per call.
///  - **Pipelined**: `SendAddExecution` writes the request and
///    returns a ticket without reading; `Await(ticket)` collects the
///    response. Keeping a window of tickets in flight lets the server
///    batch many appends into one group commit and overlaps the
///    network round trips — the difference bench_server (E11)
///    measures. Responses may complete out of order server-side; the
///    client matches them by request id, so `Await` can be called in
///    any order.
///
/// A `PawClient` is single-threaded (no internal locking); use one
/// client per thread. Any transport or framing error poisons the
/// connection — every later call returns the sticky error
/// immediately (no further socket I/O), and any stashed out-of-order
/// responses are discarded. The stash itself is bounded
/// (`PawClientOptions::max_stashed_responses`): only responses whose
/// request id matches an outstanding ticket are stashed, and pushing
/// the stash past the bound poisons the connection instead of growing
/// without limit.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/server/wire.h"

namespace paw {

/// \brief Connection options.
struct PawClientOptions {
  /// HELLO version range offered; defaults to this build's range.
  uint8_t min_version = wire::kMinProtocolVersion;
  uint8_t max_version = wire::kProtocolVersion;
  /// Reported to the server in HELLO.
  std::string client_name = "paw-client";
  /// Cap on responses held for out-of-order pipelined completion; a
  /// response that would push the stash past this poisons the
  /// connection (it means tickets are being sent but never awaited).
  size_t max_stashed_responses = 4096;
};

/// \brief A pipelined-call ticket; redeem with the matching Await.
using PawTicket = uint64_t;

/// \brief Client for one pawd connection.
class PawClient {
 public:
  /// \brief Connects and negotiates the protocol version.
  static Result<PawClient> Connect(const std::string& host, int port,
                                   PawClientOptions options = {});

  PawClient(PawClient&&) noexcept;
  PawClient& operator=(PawClient&&) noexcept;
  PawClient(const PawClient&) = delete;
  PawClient& operator=(const PawClient&) = delete;
  ~PawClient();

  /// \brief Binds the connection to `principal` (server-registered).
  Status Auth(const std::string& principal);

  /// \brief Negotiated protocol version.
  int version() const;
  /// \brief Server name from HELLO.
  const std::string& server_name() const;

  // ---- Sync calls ----

  Result<wire::AddSpecResponse> AddSpec(const std::string& spec_text,
                                        const std::string& policy_text = "");
  Result<wire::AddExecutionResponse> AddExecution(
      const std::string& spec_name, const std::string& exec_text);
  Result<wire::GetSpecResponse> GetSpec(const std::string& spec_name);
  Result<wire::GetExecutionResponse> GetExecution(
      const std::string& spec_name, int ordinal);
  Result<wire::SearchResponse> Search(
      const std::vector<std::string>& terms);
  Result<wire::StructuralResponse> Structural(
      const wire::StructuralRequest& request);
  Result<wire::LineageResponse> Lineage(const std::string& spec_name,
                                        int ordinal, int item);
  Result<wire::StatusResponse> GetStatus();
  /// \brief Fetches the server's metrics-registry snapshot (METRICS).
  Result<wire::MetricsResponse> Metrics();
  /// \brief Fetches spans from the server's flight recorder
  /// (TRACE_DUMP).
  Result<wire::TraceDumpResponse> TraceDump(
      const wire::TraceDumpRequest& request);
  Status Compact();

  /// \brief Trace id stamped on the most recent v2 request frame (0
  /// on a v1 connection); lets callers correlate a call they just
  /// made with `TraceDump` output and `trace=` slow-log lines.
  uint64_t last_trace_id() const;

  // ---- Pipelined calls ----

  /// \brief Writes an ADD_EXECUTION request and returns its ticket
  /// without waiting for the acknowledgment.
  Result<PawTicket> SendAddExecution(const std::string& spec_name,
                                     const std::string& exec_text);

  /// \brief Collects the acknowledgment for `ticket` (reading —
  /// and stashing — any other responses that arrive first).
  Result<wire::AddExecutionResponse> AwaitAddExecution(PawTicket ticket);

  /// \brief Requests outstanding (sent, not yet awaited).
  size_t pending() const;

  /// \brief Responses stashed for out-of-order pipelined completion.
  size_t stashed() const;

  // ---- Replication transport (follower side) ----

  /// \brief Attaches this connection to the leader's replication
  /// stream (requires a prior `Auth` as an admin-level principal).
  /// After an OK response the connection *inverts*: the leader pushes
  /// `kReplicate` request frames, read with `ReadPushedFrame` and
  /// acked with `SendRawFrame`. The ordinary call methods must not be
  /// used afterwards.
  Result<wire::SubscribeResponse> Subscribe(
      const wire::SubscribeRequest& request);

  /// \brief Blocks for the next frame the server pushes (any opcode
  /// or request id). For subscribed connections only; the stash must
  /// be empty.
  Result<wire::Frame> ReadPushedFrame();

  /// \brief Writes one raw frame (used to ack pushed `kReplicate`
  /// batches with the leader's request id). `ctx` rides the v2 trace
  /// trailer — followers echo the pushed batch's context so the
  /// leader's ack handling joins the same trace.
  Status SendRawFrame(wire::Opcode opcode, uint64_t request_id,
                      std::string payload, TraceContext ctx = {});

  /// \brief Shuts the socket down (both directions) without closing
  /// the fd: a thread blocked in `ReadPushedFrame` sees end-of-stream
  /// and returns. Safe to call from another thread.
  void Shutdown();

  /// \brief Closes the socket; later calls fail.
  void Close();

 private:
  struct Rep;
  explicit PawClient(std::unique_ptr<Rep> rep);
  std::unique_ptr<Rep> rep_;
};

}  // namespace paw

#endif  // PAW_CLIENT_PAW_CLIENT_H_

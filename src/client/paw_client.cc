#include "src/client/paw_client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_set>

namespace paw {
namespace {

Status ErrnoStatus(const std::string& op) {
  return Status::Internal(op + ": " + std::strerror(errno));
}

}  // namespace

struct PawClient::Rep {
  int fd = -1;
  uint8_t version = wire::kProtocolVersion;
  std::string server_name;
  uint64_t next_request_id = 1;
  /// Tickets of pipelined requests sent but not yet awaited. Only
  /// responses matching one of these ids are worth stashing; anything
  /// else the server sends is dropped (it can never be awaited).
  std::unordered_set<uint64_t> outstanding;
  /// Responses read while waiting for a different request id; bounded
  /// by `max_stashed` — overflow poisons the connection.
  std::unordered_map<uint64_t, wire::Frame> stashed;
  size_t max_stashed = 4096;
  /// Trace id stamped on the most recent v2 request frame.
  uint64_t last_trace_id = 0;
  /// Unconsumed bytes of the read stream.
  std::string in;
  /// Sticky transport/framing error.
  Status error;

  ~Rep() {
    if (fd >= 0) ::close(fd);
  }

  /// Sets the sticky error and discards state no later call can use:
  /// stashed responses can never be redeemed once the connection is
  /// poisoned, and clearing `outstanding` makes every later Await
  /// fail fast on the sticky error instead of reading the socket.
  Status Poison(Status status) {
    error = std::move(status);
    stashed.clear();
    outstanding.clear();
    return error;
  }

  Status WriteAll(std::string_view data) {
    PAW_RETURN_NOT_OK(error);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Poison(ErrnoStatus("write"));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status SendFrame(wire::Opcode opcode, uint64_t request_id,
                   std::string payload, TraceContext ctx = {}) {
    wire::Frame frame;
    frame.version = version;
    frame.opcode = opcode;
    frame.request_id = request_id;
    frame.payload = std::move(payload);
    if (version >= 2 && opcode != wire::Opcode::kHello) {
      // Every v2 request carries a trace context: the caller's (an
      // explicit one, or the thread's current trace when this call is
      // nested inside one), else a fresh id so the server can stitch
      // all of this request's spans together.
      if (!ctx.valid()) ctx = CurrentTraceContext();
      if (!ctx.valid()) {
        ctx.trace_id = TraceRecorder::Global().NewTraceId();
      }
      frame.trace = ctx;
      last_trace_id = ctx.trace_id;
    }
    std::string bytes;
    AppendFrame(frame, &bytes);
    return WriteAll(bytes);
  }

  /// Reads frames until the one with `request_id` arrives; other
  /// responses (pipelining completing out of order) are stashed.
  Result<wire::Frame> ReadResponse(uint64_t request_id) {
    PAW_RETURN_NOT_OK(error);
    auto it = stashed.find(request_id);
    if (it != stashed.end()) {
      wire::Frame frame = std::move(it->second);
      stashed.erase(it);
      return frame;
    }
    char buf[64 << 10];
    for (;;) {
      // Try to parse what we have first.
      for (;;) {
        wire::Frame frame;
        size_t consumed = 0;
        std::string parse_error;
        const wire::ParseResult result =
            wire::ParseFrame(in, &frame, &consumed, &parse_error);
        if (result == wire::ParseResult::kBad) {
          return Poison(Status::Internal("protocol error: " + parse_error));
        }
        if (result == wire::ParseResult::kNeedMore) break;
        in.erase(0, consumed);
        if (frame.request_id == request_id) return frame;
        if (outstanding.count(frame.request_id) == 0) continue;
        if (stashed.size() >= max_stashed) {
          return Poison(Status::FailedPrecondition(
              "pipelined response stash overflow (" +
              std::to_string(stashed.size()) +
              " unawaited responses); await tickets as they complete"));
        }
        stashed.emplace(frame.request_id, std::move(frame));
      }
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n == 0) {
        return Poison(Status::Internal(
            "connection closed by server while awaiting response"));
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return Poison(ErrnoStatus("read"));
      }
      in.append(buf, static_cast<size_t>(n));
    }
  }

  /// One sync round trip: send, await, check the status preamble, and
  /// return (payload, body offset).
  Result<std::pair<std::string, size_t>> Call(wire::Opcode opcode,
                                              std::string payload) {
    const uint64_t id = next_request_id++;
    PAW_RETURN_NOT_OK(SendFrame(opcode, id, std::move(payload)));
    PAW_ASSIGN_OR_RETURN(wire::Frame frame, ReadResponse(id));
    if (frame.opcode != opcode) {
      return Poison(Status::Internal("response opcode mismatch"));
    }
    size_t offset = 0;
    Status status;
    if (!wire::ReadResponseStatus(frame.payload, &offset, &status)) {
      return Poison(Status::Internal("malformed response status preamble"));
    }
    PAW_RETURN_NOT_OK(status);
    return std::make_pair(std::move(frame.payload), offset);
  }
};

PawClient::PawClient(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}
PawClient::PawClient(PawClient&&) noexcept = default;
PawClient& PawClient::operator=(PawClient&&) noexcept = default;
PawClient::~PawClient() = default;

Result<PawClient> PawClient::Connect(const std::string& host, int port,
                                     PawClientOptions options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &list);
  if (rc != 0) {
    return Status::Internal("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::Internal("no addresses for " + host);
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = ErrnoStatus("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(list);
  if (fd < 0) return last;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto rep = std::make_unique<Rep>();
  rep->fd = fd;
  rep->max_stashed = options.max_stashed_responses;
  // HELLO is sent with the *offered max* version; the server replies
  // with the negotiated one, which every later frame carries.
  rep->version = options.max_version;
  wire::HelloRequest hello;
  hello.min_version = options.min_version;
  hello.max_version = options.max_version;
  hello.client_name = std::move(options.client_name);
  auto result = rep->Call(wire::Opcode::kHello,
                          wire::EncodeHelloRequest(hello));
  if (!result.ok()) return result.status();
  auto resp = wire::DecodeHelloResponse(result.value().first,
                                        result.value().second);
  if (!resp.ok()) return resp.status();
  rep->version = resp.value().version;
  rep->server_name = std::move(resp.value().server_name);
  return PawClient(std::move(rep));
}

Status PawClient::Auth(const std::string& principal) {
  auto result = rep_->Call(
      wire::Opcode::kAuth,
      wire::EncodeAuthRequest(wire::AuthRequest{principal}));
  if (!result.ok()) return result.status();
  return wire::DecodeAuthResponse(result.value().first,
                                  result.value().second)
      .status();
}

int PawClient::version() const { return rep_->version; }
const std::string& PawClient::server_name() const {
  return rep_->server_name;
}

Result<wire::AddSpecResponse> PawClient::AddSpec(
    const std::string& spec_text, const std::string& policy_text) {
  PAW_ASSIGN_OR_RETURN(
      auto result,
      rep_->Call(wire::Opcode::kAddSpec,
                 wire::EncodeAddSpecRequest(
                     wire::AddSpecRequest{spec_text, policy_text})));
  return wire::DecodeAddSpecResponse(result.first, result.second);
}

Result<wire::AddExecutionResponse> PawClient::AddExecution(
    const std::string& spec_name, const std::string& exec_text) {
  PAW_ASSIGN_OR_RETURN(
      auto result,
      rep_->Call(wire::Opcode::kAddExecution,
                 wire::EncodeAddExecutionRequest(
                     wire::AddExecutionRequest{spec_name, exec_text})));
  return wire::DecodeAddExecutionResponse(result.first, result.second);
}

Result<wire::GetSpecResponse> PawClient::GetSpec(
    const std::string& spec_name) {
  PAW_ASSIGN_OR_RETURN(
      auto result,
      rep_->Call(wire::Opcode::kGetSpec,
                 wire::EncodeGetSpecRequest(
                     wire::GetSpecRequest{spec_name})));
  return wire::DecodeGetSpecResponse(result.first, result.second);
}

Result<wire::GetExecutionResponse> PawClient::GetExecution(
    const std::string& spec_name, int ordinal) {
  PAW_ASSIGN_OR_RETURN(
      auto result,
      rep_->Call(wire::Opcode::kGetExecution,
                 wire::EncodeGetExecutionRequest(
                     wire::GetExecutionRequest{spec_name, ordinal})));
  return wire::DecodeGetExecutionResponse(result.first, result.second);
}

Result<wire::SearchResponse> PawClient::Search(
    const std::vector<std::string>& terms) {
  PAW_ASSIGN_OR_RETURN(
      auto result,
      rep_->Call(wire::Opcode::kKeywordSearch,
                 wire::EncodeSearchRequest(wire::SearchRequest{terms})));
  return wire::DecodeSearchResponse(result.first, result.second);
}

Result<wire::StructuralResponse> PawClient::Structural(
    const wire::StructuralRequest& request) {
  PAW_ASSIGN_OR_RETURN(
      auto result,
      rep_->Call(wire::Opcode::kStructuralQuery,
                 wire::EncodeStructuralRequest(request)));
  return wire::DecodeStructuralResponse(result.first, result.second);
}

Result<wire::LineageResponse> PawClient::Lineage(
    const std::string& spec_name, int ordinal, int item) {
  PAW_ASSIGN_OR_RETURN(
      auto result,
      rep_->Call(wire::Opcode::kLineage,
                 wire::EncodeLineageRequest(
                     wire::LineageRequest{spec_name, ordinal, item})));
  return wire::DecodeLineageResponse(result.first, result.second);
}

Result<wire::StatusResponse> PawClient::GetStatus() {
  PAW_ASSIGN_OR_RETURN(auto result,
                       rep_->Call(wire::Opcode::kStatus, ""));
  return wire::DecodeStatusResponse(result.first, result.second);
}

Result<wire::MetricsResponse> PawClient::Metrics() {
  PAW_ASSIGN_OR_RETURN(auto result,
                       rep_->Call(wire::Opcode::kMetrics, ""));
  return wire::DecodeMetricsResponse(result.first, result.second);
}

Result<wire::TraceDumpResponse> PawClient::TraceDump(
    const wire::TraceDumpRequest& request) {
  PAW_ASSIGN_OR_RETURN(
      auto result, rep_->Call(wire::Opcode::kTraceDump,
                              wire::EncodeTraceDumpRequest(request)));
  return wire::DecodeTraceDumpResponse(result.first, result.second);
}

uint64_t PawClient::last_trace_id() const { return rep_->last_trace_id; }

Status PawClient::Compact() {
  return rep_->Call(wire::Opcode::kCompact, "").status();
}

Result<PawTicket> PawClient::SendAddExecution(
    const std::string& spec_name, const std::string& exec_text) {
  const uint64_t id = rep_->next_request_id++;
  PAW_RETURN_NOT_OK(rep_->SendFrame(
      wire::Opcode::kAddExecution, id,
      wire::EncodeAddExecutionRequest(
          wire::AddExecutionRequest{spec_name, exec_text})));
  rep_->outstanding.insert(id);
  return id;
}

Result<wire::AddExecutionResponse> PawClient::AwaitAddExecution(
    PawTicket ticket) {
  PAW_RETURN_NOT_OK(rep_->error);
  if (rep_->outstanding.erase(ticket) == 0) {
    // Blocking on a ticket that was never sent (or already redeemed)
    // would wait forever; fail fast instead.
    return Status::InvalidArgument("unknown or already-awaited ticket " +
                                   std::to_string(ticket));
  }
  PAW_ASSIGN_OR_RETURN(wire::Frame frame, rep_->ReadResponse(ticket));
  if (frame.opcode != wire::Opcode::kAddExecution) {
    return rep_->Poison(Status::Internal("response opcode mismatch"));
  }
  size_t offset = 0;
  Status status;
  if (!wire::ReadResponseStatus(frame.payload, &offset, &status)) {
    return rep_->Poison(
        Status::Internal("malformed response status preamble"));
  }
  PAW_RETURN_NOT_OK(status);
  return wire::DecodeAddExecutionResponse(frame.payload, offset);
}

size_t PawClient::pending() const { return rep_->outstanding.size(); }

size_t PawClient::stashed() const { return rep_->stashed.size(); }

Result<wire::SubscribeResponse> PawClient::Subscribe(
    const wire::SubscribeRequest& request) {
  PAW_ASSIGN_OR_RETURN(
      auto result,
      rep_->Call(wire::Opcode::kSubscribe,
                 wire::EncodeSubscribeRequest(request)));
  return wire::DecodeSubscribeResponse(result.first, result.second);
}

Result<wire::Frame> PawClient::ReadPushedFrame() {
  PAW_RETURN_NOT_OK(rep_->error);
  char buf[64 << 10];
  for (;;) {
    wire::Frame frame;
    size_t consumed = 0;
    std::string parse_error;
    const wire::ParseResult result =
        wire::ParseFrame(rep_->in, &frame, &consumed, &parse_error);
    if (result == wire::ParseResult::kBad) {
      return rep_->Poison(
          Status::Internal("protocol error: " + parse_error));
    }
    if (result == wire::ParseResult::kFrame) {
      rep_->in.erase(0, consumed);
      return frame;
    }
    const ssize_t n = ::read(rep_->fd, buf, sizeof(buf));
    if (n == 0) {
      return rep_->Poison(
          Status::Internal("connection closed by server"));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return rep_->Poison(ErrnoStatus("read"));
    }
    rep_->in.append(buf, static_cast<size_t>(n));
  }
}

Status PawClient::SendRawFrame(wire::Opcode opcode, uint64_t request_id,
                               std::string payload, TraceContext ctx) {
  return rep_->SendFrame(opcode, request_id, std::move(payload), ctx);
}

void PawClient::Shutdown() {
  if (rep_->fd >= 0) ::shutdown(rep_->fd, SHUT_RDWR);
}

void PawClient::Close() {
  if (rep_->fd >= 0) {
    ::close(rep_->fd);
    rep_->fd = -1;
  }
  if (rep_->error.ok()) {
    rep_->error = Status::FailedPrecondition("client closed");
  }
}

}  // namespace paw

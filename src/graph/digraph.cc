#include "src/graph/digraph.h"

#include <algorithm>

namespace paw {

NodeIndex Digraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeIndex>(out_.size()) - 1;
}

void Digraph::Resize(NodeIndex n) {
  if (n > num_nodes()) {
    out_.resize(static_cast<size_t>(n));
    in_.resize(static_cast<size_t>(n));
  }
}

Status Digraph::AddEdge(NodeIndex u, NodeIndex v) {
  if (!IsValidNode(u) || !IsValidNode(v)) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("self loops are not allowed");
  }
  if (!edge_set_.insert({u, v}).second) {
    return Status::AlreadyExists("duplicate edge");
  }
  out_[size_t(u)].push_back(v);
  in_[size_t(v)].push_back(u);
  ++num_edges_;
  return Status::OK();
}

Status Digraph::RemoveEdge(NodeIndex u, NodeIndex v) {
  if (!IsValidNode(u) || !IsValidNode(v)) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (edge_set_.erase({u, v}) == 0) {
    return Status::NotFound("edge not present");
  }
  auto& outs = out_[size_t(u)];
  outs.erase(std::find(outs.begin(), outs.end(), v));
  auto& ins = in_[size_t(v)];
  ins.erase(std::find(ins.begin(), ins.end(), u));
  --num_edges_;
  return Status::OK();
}

bool Digraph::HasEdge(NodeIndex u, NodeIndex v) const {
  return edge_set_.count({u, v}) > 0;
}

std::vector<std::pair<NodeIndex, NodeIndex>> Digraph::Edges() const {
  std::vector<std::pair<NodeIndex, NodeIndex>> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (NodeIndex u = 0; u < num_nodes(); ++u) {
    for (NodeIndex v : out_[size_t(u)]) edges.emplace_back(u, v);
  }
  return edges;
}

}  // namespace paw

#include "src/graph/transitive.h"

#include <bit>

#include "src/common/logging.h"
#include "src/graph/algorithms.h"

namespace paw {

TransitiveClosure TransitiveClosure::Compute(const Digraph& g) {
  const NodeIndex n = g.num_nodes();
  const size_t words = (static_cast<size_t>(n) + 63) / 64;
  TransitiveClosure tc(n, words);
  if (n == 0) return tc;

  auto order_result = TopologicalOrder(g);
  if (order_result.ok()) {
    // DAG fast path: sweep in reverse topological order, OR-ing successor
    // rows into each node's row.
    const std::vector<NodeIndex>& order = order_result.value();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      NodeIndex u = *it;
      uint64_t* row = tc.Row(u);
      for (NodeIndex v : g.OutNeighbors(u)) {
        row[size_t(v) / 64] |= uint64_t{1} << (size_t(v) % 64);
        const uint64_t* vrow = tc.Row(v);
        for (size_t w = 0; w < words; ++w) row[w] |= vrow[w];
      }
    }
    return tc;
  }

  // General digraph fallback: BFS per node.
  for (NodeIndex u = 0; u < n; ++u) {
    uint64_t* row = tc.Row(u);
    for (NodeIndex v : ReachableFrom(g, u)) {
      if (v == u) continue;
      row[size_t(v) / 64] |= uint64_t{1} << (size_t(v) % 64);
    }
    // A node on a cycle through itself reaches itself; detect via any
    // successor that reaches u.
    for (NodeIndex v : g.OutNeighbors(u)) {
      if (v == u || PathExists(g, v, u)) {
        row[size_t(u) / 64] |= uint64_t{1} << (size_t(u) % 64);
        break;
      }
    }
  }
  return tc;
}

void TransitiveClosure::GrowTo(NodeIndex n) {
  if (n <= n_) return;
  const size_t words = (static_cast<size_t>(n) + 63) / 64;
  if (words == words_per_row_) {
    bits_.resize(static_cast<size_t>(n) * words, 0);
    n_ = n;
    return;
  }
  std::vector<uint64_t> wide(static_cast<size_t>(n) * words, 0);
  for (NodeIndex u = 0; u < n_; ++u) {
    const uint64_t* src = Row(u);
    uint64_t* dst = wide.data() + static_cast<size_t>(u) * words;
    for (size_t w = 0; w < words_per_row_; ++w) dst[w] = src[w];
  }
  bits_ = std::move(wide);
  words_per_row_ = words;
  n_ = n;
}

void TransitiveClosure::AddEdgeUpdate(NodeIndex u, NodeIndex v) {
  PAW_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_)
      << "AddEdgeUpdate node out of range";
  if (Reaches(u, v)) return;  // no new pairs
  // targets = everything the edge newly exposes: v and v's reachables.
  std::vector<uint64_t> targets(Row(v), Row(v) + words_per_row_);
  targets[size_t(v) / 64] |= uint64_t{1} << (size_t(v) % 64);
  // Fold into u and every ancestor of u. A path using the new edge must
  // visit u first, so "reaches u (before the edge) or is u" is exact.
  for (NodeIndex a = 0; a < n_; ++a) {
    if (a != u && !Reaches(a, u)) continue;
    uint64_t* row = Row(a);
    for (size_t w = 0; w < words_per_row_; ++w) row[w] |= targets[w];
  }
}

bool TransitiveClosure::Reaches(NodeIndex u, NodeIndex v) const {
  if (u < 0 || v < 0 || u >= n_ || v >= n_) return false;
  return (Row(u)[size_t(v) / 64] >> (size_t(v) % 64)) & 1;
}

int64_t TransitiveClosure::CountPairs() const {
  int64_t total = 0;
  for (NodeIndex u = 0; u < n_; ++u) {
    const uint64_t* row = Row(u);
    for (size_t w = 0; w < words_per_row_; ++w) {
      total += std::popcount(row[w]);
    }
    if (Reaches(u, u)) --total;  // irreflexive count
  }
  return total;
}

std::vector<NodeIndex> TransitiveClosure::RowOf(NodeIndex u) const {
  std::vector<NodeIndex> out;
  if (u < 0 || u >= n_) return out;
  for (NodeIndex v = 0; v < n_; ++v) {
    if (Reaches(u, v)) out.push_back(v);
  }
  return out;
}

Result<std::vector<std::pair<NodeIndex, NodeIndex>>>
TransitiveClosure::PairsMinus(const TransitiveClosure& other) const {
  if (n_ != other.n_) {
    return Status::InvalidArgument("closure size mismatch");
  }
  std::vector<std::pair<NodeIndex, NodeIndex>> out;
  for (NodeIndex u = 0; u < n_; ++u) {
    const uint64_t* a = Row(u);
    const uint64_t* b = other.Row(u);
    for (size_t w = 0; w < words_per_row_; ++w) {
      uint64_t diff = a[w] & ~b[w];
      while (diff) {
        int bit = std::countr_zero(diff);
        diff &= diff - 1;
        NodeIndex v = static_cast<NodeIndex>(w * 64 + size_t(bit));
        if (v != u) out.emplace_back(u, v);
      }
    }
  }
  return out;
}

Result<Digraph> TransitiveReduction(const Digraph& g) {
  PAW_ASSIGN_OR_RETURN(std::vector<NodeIndex> order, TopologicalOrder(g));
  (void)order;
  TransitiveClosure tc = TransitiveClosure::Compute(g);
  Digraph reduced(g.num_nodes());
  for (const auto& [u, v] : g.Edges()) {
    // Edge u->v is redundant iff some other successor w of u reaches v.
    bool redundant = false;
    for (NodeIndex w : g.OutNeighbors(u)) {
      if (w != v && tc.Reaches(w, v)) {
        redundant = true;
        break;
      }
    }
    if (!redundant) {
      Status st = reduced.AddEdge(u, v);
      PAW_CHECK(st.ok()) << st.ToString();
    }
  }
  return reduced;
}

}  // namespace paw

#ifndef PAW_GRAPH_DIGRAPH_H_
#define PAW_GRAPH_DIGRAPH_H_

/// \file digraph.h
/// \brief Adjacency-list directed graph used by every layer of the library.
///
/// Workflow specifications, provenance graphs, view quotients and privacy
/// transforms all reduce to operations on this structure. Nodes are dense
/// integers `[0, num_nodes)`; parallel edges are rejected; out/in adjacency
/// preserves insertion order (the executor's deterministic schedule relies
/// on that, see `provenance/executor.h`).

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace paw {

/// \brief Dense node index of a `Digraph`.
using NodeIndex = int32_t;

/// \brief A simple directed graph with insertion-ordered adjacency.
class Digraph {
 public:
  Digraph() = default;

  /// Constructs a graph with `n` isolated nodes.
  explicit Digraph(NodeIndex n) { Resize(n); }

  /// \brief Adds one node and returns its index.
  NodeIndex AddNode();

  /// \brief Grows the graph to exactly `n` nodes (never shrinks).
  void Resize(NodeIndex n);

  /// \brief Adds edge `u -> v`.
  ///
  /// Returns InvalidArgument for out-of-range endpoints or self loops and
  /// AlreadyExists for duplicate edges.
  Status AddEdge(NodeIndex u, NodeIndex v);

  /// \brief Removes edge `u -> v`; NotFound if absent.
  Status RemoveEdge(NodeIndex u, NodeIndex v);

  /// \brief True iff edge `u -> v` exists.
  bool HasEdge(NodeIndex u, NodeIndex v) const;

  /// \brief Number of nodes.
  NodeIndex num_nodes() const { return static_cast<NodeIndex>(out_.size()); }

  /// \brief Number of edges.
  int64_t num_edges() const { return num_edges_; }

  /// \brief Successors of `u` in insertion order.
  const std::vector<NodeIndex>& OutNeighbors(NodeIndex u) const {
    return out_[static_cast<size_t>(u)];
  }

  /// \brief Predecessors of `u` in insertion order.
  const std::vector<NodeIndex>& InNeighbors(NodeIndex u) const {
    return in_[static_cast<size_t>(u)];
  }

  /// \brief Out-degree of `u`.
  size_t OutDegree(NodeIndex u) const { return out_[size_t(u)].size(); }

  /// \brief In-degree of `u`.
  size_t InDegree(NodeIndex u) const { return in_[size_t(u)].size(); }

  /// \brief All edges as (u, v) pairs, grouped by source, insertion order.
  std::vector<std::pair<NodeIndex, NodeIndex>> Edges() const;

  /// \brief True iff `u` is a valid node index.
  bool IsValidNode(NodeIndex u) const { return u >= 0 && u < num_nodes(); }

 private:
  struct PairHash {
    size_t operator()(const std::pair<NodeIndex, NodeIndex>& p) const {
      return std::hash<int64_t>()((int64_t(p.first) << 32) |
                                  uint32_t(p.second));
    }
  };

  std::vector<std::vector<NodeIndex>> out_;
  std::vector<std::vector<NodeIndex>> in_;
  std::unordered_set<std::pair<NodeIndex, NodeIndex>, PairHash> edge_set_;
  int64_t num_edges_ = 0;
};

}  // namespace paw

#endif  // PAW_GRAPH_DIGRAPH_H_

#ifndef PAW_GRAPH_ALGORITHMS_H_
#define PAW_GRAPH_ALGORITHMS_H_

/// \file algorithms.h
/// \brief Graph algorithms shared by the workflow, provenance and privacy
/// layers: traversal, topological order, reachability, quotients (the
/// clustering operation of structural privacy), induced subgraphs, and the
/// minimum edge cuts used by the edge-deletion privacy mechanism.

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/graph/digraph.h"

namespace paw {

/// \brief Nodes reachable from `start` (inclusive) following out-edges.
std::vector<NodeIndex> ReachableFrom(const Digraph& g, NodeIndex start);

/// \brief Nodes reachable from any node of `starts` (inclusive).
std::vector<NodeIndex> ReachableFrom(const Digraph& g,
                                     const std::vector<NodeIndex>& starts);

/// \brief Nodes that can reach `target` (inclusive) following in-edges.
std::vector<NodeIndex> CanReach(const Digraph& g, NodeIndex target);

/// \brief True iff a directed path `from -> ... -> to` exists (BFS).
bool PathExists(const Digraph& g, NodeIndex from, NodeIndex to);

/// \brief A topological order, or FailedPrecondition if `g` has a cycle.
Result<std::vector<NodeIndex>> TopologicalOrder(const Digraph& g);

/// \brief True iff `g` is acyclic.
bool IsAcyclic(const Digraph& g);

/// \brief Nodes with no in-edges, ascending.
std::vector<NodeIndex> Sources(const Digraph& g);

/// \brief Nodes with no out-edges, ascending.
std::vector<NodeIndex> Sinks(const Digraph& g);

/// \brief Number of distinct directed paths `from -> to` in a DAG.
///
/// Saturates at kPathCountCap to avoid overflow on dense DAGs.
int64_t CountPaths(const Digraph& g, NodeIndex from, NodeIndex to);
inline constexpr int64_t kPathCountCap = int64_t{1} << 62;

/// \brief Result of collapsing node groups into single quotient nodes.
struct QuotientGraph {
  /// The collapsed graph; node q represents all original nodes u with
  /// `group_of[u] == q`.
  Digraph graph;
  /// Maps each original node to its quotient node.
  std::vector<NodeIndex> group_of;
  /// Original members of each quotient node.
  std::vector<std::vector<NodeIndex>> members;
};

/// \brief Collapses `g` according to `group_of` (size `num_nodes`, values
/// in `[0, num_groups)`), dropping intra-group edges and deduplicating
/// cross-group edges. This is the "clustering" operation of structural
/// privacy: the quotient is what an external observer sees.
Result<QuotientGraph> Quotient(const Digraph& g,
                               const std::vector<NodeIndex>& group_of,
                               NodeIndex num_groups);

/// \brief Subgraph induced by `keep` (ascending remap); `node_map[i]` is the
/// new index of old node `keep[i]`.
struct InducedSubgraph {
  Digraph graph;
  std::vector<NodeIndex> kept;  // new index -> old index
};
InducedSubgraph Induce(const Digraph& g, const std::vector<NodeIndex>& keep);

/// \brief Minimum set of edges whose removal disconnects `s` from `t`
/// (max-flow with unit edge capacities, BFS augmentation).
///
/// Returns the cut edges in the original graph. Requires `s != t`; returns
/// an empty vector when `t` is already unreachable.
Result<std::vector<std::pair<NodeIndex, NodeIndex>>> MinEdgeCut(
    const Digraph& g, NodeIndex s, NodeIndex t);

/// \brief Longest path length (in edges) in a DAG; 0 for empty graphs.
Result<int> DagLongestPath(const Digraph& g);

}  // namespace paw

#endif  // PAW_GRAPH_ALGORITHMS_H_

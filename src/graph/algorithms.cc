#include "src/graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_map>

#include "src/common/logging.h"

namespace paw {

std::vector<NodeIndex> ReachableFrom(const Digraph& g, NodeIndex start) {
  return ReachableFrom(g, std::vector<NodeIndex>{start});
}

std::vector<NodeIndex> ReachableFrom(const Digraph& g,
                                     const std::vector<NodeIndex>& starts) {
  std::vector<bool> seen(static_cast<size_t>(g.num_nodes()), false);
  std::deque<NodeIndex> queue;
  std::vector<NodeIndex> out;
  for (NodeIndex s : starts) {
    if (g.IsValidNode(s) && !seen[size_t(s)]) {
      seen[size_t(s)] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    NodeIndex u = queue.front();
    queue.pop_front();
    out.push_back(u);
    for (NodeIndex v : g.OutNeighbors(u)) {
      if (!seen[size_t(v)]) {
        seen[size_t(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return out;
}

std::vector<NodeIndex> CanReach(const Digraph& g, NodeIndex target) {
  std::vector<bool> seen(static_cast<size_t>(g.num_nodes()), false);
  std::deque<NodeIndex> queue;
  std::vector<NodeIndex> out;
  if (!g.IsValidNode(target)) return out;
  seen[size_t(target)] = true;
  queue.push_back(target);
  while (!queue.empty()) {
    NodeIndex u = queue.front();
    queue.pop_front();
    out.push_back(u);
    for (NodeIndex v : g.InNeighbors(u)) {
      if (!seen[size_t(v)]) {
        seen[size_t(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return out;
}

bool PathExists(const Digraph& g, NodeIndex from, NodeIndex to) {
  if (!g.IsValidNode(from) || !g.IsValidNode(to)) return false;
  if (from == to) return true;
  std::vector<bool> seen(static_cast<size_t>(g.num_nodes()), false);
  std::deque<NodeIndex> queue{from};
  seen[size_t(from)] = true;
  while (!queue.empty()) {
    NodeIndex u = queue.front();
    queue.pop_front();
    for (NodeIndex v : g.OutNeighbors(u)) {
      if (v == to) return true;
      if (!seen[size_t(v)]) {
        seen[size_t(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return false;
}

Result<std::vector<NodeIndex>> TopologicalOrder(const Digraph& g) {
  std::vector<size_t> indegree(static_cast<size_t>(g.num_nodes()));
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    indegree[size_t(u)] = g.InDegree(u);
  }
  // Kahn's algorithm; the min-index queue makes the order deterministic.
  std::priority_queue<NodeIndex, std::vector<NodeIndex>,
                      std::greater<NodeIndex>>
      ready;
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    if (indegree[size_t(u)] == 0) ready.push(u);
  }
  std::vector<NodeIndex> order;
  order.reserve(static_cast<size_t>(g.num_nodes()));
  while (!ready.empty()) {
    NodeIndex u = ready.top();
    ready.pop();
    order.push_back(u);
    for (NodeIndex v : g.OutNeighbors(u)) {
      if (--indegree[size_t(v)] == 0) ready.push(v);
    }
  }
  if (order.size() != static_cast<size_t>(g.num_nodes())) {
    return Status::FailedPrecondition("graph has a cycle");
  }
  return order;
}

bool IsAcyclic(const Digraph& g) { return TopologicalOrder(g).ok(); }

std::vector<NodeIndex> Sources(const Digraph& g) {
  std::vector<NodeIndex> out;
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    if (g.InDegree(u) == 0) out.push_back(u);
  }
  return out;
}

std::vector<NodeIndex> Sinks(const Digraph& g) {
  std::vector<NodeIndex> out;
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) == 0) out.push_back(u);
  }
  return out;
}

int64_t CountPaths(const Digraph& g, NodeIndex from, NodeIndex to) {
  if (!g.IsValidNode(from) || !g.IsValidNode(to)) return 0;
  auto order = TopologicalOrder(g);
  if (!order.ok()) return 0;
  std::vector<int64_t> count(static_cast<size_t>(g.num_nodes()), 0);
  count[size_t(from)] = 1;
  for (NodeIndex u : order.value()) {
    if (count[size_t(u)] == 0) continue;
    for (NodeIndex v : g.OutNeighbors(u)) {
      count[size_t(v)] =
          std::min(kPathCountCap, count[size_t(v)] + count[size_t(u)]);
    }
  }
  return count[size_t(to)];
}

Result<QuotientGraph> Quotient(const Digraph& g,
                               const std::vector<NodeIndex>& group_of,
                               NodeIndex num_groups) {
  if (group_of.size() != static_cast<size_t>(g.num_nodes())) {
    return Status::InvalidArgument("group_of size mismatch");
  }
  QuotientGraph q;
  q.group_of = group_of;
  q.graph.Resize(num_groups);
  q.members.resize(static_cast<size_t>(num_groups));
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    NodeIndex grp = group_of[size_t(u)];
    if (grp < 0 || grp >= num_groups) {
      return Status::InvalidArgument("group id out of range");
    }
    q.members[size_t(grp)].push_back(u);
  }
  for (const auto& [u, v] : g.Edges()) {
    NodeIndex gu = group_of[size_t(u)];
    NodeIndex gv = group_of[size_t(v)];
    if (gu != gv && !q.graph.HasEdge(gu, gv)) {
      Status st = q.graph.AddEdge(gu, gv);
      PAW_CHECK(st.ok()) << st.ToString();
    }
  }
  return q;
}

InducedSubgraph Induce(const Digraph& g, const std::vector<NodeIndex>& keep) {
  InducedSubgraph sub;
  sub.kept = keep;
  std::sort(sub.kept.begin(), sub.kept.end());
  sub.kept.erase(std::unique(sub.kept.begin(), sub.kept.end()),
                 sub.kept.end());
  std::vector<NodeIndex> new_index(static_cast<size_t>(g.num_nodes()), -1);
  for (size_t i = 0; i < sub.kept.size(); ++i) {
    new_index[size_t(sub.kept[i])] = static_cast<NodeIndex>(i);
  }
  sub.graph.Resize(static_cast<NodeIndex>(sub.kept.size()));
  for (NodeIndex old_u : sub.kept) {
    for (NodeIndex old_v : g.OutNeighbors(old_u)) {
      NodeIndex nu = new_index[size_t(old_u)];
      NodeIndex nv = new_index[size_t(old_v)];
      if (nv >= 0) {
        Status st = sub.graph.AddEdge(nu, nv);
        PAW_CHECK(st.ok()) << st.ToString();
      }
    }
  }
  return sub;
}

namespace {

// Edmonds-Karp on unit-capacity edges. Residual capacities are stored in a
// dense adjacency map keyed by (u, v).
struct FlowNetwork {
  explicit FlowNetwork(const Digraph& g) : g(g) {
    for (const auto& [u, v] : g.Edges()) residual[Key(u, v)] = 1;
  }

  static int64_t Key(NodeIndex u, NodeIndex v) {
    return (int64_t(u) << 32) | uint32_t(v);
  }

  int Capacity(NodeIndex u, NodeIndex v) const {
    auto it = residual.find(Key(u, v));
    return it == residual.end() ? 0 : it->second;
  }

  // BFS for an augmenting path in the residual graph.
  bool Augment(NodeIndex s, NodeIndex t) {
    std::vector<NodeIndex> parent(static_cast<size_t>(g.num_nodes()), -1);
    std::deque<NodeIndex> queue{s};
    parent[size_t(s)] = s;
    while (!queue.empty() && parent[size_t(t)] < 0) {
      NodeIndex u = queue.front();
      queue.pop_front();
      auto try_push = [&](NodeIndex v) {
        if (parent[size_t(v)] < 0 && Capacity(u, v) > 0) {
          parent[size_t(v)] = u;
          queue.push_back(v);
        }
      };
      for (NodeIndex v : g.OutNeighbors(u)) try_push(v);
      for (NodeIndex v : g.InNeighbors(u)) try_push(v);  // residual back edges
    }
    if (parent[size_t(t)] < 0) return false;
    for (NodeIndex v = t; v != s;) {
      NodeIndex u = parent[size_t(v)];
      --residual[Key(u, v)];
      ++residual[Key(v, u)];
      v = u;
    }
    return true;
  }

  const Digraph& g;
  std::unordered_map<int64_t, int> residual;
};

}  // namespace

Result<std::vector<std::pair<NodeIndex, NodeIndex>>> MinEdgeCut(
    const Digraph& g, NodeIndex s, NodeIndex t) {
  if (!g.IsValidNode(s) || !g.IsValidNode(t)) {
    return Status::InvalidArgument("cut endpoint out of range");
  }
  if (s == t) return Status::InvalidArgument("s == t");
  FlowNetwork net(g);
  while (net.Augment(s, t)) {
  }
  // Min cut = original edges from the s-side of the residual graph to the
  // t-side.
  std::vector<bool> s_side(static_cast<size_t>(g.num_nodes()), false);
  std::deque<NodeIndex> queue{s};
  s_side[size_t(s)] = true;
  while (!queue.empty()) {
    NodeIndex u = queue.front();
    queue.pop_front();
    auto visit = [&](NodeIndex v) {
      if (!s_side[size_t(v)] && net.Capacity(u, v) > 0) {
        s_side[size_t(v)] = true;
        queue.push_back(v);
      }
    };
    for (NodeIndex v : g.OutNeighbors(u)) visit(v);
    for (NodeIndex v : g.InNeighbors(u)) visit(v);
  }
  std::vector<std::pair<NodeIndex, NodeIndex>> cut;
  for (const auto& [u, v] : g.Edges()) {
    if (s_side[size_t(u)] && !s_side[size_t(v)]) cut.emplace_back(u, v);
  }
  return cut;
}

Result<int> DagLongestPath(const Digraph& g) {
  PAW_ASSIGN_OR_RETURN(std::vector<NodeIndex> order, TopologicalOrder(g));
  std::vector<int> depth(static_cast<size_t>(g.num_nodes()), 0);
  int best = 0;
  for (NodeIndex u : order) {
    for (NodeIndex v : g.OutNeighbors(u)) {
      depth[size_t(v)] = std::max(depth[size_t(v)], depth[size_t(u)] + 1);
      best = std::max(best, depth[size_t(v)]);
    }
  }
  return best;
}

}  // namespace paw

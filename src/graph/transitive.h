#ifndef PAW_GRAPH_TRANSITIVE_H_
#define PAW_GRAPH_TRANSITIVE_H_

/// \file transitive.h
/// \brief Transitive closure and reduction.
///
/// Structural privacy reasons entirely in terms of reachability pairs: the
/// soundness of a clustered view, the collateral damage of an edge deletion
/// and the utility of a published view are all computed by comparing
/// closures. The closure is stored as one bitset row per node.

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/graph/digraph.h"

namespace paw {

/// \brief Dense transitive closure of a digraph.
///
/// Row `u` is a bitset over nodes; bit `v` is set iff a directed path
/// `u -> ... -> v` with at least one edge exists (irreflexive by default).
class TransitiveClosure {
 public:
  /// \brief Computes the closure of `g`. O(V * E / 64).
  static TransitiveClosure Compute(const Digraph& g);

  /// \brief True iff `u` reaches `v` via a non-empty path.
  bool Reaches(NodeIndex u, NodeIndex v) const;

  /// \brief Number of reachable pairs (u, v), u != v.
  int64_t CountPairs() const;

  /// \brief Nodes reachable from `u` (ascending).
  std::vector<NodeIndex> RowOf(NodeIndex u) const;

  /// \brief Number of nodes.
  NodeIndex num_nodes() const { return n_; }

  /// \brief Pairs reachable in `*this` but not in `other`.
  ///
  /// Requires equal node counts; used to count extraneous paths introduced
  /// by an unsound clustering and information destroyed by edge deletion.
  Result<std::vector<std::pair<NodeIndex, NodeIndex>>> PairsMinus(
      const TransitiveClosure& other) const;

  /// \brief Grows the closure to `n` nodes (new rows/columns empty).
  /// No-op when already that large. Re-layouts rows only when the word
  /// width changes.
  void GrowTo(NodeIndex n);

  /// \brief Incrementally folds one added edge `u -> v` into the closure.
  ///
  /// Every new reachable pair created by the edge is a path
  /// `a ->* u -> v ->* b`, so rows of `u` and its ancestors gain `v`'s
  /// row plus `v` itself; cycles (when `v` already reached `u`) fall out
  /// of the same union. O(V^2 / 64) worst case — versus O(V * E / 64)
  /// for a full `Compute`. `u` and `v` must be within `num_nodes()`.
  void AddEdgeUpdate(NodeIndex u, NodeIndex v);

 private:
  TransitiveClosure(NodeIndex n, size_t words_per_row)
      : n_(n), words_per_row_(words_per_row),
        bits_(static_cast<size_t>(n) * words_per_row, 0) {}

  uint64_t* Row(NodeIndex u) {
    return bits_.data() + static_cast<size_t>(u) * words_per_row_;
  }
  const uint64_t* Row(NodeIndex u) const {
    return bits_.data() + static_cast<size_t>(u) * words_per_row_;
  }

  NodeIndex n_;
  size_t words_per_row_;
  std::vector<uint64_t> bits_;
};

/// \brief Transitive reduction of a DAG: the unique minimal edge set with
/// the same closure. FailedPrecondition on cyclic input.
Result<Digraph> TransitiveReduction(const Digraph& g);

}  // namespace paw

#endif  // PAW_GRAPH_TRANSITIVE_H_

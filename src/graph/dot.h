#ifndef PAW_GRAPH_DOT_H_
#define PAW_GRAPH_DOT_H_

/// \file dot.h
/// \brief Graphviz DOT rendering for digraphs with per-node/edge labels.
///
/// Examples and the figure-reproduction bench emit DOT so the reproduced
/// figures can be inspected visually against the paper.

#include <functional>
#include <string>

#include "src/graph/digraph.h"

namespace paw {

/// \brief Options controlling DOT output.
struct DotOptions {
  /// Graph name appearing in the `digraph <name> { ... }` header.
  std::string name = "g";
  /// Label for node `u`; defaults to the node index.
  std::function<std::string(NodeIndex)> node_label;
  /// Label for edge `u -> v`; empty string omits the label.
  std::function<std::string(NodeIndex, NodeIndex)> edge_label;
  /// Extra node attributes, e.g. `shape=box` for masked nodes.
  std::function<std::string(NodeIndex)> node_attrs;
};

/// \brief Renders `g` in Graphviz DOT syntax.
std::string ToDot(const Digraph& g, const DotOptions& options = {});

}  // namespace paw

#endif  // PAW_GRAPH_DOT_H_

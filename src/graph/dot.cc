#include "src/graph/dot.h"

#include <sstream>

namespace paw {
namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ToDot(const Digraph& g, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph " << (options.name.empty() ? "g" : options.name) << " {\n";
  os << "  rankdir=TB;\n";
  for (NodeIndex u = 0; u < g.num_nodes(); ++u) {
    os << "  n" << u;
    std::string label =
        options.node_label ? options.node_label(u) : std::to_string(u);
    os << " [label=\"" << Escape(label) << "\"";
    if (options.node_attrs) {
      std::string attrs = options.node_attrs(u);
      if (!attrs.empty()) os << ", " << attrs;
    }
    os << "];\n";
  }
  for (const auto& [u, v] : g.Edges()) {
    os << "  n" << u << " -> n" << v;
    if (options.edge_label) {
      std::string label = options.edge_label(u, v);
      if (!label.empty()) os << " [label=\"" << Escape(label) << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace paw

#ifndef PAW_COMMON_FILE_IO_H_
#define PAW_COMMON_FILE_IO_H_

/// \file file_io.h
/// \brief File-system helpers for the persistent store.
///
/// Thin Status-returning wrappers over POSIX I/O: whole-file reads,
/// atomic (write-temp-then-rename) file replacement, and an append-only
/// file handle with explicit Flush/Sync for the write-ahead log. All
/// paths are interpreted by the host file system; callers pass
/// directories they own.

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace paw {

/// \brief Reads the entire file at `path`.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes `data` to `path`, replacing any existing file
/// atomically: the bytes go to `path.tmp`, are fsync'd, and the temp
/// file is renamed over `path`. Readers see the old or the new file,
/// never a prefix.
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// \brief Creates directory `path` (parents included); ok if it exists.
Status EnsureDir(const std::string& path);

/// \brief True iff `path` names an existing file or directory.
bool PathExists(const std::string& path);

/// \brief Names (not paths) of regular files directly under `dir`.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// \brief Deletes the file at `path`; ok if it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// \brief Atomically renames `from` to `to` (same directory or same
/// file system) and fsyncs the destination's parent directory so the
/// rename survives a crash.
Status RenameFile(const std::string& from, const std::string& to);

/// \brief An append-only file descriptor (the WAL's backing handle).
///
/// Appends buffer in user space; `Flush` pushes them to the OS and
/// `Sync` additionally fdatasync's to stable storage. Movable, not
/// copyable; the descriptor closes on destruction (without syncing).
///
/// A failed write poisons the handle: after any I/O error every
/// further `Append`/`Flush`/`Sync` returns that error, because a
/// partial write leaves the file in an unknown state and retrying
/// would interleave old buffered bytes with new frames. Callers
/// recover by reopening (the WAL's torn-tail repair cleans the file).
class AppendOnlyFile {
 public:
  /// \brief Opens `path` for appending, creating it if absent.
  static Result<AppendOnlyFile> Open(const std::string& path);

  AppendOnlyFile(AppendOnlyFile&& other) noexcept;
  AppendOnlyFile& operator=(AppendOnlyFile&& other) noexcept;
  AppendOnlyFile(const AppendOnlyFile&) = delete;
  AppendOnlyFile& operator=(const AppendOnlyFile&) = delete;
  ~AppendOnlyFile();

  /// \brief Buffers `data` for append.
  Status Append(std::string_view data);

  /// \brief Writes buffered data to the OS.
  Status Flush();

  /// \brief Flush + fdatasync: data is durable when this returns OK.
  Status Sync();

  /// \brief Bytes appended so far (file offset after Flush).
  int64_t size() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  AppendOnlyFile(std::string path, int fd, int64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_ = -1;
  int64_t size_ = 0;
  std::string buffer_;
  Status error_;  // sticky; non-OK poisons the handle
};

/// \brief Truncates the file at `path` to `size` bytes (torn-tail
/// repair). Fails if the file is shorter than `size`.
Status TruncateFile(const std::string& path, int64_t size);

}  // namespace paw

#endif  // PAW_COMMON_FILE_IO_H_

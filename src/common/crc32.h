#ifndef PAW_COMMON_CRC32_H_
#define PAW_COMMON_CRC32_H_

/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3, the zlib polynomial) for store checksums.
///
/// Every record the persistent store writes carries a CRC over its type
/// and payload so that torn or bit-rotted tails are detected on replay
/// rather than silently parsed. The implementation is a table-driven
/// slicing-by-8 variant (checksumming shows up in both append and
/// replay profiles); the classic byte-at-a-time form is kept as a
/// reference implementation for equivalence testing.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace paw {

/// \brief Extends a running CRC-32 with `n` more bytes.
///
/// Start from `0` (or a previous return value) and feed chunks in order;
/// the result is independent of the chunking.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t n);

/// \brief Reference byte-at-a-time implementation. Produces identical
/// results to `Crc32Update` (asserted by tests/crc32_test.cc); kept for
/// auditability, not used on hot paths.
uint32_t Crc32UpdateBytewise(uint32_t crc, const void* data, size_t n);

/// \brief CRC-32 of a complete buffer.
inline uint32_t Crc32(std::string_view data) {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace paw

#endif  // PAW_COMMON_CRC32_H_

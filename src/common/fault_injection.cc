#include "src/common/fault_injection.h"

#include "src/common/file_io.h"

namespace paw {

Result<FaultyFile> FaultyFile::Capture(const std::string& path) {
  PAW_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return FaultyFile(path, std::move(contents));
}

Status FaultyFile::Restore() const {
  // AtomicWriteFile so the injected image itself is never torn: each
  // sweep iteration starts from a well-defined file state.
  return AtomicWriteFile(path_, pristine_);
}

Status FaultyFile::TruncateAt(uint64_t size) const {
  if (size > pristine_.size()) {
    return Status::InvalidArgument(
        "TruncateAt(" + std::to_string(size) + ") exceeds pristine size " +
        std::to_string(pristine_.size()));
  }
  return AtomicWriteFile(
      path_, std::string_view(pristine_).substr(0, static_cast<size_t>(size)));
}

Status FaultyFile::FlipBit(uint64_t offset, int bit) const {
  if (offset >= pristine_.size()) {
    return Status::InvalidArgument(
        "FlipBit offset " + std::to_string(offset) + " out of range");
  }
  if (bit < 0 || bit > 7) {
    return Status::InvalidArgument("FlipBit bit must be in [0, 7]");
  }
  std::string damaged = pristine_;
  damaged[static_cast<size_t>(offset)] =
      static_cast<char>(damaged[static_cast<size_t>(offset)] ^ (1 << bit));
  return AtomicWriteFile(path_, damaged);
}

}  // namespace paw

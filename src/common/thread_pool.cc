#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace paw {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++outstanding_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping so submitted work is never
      // silently dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --outstanding_;
      if (outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(int num_threads, int n,
                 const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (num_threads <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(num_threads, n));
  // A shared counter instead of one queue entry per index: workers pull
  // the next index until exhausted, which balances uneven task costs
  // (e.g. shards of very different WAL lengths).
  std::atomic<int> next(0);
  for (int w = 0; w < pool.num_threads(); ++w) {
    pool.Submit([&next, n, &fn] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace paw

#include "src/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace paw {
namespace {
LogLevel g_level = LogLevel::kWarning;

/// Steady-clock origin shared by every line, captured on first use so
/// timestamps read as seconds since process start.
std::chrono::steady_clock::time_point LogEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       LogEpoch())
      .count();
}

/// Small sequential per-thread id, assigned on the thread's first log
/// line (readable, unlike the raw pthread handle).
int ThreadLogId() {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Formats the shared `TS tTID` part of the line prefix.
std::string PrefixStamp() {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f t%d", MonotonicSeconds(),
                ThreadLogId());
  return buf;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << PrefixStamp() << " " << file
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << PrefixStamp() << " " << file << ":" << line
          << "] check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace paw

#ifndef PAW_COMMON_THREAD_POOL_H_
#define PAW_COMMON_THREAD_POOL_H_

/// \file thread_pool.h
/// \brief A small fixed-size worker pool for shard-parallel store work.
///
/// The sharded store (src/store/sharded_repository.h) fans recovery and
/// compaction out across shard directories; each unit of work is
/// independent, so the pool is deliberately minimal: submit closures,
/// wait for the queue to drain. Tasks must not throw — the library is
/// Status-based, so tasks report failures through captured state.
///
/// `ParallelFor` is the common entry point: it runs `fn(0..n-1)` on up
/// to `num_threads` workers and — crucially for reproducibility tests —
/// degrades to a plain serial loop when `num_threads <= 1`, so a
/// single-threaded run involves no threads at all.

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paw {

/// \brief Fixed-size pool of worker threads with a shared FIFO queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Waits for in-flight tasks, then joins the workers. Tasks still
  /// queued but not started are executed before shutdown (the pool
  /// drains; it never drops work).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues one task.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished running.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for tasks
  std::condition_variable done_cv_;  // Wait() waits for drain
  int outstanding_ = 0;              // queued + running tasks
  bool stop_ = false;
};

/// \brief Runs `fn(i)` for `i` in `[0, n)` on up to `num_threads`
/// workers; returns after all calls complete. With `num_threads <= 1`
/// (or `n <= 1`) the calls run serially on the calling thread, in
/// index order.
void ParallelFor(int num_threads, int n,
                 const std::function<void(int)>& fn);

}  // namespace paw

#endif  // PAW_COMMON_THREAD_POOL_H_

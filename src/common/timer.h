#ifndef PAW_COMMON_TIMER_H_
#define PAW_COMMON_TIMER_H_

/// \file timer.h
/// \brief Wall-clock stopwatch used by the benchmark harness tables.

#include <chrono>

namespace paw {

/// \brief A steady-clock stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  /// \brief Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace paw

#endif  // PAW_COMMON_TIMER_H_

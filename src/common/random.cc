#include "src/common/random.h"

#include <cassert>
#include <cmath>

namespace paw {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Zipf(size_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF sampling over explicit weights. n is small in our
  // workloads (vocabulary/query-mix sizes), so the O(n) scan is fine.
  double total = 0;
  for (size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
  double u = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

std::string Rng::Identifier(size_t length) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) out.push_back(kAlpha[Uniform(26)]);
  return out;
}

}  // namespace paw

#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/store/record.h"

namespace paw {
namespace {

Status Malformed(const char* what) {
  return Status::FailedPrecondition(
      std::string("malformed metrics snapshot: ") + what);
}

/// Splits "family{labels}" into its parts; `labels` is empty (and
/// `*has_labels` false) for an unlabeled name.
void SplitName(std::string_view name, std::string_view* family,
               std::string_view* labels, bool* has_labels) {
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    *family = name;
    *labels = {};
    *has_labels = false;
    return;
  }
  *family = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
  *has_labels = true;
}

/// Formats a double the way the exposition and pretty-printers want
/// it: plain decimal, trailing zeros trimmed, "+Inf" for infinity.
std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(double first_bound, double growth, int num_buckets) {
  if (num_buckets < 1) num_buckets = 1;
  if (num_buckets > kMaxBuckets) num_buckets = kMaxBuckets;
  if (first_bound <= 0) first_bound = 1;
  if (growth <= 1) growth = 2;
  num_buckets_ = num_buckets;
  double bound = first_bound;
  for (int i = 0; i < num_buckets_; ++i) {
    bounds_[i] = bound;
    bound *= growth;
  }
  for (Stripe& stripe : stripes_) {
    for (int i = 0; i <= kMaxBuckets; ++i) {
      stripe.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

double HistogramData::Quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    // Overflow bucket: no upper bound to interpolate toward — clamp
    // to the last finite bound (the observation is at least that).
    if (i >= bounds.size()) return bounds.back();
    const double upper = bounds[i];
    const double lower = i == 0 ? 0 : bounds[i - 1];
    const double into =
        (target - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, into));
  }
  return bounds.back();
}

const MetricSample* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricSample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::SumCounters(std::string_view prefix) const {
  uint64_t total = 0;
  for (const MetricSample& sample : samples) {
    if (sample.kind == MetricSample::Kind::kCounter &&
        sample.name.compare(0, prefix.size(), prefix) == 0) {
      total += sample.counter;
    }
  }
  return total;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind == MetricSample::Kind::kCounter) {
      return *it->second.counter;
    }
    // Kind mismatch: hand back a live-but-unlisted dummy rather than
    // aliasing another kind or crashing.
    return counters_.emplace_back();
  }
  Counter& counter = counters_.emplace_back();
  Entry entry;
  entry.kind = MetricSample::Kind::kCounter;
  entry.counter = &counter;
  entries_.emplace(std::string(name), entry);
  return counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind == MetricSample::Kind::kGauge) {
      return *it->second.gauge;
    }
    return gauges_.emplace_back();
  }
  Gauge& gauge = gauges_.emplace_back();
  Entry entry;
  entry.kind = MetricSample::Kind::kGauge;
  entry.gauge = &gauge;
  entries_.emplace(std::string(name), entry);
  return gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         double first_bound, double growth,
                                         int num_buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind == MetricSample::Kind::kHistogram) {
      return *it->second.histogram;
    }
    return histograms_.emplace_back(first_bound, growth, num_buckets);
  }
  Histogram& histogram =
      histograms_.emplace_back(first_bound, growth, num_buckets);
  Entry entry;
  entry.kind = MetricSample::Kind::kHistogram;
  entry.histogram = &histogram;
  entries_.emplace(std::string(name), entry);
  return histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.samples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.kind = entry.kind;
    sample.name = name;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.counter = entry.counter->value();
        break;
      case MetricSample::Kind::kGauge:
        sample.gauge = entry.gauge->value();
        break;
      case MetricSample::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        sample.histogram.bounds.reserve(
            static_cast<size_t>(h.num_buckets()));
        for (int i = 0; i < h.num_buckets(); ++i) {
          sample.histogram.bounds.push_back(h.bound(i));
        }
        sample.histogram.buckets.reserve(
            static_cast<size_t>(h.num_buckets()) + 1);
        for (int i = 0; i <= h.num_buckets(); ++i) {
          sample.histogram.buckets.push_back(h.bucket_count(i));
        }
        sample.histogram.count = h.count();
        sample.histogram.sum = h.sum();
        break;
      }
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::Remove(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    entries_.erase(it);
  }
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  PutVarint64(&out, snapshot.samples.size());
  for (const MetricSample& sample : snapshot.samples) {
    out.push_back(static_cast<char>(sample.kind));
    PutLengthPrefixed(&out, sample.name);
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        PutVarint64(&out, sample.counter);
        break;
      case MetricSample::Kind::kGauge:
        PutVarint64(&out, ZigZag64(sample.gauge));
        break;
      case MetricSample::Kind::kHistogram: {
        const HistogramData& h = sample.histogram;
        PutVarint32(&out, static_cast<uint32_t>(h.bounds.size()));
        for (double bound : h.bounds) {
          uint64_t bits = 0;
          static_assert(sizeof(bits) == sizeof(bound));
          std::memcpy(&bits, &bound, sizeof(bits));
          PutFixed64(&out, bits);
        }
        for (uint64_t b : h.buckets) PutVarint64(&out, b);
        PutVarint64(&out, h.count);
        uint64_t sum_bits = 0;
        std::memcpy(&sum_bits, &h.sum, sizeof(sum_bits));
        PutFixed64(&out, sum_bits);
        break;
      }
    }
  }
  return out;
}

Result<MetricsSnapshot> DecodeMetricsSnapshot(std::string_view payload,
                                              size_t* offset) {
  MetricsSnapshot snapshot;
  uint64_t n = 0;
  if (!GetVarint64(payload, offset, &n)) return Malformed("sample count");
  // Bound the reserve by what the payload could plausibly hold (each
  // sample is at least 3 bytes), so a corrupt count cannot OOM us.
  if (n > payload.size()) return Malformed("implausible sample count");
  snapshot.samples.reserve(n);
  for (uint64_t s = 0; s < n; ++s) {
    MetricSample sample;
    if (*offset >= payload.size()) return Malformed("truncated sample");
    const uint8_t kind = static_cast<uint8_t>(payload[(*offset)++]);
    if (kind > static_cast<uint8_t>(MetricSample::Kind::kHistogram)) {
      return Malformed("unknown metric kind");
    }
    sample.kind = static_cast<MetricSample::Kind>(kind);
    std::string_view name;
    if (!GetLengthPrefixed(payload, offset, &name)) {
      return Malformed("metric name");
    }
    sample.name.assign(name);
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        if (!GetVarint64(payload, offset, &sample.counter)) {
          return Malformed("counter value");
        }
        break;
      case MetricSample::Kind::kGauge: {
        uint64_t zz = 0;
        if (!GetVarint64(payload, offset, &zz)) {
          return Malformed("gauge value");
        }
        sample.gauge = UnZigZag64(zz);
        break;
      }
      case MetricSample::Kind::kHistogram: {
        HistogramData& h = sample.histogram;
        uint32_t num_bounds = 0;
        if (!GetVarint32(payload, offset, &num_bounds) ||
            num_bounds > Histogram::kMaxBuckets) {
          return Malformed("histogram bucket count");
        }
        h.bounds.reserve(num_bounds);
        for (uint32_t i = 0; i < num_bounds; ++i) {
          uint64_t bits = 0;
          if (!GetFixed64(payload, offset, &bits)) {
            return Malformed("histogram bound");
          }
          double bound = 0;
          std::memcpy(&bound, &bits, sizeof(bound));
          h.bounds.push_back(bound);
        }
        h.buckets.reserve(num_bounds + 1);
        for (uint32_t i = 0; i <= num_bounds; ++i) {
          uint64_t b = 0;
          if (!GetVarint64(payload, offset, &b)) {
            return Malformed("histogram bucket");
          }
          h.buckets.push_back(b);
        }
        if (!GetVarint64(payload, offset, &h.count)) {
          return Malformed("histogram count");
        }
        uint64_t sum_bits = 0;
        if (!GetFixed64(payload, offset, &sum_bits)) {
          return Malformed("histogram sum");
        }
        std::memcpy(&h.sum, &sum_bits, sizeof(h.sum));
        break;
      }
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSample& sample : snapshot.samples) {
    std::string_view family, labels;
    bool has_labels = false;
    SplitName(sample.name, &family, &labels, &has_labels);
    if (family != last_family) {
      last_family.assign(family);
      out += "# TYPE ";
      out += family;
      switch (sample.kind) {
        case MetricSample::Kind::kCounter:
          out += " counter\n";
          break;
        case MetricSample::Kind::kGauge:
          out += " gauge\n";
          break;
        case MetricSample::Kind::kHistogram:
          out += " histogram\n";
          break;
      }
    }
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        out += sample.name;
        out += " " + std::to_string(sample.counter) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        out += sample.name;
        out += " " + std::to_string(sample.gauge) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        const HistogramData& h = sample.histogram;
        // `_bucket{...,le="bound"}` series are cumulative per the
        // Prometheus exposition format.
        uint64_t cumulative = 0;
        auto bucket_line = [&](const std::string& le, uint64_t value) {
          out += family;
          out += "_bucket{";
          if (has_labels) {
            out += labels;
            out += ",";
          }
          out += "le=\"" + le + "\"} " + std::to_string(value) + "\n";
        };
        for (size_t i = 0; i < h.buckets.size(); ++i) {
          cumulative += h.buckets[i];
          bucket_line(
              i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "+Inf",
              cumulative);
        }
        auto series = [&](const char* suffix, const std::string& value) {
          out += family;
          out += suffix;
          if (has_labels) {
            out += "{";
            out += labels;
            out += "}";
          }
          out += " " + value + "\n";
        };
        series("_sum", FormatDouble(h.sum));
        series("_count", std::to_string(h.count));
        break;
      }
    }
  }
  return out;
}

}  // namespace paw

#ifndef PAW_COMMON_FAULT_INJECTION_H_
#define PAW_COMMON_FAULT_INJECTION_H_

/// \file fault_injection.h
/// \brief Crash/corruption injection over store files (test harness).
///
/// `FaultyFile` captures a pristine copy of a file (typically a WAL just
/// written by a healthy store) and can then repeatedly reproduce crash
/// artifacts from it:
///
///  - `TruncateAt(k)`  — the file as a crash mid-append would leave it:
///                       exactly the first `k` bytes;
///  - `FlipBit(k, b)`  — silent media corruption: pristine contents with
///                       bit `b` of byte `k` inverted.
///
/// Each injection first restores the pristine bytes, so a test can sweep
/// every byte offset of the same capture without re-building the store.
/// Lives in src/common (not tests/) so crash sweeps in tests, benches,
/// and future fsck tooling share one implementation.

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace paw {

/// \brief Replays crash/corruption faults against a captured file.
class FaultyFile {
 public:
  /// \brief Snapshots the current contents of `path` as the pristine
  /// image all faults are derived from.
  static Result<FaultyFile> Capture(const std::string& path);

  /// \brief Rewrites the pristine contents.
  Status Restore() const;

  /// \brief Leaves only the first `size` bytes (crash mid-append).
  /// `size` must not exceed the pristine length.
  Status TruncateAt(uint64_t size) const;

  /// \brief Inverts bit `bit` (0..7) of byte `offset` (corruption).
  Status FlipBit(uint64_t offset, int bit) const;

  /// \brief Pristine length in bytes.
  int64_t size() const { return static_cast<int64_t>(pristine_.size()); }

  const std::string& path() const { return path_; }
  const std::string& pristine() const { return pristine_; }

 private:
  FaultyFile(std::string path, std::string pristine)
      : path_(std::move(path)), pristine_(std::move(pristine)) {}

  std::string path_;
  std::string pristine_;
};

}  // namespace paw

#endif  // PAW_COMMON_FAULT_INJECTION_H_

#include "src/common/crc32.h"

#include <array>

namespace paw {
namespace {

/// Eight lookup tables: table[0] is the classic byte-at-a-time table for
/// polynomial 0xEDB88320 (reflected 0x04C11DB7); table[k] advances a byte
/// through k additional zero bytes, enabling 8-byte steps (slicing-by-8).
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  constexpr Crc32Tables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = c;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

constexpr Crc32Tables kTables;

inline uint32_t Load32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~crc;
  while (n >= 8) {
    const uint32_t lo = Load32(p) ^ c;
    const uint32_t hi = Load32(p + 4);
    c = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
        kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
        kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
        kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) {
    c = (c >> 8) ^ kTables.t[0][(c ^ *p++) & 0xFFu];
  }
  return ~c;
}

uint32_t Crc32UpdateBytewise(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~crc;
  while (n--) {
    c = (c >> 8) ^ kTables.t[0][(c ^ *p++) & 0xFFu];
  }
  return ~c;
}

}  // namespace paw

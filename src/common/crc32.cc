#include "src/common/crc32.h"

#include <array>

namespace paw {
namespace {

/// Four lookup tables: table[0] is the classic byte-at-a-time table for
/// polynomial 0xEDB88320 (reflected 0x04C11DB7); table[k] advances a byte
/// through k additional zero bytes, enabling 4-byte steps.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  constexpr Crc32Tables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

constexpr Crc32Tables kTables;

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~crc;
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = kTables.t[3][c & 0xFFu] ^ kTables.t[2][(c >> 8) & 0xFFu] ^
        kTables.t[1][(c >> 16) & 0xFFu] ^ kTables.t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n--) {
    c = (c >> 8) ^ kTables.t[0][(c ^ *p++) & 0xFFu];
  }
  return ~c;
}

}  // namespace paw

#include "src/common/status.h"

namespace paw {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace paw

#ifndef PAW_COMMON_STATUS_H_
#define PAW_COMMON_STATUS_H_

/// \file status.h
/// \brief Error model for the paw library.
///
/// The library does not throw exceptions. Fallible operations return a
/// `Status`, or a `Result<T>` when they also produce a value — the idiom
/// used by Arrow and RocksDB. `PAW_RETURN_NOT_OK` / `PAW_ASSIGN_OR_RETURN`
/// provide early-return plumbing.

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace paw {

/// \brief Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kPermissionDenied,
  kUnimplemented,
  kInternal,
};

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: OK, or a code plus message.
///
/// OK carries no allocation; error states carry a heap string. `Status` is
/// cheap to move and cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not
  /// be `kOk` (use the default constructor for that).
  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {
    assert(code != StatusCode::kOk || rep_ == nullptr);
  }

  /// \brief The canonical OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// \brief True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// \brief The status code; `kOk` when `ok()`.
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// \brief The error message; empty when `ok()`.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsPermissionDenied() const {
    return code() == StatusCode::kPermissionDenied;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // nullptr <=> OK
};

/// \brief A value of type `T`, or the `Status` explaining its absence.
///
/// Accessing `value()` on an error result aborts in debug builds; call
/// `ok()` first, or use `PAW_ASSIGN_OR_RETURN`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` is a bug.
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok());
  }

  /// \brief True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(var_); }

  /// \brief The status: OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  /// \brief Borrow the contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  /// \brief Move the contained value out. Requires `ok()`.
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  /// \brief `value()` if present, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> var_;
};

namespace internal {
#define PAW_CONCAT_IMPL(a, b) a##b
#define PAW_CONCAT(a, b) PAW_CONCAT_IMPL(a, b)
}  // namespace internal

/// Evaluates `expr` (a `Status`); returns it from the enclosing function on
/// error.
#define PAW_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::paw::Status _paw_status = (expr);    \
    if (!_paw_status.ok()) return _paw_status; \
  } while (false)

/// Evaluates `rexpr` (a `Result<T>`); on error returns its status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define PAW_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  PAW_ASSIGN_OR_RETURN_IMPL(PAW_CONCAT(_paw_result_, __LINE__), lhs, rexpr)

#define PAW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace paw

#endif  // PAW_COMMON_STATUS_H_

#ifndef PAW_COMMON_RANDOM_H_
#define PAW_COMMON_RANDOM_H_

/// \file random.h
/// \brief Deterministic pseudo-random generation for workloads and tests.
///
/// All synthetic workloads in the repository are seeded, so every benchmark
/// row and every property test is exactly reproducible. The generator is a
/// splitmix64-seeded xoshiro256**.

#include <cstdint>
#include <string>
#include <vector>

namespace paw {

/// \brief Seeded pseudo-random number generator (xoshiro256**).
class Rng {
 public:
  /// Constructs a generator from a seed; equal seeds give equal streams.
  explicit Rng(uint64_t seed);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in `[0, bound)`. `bound` must be positive.
  uint64_t Uniform(uint64_t bound);

  /// \brief Uniform integer in `[lo, hi]` inclusive. Requires `lo <= hi`.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform double in `[0, 1)`.
  double UniformDouble();

  /// \brief Bernoulli draw with success probability `p`.
  bool Bernoulli(double p);

  /// \brief Zipf-distributed rank in `[0, n)` with skew `s` (s=0 uniform).
  ///
  /// Uses the standard inverse-CDF over precomputable weights; intended for
  /// modest `n` (keyword vocabularies, query mixes).
  size_t Zipf(size_t n, double s);

  /// \brief Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// \brief Random lowercase identifier of the given length.
  std::string Identifier(size_t length);

 private:
  uint64_t state_[4];
};

}  // namespace paw

#endif  // PAW_COMMON_RANDOM_H_

#ifndef PAW_COMMON_TRACE_H_
#define PAW_COMMON_TRACE_H_

/// \file trace.h
/// \brief Process-wide lock-free span flight recorder + trace context.
///
/// One user request now crosses client → leader → group commit →
/// replication stream → follower; this file holds the pieces that let
/// a single trace id follow it the whole way:
///
/// - `TraceContext`: the 16-byte context (trace id + parent span id)
///   carried as a frame trailer on protocol-v2 connections (see
///   src/server/wire.h) and through WAL commit batches into the
///   replication stream.
/// - `TraceRecorder`: a fixed-size ring of structured `Span` records.
///   The hot path is one relaxed `fetch_add` to reserve a slot plus a
///   per-slot seqlock publish — no mutex, no allocation; concurrent
///   readers (`Collect`) retry slots that change under them.
/// - Head-sampling: `set_sample_n(n)` records 1-in-n traces,
///   deterministically by `trace_id % n`, so every node of a cluster
///   independently agrees on whether a given trace is sampled without
///   extra wire bits. Slow/error requests are recorded regardless at
///   the server's Respond step (the coarse request-family spans; the
///   full sub-layer detail exists only for head-sampled traces, which
///   cannot retroactively know a request will turn out slow).
/// - The privacy **audit channel**: one structured event per
///   privacy-enforced access, written into the same ring with
///   `kind == kAudit` (never sampled away) and counted by
///   `paw_audit_events_total{verdict=...}`.
///
/// Everything here compiles out under `PAW_NO_TRACE` in the
/// `PAW_NO_METRICS` style: recording becomes an empty inline, but the
/// context plumbing, the codec, and `Collect` (returning nothing)
/// remain, so the wire format and every caller are identical across
/// builds.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace paw {

/// \brief The wire-propagated trace context: which trace a request
/// belongs to and the sender-side span the receiver should parent its
/// spans under. `trace_id == 0` means "no context" (an untraced v1
/// peer, or a background operation).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

/// \brief Encoded size of a TraceContext frame trailer: two fixed64s.
inline constexpr size_t kTraceContextBytes = 16;

/// \brief Appends the 16-byte trailer encoding of `ctx` to `out`.
void AppendTraceContext(const TraceContext& ctx, std::string* out);

/// \brief Decodes a 16-byte trailer; false when `buf` is short.
bool ParseTraceContext(std::string_view buf, TraceContext* out);

/// \brief Canonical rendering of a trace id: 16 lowercase hex digits
/// (used by slow-log `trace=` attributes and pawctl; `pawctl connect
/// trace --id=` parses the same form).
std::string TraceIdHex(uint64_t trace_id);

/// \brief What a ring entry records.
enum class SpanKind : uint8_t {
  kSpan = 0,   ///< a timed operation
  kAudit = 1,  ///< a privacy-enforcement audit event (point-in-time)
};

/// \brief Span flag bits.
enum SpanFlags : uint8_t {
  kSpanFlagSlow = 1,   ///< root of a request over the slow threshold
  kSpanFlagError = 2,  ///< root of a request that failed
};

/// \brief One recorded span (or audit event). Fixed-size POD so ring
/// slots never allocate; names/principals/details are truncated to
/// their fields.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  int64_t start_us = 0;  ///< CLOCK_MONOTONIC-based microseconds
  int64_t end_us = 0;
  uint32_t result_bytes = 0;
  uint8_t opcode = 0;       ///< wire opcode, 0 when not request-bound
  uint8_t status_code = 0;  ///< StatusCode of the outcome, 0 = OK
  SpanKind kind = SpanKind::kSpan;
  uint8_t flags = 0;
  char name[24] = {};       ///< "server.add_execution", "wal.fsync", ...
  char principal[16] = {};  ///< authed principal, empty when none
  char detail[56] = {};     ///< free-form "k=v k=v" attributes

  void set_name(std::string_view v) { CopyTo(v, name, sizeof(name)); }
  void set_principal(std::string_view v) {
    CopyTo(v, principal, sizeof(principal));
  }
  void set_detail(std::string_view v) { CopyTo(v, detail, sizeof(detail)); }
  std::string_view name_view() const { return View(name, sizeof(name)); }
  std::string_view principal_view() const {
    return View(principal, sizeof(principal));
  }
  std::string_view detail_view() const {
    return View(detail, sizeof(detail));
  }

 private:
  static void CopyTo(std::string_view v, char* dst, size_t cap) {
    const size_t n = v.size() < cap ? v.size() : cap;
    std::memcpy(dst, v.data(), n);
    if (n < cap) std::memset(dst + n, 0, cap - n);
  }
  static std::string_view View(const char* src, size_t cap) {
    size_t n = 0;
    while (n < cap && src[n] != '\0') ++n;
    return {src, n};
  }
};

/// \brief Monotonic microseconds (the clock every span timestamp
/// uses). Monotonic so spans order correctly across threads of one
/// process; timestamps are not comparable across nodes.
int64_t TraceNowMicros();

/// \brief The process-wide span ring.
///
/// Thread-safe for any mix of writers and readers. Writers reserve a
/// slot with one relaxed `fetch_add` and publish through a per-slot
/// sequence word (odd = being written); readers copy a slot and retry
/// if its sequence moved. A reader racing a wrapped writer therefore
/// skips (never tears) the slot.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultSlots = 8192;

  explicit TraceRecorder(size_t slots = kDefaultSlots);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// \brief The process-wide recorder every layer records into.
  static TraceRecorder& Global();

  /// \brief Head-sampling knob: record 1-in-n traces (by
  /// `trace_id % n == 0`); 0 and 1 both mean "record every trace".
  void set_sample_n(uint32_t n) {
    sample_n_.store(n, std::memory_order_relaxed);
  }
  uint32_t sample_n() const {
    return sample_n_.load(std::memory_order_relaxed);
  }

  /// \brief True iff spans of `trace_id` should be recorded under the
  /// current sampling knob. Deterministic in the id, so every node
  /// agrees without coordination. False for the null trace id.
  bool Sampled(uint64_t trace_id) const {
    if (trace_id == 0) return false;
    const uint32_t n = sample_n_.load(std::memory_order_relaxed);
    return n <= 1 || trace_id % n == 0;
  }

  /// \brief A fresh nonzero trace id (process-random base + counter,
  /// so concurrent processes do not collide in practice).
  uint64_t NewTraceId();

  /// \brief A fresh nonzero span id.
  uint64_t NewSpanId();

#if defined(PAW_NO_TRACE)
  void Record(const Span&) {}
#else
  /// \brief Writes `span` into the ring (unconditionally — sampling is
  /// the caller's decision, via `Sampled` or a force bit).
  void Record(const Span& span);
#endif

  /// \brief Snapshot of every live slot, oldest first. Spans of one
  /// trace may interleave with others; callers group by trace id.
  std::vector<Span> Collect() const;

  /// \brief Total spans ever recorded (monotonic; ring overwrites do
  /// not decrement).
  uint64_t recorded_total() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// \brief Empties the ring (tests).
  void ResetForTesting();

  size_t capacity() const { return slots_; }

 private:
  struct Slot;
  const size_t slots_;
  std::unique_ptr<Slot[]> ring_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint32_t> sample_n_{64};
  std::atomic<uint64_t> id_counter_{0};
  uint64_t id_base_ = 0;  ///< random per-process id prefix
};

// ---- Thread-local current context ------------------------------------------
//
// The request's context rides a thread-local so layers with no
// signature room for it (writer-queue drains, WAL group commit, the
// query engine's catch-up) can still parent their spans correctly.

/// \brief The calling thread's current trace context (null when the
/// thread is not serving a traced request).
TraceContext CurrentTraceContext();

/// \brief Sets the calling thread's context; returns the previous one.
TraceContext SetCurrentTraceContext(TraceContext ctx);

/// \brief RAII: installs `ctx` for the scope, restores on exit.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx)
      : prev_(SetCurrentTraceContext(ctx)) {}
  ~ScopedTraceContext() { SetCurrentTraceContext(prev_); }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// \brief RAII convenience for sub-layer spans: starts a clock at
/// construction and, if the thread's current trace is sampled, records
/// a span `[ctor, dtor]` named `name`, parented under the current
/// context. Cost when the trace is unsampled (the common case): one
/// thread-local read and one integer compare.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name)
#if defined(PAW_NO_TRACE)
  {
    (void)name;
  }
#else
      : ctx_(CurrentTraceContext()),
        live_(ctx_.valid() && TraceRecorder::Global().Sampled(ctx_.trace_id)),
        start_us_(live_ ? TraceNowMicros() : 0),
        name_(name) {
  }
#endif
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// \brief Attaches a detail string reported with the span.
  void set_detail(std::string detail) {
#if defined(PAW_NO_TRACE)
    (void)detail;
#else
    if (live_) detail_ = std::move(detail);
#endif
  }

  /// \brief Marks the span failed (sets kSpanFlagError when recorded).
  void set_error() {
#if !defined(PAW_NO_TRACE)
    flags_ |= kSpanFlagError;
#endif
  }

 private:
#if !defined(PAW_NO_TRACE)
  TraceContext ctx_;
  bool live_ = false;
  int64_t start_us_ = 0;
  std::string_view name_;
  std::string detail_;
  uint8_t flags_ = 0;
#endif
};

// ---- Audit channel ----------------------------------------------------------

/// \brief Verdict of one privacy-enforced access.
enum class AuditVerdict : uint8_t {
  kServed = 0,  ///< answered, nothing withheld for this principal
  kMasked = 1,  ///< answered with values masked / structure zoomed out
  kDenied = 2,  ///< refused outright
};

std::string_view AuditVerdictName(AuditVerdict verdict);

/// \brief Records one privacy audit event into the ring (joined to the
/// thread's current trace when one is set — audit events are recorded
/// even for unsampled traces) and bumps
/// `paw_audit_events_total{verdict=...}`. `detail` is the structured
/// "spec=.. group=g@2 masked=N zoom=D cache=hit" payload.
void RecordAuditEvent(AuditVerdict verdict, std::string_view principal,
                      uint8_t opcode, std::string_view detail);

// ---- Span snapshot codec ----------------------------------------------------
//
// The TRACE_DUMP payload: `varint n | n x span`, each span a fixed
// field group. Shared by server and pawctl; wire_test fuzzes it.

std::string EncodeSpans(const std::vector<Span>& spans);
Result<std::vector<Span>> DecodeSpans(std::string_view payload,
                                      size_t* offset);

}  // namespace paw

#endif  // PAW_COMMON_TRACE_H_

#include "src/common/strings.h"

#include <algorithm>
#include <cctype>

namespace paw {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      cur.push_back(static_cast<char>(std::tolower(
          static_cast<unsigned char>(ch))));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  std::string h = ToLowerAscii(haystack);
  std::string n = ToLowerAscii(needle);
  return h.find(n) != std::string::npos;
}

bool TokensContainPhrase(const std::vector<std::string>& text_tokens,
                         std::string_view phrase) {
  for (const std::string& want : Tokenize(phrase)) {
    if (std::find(text_tokens.begin(), text_tokens.end(), want) ==
        text_tokens.end()) {
      return false;
    }
  }
  return true;
}

std::string QuoteField(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\"";
  return out;
}

Result<std::vector<std::string>> SplitFields(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quote = false;
  bool any = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quote) {
      if (c == '\\' && i + 1 < line.size()) {
        cur.push_back(line[++i]);
      } else if (c == '"') {
        in_quote = false;
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quote = true;
      any = true;
    } else if (c == ' ' || c == '\t') {
      if (any || !cur.empty()) out.push_back(cur);
      cur.clear();
      any = false;
    } else {
      cur.push_back(c);
    }
  }
  if (in_quote) return Status::InvalidArgument("unterminated quote: " + line);
  if (any || !cur.empty()) out.push_back(cur);
  return out;
}

bool KeyValueField(const std::string& field, std::string_view key,
                   std::string* value) {
  // >=: `key=` carries a legitimately empty value (e.g. an execution
  // item whose value is "" serializes as `value=""`).
  if (field.size() >= key.size() + 1 &&
      field.compare(0, key.size(), key) == 0 && field[key.size()] == '=') {
    // SplitFields has already consumed the syntactic quotes of
    // key="v" fields; any quotes still present are data and must
    // survive (round-trip of values like "\"x\"").
    *value = field.substr(key.size() + 1);
    return true;
  }
  return false;
}

}  // namespace paw

#ifndef PAW_COMMON_STRINGS_H_
#define PAW_COMMON_STRINGS_H_

/// \file strings.h
/// \brief Small string utilities used across the library (tokenization for
/// keyword search, joining for diagnostics, trimming for the serializer).

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace paw {

/// \brief Lowercases ASCII characters in `s`.
std::string ToLowerAscii(std::string_view s);

/// \brief Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Lowercased alphanumeric word tokens of `s` ("Query OMIM" ->
/// {"query", "omim"}). This is the tokenization used by the keyword index.
std::vector<std::string> Tokenize(std::string_view s);

/// \brief True iff `haystack` contains `needle` case-insensitively.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// \brief True iff every word token of `phrase` appears among the tokens of
/// `text` (order-insensitive phrase match; used by keyword covering).
bool TokensContainPhrase(const std::vector<std::string>& text_tokens,
                         std::string_view phrase);

// ---- Line-oriented field syntax (shared by the text serializers) ----
//
// The spec, provenance and policy serializers all emit lines of
// whitespace-separated fields where double-quoted fields may contain
// spaces and backslash-escaped quotes, and `key=value` stays one field.

/// \brief Wraps `s` in double quotes, escaping `"` and `\`.
std::string QuoteField(const std::string& s);

/// \brief Splits a serializer line into fields (see syntax above).
Result<std::vector<std::string>> SplitFields(const std::string& line);

/// \brief If `field` is `key=value`, stores the value (possibly
/// empty) and returns true; otherwise leaves `value` alone and
/// returns false.
bool KeyValueField(const std::string& field, std::string_view key,
                   std::string* value);

}  // namespace paw

#endif  // PAW_COMMON_STRINGS_H_

#ifndef PAW_COMMON_STRINGS_H_
#define PAW_COMMON_STRINGS_H_

/// \file strings.h
/// \brief Small string utilities used across the library (tokenization for
/// keyword search, joining for diagnostics, trimming for the serializer).

#include <string>
#include <string_view>
#include <vector>

namespace paw {

/// \brief Lowercases ASCII characters in `s`.
std::string ToLowerAscii(std::string_view s);

/// \brief Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Lowercased alphanumeric word tokens of `s` ("Query OMIM" ->
/// {"query", "omim"}). This is the tokenization used by the keyword index.
std::vector<std::string> Tokenize(std::string_view s);

/// \brief True iff `haystack` contains `needle` case-insensitively.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// \brief True iff every word token of `phrase` appears among the tokens of
/// `text` (order-insensitive phrase match; used by keyword covering).
bool TokensContainPhrase(const std::vector<std::string>& text_tokens,
                         std::string_view phrase);

}  // namespace paw

#endif  // PAW_COMMON_STRINGS_H_

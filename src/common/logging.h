#ifndef PAW_COMMON_LOGGING_H_
#define PAW_COMMON_LOGGING_H_

/// \file logging.h
/// \brief Minimal leveled logging and check macros.
///
/// The library is quiet by default (`kWarning`); benchmarks and examples can
/// raise verbosity. `PAW_CHECK` is for invariant violations that indicate a
/// bug in the library itself, never for user errors (those get `Status`).
///
/// **Line format.** Every line is prefixed
///
/// \code
///   [LEVEL TS tTID file:line] message
/// \endcode
///
/// where `TS` is a monotonic (steady-clock) timestamp in seconds since
/// process start with microsecond resolution (e.g. `12.004317`) —
/// monotonic so deltas between lines are meaningful even when the wall
/// clock steps — and `TID` is a small sequential id assigned to each
/// logging thread on its first line (stable for the thread's lifetime,
/// so interleaved server/worker output can be teased apart).

#include <sstream>
#include <string>

namespace paw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// \brief Current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-collecting helper behind the PAW_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborting variant used by PAW_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define PAW_LOG(level)                                                     \
  if (::paw::LogLevel::level < ::paw::GetLogLevel()) {                     \
  } else                                                                   \
    ::paw::internal::LogMessage(::paw::LogLevel::level, __FILE__, __LINE__) \
        .stream()

/// Aborts with a message when `cond` is false. Library-bug assertions only.
#define PAW_CHECK(cond)                                                  \
  if (cond) {                                                            \
  } else                                                                 \
    ::paw::internal::FatalLogMessage(__FILE__, __LINE__, #cond).stream()

}  // namespace paw

#endif  // PAW_COMMON_LOGGING_H_

#include "src/common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <type_traits>

#include "src/common/metrics.h"
#include "src/store/record.h"

namespace paw {

namespace {

Status Malformed(std::string_view what) {
  return Status::InvalidArgument("malformed span payload: " +
                                 std::string(what));
}

}  // namespace

void AppendTraceContext(const TraceContext& ctx, std::string* out) {
  PutFixed64(out, ctx.trace_id);
  PutFixed64(out, ctx.span_id);
}

bool ParseTraceContext(std::string_view buf, TraceContext* out) {
  size_t offset = 0;
  return GetFixed64(buf, &offset, &out->trace_id) &&
         GetFixed64(buf, &offset, &out->span_id);
}

std::string TraceIdHex(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

int64_t TraceNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- TraceRecorder ----------------------------------------------------------

static_assert(sizeof(Span) % 8 == 0, "Span must be a whole word count");
static_assert(std::is_trivially_copyable_v<Span>,
              "Span is copied word-by-word through the seqlock");

/// A ring slot: the span payload plus a seqlock word. Even seq =
/// stable, odd = mid-write; a writer bumps to odd, fills the payload,
/// then stores the even successor with release. Readers load seq
/// before and after copying and discard on any change. The payload is
/// held as relaxed atomic words (not a plain Span) so a racy
/// copy-while-writing is a discarded value, not undefined behavior —
/// the Boehm seqlock recipe, and what keeps TSan quiet.
struct TraceRecorder::Slot {
  static constexpr size_t kWords = sizeof(Span) / 8;
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> words[kWords];
};

TraceRecorder::TraceRecorder(size_t slots)
    : slots_(slots == 0 ? 1 : slots), ring_(new Slot[slots == 0 ? 1 : slots]) {
  // Seed the id space from the system entropy source once per
  // recorder, so ids from concurrent processes (leader + follower on
  // one box) land in different ranges.
  std::random_device rd;
  id_base_ = (static_cast<uint64_t>(rd()) << 32) ^ rd();
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

uint64_t TraceRecorder::NewTraceId() {
  uint64_t id = 0;
  while (id == 0) {
    // Mix the counter through a splitmix64 step so consecutive ids are
    // spread across the modulo classes `Sampled` partitions by —
    // otherwise `% n` would sample in phase with request order.
    uint64_t x =
        id_base_ + id_counter_.fetch_add(1, std::memory_order_relaxed);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    id = x ^ (x >> 31);
  }
  return id;
}

uint64_t TraceRecorder::NewSpanId() { return NewTraceId(); }

#if !defined(PAW_NO_TRACE)
void TraceRecorder::Record(const Span& span) {
  static Counter& recorded =
      MetricsRegistry::Global().GetCounter("paw_trace_spans_recorded_total");
  recorded.Add();
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[ticket % slots_];
  uint64_t words[Slot::kWords];
  std::memcpy(words, &span, sizeof(span));
  // Writers that lap each other on a full ring can interleave on one
  // slot; readers then skip it (seq keeps changing), which is the
  // right degradation for a flight recorder.
  const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq | 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < Slot::kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store((seq | 1) + 1, std::memory_order_release);
}
#endif

std::vector<Span> TraceRecorder::Collect() const {
  std::vector<Span> out;
#if !defined(PAW_NO_TRACE)
  const uint64_t head = next_.load(std::memory_order_acquire);
  const uint64_t live = head < slots_ ? head : slots_;
  const uint64_t first = head - live;
  out.reserve(live);
  for (uint64_t ticket = first; ticket < head; ++ticket) {
    const Slot& slot = ring_[ticket % slots_];
    for (int attempt = 0; attempt < 3; ++attempt) {
      const uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) break;  // empty or mid-write
      uint64_t words[Slot::kWords];
      for (size_t i = 0; i < Slot::kWords; ++i) {
        words[i] = slot.words[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) == before) {
        Span copy;
        std::memcpy(&copy, words, sizeof(copy));
        out.push_back(copy);
        break;
      }
    }
  }
#endif
  return out;
}

void TraceRecorder::ResetForTesting() {
#if !defined(PAW_NO_TRACE)
  const uint64_t n = slots_;
  for (uint64_t i = 0; i < n; ++i) {
    ring_[i].seq.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_release);
#endif
}

// ---- Thread-local context ---------------------------------------------------

namespace {
thread_local TraceContext g_current_ctx;
}  // namespace

TraceContext CurrentTraceContext() { return g_current_ctx; }

TraceContext SetCurrentTraceContext(TraceContext ctx) {
  TraceContext prev = g_current_ctx;
  g_current_ctx = ctx;
  return prev;
}

ScopedSpan::~ScopedSpan() {
#if !defined(PAW_NO_TRACE)
  if (!live_) return;
  Span span;
  span.trace_id = ctx_.trace_id;
  span.span_id = TraceRecorder::Global().NewSpanId();
  span.parent_span_id = ctx_.span_id;
  span.start_us = start_us_;
  span.end_us = TraceNowMicros();
  span.set_name(name_);
  span.flags = flags_;
  if (!detail_.empty()) span.set_detail(detail_);
  TraceRecorder::Global().Record(span);
#endif
}

// ---- Audit channel ----------------------------------------------------------

std::string_view AuditVerdictName(AuditVerdict verdict) {
  switch (verdict) {
    case AuditVerdict::kServed:
      return "served";
    case AuditVerdict::kMasked:
      return "masked";
    case AuditVerdict::kDenied:
      return "denied";
  }
  return "unknown";
}

void RecordAuditEvent(AuditVerdict verdict, std::string_view principal,
                      uint8_t opcode, std::string_view detail) {
  {
    // The counters exist in every build (metrics has its own
    // compile-out), so dashboards see audit volume even when the ring
    // is compiled away.
    static Counter& served = MetricsRegistry::Global().GetCounter(
        "paw_audit_events_total{verdict=\"served\"}");
    static Counter& masked = MetricsRegistry::Global().GetCounter(
        "paw_audit_events_total{verdict=\"masked\"}");
    static Counter& denied = MetricsRegistry::Global().GetCounter(
        "paw_audit_events_total{verdict=\"denied\"}");
    switch (verdict) {
      case AuditVerdict::kServed:
        served.Add();
        break;
      case AuditVerdict::kMasked:
        masked.Add();
        break;
      case AuditVerdict::kDenied:
        denied.Add();
        break;
    }
  }
#if !defined(PAW_NO_TRACE)
  const int64_t now = TraceNowMicros();
  Span span;
  // Audit events join the surrounding trace when one is set, but are
  // recorded regardless of sampling: the audit log must be complete,
  // not statistical.
  const TraceContext ctx = CurrentTraceContext();
  span.trace_id = ctx.trace_id;
  span.span_id = TraceRecorder::Global().NewSpanId();
  span.parent_span_id = ctx.span_id;
  span.start_us = now;
  span.end_us = now;
  span.opcode = opcode;
  span.status_code = static_cast<uint8_t>(verdict);
  span.kind = SpanKind::kAudit;
  span.set_name(AuditVerdictName(verdict));
  span.set_principal(principal);
  span.set_detail(detail);
  TraceRecorder::Global().Record(span);
#endif
}

// ---- Span codec -------------------------------------------------------------

std::string EncodeSpans(const std::vector<Span>& spans) {
  std::string out;
  PutVarint64(&out, spans.size());
  for (const Span& s : spans) {
    PutFixed64(&out, s.trace_id);
    PutFixed64(&out, s.span_id);
    PutFixed64(&out, s.parent_span_id);
    PutVarint64(&out, ZigZag64(s.start_us));
    PutVarint64(&out, ZigZag64(s.end_us - s.start_us));
    PutVarint32(&out, s.result_bytes);
    out.push_back(static_cast<char>(s.opcode));
    out.push_back(static_cast<char>(s.status_code));
    out.push_back(static_cast<char>(s.kind));
    out.push_back(static_cast<char>(s.flags));
    PutLengthPrefixed(&out, s.name_view());
    PutLengthPrefixed(&out, s.principal_view());
    PutLengthPrefixed(&out, s.detail_view());
  }
  return out;
}

Result<std::vector<Span>> DecodeSpans(std::string_view payload,
                                      size_t* offset) {
  uint64_t n = 0;
  if (!GetVarint64(payload, offset, &n)) return Malformed("span count");
  if (n > payload.size()) return Malformed("implausible span count");
  std::vector<Span> spans;
  spans.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Span s;
    uint64_t start_zz = 0, dur_zz = 0;
    std::string_view bytes4;
    std::string_view name, principal, detail;
    if (!GetFixed64(payload, offset, &s.trace_id) ||
        !GetFixed64(payload, offset, &s.span_id) ||
        !GetFixed64(payload, offset, &s.parent_span_id) ||
        !GetVarint64(payload, offset, &start_zz) ||
        !GetVarint64(payload, offset, &dur_zz) ||
        !GetVarint32(payload, offset, &s.result_bytes) ||
        !GetBytes(payload, offset, 4, &bytes4) ||
        !GetLengthPrefixed(payload, offset, &name) ||
        !GetLengthPrefixed(payload, offset, &principal) ||
        !GetLengthPrefixed(payload, offset, &detail)) {
      return Malformed("span fields");
    }
    s.start_us = UnZigZag64(start_zz);
    s.end_us = s.start_us + UnZigZag64(dur_zz);
    s.opcode = static_cast<uint8_t>(bytes4[0]);
    s.status_code = static_cast<uint8_t>(bytes4[1]);
    const uint8_t kind = static_cast<uint8_t>(bytes4[2]);
    if (kind > static_cast<uint8_t>(SpanKind::kAudit)) {
      return Malformed("span kind");
    }
    s.kind = static_cast<SpanKind>(kind);
    s.flags = static_cast<uint8_t>(bytes4[3]);
    s.set_name(name);
    s.set_principal(principal);
    s.set_detail(detail);
    spans.push_back(s);
  }
  return spans;
}

}  // namespace paw

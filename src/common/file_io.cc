#include "src/common/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace paw {
namespace {

namespace fs = std::filesystem;

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

/// fsync the directory containing `path` so a rename within it is durable.
Status SyncParentDir(const std::string& path) {
  fs::path parent = fs::path(path).parent_path();
  if (parent.empty()) parent = ".";
  int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir", parent.string());
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync dir", parent.string());
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("read failed: " + path);
  return buffer.str();
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return ErrnoStatus("write", tmp);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus("fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus("rename", path);
  }
  return SyncParentDir(path);
}

Status EnsureDir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::Internal("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

bool PathExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> names;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec)) names.push_back(it->path().filename());
  }
  // Internal, not NotFound: callers (e.g. snapshot discovery) treat
  // NotFound as "nothing there", which must not swallow I/O errors.
  if (ec) return Status::Internal("list " + dir + ": " + ec.message());
  return names;
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::Internal("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to);
  }
  return SyncParentDir(to);
}

Result<AppendOnlyFile> AppendOnlyFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("fstat", path);
  }
  return AppendOnlyFile(path, fd, static_cast<int64_t>(st.st_size));
}

AppendOnlyFile::AppendOnlyFile(AppendOnlyFile&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      size_(other.size_),
      buffer_(std::move(other.buffer_)),
      error_(std::move(other.error_)) {
  other.fd_ = -1;
}

AppendOnlyFile& AppendOnlyFile::operator=(AppendOnlyFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    size_ = other.size_;
    buffer_ = std::move(other.buffer_);
    error_ = std::move(other.error_);
    other.fd_ = -1;
  }
  return *this;
}

AppendOnlyFile::~AppendOnlyFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendOnlyFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
  PAW_RETURN_NOT_OK(error_);
  buffer_.append(data.data(), data.size());
  size_ += static_cast<int64_t>(data.size());
  // Keep the user-space buffer bounded; large appends go straight out.
  if (buffer_.size() >= 1 << 16) return Flush();
  return Status::OK();
}

Status AppendOnlyFile::Flush() {
  if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
  PAW_RETURN_NOT_OK(error_);
  const char* p = buffer_.data();
  size_t left = buffer_.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partial write may have reached the disk; the file state is
      // unknown, so poison the handle rather than risk re-writing
      // buffered bytes after a later frame.
      error_ = ErrnoStatus("write", path_);
      return error_;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::OK();
}

Status AppendOnlyFile::Sync() {
  PAW_RETURN_NOT_OK(Flush());
  if (::fdatasync(fd_) != 0) {
    error_ = ErrnoStatus("fdatasync", path_);
    return error_;
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, int64_t size) {
  std::error_code ec;
  auto current = fs::file_size(path, ec);
  if (ec) return Status::NotFound("stat " + path + ": " + ec.message());
  if (static_cast<int64_t>(current) < size) {
    return Status::InvalidArgument("truncate would extend " + path);
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate", path);
  }
  return Status::OK();
}

}  // namespace paw

#ifndef PAW_COMMON_METRICS_H_
#define PAW_COMMON_METRICS_H_

/// \file metrics.h
/// \brief Process-wide registry of lock-free counters, gauges, and
/// fixed-bucket latency histograms.
///
/// Design goals, in order:
///
///   1. **Hot-path cost is one relaxed atomic add.** `Counter::Add`,
///      `Gauge::Add/Set`, and `Histogram::Observe` never take a mutex
///      and never allocate. Bucket selection is a handful of float
///      compares against a fixed bound table. Counter and histogram
///      storage is striped across cache-line-padded per-thread slots,
///      so concurrent writers do not bounce a shared line between
///      cores; readers sum the stripes.
///   2. **Registration is once, at first use.** Call sites hold a
///      function-local `static Counter&` (etc.) obtained from
///      `MetricsRegistry::Global()`; the registry's mutex is paid only
///      on that first call. Metric objects live in deques inside the
///      registry, so their addresses are stable for the process
///      lifetime.
///   3. **Compile-out.** Building with `-DPAW_NO_METRICS` turns the
///      update methods into empty inlines; the registry, snapshot,
///      codec, and exposition stay available (they just report an
///      empty/zero registry), so the METRICS wire surface keeps
///      working in instrumentation-free builds.
///
/// **Naming convention** (documented in tools/README.md): metric names
/// are `paw_<layer>_<name>` with a unit suffix — `_total` for
/// monotonic counters, `_bytes` for sizes, `_seconds` for durations.
/// Labels are baked into the name Prometheus-style, e.g.
/// `paw_server_requests_total{opcode="add_execution"}`; the registry
/// itself is a flat name → metric map and does not interpret labels.
///
/// **Histograms** have exponential bucket upper bounds
/// `first_bound * growth^i` for `i` in `[0, num_buckets)` plus an
/// implicit +Inf overflow bucket. Observations are recorded as a
/// relaxed add on the owning bucket plus relaxed adds on the total
/// count and sum. Percentiles (p50/p90/p99) are extracted at snapshot
/// time by a cumulative walk with linear interpolation inside the
/// target bucket — the usual Prometheus `histogram_quantile` estimate,
/// computed client-side.
///
/// **Snapshots** (`MetricsRegistry::Snapshot`) read every atomic with
/// relaxed loads; a snapshot taken under concurrent updates is a
/// per-metric-consistent view (each value is some value the metric
/// held during the call), which is all a monitoring surface needs.
/// Snapshots can be serialized to a compact varint wire form
/// (`EncodeMetricsSnapshot` / `DecodeMetricsSnapshot`) — the payload
/// of the METRICS opcode — and rendered as Prometheus-style text
/// exposition (`RenderPrometheusText`).

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace paw {

namespace metrics_internal {

/// Counters and histograms stripe their storage so concurrent writers
/// on different threads land on different cache lines — a shared
/// single atomic bounces its line between cores at high request
/// rates, which showed up as measurable (~3%) server throughput loss.
/// Each thread is assigned a stripe on first use (sequential id mod
/// kStripes); readers sum across stripes.
inline constexpr int kStripes = 8;

inline int StripeIndex() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(id % static_cast<unsigned>(kStripes));
}

/// One cache line per stripe, so stripes never false-share.
struct alignas(64) PaddedAtomicU64 {
  std::atomic<uint64_t> value{0};
};

}  // namespace metrics_internal

/// \brief A monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
#ifndef PAW_NO_METRICS
    stripes_[metrics_internal::StripeIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  uint64_t value() const {
    uint64_t total = 0;
    for (const auto& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  metrics_internal::PaddedAtomicU64 stripes_[metrics_internal::kStripes];
};

/// \brief A value that can go up and down (queue depths, live
/// connection counts).
class Gauge {
 public:
  void Set(int64_t value) {
#ifndef PAW_NO_METRICS
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  void Add(int64_t delta) {
#ifndef PAW_NO_METRICS
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief A fixed-bucket histogram with exponential bucket bounds.
///
/// Bucket `i` (for `i < num_buckets`) counts observations `<=
/// first_bound * growth^i`; one extra overflow bucket counts the rest.
/// The sum is kept in fixed-point micro-units so it fits a relaxed
/// 64-bit add.
class Histogram {
 public:
  static constexpr int kMaxBuckets = 48;

  /// Bounds for durations observed in seconds: 10us .. ~170s.
  static constexpr double kLatencyFirstBound = 1e-5;
  static constexpr double kLatencyGrowth = 2.0;
  static constexpr int kLatencyBuckets = 24;

  Histogram(double first_bound, double growth, int num_buckets);

  void Observe(double value) {
#ifndef PAW_NO_METRICS
    int i = 0;
    while (i < num_buckets_ && value > bounds_[i]) ++i;
    Stripe& stripe = stripes_[metrics_internal::StripeIndex()];
    stripe.buckets[i].fetch_add(1, std::memory_order_relaxed);
    stripe.count.fetch_add(1, std::memory_order_relaxed);
    stripe.sum_micro.fetch_add(ToMicro(value), std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  int num_buckets() const { return num_buckets_; }
  double bound(int i) const { return bounds_[i]; }
  /// Count in bucket `i`; `i == num_buckets()` is the overflow bucket.
  uint64_t bucket_count(int i) const {
    uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.buckets[i].load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t count() const {
    uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.count.load(std::memory_order_relaxed);
    }
    return total;
  }
  double sum() const {
    uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.sum_micro.load(std::memory_order_relaxed);
    }
    return static_cast<double>(total) / 1e6;
  }

 private:
  static uint64_t ToMicro(double value) {
    if (value <= 0) return 0;
    return static_cast<uint64_t>(value * 1e6 + 0.5);
  }

  /// Per-stripe bucket array + count + sum: a thread's Observe touches
  /// only its own stripe's lines (the shared bounds table is read-only).
  struct alignas(64) Stripe {
    std::atomic<uint64_t> buckets[kMaxBuckets + 1];
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_micro{0};
  };

  int num_buckets_;
  double bounds_[kMaxBuckets];
  Stripe stripes_[metrics_internal::kStripes];
};

/// \brief Point-in-time copy of one histogram, with percentile
/// extraction.
struct HistogramData {
  std::vector<double> bounds;     ///< upper bounds, ascending
  std::vector<uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
  uint64_t count = 0;
  double sum = 0;

  /// Estimated value at quantile `q` in [0, 1] (0.5 = median), by
  /// cumulative bucket walk + linear interpolation within the target
  /// bucket. Observations past the last bound clamp to it. Returns 0
  /// for an empty histogram.
  double Quantile(double q) const;
};

/// \brief Point-in-time copy of one registered metric.
struct MetricSample {
  enum class Kind : uint8_t {
    kCounter = 0,
    kGauge = 1,
    kHistogram = 2,
  };

  Kind kind = Kind::kCounter;
  std::string name;
  uint64_t counter = 0;  ///< kCounter
  int64_t gauge = 0;     ///< kGauge
  HistogramData histogram;  ///< kHistogram
};

/// \brief Point-in-time copy of the whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// First sample whose name is exactly `name`, or nullptr.
  const MetricSample* Find(std::string_view name) const;
  /// Sum of `counter` over every sample whose name starts with
  /// `prefix` (for collapsing a labeled family, e.g. all
  /// `paw_server_requests_total{...}` cells).
  uint64_t SumCounters(std::string_view prefix) const;
};

/// \brief The process-wide metric registry.
///
/// `Get*` registers on first use and returns a reference that stays
/// valid for the process lifetime; subsequent calls with the same name
/// return the same object. Names must be used consistently — asking
/// for an existing name with a different kind returns a detached
/// dummy metric (never crashes, never aliases the other kind).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name, double first_bound,
                          double growth, int num_buckets);
  /// Histogram with the standard latency-in-seconds bucket layout.
  Histogram& GetLatencyHistogram(std::string_view name) {
    return GetHistogram(name, Histogram::kLatencyFirstBound,
                        Histogram::kLatencyGrowth,
                        Histogram::kLatencyBuckets);
  }

  MetricsSnapshot Snapshot() const;

  /// Unregisters `name` from future snapshots (e.g. a per-subscriber
  /// gauge whose subscriber disconnected). The underlying object stays
  /// alive, so references handed out earlier remain valid; asking for
  /// the same name again registers a fresh metric. No-op if the name
  /// was never registered.
  void Remove(std::string_view name);

  /// Testing only: forgets every registered metric. References handed
  /// out earlier keep pointing at live (but unlisted) objects.
  void ResetForTesting();

 private:
  struct Entry {
    MetricSample::Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
  // Deques: stable addresses across growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

/// \brief Serializes a snapshot to the compact varint wire form (the
/// METRICS opcode payload body).
std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot);

/// \brief Decodes `EncodeMetricsSnapshot` output starting at
/// `*offset`; advances `*offset` past the snapshot.
Result<MetricsSnapshot> DecodeMetricsSnapshot(std::string_view payload,
                                              size_t* offset);

/// \brief Renders a snapshot as Prometheus-style text exposition:
/// `# TYPE` lines per metric family, `_bucket{le="..."}` /
/// `_sum` / `_count` series per histogram. Labels already baked into
/// a metric's name are preserved (the `le` label is spliced in).
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace paw

#endif  // PAW_COMMON_METRICS_H_

#ifndef PAW_COMMON_IDS_H_
#define PAW_COMMON_IDS_H_

/// \file ids.h
/// \brief Strongly typed integer identifiers.
///
/// Workflow specs, modules, executions, data items and graph nodes all use
/// dense integer ids; wrapping them in tag-parameterized types prevents the
/// classic bug of passing a module id where a workflow id is expected.

#include <cstdint>
#include <functional>
#include <ostream>

namespace paw {

/// \brief A typed wrapper around a dense 32-bit id.
///
/// `Tag` is a phantom type; two `Id`s with different tags do not convert to
/// each other. The value -1 (`Invalid()`) is the sentinel "no id".
template <typename Tag>
class Id {
 public:
  constexpr Id() : value_(-1) {}
  constexpr explicit Id(int32_t value) : value_(value) {}

  /// \brief The sentinel invalid id.
  static constexpr Id Invalid() { return Id(); }

  /// \brief Underlying integer value.
  constexpr int32_t value() const { return value_; }

  /// \brief True iff this id is not the invalid sentinel.
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  int32_t value_;
};

struct WorkflowTag {};
struct ModuleTag {};
struct ExecNodeTag {};
struct DataItemTag {};
struct ExecutionTag {};
struct PrincipalTag {};

/// Identifies a workflow (one level of a hierarchical specification).
using WorkflowId = Id<WorkflowTag>;
/// Identifies a module within a specification (unique across workflows).
using ModuleId = Id<ModuleTag>;
/// Identifies a node of an execution (provenance) graph.
using ExecNodeId = Id<ExecNodeTag>;
/// Identifies a data item produced during an execution.
using DataItemId = Id<DataItemTag>;
/// Identifies a stored execution in a repository.
using ExecutionId = Id<ExecutionTag>;
/// Identifies a principal (user) in the access-control registry.
using PrincipalId = Id<PrincipalTag>;

}  // namespace paw

namespace std {
template <typename Tag>
struct hash<paw::Id<Tag>> {
  size_t operator()(paw::Id<Tag> id) const noexcept {
    return std::hash<int32_t>()(id.value());
  }
};
}  // namespace std

#endif  // PAW_COMMON_IDS_H_

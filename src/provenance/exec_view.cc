#include "src/provenance/exec_view.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/graph/dot.h"

namespace paw {

const std::vector<DataItemId>& ExecView::ItemsOn(NodeIndex u,
                                                 NodeIndex v) const {
  static const std::vector<DataItemId> kEmpty;
  auto it = edge_items_.find({u, v});
  return it == edge_items_.end() ? kEmpty : it->second;
}

Result<NodeIndex> ExecView::ViewNodeOf(ExecNodeId n) const {
  if (n.value() < 0 ||
      n.value() >= static_cast<int32_t>(view_of_.size())) {
    return Status::InvalidArgument("exec node out of range");
  }
  return view_of_[static_cast<size_t>(n.value())];
}

std::string ExecView::NodeLabel(NodeIndex i) const {
  const ExecViewNode& n = node(i);
  if (n.collapsed) {
    return "S" + std::to_string(n.process_id) + ":" +
           exec_->spec().module(n.module).code;
  }
  return exec_->NodeLabel(n.rep);
}

std::string ExecView::ToDot(const std::string& graph_name) const {
  DotOptions opts;
  opts.name = graph_name;
  opts.node_label = [this](NodeIndex u) { return NodeLabel(u); };
  opts.edge_label = [this](NodeIndex u, NodeIndex v) {
    std::string out;
    for (DataItemId d : ItemsOn(u, v)) {
      if (!out.empty()) out += ",";
      out += Execution::ItemName(d);
    }
    return out;
  };
  opts.node_attrs = [this](NodeIndex u) -> std::string {
    return node(u).collapsed ? "shape=box3d" : "";
  };
  return paw::ToDot(graph_, opts);
}

Result<ExecView> CollapseExecution(const Execution& exec,
                                   const ExpansionHierarchy& hierarchy,
                                   const Prefix& prefix) {
  if (!hierarchy.IsValidPrefix(prefix)) {
    return Status::InvalidArgument("invalid prefix");
  }
  const Specification& spec = exec.spec();

  // Representative of node n: the begin node of the *outermost* enclosing
  // activation (including n itself when n is a begin/end pair) whose
  // expansion is outside the prefix; n itself when fully visible.
  auto representative = [&](ExecNodeId n) -> ExecNodeId {
    // Build chain outermost -> innermost.
    std::vector<ExecNodeId> chain;
    ExecNodeId cur = exec.node(n).enclosing;
    while (cur.valid()) {
      chain.push_back(cur);
      cur = exec.node(cur).enclosing;
    }
    std::reverse(chain.begin(), chain.end());
    const ExecNode& node = exec.node(n);
    if (node.kind == ExecNodeKind::kBegin ||
        node.kind == ExecNodeKind::kEnd) {
      // The begin/end pair collapses with its own activation.
      ExecNodeId begin = n;
      if (node.kind == ExecNodeKind::kEnd) {
        // Find the matching begin: same module & process id.
        for (const ExecNode& cand : exec.nodes()) {
          if (cand.kind == ExecNodeKind::kBegin &&
              cand.process_id == node.process_id) {
            begin = cand.id;
            break;
          }
        }
      }
      chain.push_back(begin);
    }
    for (ExecNodeId b : chain) {
      WorkflowId expansion = spec.module(exec.node(b).module).expansion;
      if (!prefix.count(expansion)) return b;
    }
    return n;
  };

  ExecView view;
  view.exec_ = &exec;
  view.view_of_.assign(static_cast<size_t>(exec.num_nodes()), -1);

  std::map<int32_t, NodeIndex> group_index;  // representative -> view node
  for (int32_t i = 0; i < exec.num_nodes(); ++i) {
    ExecNodeId rep = representative(ExecNodeId(i));
    auto it = group_index.find(rep.value());
    NodeIndex vi;
    if (it == group_index.end()) {
      vi = view.graph_.AddNode();
      group_index[rep.value()] = vi;
      ExecViewNode vn;
      vn.rep = rep;
      const ExecNode& rn = exec.node(rep);
      vn.module = rn.module;
      vn.process_id = rn.process_id;
      // A representative that is a begin node stands for a swallowed
      // activation exactly when its expansion is outside the prefix.
      vn.collapsed =
          rn.kind == ExecNodeKind::kBegin &&
          !prefix.count(spec.module(rn.module).expansion);
      view.nodes_.push_back(vn);
    } else {
      vi = it->second;
      view.nodes_[static_cast<size_t>(vi)].collapsed = true;
    }
    view.view_of_[static_cast<size_t>(i)] = vi;
  }

  for (const auto& [u, v] : exec.graph().Edges()) {
    NodeIndex vu = view.view_of_[static_cast<size_t>(u)];
    NodeIndex vv = view.view_of_[static_cast<size_t>(v)];
    if (vu == vv) continue;
    if (!view.graph_.HasEdge(vu, vv)) {
      Status st = view.graph_.AddEdge(vu, vv);
      PAW_CHECK(st.ok()) << st.ToString();
    }
    auto& items = view.edge_items_[{vu, vv}];
    for (DataItemId d : exec.ItemsOn(ExecNodeId(u), ExecNodeId(v))) {
      if (std::find(items.begin(), items.end(), d) == items.end()) {
        items.push_back(d);
      }
    }
  }
  return view;
}

}  // namespace paw

#include "src/provenance/executor.h"

#include <algorithm>

#include "src/common/logging.h"

namespace paw {
namespace {

// FNV-1a, used by the default module function to derive stable values.
uint64_t Fnv1a(std::string_view s, uint64_t h = 1469598103934665603ULL) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string ShortHex(uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// The executor proper; one instance per Execute() call.
class Executor {
 public:
  Executor(const Specification& spec, const FunctionRegistry& fns)
      : spec_(spec), fns_(fns), exec_(spec) {}

  Result<Execution> Run(const ValueMap& inputs) {
    InitStates();

    // The root behaves like a started workflow instance with no output
    // request and no begin node.
    WorkflowState& root = wf_states_[size_t(spec_.root().value())];
    root.started = true;

    // Fire the input node first, then any sourceless root modules.
    const Workflow& rw = spec_.workflow(spec_.root());
    ModuleId input_module;
    for (ModuleId mid : rw.modules) {
      if (spec_.module(mid).kind == ModuleKind::kInput) input_module = mid;
    }
    PAW_CHECK(input_module.valid()) << "validated spec lost its input node";
    PAW_RETURN_NOT_OK(FireInput(input_module, inputs));
    for (ModuleId mid : rw.modules) {
      ModuleState& ms = mod_states_[size_t(mid.value())];
      if (!ms.fired && ms.edges_total == 0 &&
          spec_.module(mid).kind != ModuleKind::kInput) {
        PAW_RETURN_NOT_OK(Fire(mid));
      }
    }

    for (const Module& m : spec_.modules()) {
      if (!mod_states_[size_t(m.id.value())].fired) {
        return Status::Internal("module " + m.code +
                                " never became ready (disconnected input?)");
      }
    }
    return std::move(exec_);
  }

 private:
  struct ModuleState {
    size_t edges_total = 0;
    size_t edges_delivered = 0;
    bool fired = false;
    ValueMap inputs;
    // Pending provenance edges: (source exec node, items).
    std::vector<std::pair<ExecNodeId, std::vector<DataItemId>>> pending;
  };

  struct WorkflowState {
    bool started = false;
    /// Output labels the enclosing composite expects from this instance.
    std::vector<std::string> request;
    /// (producing exec node, label, item) routed to the end node.
    std::vector<std::tuple<ExecNodeId, std::string, DataItemId>>
        sink_outputs;
    /// Begin node of the activation running this workflow (invalid for
    /// the root).
    ExecNodeId begin;
  };

  void InitStates() {
    mod_states_.resize(static_cast<size_t>(spec_.num_modules()));
    wf_states_.resize(static_cast<size_t>(spec_.num_workflows()));
    for (const Workflow& w : spec_.workflows()) {
      for (const DataflowEdge& e : w.edges) {
        ++mod_states_[size_t(e.dst.value())].edges_total;
      }
      // Entry modules of non-root workflows receive one virtual delivery
      // from the begin node.
      if (w.id != spec_.root()) {
        for (ModuleId mid : spec_.EntryModules(w.id)) {
          ++mod_states_[size_t(mid.value())].edges_total;
        }
      }
    }
  }

  bool IsExit(ModuleId m) const { return spec_.OutEdges(m).empty(); }

  Status FireInput(ModuleId m, const ValueMap& inputs) {
    ModuleState& ms = mod_states_[size_t(m.value())];
    ms.fired = true;
    ExecNodeId node = exec_.AddNode(ExecNodeKind::kInput, m, -1,
                                    ExecNodeId::Invalid());
    // Create the items of every out-edge before delivering any of them:
    // delivery cascades depth-first, and item ids must follow creation
    // order at the producing node (Fig. 4 numbering).
    std::vector<const DataflowEdge*> out = spec_.OutEdges(m);
    std::vector<std::vector<DataItemId>> per_edge(out.size());
    for (size_t i = 0; i < out.size(); ++i) {
      for (const std::string& label : out[i]->labels) {
        auto it = inputs.find(label);
        if (it == inputs.end()) {
          return Status::InvalidArgument("missing workflow input '" + label +
                                         "'");
        }
        per_edge[i].push_back(exec_.AddItem(label, node, it->second));
      }
    }
    for (size_t i = 0; i < out.size(); ++i) {
      PAW_RETURN_NOT_OK(Deliver(out[i]->dst, node, per_edge[i]));
    }
    return Status::OK();
  }

  Status Deliver(ModuleId to, ExecNodeId from,
                 const std::vector<DataItemId>& items) {
    ModuleState& ms = mod_states_[size_t(to.value())];
    ms.pending.emplace_back(from, items);
    for (DataItemId d : items) {
      const DataItem& item = exec_.item(d);
      auto [it, inserted] = ms.inputs.try_emplace(item.label, item.value);
      if (!inserted) it->second += "|" + item.value;
    }
    ++ms.edges_delivered;
    WorkflowState& ws =
        wf_states_[size_t(spec_.module(to).workflow.value())];
    if (ms.edges_delivered == ms.edges_total && ws.started && !ms.fired) {
      return Fire(to);
    }
    return Status::OK();
  }

  /// Labels this module must produce: its out-edge labels, plus the
  /// enclosing request when it is an exit module of a non-root workflow.
  std::vector<std::string> NeededOutputs(ModuleId m) const {
    std::vector<std::string> needed;
    auto add = [&needed](const std::string& l) {
      if (std::find(needed.begin(), needed.end(), l) == needed.end()) {
        needed.push_back(l);
      }
    };
    for (const DataflowEdge* e : spec_.OutEdges(m)) {
      for (const std::string& l : e->labels) add(l);
    }
    WorkflowId w = spec_.module(m).workflow;
    if (w != spec_.root() && IsExit(m)) {
      for (const std::string& l : wf_states_[size_t(w.value())].request) {
        add(l);
      }
    }
    return needed;
  }

  Status Fire(ModuleId mid) {
    ModuleState& ms = mod_states_[size_t(mid.value())];
    ms.fired = true;
    const Module& m = spec_.module(mid);
    WorkflowState& ws = wf_states_[size_t(m.workflow.value())];
    ExecNodeId enclosing = ws.begin;  // invalid at root level

    switch (m.kind) {
      case ModuleKind::kInput:
        return Status::Internal("input node fired through Deliver");
      case ModuleKind::kOutput: {
        ExecNodeId node =
            exec_.AddNode(ExecNodeKind::kOutput, mid, -1, enclosing);
        for (const auto& [from, items] : ms.pending) {
          PAW_RETURN_NOT_OK(exec_.AddFlow(from, node, items));
        }
        return Status::OK();
      }
      case ModuleKind::kAtomic:
        return FireAtomic(mid, &ms, &ws, enclosing);
      case ModuleKind::kComposite:
        return FireComposite(mid, &ms, &ws, enclosing);
    }
    return Status::Internal("unreachable");
  }

  Status FireAtomic(ModuleId mid, ModuleState* ms, WorkflowState* ws,
                    ExecNodeId enclosing) {
    const Module& m = spec_.module(mid);
    ExecNodeId node = exec_.AddNode(ExecNodeKind::kAtomic, mid,
                                    next_process_++, enclosing);
    for (const auto& [from, items] : ms->pending) {
      PAW_RETURN_NOT_OK(exec_.AddFlow(from, node, items));
    }
    std::vector<std::string> needed = NeededOutputs(mid);
    ValueMap outs = fns_.Lookup(m.code)(ms->inputs, needed);
    for (const std::string& l : needed) {
      if (!outs.count(l)) {
        return Status::Internal("module " + m.code +
                                " did not produce output '" + l + "'");
      }
    }
    // Two-phase as in FireInput: create all items, then deliver.
    std::vector<const DataflowEdge*> out = spec_.OutEdges(mid);
    std::vector<std::vector<DataItemId>> per_edge(out.size());
    for (size_t i = 0; i < out.size(); ++i) {
      for (const std::string& label : out[i]->labels) {
        per_edge[i].push_back(exec_.AddItem(label, node, outs.at(label)));
      }
    }
    if (m.workflow != spec_.root() && IsExit(mid)) {
      for (const std::string& label : ws->request) {
        DataItemId d = exec_.AddItem(label, node, outs.at(label));
        ws->sink_outputs.emplace_back(node, label, d);
      }
    }
    for (size_t i = 0; i < out.size(); ++i) {
      PAW_RETURN_NOT_OK(Deliver(out[i]->dst, node, per_edge[i]));
    }
    return Status::OK();
  }

  Status FireComposite(ModuleId mid, ModuleState* ms, WorkflowState* ws,
                       ExecNodeId enclosing) {
    const Module& m = spec_.module(mid);
    const int process = next_process_++;
    ExecNodeId begin =
        exec_.AddNode(ExecNodeKind::kBegin, mid, process, enclosing);
    for (const auto& [from, items] : ms->pending) {
      PAW_RETURN_NOT_OK(exec_.AddFlow(from, begin, items));
    }
    std::vector<DataItemId> feed;
    for (const auto& [from, items] : ms->pending) {
      for (DataItemId d : items) {
        if (std::find(feed.begin(), feed.end(), d) == feed.end()) {
          feed.push_back(d);
        }
      }
    }

    WorkflowState& sub = wf_states_[size_t(m.expansion.value())];
    sub.started = true;
    sub.begin = begin;
    sub.request = NeededOutputs(mid);
    if (!sub.request.empty()) {
      if (spec_.ExitModules(m.expansion).size() != 1) {
        return Status::FailedPrecondition(
            "workflow " + spec_.workflow(m.expansion).code +
            " needs exactly one exit module to return data");
      }
    }
    for (ModuleId entry : spec_.EntryModules(m.expansion)) {
      PAW_RETURN_NOT_OK(Deliver(entry, begin, feed));
    }
    for (ModuleId inner : spec_.workflow(m.expansion).modules) {
      if (!mod_states_[size_t(inner.value())].fired) {
        return Status::Internal(
            "subworkflow module " + spec_.module(inner).code +
            " did not fire (disconnected from entries?)");
      }
    }

    ExecNodeId end =
        exec_.AddNode(ExecNodeKind::kEnd, mid, process, enclosing);
    std::map<std::string, DataItemId> collected;
    for (const auto& [from, label, item] : sub.sink_outputs) {
      PAW_RETURN_NOT_OK(exec_.AddFlow(from, end, {item}));
      collected[label] = item;
    }

    for (const DataflowEdge* e : spec_.OutEdges(mid)) {
      std::vector<DataItemId> items;
      for (const std::string& label : e->labels) {
        auto it = collected.find(label);
        if (it == collected.end()) {
          return Status::Internal("composite " + m.code +
                                  " produced no '" + label + "'");
        }
        items.push_back(it->second);
      }
      PAW_RETURN_NOT_OK(Deliver(e->dst, end, items));
    }
    if (m.workflow != spec_.root() && IsExit(mid)) {
      for (const std::string& label : ws->request) {
        auto it = collected.find(label);
        if (it == collected.end()) {
          return Status::Internal("composite " + m.code +
                                  " produced no requested '" + label + "'");
        }
        ws->sink_outputs.emplace_back(end, label, it->second);
      }
    }
    return Status::OK();
  }

  const Specification& spec_;
  const FunctionRegistry& fns_;
  Execution exec_;
  std::vector<ModuleState> mod_states_;
  std::vector<WorkflowState> wf_states_;
  int next_process_ = 1;
};

}  // namespace

void FunctionRegistry::Register(std::string module_code, ModuleFn fn) {
  fns_[std::move(module_code)] = std::move(fn);
}

ValueMap FunctionRegistry::DefaultFn(
    const std::string& module_code, const ValueMap& inputs,
    const std::vector<std::string>& output_labels) {
  uint64_t h = Fnv1a(module_code);
  for (const auto& [label, value] : inputs) {
    h = Fnv1a(label, h);
    h = Fnv1a(value, h);
  }
  ValueMap out;
  for (const std::string& label : output_labels) {
    out[label] = ShortHex(Fnv1a(label, h));
  }
  return out;
}

ModuleFn FunctionRegistry::Lookup(const std::string& module_code) const {
  auto it = fns_.find(module_code);
  if (it != fns_.end()) return it->second;
  std::string code = module_code;
  return [code](const ValueMap& inputs,
                const std::vector<std::string>& output_labels) {
    return DefaultFn(code, inputs, output_labels);
  };
}

Result<Execution> Execute(const Specification& spec,
                          const FunctionRegistry& fns,
                          const ValueMap& inputs) {
  Executor executor(spec, fns);
  return executor.Run(inputs);
}

}  // namespace paw

#ifndef PAW_PROVENANCE_LINEAGE_H_
#define PAW_PROVENANCE_LINEAGE_H_

/// \file lineage.h
/// \brief Provenance queries over executions (paper Secs. 1-2).
///
/// "The provenance of a data item d in an execution E is the subgraph
/// induced by the set of paths from the start node to the end node of E
/// that produced d as output" — implemented as the ancestor cone of d's
/// producer. The dual query ("what downstream data might have been
/// affected?") is the descendant cone.

#include <vector>

#include "src/common/status.h"
#include "src/graph/algorithms.h"
#include "src/provenance/execution.h"

namespace paw {

/// \brief A provenance (sub)graph: the answer to a lineage query.
struct LineageResult {
  /// Exec nodes of the cone, by original id, in ascending order.
  std::vector<ExecNodeId> nodes;
  /// Induced subgraph over `nodes` (index i <-> nodes[i]).
  Digraph subgraph;
  /// Data items flowing inside the cone.
  std::vector<DataItemId> items;
};

/// \brief Upstream provenance of item `d`: every node and item that
/// contributed to producing it.
Result<LineageResult> ProvenanceOf(const Execution& exec, DataItemId d);

/// \brief Upstream provenance of an activation: every node and item
/// that contributed to `node` (the answer to "return the provenance
/// information for the latter" in the paper's exemplar query).
Result<LineageResult> ProvenanceOfNode(const Execution& exec,
                                       ExecNodeId node);

/// \brief Downstream impact of item `d`: every node that consumed it
/// directly or transitively, and every item they produced.
Result<LineageResult> AffectedBy(const Execution& exec, DataItemId d);

/// \brief True iff activation `src` contributed (via some path) to
/// activation `dst` in this execution.
bool Contributes(const Execution& exec, ExecNodeId src, ExecNodeId dst);

}  // namespace paw

#endif  // PAW_PROVENANCE_LINEAGE_H_

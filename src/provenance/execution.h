#ifndef PAW_PROVENANCE_EXECUTION_H_
#define PAW_PROVENANCE_EXECUTION_H_

/// \file execution.h
/// \brief Provenance graphs of workflow runs (paper Fig. 4).
///
/// An execution mirrors the fully expanded specification: every module
/// activation gets a unique process id (S1, S2, ...); a composite
/// activation is represented by a *begin* and an *end* node sharing the
/// process id (the convention of [1], adopted by the paper); edges carry
/// the set of data items that flowed. Each data item is produced by exactly
/// one node; begin/end nodes forward items without producing new ones.

#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/graph/digraph.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Role of a node in an execution graph.
enum class ExecNodeKind { kInput, kOutput, kAtomic, kBegin, kEnd };

/// \brief Short name of an exec node kind ("atomic", "begin", ...).
std::string_view ExecNodeKindName(ExecNodeKind kind);

/// \brief A node of an execution graph.
struct ExecNode {
  ExecNodeId id;
  ExecNodeKind kind = ExecNodeKind::kAtomic;
  /// The specification module this node activates.
  ModuleId module;
  /// Activation number (S1, S2, ...); begin/end of the same composite
  /// activation share it; -1 for the I/O nodes.
  int process_id = -1;
  /// The begin node of the innermost enclosing composite activation, or
  /// invalid at root level. For a begin/end pair this is the *outer*
  /// activation (the pair belongs to the enclosing level).
  ExecNodeId enclosing;
};

/// \brief A data item produced during an execution.
struct DataItem {
  DataItemId id;
  /// The dataflow label it instantiates, e.g. "disorders".
  std::string label;
  /// The node (input or atomic) that produced it.
  ExecNodeId producer;
  /// The simulated value; privacy masking replaces this at render time.
  std::string value;
};

/// \brief A complete provenance graph of one run.
class Execution {
 public:
  /// Creates an empty execution of `spec` (which must outlive it).
  explicit Execution(const Specification& spec) : spec_(&spec) {}

  /// \brief The specification this run instantiates.
  const Specification& spec() const { return *spec_; }

  // ---- Construction (used by the executor) ----

  /// \brief Adds a node; returns its id (== its graph node index).
  ExecNodeId AddNode(ExecNodeKind kind, ModuleId module, int process_id,
                     ExecNodeId enclosing);

  /// \brief Creates a data item.
  DataItemId AddItem(std::string label, ExecNodeId producer,
                     std::string value);

  /// \brief Adds (or extends) flow edge `from -> to` carrying `items`.
  Status AddFlow(ExecNodeId from, ExecNodeId to,
                 const std::vector<DataItemId>& items);

  // ---- Accessors ----

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_items() const { return static_cast<int>(items_.size()); }

  const ExecNode& node(ExecNodeId id) const {
    return nodes_[static_cast<size_t>(id.value())];
  }
  const DataItem& item(DataItemId id) const {
    return items_[static_cast<size_t>(id.value())];
  }
  const std::vector<ExecNode>& nodes() const { return nodes_; }
  const std::vector<DataItem>& items() const { return items_; }

  /// \brief The underlying digraph; node index == ExecNodeId value.
  const Digraph& graph() const { return graph_; }

  /// \brief Items flowing on edge `from -> to` (empty if no edge).
  const std::vector<DataItemId>& ItemsOn(ExecNodeId from,
                                         ExecNodeId to) const;

  /// \brief Display label: "I", "O", "S1:M1 begin", "S4:M5", ...
  std::string NodeLabel(ExecNodeId id) const;

  /// \brief Display name of an item: "d0", "d17", ...
  static std::string ItemName(DataItemId id);

  /// \brief The node with the given process id and kind preference
  /// (begin node for composites); NotFound if absent.
  Result<ExecNodeId> FindByProcess(int process_id) const;

  /// \brief First item with the given label; NotFound if absent.
  Result<DataItemId> FindItemByLabel(std::string_view label) const;

  /// \brief All items produced by `node`.
  std::vector<DataItemId> ItemsProducedBy(ExecNodeId node) const;

  /// \brief Graphviz rendering in the style of Fig. 4.
  std::string ToDot(const std::string& graph_name = "execution") const;

 private:
  const Specification* spec_;
  std::vector<ExecNode> nodes_;
  std::vector<DataItem> items_;
  Digraph graph_;
  std::map<std::pair<int32_t, int32_t>, std::vector<DataItemId>> edge_items_;
};

}  // namespace paw

#endif  // PAW_PROVENANCE_EXECUTION_H_

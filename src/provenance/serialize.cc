#include "src/provenance/serialize.h"

#include <sstream>

#include "src/common/strings.h"

namespace paw {

std::string SerializeExecution(const Execution& exec) {
  std::ostringstream os;
  os << "execution spec=" << QuoteField(exec.spec().name()) << "\n";
  for (const ExecNode& n : exec.nodes()) {
    os << "node " << n.id.value() << " " << ExecNodeKindName(n.kind) << " "
       << exec.spec().module(n.module).code << " process=" << n.process_id
       << " enclosing=" << n.enclosing.value() << "\n";
  }
  for (const DataItem& d : exec.items()) {
    os << "item " << d.id.value() << " label=" << QuoteField(d.label)
       << " producer=" << d.producer.value() << " value=" << QuoteField(d.value)
       << "\n";
  }
  for (const auto& [u, v] : exec.graph().Edges()) {
    os << "flow " << u << " " << v << " items=\"";
    const auto& items = exec.ItemsOn(ExecNodeId(u), ExecNodeId(v));
    for (size_t i = 0; i < items.size(); ++i) {
      if (i) os << ";";
      os << items[i].value();
    }
    os << "\"\n";
  }
  return os.str();
}

Result<Execution> ParseExecution(const std::string& text,
                                 const Specification& spec) {
  Execution exec(spec);
  bool header_seen = false;
  for (const std::string& raw : Split(text, '\n')) {
    std::string line(Trim(raw));
    if (line.empty() || line[0] == '#') continue;
    PAW_ASSIGN_OR_RETURN(std::vector<std::string> f, SplitFields(line));
    if (f.empty()) continue;
    const std::string& tag = f[0];
    if (tag == "execution") {
      std::string name;
      if (f.size() < 2 || !KeyValueField(f[1], "spec", &name)) {
        return Status::InvalidArgument("execution: missing spec=");
      }
      if (name != spec.name()) {
        return Status::InvalidArgument(
            "execution belongs to spec '" + name + "', not '" +
            spec.name() + "'");
      }
      header_seen = true;
    } else if (tag == "node") {
      if (!header_seen) {
        return Status::InvalidArgument("node before execution header");
      }
      if (f.size() < 6) return Status::InvalidArgument("node: bad arity");
      int32_t id = std::atoi(f[1].c_str());
      if (id != exec.num_nodes()) {
        return Status::InvalidArgument("node ids must be dense");
      }
      ExecNodeKind kind;
      if (f[2] == "input") {
        kind = ExecNodeKind::kInput;
      } else if (f[2] == "output") {
        kind = ExecNodeKind::kOutput;
      } else if (f[2] == "atomic") {
        kind = ExecNodeKind::kAtomic;
      } else if (f[2] == "begin") {
        kind = ExecNodeKind::kBegin;
      } else if (f[2] == "end") {
        kind = ExecNodeKind::kEnd;
      } else {
        return Status::InvalidArgument("node: bad kind " + f[2]);
      }
      PAW_ASSIGN_OR_RETURN(ModuleId module, spec.FindModule(f[3]));
      std::string v;
      if (!KeyValueField(f[4], "process", &v)) {
        return Status::InvalidArgument("node: missing process=");
      }
      int process = std::atoi(v.c_str());
      if (!KeyValueField(f[5], "enclosing", &v)) {
        return Status::InvalidArgument("node: missing enclosing=");
      }
      int32_t enclosing = std::atoi(v.c_str());
      if (enclosing >= exec.num_nodes()) {
        return Status::InvalidArgument("node: forward enclosing ref");
      }
      exec.AddNode(kind, module, process,
                   enclosing < 0 ? ExecNodeId() : ExecNodeId(enclosing));
    } else if (tag == "item") {
      if (f.size() < 5) return Status::InvalidArgument("item: bad arity");
      int32_t id = std::atoi(f[1].c_str());
      if (id != exec.num_items()) {
        return Status::InvalidArgument("item ids must be dense");
      }
      std::string label, producer_str, value;
      if (!KeyValueField(f[2], "label", &label) ||
          !KeyValueField(f[3], "producer", &producer_str) ||
          !KeyValueField(f[4], "value", &value)) {
        return Status::InvalidArgument("item: bad fields");
      }
      int32_t producer = std::atoi(producer_str.c_str());
      if (producer < 0 || producer >= exec.num_nodes()) {
        return Status::InvalidArgument("item: producer out of range");
      }
      exec.AddItem(label, ExecNodeId(producer), value);
    } else if (tag == "flow") {
      if (f.size() < 4) return Status::InvalidArgument("flow: bad arity");
      int32_t u = std::atoi(f[1].c_str());
      int32_t v = std::atoi(f[2].c_str());
      std::string items_str;
      if (!KeyValueField(f[3], "items", &items_str)) {
        return Status::InvalidArgument("flow: missing items=");
      }
      std::vector<DataItemId> items;
      if (!items_str.empty()) {
        for (const std::string& part : Split(items_str, ';')) {
          int32_t d = std::atoi(part.c_str());
          if (d < 0 || d >= exec.num_items()) {
            return Status::InvalidArgument("flow: item out of range");
          }
          items.push_back(DataItemId(d));
        }
      }
      PAW_RETURN_NOT_OK(exec.AddFlow(ExecNodeId(u), ExecNodeId(v), items));
    } else {
      return Status::InvalidArgument("unknown directive: " + tag);
    }
  }
  if (!header_seen) {
    return Status::InvalidArgument("missing execution header");
  }
  return exec;
}

}  // namespace paw

#include "src/provenance/execution.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/graph/dot.h"

namespace paw {

std::string_view ExecNodeKindName(ExecNodeKind kind) {
  switch (kind) {
    case ExecNodeKind::kInput:
      return "input";
    case ExecNodeKind::kOutput:
      return "output";
    case ExecNodeKind::kAtomic:
      return "atomic";
    case ExecNodeKind::kBegin:
      return "begin";
    case ExecNodeKind::kEnd:
      return "end";
  }
  return "?";
}

ExecNodeId Execution::AddNode(ExecNodeKind kind, ModuleId module,
                              int process_id, ExecNodeId enclosing) {
  ExecNodeId id(static_cast<int32_t>(nodes_.size()));
  nodes_.push_back(ExecNode{id, kind, module, process_id, enclosing});
  NodeIndex gi = graph_.AddNode();
  PAW_CHECK(gi == id.value()) << "graph/node id desync";
  return id;
}

DataItemId Execution::AddItem(std::string label, ExecNodeId producer,
                              std::string value) {
  DataItemId id(static_cast<int32_t>(items_.size()));
  items_.push_back(
      DataItem{id, std::move(label), producer, std::move(value)});
  return id;
}

Status Execution::AddFlow(ExecNodeId from, ExecNodeId to,
                          const std::vector<DataItemId>& items) {
  if (from.value() < 0 || from.value() >= num_nodes() || to.value() < 0 ||
      to.value() >= num_nodes()) {
    return Status::InvalidArgument("flow endpoint out of range");
  }
  if (!graph_.HasEdge(from.value(), to.value())) {
    PAW_RETURN_NOT_OK(graph_.AddEdge(from.value(), to.value()));
  }
  auto& list = edge_items_[{from.value(), to.value()}];
  for (DataItemId d : items) {
    if (std::find(list.begin(), list.end(), d) == list.end()) {
      list.push_back(d);
    }
  }
  return Status::OK();
}

const std::vector<DataItemId>& Execution::ItemsOn(ExecNodeId from,
                                                  ExecNodeId to) const {
  static const std::vector<DataItemId> kEmpty;
  auto it = edge_items_.find({from.value(), to.value()});
  return it == edge_items_.end() ? kEmpty : it->second;
}

std::string Execution::NodeLabel(ExecNodeId id) const {
  const ExecNode& n = node(id);
  const Module& m = spec_->module(n.module);
  switch (n.kind) {
    case ExecNodeKind::kInput:
    case ExecNodeKind::kOutput:
      return m.code;
    case ExecNodeKind::kAtomic:
      return "S" + std::to_string(n.process_id) + ":" + m.code;
    case ExecNodeKind::kBegin:
      return "S" + std::to_string(n.process_id) + ":" + m.code + " begin";
    case ExecNodeKind::kEnd:
      return "S" + std::to_string(n.process_id) + ":" + m.code + " end";
  }
  return "?";
}

std::string Execution::ItemName(DataItemId id) {
  return "d" + std::to_string(id.value());
}

Result<ExecNodeId> Execution::FindByProcess(int process_id) const {
  for (const ExecNode& n : nodes_) {
    if (n.process_id == process_id &&
        (n.kind == ExecNodeKind::kAtomic || n.kind == ExecNodeKind::kBegin)) {
      return n.id;
    }
  }
  return Status::NotFound("no activation S" + std::to_string(process_id));
}

Result<DataItemId> Execution::FindItemByLabel(std::string_view label) const {
  for (const DataItem& d : items_) {
    if (d.label == label) return d.id;
  }
  return Status::NotFound("no item labelled '" + std::string(label) + "'");
}

std::vector<DataItemId> Execution::ItemsProducedBy(ExecNodeId node) const {
  std::vector<DataItemId> out;
  for (const DataItem& d : items_) {
    if (d.producer == node) out.push_back(d.id);
  }
  return out;
}

std::string Execution::ToDot(const std::string& graph_name) const {
  DotOptions opts;
  opts.name = graph_name;
  opts.node_label = [this](NodeIndex u) { return NodeLabel(ExecNodeId(u)); };
  opts.edge_label = [this](NodeIndex u, NodeIndex v) {
    std::string out;
    for (DataItemId d : ItemsOn(ExecNodeId(u), ExecNodeId(v))) {
      if (!out.empty()) out += ",";
      out += ItemName(d);
    }
    return out;
  };
  opts.node_attrs = [this](NodeIndex u) -> std::string {
    ExecNodeKind k = node(ExecNodeId(u)).kind;
    if (k == ExecNodeKind::kBegin || k == ExecNodeKind::kEnd) {
      return "shape=box";
    }
    return "";
  };
  return paw::ToDot(graph_, opts);
}

}  // namespace paw

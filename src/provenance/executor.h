#ifndef PAW_PROVENANCE_EXECUTOR_H_
#define PAW_PROVENANCE_EXECUTOR_H_

/// \file executor.h
/// \brief Simulated workflow execution producing provenance graphs.
///
/// The executor runs a specification with pluggable module functions and a
/// *deterministic depth-first data-propagation schedule*: when a node
/// finishes, its out-edges are followed in specification insertion order
/// and any module that becomes ready fires immediately. Composite modules
/// execute like procedure calls (begin node, subworkflow, end node). This
/// schedule reproduces the activation numbering S1..S15 of the paper's
/// Fig. 4 exactly (see tests/disease_test.cc).
///
/// Data model: one item is created per (out-edge, label) pair at firing
/// time, so items fan out with distinct identities while begin/end nodes
/// only forward; this matches the paper's "each data item is the output of
/// exactly one module execution".

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/provenance/execution.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Label -> value bindings at a module boundary.
///
/// When two in-edges deliver the same label (e.g. M6 and M7 both feed
/// "disorders" into M8 in Fig. 1), the values are concatenated with '|'.
using ValueMap = std::map<std::string, std::string>;

/// \brief A simulated module function: consumes the input bindings and
/// must produce a value for every label in `output_labels`.
using ModuleFn = std::function<ValueMap(
    const ValueMap& inputs, const std::vector<std::string>& output_labels)>;

/// \brief Registry of module functions keyed by module code.
///
/// Modules without a registered function use the default: a deterministic
/// digest of the module code, label and inputs — enough to make provenance
/// values distinct and replayable.
class FunctionRegistry {
 public:
  /// \brief Installs `fn` for the module with the given code.
  void Register(std::string module_code, ModuleFn fn);

  /// \brief The function for `module_code` (default when unregistered).
  ModuleFn Lookup(const std::string& module_code) const;

  /// \brief The deterministic default function.
  static ValueMap DefaultFn(const std::string& module_code,
                            const ValueMap& inputs,
                            const std::vector<std::string>& output_labels);

 private:
  std::map<std::string, ModuleFn> fns_;
};

/// \brief Runs `spec` on `inputs` (bindings for every label leaving the
/// root input node I).
///
/// Fails with InvalidArgument when an input label is missing, and with
/// FailedPrecondition when a non-root workflow whose output is demanded
/// has more than one exit module (the procedure-call semantics needs a
/// unique return point).
Result<Execution> Execute(const Specification& spec,
                          const FunctionRegistry& fns,
                          const ValueMap& inputs);

}  // namespace paw

#endif  // PAW_PROVENANCE_EXECUTOR_H_

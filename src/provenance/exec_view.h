#ifndef PAW_PROVENANCE_EXEC_VIEW_H_
#define PAW_PROVENANCE_EXEC_VIEW_H_

/// \file exec_view.h
/// \brief Views of provenance graphs under hierarchy prefixes (Fig. 2).
///
/// An execution view collapses every composite activation whose expansion
/// lies outside the prefix into a single node: begin, end and everything
/// between disappear into one box, and the items entering/leaving it stay
/// on the boundary edges. With the prefix {W1}, the Fig. 4 execution
/// collapses to the four-node graph of Fig. 2.

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/provenance/execution.h"
#include "src/workflow/hierarchy.h"

namespace paw {

/// \brief A node of a collapsed execution view.
struct ExecViewNode {
  /// True when the node stands for an entire composite activation.
  bool collapsed = false;
  /// For plain nodes: the underlying exec node. For collapsed nodes: the
  /// begin node of the collapsed activation.
  ExecNodeId rep;
  /// The module shown (the composite for collapsed nodes).
  ModuleId module;
  /// Process id of the shown activation (-1 for I/O).
  int process_id = -1;
};

/// \brief A provenance graph as seen through a prefix.
class ExecView {
 public:
  /// \brief Number of visible nodes.
  NodeIndex num_nodes() const { return graph_.num_nodes(); }

  /// \brief Visible node metadata.
  const ExecViewNode& node(NodeIndex i) const {
    return nodes_[static_cast<size_t>(i)];
  }

  /// \brief The collapsed digraph.
  const Digraph& graph() const { return graph_; }

  /// \brief The underlying execution.
  const Execution& execution() const { return *exec_; }

  /// \brief Items on visible edge `u -> v` (union over collapsed edges).
  const std::vector<DataItemId>& ItemsOn(NodeIndex u, NodeIndex v) const;

  /// \brief View node showing exec node `n`; NotFound when out of range.
  Result<NodeIndex> ViewNodeOf(ExecNodeId n) const;

  /// \brief Display label, e.g. "S1:M1" for a collapsed activation.
  std::string NodeLabel(NodeIndex i) const;

  /// \brief Graphviz rendering in the style of Fig. 2.
  std::string ToDot(const std::string& graph_name = "exec_view") const;

 private:
  friend Result<ExecView> CollapseExecution(const Execution&,
                                            const ExpansionHierarchy&,
                                            const Prefix&);

  const Execution* exec_ = nullptr;
  Digraph graph_;
  std::vector<ExecViewNode> nodes_;
  std::vector<NodeIndex> view_of_;  // exec node -> view node
  std::map<std::pair<NodeIndex, NodeIndex>, std::vector<DataItemId>>
      edge_items_;
};

/// \brief Collapses `exec` under `prefix` (valid for the spec's hierarchy).
Result<ExecView> CollapseExecution(const Execution& exec,
                                   const ExpansionHierarchy& hierarchy,
                                   const Prefix& prefix);

}  // namespace paw

#endif  // PAW_PROVENANCE_EXEC_VIEW_H_

#ifndef PAW_PROVENANCE_DIFF_H_
#define PAW_PROVENANCE_DIFF_H_

/// \file diff.h
/// \brief Execution comparison for debugging workflows (paper Sec. 1:
/// "Finding erroneous or suspect data, a user may then ask provenance
/// queries to determine what downstream data might have been affected,
/// or to understand how the process failed").
///
/// Two executions of the same specification share the deterministic
/// schedule (same process ids), so they can be compared activation by
/// activation. The diff reports which data items diverged and, crucially,
/// the *first* diverging activation in schedule order — the natural
/// debugging entry point — plus the downstream blast radius of that
/// divergence.

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/provenance/execution.h"

namespace paw {

/// \brief One diverging data item position.
struct ItemDivergence {
  DataItemId item;  // id valid in both executions (same schedule)
  std::string label;
  std::string value_a;
  std::string value_b;
  /// Process id of the producer (-1 when produced by the input node).
  int producer_process = -1;
};

/// \brief Result of comparing two executions of one specification.
struct ExecutionDiff {
  /// True iff node counts/kinds/items all match structurally.
  bool comparable = false;
  /// All diverging items, in item-id order.
  std::vector<ItemDivergence> divergences;
  /// The first diverging activation in schedule order; -1 if none or if
  /// the divergence starts at the workflow inputs.
  int first_divergent_process = -1;
  /// Process ids transitively downstream of the first divergence.
  std::vector<int> affected_processes;

  bool identical() const { return comparable && divergences.empty(); }
};

/// \brief Compares two executions of the same specification.
///
/// FailedPrecondition when the executions have different specifications
/// or structures (different schedules cannot be aligned).
Result<ExecutionDiff> DiffExecutions(const Execution& a, const Execution& b);

}  // namespace paw

#endif  // PAW_PROVENANCE_DIFF_H_

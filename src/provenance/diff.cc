#include "src/provenance/diff.h"

#include <algorithm>
#include <set>

#include "src/graph/algorithms.h"

namespace paw {

Result<ExecutionDiff> DiffExecutions(const Execution& a,
                                     const Execution& b) {
  if (&a.spec() != &b.spec()) {
    return Status::FailedPrecondition(
        "executions instantiate different specifications");
  }
  if (a.num_nodes() != b.num_nodes() || a.num_items() != b.num_items()) {
    return Status::FailedPrecondition(
        "executions have different structure");
  }
  for (int i = 0; i < a.num_nodes(); ++i) {
    const ExecNode& na = a.node(ExecNodeId(i));
    const ExecNode& nb = b.node(ExecNodeId(i));
    if (na.kind != nb.kind || na.module != nb.module ||
        na.process_id != nb.process_id) {
      return Status::FailedPrecondition(
          "executions diverge structurally at node " + std::to_string(i));
    }
  }

  ExecutionDiff diff;
  diff.comparable = true;
  for (int i = 0; i < a.num_items(); ++i) {
    const DataItem& da = a.item(DataItemId(i));
    const DataItem& db = b.item(DataItemId(i));
    if (da.value == db.value) continue;
    ItemDivergence d;
    d.item = da.id;
    d.label = da.label;
    d.value_a = da.value;
    d.value_b = db.value;
    d.producer_process = a.node(da.producer).process_id;
    diff.divergences.push_back(std::move(d));
  }
  if (diff.divergences.empty()) return diff;

  // First diverging activation in schedule order. A divergence produced
  // by the input node (process -1) means the *inputs* differed, which
  // dominates any downstream activation.
  bool inputs_diverged = false;
  int first = -1;
  for (const ItemDivergence& d : diff.divergences) {
    if (d.producer_process < 0) {
      inputs_diverged = true;
      continue;
    }
    if (first < 0 || d.producer_process < first) {
      first = d.producer_process;
    }
  }
  diff.first_divergent_process = inputs_diverged ? -1 : first;

  // Blast radius: everything reachable from the earliest divergent
  // producer (or from the input node when inputs differed).
  ExecNodeId origin;
  if (diff.first_divergent_process >= 0) {
    PAW_ASSIGN_OR_RETURN(origin,
                         a.FindByProcess(diff.first_divergent_process));
  } else {
    for (const ExecNode& n : a.nodes()) {
      if (n.kind == ExecNodeKind::kInput) origin = n.id;
    }
  }
  if (origin.valid()) {
    std::set<int> processes;
    for (NodeIndex w : ReachableFrom(a.graph(), origin.value())) {
      int p = a.node(ExecNodeId(w)).process_id;
      if (p >= 0) processes.insert(p);
    }
    diff.affected_processes.assign(processes.begin(), processes.end());
  }
  return diff;
}

}  // namespace paw

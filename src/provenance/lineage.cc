#include "src/provenance/lineage.h"

#include <algorithm>

namespace paw {
namespace {

LineageResult BuildResult(const Execution& exec,
                          std::vector<NodeIndex> cone) {
  std::sort(cone.begin(), cone.end());
  LineageResult result;
  InducedSubgraph sub = Induce(exec.graph(), cone);
  result.subgraph = std::move(sub.graph);
  result.nodes.reserve(sub.kept.size());
  for (NodeIndex n : sub.kept) result.nodes.push_back(ExecNodeId(n));
  // Items: those flowing on any edge inside the cone.
  std::vector<bool> in_cone(static_cast<size_t>(exec.num_nodes()), false);
  for (NodeIndex n : sub.kept) in_cone[static_cast<size_t>(n)] = true;
  std::vector<bool> seen_item(static_cast<size_t>(exec.num_items()), false);
  for (NodeIndex u : sub.kept) {
    for (NodeIndex v : exec.graph().OutNeighbors(u)) {
      if (!in_cone[static_cast<size_t>(v)]) continue;
      for (DataItemId d : exec.ItemsOn(ExecNodeId(u), ExecNodeId(v))) {
        if (!seen_item[static_cast<size_t>(d.value())]) {
          seen_item[static_cast<size_t>(d.value())] = true;
          result.items.push_back(d);
        }
      }
    }
  }
  std::sort(result.items.begin(), result.items.end());
  return result;
}

}  // namespace

Result<LineageResult> ProvenanceOf(const Execution& exec, DataItemId d) {
  if (d.value() < 0 || d.value() >= exec.num_items()) {
    return Status::InvalidArgument("unknown data item");
  }
  ExecNodeId producer = exec.item(d).producer;
  std::vector<NodeIndex> cone = CanReach(exec.graph(), producer.value());
  return BuildResult(exec, std::move(cone));
}

Result<LineageResult> ProvenanceOfNode(const Execution& exec,
                                       ExecNodeId node) {
  if (node.value() < 0 || node.value() >= exec.num_nodes()) {
    return Status::InvalidArgument("unknown exec node");
  }
  std::vector<NodeIndex> cone = CanReach(exec.graph(), node.value());
  return BuildResult(exec, std::move(cone));
}

Result<LineageResult> AffectedBy(const Execution& exec, DataItemId d) {
  if (d.value() < 0 || d.value() >= exec.num_items()) {
    return Status::InvalidArgument("unknown data item");
  }
  // Start from the consumers of d (the producer itself is not "affected").
  std::vector<NodeIndex> starts;
  const Digraph& g = exec.graph();
  ExecNodeId producer = exec.item(d).producer;
  for (NodeIndex v : g.OutNeighbors(producer.value())) {
    const auto& items = exec.ItemsOn(producer, ExecNodeId(v));
    if (std::find(items.begin(), items.end(), d) != items.end()) {
      starts.push_back(v);
    }
  }
  std::vector<NodeIndex> cone = ReachableFrom(g, starts);
  return BuildResult(exec, std::move(cone));
}

bool Contributes(const Execution& exec, ExecNodeId src, ExecNodeId dst) {
  return PathExists(exec.graph(), src.value(), dst.value());
}

}  // namespace paw

#ifndef PAW_PROVENANCE_SERIALIZE_H_
#define PAW_PROVENANCE_SERIALIZE_H_

/// \file serialize.h
/// \brief Text format for provenance graphs.
///
/// Repositories persist executions alongside their specifications:
///
/// \code
///   execution spec="disease susceptibility"
///   node 0 input I process=-1 enclosing=-1
///   node 1 begin M1 process=1 enclosing=-1
///   node 2 atomic M3 process=2 enclosing=1
///   item 0 label="SNPs" producer=0 value="rs429358,rs7412"
///   flow 0 1 items="0;1"
/// \endcode
///
/// Parsing requires the owning `Specification` (module codes resolve
/// against it); round-trip is exact and validated by tests.

#include <string>

#include "src/common/status.h"
#include "src/provenance/execution.h"

namespace paw {

/// \brief Renders `exec` in the text format above.
std::string SerializeExecution(const Execution& exec);

/// \brief Parses the text format against `spec`.
///
/// Fails when the named spec does not match `spec.name()`, when module
/// codes are unknown, or when ids are inconsistent.
Result<Execution> ParseExecution(const std::string& text,
                                 const Specification& spec);

}  // namespace paw

#endif  // PAW_PROVENANCE_SERIALIZE_H_

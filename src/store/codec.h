#ifndef PAW_STORE_CODEC_H_
#define PAW_STORE_CODEC_H_

/// \file codec.h
/// \brief Payload layouts for `kSpec` and `kExecution` records.
///
/// Payloads reuse the existing *text* serializers — a spec payload
/// embeds the `Serialize()` text plus the `SerializePolicy()` text, an
/// execution payload embeds `SerializeExecution()` text — framed with
/// fixed-width lengths so the store never needs to re-tokenize:
///
/// \code
///   spec payload:       u32 spec_len | spec text | u32 policy_len | policy text
///   execution payload:  u32 spec_id  | execution text
/// \endcode
///
/// `ApplyRecord` replays one decoded record into a `Repository`; it is
/// the single code path used by both snapshot loading and WAL replay,
/// so recovered state is bit-identical to freshly ingested state.

#include <string>

#include "src/common/status.h"
#include "src/privacy/policy.h"
#include "src/provenance/execution.h"
#include "src/repo/repository.h"
#include "src/store/record.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Builds a `kSpec` payload from a spec and its policy.
std::string EncodeSpecPayload(const Specification& spec,
                              const PolicySet& policy);

/// \brief Decodes a `kSpec` payload back into a spec + policy.
struct DecodedSpec {
  Specification spec;
  PolicySet policy;
};
Result<DecodedSpec> DecodeSpecPayload(std::string_view payload);

/// \brief Builds a `kExecution` payload for an execution of `spec_id`.
std::string EncodeExecutionPayload(int spec_id, const Execution& exec);

/// \brief Splits a `kExecution` payload into its spec id and the
/// execution text (parsed later against the owning spec).
Status DecodeExecutionPayload(std::string_view payload, int* spec_id,
                              std::string* exec_text);

/// \brief Replays one `kSpec` / `kExecution` record into `repo`.
///
/// Entries are assigned the next dense id, so replaying records in
/// append order reproduces the original id assignment exactly.
Status ApplyRecord(const Record& record, Repository* repo);

/// \brief Durability metadata for an entry persisted as `payload` at
/// `lsn`; `origin` is the locator prefix ("wal" or "snapshot").
PersistMeta MakePersistMeta(uint64_t lsn, std::string_view payload,
                            std::string_view origin);

}  // namespace paw

#endif  // PAW_STORE_CODEC_H_

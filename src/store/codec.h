#ifndef PAW_STORE_CODEC_H_
#define PAW_STORE_CODEC_H_

/// \file codec.h
/// \brief Payload layouts for spec and execution records, v1 and v2.
///
/// **v1 (text)** payloads embed the human-readable serializers — a spec
/// payload carries `Serialize()` text plus `SerializePolicy()` text, an
/// execution payload carries `SerializeExecution()` text — framed with
/// fixed-width lengths:
///
/// \code
///   kSpec:       u32 spec_len | spec text | u32 policy_len | policy text
///   kExecution:  u32 spec_id  | execution text
/// \endcode
///
/// **v2 (binary)** payloads are length-prefixed binary: varint ids and
/// counts, raw (unescaped, unquoted) string bytes. Replay re-tokenizes
/// nothing — module references are dense indices, not codes — which is
/// what makes binary replay parse-free (bench_store E10e):
///
/// \code
///   kSpecV2:
///     str name | varint n_workflows | varint root
///     n_workflows x { str code | str name | zigzag level }
///     varint n_modules
///     n_modules x { str code | varint workflow | u8 kind | str name |
///                   varint expansion+1 | varint n_keywords | str... }
///     varint n_edges
///     n_edges x { varint src | varint dst | varint n_labels | str... }
///     zigzag default_level | varint n_labels x { str label | zigzag lv }
///     varint n_module_reqs x { str code | zigzag64 gamma | zigzag lv }
///     varint n_structural x { str src | str dst | zigzag lv }
///
///   kExecutionV2:
///     varint spec_id | varint n_nodes
///     n_nodes x { u8 kind | varint module | zigzag process |
///                 varint enclosing+1 }
///     varint n_items x { str label | varint producer | str value }
///     varint n_flows x { varint from | varint to |
///                        varint n_item_ids | varint item_id... }
/// \endcode
///
/// where `str` is a varint byte length followed by the raw bytes. The
/// binary format carries arbitrary bytes (raw newlines, semicolons, any
/// UTF-8) that the line-oriented text format cannot.
///
/// `ApplyRecord` replays one decoded record of either version into a
/// `Repository`; it is the single code path used by both snapshot
/// loading and WAL replay, so recovered state is bit-identical to
/// freshly ingested state.

#include <string>

#include "src/common/status.h"
#include "src/privacy/policy.h"
#include "src/provenance/execution.h"
#include "src/repo/repository.h"
#include "src/store/record.h"
#include "src/workflow/spec.h"

namespace paw {

/// \brief Which payload format the store writes. Both are always
/// readable; the knob controls appends and snapshot rewrites only.
enum class PayloadCodec {
  /// v2 binary payloads (`kSpecV2` / `kExecutionV2`): compact and
  /// parse-free on replay. The default.
  kBinary,
  /// v1 text payloads (`kSpec` / `kExecution`): human-recoverable with
  /// a hex editor, but re-tokenized on every replay.
  kText,
};

/// \brief Short name of a payload codec ("binary" / "text").
std::string_view PayloadCodecName(PayloadCodec codec);

// ---- v1 text payloads -------------------------------------------------------

/// \brief Builds a v1 `kSpec` payload from a spec and its policy.
std::string EncodeSpecPayload(const Specification& spec,
                              const PolicySet& policy);

/// \brief Decodes a `kSpec` payload back into a spec + policy.
struct DecodedSpec {
  Specification spec;
  PolicySet policy;
};
Result<DecodedSpec> DecodeSpecPayload(std::string_view payload);

/// \brief Builds a v1 `kExecution` payload for an execution of `spec_id`.
std::string EncodeExecutionPayload(int spec_id, const Execution& exec);

/// \brief A v1 `kExecution` payload split into its spec id and the
/// execution text (parsed later against the owning spec).
struct DecodedExecutionText {
  int spec_id = -1;
  std::string exec_text;
};
Result<DecodedExecutionText> DecodeExecutionPayload(
    std::string_view payload);

// ---- v2 binary payloads -----------------------------------------------------

/// \brief Builds a v2 `kSpecV2` payload from a spec and its policy.
std::string EncodeSpecPayloadV2(const Specification& spec,
                                const PolicySet& policy);

/// \brief Decodes a `kSpecV2` payload; validates the rebuilt spec and
/// policy exactly as ingest does.
Result<DecodedSpec> DecodeSpecPayloadV2(std::string_view payload);

/// \brief Builds a v2 `kExecutionV2` payload for an execution of
/// `spec_id`.
std::string EncodeExecutionPayloadV2(int spec_id, const Execution& exec);

/// \brief Decodes a v2 execution payload against its owning spec.
Result<Execution> DecodeExecutionPayloadV2(std::string_view payload,
                                           const Specification& spec);

/// \brief Reads just the spec id of a `kExecution` / `kExecutionV2`
/// payload (replay needs it to locate the owning spec before the body
/// can be decoded). Rejects ids outside [0, INT32_MAX].
Result<int> DecodeExecutionSpecId(RecordType type,
                                  std::string_view payload);

// ---- Replay -----------------------------------------------------------------

/// \brief Replays one spec / execution record (either version) into
/// `repo`.
///
/// Entries are assigned the next dense id, so replaying records in
/// append order reproduces the original id assignment exactly.
Status ApplyRecord(const Record& record, Repository* repo);

/// \brief Durability metadata for an entry persisted as `payload` at
/// `lsn`; `origin` is the locator prefix ("wal" or "snapshot").
PersistMeta MakePersistMeta(uint64_t lsn, std::string_view payload,
                            std::string_view origin);

}  // namespace paw

#endif  // PAW_STORE_CODEC_H_

#ifndef PAW_STORE_SNAPSHOT_H_
#define PAW_STORE_SNAPSHOT_H_

/// \file snapshot.h
/// \brief Full-repository snapshots with log truncation support.
///
/// A snapshot is a record stream (record.h) in a file named
/// `snapshot-<lsn>.paws`, where `<lsn>` — zero-padded to 20 digits so
/// lexicographic and numeric order agree — is the LSN of the last WAL
/// record folded in. The stream is a `kSnapshotHeader` (payload:
/// fixed64 covered LSN) followed by every `kSpec` record in id order,
/// then every `kExecution` record in id order, re-encoded through the
/// same codec the WAL uses.
///
/// Snapshots are written to a temp file and renamed into place, so a
/// crash mid-snapshot leaves the previous snapshot (or none) intact;
/// recovery then simply replays a longer log suffix.

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/repo/repository.h"
#include "src/store/codec.h"

namespace paw {

/// \brief A discovered or freshly written snapshot file.
struct SnapshotInfo {
  /// LSN of the last record the snapshot covers.
  uint64_t lsn = 0;
  /// Full path of the snapshot file.
  std::string path;
};

/// \brief File name for a snapshot covering `lsn`.
std::string SnapshotFileName(uint64_t lsn);

/// \brief Writes a snapshot of `repo` covering `lsn` into `dir`
/// (atomically), re-encoding every record with `codec`. Returns the
/// new snapshot's info. Compacting with the default binary codec is
/// how a v1 store's records get upgraded to v2 payloads.
Result<SnapshotInfo> WriteSnapshot(const std::string& dir,
                                   const Repository& repo, uint64_t lsn,
                                   PayloadCodec codec = PayloadCodec::kBinary);

/// \brief Same, over a pinned `RepositoryView` — the background
/// compaction path: the view freezes the covered prefix, so the
/// snapshot is consistent even while a writer thread keeps appending
/// to the live repository behind it.
Result<SnapshotInfo> WriteSnapshot(const std::string& dir,
                                   const RepositoryView& view, uint64_t lsn,
                                   PayloadCodec codec = PayloadCodec::kBinary);

/// \brief Highest-LSN snapshot under `dir`; NotFound when none exists.
Result<SnapshotInfo> FindLatestSnapshot(const std::string& dir);

/// \brief Loads a snapshot into `repo` (which must be empty) and
/// returns the LSN it covers. Any framing or checksum damage fails the
/// whole load — snapshots are written atomically, so unlike the WAL a
/// torn snapshot is corruption, not an expected crash artifact.
Result<uint64_t> LoadSnapshot(const std::string& path, Repository* repo);

/// \brief Deletes every snapshot in `dir` older than `keep_lsn`.
Status RemoveSnapshotsBefore(const std::string& dir, uint64_t keep_lsn);

}  // namespace paw

#endif  // PAW_STORE_SNAPSHOT_H_

#include "src/store/snapshot.h"

#include <cstdio>

#include "src/common/file_io.h"
#include "src/store/codec.h"
#include "src/store/record.h"

namespace paw {
namespace {

constexpr std::string_view kPrefix = "snapshot-";
constexpr std::string_view kSuffix = ".paws";

/// Parses "snapshot-<20 digits>.paws" into its LSN; false otherwise.
bool ParseSnapshotName(const std::string& name, uint64_t* lsn) {
  if (name.size() != kPrefix.size() + 20 + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < kPrefix.size() + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *lsn = value;
  return true;
}

}  // namespace

std::string SnapshotFileName(uint64_t lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.paws",
                static_cast<unsigned long long>(lsn));
  return buf;
}

Result<SnapshotInfo> WriteSnapshot(const std::string& dir,
                                   const Repository& repo, uint64_t lsn,
                                   PayloadCodec codec) {
  return WriteSnapshot(dir, repo.View(), lsn, codec);
}

namespace {

/// Bytes buffered in user space before the snapshot stream is pushed
/// to the OS. Bounds snapshot memory by the largest single record plus
/// this constant instead of the whole store's encoded size.
constexpr int64_t kSnapshotFlushBytes = 1 << 20;

/// Appends one record frame to the temp file, flushing when the
/// user-space buffer passes the threshold. `scratch` is reused across
/// calls so the per-record allocation amortizes away.
Status StreamRecord(AppendOnlyFile* file, RecordType type,
                    std::string&& payload, std::string* scratch,
                    int64_t* buffered) {
  scratch->clear();
  AppendRecord(type, payload, scratch);
  PAW_RETURN_NOT_OK(file->Append(*scratch));
  *buffered += static_cast<int64_t>(scratch->size());
  if (*buffered >= kSnapshotFlushBytes) {
    PAW_RETURN_NOT_OK(file->Flush());
    *buffered = 0;
  }
  return Status::OK();
}

}  // namespace

Result<SnapshotInfo> WriteSnapshot(const std::string& dir,
                                   const RepositoryView& view, uint64_t lsn,
                                   PayloadCodec codec) {
  const bool binary = codec == PayloadCodec::kBinary;
  SnapshotInfo info;
  info.lsn = lsn;
  info.path = dir + "/" + SnapshotFileName(lsn);
  // Stream records straight to the temp file instead of encoding the
  // whole repository into one in-memory string first — a multi-GB
  // store must not need a multi-GB snapshot buffer. The temp path is
  // the same `<path>.tmp` AtomicWriteFile uses, so the stale-temp
  // reclaim on open covers a crash mid-stream; the rename after the
  // final Sync is what publishes the snapshot atomically.
  const std::string tmp = info.path + ".tmp";
  PAW_RETURN_NOT_OK(RemoveFileIfExists(tmp));
  auto opened = AppendOnlyFile::Open(tmp);
  if (!opened.ok()) return opened.status();
  {
    AppendOnlyFile file = std::move(opened).value();
    std::string scratch;
    int64_t buffered = 0;
    std::string header_payload;
    PutFixed64(&header_payload, lsn);
    Status st = StreamRecord(&file, RecordType::kSnapshotHeader,
                             std::move(header_payload), &scratch, &buffered);
    for (const SpecEntry* entry : view.specs) {
      if (!st.ok()) break;
      st = StreamRecord(
          &file, binary ? RecordType::kSpecV2 : RecordType::kSpec,
          binary ? EncodeSpecPayloadV2(entry->spec, entry->policy)
                 : EncodeSpecPayload(entry->spec, entry->policy),
          &scratch, &buffered);
    }
    for (const ExecutionEntry* entry : view.execs) {
      if (!st.ok()) break;
      st = StreamRecord(
          &file, binary ? RecordType::kExecutionV2 : RecordType::kExecution,
          binary ? EncodeExecutionPayloadV2(entry->spec_id, entry->exec)
                 : EncodeExecutionPayload(entry->spec_id, entry->exec),
          &scratch, &buffered);
    }
    if (st.ok()) st = file.Sync();
    if (!st.ok()) {
      (void)RemoveFileIfExists(tmp);
      return st;
    }
  }
  PAW_RETURN_NOT_OK(RenameFile(tmp, info.path));
  return info;
}

Result<SnapshotInfo> FindLatestSnapshot(const std::string& dir) {
  PAW_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir));
  SnapshotInfo best;
  bool found = false;
  for (const std::string& name : names) {
    uint64_t lsn = 0;
    if (!ParseSnapshotName(name, &lsn)) continue;
    if (!found || lsn > best.lsn) {
      best.lsn = lsn;
      best.path = dir + "/" + name;
      found = true;
    }
  }
  if (!found) return Status::NotFound("no snapshot under " + dir);
  return best;
}

Result<uint64_t> LoadSnapshot(const std::string& path, Repository* repo) {
  if (repo->num_specs() != 0 || repo->num_executions() != 0) {
    return Status::FailedPrecondition(
        "LoadSnapshot requires an empty repository");
  }
  PAW_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  RecordReader reader(contents);
  Record record;
  ReadOutcome outcome = reader.Next(&record);
  if (outcome != ReadOutcome::kRecord ||
      record.type != RecordType::kSnapshotHeader) {
    return Status::FailedPrecondition("not a snapshot file: " + path);
  }
  uint64_t lsn = 0;
  {
    size_t pos = 0;
    if (!GetFixed64(record.payload, &pos, &lsn) ||
        pos != record.payload.size()) {
      return Status::FailedPrecondition("corrupt snapshot header: " + path);
    }
  }
  while ((outcome = reader.Next(&record)) == ReadOutcome::kRecord) {
    PAW_RETURN_NOT_OK(ApplyRecord(record, repo));
    // Stamp durability metadata on the entry just applied. A snapshot
    // does not retain per-record append LSNs, so entries carry the
    // covering snapshot's LSN (an upper bound of the original one).
    PersistMeta meta = MakePersistMeta(lsn, record.payload, "snapshot");
    if (record.type == RecordType::kSpec ||
        record.type == RecordType::kSpecV2) {
      repo->SetSpecPersist(repo->num_specs() - 1, std::move(meta));
    } else if (record.type == RecordType::kExecution ||
               record.type == RecordType::kExecutionV2) {
      repo->SetExecutionPersist(
          ExecutionId(repo->num_executions() - 1), std::move(meta));
    }
  }
  if (outcome == ReadOutcome::kTornTail) {
    return Status::Internal("corrupt snapshot " + path + ": " +
                            reader.tail_error());
  }
  return lsn;
}

Status RemoveSnapshotsBefore(const std::string& dir, uint64_t keep_lsn) {
  PAW_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir));
  for (const std::string& name : names) {
    uint64_t lsn = 0;
    if (ParseSnapshotName(name, &lsn) && lsn < keep_lsn) {
      PAW_RETURN_NOT_OK(RemoveFileIfExists(dir + "/" + name));
    }
  }
  return Status::OK();
}

}  // namespace paw

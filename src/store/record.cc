#include "src/store/record.h"

#include "src/common/crc32.h"

namespace paw {

std::string_view RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kWalHeader:
      return "wal-header";
    case RecordType::kSpec:
      return "spec";
    case RecordType::kExecution:
      return "execution";
    case RecordType::kSnapshotHeader:
      return "snapshot-header";
    case RecordType::kSpecV2:
      return "spec-v2";
    case RecordType::kExecutionV2:
      return "execution-v2";
  }
  return "unknown";
}

void PutFixed32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutFixed64(std::string* out, uint64_t v) {
  PutFixed32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutFixed32(out, static_cast<uint32_t>(v >> 32));
}

bool GetFixed32(std::string_view buf, size_t* offset, uint32_t* v) {
  if (buf.size() - *offset < 4 || *offset > buf.size()) return false;
  const auto* p =
      reinterpret_cast<const unsigned char*>(buf.data() + *offset);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  *offset += 4;
  return true;
}

bool GetFixed64(std::string_view buf, size_t* offset, uint64_t* v) {
  uint32_t lo, hi;
  if (!GetFixed32(buf, offset, &lo)) return false;
  if (!GetFixed32(buf, offset, &hi)) {
    *offset -= 4;
    return false;
  }
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

void PutVarint32(std::string* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint64(std::string_view buf, size_t* offset, uint64_t* v) {
  uint64_t result = 0;
  size_t pos = *offset;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (pos >= buf.size()) return false;
    const uint8_t byte = static_cast<uint8_t>(buf[pos++]);
    // The tenth byte may only carry the single remaining bit.
    if (shift == 63 && (byte & 0xFE) != 0) return false;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *offset = pos;
      *v = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(std::string_view buf, size_t* offset, uint32_t* v) {
  size_t pos = *offset;
  uint64_t wide = 0;
  if (!GetVarint64(buf, &pos, &wide) || wide > 0xFFFFFFFFull) return false;
  *offset = pos;
  *v = static_cast<uint32_t>(wide);
  return true;
}

void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool GetLengthPrefixed(std::string_view buf, size_t* offset,
                       std::string_view* v) {
  size_t pos = *offset;
  uint32_t len = 0;
  if (!GetVarint32(buf, &pos, &len) || len > kMaxPayloadLen) return false;
  if (!GetBytes(buf, &pos, len, v)) return false;
  *offset = pos;
  return true;
}

bool GetBytes(std::string_view buf, size_t* offset, size_t len,
              std::string_view* v) {
  if (*offset > buf.size() || buf.size() - *offset < len) return false;
  *v = buf.substr(*offset, len);
  *offset += len;
  return true;
}

void AppendRecord(RecordType type, std::string_view payload,
                  std::string* out) {
  const char type_byte = static_cast<char>(type);
  uint32_t crc = Crc32Update(0, &type_byte, 1);
  crc = Crc32Update(crc, payload.data(), payload.size());
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, crc);
  out->push_back(type_byte);
  out->append(payload.data(), payload.size());
}

ReadOutcome RecordReader::Next(Record* out) {
  if (done_) return final_;
  if (offset_ == buf_.size()) {
    done_ = true;
    return final_ = ReadOutcome::kEndOfData;
  }
  auto torn = [&](std::string why) {
    tail_error_ = std::move(why);
    done_ = true;
    return final_ = ReadOutcome::kTornTail;
  };
  size_t pos = offset_;
  uint32_t len, crc;
  if (!GetFixed32(buf_, &pos, &len) || !GetFixed32(buf_, &pos, &crc) ||
      pos >= buf_.size()) {
    return torn("truncated record header (" +
                std::to_string(buf_.size() - offset_) + " trailing bytes)");
  }
  if (len > kMaxPayloadLen) {
    return torn("implausible payload length " + std::to_string(len));
  }
  const char type_byte = buf_[pos++];
  std::string_view payload;
  if (!GetBytes(buf_, &pos, len, &payload)) {
    return torn("truncated payload: header promises " +
                std::to_string(len) + " bytes, " +
                std::to_string(buf_.size() - pos) + " remain");
  }
  uint32_t actual = Crc32Update(0, &type_byte, 1);
  actual = Crc32Update(actual, payload.data(), payload.size());
  if (actual != crc) {
    return torn("checksum mismatch on record at offset " +
                std::to_string(offset_));
  }
  out->type = static_cast<RecordType>(type_byte);
  out->payload.assign(payload.data(), payload.size());
  offset_ = pos;
  return ReadOutcome::kRecord;
}

}  // namespace paw

#ifndef PAW_STORE_RECORD_H_
#define PAW_STORE_RECORD_H_

/// \file record.h
/// \brief The binary record format shared by the WAL and snapshots.
///
/// A record is a length-prefixed, CRC-checksummed frame:
///
/// \code
///   +----------------+----------------+------+-------------------+
///   | payload_len u32| crc32      u32 | type | payload bytes ... |
///   +----------------+----------------+------+-------------------+
///        little-endian     over type+payload   payload_len bytes
/// \endcode
///
/// The CRC covers the type byte and the payload, so a frame whose
/// length field survived a crash but whose body did not is still
/// rejected. `RecordReader` walks a buffer and classifies the end of
/// data as either a clean end (buffer exhausted exactly at a record
/// boundary) or a *torn tail* (trailing bytes that do not form a whole,
/// checksummed record — the signature of a crash mid-append).

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace paw {

/// \brief What a store record contains.
enum class RecordType : uint8_t {
  /// WAL file header: payload = fixed64 base LSN.
  kWalHeader = 1,
  /// A specification + its policy, v1 *text* payload (see codec.h).
  kSpec = 2,
  /// An execution of a stored spec, v1 *text* payload (see codec.h).
  kExecution = 3,
  /// Snapshot file header: payload = fixed64 covered LSN.
  kSnapshotHeader = 4,
  /// A specification + its policy, v2 *binary* payload (see codec.h).
  kSpecV2 = 5,
  /// An execution of a stored spec, v2 *binary* payload (see codec.h).
  kExecutionV2 = 6,
};

/// \brief Short name of a record type ("spec", "execution", ...).
std::string_view RecordTypeName(RecordType type);

/// \brief A decoded record.
struct Record {
  RecordType type = RecordType::kSpec;
  std::string payload;
};

/// \brief Frame header size: u32 length + u32 crc + u8 type.
inline constexpr size_t kRecordHeaderSize = 9;

/// \brief Upper bound on a single payload; longer lengths are treated
/// as corruption rather than allocated.
inline constexpr uint32_t kMaxPayloadLen = 1u << 30;

/// \brief Appends the frame for (`type`, `payload`) to `out`.
void AppendRecord(RecordType type, std::string_view payload,
                  std::string* out);

// Little-endian fixed-width integers, used inside payloads.
void PutFixed32(std::string* out, uint32_t v);
void PutFixed64(std::string* out, uint64_t v);
/// \brief Reads a fixed32 at `*offset`, advancing it; false on overrun.
bool GetFixed32(std::string_view buf, size_t* offset, uint32_t* v);
bool GetFixed64(std::string_view buf, size_t* offset, uint64_t* v);
/// \brief Reads `len` bytes at `*offset`, advancing it; false on overrun.
bool GetBytes(std::string_view buf, size_t* offset, size_t len,
              std::string_view* v);

// LEB128 varints, used inside v2 binary payloads. `Get*` fail on
// overrun and on encodings wider than the target type.
void PutVarint32(std::string* out, uint32_t v);
void PutVarint64(std::string* out, uint64_t v);
bool GetVarint32(std::string_view buf, size_t* offset, uint32_t* v);
bool GetVarint64(std::string_view buf, size_t* offset, uint64_t* v);

/// \brief ZigZag mapping for signed fields that can be small negatives
/// (process ids, access levels): -1 -> 1, 0 -> 0, 1 -> 2, ...
inline uint32_t ZigZag32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^
         static_cast<uint32_t>(v >> 31);
}
inline int32_t UnZigZag32(uint32_t v) {
  return static_cast<int32_t>((v >> 1) ^ (~(v & 1) + 1));
}
inline uint64_t ZigZag64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t UnZigZag64(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// \brief Appends a varint length + raw bytes (the v2 string framing).
void PutLengthPrefixed(std::string* out, std::string_view s);
/// \brief Reads a length-prefixed string at `*offset`; false on
/// overrun or implausible length.
bool GetLengthPrefixed(std::string_view buf, size_t* offset,
                       std::string_view* v);

/// \brief Outcome of one `RecordReader::Next` call.
enum class ReadOutcome {
  /// A whole, checksum-valid record was produced.
  kRecord,
  /// The buffer ended exactly at a record boundary.
  kEndOfData,
  /// Trailing bytes do not form a valid record (crash mid-append or
  /// corruption); `RecordReader::tail_error()` says why.
  kTornTail,
};

/// \brief Sequential reader over a buffer of records.
class RecordReader {
 public:
  explicit RecordReader(std::string_view buf) : buf_(buf) {}

  /// \brief Decodes the next record. After `kTornTail` or `kEndOfData`
  /// every further call returns the same outcome.
  ReadOutcome Next(Record* out);

  /// \brief Bytes consumed by whole valid records (the safe prefix a
  /// torn file may be truncated to).
  size_t valid_bytes() const { return offset_; }

  /// \brief Bytes after the valid prefix (0 unless the tail is torn).
  size_t dropped_bytes() const { return buf_.size() - offset_; }

  /// \brief Why the tail was rejected (empty unless `kTornTail`).
  const std::string& tail_error() const { return tail_error_; }

 private:
  std::string_view buf_;
  size_t offset_ = 0;
  bool done_ = false;
  ReadOutcome final_ = ReadOutcome::kEndOfData;
  std::string tail_error_;
};

}  // namespace paw

#endif  // PAW_STORE_RECORD_H_

#ifndef PAW_STORE_LOCK_FILE_H_
#define PAW_STORE_LOCK_FILE_H_

/// \file lock_file.h
/// \brief Store-directory ownership lock.
///
/// Two processes opening the same store directory read-write is
/// undefined behavior (both would append to the same WAL). The lock
/// turns that into a clean `FailedPrecondition` at `Open`/`Init` time:
/// every read-write open takes an exclusive `flock` on `<dir>/LOCK`
/// and holds it for the life of the store handle. `flock` locks die
/// with the process, so a `kill -9`'d server never leaves a stale
/// lock behind — the next open simply succeeds.
///
/// The file's contents (`pid <n>`) are advisory diagnostics only: the
/// kernel lock is what excludes, the pid is what error messages and
/// `pawctl status` report. Read-only inspection (`pawctl status`)
/// probes with a shared non-blocking lock via `Probe` and merely warns.

#include <string>

#include "src/common/status.h"

namespace paw {

/// \brief File name of the lock inside a store directory.
inline constexpr const char* kStoreLockFileName = "LOCK";

/// \brief What `StoreDirLock::Probe` found out about a directory.
struct StoreLockProbe {
  /// True when some live process holds the exclusive lock.
  bool held = false;
  /// Pid recorded by the holder (0 when unknown / not held).
  long long holder_pid = 0;
};

/// \brief An exclusive, process-lifetime lock on one store directory.
///
/// Movable, not copyable; releases on destruction. Holding the lock
/// object is what keeps the flock alive — the store embeds it.
class StoreDirLock {
 public:
  /// \brief Takes the exclusive lock on `<dir>/LOCK` (creating the
  /// file if needed) without blocking. `FailedPrecondition` — naming
  /// the holder's pid — when another live process holds it.
  static Result<StoreDirLock> Acquire(const std::string& dir);

  /// \brief Non-destructively checks whether some process holds the
  /// exclusive lock on `<dir>/LOCK`. Never blocks; a missing lock
  /// file reports not-held.
  static Result<StoreLockProbe> Probe(const std::string& dir);

  StoreDirLock() = default;
  StoreDirLock(StoreDirLock&& other) noexcept;
  StoreDirLock& operator=(StoreDirLock&& other) noexcept;
  StoreDirLock(const StoreDirLock&) = delete;
  StoreDirLock& operator=(const StoreDirLock&) = delete;
  ~StoreDirLock();

  /// \brief True while this object holds a lock.
  bool held() const { return fd_ >= 0; }

  /// \brief Releases the lock early (no-op when not held).
  void Release();

  const std::string& path() const { return path_; }

 private:
  StoreDirLock(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
};

}  // namespace paw

#endif  // PAW_STORE_LOCK_FILE_H_

#include "src/store/lock_file.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace paw {
namespace {

std::string LockPath(const std::string& dir) {
  return dir + "/" + kStoreLockFileName;
}

/// Reads the holder pid recorded in the lock file; 0 when unreadable.
long long ReadHolderPid(int fd) {
  char buf[64] = {0};
  const ssize_t n = ::pread(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return 0;
  long long pid = 0;
  if (std::sscanf(buf, "pid %lld", &pid) != 1) return 0;
  return pid;
}

}  // namespace

Result<StoreDirLock> StoreDirLock::Acquire(const std::string& dir) {
  std::string path = LockPath(dir);
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;
    const long long holder = ReadHolderPid(fd);
    ::close(fd);
    if (err == EWOULDBLOCK) {
      std::string who = holder > 0 ? " (held by pid " +
                                         std::to_string(holder) + ")"
                                   : "";
      return Status::FailedPrecondition(
          dir + " is locked by another live process" + who +
          "; refusing a second read-write open");
    }
    return Status::Internal("flock " + path + ": " + std::strerror(err));
  }
  // Record the holder for diagnostics. Failure to write is not fatal:
  // the kernel lock is what excludes.
  char buf[64];
  const int len = std::snprintf(buf, sizeof(buf), "pid %lld\n",
                                static_cast<long long>(::getpid()));
  if (::ftruncate(fd, 0) == 0 && len > 0) {
    (void)!::pwrite(fd, buf, static_cast<size_t>(len), 0);
  }
  return StoreDirLock(std::move(path), fd);
}

Result<StoreLockProbe> StoreDirLock::Probe(const std::string& dir) {
  StoreLockProbe probe;
  const std::string path = LockPath(dir);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return probe;  // never locked
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  if (::flock(fd, LOCK_SH | LOCK_NB) == 0) {
    ::flock(fd, LOCK_UN);
  } else if (errno == EWOULDBLOCK) {
    probe.held = true;
    probe.holder_pid = ReadHolderPid(fd);
  } else {
    const int err = errno;
    ::close(fd);
    return Status::Internal("flock " + path + ": " + std::strerror(err));
  }
  ::close(fd);
  return probe;
}

StoreDirLock::StoreDirLock(StoreDirLock&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_) {
  other.fd_ = -1;
}

StoreDirLock& StoreDirLock::operator=(StoreDirLock&& other) noexcept {
  if (this != &other) {
    Release();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StoreDirLock::~StoreDirLock() { Release(); }

void StoreDirLock::Release() {
  if (fd_ < 0) return;
  ::flock(fd_, LOCK_UN);
  ::close(fd_);
  fd_ = -1;
}

}  // namespace paw

#ifndef PAW_STORE_WAL_H_
#define PAW_STORE_WAL_H_

/// \file wal.h
/// \brief Segmented append-only write-ahead log with torn-tail
/// recovery, group commit, and rotation.
///
/// The log of a store directory is a sequence of *segment* files
/// `wal-<seq>.log` (seq zero-padded to 8 digits, starting at 1) plus a
/// `PAWWAL` manifest naming the oldest live segment:
///
/// \code
///   <dir>/PAWWAL            pawwal 1
///                           first=<seq>
///   <dir>/wal-00000007.log  sealed segment
///   <dir>/wal-00000008.log  active segment (highest seq)
/// \endcode
///
/// Each segment is a flat file of records (record.h) whose first record
/// is a `kWalHeader` carrying the segment's *base LSN*: the number of
/// records logged before this segment was started. Record `i` of a
/// segment (0-based, header excluded) has LSN `base + i + 1`; segments
/// chain — segment `k+1`'s base equals segment `k`'s end — so LSNs stay
/// monotonic and dense across rotations and compactions.
///
/// **Rotation.** Only the highest-numbered segment (the *active* one)
/// accepts appends. `Rotate` — or, with `Options::segment_bytes` set, a
/// commit that pushes the active segment past the threshold — seals the
/// active segment (flush + fdatasync, so sealed segments never carry a
/// torn tail after a crash) and starts `wal-<seq+1>.log`. Sealed
/// segments are immutable; a background snapshot can read or cover them
/// while appends keep landing in the active segment, and once a
/// snapshot covers them they are deleted by bumping the manifest's
/// `first` (atomic) and unlinking oldest-first, so every crash point
/// leaves a recoverable store.
///
/// **Recovery.** `Open` reads the manifest (reconstructing it from the
/// segment files when absent — the crash window of a legacy upgrade),
/// reclaims stale segments below `first`, requires seqs `first..max` to
/// be contiguous, verifies the base-LSN chain, and replays all segments
/// in order. A torn tail in the active segment is the signature of a
/// crash mid-append: it is reported and physically truncated away. A
/// torn tail in a *sealed* segment can only be media corruption (seals
/// fsync); recovery then keeps the clean prefix — the tail is truncated,
/// every later segment is dropped, and the repaired segment becomes
/// active — never resurrecting records past the damage.
///
/// A legacy single-file `wal.log` (pre-segmentation layout) is upgraded
/// in place on `Open` by renaming it to `wal-00000001.log`.
///
/// **Group commit.** `Append` and `Sync` are thread-safe. Concurrent
/// appenders stage frames into a shared buffer under a mutex; one
/// caller becomes the *leader* and writes every staged frame in a
/// single `write()` (plus a single `fdatasync` when
/// `sync_each_append`), while the others wait as followers and return
/// as soon as the batch containing their frame commits. LSNs are
/// assigned in staging order, which is also file order, so replay
/// reconstructs the same assignment. A caller's record is on stable
/// storage when `Append` returns iff `sync_each_append` is set; with N
/// concurrent appenders the N fsyncs collapse into one per batch.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/file_io.h"
#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/store/record.h"

namespace paw {

/// \brief File name of WAL segment `seq` ("wal-00000007.log").
std::string WalSegmentFileName(uint64_t seq);

/// \brief A WAL segment file found on disk.
struct WalSegmentFile {
  uint64_t seq = 0;
  std::string path;
};

/// \brief Segment files under `dir`, sorted by seq (empty when none).
Result<std::vector<WalSegmentFile>> ListWalSegments(const std::string& dir);

/// \brief Reads `<dir>/PAWWAL` and returns its `first` seq; NotFound
/// when the manifest is absent, FailedPrecondition when malformed.
Result<uint64_t> ReadWalManifest(const std::string& dir);

/// \brief Atomically (re)writes `<dir>/PAWWAL` with `first=first_seq`.
/// This is the commit point of segment deletion: recovery ignores (and
/// reclaims) segments below `first`.
Status WriteWalManifest(const std::string& dir, uint64_t first_seq);

/// \brief Reads `<dir>/PAWREPL` and returns the retention floor: the
/// lowest segment seq a replication subscriber checkpoint still
/// references. Returns `WriteAheadLog::kNoRetainFloor` when the file
/// is absent (nothing pinned), FailedPrecondition when malformed.
Result<uint64_t> ReadWalRetainFloor(const std::string& dir);

/// \brief Atomically (re)writes `<dir>/PAWREPL` with `floor=floor_seq`;
/// `WriteAheadLog::kNoRetainFloor` removes the file (releases the pin).
Status WriteWalRetainFloor(const std::string& dir, uint64_t floor_seq);

/// \brief What `WriteAheadLog::Open` recovered from a log directory.
struct WalReplay {
  /// LSN of the last record logged before the oldest surviving
  /// segment was started (== that segment's header base).
  uint64_t base_lsn = 0;
  /// Whole, checksum-valid records across all segments, in append
  /// order. Record `i` has LSN `base_lsn + i + 1`.
  std::vector<Record> records;
  /// True when recovery hit a torn (partially written or corrupted)
  /// record — in the active segment, a crash mid-append; in a sealed
  /// segment, media corruption that also drops every later segment.
  bool torn_tail = false;
  /// Bytes dropped by repair truncation (plus the bytes of any later
  /// segments dropped after a mid-chain tear).
  uint64_t dropped_bytes = 0;
  /// Human-readable reason the tail was rejected.
  std::string tail_error;
  /// Whole records lost from segments after a mid-chain tear (always 0
  /// for a plain crash, which can only tear the active segment).
  uint64_t dropped_records = 0;
  /// Live segment files after recovery (>= 1).
  int segments = 0;
  /// Seq of the oldest live segment after recovery.
  uint64_t first_seq = 0;
  /// Segments below the manifest's `first` reclaimed on open (a crash
  /// between the manifest bump and the unlinks of a compaction).
  int stale_segments_removed = 0;
  /// Segments below the manifest's `first` kept on disk because the
  /// retention floor (`PAWREPL`) still pins them for a replication
  /// subscriber. They are not replayed — the snapshot covers them.
  int retained_segments = 0;
  /// True when a legacy single-file `wal.log` was upgraded in place.
  bool legacy_upgraded = false;
};

/// \brief Knobs of the write-ahead log.
struct WalOptions {
  /// fdatasync before `Append` returns (durable; one fsync per commit
  /// *group*, not per record); off by default — callers batch with
  /// explicit `Sync()`.
  bool sync_each_append = false;
  /// When > 0, a commit that leaves the active segment at or past this
  /// many bytes seals it and rotates to a fresh segment. 0 disables
  /// size-based rotation (segments then rotate only via `Rotate`).
  uint64_t segment_bytes = 0;
};

/// \brief What `WriteAheadLog::Rotate` just did.
struct WalRotation {
  /// Seq of the segment sealed by this rotation.
  uint64_t sealed_seq = 0;
  /// Seq of the new active segment (`sealed_seq + 1`).
  uint64_t active_seq = 0;
  /// LSN of the last record in the sealed segment == base LSN of the
  /// new active segment. Everything up to here is in sealed segments.
  uint64_t end_lsn = 0;
};

/// \brief The segmented write-ahead log of one store directory.
class WriteAheadLog {
 public:
  using Options = WalOptions;

  /// \brief Retention-floor value meaning "nothing pinned" (every seq
  /// compares below it, so reclaim is unrestricted).
  static constexpr uint64_t kNoRetainFloor = UINT64_MAX;

  /// \brief Tap on the group-commit leader: called after a batch is on
  /// disk (post fdatasync when `sync_each_append`, post flush
  /// otherwise) with the LSN of the batch's first record, the record
  /// count, the batch's raw record frames (record.h framing), and the
  /// per-record trace contexts captured at `Append` (one entry per
  /// record, null contexts for untraced appends). Invocations are
  /// serialized and arrive in LSN order — the caller holds the writer
  /// slot. Replication forks live batches here and stamps the stream's
  /// push frames from the contexts.
  using CommitSink = std::function<void(
      uint64_t first_lsn, uint64_t num_records, std::string_view frames,
      const std::vector<TraceContext>& traces)>;

  /// \brief Creates an empty log in `dir`: manifest `first=1` and
  /// segment 1 whose header carries `base_lsn`. Fails if `dir` already
  /// holds segments.
  static Result<WriteAheadLog> Create(const std::string& dir,
                                      uint64_t base_lsn,
                                      Options options = {});

  /// \brief Opens the log in `dir`, replays every live segment into
  /// `*replay`, repairs any torn tail, and positions for append on the
  /// active segment.
  static Result<WriteAheadLog> Open(const std::string& dir,
                                    WalReplay* replay,
                                    Options options = {});

  /// \brief Appends one record and returns its LSN. Thread-safe;
  /// concurrent calls are group-committed (see file comment). After an
  /// I/O error the log is poisoned and every further call returns that
  /// error (recover by reopening).
  Result<uint64_t> Append(RecordType type, std::string_view payload);

  /// \brief Pushes appended bytes to stable storage. Thread-safe.
  Status Sync();

  /// \brief Installs (or clears, with an empty function) the commit
  /// sink. Thread-safe; takes effect for the next committed batch.
  void SetCommitSink(CommitSink sink);

  /// \brief Persistently pins segments with seq >= `floor_seq`: neither
  /// open-time stale reclaim nor compaction cleanup unlinks them even
  /// after the manifest's `first` moves past them, so a lagging
  /// replication subscriber can still stream them. `kNoRetainFloor`
  /// releases the pin. Thread-safe; durable across reopen (`PAWREPL`).
  Status SetRetainFloor(uint64_t floor_seq);

  /// \brief Current retention floor (`kNoRetainFloor` when unpinned).
  uint64_t retain_floor() const {
    return rep_->retain_floor.load(std::memory_order_acquire);
  }

  /// \brief Seals the active segment (flush + fdatasync) and starts the
  /// next one. Thread-safe with concurrent `Append`s: frames staged
  /// before the rotation land in the sealed segment, frames staged
  /// after land in the new one. This is the cut point of a compaction —
  /// the returned `end_lsn` is exactly what a snapshot taken now
  /// covers.
  Result<WalRotation> Rotate();

  /// \brief LSN of the most recently staged record (== total records
  /// ever logged by this store, across compactions). Under concurrent
  /// appends this is a snapshot; use the LSN returned by `Append` for
  /// the caller's own record.
  uint64_t last_lsn() const {
    return rep_->last_lsn.load(std::memory_order_acquire);
  }

  /// \brief Base LSN of the *active* segment (the LSN rotation sealed
  /// everything up to).
  uint64_t base_lsn() const {
    return rep_->base_lsn.load(std::memory_order_acquire);
  }

  /// \brief Seq of the active segment. Sealed segments awaiting
  /// compaction exist iff this exceeds the manifest's `first`.
  uint64_t active_seq() const {
    return rep_->seq.load(std::memory_order_acquire);
  }

  /// \brief Committed size of the *active* segment in bytes (excludes
  /// frames still being staged by in-flight appends).
  int64_t size_bytes() const {
    return rep_->size_bytes.load(std::memory_order_acquire);
  }

  /// \brief Directory holding manifest + segments.
  const std::string& dir() const { return rep_->dir; }

  /// \brief Path of the active segment file. Under concurrent rotation
  /// this is a snapshot; meant for stats and tests.
  std::string path() const {
    std::lock_guard<std::mutex> lock(rep_->mu);
    return rep_->file.path();
  }

 private:
  /// Heap-held so the log stays movable while carrying a mutex, and so
  /// waiting followers keep a stable address to block on.
  struct Rep {
    Rep(AppendOnlyFile f, std::string d, uint64_t segment_seq,
        uint64_t base, uint64_t last, Options opts)
        : file(std::move(f)),
          dir(std::move(d)),
          options(opts),
          seq(segment_seq),
          base_lsn(base),
          last_lsn(last),
          size_bytes(file.size()) {}

    AppendOnlyFile file;  // active segment
    std::string dir;
    Options options;

    mutable std::mutex mu;
    std::condition_variable cv;
    std::atomic<uint64_t> seq;
    std::atomic<uint64_t> base_lsn;
    std::atomic<uint64_t> last_lsn;
    std::atomic<int64_t> size_bytes;
    /// LSN of the last record handed to the file (== last_lsn once all
    /// staged frames commit). Rotation seals exactly up to here.
    uint64_t committed_lsn = 0;
    /// Frames staged but not yet handed to the file.
    std::string pending;
    /// Record count behind `pending` (the group-commit batch-size
    /// metric needs records, not bytes).
    uint64_t pending_records = 0;
    /// Trace context of each staged record (captured from the
    /// appender's thread-local at `Append`), parallel to the records
    /// behind `pending`; swapped out with the batch at the cut.
    std::vector<TraceContext> pending_traces;
    /// Commit-group bookkeeping: a staged frame belongs to batch
    /// `next_batch_seq`; the leader that cuts a batch takes that seq
    /// and bumps it, and `committed_seq` trails behind as batches land.
    uint64_t next_batch_seq = 1;
    uint64_t committed_seq = 0;
    /// True while some thread is doing file I/O (leader, Sync, Rotate).
    bool writer_active = false;
    /// Sticky: a failed write poisons the log (mirrors AppendOnlyFile).
    Status error;
    /// Replication tap; copied under `mu`, invoked off-lock by the
    /// writer that committed the batch (so invocations serialize).
    CommitSink commit_sink;
    /// Serializes PAWREPL writes without stalling the staging mutex.
    std::mutex floor_mu;
    /// Lowest segment seq pinned on disk for a subscriber checkpoint.
    std::atomic<uint64_t> retain_floor{kNoRetainFloor};
  };

  WriteAheadLog(AppendOnlyFile file, std::string dir, uint64_t seq,
                uint64_t base_lsn, uint64_t last_lsn, Options options)
      : rep_(std::make_unique<Rep>(std::move(file), std::move(dir), seq,
                                   base_lsn, last_lsn, options)) {
    rep_->committed_lsn = last_lsn;
  }

  /// Seals the active segment and opens the next. Caller holds the
  /// writer slot with `lock` on `rep_->mu`. `pending` may be non-empty:
  /// staged-but-unwritten frames belong to batches after the cut and
  /// are later written to the *new* segment, whose base is the last
  /// committed LSN — exactly what keeps the chain dense. Do not flush
  /// them into the sealed segment here.
  Status RotateLocked(std::unique_lock<std::mutex>& lock);

  std::unique_ptr<Rep> rep_;
};

}  // namespace paw

#endif  // PAW_STORE_WAL_H_

#ifndef PAW_STORE_WAL_H_
#define PAW_STORE_WAL_H_

/// \file wal.h
/// \brief Append-only write-ahead log with torn-tail recovery and
/// group commit.
///
/// The log is a flat file of records (record.h). The first record is
/// always a `kWalHeader` whose payload holds the file's *base LSN*: the
/// number of records that had already been folded into a snapshot when
/// this log file was started. Record `i` (0-based, header excluded)
/// therefore has LSN `base + i + 1`, and LSNs stay monotonic across
/// compactions even though compaction replaces the file.
///
/// `Open` replays the existing file before allowing appends: a torn
/// tail (crash mid-append) is detected via the per-record checksums,
/// reported in `WalReplay`, and physically truncated away so the next
/// append lands on a clean boundary.
///
/// **Group commit.** `Append` and `Sync` are thread-safe. Concurrent
/// appenders stage frames into a shared buffer under a mutex; one
/// caller becomes the *leader* and writes every staged frame in a
/// single `write()` (plus a single `fdatasync` when
/// `sync_each_append`), while the others wait as followers and return
/// as soon as the batch containing their frame commits. LSNs are
/// assigned in staging order, which is also file order, so replay
/// reconstructs the same assignment. A caller's record is on stable
/// storage when `Append` returns iff `sync_each_append` is set; with N
/// concurrent appenders the N fsyncs collapse into one per batch.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/file_io.h"
#include "src/common/status.h"
#include "src/store/record.h"

namespace paw {

/// \brief What `WriteAheadLog::Open` found in an existing log file.
struct WalReplay {
  /// LSN of the last record already covered by a snapshot when the
  /// file was started.
  uint64_t base_lsn = 0;
  /// Whole, checksum-valid records after the header, in append order.
  std::vector<Record> records;
  /// True when the file ended in a torn (partially written) record.
  bool torn_tail = false;
  /// Bytes of torn tail dropped by repair truncation.
  uint64_t dropped_bytes = 0;
  /// Human-readable reason the tail was rejected.
  std::string tail_error;
};

/// \brief Knobs of the write-ahead log.
struct WalOptions {
  /// fdatasync before `Append` returns (durable; one fsync per commit
  /// *group*, not per record); off by default — callers batch with
  /// explicit `Sync()`.
  bool sync_each_append = false;
};

/// \brief The write-ahead log of one store directory.
class WriteAheadLog {
 public:
  using Options = WalOptions;

  /// \brief Creates (or truncates) `path` as an empty log whose first
  /// record will carry `base_lsn`.
  static Result<WriteAheadLog> Create(const std::string& path,
                                      uint64_t base_lsn,
                                      Options options = {});

  /// \brief Opens an existing log, replays it into `*replay`, repairs
  /// any torn tail, and positions for append.
  static Result<WriteAheadLog> Open(const std::string& path,
                                    WalReplay* replay,
                                    Options options = {});

  /// \brief Appends one record and returns its LSN. Thread-safe;
  /// concurrent calls are group-committed (see file comment). After an
  /// I/O error the log is poisoned and every further call returns that
  /// error (recover by reopening).
  Result<uint64_t> Append(RecordType type, std::string_view payload);

  /// \brief Pushes appended bytes to stable storage. Thread-safe.
  Status Sync();

  /// \brief LSN of the most recently staged record (== total records
  /// ever logged by this store, across compactions). `base_lsn()` when
  /// the file is empty. Under concurrent appends this is a snapshot;
  /// use the LSN returned by `Append` for the caller's own record.
  uint64_t last_lsn() const {
    return rep_->last_lsn.load(std::memory_order_acquire);
  }

  /// \brief Base LSN recorded in this file's header.
  uint64_t base_lsn() const { return rep_->base_lsn; }

  /// \brief Committed file size in bytes (excludes frames still being
  /// staged by in-flight appends).
  int64_t size_bytes() const {
    return rep_->size_bytes.load(std::memory_order_acquire);
  }

  const std::string& path() const { return rep_->path; }

 private:
  /// Heap-held so the log stays movable while carrying a mutex, and so
  /// waiting followers keep a stable address to block on.
  struct Rep {
    Rep(AppendOnlyFile f, uint64_t base, uint64_t last, Options opts)
        : file(std::move(f)),
          path(file.path()),
          base_lsn(base),
          options(opts),
          last_lsn(last),
          size_bytes(file.size()) {}

    AppendOnlyFile file;
    std::string path;
    uint64_t base_lsn;
    Options options;

    std::mutex mu;
    std::condition_variable cv;
    std::atomic<uint64_t> last_lsn;
    std::atomic<int64_t> size_bytes;
    /// Frames staged but not yet handed to the file.
    std::string pending;
    /// Commit-group bookkeeping: a staged frame belongs to batch
    /// `next_batch_seq`; the leader that cuts a batch takes that seq
    /// and bumps it, and `committed_seq` trails behind as batches land.
    uint64_t next_batch_seq = 1;
    uint64_t committed_seq = 0;
    /// True while some thread is doing file I/O (leader or Sync).
    bool writer_active = false;
    /// Sticky: a failed write poisons the log (mirrors AppendOnlyFile).
    Status error;
  };

  WriteAheadLog(AppendOnlyFile file, uint64_t base_lsn, uint64_t last_lsn,
                Options options)
      : rep_(std::make_unique<Rep>(std::move(file), base_lsn, last_lsn,
                                   options)) {}

  std::unique_ptr<Rep> rep_;
};

}  // namespace paw

#endif  // PAW_STORE_WAL_H_

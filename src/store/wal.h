#ifndef PAW_STORE_WAL_H_
#define PAW_STORE_WAL_H_

/// \file wal.h
/// \brief Append-only write-ahead log with torn-tail recovery.
///
/// The log is a flat file of records (record.h). The first record is
/// always a `kWalHeader` whose payload holds the file's *base LSN*: the
/// number of records that had already been folded into a snapshot when
/// this log file was started. Record `i` (0-based, header excluded)
/// therefore has LSN `base + i + 1`, and LSNs stay monotonic across
/// compactions even though compaction replaces the file.
///
/// `Open` replays the existing file before allowing appends: a torn
/// tail (crash mid-append) is detected via the per-record checksums,
/// reported in `WalReplay`, and physically truncated away so the next
/// append lands on a clean boundary.

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/file_io.h"
#include "src/common/status.h"
#include "src/store/record.h"

namespace paw {

/// \brief What `WriteAheadLog::Open` found in an existing log file.
struct WalReplay {
  /// LSN of the last record already covered by a snapshot when the
  /// file was started.
  uint64_t base_lsn = 0;
  /// Whole, checksum-valid records after the header, in append order.
  std::vector<Record> records;
  /// True when the file ended in a torn (partially written) record.
  bool torn_tail = false;
  /// Bytes of torn tail dropped by repair truncation.
  uint64_t dropped_bytes = 0;
  /// Human-readable reason the tail was rejected.
  std::string tail_error;
};

/// \brief Knobs of the write-ahead log.
struct WalOptions {
  /// fdatasync after every append (durable but slow); off by default
  /// — callers batch with explicit `Sync()`.
  bool sync_each_append = false;
};

/// \brief The write-ahead log of one store directory.
class WriteAheadLog {
 public:
  using Options = WalOptions;

  /// \brief Creates (or truncates) `path` as an empty log whose first
  /// record will carry `base_lsn`.
  static Result<WriteAheadLog> Create(const std::string& path,
                                      uint64_t base_lsn,
                                      Options options = {});

  /// \brief Opens an existing log, replays it into `*replay`, repairs
  /// any torn tail, and positions for append.
  static Result<WriteAheadLog> Open(const std::string& path,
                                    WalReplay* replay,
                                    Options options = {});

  /// \brief Appends one record; its LSN is `last_lsn()` after return.
  Status Append(RecordType type, std::string_view payload);

  /// \brief Pushes appended bytes to stable storage.
  Status Sync();

  /// \brief LSN of the most recently appended record (== total records
  /// ever logged by this store, across compactions). `base_lsn()` when
  /// the file is empty.
  uint64_t last_lsn() const { return last_lsn_; }

  /// \brief Base LSN recorded in this file's header.
  uint64_t base_lsn() const { return base_lsn_; }

  /// \brief Current file size in bytes (including buffered appends).
  int64_t size_bytes() const { return file_.size(); }

  const std::string& path() const { return file_.path(); }

 private:
  WriteAheadLog(AppendOnlyFile file, uint64_t base_lsn, uint64_t last_lsn,
                Options options)
      : file_(std::move(file)),
        base_lsn_(base_lsn),
        last_lsn_(last_lsn),
        options_(options) {}

  AppendOnlyFile file_;
  uint64_t base_lsn_ = 0;
  uint64_t last_lsn_ = 0;
  Options options_;
};

}  // namespace paw

#endif  // PAW_STORE_WAL_H_

#ifndef PAW_STORE_PERSISTENT_REPOSITORY_H_
#define PAW_STORE_PERSISTENT_REPOSITORY_H_

/// \file persistent_repository.h
/// \brief A `Repository` that survives process restarts.
///
/// Layers durability over the in-memory `Repository` with a classic
/// snapshot + write-ahead-log design. A store directory holds:
///
/// \code
///   <dir>/PAWSTORE                  format marker ("pawstore 2"; v1
///                                   stores carry "pawstore 1" and are
///                                   upgraded on first binary-codec open)
///   <dir>/wal.log                   record log (wal.h)
///   <dir>/snapshot-<lsn>.paws       latest full snapshot (snapshot.h)
/// \endcode
///
/// `AddSpecification` / `AddExecution` append a WAL record *before*
/// mutating memory, so anything visible in `repo()` is also in the log.
/// `Open` recovers by loading the newest snapshot and replaying only
/// the WAL suffix past the snapshot's LSN; a torn log tail (crash
/// mid-append) is detected, reported in `RecoveryInfo`, and truncated.
/// `Compact` writes a fresh snapshot and starts a new, empty log.

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/repo/repository.h"
#include "src/store/codec.h"
#include "src/store/wal.h"

namespace paw {

/// \brief Knobs of the persistent store.
struct StoreOptions {
  /// fdatasync before an append returns; off by default (use `Sync()`
  /// to batch durability points). Concurrent appenders share one fsync
  /// per commit group (wal.h).
  bool sync_each_append = false;
  /// When > 0, `Compact()` runs automatically after this many WAL
  /// records accumulate past the last snapshot.
  uint64_t snapshot_every = 0;
  /// Decode-verify every payload before it reaches the WAL, proving
  /// the record will replay (for the text codec this catches values
  /// the line-oriented format cannot carry, e.g. raw newlines). Costs
  /// one decode per append; disable only for ingest paths whose
  /// inputs are already known to round-trip.
  bool verify_payloads = true;
  /// Payload format for new records and snapshot rewrites. Opening a
  /// v1 (text-format) store with the binary codec upgrades the store's
  /// format marker to v2; both payload versions remain readable.
  PayloadCodec codec = PayloadCodec::kBinary;
  /// Used by `ShardedRepository` only: size of the writer pool that
  /// drains per-shard append queues (0 = synchronous appends on the
  /// caller thread, no pool).
  int writer_threads = 0;
};

/// \brief Durable provenance-aware workflow repository.
class PersistentRepository {
 public:
  using Options = StoreOptions;

  /// \brief What `Open` had to do to rebuild state.
  struct RecoveryInfo {
    /// LSN covered by the snapshot that seeded recovery; 0 when the
    /// store had no snapshot yet.
    uint64_t snapshot_lsn = 0;
    /// WAL records replayed on top of the snapshot.
    uint64_t records_replayed = 0;
    /// WAL records skipped because the snapshot already covered them
    /// (non-zero only after a crash between snapshot and log swap).
    uint64_t records_skipped = 0;
    /// True when the log ended in a torn record.
    bool torn_tail = false;
    /// Bytes of torn tail dropped during repair.
    uint64_t dropped_bytes = 0;
    /// Why the tail was rejected (empty unless `torn_tail`).
    std::string tail_error;
  };

  /// \brief Creates an empty store in `dir` (created if missing; must
  /// not already contain a store).
  static Result<PersistentRepository> Init(const std::string& dir,
                                           Options options = {});

  /// \brief Opens an existing store and recovers its state.
  static Result<PersistentRepository> Open(const std::string& dir,
                                           Options options = {});

  /// \brief Durably stores a specification; returns its id.
  Result<int> AddSpecification(Specification spec, PolicySet policy = {});

  /// \brief Durably stores an execution of spec `spec_id`. As with
  /// `Repository`, the execution must have been built against
  /// `repo().entry(spec_id).spec`.
  Result<ExecutionId> AddExecution(int spec_id, Execution exec);

  /// \brief Writes a snapshot covering everything logged so far and
  /// truncates the WAL to empty (new base LSN). Older snapshots are
  /// deleted. Recovery afterwards replays no records until new appends
  /// arrive.
  Status Compact();

  /// \brief Forces logged records to stable storage.
  Status Sync();

  /// \brief The recovered / live in-memory repository.
  const Repository& repo() const { return repo_; }

  /// \brief Total records ever logged (monotonic across compactions).
  uint64_t lsn() const { return wal_.last_lsn(); }

  /// \brief WAL records not yet covered by a snapshot.
  uint64_t records_since_snapshot() const {
    return wal_.last_lsn() - snapshot_lsn_;
  }

  /// \brief How the last `Open` rebuilt state (zeros after `Init`).
  const RecoveryInfo& recovery() const { return recovery_; }

  /// \brief On-disk format version from the `PAWSTORE` marker: 1 means
  /// every record is a v1 text payload, 2 means records may be binary.
  int format_version() const { return format_version_; }

  const std::string& dir() const { return dir_; }

 private:
  PersistentRepository(std::string dir, WriteAheadLog wal,
                       Options options)
      : dir_(std::move(dir)), wal_(std::move(wal)), options_(options) {}

  /// Runs `Compact()` when `options_.snapshot_every` is exceeded.
  Status MaybeAutoCompact();

  std::string dir_;
  Repository repo_;
  WriteAheadLog wal_;
  Options options_;
  uint64_t snapshot_lsn_ = 0;
  int format_version_ = 2;
  RecoveryInfo recovery_;
};

}  // namespace paw

#endif  // PAW_STORE_PERSISTENT_REPOSITORY_H_

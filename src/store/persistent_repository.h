#ifndef PAW_STORE_PERSISTENT_REPOSITORY_H_
#define PAW_STORE_PERSISTENT_REPOSITORY_H_

/// \file persistent_repository.h
/// \brief A `Repository` that survives process restarts.
///
/// Layers durability over the in-memory `Repository` with a classic
/// snapshot + write-ahead-log design. A store directory holds:
///
/// \code
///   <dir>/PAWSTORE                  format marker ("pawstore 2"; v1
///                                   stores carry "pawstore 1" and are
///                                   upgraded on first binary-codec open)
///   <dir>/PAWWAL                    WAL segment manifest (wal.h)
///   <dir>/wal-<seq>.log             WAL segments; highest seq is active
///   <dir>/snapshot-<lsn>.paws       latest full snapshot (snapshot.h)
/// \endcode
///
/// `AddSpecification` / `AddExecution` append a WAL record *before*
/// mutating memory, so anything visible in `repo()` is also in the log.
/// `Open` recovers by loading the newest snapshot and replaying only
/// the WAL suffix past the snapshot's LSN; a torn log tail (crash
/// mid-append) is detected, reported in `RecoveryInfo`, and truncated.
///
/// **Compaction.** `Compact` seals the WAL at a rotation cut, writes a
/// snapshot covering everything up to the cut, and deletes the sealed
/// segments the snapshot supersedes. `CompactAsync` does the same on a
/// background snapshot worker: the cut pins a `RepositoryView` (entry
/// pointers are stable and entries immutable once inserted), appends
/// keep landing in the fresh active segment while the worker encodes
/// and installs the snapshot, and every crash point in the
/// rotate → snapshot → manifest-bump → segment-delete sequence leaves
/// a recoverable store (recovery replays snapshot + surviving segments
/// in order, skipping records the snapshot already covers).
///
/// The writer contract is unchanged: one thread mutates the store at a
/// time (`ShardedRepository`'s writer queues provide exactly that per
/// shard). `Compact`/`CompactAsync` must be called from that writer
/// thread (or with no append in flight); `CompactAsync` returns as
/// soon as the cut is pinned, after which appends may resume
/// immediately. The store object may be moved while a background
/// compaction runs (the worker only touches heap-pinned state);
/// destruction joins the worker.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/repo/repository.h"
#include "src/store/codec.h"
#include "src/store/lock_file.h"
#include "src/store/wal.h"

namespace paw {

class ThreadPool;

/// \brief Where a (background or inline) compaction currently is; the
/// test hook `StoreOptions::compaction_hook` observes these in order.
enum class CompactionPhase {
  /// Cut pinned (WAL rotated, view captured); about to encode + write
  /// the snapshot file.
  kSnapshot,
  /// Snapshot durable on disk; about to bump the WAL manifest (the
  /// commit point of sealed-segment deletion).
  kInstall,
  /// Manifest bumped; about to unlink the superseded segments and old
  /// snapshots.
  kCleanup,
  /// Everything installed and cleaned; coverage published.
  kDone,
};

/// \brief Knobs of the persistent store.
struct StoreOptions {
  /// fdatasync before an append returns; off by default (use `Sync()`
  /// to batch durability points). Concurrent appenders share one fsync
  /// per commit group (wal.h).
  bool sync_each_append = false;
  /// When > 0, a compaction runs automatically after this many WAL
  /// records accumulate past the last snapshot (inline on the writer,
  /// or in the background with `background_compaction`).
  uint64_t snapshot_every = 0;
  /// Decode-verify every payload before it reaches the WAL, proving
  /// the record will replay (for the text codec this catches values
  /// the line-oriented format cannot carry, e.g. raw newlines). Costs
  /// one decode per append; disable only for ingest paths whose
  /// inputs are already known to round-trip.
  bool verify_payloads = true;
  /// Payload format for new records and snapshot rewrites. Opening a
  /// v1 (text-format) store with the binary codec upgrades the store's
  /// format marker to v2; both payload versions remain readable.
  PayloadCodec codec = PayloadCodec::kBinary;
  /// Used by `ShardedRepository` only: size of the writer pool that
  /// drains per-shard append queues (0 = synchronous appends on the
  /// caller thread, no pool).
  int writer_threads = 0;
  /// When > 0, the active WAL segment seals and rotates once it
  /// reaches this many bytes (see wal.h). 0 = rotate only at
  /// compaction cuts.
  uint64_t segment_bytes = 0;
  /// Run auto-triggered compactions on the background snapshot worker
  /// instead of inline on the writer; with `segment_bytes` set, a
  /// size-based rotation also triggers a background compaction, so
  /// sealed segments fold into snapshots without ever stalling ingest.
  bool background_compaction = false;
  /// Test hook: called by the compacting thread as each
  /// `CompactionPhase` begins. Lets tests pause the snapshot worker
  /// between phases for deterministic interleavings and crash-point
  /// captures. Must be thread-safe (sharded stores share it across
  /// shard workers). Leave empty in production.
  std::function<void(CompactionPhase)> compaction_hook;
  /// Store-level slow-operation threshold in milliseconds, mirrored
  /// into `ServerOptions::slow_query_ms` by the server: requests whose
  /// accept-to-reply span exceeds it are logged at warning level with
  /// opcode, principal, duration, and result size. < 0 disables.
  int slow_query_ms = 100;
};

/// \brief Durable provenance-aware workflow repository.
class PersistentRepository {
 public:
  using Options = StoreOptions;

  /// \brief What `Open` had to do to rebuild state.
  struct RecoveryInfo {
    /// LSN covered by the snapshot that seeded recovery; 0 when the
    /// store had no snapshot yet.
    uint64_t snapshot_lsn = 0;
    /// WAL records replayed on top of the snapshot.
    uint64_t records_replayed = 0;
    /// WAL records skipped because the snapshot already covered them
    /// (non-zero only after a crash between snapshot install and
    /// sealed-segment deletion).
    uint64_t records_skipped = 0;
    /// True when the log ended in a torn record.
    bool torn_tail = false;
    /// Bytes of torn tail dropped during repair.
    uint64_t dropped_bytes = 0;
    /// Why the tail was rejected (empty unless `torn_tail`).
    std::string tail_error;
    /// Live WAL segment files after recovery.
    int wal_segments = 0;
    /// Stale segments (already superseded by a snapshot before the
    /// crash) reclaimed on open.
    int stale_segments_removed = 0;
    /// Whole records dropped because a *sealed* segment was corrupt
    /// (clean-prefix repair; 0 for ordinary crash recovery).
    uint64_t dropped_records = 0;
  };

  /// \brief Creates an empty store in `dir` (created if missing; must
  /// not already contain a store).
  static Result<PersistentRepository> Init(const std::string& dir,
                                           Options options = {});

  /// \brief Opens an existing store and recovers its state.
  static Result<PersistentRepository> Open(const std::string& dir,
                                           Options options = {});

  /// \brief Durably stores a specification; returns its id.
  Result<int> AddSpecification(Specification spec, PolicySet policy = {});

  /// \brief Durably stores an execution of spec `spec_id`. As with
  /// `Repository`, the execution must have been built against
  /// `repo().entry(spec_id).spec`.
  Result<ExecutionId> AddExecution(int spec_id, Execution exec);

  /// \brief Compacts inline on the calling thread: waits for any
  /// background compaction, then rotates the WAL, writes a snapshot
  /// covering everything logged so far, and deletes the superseded
  /// segments and older snapshots.
  Status Compact();

  /// \brief Starts a background compaction and returns once the cut is
  /// pinned (WAL rotated + view captured) — appends may continue
  /// immediately, landing in the fresh active segment while the
  /// snapshot worker runs. No-op returning OK when a compaction is
  /// already in flight. The worker's own failure is reported by
  /// `WaitForCompaction` (and superseded by the next compaction).
  Status CompactAsync();

  /// \brief Blocks until no compaction is running and returns the
  /// status of the most recently finished one (OK if none ever ran).
  Status WaitForCompaction();

  /// \brief True while a compaction (background or inline) is active.
  bool compaction_running() const;

  /// \brief Forces logged records to stable storage.
  Status Sync();

  /// \brief The recovered / live in-memory repository.
  const Repository& repo() const { return repo_; }

  /// \brief Total records ever logged (monotonic across compactions).
  uint64_t lsn() const { return wal_.last_lsn(); }

  /// \brief LSN covered by the newest *installed* snapshot.
  uint64_t snapshot_lsn() const;

  /// \brief WAL records not yet covered by a snapshot.
  uint64_t records_since_snapshot() const {
    return wal_.last_lsn() - snapshot_lsn();
  }

  /// \brief Applies one replicated WAL record: appends it to this
  /// store's own WAL (identical framing, so the LSN chain matches the
  /// leader's byte for byte) and replays it through the same path
  /// recovery uses. Only data record types are accepted. The returned
  /// LSN must equal the leader's LSN for the record — callers deliver
  /// contiguously and verify. Same writer contract as AddExecution:
  /// one thread per store at a time (the replication apply loop).
  Result<uint64_t> ApplyReplicated(RecordType type,
                                   std::string_view payload);

  /// \brief Read-only view of the store's WAL (segment/LSN state).
  const WriteAheadLog& wal() const { return wal_; }

  /// \brief Mutable WAL access for replication: commit-sink
  /// installation and retention-floor moves only.
  WriteAheadLog* mutable_wal() { return &wal_; }

  /// \brief How the last `Open` rebuilt state (zeros after `Init`).
  const RecoveryInfo& recovery() const { return recovery_; }

  /// \brief On-disk format version from the `PAWSTORE` marker: 1 means
  /// every record is a v1 text payload, 2 means records may be binary.
  int format_version() const { return format_version_; }

  const std::string& dir() const { return dir_; }

 private:
  /// Compaction state the background worker may touch. Heap-held so
  /// the worker survives moves of the owning store object; destroyed
  /// first (declared last), which joins the worker before the rest of
  /// the store tears down.
  struct CompactState;

  /// Everything a compaction needs, captured at the cut; deliberately
  /// self-contained (paths + pinned view, no pointer back into the
  /// store object) so the worker is immune to the store moving.
  struct CompactJob {
    std::string dir;
    PayloadCodec codec = PayloadCodec::kBinary;
    RepositoryView view;
    /// LSN the snapshot will cover (== end of the sealed segments).
    uint64_t covered = 0;
    /// Active segment seq after the rotation cut; segments below it
    /// are deleted once the snapshot installs.
    uint64_t keep_seq = 0;
    std::function<void(CompactionPhase)> hook;
  };

  PersistentRepository(std::string dir, WriteAheadLog wal,
                       Options options);

  /// Rotates the WAL and pins the view: the synchronous part of every
  /// compaction. Caller must hold the writer role (no append in
  /// flight).
  Result<CompactJob> PrepareCompaction();

  /// The phased, crash-ordered heavy part: snapshot → manifest bump →
  /// segment/snapshot deletion → publish. Static: runs on the worker
  /// against captured state only.
  static Status ExecuteCompactionJob(const CompactJob& job,
                                     CompactState* state);

  /// Runs `Compact()` / `CompactAsync()` when thresholds are exceeded.
  Status MaybeAutoCompact();

  std::string dir_;
  /// Exclusive flock on `<dir>/LOCK`, held for the life of the handle:
  /// a second read-write open of the same directory — by this or any
  /// other process — fails cleanly instead of corrupting the WAL. The
  /// kernel releases it on any process death, so crashes never leave a
  /// stale lock.
  StoreDirLock lock_;
  Repository repo_;
  WriteAheadLog wal_;
  Options options_;
  int format_version_ = 2;
  RecoveryInfo recovery_;
  std::shared_ptr<CompactState> state_;  // last: destroyed (joined) first
};

}  // namespace paw

#endif  // PAW_STORE_PERSISTENT_REPOSITORY_H_

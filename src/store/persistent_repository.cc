#include "src/store/persistent_repository.h"

#include "src/common/file_io.h"
#include "src/provenance/serialize.h"
#include "src/store/codec.h"
#include "src/store/snapshot.h"
#include "src/workflow/validate.h"

namespace paw {
namespace {

constexpr std::string_view kMarkerName = "PAWSTORE";
/// v1: every record is a text payload. v2: records may also be binary
/// (kSpecV2 / kExecutionV2). Both are readable by this build; the
/// marker exists so a hypothetical v1-only reader fails loudly on a
/// store that may contain records it cannot parse.
constexpr std::string_view kMarkerV1 = "pawstore 1\n";
constexpr std::string_view kMarkerV2 = "pawstore 2\n";
constexpr std::string_view kWalName = "wal.log";
// Manifest of a *sharded* store root (src/store/sharded_repository.h);
// a single-directory store must never be created inside one.
constexpr std::string_view kShardManifestName = "PAWSHARDS";

std::string MarkerPath(const std::string& dir) {
  return dir + "/" + std::string(kMarkerName);
}

std::string WalPath(const std::string& dir) {
  return dir + "/" + std::string(kWalName);
}

/// Deletes `<name>.tmp` leftovers of interrupted `AtomicWriteFile`
/// calls (a crash between temp write and rename, e.g. mid-compaction
/// snapshot). They are never valid store state — the rename is the
/// commit point — so reclaiming them on open is always safe.
Status RemoveStaleTempFiles(const std::string& dir) {
  PAW_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir));
  for (const std::string& name : names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      PAW_RETURN_NOT_OK(RemoveFileIfExists(dir + "/" + name));
    }
  }
  return Status::OK();
}

}  // namespace

Result<PersistentRepository> PersistentRepository::Init(
    const std::string& dir, Options options) {
  PAW_RETURN_NOT_OK(EnsureDir(dir));
  if (PathExists(MarkerPath(dir))) {
    return Status::AlreadyExists(dir + " already contains a paw store");
  }
  if (PathExists(dir + "/" + std::string(kShardManifestName))) {
    return Status::AlreadyExists(
        dir + " is a sharded store root; init its shards via "
        "ShardedRepository");
  }
  const bool binary = options.codec == PayloadCodec::kBinary;
  PAW_RETURN_NOT_OK(
      AtomicWriteFile(MarkerPath(dir), binary ? kMarkerV2 : kMarkerV1));
  WriteAheadLog::Options wal_options;
  wal_options.sync_each_append = options.sync_each_append;
  PAW_ASSIGN_OR_RETURN(
      WriteAheadLog wal,
      WriteAheadLog::Create(WalPath(dir), /*base_lsn=*/0, wal_options));
  PersistentRepository store(dir, std::move(wal), options);
  store.format_version_ = binary ? 2 : 1;
  return store;
}

Result<PersistentRepository> PersistentRepository::Open(
    const std::string& dir, Options options) {
  PAW_ASSIGN_OR_RETURN(std::string marker,
                       ReadFileToString(MarkerPath(dir)));
  int format_version = 0;
  if (marker == kMarkerV1) {
    format_version = 1;
  } else if (marker == kMarkerV2) {
    format_version = 2;
  } else {
    return Status::FailedPrecondition(dir + " is not a paw store (bad " +
                                      std::string(kMarkerName) + ")");
  }
  // Version negotiation: opening a v1 store with the binary codec
  // upgrades the marker to v2 — but only after recovery succeeds (see
  // below), so a failed or diagnostic open never mutates the store.
  const bool upgrade_marker =
      format_version == 1 && options.codec == PayloadCodec::kBinary;

  // A crash between AtomicWriteFile's temp write and rename (snapshot
  // mid-compaction, marker, manifest) leaves a `*.tmp` behind; reclaim
  // it before snapshot discovery so it can never accumulate or be
  // mistaken for store state.
  PAW_RETURN_NOT_OK(RemoveStaleTempFiles(dir));

  RecoveryInfo recovery;
  Repository repo;

  // Seed from the newest snapshot, if any; LoadSnapshot stamps the
  // recovered entries' persistence metadata.
  auto snapshot = FindLatestSnapshot(dir);
  if (snapshot.ok()) {
    PAW_ASSIGN_OR_RETURN(recovery.snapshot_lsn,
                         LoadSnapshot(snapshot.value().path, &repo));
  } else if (!snapshot.status().IsNotFound()) {
    return snapshot.status();
  }

  // Replay the log suffix the snapshot does not cover.
  WriteAheadLog::Options wal_options;
  wal_options.sync_each_append = options.sync_each_append;
  WalReplay replay;
  PAW_ASSIGN_OR_RETURN(
      WriteAheadLog wal,
      WriteAheadLog::Open(WalPath(dir), &replay, wal_options));
  recovery.torn_tail = replay.torn_tail;
  recovery.dropped_bytes = replay.dropped_bytes;
  recovery.tail_error = replay.tail_error;
  for (size_t i = 0; i < replay.records.size(); ++i) {
    const uint64_t record_lsn = replay.base_lsn + i + 1;
    if (record_lsn <= recovery.snapshot_lsn) {
      ++recovery.records_skipped;
      continue;
    }
    PAW_RETURN_NOT_OK(ApplyRecord(replay.records[i], &repo));
    ++recovery.records_replayed;
    // Stamp the replayed entry (the newest spec or execution).
    if (replay.records[i].type == RecordType::kSpec ||
        replay.records[i].type == RecordType::kSpecV2) {
      repo.SetSpecPersist(
          repo.num_specs() - 1,
          MakePersistMeta(record_lsn, replay.records[i].payload, "wal"));
    } else {
      repo.SetExecutionPersist(
          ExecutionId(repo.num_executions() - 1),
          MakePersistMeta(record_lsn, replay.records[i].payload, "wal"));
    }
  }

  // Recovery succeeded; commit the marker bump before handing out a
  // handle that could append a binary record to a v1-marked store.
  if (upgrade_marker) {
    PAW_RETURN_NOT_OK(AtomicWriteFile(MarkerPath(dir), kMarkerV2));
    format_version = 2;
  }

  PersistentRepository store(dir, std::move(wal), options);
  store.repo_ = std::move(repo);
  store.snapshot_lsn_ = recovery.snapshot_lsn;
  store.format_version_ = format_version;
  store.recovery_ = std::move(recovery);
  return store;
}

Result<int> PersistentRepository::AddSpecification(Specification spec,
                                                   PolicySet policy) {
  // Validate before logging: the WAL must never contain records that
  // replay with errors.
  PAW_RETURN_NOT_OK(ValidateSpecification(spec));
  PAW_RETURN_NOT_OK(ValidatePolicy(spec, policy));
  const bool binary = options_.codec == PayloadCodec::kBinary;
  const std::string payload = binary ? EncodeSpecPayloadV2(spec, policy)
                                     : EncodeSpecPayload(spec, policy);
  // Round-trip verify: validation does not constrain everything the
  // payload format does, so prove the payload replays to the same
  // bytes before it can reach the log. For the *text* codec that
  // catches e.g. module codes with whitespace (serialize unquoted,
  // fail to reparse); one ambiguity there is a byte-stable *semantic*
  // change the comparison cannot see — ';' is the list separator in
  // labels=/keywords=, so "age;zip" replays as two labels yet
  // re-serializes identically — and needs its own check. The binary
  // codec carries raw bytes, so only the generic round trip applies.
  if (options_.verify_payloads) {
    if (!binary) {
      for (const Workflow& w : spec.workflows()) {
        for (const DataflowEdge& e : w.edges) {
          for (const std::string& label : e.labels) {
            if (label.find(';') != std::string::npos) {
              return Status::InvalidArgument(
                  "edge label contains the list separator ';': " + label);
            }
          }
        }
      }
      for (const Module& m : spec.modules()) {
        for (const std::string& keyword : m.keywords) {
          if (keyword.find(';') != std::string::npos) {
            return Status::InvalidArgument(
                "module keyword contains the list separator ';': " +
                keyword);
          }
        }
      }
    }
    auto decoded =
        binary ? DecodeSpecPayloadV2(payload) : DecodeSpecPayload(payload);
    PAW_RETURN_NOT_OK(decoded.status());
    const std::string reencoded =
        binary ? EncodeSpecPayloadV2(decoded.value().spec,
                                     decoded.value().policy)
               : EncodeSpecPayload(decoded.value().spec,
                                   decoded.value().policy);
    if (reencoded != payload) {
      return Status::InvalidArgument(
          std::string("specification does not survive the ") +
          std::string(PayloadCodecName(options_.codec)) +
          " format round-trip");
    }
  }
  PAW_ASSIGN_OR_RETURN(
      const uint64_t record_lsn,
      wal_.Append(binary ? RecordType::kSpecV2 : RecordType::kSpec,
                  payload));
  auto id = repo_.AddSpecification(std::move(spec), std::move(policy));
  if (!id.ok()) {
    return Status::Internal("logged spec failed to apply: " +
                            id.status().message());
  }
  repo_.SetSpecPersist(id.value(),
                       MakePersistMeta(record_lsn, payload, "wal"));
  PAW_RETURN_NOT_OK(MaybeAutoCompact());
  return id;
}

Result<ExecutionId> PersistentRepository::AddExecution(int spec_id,
                                                       Execution exec) {
  if (spec_id < 0 || spec_id >= repo_.num_specs()) {
    return Status::NotFound("unknown spec id");
  }
  if (&exec.spec() != &repo_.entry(spec_id).spec) {
    return Status::InvalidArgument(
        "execution does not belong to the given specification");
  }
  const bool binary = options_.codec == PayloadCodec::kBinary;
  const std::string payload = binary
                                  ? EncodeExecutionPayloadV2(spec_id, exec)
                                  : EncodeExecutionPayload(spec_id, exec);
  // Round-trip verify (see AddSpecification): e.g. an item value
  // holding a raw newline would break the line-oriented text payload.
  if (options_.verify_payloads) {
    if (binary) {
      auto replayed =
          DecodeExecutionPayloadV2(payload, repo_.entry(spec_id).spec);
      PAW_RETURN_NOT_OK(replayed.status());
      if (EncodeExecutionPayloadV2(spec_id, replayed.value()) != payload) {
        return Status::InvalidArgument(
            "execution does not survive the binary format round-trip");
      }
    } else {
      PAW_ASSIGN_OR_RETURN(DecodedExecutionText decoded,
                           DecodeExecutionPayload(payload));
      auto replayed =
          ParseExecution(decoded.exec_text, repo_.entry(spec_id).spec);
      PAW_RETURN_NOT_OK(replayed.status());
      if (SerializeExecution(replayed.value()) != decoded.exec_text) {
        return Status::InvalidArgument(
            "execution does not survive the text format round-trip");
      }
    }
  }
  PAW_ASSIGN_OR_RETURN(
      const uint64_t record_lsn,
      wal_.Append(binary ? RecordType::kExecutionV2 : RecordType::kExecution,
                  payload));
  auto id = repo_.AddExecution(spec_id, std::move(exec));
  if (!id.ok()) {
    return Status::Internal("logged execution failed to apply: " +
                            id.status().message());
  }
  repo_.SetExecutionPersist(
      id.value(), MakePersistMeta(record_lsn, payload, "wal"));
  PAW_RETURN_NOT_OK(MaybeAutoCompact());
  return id;
}

Status PersistentRepository::Compact() {
  // Make everything the snapshot will cover durable first.
  PAW_RETURN_NOT_OK(wal_.Sync());
  const uint64_t covered = wal_.last_lsn();
  // Snapshot records are re-encoded with the configured codec, so
  // compacting is also how a v1 store's records upgrade to binary.
  PAW_RETURN_NOT_OK(
      WriteSnapshot(dir_, repo_, covered, options_.codec).status());
  // Start a fresh log. A crash before this point leaves the old log in
  // place; recovery then skips records the new snapshot already covers.
  WriteAheadLog::Options wal_options;
  wal_options.sync_each_append = options_.sync_each_append;
  PAW_ASSIGN_OR_RETURN(
      WriteAheadLog fresh,
      WriteAheadLog::Create(WalPath(dir_), covered, wal_options));
  wal_ = std::move(fresh);
  snapshot_lsn_ = covered;
  return RemoveSnapshotsBefore(dir_, covered);
}

Status PersistentRepository::Sync() { return wal_.Sync(); }

Status PersistentRepository::MaybeAutoCompact() {
  if (options_.snapshot_every == 0) return Status::OK();
  if (records_since_snapshot() < options_.snapshot_every) {
    return Status::OK();
  }
  return Compact();
}

}  // namespace paw
